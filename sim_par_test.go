package publishing_test

// Byte-identity oracles for the conservative parallel engine
// (internal/simtime.Engine, Config.ParWorkers). The engine's admission
// criterion is the same one the big-cluster optimizations answered to: a
// same-seed run must be byte-identical however it executes — serial,
// parallel, or parallel twice. These tests compare the strongest external
// fingerprints the repo has: the full metrics snapshot, the recorder's
// stable-store database, and the sweep harness's per-seed SHA-256 digests.
//
// `make par` runs them under the race detector; plain `go test` (no -short)
// runs them too, so `make check` exercises both engines.

import (
	"bytes"
	"fmt"
	"testing"

	"publishing"
	"publishing/internal/simtime"
	"publishing/internal/sweep"
)

// parWorkers is the worker-pool size the equivalence tests run with. More
// workers than the host has cores is deliberately fine (the pool is
// work-stealing; determinism cannot depend on the physical core count).
const parWorkers = 4

// testParVsSerial asserts serial and parallel runs of the workload scenario
// produce byte-identical metrics snapshots and recorder databases.
func testParVsSerial(t *testing.T, nodes int) {
	ms, ds := runSimFingerprint(t, nodes, 0)
	mp, dp := runSimFingerprint(t, nodes, parWorkers)
	if !bytes.Equal(ms, mp) {
		t.Errorf("metrics snapshots differ between serial and parallel runs:\n--- serial ---\n%s\n--- parallel ---\n%s", ms, mp)
	}
	if !bytes.Equal(ds, dp) {
		t.Errorf("recorder databases differ between serial and parallel runs (%d vs %d bytes)", len(ds), len(dp))
	}
}

// TestParallelMatchesSerial64 is the small cross-engine oracle: 64 nodes,
// full stack, serial vs ParWorkers=4.
func TestParallelMatchesSerial64(t *testing.T) {
	if testing.Short() {
		t.Skip("64-node double run; skipped in -short (tier-1) mode")
	}
	testParVsSerial(t, 64)
}

// TestParallelMatchesSerial256 is the cross-engine oracle at the scale the
// hot loop was tuned for.
func TestParallelMatchesSerial256(t *testing.T) {
	if testing.Short() {
		t.Skip("256-node double run; skipped in -short (tier-1) mode")
	}
	testParVsSerial(t, 256)
}

// TestParallelDeterminism64 runs the parallel engine twice with the same
// seed: scheduling jitter between the pool's workers must never reach any
// observable byte.
func TestParallelDeterminism64(t *testing.T) {
	if testing.Short() {
		t.Skip("64-node double run; skipped in -short (tier-1) mode")
	}
	m1, d1 := runSimFingerprint(t, 64, parWorkers)
	m2, d2 := runSimFingerprint(t, 64, parWorkers)
	if !bytes.Equal(m1, m2) {
		t.Errorf("metrics snapshots differ between same-seed parallel runs:\n--- run 1 ---\n%s\n--- run 2 ---\n%s", m1, m2)
	}
	if !bytes.Equal(d1, d2) {
		t.Errorf("recorder databases differ between same-seed parallel runs (%d vs %d bytes)", len(d1), len(d2))
	}
}

// TestParallelSweepDigests drives the sweep harness's digest oracle across
// both engines: 16 seeds of a small scenario, each run serially and on the
// parallel engine, must produce identical per-seed SHA-256 digests. This is
// the same fingerprint the trajectory files pin, so a digest flip here is
// exactly the regression the sweep-verify make target would catch.
func TestParallelSweepDigests(t *testing.T) {
	if testing.Short() {
		t.Skip("32 cluster runs; skipped in -short (tier-1) mode")
	}
	const nodes = 16
	tasks := make([]sweep.Task, 16)
	for i := range tasks {
		tasks[i] = sweep.Task{Config: "par-cross-engine", Seed: uint64(100 + i*7)}
	}
	runWith := func(workers int) sweep.RunFunc {
		return func(task sweep.Task) ([]byte, error) {
			s := buildSimCluster(nodes, task.Seed, false, func(cfg *publishing.Config) {
				cfg.ParWorkers = workers
			})
			s.c.Run(s.horizon + 2*simtime.Second)
			var buf bytes.Buffer
			if err := s.c.Metrics().Snapshot().WriteText(&buf); err != nil {
				return nil, err
			}
			recs, err := s.c.Store().ReadAll()
			if err != nil {
				return nil, err
			}
			for _, r := range recs {
				fmt.Fprintf(&buf, "%d %q %d %x\n", r.Kind, r.Key, r.Seq, r.Data)
			}
			return buf.Bytes(), nil
		}
	}
	serial := sweep.RunSerial(tasks, runWith(0))
	par := sweep.RunSerial(tasks, runWith(parWorkers))
	if err := sweep.Verify(serial, par); err != nil {
		t.Fatalf("cross-engine sweep digests diverged: %v", err)
	}
	for _, r := range serial {
		if r.Err != nil {
			t.Fatalf("seed %d failed: %v", r.Task.Seed, r.Err)
		}
	}
}
