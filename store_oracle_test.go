package publishing

import (
	"fmt"
	"strings"
	"testing"

	"publishing/internal/simtime"
	"publishing/internal/stablestore"
)

// recoveryDatabase runs the standard scenario — a worker crash mid-stream,
// then a recorder crash and restart so the recorder literally rebuilds its
// database from stable storage — on the given store backend, and returns a
// canonical dump of the surviving record stream the rebuild consumed.
func recoveryDatabase(t *testing.T, backend stablestore.Backend) string {
	t.Helper()
	cfg := DefaultConfig(3)
	cfg.Medium = MediumEther
	cfg.Seed = 42
	cfg.Store.Backend = backend
	// Periodic checkpoints put truncation (invalidated message prefixes) in
	// play, which is where the engines' storage layouts diverge the most.
	cfg.CheckpointPolicy = CheckpointBound
	cfg.CheckpointTick = 300 * simtime.Millisecond
	c := New(cfg)
	sink := &witnessSink{}
	registerWitness(c, sink)
	registerWorker(c)
	registerProducer(c, 16, 200*simtime.Millisecond)
	wit, _ := c.Spawn(2, ProcSpec{Name: "witness", Recoverable: true})
	c.SetService("witness", wit)
	worker, err := c.Spawn(1, ProcSpec{
		Name:              "worker",
		Recoverable:       true,
		RecoveryTimeBound: 400 * simtime.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	c.SetService("worker", worker)
	if _, err := c.Spawn(0, ProcSpec{Name: "producer", Recoverable: true}); err != nil {
		t.Fatal(err)
	}
	c.Scheduler().At(1200*simtime.Millisecond, func() { c.CrashProcess(worker) })
	c.Scheduler().At(2500*simtime.Millisecond, func() { c.CrashRecorder() })
	c.Run(4 * simtime.Second)
	if err := c.RestartRecorder(); err != nil {
		t.Fatal(err)
	}
	c.Run(120 * simtime.Second)
	expectSteps(t, sink, 16)

	recs, err := c.Recorder().Store().ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	var b strings.Builder
	for _, r := range recs {
		fmt.Fprintf(&b, "%d|%s|%d|%x\n", r.Kind, r.Key, r.Seq, r.Data)
	}
	// Fold in the rebuilt recorder's own view so the oracle covers the
	// in-memory database, not just the log it was rebuilt from.
	s := c.Recorder().Stats()
	fmt.Fprintf(&b, "stats|%d|%d|%d|%d\n",
		s.ArrivalsRecorded, s.MessagesReplayed, s.CheckpointsStored, s.RecoveriesCompleted)
	return b.String()
}

// The cross-backend correctness oracle: the same seeded cluster run — worker
// crash, recorder crash, database rebuild, full recovery — must leave
// byte-identical recovery databases whether the recorder logs to the
// thesis-exact paged store or the log-structured segment store. Storage
// layout differs completely between the engines; the record stream a rebuild
// reads back must not.
func TestCrossBackendRecoveryDatabaseOracle(t *testing.T) {
	paged := recoveryDatabase(t, stablestore.BackendPaged)
	seg := recoveryDatabase(t, stablestore.BackendSegment)
	if !strings.Contains(paged, "|msg:") || !strings.Contains(paged, "|ck:") {
		t.Fatalf("oracle run left no message/checkpoint records:\n%s", paged)
	}
	if paged != seg {
		t.Fatalf("recovery databases diverged across backends:\npaged:\n%s\nsegment:\n%s", paged, seg)
	}
}
