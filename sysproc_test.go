package publishing

import (
	"testing"

	"publishing/internal/demos"
	"publishing/internal/simtime"
)

// The DEMOS process-control system is itself made of recoverable processes
// (§4.2.3) — that is the point of the §4.4.3 DELIVERTOKERNEL redesign. Here
// a driver creates and destroys children through the full chain while the
// PROCESS MANAGER and the MEMORY SCHEDULER are crashed mid-stream; the
// control plane recovers by replay and every request still completes
// exactly once.
func TestSystemProcessRecovery(t *testing.T) {
	cfg := DefaultConfig(3)
	cfg.SystemProcs = true
	c := New(cfg)

	childrenStarted := 0
	c.Registry().RegisterProgram("child", func(args []byte) Program {
		return func(ctx *PCtx) {
			childrenStarted++
			ctx.Receive() // park until destroyed
		}
	})
	var created []ProcID
	var destroyErrs []error
	done := false
	c.Registry().RegisterProgram("driver", func(args []byte) Program {
		return func(ctx *PCtx) {
			pm, err := ctx.ServiceLink("procmgr")
			if err != nil {
				panic(err)
			}
			for i := 0; i < 6; i++ {
				node := NodeID(i % 3)
				pid, ctl, err := ctx.CreateProcess(pm, ProcSpec{Name: "child", Recoverable: true}, node)
				if err != nil {
					panic(err)
				}
				created = append(created, pid)
				ctx.Compute(400 * simtime.Millisecond)
				destroyErrs = append(destroyErrs, ctx.DestroyProcess(ctl))
			}
			done = true
		}
	})

	c.Run(5 * simtime.Second) // let the system processes boot
	if _, err := c.Spawn(1, ProcSpec{Name: "driver", Recoverable: true}); err != nil {
		t.Fatal(err)
	}

	// Crash the process manager and, later, the memory scheduler. Their
	// ids are the boot order on node 0: namesvc=1, memsched=2, procmgr=3.
	procmgr := ProcID{Node: 0, Local: 3}
	memsched := ProcID{Node: 0, Local: 2}
	c.Scheduler().At(7*simtime.Second, func() { c.CrashProcess(procmgr) })
	c.Scheduler().At(12*simtime.Second, func() { c.CrashProcess(memsched) })

	c.Run(10 * simtime.Minute)

	if !done {
		t.Fatalf("driver never finished (created %d children)", len(created))
	}
	if len(created) != 6 {
		t.Fatalf("created %d children, want 6", len(created))
	}
	if childrenStarted != 6 {
		t.Fatalf("children started %d times, want exactly 6 (duplicate creations = broken suppression)", childrenStarted)
	}
	for i, err := range destroyErrs {
		if err != nil {
			t.Fatalf("destroy %d failed: %v", i, err)
		}
	}
	// Placement round-robined over the three nodes.
	seen := map[NodeID]int{}
	for _, p := range created {
		seen[p.Node]++
	}
	if seen[0] != 2 || seen[1] != 2 || seen[2] != 2 {
		t.Fatalf("placement = %v", seen)
	}
	if got := c.Recorder().Stats().RecoveriesCompleted; got < 2 {
		t.Fatalf("recoveries completed = %d, want >= 2", got)
	}
	// All children destroyed: no child processes remain anywhere.
	for _, n := range c.Nodes() {
		for _, p := range c.Kernel(n).Procs() {
			if st := c.Kernel(n).ProcState(p); st == demos.StateCrashed {
				t.Fatalf("process %s left crashed on node %d", p, n)
			}
		}
	}
}

// The name server works end to end: register a link under a name from one
// process, look it up from another, talk over it — and survive the name
// server crashing in between.
func TestNameServerWithRecovery(t *testing.T) {
	cfg := DefaultConfig(2)
	cfg.SystemProcs = true
	c := New(cfg)

	var got []string
	c.Registry().RegisterProgram("provider", func(args []byte) Program {
		return func(ctx *PCtx) {
			ns, err := ctx.ServiceLink("namesvc")
			if err != nil {
				panic(err)
			}
			mine := ctx.CreateLink(ChanRequest, 42)
			_ = ctx.Send(ns, demos.EncodeNameReq(&demos.NameReq{Register: true, Name: "oracle"}), mine)
			m := ctx.Receive(ChanRequest)
			got = append(got, string(m.Body))
			if m.Link != NoLink {
				_ = ctx.Send(m.Link, []byte("the answer is 42"), NoLink)
			}
		}
	})
	c.Registry().RegisterProgram("consumer", func(args []byte) Program {
		return func(ctx *PCtx) {
			ns, err := ctx.ServiceLink("namesvc")
			if err != nil {
				panic(err)
			}
			ctx.Compute(2 * simtime.Second) // let the provider register first
			reply := ctx.CreateLink(ChanReply, 0)
			_ = ctx.Send(ns, demos.EncodeNameReq(&demos.NameReq{Name: "oracle"}), reply)
			m := ctx.Receive(ChanReply)
			if m.Link == NoLink {
				got = append(got, "LOOKUP FAILED")
				return
			}
			back := ctx.CreateLink(ChanRequest, 0)
			_ = ctx.Send(m.Link, []byte("question"), back)
			ans := ctx.Receive(ChanRequest)
			got = append(got, "answer: "+string(ans.Body))
		}
	})

	c.Run(5 * simtime.Second)
	if _, err := c.Spawn(0, ProcSpec{Name: "provider", Recoverable: true}); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Spawn(1, ProcSpec{Name: "consumer", Recoverable: true}); err != nil {
		t.Fatal(err)
	}
	// Crash the name server after registration but before lookup.
	namesvc := ProcID{Node: 0, Local: 1}
	c.Scheduler().At(6500*simtime.Millisecond, func() { c.CrashProcess(namesvc) })
	c.Run(5 * simtime.Minute)

	if len(got) != 2 {
		t.Fatalf("exchange incomplete: %v", got)
	}
	if got[0] != "question" || got[1] != "answer: the answer is 42" {
		t.Fatalf("exchange = %v", got)
	}
}
