package publishing_test

// Scale-determinism coverage for the big-cluster simulator work: the
// optimizations in simtime (4-ary heap), lan (no-fault broadcast fast
// path), and transport (dense per-destination tables, ownership-transfer
// sends) are only admissible while same-seed runs stay byte-identical.
// These tests pin that property at 256 nodes — the scale the hot loop was
// tuned for — on both the fault-free workload scenario and the chaos
// harness's faulted paths. They are heavyweight, so `go test -short`
// (tier-1) skips them; `make check` runs them in full.

import (
	"bytes"
	"fmt"
	"sync/atomic"
	"testing"

	"publishing"
	"publishing/internal/chaos"
	"publishing/internal/simtime"
)

// scaleNodes is the cluster size the determinism tests run at.
const scaleNodes = 256

// runScaleFingerprint runs the workload scenario once and reduces the
// cluster's externally observable end state to bytes: the full metrics
// snapshot (every counter the stack touched, in registration order) and
// the recorder's stable-store database record by record.
func runScaleFingerprint(t *testing.T) (metricsText, storeDump []byte) {
	return runSimFingerprint(t, scaleNodes, 0)
}

// runSimFingerprint is runScaleFingerprint at an arbitrary node count and
// worker count: workers > 1 runs the scenario on the conservative parallel
// engine, whose whole contract is that these bytes come out identical.
func runSimFingerprint(t *testing.T, nodes, workers int) (metricsText, storeDump []byte) {
	t.Helper()
	s := buildSimCluster(nodes, simClusterSeed, false, func(cfg *publishing.Config) {
		cfg.ParWorkers = workers
	})
	s.c.Run(s.horizon + 2*simtime.Second)
	if got, want := atomic.LoadInt64(s.delivered), int64(s.sent); got != want {
		t.Fatalf("delivered %d of %d messages", got, want)
	}
	if workers > 1 {
		st := s.c.Engine().Stats()
		if st.InlineWindows+st.ParWindows == 0 {
			t.Fatalf("parallel engine never opened a window (stats %+v); the gate or lookahead wiring is broken", st)
		}
	}

	var mbuf bytes.Buffer
	if err := s.c.Metrics().Snapshot().WriteText(&mbuf); err != nil {
		t.Fatalf("metrics snapshot: %v", err)
	}
	recs, err := s.c.Store().ReadAll()
	if err != nil {
		t.Fatalf("recorder store: %v", err)
	}
	var dbuf bytes.Buffer
	for _, r := range recs {
		fmt.Fprintf(&dbuf, "%d %q %d %x\n", r.Kind, r.Key, r.Seq, r.Data)
	}
	return mbuf.Bytes(), dbuf.Bytes()
}

// TestScaleDeterminism256 runs the 256-node scenario twice with the same
// seed and requires byte-identical metrics snapshots and recorder
// databases. Any hidden nondeterminism the optimizations introduced — map
// iteration, heap-shape-dependent tie-breaks, allocation-order identity —
// would surface here before it could corrupt an experiment.
func TestScaleDeterminism256(t *testing.T) {
	if testing.Short() {
		t.Skip("256-node double run; skipped in -short (tier-1) mode")
	}
	m1, d1 := runScaleFingerprint(t)
	m2, d2 := runScaleFingerprint(t)
	if !bytes.Equal(m1, m2) {
		t.Errorf("metrics snapshots differ between same-seed runs:\n--- run 1 ---\n%s\n--- run 2 ---\n%s", m1, m2)
	}
	if !bytes.Equal(d1, d2) {
		t.Errorf("recorder databases differ between same-seed runs (%d vs %d bytes)", len(d1), len(d2))
	}
}

// TestChaosSmoke256 keeps the fault paths honest at scale: the no-fault
// fast paths (gated-station sets, clean fault draws, dense tables) must
// not have bent the faulted slow paths. It drives generated fault
// schedules through the canonical chaos scenario on a 256-node cluster —
// 253 bystander stations make the broadcast delivery and per-destination
// state as wide as the throughput benchmark's — and requires every
// invariant to hold.
func TestChaosSmoke256(t *testing.T) {
	if testing.Short() {
		t.Skip("256-node chaos runs; skipped in -short (tier-1) mode")
	}
	// Two seeds chosen to cover both media kinds and both store engines
	// via ChaosSeedVariant's rotation.
	for _, seed := range []uint64{8, 13} {
		seed := seed
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			t.Parallel()
			opt := publishing.ChaosSeedVariant(seed)
			opt.Nodes = scaleNodes
			sched := chaos.Generate(seed, chaos.DefaultLimits())
			res := chaos.Run(sched, publishing.ChaosBuild(opt), chaos.DefaultOptions())
			if !res.Passed {
				t.Errorf("chaos run failed at %d nodes:\n%s", scaleNodes, res.Report)
				for _, v := range res.Violations {
					t.Logf("violation: %+v", v)
				}
			}
		})
	}
}

// TestChaosSmoke1024 pushes the chaos scenario to 1024 bystander stations —
// the width the queuing analysis in EXPERIMENTS.md sizes the parallel
// engine against — on both engines. The parallel leg runs with the gate
// held closed by design (faults armed, monitor tracing on), so what it
// proves is that ParWorkers is always safe to leave on: the serial
// fallback must preserve every invariant at full width.
func TestChaosSmoke1024(t *testing.T) {
	if testing.Short() {
		t.Skip("1024-node chaos runs; skipped in -short (tier-1) mode")
	}
	// Seed 6 keeps ChaosSeedVariant on a single recorder (the parallel
	// engine declines recorder trios), so both legs run the same scenario.
	const seed = 6
	for _, par := range []int{0, 4} {
		par := par
		name := "serial"
		if par > 1 {
			name = fmt.Sprintf("parallel%d", par)
		}
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			opt := publishing.ChaosSeedVariant(seed)
			opt.Nodes = 1024
			opt.ParWorkers = par
			sched := chaos.Generate(seed, chaos.DefaultLimits())
			res := chaos.Run(sched, publishing.ChaosBuild(opt), chaos.DefaultOptions())
			if !res.Passed {
				t.Errorf("chaos run failed at 1024 nodes (%s):\n%s", name, res.Report)
				for _, v := range res.Violations {
					t.Logf("violation: %+v", v)
				}
			}
		})
	}
}
