package publishing_test

// Integration coverage for the online invariant monitor (internal/monitor)
// as wired through the cluster and the chaos harness: the monitor must flag
// an injected duplicate at the virtual instant it is delivered (not after
// quiescence), its report must be a deterministic function of the seed, and
// attaching it must not perturb the simulation at all — monitor-on and
// monitor-off runs of the same seed end with byte-identical recorder
// databases.

import (
	"bytes"
	"fmt"
	"testing"

	"publishing"
	"publishing/internal/chaos"
	"publishing/internal/simtime"
	"publishing/internal/trace"
)

// dupBurstSchedule is the same deliberately-broken scenario the checker's
// own regression test uses: duplicate suppression disabled, heavy dup burst.
var dupBurstSchedule = chaos.Schedule{Seed: 424242, Faults: []chaos.Fault{
	{Kind: chaos.KindDupBurst, AtMs: 300, DurMs: 3000, Prob: 255},
}}

// TestMonitorFlagsDuplicateBeforeQuiescence is the monitor's headline
// property: with duplicate suppression broken and a dup burst injected, the
// exactly-once violation is flagged while the workload is still running —
// stamped with the virtual timestamp of the violating delivery itself — not
// discovered by the checker after the run drains.
func TestMonitorFlagsDuplicateBeforeQuiescence(t *testing.T) {
	opt := chaos.DefaultOptions()
	sc := publishing.ChaosScenario(dupBurstSchedule.Seed, publishing.ChaosOptions{BreakDupSuppression: true})
	sc.Sys.Trace().SetDetailed(true)
	chaos.Apply(sc.Sys, dupBurstSchedule, sc.Targets)
	if !sc.Sys.RunUntil(sc.Work.Done, opt.MaxRun) {
		t.Fatal("workload did not complete")
	}
	doneAt := sc.Sys.Now()

	mon := sc.Sys.(*publishing.Cluster).Monitor()
	if mon == nil {
		t.Fatal("chaos scenario did not attach the monitor")
	}
	if mon.DupViolations() == 0 {
		t.Fatalf("duplicates not flagged online by workload completion (t=%v):\n%s", doneAt, mon.Report())
	}
	v := mon.Violations()[0]
	if v.At > doneAt {
		t.Fatalf("first violation stamped t=%v, after workload completion t=%v", v.At, doneAt)
	}

	// Quiesce, then corroborate the stamp: it must be the exact virtual time
	// of one of that message's deliveries, and the post-quiescence checker
	// must reach the same verdict the monitor reached mid-run.
	sc.Sys.Run(opt.Grace)
	matched := false
	for _, e := range sc.Sys.Trace().OfKind(trace.KindDeliver) {
		if e.Msg == v.Msg && e.At == v.At {
			matched = true
			break
		}
	}
	if !matched {
		t.Fatalf("violation %s is not stamped with any delivery time of %s", v, v.Msg)
	}
	if v.At >= sc.Sys.Now() {
		t.Fatalf("violation t=%v not before quiescence t=%v", v.At, sc.Sys.Now())
	}
}

// TestMonitorReportDeterminism runs the same faulted scenario twice and
// requires byte-identical monitor reports — the online counterpart of the
// checker's deterministic-report guarantee. The seed is the ROADMAP's known
// exactly-once hole, so the property is pinned on a report that actually
// contains violations, SLO quantiles, and event counts.
func TestMonitorReportDeterminism(t *testing.T) {
	run := func() string {
		s := chaos.Generate(8, chaos.DefaultLimits())
		opt := chaos.DefaultOptions()
		sc := publishing.ChaosScenario(8, publishing.ChaosOptions{Nodes: 4})
		sc.Sys.Trace().SetDetailed(true)
		chaos.Apply(sc.Sys, s, sc.Targets)
		sc.Sys.RunUntil(sc.Work.Done, opt.MaxRun)
		sc.Sys.Run(opt.Grace)
		return sc.Sys.(*publishing.Cluster).Monitor().Report()
	}
	a, b := run(), run()
	if a != b {
		t.Fatalf("monitor reports differ across identical runs:\n--- first\n%s\n--- second\n%s", a, b)
	}
}

// TestMonitorPassivity pins the monitor's no-perturbation contract: a
// monitored run (tracing on behind a flight-recorder ring, monitor
// subscribed, stall tick armed) and a bare run of the same seed must end
// with byte-identical recorder databases. Any hidden influence — an event
// reordered by observation, randomness drawn, state mutated — would split
// the fingerprints.
func TestMonitorPassivity(t *testing.T) {
	dump := func(monitored bool) []byte {
		s := buildSimCluster(64, simClusterSeed, monitored)
		s.c.Run(s.horizon + 2*simtime.Second)
		if got, want := *s.delivered, int64(s.sent); got != want {
			t.Fatalf("monitored=%v: delivered %d of %d messages", monitored, got, want)
		}
		if monitored {
			mon := s.c.Monitor()
			if mon == nil {
				t.Fatal("monitored cluster has no monitor")
			}
			if !mon.Passed() {
				t.Fatalf("fault-free run violated online invariants:\n%s", mon.Report())
			}
		}
		recs, err := s.c.Store().ReadAll()
		if err != nil {
			t.Fatalf("recorder store: %v", err)
		}
		var buf bytes.Buffer
		for _, r := range recs {
			fmt.Fprintf(&buf, "%d %q %d %x\n", r.Kind, r.Key, r.Seq, r.Data)
		}
		return buf.Bytes()
	}
	on, off := dump(true), dump(false)
	if !bytes.Equal(on, off) {
		t.Fatalf("recorder databases differ between monitored and bare runs (%d vs %d bytes)", len(on), len(off))
	}
}

// TestMonitorPassivitySharded re-pins the no-perturbation contract on the
// sharded replicated recorder path: the 64-node scenario run on the recorder
// trio (three recorders, sixteen shard slots) with the monitor on and off
// must end with byte-identical databases on every replica. Sharding adds
// recorder-to-recorder traffic — peer arbitration, watchdog pings, handoff —
// that the classic passivity test never exercises, so observation leaking
// into any of it would split these fingerprints.
func TestMonitorPassivitySharded(t *testing.T) {
	sharded := func(cfg *publishing.Config) {
		cfg.Recorders = 3
		cfg.ShardSlots = 16
	}
	dump := func(monitored bool) []byte {
		s := buildSimCluster(64, simClusterSeed, monitored, sharded)
		s.c.Run(s.horizon + 2*simtime.Second)
		if got, want := *s.delivered, int64(s.sent); got != want {
			t.Fatalf("monitored=%v: delivered %d of %d messages", monitored, got, want)
		}
		if monitored {
			mon := s.c.Monitor()
			if mon == nil {
				t.Fatal("monitored cluster has no monitor")
			}
			if !mon.Passed() {
				t.Fatalf("fault-free sharded run violated online invariants:\n%s", mon.Report())
			}
		}
		var buf bytes.Buffer
		for rank := 0; rank < s.c.Recorders(); rank++ {
			recs, err := s.c.StoreAt(rank).ReadAll()
			if err != nil {
				t.Fatalf("recorder %d store: %v", rank, err)
			}
			fmt.Fprintf(&buf, "-- recorder %d\n", rank)
			for _, r := range recs {
				fmt.Fprintf(&buf, "%d %q %d %x\n", r.Kind, r.Key, r.Seq, r.Data)
			}
		}
		return buf.Bytes()
	}
	on, off := dump(true), dump(false)
	if !bytes.Equal(on, off) {
		t.Fatalf("sharded recorder databases differ between monitored and bare runs (%d vs %d bytes)", len(on), len(off))
	}
}
