package publishing

import (
	"testing"

	"publishing/internal/simtime"
)

// multiCfg builds the standard scenario config with two recorders.
func multiCfg() Config {
	cfg := DefaultConfig(3)
	cfg.Recorders = 2
	return cfg
}

// With two recorders (§6.3), the network stays available while one is down:
// "If there are n recorders, n−1 can fail before the network becomes
// unavailable."
func TestTrafficSurvivesOneRecorderCrash(t *testing.T) {
	c, sink, _ := buildScenario(t, multiCfg(), 12)
	c.Scheduler().At(800*simtime.Millisecond, func() { c.CrashRecorderAt(0) })
	c.Run(60 * simtime.Second)
	expectSteps(t, sink, 12)
}

// With both recorders down, everything suspends — and resumes when one
// returns.
func TestAllRecordersDownSuspendsTraffic(t *testing.T) {
	c, sink, _ := buildScenario(t, multiCfg(), 12)
	c.Scheduler().At(800*simtime.Millisecond, func() {
		c.CrashRecorderAt(0)
		c.CrashRecorderAt(1)
	})
	c.Run(4 * simtime.Second)
	blocked := len(sink.msgs)
	c.Run(2 * simtime.Second)
	if len(sink.msgs) != blocked {
		t.Fatal("traffic flowed with every recorder down")
	}
	if err := c.RestartRecorderAt(0); err != nil {
		t.Fatal(err)
	}
	if err := c.RestartRecorderAt(1); err != nil {
		t.Fatal(err)
	}
	c.Run(90 * simtime.Second)
	expectSteps(t, sink, 12)
}

// A process crash while the primary recorder is down: the surviving
// recorder has the full stream (it records everything) and performs the
// recovery itself after the claim query goes unanswered.
func TestSecondaryRecorderPerformsRecovery(t *testing.T) {
	c, sink, worker := buildScenario(t, multiCfg(), 12)
	c.Scheduler().At(700*simtime.Millisecond, func() { c.CrashRecorderAt(0) })
	c.Scheduler().At(1200*simtime.Millisecond, func() { c.CrashProcess(worker) })
	c.Run(120 * simtime.Second)
	expectSteps(t, sink, 12)
	if got := c.RecorderAt(1).Stats().RecoveriesCompleted; got != 1 {
		t.Fatalf("secondary recorder completed %d recoveries, want 1", got)
	}
}

// Node-crash arbitration: the primary answers the secondary's claim query,
// so exactly one recorder recovers the node's processes.
func TestArbitrationSingleRecoverer(t *testing.T) {
	c, sink, _ := buildScenario(t, multiCfg(), 12)
	c.Scheduler().At(1100*simtime.Millisecond, func() { c.CrashNode(1) })
	c.Run(120 * simtime.Second)
	expectSteps(t, sink, 12)
	r0 := c.RecorderAt(0).Stats().RecoveriesStarted
	r1 := c.RecorderAt(1).Stats().RecoveriesStarted
	if r0 == 0 {
		t.Fatalf("primary started no recoveries (r0=%d r1=%d)", r0, r1)
	}
	if r1 != 0 {
		t.Fatalf("secondary also recovered (r0=%d r1=%d); duty must be exclusive", r0, r1)
	}
}

// Both recorders stay consistent: their reconstructed streams for the
// worker match even though only one receives the notices end-to-end.
func TestRecordersStayConsistent(t *testing.T) {
	c, sink, worker := buildScenario(t, multiCfg(), 10)
	c.Run(30 * simtime.Second)
	expectSteps(t, sink, 10)
	s0 := c.RecorderAt(0).StreamSummary(worker)
	s1 := c.RecorderAt(1).StreamSummary(worker)
	if len(s0) == 0 {
		t.Fatal("primary has no stream")
	}
	if len(s0) != len(s1) {
		t.Fatalf("stream lengths differ: %d vs %d", len(s0), len(s1))
	}
	for i := range s0 {
		if s0[i] != s1[i] {
			t.Fatalf("streams diverge at %d: %v vs %v", i, s0[i], s1[i])
		}
	}
	_, _, _, ls0, _ := c.RecorderAt(0).Entry(worker)
	_, _, _, ls1, _ := c.RecorderAt(1).Entry(worker)
	if ls0 != ls1 || ls0 == 0 {
		t.Fatalf("lastSent diverges: %d vs %d", ls0, ls1)
	}
}

// After a restart with peers, a recorder declines recovery duty until the
// forced checkpoints land (§6.3 catch-up), then resumes.
func TestRestartCatchUp(t *testing.T) {
	c, sink, _ := buildScenario(t, multiCfg(), 14)
	c.Scheduler().At(800*simtime.Millisecond, func() { c.CrashRecorderAt(0) })
	c.Run(3 * simtime.Second)
	if err := c.RestartRecorderAt(0); err != nil {
		t.Fatal(err)
	}
	if !c.RecorderAt(0).CatchingUp() {
		t.Fatal("restarted recorder is not catching up")
	}
	c.Run(120 * simtime.Second)
	if c.RecorderAt(0).CatchingUp() {
		t.Fatal("catch-up never completed")
	}
	expectSteps(t, sink, 14)
	if got := c.RecorderAt(0).Stats().CheckpointsStored; got == 0 {
		t.Fatal("no forced checkpoints were stored during catch-up")
	}
}

func TestMultiRecorderDeterminism(t *testing.T) {
	run := func() string {
		c, sink, worker := buildScenario(t, multiCfg(), 10)
		c.Scheduler().At(700*simtime.Millisecond, func() { c.CrashRecorderAt(0) })
		c.Scheduler().At(1200*simtime.Millisecond, func() { c.CrashProcess(worker) })
		c.Run(60 * simtime.Second)
		return joinStrings(sink.msgs) + "|" + c.Now().String()
	}
	if run() != run() {
		t.Fatal("multi-recorder cluster not deterministic")
	}
}

func joinStrings(ss []string) string {
	out := ""
	for _, s := range ss {
		out += s + ";"
	}
	return out
}
