package publishing_test

// Big-cluster simulator throughput: the workload-driven broadcast scenario
// behind BENCH_sim.json. An internal/workload open-loop Poisson stream
// (hotspot-skewed publishers, fan-out subscriber draws) is re-expressed as
// cluster traffic — every arrival becomes a guaranteed fan-out publication
// through the full stack: kernel send, medium broadcast, recorder tap +
// publish, transport acks, §4.4.1 acceptance-order accounting. The headline
// metrics are simulator events per wall second and virtual seconds simulated
// per wall second, the quantities that decide whether hundred-node scenarios
// are runnable at all.
//
// The same scenario backs the scale-determinism tests (sim_scale_test.go):
// optimization work on the hot loop is only accepted while same-seed runs
// stay byte-identical.

import (
	"encoding/binary"
	"fmt"
	"sync/atomic"
	"testing"
	"time"

	"publishing"
	"publishing/internal/simtime"
	"publishing/internal/workload"
)

// simClusterSeed is the fixed scenario seed shared by the benchmarks, the
// determinism tests, and the 256-node chaos smoke.
const simClusterSeed = 7

// simClusterResult is one scenario run's measurements.
type simClusterResult struct {
	sent      int     // guaranteed fan-out sends the workload issued
	delivered int64   // messages the sink machines consumed
	fired     uint64  // scheduler events executed
	virtual   simtime.Time
	wall      time.Duration
}

// simClusterScale derives the workload shape from the node count: ~8
// messages per node at ~10 messages/second/proc, fan-out 2, with a fifth of
// the traffic concentrated on a 1/16 hot set — the floodsub-style load the
// ROADMAP's big-cluster scenarios assume.
func simClusterScale(nodes int) workload.Config {
	hot := nodes / 16
	if hot < 1 {
		hot = 1
	}
	// The aggregate arrival rate tops out at the 256-node figure. The
	// modeled 100 Mb/s LAN serializes a data frame in ~60 µs, so 10·N
	// arrivals/s at fan-out 2 crosses channel saturation (utilization > 1)
	// between 256 and 1024 nodes — an open-loop overload whose queues grow
	// without bound and that no drain window clears. Holding the channel at
	// the 256-node operating point (~0.31 data-frame utilization) lets node
	// count stress the simulator rather than the modeled queue; the
	// utilization arithmetic is worked in EXPERIMENTS.md.
	rate := 10 * float64(nodes)
	if nodes > 256 {
		rate = 10 * 256
	}
	return workload.Config{
		Seed:     simClusterSeed,
		Procs:    nodes,
		Rate:     rate,
		Hotspot:  0.2,
		HotProcs: hot,
		MsgBytes: 96,
		FanOut:   2,
	}
}

// simCluster is a built-but-not-yet-run scenario: the determinism tests in
// sim_scale_test.go run it themselves so they can fingerprint the cluster's
// metrics and recorder database afterwards.
type simCluster struct {
	c         *publishing.Cluster
	horizon   simtime.Time
	sent      int
	delivered *int64
}

// runSimCluster builds an n-node cluster (plus recorder), drives the
// workload scenario through it, and runs to a quiescent horizon. The event
// trace is disabled, as any long scenario run would disable it — making
// trace attribution free when off is part of what the benchmark measures.
// With monitored set, the run instead carries the full online-observability
// stack: tracing on (bounded by a flight-recorder ring) with the invariant
// monitor subscribed — the overhead the monitored benchmark variant prices.
func runSimCluster(nodes int, seed uint64, monitored bool, mutate ...func(*publishing.Config)) simClusterResult {
	s := buildSimCluster(nodes, seed, monitored, mutate...)
	start := time.Now()
	// The horizon is the last arrival plus a drain window for retransmits,
	// delayed acks, and recorder publishing to quiesce.
	s.c.Run(s.horizon + 2*simtime.Second)
	return simClusterResult{
		sent:      s.sent,
		delivered: atomic.LoadInt64(s.delivered),
		fired:     s.c.Scheduler().Fired(),
		virtual:   s.c.Now(),
		wall:      time.Since(start),
	}
}

// buildSimCluster assembles the scenario without running it. Optional
// mutators adjust the config after the standard scenario knobs are set
// (e.g. the sharded-recorder passivity test turns on the recorder trio).
func buildSimCluster(nodes int, seed uint64, monitored bool, mutate ...func(*publishing.Config)) *simCluster {
	wcfg := simClusterScale(nodes)
	wcfg.Seed = seed
	events := workload.Msgs(wcfg, 8*nodes)
	scheds := make([][]workload.MsgEvent, nodes)
	horizon := simtime.Time(0)
	sent := 0
	for _, ev := range events {
		scheds[ev.Pub] = append(scheds[ev.Pub], ev)
		sent += len(ev.Subs)
		if ev.At > horizon {
			horizon = ev.At
		}
	}

	cfg := publishing.DefaultConfig(nodes)
	cfg.Seed = seed
	// A modern fast LAN: the Fig 5.2 10 Mb/s Ethernet saturates long before
	// 256 nodes' offered load; the simulator, not the modeled channel, is
	// what this scenario stresses.
	cfg.LAN.BitsPerSecond = 100_000_000
	cfg.LAN.InterframeGap = 50 * simtime.Microsecond
	if nodes > 256 {
		// Past 256 nodes even the fast LAN saturates — not on data frames
		// (the arrival rate is capped, see simClusterScale) but on per-node
		// background traffic: the 50 µs interframe gap bounds the channel at
		// ~16.6k frames/s, and 1024 nodes' watchdog pings plus delayed-ack
		// flushes alone approach that ceiling during the burst, which shows
		// up as a spurious-retransmit storm. Model a switched 1 Gb/s fabric
		// (5 µs gap, ~160k frames/s) so utilization drops back to ~0.1; the
		// arithmetic is worked in EXPERIMENTS.md.
		cfg.LAN.BitsPerSecond = 1_000_000_000
		cfg.LAN.InterframeGap = 5 * simtime.Microsecond
	}
	if monitored {
		cfg.Monitor = true
		cfg.FlightRecorder = 4096
	}
	for _, m := range mutate {
		m(&cfg)
	}
	c := publishing.New(cfg)
	if !monitored {
		c.Trace().Enable(false)
	}

	var delivered int64
	c.Registry().RegisterMachine("sink", func(args []byte) publishing.Machine {
		return &simSink{delivered: &delivered}
	})
	sinkNames := make([]string, nodes)
	for i := range sinkNames {
		sinkNames[i] = fmt.Sprintf("sink%d", i)
	}
	body := make([]byte, wcfg.MsgBytes)
	c.Registry().RegisterProgram("pub", func(args []byte) publishing.Program {
		sched := scheds[binary.BigEndian.Uint32(args)]
		return func(ctx *publishing.PCtx) {
			links := make([]publishing.LinkID, nodes)
			have := make([]bool, nodes)
			last := simtime.Time(0)
			for _, ev := range sched {
				if d := ev.At - last; d > 0 {
					ctx.Compute(d)
				}
				last = ev.At
				for _, sub := range ev.Subs {
					if !have[sub] {
						l, err := ctx.ServiceLink(sinkNames[sub])
						if err != nil {
							panic(err)
						}
						links[sub], have[sub] = l, true
					}
					_ = ctx.Send(links[sub], body, publishing.NoLink)
				}
			}
		}
	})

	for i := 0; i < nodes; i++ {
		pid, err := c.Spawn(publishing.NodeID(i), publishing.ProcSpec{Name: "sink", Recoverable: true})
		if err != nil {
			panic(err)
		}
		c.SetService(sinkNames[i], pid)
	}
	for i := 0; i < nodes; i++ {
		var args [4]byte
		binary.BigEndian.PutUint32(args[:], uint32(i))
		if _, err := c.Spawn(publishing.NodeID(i), publishing.ProcSpec{Name: "pub", Args: args[:], Recoverable: true}); err != nil {
			panic(err)
		}
	}

	return &simCluster{c: c, horizon: horizon, sent: sent, delivered: &delivered}
}

// simSink counts consumed messages; the count doubles as the benchmark's
// delivery check (no-fault scenario: every send must arrive exactly once).
type simSink struct {
	n         int64
	delivered *int64
}

func (s *simSink) Init(ctx *publishing.PCtx) {}
func (s *simSink) Handle(ctx *publishing.PCtx, m publishing.Msg) {
	s.n++
	// The shared scenario counter is the one piece of cross-node test state:
	// sinks on different nodes may run concurrently inside a parallel
	// window, so the increment must be atomic (the sum is order-free).
	atomic.AddInt64(s.delivered, 1)
}
func (s *simSink) Snapshot() ([]byte, error) {
	var b [8]byte
	binary.BigEndian.PutUint64(b[:], uint64(s.n))
	return b[:], nil
}
func (s *simSink) Restore(b []byte) error {
	s.n = int64(binary.BigEndian.Uint64(b))
	return nil
}

// BenchmarkSimThroughput is the tentpole metric of the big-cluster work:
// simulator hot-loop throughput at 8, 64, 256, and 1024 nodes.
func BenchmarkSimThroughput(b *testing.B) {
	for _, nodes := range []int{8, 64, 256, 1024} {
		b.Run(fmt.Sprintf("%dnodes", nodes), func(b *testing.B) {
			benchSimCluster(b, nodes, false)
		})
	}
}

// BenchmarkSimThroughputParallel is the same scenario on the conservative
// parallel engine (Config.ParWorkers = 4): the before/after pair against
// BenchmarkSimThroughput is what BENCH_sim.json records. Speedup scales
// with both the host's cores and the window occupancy — see the queuing
// analysis in EXPERIMENTS.md for what to expect at a given load.
func BenchmarkSimThroughputParallel(b *testing.B) {
	for _, nodes := range []int{256, 1024} {
		b.Run(fmt.Sprintf("%dnodes", nodes), func(b *testing.B) {
			benchSimCluster(b, nodes, false, func(cfg *publishing.Config) {
				cfg.ParWorkers = 4
			})
		})
	}
}

// BenchmarkSimThroughputMonitored is the 256-node scenario with the full
// online-observability stack attached — tracing on behind a flight-recorder
// ring, the invariant monitor subscribed to every event — pricing what
// always-on monitoring costs against the plain run above.
func BenchmarkSimThroughputMonitored(b *testing.B) {
	b.Run("256nodes", func(b *testing.B) {
		benchSimCluster(b, 256, true)
	})
}

func benchSimCluster(b *testing.B, nodes int, monitored bool, mutate ...func(*publishing.Config)) {
	b.ReportAllocs()
	var fired uint64
	var wall time.Duration
	var virtual simtime.Time
	for i := 0; i < b.N; i++ {
		r := runSimCluster(nodes, simClusterSeed, monitored, mutate...)
		if r.delivered != int64(r.sent) {
			b.Fatalf("delivered %d of %d messages", r.delivered, r.sent)
		}
		fired += r.fired
		wall += r.wall
		virtual += r.virtual
	}
	sec := wall.Seconds()
	b.ReportMetric(float64(fired)/sec, "events/s")
	b.ReportMetric(virtual.Seconds()/sec, "vsec/s")
	b.ReportMetric(0, "ns/op") // wall time lives in the custom metrics
}
