package publishing

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"publishing/internal/chaos"
)

// chaosSweepSeeds is how many distinct generated schedules the sweep runs.
// Each seed is an independent scenario (its own cluster pair, workload, and
// fault schedule), so the sweep is the closest thing this repo has to a
// continuous simulation-testing fleet — just compressed into one `go test`.
const chaosSweepSeeds = 50

// TestChaosScheduleSweep generates one fault schedule per seed and requires
// every system-wide invariant to hold. On failure it dumps post-mortem
// artifacts (trace tail, online monitor report, metrics snapshot) and prints
// the checker report, the artifact path, and a minimized reproducer token.
func TestChaosScheduleSweep(t *testing.T) {
	lim := chaos.DefaultLimits()
	opt := chaos.DefaultOptions()
	opt.ArtifactDir = filepath.Join(os.TempDir(), "publishing-chaos")
	for seed := uint64(1); seed <= chaosSweepSeeds; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed=%03d", seed), func(t *testing.T) {
			t.Parallel()
			s := chaos.Generate(seed, lim)
			build := ChaosBuild(ChaosSeedVariant(seed))
			res := chaos.Run(s, build, opt)
			if !res.Passed {
				t.Errorf("invariants violated:\n%s", res.Report)
				if res.Artifacts != "" {
					t.Errorf("post-mortem artifacts for schedule %s:\n%s", s.Hex(), res.Artifacts)
				}
				t.Fatal(chaos.Reproducer(s, build, opt))
			}
		})
	}
}

// TestChaosDeterministicReports runs the same schedule twice and demands
// byte-identical invariant-checker reports — the property every "reproduce
// with this seed" workflow stands on.
func TestChaosDeterministicReports(t *testing.T) {
	for _, seed := range []uint64{2, 13, 31} {
		s := chaos.Generate(seed, chaos.DefaultLimits())
		build := ChaosBuild(ChaosSeedVariant(seed))
		a := chaos.Run(s, build, chaos.DefaultOptions())
		b := chaos.Run(s, build, chaos.DefaultOptions())
		if a.Report != b.Report {
			t.Fatalf("seed %d: reports differ across identical runs:\n--- first\n%s\n--- second\n%s",
				seed, a.Report, b.Report)
		}
		if !a.Passed {
			t.Fatalf("seed %d: schedule failed (sweep should have caught this):\n%s", seed, a.Report)
		}
	}
}

// TestChaosBrokenDupSuppressionCaught is the checker's own regression test:
// deliberately disable the transport's duplicate detection, inject a heavy
// duplication burst, and require the exactly-once invariant to catch the
// resulting application-level duplicates. The same schedule against an
// intact transport must pass — the violation is the broken guard's fault,
// not the schedule's.
func TestChaosBrokenDupSuppressionCaught(t *testing.T) {
	s := chaos.Schedule{Seed: 424242, Faults: []chaos.Fault{
		{Kind: chaos.KindDupBurst, AtMs: 300, DurMs: 3000, Prob: 255},
	}}
	opt := chaos.DefaultOptions()

	broken := chaos.Run(s, ChaosBuild(ChaosOptions{BreakDupSuppression: true}), opt)
	if broken.Passed {
		t.Fatalf("checker passed with duplicate suppression disabled under a dup burst:\n%s", broken.Report)
	}
	caught := false
	for _, v := range broken.Violations {
		if v.Invariant == "exactly-once" {
			caught = true
		}
	}
	if !caught {
		t.Fatalf("exactly-once invariant missed the duplicates; violations:\n%s", broken.Report)
	}

	intact := chaos.Run(s, ChaosBuild(ChaosOptions{}), opt)
	if !intact.Passed {
		t.Fatalf("intact transport failed the same schedule:\n%s", intact.Report)
	}
}

// TestChaosQuarantinedDurableDupHole pins the ROADMAP's known exactly-once
// hole ("Durable duplicate suppression across recovery"): the transport's
// dup-suppression state is volatile, so at this non-canonical cluster size a
// medium dup-burst overlapping a worker crash re-delivers a guaranteed frame
// after reboot ("delivered 2 with 0 replays"). The online monitor flags the
// duplicate the moment it lands (t=15243.259ms, long before the t≈30.6s
// quiescence the checker needs), and monitor and checker verdicts agree.
//
// Quarantined: the fix (derive the post-recovery acceptance floor from the
// recorder's replay basis, or checkpoint the suppression map — see ROADMAP)
// is future work, so the test only runs with CHAOS_RUN_QUARANTINED=1. When
// the hole is closed this test will fail loudly, flip its sense, and the
// ROADMAP item can be retired.
func TestChaosQuarantinedDurableDupHole(t *testing.T) {
	if os.Getenv("CHAOS_RUN_QUARANTINED") == "" {
		t.Skip("known exactly-once hole, quarantined until the durable dup-suppression fix lands " +
			"(ROADMAP: \"Durable duplicate suppression across recovery\"); set CHAOS_RUN_QUARANTINED=1 to run")
	}
	// chaos.Generate(8, chaos.DefaultLimits()).Hex() — pinned so the repro
	// survives any future change to the schedule generator.
	const token = "0000000000000008020000080500000000124f940c000009ea00000b1e87a5450a000005" +
		"79000006aacf975f0b000004db000004c4a56daf08000013d0000005b0ea89ee060000031a0000" +
		"0934a65b630500000343000006410aa8e0"
	s, err := chaos.DecodeHex(token)
	if err != nil {
		t.Fatalf("bad pinned token: %v", err)
	}
	res := chaos.Run(s, ChaosBuild(ChaosOptions{Nodes: 4}), chaos.DefaultOptions())
	if res.Passed {
		t.Fatalf("the durable-dup-suppression hole no longer reproduces — close the ROADMAP item, "+
			"widen the sweep to rotate cluster sizes, and delete this quarantine:\n%s", res.Report)
	}
	dup, agree := false, false
	for _, v := range res.Violations {
		if v.Invariant == "exactly-once" {
			dup = true
		}
	}
	agree = strings.Contains(res.Report, "monitor-agree      ok")
	if !dup || !agree {
		t.Fatalf("hole reproduced with an unexpected signature (want exactly-once violation with "+
			"online/post-quiescence agreement):\n%s", res.Report)
	}
}

// TestChaosRepro replays a schedule hex token from the CHAOS_SCHEDULE
// environment variable — the reproducer a failing sweep prints. Skipped
// when the variable is unset.
func TestChaosRepro(t *testing.T) {
	tok := os.Getenv("CHAOS_SCHEDULE")
	if tok == "" {
		t.Skip("set CHAOS_SCHEDULE=<hex token> to replay a failing schedule")
	}
	s, err := chaos.DecodeHex(tok)
	if err != nil {
		t.Fatalf("bad CHAOS_SCHEDULE token: %v", err)
	}
	res := chaos.Run(s, ChaosBuild(ChaosSeedVariant(s.Seed)), chaos.DefaultOptions())
	t.Logf("\n%s", res.Report)
	if !res.Passed {
		t.Fatalf("schedule %s violates %d invariant(s)", s.Hex(), len(res.Violations))
	}
}
