package publishing

import (
	"fmt"
	"os"
	"testing"

	"publishing/internal/chaos"
)

// chaosSweepSeeds is how many distinct generated schedules the sweep runs.
// Each seed is an independent scenario (its own cluster pair, workload, and
// fault schedule), so the sweep is the closest thing this repo has to a
// continuous simulation-testing fleet — just compressed into one `go test`.
const chaosSweepSeeds = 50

// TestChaosScheduleSweep generates one fault schedule per seed and requires
// every system-wide invariant to hold. On failure it prints the checker
// report and a minimized reproducer token.
func TestChaosScheduleSweep(t *testing.T) {
	lim := chaos.DefaultLimits()
	opt := chaos.DefaultOptions()
	for seed := uint64(1); seed <= chaosSweepSeeds; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed=%03d", seed), func(t *testing.T) {
			t.Parallel()
			s := chaos.Generate(seed, lim)
			build := ChaosBuild(ChaosSeedVariant(seed))
			res := chaos.Run(s, build, opt)
			if !res.Passed {
				t.Errorf("invariants violated:\n%s", res.Report)
				t.Fatal(chaos.Reproducer(s, build, opt))
			}
		})
	}
}

// TestChaosDeterministicReports runs the same schedule twice and demands
// byte-identical invariant-checker reports — the property every "reproduce
// with this seed" workflow stands on.
func TestChaosDeterministicReports(t *testing.T) {
	for _, seed := range []uint64{2, 13, 31} {
		s := chaos.Generate(seed, chaos.DefaultLimits())
		build := ChaosBuild(ChaosSeedVariant(seed))
		a := chaos.Run(s, build, chaos.DefaultOptions())
		b := chaos.Run(s, build, chaos.DefaultOptions())
		if a.Report != b.Report {
			t.Fatalf("seed %d: reports differ across identical runs:\n--- first\n%s\n--- second\n%s",
				seed, a.Report, b.Report)
		}
		if !a.Passed {
			t.Fatalf("seed %d: schedule failed (sweep should have caught this):\n%s", seed, a.Report)
		}
	}
}

// TestChaosBrokenDupSuppressionCaught is the checker's own regression test:
// deliberately disable the transport's duplicate detection, inject a heavy
// duplication burst, and require the exactly-once invariant to catch the
// resulting application-level duplicates. The same schedule against an
// intact transport must pass — the violation is the broken guard's fault,
// not the schedule's.
func TestChaosBrokenDupSuppressionCaught(t *testing.T) {
	s := chaos.Schedule{Seed: 424242, Faults: []chaos.Fault{
		{Kind: chaos.KindDupBurst, AtMs: 300, DurMs: 3000, Prob: 255},
	}}
	opt := chaos.DefaultOptions()

	broken := chaos.Run(s, ChaosBuild(ChaosOptions{BreakDupSuppression: true}), opt)
	if broken.Passed {
		t.Fatalf("checker passed with duplicate suppression disabled under a dup burst:\n%s", broken.Report)
	}
	caught := false
	for _, v := range broken.Violations {
		if v.Invariant == "exactly-once" {
			caught = true
		}
	}
	if !caught {
		t.Fatalf("exactly-once invariant missed the duplicates; violations:\n%s", broken.Report)
	}

	intact := chaos.Run(s, ChaosBuild(ChaosOptions{}), opt)
	if !intact.Passed {
		t.Fatalf("intact transport failed the same schedule:\n%s", intact.Report)
	}
}

// TestChaosRepro replays a schedule hex token from the CHAOS_SCHEDULE
// environment variable — the reproducer a failing sweep prints. Skipped
// when the variable is unset.
func TestChaosRepro(t *testing.T) {
	tok := os.Getenv("CHAOS_SCHEDULE")
	if tok == "" {
		t.Skip("set CHAOS_SCHEDULE=<hex token> to replay a failing schedule")
	}
	s, err := chaos.DecodeHex(tok)
	if err != nil {
		t.Fatalf("bad CHAOS_SCHEDULE token: %v", err)
	}
	res := chaos.Run(s, ChaosBuild(ChaosSeedVariant(s.Seed)), chaos.DefaultOptions())
	t.Logf("\n%s", res.Report)
	if !res.Passed {
		t.Fatalf("schedule %s violates %d invariant(s)", s.Hex(), len(res.Violations))
	}
}
