package publishing_test

// Recovery-path comparison behind BENCH_recorder.json: the same 64-node
// crash->detect->replay->recovered cycle run against the classic single
// recorder and against the sharded replicated trio (three recorders,
// sixteen shard slots). The headline metric is the virtual crash-to-
// recovered window: with a single recorder every stream's replay funnels
// through one node; with sharding the worker's shard leader serves the
// replay basis from its partition while the other recorders carry the rest
// of the cluster's tap load.

import (
	"testing"

	"publishing"
	"publishing/internal/simtime"
	"publishing/internal/trace"
)

// benchRecoveryCluster assembles the 64-node producer/worker/witness
// pipeline with bystander stations, crashes the worker at t=1200 ms, and
// returns the virtual crash-to-recovery-done window plus the number of
// stable-store records held by the recorder that served the replay — the
// single recorder's whole database in classic mode, the worker-shard
// leader's partition in sharded mode.
func benchRecoveryCluster(tb testing.TB, recorders, shardSlots int) (simtime.Time, int) {
	tb.Helper()
	cfg := publishing.DefaultConfig(64)
	// Same modern-LAN shape the 64-node chaos and throughput scenarios use:
	// on the paper's 10 Mb/s Ethernet the recorder's watchdog pings alone
	// saturate the bus at this width (see ChaosScenario), and the benchmark
	// would measure congestion rather than the replay pipeline.
	cfg.LAN.BitsPerSecond = 100_000_000
	cfg.LAN.InterframeGap = 50 * simtime.Microsecond
	cfg.Recorders = recorders
	cfg.ShardSlots = shardSlots
	c := publishing.New(cfg)

	var got int
	c.Registry().RegisterMachine("witness", func(args []byte) publishing.Machine {
		return countSink{n: &got}
	})
	c.Registry().RegisterMachine("worker", func(args []byte) publishing.Machine {
		return &benchWorker{}
	})
	c.Registry().RegisterProgram("producer", func(args []byte) publishing.Program {
		return func(ctx *publishing.PCtx) {
			l, _ := ctx.ServiceLink("worker")
			for j := 0; j < 12; j++ {
				_ = ctx.Send(l, []byte{byte(j + 1)}, publishing.NoLink)
				ctx.Compute(200 * simtime.Millisecond)
			}
		}
	})
	wit, _ := c.Spawn(2, publishing.ProcSpec{Name: "witness", Recoverable: true})
	c.SetService("witness", wit)
	worker, _ := c.Spawn(1, publishing.ProcSpec{Name: "worker", Recoverable: true})
	c.SetService("worker", worker)
	c.Spawn(0, publishing.ProcSpec{Name: "producer", Recoverable: true})
	c.Scheduler().At(1200*simtime.Millisecond, func() { c.CrashProcess(worker) })
	c.Run(60 * simtime.Second)
	if got != 12 {
		tb.Fatalf("recovery failed: witness saw %d of 12", got)
	}

	var crashAt, doneAt simtime.Time
	for _, e := range c.Trace().OfKind(trace.KindCrash) {
		if e.Subject == worker.String() {
			crashAt = e.At
			break
		}
	}
	for _, e := range c.Trace().OfKind(trace.KindRecoveryDone) {
		if e.Subject == worker.String() {
			doneAt = e.At
		}
	}
	if doneAt <= crashAt {
		tb.Fatalf("no recovery window in trace (crash %v, done %v)", crashAt, doneAt)
	}

	serving := 0
	if sm := c.ShardMap(); sm != nil {
		serving = sm.Leader(sm.ShardOf(worker))
	}
	recs, err := c.StoreAt(serving).ReadAll()
	if err != nil {
		tb.Fatalf("replay-serving recorder store: %v", err)
	}
	return doneAt - crashAt, len(recs)
}

func benchRecorderRecovery(b *testing.B, recorders, shardSlots int) {
	var window simtime.Time
	var records int
	for i := 0; i < b.N; i++ {
		window, records = benchRecoveryCluster(b, recorders, shardSlots)
	}
	b.ReportMetric(window.Milliseconds(), "recovery_virtual_ms")
	b.ReportMetric(float64(records), "serving_store_records")
}

// BenchmarkRecoverySingleRecorder64 is the baseline: one recorder owns every
// stream, so the crashed worker's replay basis comes from the only copy.
func BenchmarkRecoverySingleRecorder64(b *testing.B) {
	benchRecorderRecovery(b, 1, 0)
}

// BenchmarkRecoveryShardUnion64 runs the sharded replicated trio: the
// worker's shard leader assembles the replay basis from its partition, and
// the full basis is well-defined only over the shard union.
func BenchmarkRecoveryShardUnion64(b *testing.B) {
	benchRecorderRecovery(b, 3, 16)
}

// TestBenchRecoveryShardUnionRuns keeps the benchmark scenario itself under
// tier-1: both configurations must complete the recovery and report a
// positive virtual window even when no benchmark run is requested.
func TestBenchRecoveryShardUnionRuns(t *testing.T) {
	if testing.Short() {
		t.Skip("64-node recovery scenario skipped in -short")
	}
	for _, tc := range []struct {
		name       string
		recorders  int
		shardSlots int
	}{
		{"single", 1, 0},
		{"sharded", 3, 16},
	} {
		t.Run(tc.name, func(t *testing.T) {
			w, n := benchRecoveryCluster(t, tc.recorders, tc.shardSlots)
			t.Logf("%s: crash-to-recovered %v, %d records on the serving recorder", tc.name, w, n)
		})
	}
}
