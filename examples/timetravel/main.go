// Timetravel: §6.5's replay debugger. "One of the great problems of
// distributed debugging is finding out what happened after the fact. ...
// A programmer would like some way of backing up a process to the point
// where the problem originally occurred."
//
// A stock-tracker process keeps a running minimum/maximum over a feed of
// prices and has a planted bug: it mishandles one specific input. We let it
// run live (the bad state silently corrupts), then open a debugging session
// against its published history, single-step with a breakpoint on the first
// step whose output disagrees with a reference model, and pinpoint the
// culprit message — without touching the live process.
//
// Run: go run ./examples/timetravel
package main

import (
	"bytes"
	"encoding/gob"
	"fmt"

	"publishing"
	"publishing/internal/debugger"
)

// trackerState is the stock tracker's state.
type trackerState struct {
	Out      publishing.LinkID
	HasOut   bool
	Min, Max int
	Seen     int
}

type tracker struct{ st trackerState }

func (t *tracker) Init(ctx *publishing.PCtx) {
	t.st.Min = 1 << 30
	t.st.Max = -(1 << 30)
	if l, err := ctx.ServiceLink("display"); err == nil {
		t.st.Out = l
		t.st.HasOut = true
	}
}

func (t *tracker) Handle(ctx *publishing.PCtx, m publishing.Msg) {
	price := int(m.Body[0])
	t.st.Seen++
	// The planted bug: price 42 is compared with the wrong sign, so the
	// minimum can be corrupted upward.
	if price == 42 {
		if price > t.st.Min { // should be <
			t.st.Min = price
		}
	} else {
		if price < t.st.Min {
			t.st.Min = price
		}
	}
	if price > t.st.Max {
		t.st.Max = price
	}
	if t.st.HasOut {
		_ = ctx.Send(t.st.Out, []byte(fmt.Sprintf("after %d ticks: min=%d max=%d", t.st.Seen, t.st.Min, t.st.Max)), publishing.NoLink)
	}
}

func (t *tracker) Snapshot() ([]byte, error) {
	var buf bytes.Buffer
	err := gob.NewEncoder(&buf).Encode(&t.st)
	return buf.Bytes(), err
}
func (t *tracker) Restore(b []byte) error {
	return gob.NewDecoder(bytes.NewReader(b)).Decode(&t.st)
}

func main() {
	prices := []int{50, 47, 44, 42, 45, 48, 41, 49}

	cfg := publishing.DefaultConfig(2)
	c := publishing.New(cfg)
	c.Registry().RegisterMachine("tracker", func(args []byte) publishing.Machine { return &tracker{} })
	c.Registry().RegisterMachine("display", func(args []byte) publishing.Machine { return display{} })
	c.Registry().RegisterProgram("feed", func(args []byte) publishing.Program {
		return func(ctx *publishing.PCtx) {
			l, _ := ctx.ServiceLink("tracker")
			for _, p := range prices {
				_ = ctx.Send(l, []byte{byte(p)}, publishing.NoLink)
				ctx.Compute(100 * publishing.Millisecond)
			}
		}
	})

	disp, err := c.Spawn(1, publishing.ProcSpec{Name: "display", Recoverable: true})
	check(err)
	c.SetService("display", disp)
	trk, err := c.Spawn(0, publishing.ProcSpec{Name: "tracker", Recoverable: true})
	check(err)
	c.SetService("tracker", trk)
	_, err = c.Spawn(1, publishing.ProcSpec{Name: "feed", Recoverable: true})
	check(err)

	c.Run(30 * publishing.Second)
	fmt.Printf("live run done over prices %v\n", prices)
	fmt.Println("the reported minimum is wrong; opening a replay-debugging session...")

	// Reference model for the breakpoint predicate.
	refMin := func(upto int) int {
		min := 1 << 30
		for _, p := range prices[:upto] {
			if p < min {
				min = p
			}
		}
		return min
	}

	sess, err := c.DebugSession(trk, false)
	check(err)
	res, found := sess.RunUntil(func(r debugger.StepResult) bool {
		var st trackerState
		if r.State == nil || gob.NewDecoder(bytes.NewReader(r.State)).Decode(&st) != nil {
			return false
		}
		return st.Min != refMin(r.Position)
	})
	if !found {
		fmt.Println("no divergence found — UNEXPECTED")
		return
	}
	fmt.Printf("\nbreakpoint hit at step %d:\n", res.Position)
	fmt.Printf("  offending message: price=%d from %s (%s)\n",
		res.Delivered.Body[0], res.Delivered.From, res.Delivered.ID)
	for _, o := range res.Outputs {
		fmt.Printf("  process output at that step: %s\n", o)
	}
	var st trackerState
	check(gob.NewDecoder(bytes.NewReader(res.State)).Decode(&st))
	fmt.Printf("  state after step: min=%d (reference says %d)\n", st.Min, refMin(res.Position))

	if res.Delivered.Body[0] == 42 {
		fmt.Println("\nthe published history pinpointed the bad input without touching the live system ✓")
	} else {
		fmt.Println("\nUNEXPECTED RESULT")
	}
}

type display struct{}

func (display) Init(ctx *publishing.PCtx)                     {}
func (display) Handle(ctx *publishing.PCtx, m publishing.Msg) {}
func (display) Snapshot() ([]byte, error)                     { return nil, nil }
func (display) Restore(b []byte) error                        { return nil }

func check(err error) {
	if err != nil {
		panic(err)
	}
}
