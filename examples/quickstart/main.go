// Quickstart: the paper's headline behaviour in ~100 lines.
//
// A counter process accumulates values a producer sends it, reporting each
// step to a logger process. Halfway through, we crash the counter with a
// simulated fault. The recorder detects the crash, recreates the counter
// from its initial image, replays its published messages (the counter
// recomputes its state), suppresses the outputs it re-sends, and hands it
// back to the network — the logger sees every step exactly once, in order,
// as if nothing had happened.
//
// Run: go run ./examples/quickstart
package main

import (
	"bytes"
	"encoding/gob"
	"fmt"

	"publishing"
)

// counterState is the counter's checkpointable state.
type counterState struct {
	Logger publishing.LinkID
	HasLog bool
	Count  int
	Sum    int
}

// counter is a Machine: one message at a time, explicit state.
type counter struct{ st counterState }

func (c *counter) Init(ctx *publishing.PCtx) {
	if l, err := ctx.ServiceLink("logger"); err == nil {
		c.st.Logger = l
		c.st.HasLog = true
	}
}

func (c *counter) Handle(ctx *publishing.PCtx, m publishing.Msg) {
	c.st.Count++
	c.st.Sum += int(m.Body[0])
	if c.st.HasLog {
		line := fmt.Sprintf("step %2d: sum = %d", c.st.Count, c.st.Sum)
		_ = ctx.Send(c.st.Logger, []byte(line), publishing.NoLink)
	}
}

func (c *counter) Snapshot() ([]byte, error) {
	var buf bytes.Buffer
	err := gob.NewEncoder(&buf).Encode(&c.st)
	return buf.Bytes(), err
}

func (c *counter) Restore(b []byte) error {
	return gob.NewDecoder(bytes.NewReader(b)).Decode(&c.st)
}

func main() {
	cfg := publishing.DefaultConfig(3) // nodes 0..2 + recorder on node 3
	c := publishing.New(cfg)

	var lines []string
	c.Registry().RegisterMachine("counter", func(args []byte) publishing.Machine {
		return &counter{}
	})
	c.Registry().RegisterMachine("logger", func(args []byte) publishing.Machine {
		return loggerMachine{collect: func(s string) { lines = append(lines, s) }}
	})
	c.Registry().RegisterProgram("producer", func(args []byte) publishing.Program {
		return func(ctx *publishing.PCtx) {
			target, err := ctx.ServiceLink("counter")
			if err != nil {
				panic(err)
			}
			for i := 1; i <= 10; i++ {
				_ = ctx.Send(target, []byte{byte(i)}, publishing.NoLink)
				ctx.Compute(200 * publishing.Millisecond)
			}
		}
	})

	logger, err := c.Spawn(2, publishing.ProcSpec{Name: "logger", Recoverable: true})
	check(err)
	c.SetService("logger", logger)
	cnt, err := c.Spawn(1, publishing.ProcSpec{Name: "counter", Recoverable: true})
	check(err)
	c.SetService("counter", cnt)
	_, err = c.Spawn(0, publishing.ProcSpec{Name: "producer", Recoverable: true})
	check(err)

	// Crash the counter after ~5 messages.
	c.Scheduler().At(1100*publishing.Millisecond, func() {
		fmt.Println("*** injecting fault into the counter ***")
		c.CrashProcess(cnt)
	})

	c.Run(60 * publishing.Second)

	fmt.Println("logger received:")
	for _, l := range lines {
		fmt.Println("   ", l)
	}
	st := c.Recorder().Stats()
	fmt.Printf("\nrecorder: %d messages published, %d replayed, %d recoveries completed\n",
		st.ArrivalsRecorded, st.MessagesReplayed, st.RecoveriesCompleted)
	fmt.Printf("kernel on node 1 suppressed %d duplicate outputs during re-execution\n",
		c.Kernel(1).Stats().Suppressed)
	if len(lines) == 10 && lines[9] == "step 10: sum = 55" {
		fmt.Println("\ntransparent recovery: the crash left no trace in the computation ✓")
	} else {
		fmt.Println("\nUNEXPECTED RESULT — recovery failed")
	}
}

// loggerMachine prints and collects lines.
type loggerMachine struct{ collect func(string) }

func (l loggerMachine) Init(ctx *publishing.PCtx) {}
func (l loggerMachine) Handle(ctx *publishing.PCtx, m publishing.Msg) {
	l.collect(string(m.Body))
}
func (l loggerMachine) Snapshot() ([]byte, error) { return nil, nil }
func (l loggerMachine) Restore(b []byte) error    { return nil }

func check(err error) {
	if err != nil {
		panic(err)
	}
}
