// Tokenring: the §6.1.2 medium. The recorder's acknowledge field rides in
// every ring slot: a frame is unreadable until the recorder has filled it,
// and a destination that sits upstream of the recorder reads the frame on
// its second pass around the ring. This example runs the standard
// crash-and-recover pipeline on a ring and then shows the recorder-failure
// behaviour: with the recorder down, slots circulate with empty acknowledge
// fields and nobody may consume them — traffic suspends, then resumes on
// restart.
//
// Run: go run ./examples/tokenring
package main

import (
	"fmt"

	"publishing"
)

func main() {
	cfg := publishing.DefaultConfig(3)
	cfg.Medium = publishing.MediumRing
	c := publishing.New(cfg)

	var got []string
	c.Registry().RegisterMachine("sink", func(args []byte) publishing.Machine {
		return sink{collect: func(s string) { got = append(got, s) }}
	})
	c.Registry().RegisterMachine("relay", func(args []byte) publishing.Machine {
		return &relay{}
	})
	c.Registry().RegisterProgram("source", func(args []byte) publishing.Program {
		return func(ctx *publishing.PCtx) {
			l, _ := ctx.ServiceLink("relay")
			for i := 1; i <= 12; i++ {
				_ = ctx.Send(l, []byte{byte(i)}, publishing.NoLink)
				ctx.Compute(250 * publishing.Millisecond)
			}
		}
	})

	snk, err := c.Spawn(2, publishing.ProcSpec{Name: "sink", Recoverable: true})
	check(err)
	c.SetService("sink", snk)
	rel, err := c.Spawn(1, publishing.ProcSpec{Name: "relay", Recoverable: true})
	check(err)
	c.SetService("relay", rel)
	_, err = c.Spawn(0, publishing.ProcSpec{Name: "source", Recoverable: true})
	check(err)

	// Crash the relay mid-stream; ring replay recovers it.
	c.Scheduler().At(1100*publishing.Millisecond, func() {
		fmt.Println("*** relay crashes ***")
		c.CrashProcess(rel)
	})
	// Then take the recorder down and watch the ring seize.
	c.Scheduler().At(5*publishing.Second, func() {
		fmt.Println("*** recorder crashes: empty ack fields, ring unusable ***")
		c.CrashRecorder()
	})
	c.Run(8 * publishing.Second)
	blocked := len(got)
	c.Run(3 * publishing.Second)
	seized := len(got) == blocked
	fmt.Printf("while recorder down: sink stuck at %d messages (ring seized: %v)\n", blocked, seized)
	check(c.RestartRecorder())
	fmt.Println("*** recorder restarted ***")
	c.Run(2 * publishing.Minute)

	fmt.Printf("sink finally received %d messages: %v\n", len(got), got)
	stats := c.Medium().Stats()
	fmt.Printf("ring stats: %v\n", stats)

	ok := len(got) == 12 && seized
	for i, s := range got {
		if s != fmt.Sprintf("relayed %d", i+1) {
			ok = false
		}
	}
	if ok {
		fmt.Println("\nexactly-once, in-order delivery across a process crash and a recorder outage, on a token ring ✓")
	} else {
		fmt.Println("\nUNEXPECTED RESULT")
	}
}

// relay forwards each value to the sink with its own counter attached.
type relay struct {
	st struct {
		Sink   publishing.LinkID
		HasOut bool
		N      int
	}
}

func (r *relay) Init(ctx *publishing.PCtx) {
	if l, err := ctx.ServiceLink("sink"); err == nil {
		r.st.Sink = l
		r.st.HasOut = true
	}
}
func (r *relay) Handle(ctx *publishing.PCtx, m publishing.Msg) {
	r.st.N++
	if r.st.HasOut {
		_ = ctx.Send(r.st.Sink, []byte(fmt.Sprintf("relayed %d", r.st.N)), publishing.NoLink)
	}
}
func (r *relay) Snapshot() ([]byte, error) {
	return []byte{byte(r.st.N), b2b(r.st.HasOut), byte(r.st.Sink)}, nil
}
func (r *relay) Restore(b []byte) error {
	r.st.N = int(b[0])
	r.st.HasOut = b[1] == 1
	r.st.Sink = publishing.LinkID(b[2])
	return nil
}

func b2b(b bool) byte {
	if b {
		return 1
	}
	return 0
}

type sink struct{ collect func(string) }

func (s sink) Init(ctx *publishing.PCtx)                     {}
func (s sink) Handle(ctx *publishing.PCtx, m publishing.Msg) { s.collect(string(m.Body)) }
func (s sink) Snapshot() ([]byte, error)                     { return nil, nil }
func (s sink) Restore(b []byte) error                        { return nil }

func check(err error) {
	if err != nil {
		panic(err)
	}
}
