// Keysearch: Chapter 1's motivating computation. Diffie and Hellman's
// exhaustive attack partitions a key space across many machines: "A
// controlling computer partitions the search space ... The computers then
// exhaustively search their partitions. When one finds a solution, it
// informs the controller." The paper's reliability motivation is exactly
// this workload: with a day-long computation and a fleet MTBF of six
// minutes, the search cannot finish unless crashed workers recover.
//
// This example runs the search twice over the same deterministic fault
// schedule: once with publishing (every crashed worker transparently
// resumes — the key is found) and once without (crashed workers die with
// their partial work; their partitions are never searched and the key is
// lost if it lay in one of them).
//
// Run: go run ./examples/keysearch
package main

import (
	"bytes"
	"encoding/binary"
	"encoding/gob"
	"fmt"

	"publishing"
)

// The "cipher": a key matches if hash(key) == target. Workers grind
// candidate keys in chunks, asking the controller for work between chunks
// so progress is a published interaction.
func hash(key uint32) uint32 {
	x := key
	x ^= x >> 16
	x *= 0x7feb352d
	x ^= x >> 15
	x *= 0x846ca68b
	x ^= x >> 16
	return x
}

const (
	keySpace  = 1 << 16 // 65536 candidate keys
	chunkSize = 512
	secretKey = 51200 + 137 // lives in a late partition
)

// Protocol bodies (gob).
type (
	// WantWork is a worker's request for a chunk (passes a reply link once).
	WantWork struct{ Worker int }
	// Chunk assigns [Start, Start+Len) to a worker; Done=true means the
	// space is exhausted or the key was found.
	Chunk struct {
		Start, Len uint32
		Done       bool
	}
	// Found reports the answer.
	Found struct {
		Key    uint32
		Worker int
	}
)

type wire struct {
	Want  *WantWork
	Chunk *Chunk
	Found *Found
}

func enc(v any) []byte {
	var w wire
	switch m := v.(type) {
	case *WantWork:
		w.Want = m
	case *Chunk:
		w.Chunk = m
	case *Found:
		w.Found = m
	}
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(&w); err != nil {
		panic(err)
	}
	return buf.Bytes()
}

func dec(b []byte) *wire {
	var w wire
	if err := gob.NewDecoder(bytes.NewReader(b)).Decode(&w); err != nil {
		return &wire{}
	}
	return &w
}

// controller hands out chunks and collects the answer.
type controller struct {
	st struct {
		Next    uint32
		Workers map[int]publishing.LinkID
		Found   bool
		Key     uint32
		By      int
	}
}

func (c *controller) Init(ctx *publishing.PCtx) {
	c.st.Workers = make(map[int]publishing.LinkID)
}

func (c *controller) Handle(ctx *publishing.PCtx, m publishing.Msg) {
	w := dec(m.Body)
	switch {
	case w.Want != nil:
		if m.Link != publishing.NoLink {
			c.st.Workers[w.Want.Worker] = m.Link
		}
		reply, ok := c.st.Workers[w.Want.Worker]
		if !ok {
			return
		}
		if c.st.Found || c.st.Next >= keySpace {
			_ = ctx.Send(reply, enc(&Chunk{Done: true}), publishing.NoLink)
			return
		}
		chunk := &Chunk{Start: c.st.Next, Len: chunkSize}
		c.st.Next += chunkSize
		_ = ctx.Send(reply, enc(chunk), publishing.NoLink)
	case w.Found != nil:
		if !c.st.Found {
			c.st.Found = true
			c.st.Key = w.Found.Key
			c.st.By = w.Found.Worker
		}
	}
}

func (c *controller) Snapshot() ([]byte, error) {
	var buf bytes.Buffer
	err := gob.NewEncoder(&buf).Encode(&c.st)
	return buf.Bytes(), err
}
func (c *controller) Restore(b []byte) error {
	return gob.NewDecoder(bytes.NewReader(b)).Decode(&c.st)
}

// worker grinds chunks. It is a Program: plain sequential code, recovered
// by re-execution — the paper's bread and butter.
func worker(target uint32) func(args []byte) publishing.Program {
	return func(args []byte) publishing.Program {
		id := int(binary.BigEndian.Uint32(args))
		return func(ctx *publishing.PCtx) {
			ctl, err := ctx.ServiceLink("controller")
			if err != nil {
				panic(err)
			}
			reply := ctx.CreateLink(publishing.ChanReply, 0)
			// The reply link travels once; afterwards the controller keeps it.
			_ = ctx.Send(ctl, enc(&WantWork{Worker: id}), reply)
			for {
				m := ctx.Receive(publishing.ChanReply)
				w := dec(m.Body)
				if w.Chunk == nil || w.Chunk.Done {
					return
				}
				for k := w.Chunk.Start; k < w.Chunk.Start+w.Chunk.Len; k++ {
					if hash(k) == hash(secretKey) {
						_ = ctx.Send(ctl, enc(&Found{Key: k, Worker: id}), publishing.NoLink)
					}
				}
				ctx.Compute(500 * publishing.Millisecond) // the grinding
				_ = ctx.Send(ctl, enc(&WantWork{Worker: id}), publishing.NoLink)
			}
		}
	}
}

func run(withPublishing bool) (found bool, key uint32, recoveries uint64, elapsed publishing.Time) {
	const workers = 4
	cfg := publishing.DefaultConfig(workers + 1)
	cfg.Publishing = withPublishing
	c := publishing.New(cfg)

	// The factory hands us a pointer to the live (latest) controller
	// incarnation so we can read the result after the run.
	var live *controller
	c.Registry().RegisterMachine("controller", func(args []byte) publishing.Machine {
		live = &controller{}
		return live
	})
	c.Registry().RegisterProgram("worker", worker(hash(secretKey)))

	ctl, err := c.Spawn(0, publishing.ProcSpec{Name: "controller", Recoverable: true})
	if err != nil {
		panic(err)
	}
	c.SetService("controller", ctl)
	var pids []publishing.ProcID
	for i := 0; i < workers; i++ {
		args := make([]byte, 4)
		binary.BigEndian.PutUint32(args, uint32(i))
		pid, err := c.Spawn(publishing.NodeID(i+1), publishing.ProcSpec{
			Name: "worker", Args: args, Recoverable: true,
		})
		if err != nil {
			panic(err)
		}
		pids = append(pids, pid)
	}

	// The fault schedule: one worker crashes every three seconds; without
	// recovery the whole fleet is dead well before the space is searched
	// (the paper's six-minute MTBF, scaled to the example's pace).
	for i, at := range []publishing.Time{3, 6, 9, 12} {
		i, at := i, at
		c.Scheduler().At(at*publishing.Second, func() {
			c.CrashProcess(pids[i%workers])
		})
	}

	c.Run(12 * publishing.Minute)

	found, key = live.st.Found, live.st.Key
	if withPublishing {
		recoveries = c.Recorder().Stats().RecoveriesCompleted
	}
	return found, key, recoveries, c.Now()
}

func main() {
	fmt.Println("distributed key search (Chapter 1's motivating computation)")
	fmt.Printf("key space %d, secret key %d, 4 workers, one worker crashes every 3s\n\n", keySpace, secretKey)

	found, key, recoveries, t := run(true)
	fmt.Printf("with publishing:    found=%v key=%d after %v (%d recoveries)\n", found, key, t, recoveries)

	foundNo, _, _, t2 := run(false)
	fmt.Printf("without publishing: found=%v after %v (crashed workers stay dead)\n", foundNo, t2)

	if found && key == secretKey && !foundNo {
		fmt.Println("\npublishing turned an unfinishable computation into a finishable one ✓")
	} else {
		fmt.Println("\nUNEXPECTED RESULT")
	}
}
