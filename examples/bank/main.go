// Bank: §6.4's transactions over published communications. Two "branch"
// participants hold account balances; a coordinator runs two-phase commit
// across them. The section's point is what this system does NOT have: no
// per-node stable storage for intentions or transaction state. Everything a
// textbook 2PC would write to a local log lives in plain process state,
// because crash recovery — replay from the recorder — rebuilds it.
//
// We run a stream of transfers while crashing a participant twice and the
// coordinator once. Every transaction still commits exactly once; the books
// balance to the cent.
//
// Run: go run ./examples/bank
package main

import (
	"fmt"

	"publishing"
	"publishing/internal/demos"
	"publishing/internal/txn"
)

func main() {
	cfg := publishing.DefaultConfig(3)
	c := publishing.New(cfg)
	txn.Register(c.Registry())

	type result struct {
		outcomes []txn.Outcome
		alice    int
		bob      int
	}
	var res result

	c.Registry().RegisterProgram("teller", func(args []byte) publishing.Program {
		return func(ctx *publishing.PCtx) {
			coord, err := ctx.ServiceLink("coord")
			if err != nil {
				panic(err)
			}
			begin := func(ops []txn.Op) txn.Outcome {
				m := ctx.Request(coord, txn.Encode(&txn.Begin{Ops: ops}), demos.ChanReply, 0)
				v, err := txn.Decode(m.Body)
				if err != nil {
					panic(err)
				}
				return *v.(*txn.Outcome)
			}
			// Fund alice, then stream ten 7-unit transfers to bob, then one
			// deliberate overdraft that must abort atomically.
			res.outcomes = append(res.outcomes, begin([]txn.Op{
				{Participant: "branchA", Key: "alice", Delta: 100},
			}))
			for i := 0; i < 10; i++ {
				res.outcomes = append(res.outcomes, begin([]txn.Op{
					{Participant: "branchA", Key: "alice", Delta: -7},
					{Participant: "branchB", Key: "bob", Delta: 7},
				}))
			}
			res.outcomes = append(res.outcomes, begin([]txn.Op{
				{Participant: "branchA", Key: "alice", Delta: -1000},
				{Participant: "branchB", Key: "bob", Delta: 1000},
			}))

			read := func(svc, key string) int {
				l, _ := ctx.ServiceLink(svc)
				m := ctx.Request(l, txn.Encode(&txn.Read{Key: key}), demos.ChanReply, 0)
				v, err := txn.Decode(m.Body)
				if err != nil {
					panic(err)
				}
				return v.(*txn.ReadReply).Value
			}
			res.alice = read("branchA", "alice")
			res.bob = read("branchB", "bob")
		}
	})

	branchA, err := c.Spawn(1, publishing.ProcSpec{Name: txn.ImageParticipant, Recoverable: true})
	check(err)
	branchB, err := c.Spawn(2, publishing.ProcSpec{Name: txn.ImageParticipant, Recoverable: true})
	check(err)
	c.SetService("branchA", branchA)
	c.SetService("branchB", branchB)
	coord, err := c.Spawn(0, publishing.ProcSpec{
		Name:        txn.ImageCoordinator,
		Args:        txn.EncodeParticipants([]string{"branchA", "branchB"}),
		Recoverable: true,
	})
	check(err)
	c.SetService("coord", coord)
	_, err = c.Spawn(0, publishing.ProcSpec{Name: "teller", Recoverable: true})
	check(err)

	// Fault schedule: branch B crashes twice, the coordinator once.
	c.Scheduler().At(2*publishing.Second, func() {
		fmt.Println("*** branch B crashes ***")
		c.CrashProcess(branchB)
	})
	c.Scheduler().At(6*publishing.Second, func() {
		fmt.Println("*** the coordinator crashes mid-2PC ***")
		c.CrashProcess(coord)
	})
	c.Scheduler().At(10*publishing.Second, func() {
		fmt.Println("*** branch B crashes again ***")
		c.CrashProcess(branchB)
	})

	c.Run(5 * publishing.Minute)

	committed, aborted := 0, 0
	for _, o := range res.outcomes {
		if o.Committed {
			committed++
		} else {
			aborted++
		}
	}
	fmt.Printf("\n%d transactions: %d committed, %d aborted\n", len(res.outcomes), committed, aborted)
	fmt.Printf("final balances: alice=%d bob=%d (total %d)\n", res.alice, res.bob, res.alice+res.bob)
	fmt.Printf("recoveries completed: %d\n", c.Recorder().Stats().RecoveriesCompleted)

	if committed == 11 && aborted == 1 && res.alice == 30 && res.bob == 70 {
		fmt.Println("\natomicity survived every crash with zero local stable storage ✓")
	} else {
		fmt.Println("\nUNEXPECTED RESULT")
	}
}

func check(err error) {
	if err != nil {
		panic(err)
	}
}
