package publishing

import (
	"strings"
	"testing"

	"publishing/internal/chaos"
	"publishing/internal/simtime"
)

// shardedOpt is the canonical sharded-recorder chaos configuration: three
// recorders so the rendezvous map actually partitions streams (with two,
// every slot's replica set is both recorders), sixteen slots so every
// recorder pair shares some slots.
var shardedOpt = ChaosOptions{Recorders: 3, ShardSlots: 16}

// TestChaosShardedBaseline runs the canonical scenario on a sharded
// recorder cluster with no faults at all and requires every invariant —
// including the sharded-only replay-basis-union — to hold, with the I8 line
// present in the report. This is the sanity floor under the fault tests: if
// plain traffic can't keep the shard union complete, no crash schedule
// result means anything.
func TestChaosShardedBaseline(t *testing.T) {
	s := chaos.Schedule{Seed: 77}
	res := chaos.Run(s, ChaosBuild(shardedOpt), chaos.DefaultOptions())
	if !res.Passed {
		t.Fatalf("fault-free sharded run violated invariants:\n%s", res.Report)
	}
	if !strings.Contains(res.Report, "replay-basis-union ok") {
		t.Fatalf("report is missing the replay-basis-union invariant line:\n%s", res.Report)
	}
}

// TestChaosShardedHandoffCrash is the tentpole's chaos reproducer: crash a
// recorder, restart it so it begins pulling its shard basis back from its
// partner, and kill the partner a few chunks into the transfer. The
// requester must fall back to its local basis, the worker's crash must
// still recover exactly-once, and the post-quiescence shard union must be
// complete (I8).
func TestChaosShardedHandoffCrash(t *testing.T) {
	const seed = 99
	// Aim the fault at the worker stream's own replica pair: the victim must
	// replicate a busy stream, and the partner Apply arms (victim+1 mod n)
	// must be the slot's other replica, so the transfer it dies serving
	// actually carries the worker's basis.
	probe := ChaosScenario(seed, shardedOpt)
	sm := probe.Sys.(*Cluster).ShardMap()
	slot := sm.ShardOf(probe.Targets.Worker)
	lead, fol := sm.Leader(slot), sm.Follower(slot)
	victim := lead
	if (fol+1)%sm.Recorders() == lead {
		victim = fol
	} else if (lead+1)%sm.Recorders() != fol {
		t.Fatalf("worker slot %d replicas rec%d/rec%d are not an adjacent pair", slot, lead, fol)
	}
	s := chaos.Schedule{Seed: seed, Faults: []chaos.Fault{
		{Kind: chaos.KindHandoffCrash, AtMs: 600, DurMs: 2400, A: uint8(victim), B: 0},
		{Kind: chaos.KindProcCrash, AtMs: 1500, A: 0},
	}}
	res := chaos.Run(s, ChaosBuild(shardedOpt), chaos.DefaultOptions())
	if !res.Passed {
		t.Fatalf("mid-handoff recorder crash violated invariants:\n%s", res.Report)
	}
	if !strings.Contains(res.Report, "replay-basis-union ok") {
		t.Fatalf("report is missing the replay-basis-union invariant line:\n%s", res.Report)
	}

	// The invariant verdict alone could be vacuous if the armed crash never
	// fired (say the handoff finished in fewer chunks than the trigger).
	// Re-drive the same schedule directly and require the injected
	// mid-transfer crash in the trace.
	sc := ChaosScenario(s.Seed, shardedOpt)
	chaos.Apply(sc.Sys, s, sc.Targets)
	sc.Sys.RunUntil(sc.Work.Done, 4*simtime.Minute)
	sc.Sys.Run(15 * simtime.Second)
	fired := false
	for _, e := range sc.Sys.Trace().Events() {
		if strings.Contains(e.Detail, "injected crash mid-handoff") {
			fired = true
			break
		}
	}
	if !fired {
		t.Fatalf("armed handoff crash never fired; the schedule exercises nothing")
	}
}
