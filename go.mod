module publishing

go 1.22
