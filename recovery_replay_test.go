package publishing

import (
	"bytes"
	"fmt"
	"testing"

	"publishing/internal/simtime"
)

// replayDigest runs the standard pipeline with a mid-stream worker crash and
// returns a sweep-style digest of everything the computation can observe:
// the witness's exact delivery sequence plus the replay counters. Replay
// transport details (batch sizes, windows) must never show up here — only
// order and content.
func replayDigest(t *testing.T, tune func(*Config)) []byte {
	t.Helper()
	cfg := DefaultConfig(3)
	if tune != nil {
		tune(&cfg)
	}
	c, sink, worker := buildScenario(t, cfg, 16)
	c.Scheduler().At(1500*simtime.Millisecond, func() { c.CrashProcess(worker) })
	c.Run(90 * simtime.Second)
	expectSteps(t, sink, 16)
	var buf bytes.Buffer
	for _, m := range sink.msgs {
		fmt.Fprintln(&buf, m)
	}
	rs := c.Recorder().Stats()
	fmt.Fprintf(&buf, "replayed=%d recoveries=%d\n", rs.MessagesReplayed, rs.RecoveriesCompleted)
	return buf.Bytes()
}

// Batching is a transport optimization, not a semantics change: the batched
// pipeline must deliver the replayed stream in exactly the order and content
// the serial one-message-per-frame ablation does, for the same (config,
// seed) — and each variant must be deterministic in its own right.
func TestBatchedReplayMatchesSerialDigest(t *testing.T) {
	serialize := func(cfg *Config) {
		cfg.ReplayWindow = 1
		cfg.ReplayBatchBytes = 1 // one message per batch: the serial ablation
	}
	batched := replayDigest(t, nil)
	serial := replayDigest(t, serialize)
	if !bytes.Equal(batched, serial) {
		t.Fatalf("batched and serial replay digests diverge:\nbatched:\n%s\nserial:\n%s", batched, serial)
	}
	if again := replayDigest(t, nil); !bytes.Equal(batched, again) {
		t.Fatal("batched replay is not deterministic across runs of the same seed")
	}
}

// A recursive crash (§3.5) mid-replay: the second fault arrives while
// replay batches from the first recovery attempt are still in flight. The
// kernel must drop the stale generation's batches instead of feeding them
// to the new incarnation, and the computation still completes exactly-once.
func TestRecursiveCrashMidBatch(t *testing.T) {
	cfg := DefaultConfig(3)
	// Small batches: the first attempt's replay spans several frames, so
	// some are guaranteed to be in flight when the second crash lands.
	cfg.ReplayBatchBytes = 96
	c, sink, worker := buildScenario(t, cfg, 20)
	c.Scheduler().At(3*simtime.Second, func() { c.CrashProcess(worker) })
	if !c.RunUntil(func() bool { return c.Recorder().Stats().ReplayBatches >= 1 }, 60*simtime.Second) {
		t.Fatal("first recovery never started replaying")
	}
	// Replay has begun but not finished: crash the half-recovered process.
	c.CrashProcess(worker)
	c.Run(120 * simtime.Second)
	expectSteps(t, sink, 20)
	rs := c.Recorder().Stats()
	if rs.RecoveriesStarted < 2 {
		t.Fatalf("recoveries started = %d, want >= 2 (recursive crash must relaunch)", rs.RecoveriesStarted)
	}
	if rs.RecoveriesCompleted == 0 {
		t.Fatal("recovery never completed after the recursive crash")
	}
	if got := c.Kernel(1).Stats().StaleReplayDropped; got == 0 {
		t.Fatal("no stale replay frames dropped; the test never exercised generation supersession")
	}
}

// With routing updates suppressed entirely (RouteRepeats < 0), a kernel
// that never hears where a process migrated must still reach it: sends go
// to the process's home node, whose kernel forwards them (§7.1's fallback
// path). The pipeline completes with zero routing broadcasts.
func TestMigrationWithoutRouteUpdatesUsesHomeForwarding(t *testing.T) {
	cfg := DefaultConfig(3)
	cfg.RouteRepeats = -1
	c, sink, worker := buildScenario(t, cfg, 12)
	migrated := false
	c.Scheduler().At(1300*simtime.Millisecond, func() {
		if err := c.Migrate(worker, 2); err != nil {
			t.Errorf("migrate: %v", err)
			return
		}
		migrated = true
	})
	c.Run(60 * simtime.Second)
	if !migrated {
		t.Fatal("migration never ran")
	}
	expectSteps(t, sink, 12)
	if fwd := c.Kernel(1).Stats().MsgsForwarded; fwd == 0 {
		t.Fatal("home node forwarded nothing; producer must have learned the route some other way")
	}
}

// padWorkerState is workerState plus a multi-KB incompressible pad, so its
// checkpoint cannot fit one frame and must travel as chunks. The inner state
// is a named field, not embedded: gob skips embedded fields whose (type)
// name is unexported, which would silently drop the counters.
type padWorkerState struct {
	W   workerState
	Pad []byte
}

// A checkpoint bigger than one MTU ships as a chunked catch-up transfer on
// the replay channel; the kernel reassembles it before the recreate and the
// process resumes from the full state.
func TestChunkedCheckpointTransfer(t *testing.T) {
	cfg := DefaultConfig(3)
	c := New(cfg)
	sink := &witnessSink{}
	registerWitness(c, sink)
	pad := make([]byte, 5000)
	for i := range pad {
		pad[i] = byte(i*7 + 3)
	}
	c.Registry().RegisterMachine("worker", func(args []byte) Machine {
		st := &padWorkerState{Pad: pad}
		return &testMachine{
			init: func(ctx *PCtx) {
				if lid, err := ctx.ServiceLink("witness"); err == nil {
					st.W.Witness, st.W.HasOut = lid, true
				}
			},
			handle: func(ctx *PCtx, m Msg) {
				st.W.Count++
				st.W.Sum += int(m.Body[0])
				if st.W.HasOut {
					_ = ctx.Send(st.W.Witness, []byte(fmt.Sprintf("step=%d sum=%d", st.W.Count, st.W.Sum)), NoLink)
				}
			},
			snap: func() ([]byte, error) { return gobEnc(st) },
			rest: func(b []byte) error {
				if err := gobDec(b, st); err != nil {
					return err
				}
				if !bytes.Equal(st.Pad, pad) {
					return fmt.Errorf("pad corrupted across chunked checkpoint restore")
				}
				return nil
			},
		}
	})
	registerProducer(c, 14, 200*simtime.Millisecond)
	wit, err := c.Spawn(2, ProcSpec{Name: "witness", Recoverable: true})
	if err != nil {
		t.Fatal(err)
	}
	c.SetService("witness", wit)
	worker, err := c.Spawn(1, ProcSpec{Name: "worker", Recoverable: true})
	if err != nil {
		t.Fatal(err)
	}
	c.SetService("worker", worker)
	if _, err := c.Spawn(0, ProcSpec{Name: "producer", Recoverable: true}); err != nil {
		t.Fatal(err)
	}
	c.Scheduler().At(1500*simtime.Millisecond, func() { _, _ = c.Kernel(1).CheckpointNow(worker) })
	c.Scheduler().At(2*simtime.Second, func() { c.CrashProcess(worker) })
	c.Run(90 * simtime.Second)
	expectSteps(t, sink, 14)
	rs := c.Recorder().Stats()
	if rs.CheckpointsStored == 0 {
		t.Fatal("checkpoint never stored; nothing to chunk")
	}
	if rs.CkChunksSent < 2 {
		t.Fatalf("checkpoint chunks sent = %d, want >= 2 (a ~5 KB checkpoint spans multiple MTUs)", rs.CkChunksSent)
	}
	if rs.RecoveriesCompleted == 0 {
		t.Fatal("recovery from the chunked checkpoint never completed")
	}
	// The replay basis is the checkpoint, not the initial image.
	if rs.MessagesReplayed >= 14 {
		t.Fatalf("replayed %d messages; the checkpoint should have shortened replay", rs.MessagesReplayed)
	}
}

// The recorder itself crashes while a chunked checkpoint transfer is in
// flight. The half-shipped transfer dies with it; after the recorder's
// database rebuild the watchdog re-detects the still-dead worker, and a
// fresh recovery re-ships the checkpoint from stable store. The computation
// must converge exactly as if the outage had not happened.
func TestRecorderRestartMidChunkedTransfer(t *testing.T) {
	cfg := DefaultConfig(3)
	c := New(cfg)
	sink := &witnessSink{}
	registerWitness(c, sink)
	pad := make([]byte, 5000)
	for i := range pad {
		pad[i] = byte(i*11 + 5)
	}
	c.Registry().RegisterMachine("worker", func(args []byte) Machine {
		st := &padWorkerState{Pad: pad}
		return &testMachine{
			init: func(ctx *PCtx) {
				if lid, err := ctx.ServiceLink("witness"); err == nil {
					st.W.Witness, st.W.HasOut = lid, true
				}
			},
			handle: func(ctx *PCtx, m Msg) {
				st.W.Count++
				st.W.Sum += int(m.Body[0])
				if st.W.HasOut {
					_ = ctx.Send(st.W.Witness, []byte(fmt.Sprintf("step=%d sum=%d", st.W.Count, st.W.Sum)), NoLink)
				}
			},
			snap: func() ([]byte, error) { return gobEnc(st) },
			rest: func(b []byte) error { return gobDec(b, st) },
		}
	})
	registerProducer(c, 14, 200*simtime.Millisecond)
	wit, err := c.Spawn(2, ProcSpec{Name: "witness", Recoverable: true})
	if err != nil {
		t.Fatal(err)
	}
	c.SetService("witness", wit)
	worker, err := c.Spawn(1, ProcSpec{Name: "worker", Recoverable: true})
	if err != nil {
		t.Fatal(err)
	}
	c.SetService("worker", worker)
	if _, err := c.Spawn(0, ProcSpec{Name: "producer", Recoverable: true}); err != nil {
		t.Fatal(err)
	}
	c.Scheduler().At(1500*simtime.Millisecond, func() { _, _ = c.Kernel(1).CheckpointNow(worker) })
	c.Scheduler().At(2*simtime.Second, func() { c.CrashProcess(worker) })
	// Run until the recovery's chunked transfer has started but (with more
	// chunks pending for a ~5 KB checkpoint) not finished — then kill the
	// recorder mid-stream.
	if !c.RunUntil(func() bool { return c.Recorder().Stats().CkChunksSent >= 1 }, 60*simtime.Second) {
		t.Fatal("chunked checkpoint transfer never started")
	}
	chunksBefore := c.Recorder().Stats().CkChunksSent
	recoveriesBefore := c.Recorder().Stats().RecoveriesCompleted
	if recoveriesBefore != 0 {
		t.Fatalf("recovery already complete (%d) before the recorder crash; transfer was not in flight", recoveriesBefore)
	}
	c.CrashRecorder()
	c.Scheduler().After(2*simtime.Second, func() {
		if err := c.RestartRecorder(); err != nil {
			t.Errorf("recorder restart: %v", err)
		}
	})
	c.Run(3 * simtime.Minute)
	expectSteps(t, sink, 14)
	rs := c.Recorder().Stats()
	if rs.RecoveriesCompleted == 0 {
		t.Fatal("recovery never completed after the recorder outage")
	}
	if rs.CkChunksSent <= chunksBefore {
		t.Fatalf("chunks sent stayed at %d; the restarted recovery never re-shipped the checkpoint", rs.CkChunksSent)
	}
	// Replay still starts from the checkpoint after the rebuild, not from
	// the initial image.
	if rs.MessagesReplayed >= 14 {
		t.Fatalf("replayed %d messages; the stable-store checkpoint was lost across the restart", rs.MessagesReplayed)
	}
}
