package publishing

import (
	"testing"

	"publishing/internal/demos"
	"publishing/internal/simtime"
)

// §7.1 migration: move the worker mid-pipeline; the computation continues
// exactly-once with no visible seam.
func TestLiveMigration(t *testing.T) {
	cfg := DefaultConfig(3)
	c, sink, worker := buildScenario(t, cfg, 12)
	migrated := false
	c.Scheduler().At(1300*simtime.Millisecond, func() {
		if err := c.Migrate(worker, 2); err != nil {
			t.Errorf("migrate: %v", err)
			return
		}
		migrated = true
	})
	c.Run(60 * simtime.Second)
	if !migrated {
		t.Fatal("migration never ran")
	}
	expectSteps(t, sink, 12)
	if st := c.Kernel(2).ProcState(worker); st != demos.StateFunctioning {
		t.Fatalf("worker on node 2: %v", st)
	}
	if st := c.Kernel(1).ProcState(worker); st != demos.StateUnknown {
		t.Fatalf("worker still known on node 1: %v", st)
	}
}

// A migrated process crashes at its NEW home: the recorder recovers it
// there (its database tracked the move), from the migration checkpoint.
func TestCrashAfterMigrationRecoversAtNewHome(t *testing.T) {
	cfg := DefaultConfig(3)
	c, sink, worker := buildScenario(t, cfg, 14)
	c.Scheduler().At(1300*simtime.Millisecond, func() {
		if err := c.Migrate(worker, 2); err != nil {
			t.Errorf("migrate: %v", err)
		}
	})
	c.Scheduler().At(2*simtime.Second, func() { c.CrashProcess(worker) })
	c.Run(90 * simtime.Second)
	expectSteps(t, sink, 14)
	if st := c.Kernel(2).ProcState(worker); st != demos.StateFunctioning {
		t.Fatalf("worker not functioning on node 2 after recovery: %v", st)
	}
	if got := c.Recorder().Stats().RecoveriesCompleted; got != 1 {
		t.Fatalf("recoveries = %d", got)
	}
	// The replay came from the migration checkpoint, not the initial image.
	if replayed := c.Recorder().Stats().MessagesReplayed; replayed >= 8 {
		t.Fatalf("replayed %d messages; migration checkpoint should have shortened replay", replayed)
	}
}

// The OLD node crashing after a migration must not drag the migrant down:
// only processes still located there are recovered.
func TestOldNodeCrashLeavesMigrantAlone(t *testing.T) {
	cfg := DefaultConfig(3)
	c, sink, worker := buildScenario(t, cfg, 14)
	c.Scheduler().At(1300*simtime.Millisecond, func() {
		if err := c.Migrate(worker, 2); err != nil {
			t.Errorf("migrate: %v", err)
		}
	})
	c.Scheduler().At(2500*simtime.Millisecond, func() { c.CrashNode(1) })
	c.Run(90 * simtime.Second)
	expectSteps(t, sink, 14)
	// Node 1 had no recoverable processes left, so no recovery targeted the
	// migrant (it kept running on node 2 throughout).
	if got := c.Recorder().Stats().RecoveriesStarted; got != 0 {
		t.Fatalf("recoveries started = %d; the migrant should not be recovered", got)
	}
}

// Migration errors: unknown process, unknown node, non-machine images, and
// mid-execution processes.
func TestMigrationErrors(t *testing.T) {
	cfg := DefaultConfig(2)
	c := New(cfg)
	c.Registry().RegisterProgram("prog", func(args []byte) Program {
		return func(ctx *PCtx) { ctx.Receive() }
	})
	pid, err := c.Spawn(0, ProcSpec{Name: "prog", Recoverable: true})
	if err != nil {
		t.Fatal(err)
	}
	c.Run(simtime.Second)
	if err := c.Migrate(ProcID{Node: 0, Local: 99}, 1); err == nil {
		t.Fatal("migrated a ghost")
	}
	if err := c.Migrate(pid, 42); err == nil {
		t.Fatal("migrated to a ghost node")
	}
	if err := c.Migrate(pid, 1); err == nil {
		t.Fatal("migrated a Program image (no snapshot support)")
	}
	if err := c.Migrate(pid, 0); err != nil {
		t.Fatalf("self-migration should be a no-op: %v", err)
	}
}
