package publishing_test

// One benchmark per table and figure in the paper's evaluation, plus
// performance benchmarks of the reproduction itself. The figure/table
// benches re-run the corresponding experiment every iteration and publish
// the headline quantity as a custom metric, so `go test -bench .` prints a
// compact paper-vs-measured report:
//
//	Fig 5.2  -> derived service times
//	Fig 5.3  -> mean state size
//	Fig 5.4  -> operating-point checkpoint intervals
//	Fig 5.5  -> component utilizations (mean point, 5 nodes)
//	Fig 5.7  -> per-message publishing overhead (26 ms CPU)
//	Fig 5.8  -> per-process-control blow-up (8–9×)
//	§5.2.2   -> per-message publish cost by implementation level
//	Fig 3.1  -> the 140/340 ms recovery bound example
//	abstract -> the 115-user capacity
//	§6.6.1   -> selective publishing gain

import (
	"fmt"
	"testing"

	"publishing"
	"publishing/internal/checkpoint"
	"publishing/internal/demos"
	"publishing/internal/frame"
	"publishing/internal/measure"
	"publishing/internal/model"
	"publishing/internal/recorder"
	"publishing/internal/simtime"
	"publishing/internal/stablestore"
	"publishing/internal/trace"
)

func BenchmarkFig52Params(b *testing.B) {
	h := model.Fig52()
	var sink simtime.Time
	for i := 0; i < b.N; i++ {
		sink += h.InterpacketDelay + h.DiskLatency + h.PacketCPU
	}
	b.ReportMetric(h.PacketCPU.Milliseconds(), "packetCPU_ms")
	b.ReportMetric(h.InterpacketDelay.Milliseconds(), "interpacket_ms")
	_ = sink
}

func BenchmarkFig53StateSizes(b *testing.B) {
	var mean int
	for i := 0; i < b.N; i++ {
		mean = model.MeanStateKB()
	}
	b.ReportMetric(float64(mean), "meanStateKB")
}

func BenchmarkFig54OperatingPoints(b *testing.B) {
	var hi, lo simtime.Time
	for i := 0; i < b.N; i++ {
		pm, _ := model.Point("max-msg")
		ps, _ := model.Point("max-state")
		hi, lo = pm.CheckpointInterval(), ps.CheckpointInterval()
	}
	b.ReportMetric(hi.Seconds(), "ckInterval_4KB_hi_s")  // paper: ~1 s
	b.ReportMetric(lo.Seconds(), "ckInterval_64KB_lo_s") // paper: ~2 min
}

func BenchmarkFig55Utilization(b *testing.B) {
	p, _ := model.Point("mean")
	var r model.Result
	for i := 0; i < b.N; i++ {
		cfg := model.DefaultSystem(p, 5, 1)
		cfg.Measure = 30 * simtime.Second
		r = model.Simulate(cfg)
	}
	b.ReportMetric(r.NetworkUtil*100, "net_util_pct")
	b.ReportMetric(r.CPUUtil*100, "cpu_util_pct")
	b.ReportMetric(r.DiskUtil*100, "disk_util_pct")
}

func BenchmarkCapacity115Users(b *testing.B) {
	var users int
	for i := 0; i < b.N; i++ {
		users = model.AnalyticCapacity()
	}
	b.ReportMetric(float64(users), "users") // paper: 115
}

func BenchmarkFig57PerMessage(b *testing.B) {
	var rows [2]measure.PerMessage
	for i := 0; i < b.N; i++ {
		rows = measure.Fig57Table()
	}
	b.ReportMetric(rows[1].CPUMS-rows[0].CPUMS, "publish_cpu_ms_per_msg") // paper: ~26
	b.ReportMetric(rows[1].RealMS-rows[1].CPUMS, "real_minus_cpu_ms")     // paper: ~3
}

func BenchmarkFig58PerProcess(b *testing.B) {
	var rows [2]measure.PerProcess
	for i := 0; i < b.N; i++ {
		rows = measure.Fig58Table()
	}
	b.ReportMetric(rows[0].TotalCPUMS, "without_ms") // paper: 608
	b.ReportMetric(rows[1].TotalCPUMS, "with_ms")    // paper: 5135
}

func BenchmarkPublishTimeLevels(b *testing.B) {
	var levels []measure.PublishCost
	for i := 0; i < b.N; i++ {
		levels = measure.PublishTimeLevels()
	}
	b.ReportMetric(levels[0].PerMS, "naive_ms")     // paper: 57
	b.ReportMetric(levels[1].PerMS, "optimized_ms") // paper: 12
	b.ReportMetric(levels[2].PerMS, "media_ms")     // paper: 0.8
}

func BenchmarkFig31RecoveryBound(b *testing.B) {
	lp := checkpoint.Fig31Params()
	var t1, t2 simtime.Time
	for i := 0; i < b.N; i++ {
		t1 = checkpoint.Bound(lp, checkpoint.ProcParams{CheckpointPages: 4})
		t2 = checkpoint.Bound(lp, checkpoint.ProcParams{CheckpointPages: 4, ExecSince: 100 * simtime.Millisecond})
	}
	b.ReportMetric(t1.Milliseconds(), "after_ckpt_ms") // paper: 140
	b.ReportMetric(t2.Milliseconds(), "at_200ms_ms")   // paper: 340
}

func BenchmarkCheckpointIntervals(b *testing.B) {
	var iv simtime.Time
	for i := 0; i < b.N; i++ {
		iv = checkpoint.YoungInterval(10*simtime.Second, 2*simtime.Minute)
	}
	b.ReportMetric(iv.Seconds(), "young_interval_s")
}

func BenchmarkSelectivePublishing(b *testing.B) {
	p, _ := model.Point("max-msg")
	var full, trimmed float64
	for i := 0; i < b.N; i++ {
		full = model.SaturationNodes(p, false, 1.0)
		trimmed = model.SaturationNodes(p, false, 0.85)
	}
	b.ReportMetric(full, "nodes_full")
	b.ReportMetric(trimmed, "nodes_selective") // paper: "one more VAX"
}

// --- performance benchmarks of the reproduction itself ----------------------

func BenchmarkFrameEncodeDecode(b *testing.B) {
	f := &frame.Frame{
		Type: frame.Guaranteed, Src: 1, Dst: 2,
		ID:   frame.MsgID{Sender: frame.ProcID{Node: 1, Local: 7}, Seq: 42},
		From: frame.ProcID{Node: 1, Local: 7}, To: frame.ProcID{Node: 2, Local: 3},
		Body: make([]byte, 128),
	}
	// The buffer-reuse path (AppendEncode/DecodeInto) is what the wire
	// loop uses; Encode/Decode are convenience wrappers over it.
	var buf []byte
	var g frame.Frame
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		buf = f.AppendEncode(buf[:0])
		if err := frame.DecodeInto(&g, buf); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkStableStoreAppend(b *testing.B) {
	s := stablestore.New()
	data := make([]byte, 128)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := s.Append(stablestore.Record{
			Kind: stablestore.KindMessage, Key: "p1.1", Seq: uint64(i), Data: data,
		}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkRecorderPublish measures the tap's message+ack path — the hot
// loop of the whole system.
func BenchmarkRecorderPublish(b *testing.B) {
	cfg := publishing.DefaultConfig(2)
	c := publishing.New(cfg)
	rec := c.Recorder()
	// Drive the recorder directly; no cluster traffic. Taps get a shared
	// read-only frame, so the two frames are reused across iterations
	// exactly as a medium would reuse its transmission state.
	f := &frame.Frame{
		Type: frame.Guaranteed, Src: 0, Dst: 1,
		ID:   frame.MsgID{Sender: frame.ProcID{Node: 0, Local: 5}},
		From: frame.ProcID{Node: 0, Local: 5}, To: frame.ProcID{Node: 1, Local: 6},
		Body: make([]byte, 128),
	}
	ack := &frame.Frame{Type: frame.Ack, Src: 1, Dst: 0,
		From: frame.ProcID{Node: 1, Local: 6}, To: f.From}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		f.ID.Seq = uint64(i + 1)
		rec.Observe(f)
		ack.ID = f.ID
		rec.Observe(ack)
	}
}

// BenchmarkClusterThroughput runs the standard pipeline and reports
// simulated messages per wall second of host time.
func BenchmarkClusterThroughput(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		cfg := publishing.DefaultConfig(3)
		c := publishing.New(cfg)
		c.Registry().RegisterMachine("sink", func(args []byte) publishing.Machine { return benchSink{} })
		c.Registry().RegisterProgram("gen", func(args []byte) publishing.Program {
			return func(ctx *publishing.PCtx) {
				l, _ := ctx.ServiceLink("sink")
				for j := 0; j < 100; j++ {
					_ = ctx.Send(l, []byte{1}, publishing.NoLink)
				}
			}
		})
		sink, _ := c.Spawn(1, publishing.ProcSpec{Name: "sink", Recoverable: true})
		c.SetService("sink", sink)
		c.Spawn(0, publishing.ProcSpec{Name: "gen", Recoverable: true})
		c.Run(2 * simtime.Minute)
	}
}

// BenchmarkEndToEndRecovery measures a full crash->detect->replay->recovered
// cycle of a producer/worker/witness pipeline.
func BenchmarkEndToEndRecovery(b *testing.B) {
	var window simtime.Time
	for i := 0; i < b.N; i++ {
		cfg := publishing.DefaultConfig(3)
		c := publishing.New(cfg)
		var got int
		c.Registry().RegisterMachine("witness", func(args []byte) publishing.Machine {
			return countSink{n: &got}
		})
		c.Registry().RegisterMachine("worker", func(args []byte) publishing.Machine {
			return &benchWorker{}
		})
		c.Registry().RegisterProgram("producer", func(args []byte) publishing.Program {
			return func(ctx *publishing.PCtx) {
				l, _ := ctx.ServiceLink("worker")
				for j := 0; j < 12; j++ {
					_ = ctx.Send(l, []byte{byte(j + 1)}, publishing.NoLink)
					ctx.Compute(200 * simtime.Millisecond)
				}
			}
		})
		wit, _ := c.Spawn(2, publishing.ProcSpec{Name: "witness", Recoverable: true})
		c.SetService("witness", wit)
		worker, _ := c.Spawn(1, publishing.ProcSpec{Name: "worker", Recoverable: true})
		c.SetService("worker", worker)
		c.Spawn(0, publishing.ProcSpec{Name: "producer", Recoverable: true})
		c.Scheduler().At(1200*simtime.Millisecond, func() { c.CrashProcess(worker) })
		c.Run(60 * simtime.Second)
		if got != 12 {
			b.Fatalf("recovery failed: %d", got)
		}
		var crashAt, doneAt simtime.Time
		for _, e := range c.Trace().OfKind(trace.KindCrash) {
			if e.Subject == worker.String() {
				crashAt = e.At
				break
			}
		}
		for _, e := range c.Trace().OfKind(trace.KindRecoveryDone) {
			if e.Subject == worker.String() {
				doneAt = e.At
			}
		}
		window = doneAt - crashAt
	}
	b.ReportMetric(window.Milliseconds(), "recovery_virtual_ms")
}

// BenchmarkRecoveryReplay{1,64,1024} measure the recovery pipeline at
// increasing published-stream lengths. The headline metric is virtual
// recovery time per replayed message: a replay that ships one frame per
// message scales with message count, a batched one with bytes.
func BenchmarkRecoveryReplay1(b *testing.B)    { benchRecoveryReplay(b, 1) }
func BenchmarkRecoveryReplay64(b *testing.B)   { benchRecoveryReplay(b, 64) }
func BenchmarkRecoveryReplay1024(b *testing.B) { benchRecoveryReplay(b, 1024) }

func benchRecoveryReplay(b *testing.B, n int) {
	var res measure.RecoveryResult
	for i := 0; i < b.N; i++ {
		res = measure.RecoveryReplay(n, nil)
	}
	b.ReportMetric(res.Window.Milliseconds(), "recovery_virtual_ms")
	b.ReportMetric(res.PerMsgMS(), "virtual_ms_per_replayed_msg")
	b.ReportMetric(float64(res.Replayed), "replayed")
}

// benchWorker forwards a counter to the witness per message.
type benchWorker struct {
	out    publishing.LinkID
	hasOut bool
	n      byte
}

func (w *benchWorker) Init(ctx *publishing.PCtx) {
	if l, err := ctx.ServiceLink("witness"); err == nil {
		w.out, w.hasOut = l, true
	}
}
func (w *benchWorker) Handle(ctx *publishing.PCtx, m publishing.Msg) {
	w.n++
	if w.hasOut {
		_ = ctx.Send(w.out, []byte{w.n}, publishing.NoLink)
	}
}
func (w *benchWorker) Snapshot() ([]byte, error) {
	return []byte{byte(w.out), b2u(w.hasOut), w.n}, nil
}
func (w *benchWorker) Restore(b []byte) error {
	w.out, w.hasOut, w.n = publishing.LinkID(b[0]), b[1] == 1, b[2]
	return nil
}

func b2u(b bool) byte {
	if b {
		return 1
	}
	return 0
}

type countSink struct{ n *int }

func (s countSink) Init(ctx *publishing.PCtx)                     {}
func (s countSink) Handle(ctx *publishing.PCtx, m publishing.Msg) { *s.n++ }
func (s countSink) Snapshot() ([]byte, error)                     { return nil, nil }
func (s countSink) Restore(b []byte) error                        { return nil }

// BenchmarkMediaComparison reports how long the same 200-message workload
// takes, in virtual time, on each medium (the cost of their publish-
// before-use disciplines).
func BenchmarkMediaComparison(b *testing.B) {
	for _, medium := range []publishing.MediumKind{publishing.MediumPerfect, publishing.MediumEther, publishing.MediumAckEther, publishing.MediumRing, publishing.MediumStar} {
		b.Run(string(medium), func(b *testing.B) {
			var elapsed simtime.Time
			for i := 0; i < b.N; i++ {
				elapsed = runWireWorkload(b, medium, publishing.DefaultConfig(2).RecorderMode, 200)
			}
			b.ReportMetric(elapsed.Seconds(), "virtual_s")
		})
	}
}

// runWireWorkload sends n 128-byte messages node 0 -> node 1 and returns
// the virtual time at which the last one was delivered.
func runWireWorkload(b *testing.B, medium publishing.MediumKind, mode recorder.ProcessMode, n int) simtime.Time {
	b.Helper()
	cfg := publishing.DefaultConfig(2)
	cfg.Medium = medium
	cfg.RecorderMode = mode
	c := publishing.New(cfg)
	var got int
	var doneAt simtime.Time
	c.Registry().RegisterMachine("sink", func(args []byte) publishing.Machine {
		return timedSink{got: &got, doneAt: &doneAt, want: n, now: c.Now}
	})
	c.Registry().RegisterProgram("gen", func(args []byte) publishing.Program {
		return func(ctx *publishing.PCtx) {
			l, _ := ctx.ServiceLink("sink")
			for j := 0; j < n; j++ {
				_ = ctx.Send(l, make([]byte, 128), publishing.NoLink)
			}
		}
	})
	sink, _ := c.Spawn(1, publishing.ProcSpec{Name: "sink", Recoverable: true})
	c.SetService("sink", sink)
	c.Spawn(0, publishing.ProcSpec{Name: "gen", Recoverable: true})
	c.Run(30 * simtime.Minute)
	if got != n {
		b.Fatalf("workload did not finish: %d/%d", got, n)
	}
	return doneAt
}

type timedSink struct {
	got    *int
	doneAt *simtime.Time
	want   int
	now    func() simtime.Time
}

func (s timedSink) Init(ctx *publishing.PCtx) {}
func (s timedSink) Handle(ctx *publishing.PCtx, m publishing.Msg) {
	*s.got++
	if *s.got == s.want {
		*s.doneAt = s.now()
	}
}
func (s timedSink) Snapshot() ([]byte, error) { return nil, nil }
func (s timedSink) Restore(b []byte) error    { return nil }

// BenchmarkRecorderModes shows §5.2.2's cost levels as end-to-end virtual
// time on a plain Ether, where receivers wait for the recorder's ack.
func BenchmarkRecorderModes(b *testing.B) {
	for _, mode := range []recorder.ProcessMode{recorder.ModeNaive, recorder.ModeOptimized, recorder.ModeMediaLayer} {
		b.Run(mode.String(), func(b *testing.B) {
			var elapsed simtime.Time
			for i := 0; i < b.N; i++ {
				elapsed = runWireWorkload(b, publishing.MediumEther, mode, 50)
			}
			b.ReportMetric(elapsed.Seconds(), "virtual_s")
		})
	}
}

type benchSink struct{}

func (benchSink) Init(ctx *publishing.PCtx)                     {}
func (benchSink) Handle(ctx *publishing.PCtx, m publishing.Msg) {}
func (benchSink) Snapshot() ([]byte, error)                     { return nil, nil }
func (benchSink) Restore(b []byte) error                        { return nil }

// BenchmarkCheckpointPolicyAblation compares recovery cost with and without
// the §3.2.3 bound-driven checkpoint policy: virtual milliseconds from
// crash to recovery-done for the same 30-message history.
func BenchmarkCheckpointPolicyAblation(b *testing.B) {
	for _, pol := range []publishing.CheckpointPolicyKind{publishing.CheckpointNone, publishing.CheckpointBound} {
		b.Run(string(pol), func(b *testing.B) {
			var window simtime.Time
			for i := 0; i < b.N; i++ {
				window = measureRecoveryWindow(b, pol)
			}
			b.ReportMetric(window.Milliseconds(), "recovery_virtual_ms")
		})
	}
}

func measureRecoveryWindow(b *testing.B, pol publishing.CheckpointPolicyKind) simtime.Time {
	b.Helper()
	cfg := publishing.DefaultConfig(3)
	cfg.CheckpointPolicy = pol
	cfg.CheckpointTick = 200 * simtime.Millisecond
	c := publishing.New(cfg)
	var got int
	c.Registry().RegisterMachine("witness", func(args []byte) publishing.Machine {
		return countSink{n: &got}
	})
	c.Registry().RegisterMachine("worker", func(args []byte) publishing.Machine { return &benchWorker{} })
	c.Registry().RegisterProgram("producer", func(args []byte) publishing.Program {
		return func(ctx *publishing.PCtx) {
			l, _ := ctx.ServiceLink("worker")
			for j := 0; j < 30; j++ {
				_ = ctx.Send(l, []byte{byte(j + 1)}, publishing.NoLink)
				ctx.Compute(150 * simtime.Millisecond)
			}
		}
	})
	wit, _ := c.Spawn(2, publishing.ProcSpec{Name: "witness", Recoverable: true})
	c.SetService("witness", wit)
	worker, _ := c.Spawn(1, publishing.ProcSpec{
		Name: "worker", Recoverable: true, RecoveryTimeBound: 500 * simtime.Millisecond,
	})
	c.SetService("worker", worker)
	c.Spawn(0, publishing.ProcSpec{Name: "producer", Recoverable: true})
	c.Scheduler().At(4*simtime.Second, func() { c.CrashProcess(worker) })
	c.Run(3 * simtime.Minute)
	if got != 30 {
		b.Fatalf("pipeline incomplete: %d", got)
	}
	var crashAt, doneAt simtime.Time
	for _, e := range c.Trace().OfKind(trace.KindCrash) {
		if e.Subject == worker.String() {
			crashAt = e.At
			break
		}
	}
	for _, e := range c.Trace().OfKind(trace.KindRecoveryDone) {
		if e.Subject == worker.String() {
			doneAt = e.At
		}
	}
	return doneAt - crashAt
}

// BenchmarkTransportWindow is the §4.3.3 windowing-extension ablation: the
// thesis's single-outstanding transport vs a 4-frame window, measured as
// virtual completion time of a 50-message workload behind a slow (naive,
// 57 ms/message) recorder whose acknowledgements gate delivery.
func BenchmarkTransportWindow(b *testing.B) {
	for _, w := range []int{1, 4} {
		b.Run(fmt.Sprintf("window=%d", w), func(b *testing.B) {
			var elapsed simtime.Time
			for i := 0; i < b.N; i++ {
				cfg := publishing.DefaultConfig(2)
				cfg.Medium = publishing.MediumEther
				cfg.RecorderMode = recorder.ModeNaive
				cfg.Transport.Window = w
				cfg.Transport.RecorderAckTimeout = 500 * simtime.Millisecond
				c := publishing.New(cfg)
				var got int
				var doneAt simtime.Time
				c.Registry().RegisterMachine("sink", func(args []byte) publishing.Machine {
					return timedSink{got: &got, doneAt: &doneAt, want: 50, now: c.Now}
				})
				c.Registry().RegisterProgram("gen", func(args []byte) publishing.Program {
					return func(ctx *publishing.PCtx) {
						l, _ := ctx.ServiceLink("sink")
						for j := 0; j < 50; j++ {
							_ = ctx.Send(l, make([]byte, 128), publishing.NoLink)
						}
					}
				})
				sink, _ := c.Spawn(1, publishing.ProcSpec{Name: "sink", Recoverable: true})
				c.SetService("sink", sink)
				c.Spawn(0, publishing.ProcSpec{Name: "gen", Recoverable: true})
				c.Run(30 * simtime.Minute)
				if got != 50 {
					b.Fatalf("workload incomplete: %d", got)
				}
				elapsed = doneAt
			}
			b.ReportMetric(elapsed.Seconds(), "virtual_s")
		})
	}
}

// wireDriver sends `want` small requests to the echo service and stamps the
// virtual time at which the last reply returns.
type wireDriver struct {
	got    *int
	doneAt *simtime.Time
	want   int
	now    func() simtime.Time
}

func (d wireDriver) Init(ctx *publishing.PCtx) {
	l, _ := ctx.ServiceLink("echo")
	for j := 0; j < d.want; j++ {
		_ = ctx.Send(l, make([]byte, 48), publishing.NoLink)
	}
}
func (d wireDriver) Handle(ctx *publishing.PCtx, m publishing.Msg) {
	*d.got++
	if *d.got == d.want {
		*d.doneAt = d.now()
	}
}
func (d wireDriver) Snapshot() ([]byte, error) { return nil, nil }
func (d wireDriver) Restore(b []byte) error    { return nil }

// wireEcho answers every request with a small reply, so the reverse
// direction always has data frames for acknowledgements to ride.
type wireEcho struct {
	l  publishing.LinkID
	ok bool
}

func (e *wireEcho) Init(ctx *publishing.PCtx) {}
func (e *wireEcho) Handle(ctx *publishing.PCtx, m publishing.Msg) {
	if !e.ok {
		e.l, _ = ctx.ServiceLink("driver")
		e.ok = true
	}
	_ = ctx.Send(e.l, []byte("ok"), publishing.NoLink)
}
func (e *wireEcho) Snapshot() ([]byte, error) { return nil, nil }
func (e *wireEcho) Restore(b []byte) error    { return nil }

// BenchmarkTransportWire is the steady-state wire-efficiency comparison: the
// thesis per-message transport (one frame and one Ack frame per guaranteed
// message) against the coalescing + delayed-ack + adaptive-RTO defaults, on
// a 100-message request/reply workload. Reported per run:
//
//	wire_frames      - every frame the medium carried, data + ack + recorder
//	ack_frames_per_g - standalone end-to-end Ack frames per guaranteed send
//	virtual_s        - virtual completion time of the workload
func BenchmarkTransportWire(b *testing.B) {
	const nMsgs = 100
	for _, mode := range []string{"legacy", "coalesced"} {
		b.Run(mode, func(b *testing.B) {
			var frames, ackPerMsg float64
			var elapsed simtime.Time
			for i := 0; i < b.N; i++ {
				cfg := publishing.DefaultConfig(2)
				// Zero CPU costs: the 13 ms/message kernel network cost would
				// space sends far beyond any flush window and hide the wire
				// entirely; steady-state wire efficiency wants a wire-bound run.
				cfg.Costs = demos.ZeroCosts()
				if mode == "legacy" {
					cfg.Transport.FlushDelay = 0
					cfg.Transport.AckDelay = 0
					cfg.Transport.AdaptiveRTO = false
				}
				c := publishing.New(cfg)
				var got int
				var doneAt simtime.Time
				c.Registry().RegisterMachine("echo", func(args []byte) publishing.Machine {
					return &wireEcho{}
				})
				c.Registry().RegisterMachine("driver", func(args []byte) publishing.Machine {
					return wireDriver{got: &got, doneAt: &doneAt, want: nMsgs, now: c.Now}
				})
				echo, _ := c.Spawn(1, publishing.ProcSpec{Name: "echo", Recoverable: true})
				c.SetService("echo", echo)
				driver, _ := c.Spawn(0, publishing.ProcSpec{Name: "driver", Recoverable: true})
				c.SetService("driver", driver)
				// Stop at the last reply: minutes of idle watchdog traffic
				// would otherwise dilute the frame counts equally in both
				// modes and mask the difference under measurement.
				c.RunUntil(func() bool { return got == nMsgs }, 2*simtime.Minute)
				if got != nMsgs {
					b.Fatalf("workload incomplete: %d/%d replies", got, nMsgs)
				}
				var acks, flushes, gsent uint64
				for _, n := range c.Nodes() {
					s := c.Kernel(n).Endpoint().Stats()
					acks += s.AcksSent
					flushes += s.AcksDelayedFlush
					gsent += s.GuaranteedSent
				}
				ackFrames := acks // thesis mode: every ack is its own frame
				if mode == "coalesced" {
					ackFrames = flushes // the rest rode reverse data frames
				}
				frames = float64(c.Medium().Stats().FramesSent)
				ackPerMsg = float64(ackFrames) / float64(gsent)
				elapsed = doneAt
			}
			b.ReportMetric(frames, "wire_frames")
			b.ReportMetric(ackPerMsg, "ack_frames_per_g")
			b.ReportMetric(elapsed.Seconds(), "virtual_s")
		})
	}
}
