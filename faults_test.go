package publishing

import (
	"fmt"
	"testing"

	"publishing/internal/chaos"
	"publishing/internal/simtime"
	"publishing/internal/trace"
)

// Transparent recovery must hold even on a lossy wire: frame loss is
// absorbed by retransmission, tap misses by publish-before-use.
func TestRecoveryUnderLossyWire(t *testing.T) {
	cfg := DefaultConfig(3)
	// Watchdog pings are unguaranteed; on a lossy wire the default
	// 3-miss threshold false-positives (and a false positive restarts a
	// healthy process — §3.3.4 semantics). Detection thresholds must be
	// provisioned for the medium's loss rate.
	cfg.MissThreshold = 10
	c, sink, worker := buildScenario(t, cfg, 10)
	c.Medium().Faults().LossProb = 0.15
	c.Scheduler().At(1300*simtime.Millisecond, func() { c.CrashProcess(worker) })
	c.Run(3 * simtime.Minute)
	expectSteps(t, sink, 10)
	if c.Medium().Stats().FramesLost == 0 {
		t.Fatal("the wire was not actually lossy")
	}
}

// Publish-before-use under a flaky recorder store: frames the recorder
// fails to record never reach their destinations, so nothing is ever
// usable-but-unrecoverable. Retransmission gets everything through.
func TestFlakyRecorderStoreStillExactlyOnce(t *testing.T) {
	cfg := DefaultConfig(3)
	c := New(cfg)
	sink := &witnessSink{}
	registerWitness(c, sink)
	registerWorker(c)
	registerProducer(c, 10, 200*simtime.Millisecond)
	wit, _ := c.Spawn(2, ProcSpec{Name: "witness", Recoverable: true})
	c.SetService("witness", wit)
	worker, _ := c.Spawn(1, ProcSpec{Name: "worker", Recoverable: true})
	c.SetService("worker", worker)
	c.Spawn(0, ProcSpec{Name: "producer", Recoverable: true})
	// 20% of tap observations fail: the medium must block those frames.
	c.Medium().Faults().TapMissProb = 0.2
	c.Scheduler().At(1300*simtime.Millisecond, func() { c.CrashProcess(worker) })
	c.Run(3 * simtime.Minute)
	expectSteps(t, sink, 10)
	if c.Medium().Stats().RecorderBlocks == 0 {
		t.Fatal("no frames were ever blocked; the fault injection is dead")
	}
}

// §3.6: with a single recorder, a partition wedges the side without the
// recorder; healing resumes it. (The paper declares the general case
// unsolvable with one recorder; the safe behaviour is to wait.)
func TestPartitionSuspendsAndHeals(t *testing.T) {
	cfg := DefaultConfig(3)
	c, sink, _ := buildScenario(t, cfg, 12)
	// Partition node 0 (the producer) away from everyone else after a bit.
	c.Scheduler().At(900*simtime.Millisecond, func() {
		c.Medium().Faults().SetPartition(0, 1)
	})
	c.Run(5 * simtime.Second)
	during := len(sink.msgs)
	if during >= 12 {
		t.Fatal("pipeline finished across a partition")
	}
	c.Medium().Faults().Heal()
	c.Run(3 * simtime.Minute)
	expectSteps(t, sink, 12)
	_ = during
}

// The §3.2.3 promise, measured end to end: with the bound policy active, a
// process's actual recovery time (crash notice to recovery-done) stays
// within the same order as its configured bound, and is much shorter than
// an uncheckpointed recovery of the same history.
func TestRecoveryTimeBoundedByCheckpoints(t *testing.T) {
	measure := func(policy CheckpointPolicyKind) simtime.Time {
		cfg := DefaultConfig(3)
		cfg.CheckpointPolicy = policy
		cfg.CheckpointTick = 200 * simtime.Millisecond
		c := New(cfg)
		sink := &witnessSink{}
		registerWitness(c, sink)
		registerWorker(c)
		registerProducer(c, 30, 150*simtime.Millisecond)
		wit, _ := c.Spawn(2, ProcSpec{Name: "witness", Recoverable: true})
		c.SetService("witness", wit)
		worker, err := c.Spawn(1, ProcSpec{
			Name: "worker", Recoverable: true,
			RecoveryTimeBound: 500 * simtime.Millisecond,
		})
		if err != nil {
			t.Fatal(err)
		}
		c.SetService("worker", worker)
		c.Spawn(0, ProcSpec{Name: "producer", Recoverable: true})
		c.Scheduler().At(4*simtime.Second, func() { c.CrashProcess(worker) })
		c.Run(3 * simtime.Minute)
		expectSteps(t, sink, 30)

		// Recovery duration from the trace: crash event to recovery-done.
		var crashAt, doneAt simtime.Time
		for _, e := range c.Trace().OfKind(trace.KindCrash) {
			if e.Subject == worker.String() {
				crashAt = e.At
				break
			}
		}
		for _, e := range c.Trace().OfKind(trace.KindRecoveryDone) {
			if e.Subject == worker.String() {
				doneAt = e.At
			}
		}
		if crashAt == 0 || doneAt <= crashAt {
			t.Fatalf("could not locate recovery window (crash=%v done=%v)", crashAt, doneAt)
		}
		return doneAt - crashAt
	}
	bounded := measure(CheckpointBound)
	unbounded := measure(CheckpointNone)
	if bounded >= unbounded {
		t.Fatalf("checkpointing did not shorten recovery: %v vs %v", bounded, unbounded)
	}
	if bounded > 900*simtime.Millisecond {
		t.Fatalf("bounded recovery too slow: %v (bound 500ms + detection grace)", bounded)
	}
	t.Logf("recovery time: bounded=%v unbounded=%v", bounded, unbounded)
}

// Soak test: seed-determined fault schedules from the chaos generator over
// a longer pipeline on a collision-prone medium, checked against the full
// system-wide invariant set (not just step delivery).
func TestSoakRandomFaultSchedule(t *testing.T) {
	lim := chaos.Limits{WindowMs: 12_000, MaxFaults: 10} // longer, denser than the sweep
	for _, seed := range []uint64{7, 21, 99} {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			s := chaos.Generate(seed, lim)
			build := ChaosBuild(ChaosOptions{Medium: MediumEther, Msgs: 25})
			res := chaos.Run(s, build, chaos.DefaultOptions())
			if !res.Passed {
				t.Errorf("invariants violated:\n%s", res.Report)
				t.Fatal(chaos.Reproducer(s, build, chaos.DefaultOptions()))
			}
		})
	}
}

// Same soak schedule, run twice: identical invariant reports (determinism
// under heavy fault injection — the report embeds the full output digest
// comparison, so report equality subsumes the old history check).
func TestSoakDeterminism(t *testing.T) {
	s := chaos.Generate(5, chaos.DefaultLimits())
	build := ChaosBuild(ChaosOptions{Msgs: 15})
	a := chaos.Run(s, build, chaos.DefaultOptions())
	b := chaos.Run(s, build, chaos.DefaultOptions())
	if a.Report != b.Report {
		t.Fatalf("soak run not deterministic:\n--- first\n%s\n--- second\n%s", a.Report, b.Report)
	}
	if !a.Passed {
		t.Fatalf("soak schedule failed:\n%s", a.Report)
	}
}

// Back-to-back node crashes (a crash during the recovery of a previous
// crash of the same node) still converge.
func TestRepeatedNodeCrashes(t *testing.T) {
	cfg := DefaultConfig(3)
	c, sink, _ := buildScenario(t, cfg, 15)
	c.Scheduler().At(1*simtime.Second, func() { c.CrashNode(1) })
	c.Scheduler().At(6*simtime.Second, func() { c.CrashNode(1) })
	c.Scheduler().At(11*simtime.Second, func() { c.CrashNode(1) })
	c.Run(5 * simtime.Minute)
	expectSteps(t, sink, 15)
	if got := c.Recorder().Stats().ProcessorCrashes; got < 3 {
		t.Fatalf("processor crashes detected = %d, want >= 3", got)
	}
}

// The storage policy (§5.1) triggers on message volume; verify it fires and
// still recovers correctly.
func TestStoragePolicyCheckpoints(t *testing.T) {
	cfg := DefaultConfig(3)
	cfg.CheckpointPolicy = CheckpointStorage
	cfg.CheckpointTick = 150 * simtime.Millisecond
	c := New(cfg)
	sink := &witnessSink{}
	registerWitness(c, sink)
	registerWorker(c)
	// The storage policy triggers when accumulated message bytes exceed the
	// checkpoint size, so send fat messages (value in byte 0, padding after).
	c.Registry().RegisterProgram("producer", func(args []byte) Program {
		return func(ctx *PCtx) {
			wl, err := ctx.ServiceLink("worker")
			if err != nil {
				return
			}
			for i := 1; i <= 20; i++ {
				body := make([]byte, 512)
				body[0] = byte(i)
				_ = ctx.Send(wl, body, NoLink)
				ctx.Compute(120 * simtime.Millisecond)
			}
		}
	})
	wit, _ := c.Spawn(2, ProcSpec{Name: "witness", Recoverable: true})
	c.SetService("witness", wit)
	worker, _ := c.Spawn(1, ProcSpec{Name: "worker", Recoverable: true})
	c.SetService("worker", worker)
	c.Spawn(0, ProcSpec{Name: "producer", Recoverable: true})
	c.Scheduler().At(2200*simtime.Millisecond, func() { c.CrashProcess(worker) })
	c.Run(3 * simtime.Minute)
	expectSteps(t, sink, 20)
	if c.Recorder().Stats().CheckpointsStored == 0 {
		t.Fatal("storage policy never checkpointed")
	}
}

// Stable-store compaction runs live: after checkpoints invalidate replay
// prefixes, compaction reclaims records without disturbing the system.
func TestLiveCompaction(t *testing.T) {
	cfg := DefaultConfig(3)
	cfg.CheckpointPolicy = CheckpointBound
	cfg.CheckpointTick = 200 * simtime.Millisecond
	c := New(cfg)
	sink := &witnessSink{}
	registerWitness(c, sink)
	registerWorker(c)
	registerProducer(c, 20, 150*simtime.Millisecond)
	wit, _ := c.Spawn(2, ProcSpec{Name: "witness", Recoverable: true})
	c.SetService("witness", wit)
	worker, _ := c.Spawn(1, ProcSpec{
		Name: "worker", Recoverable: true, RecoveryTimeBound: 400 * simtime.Millisecond,
	})
	c.SetService("worker", worker)
	c.Spawn(0, ProcSpec{Name: "producer", Recoverable: true})
	c.Run(10 * simtime.Second)
	dropped, err := c.Store().Compact()
	if err != nil {
		t.Fatal(err)
	}
	if dropped == 0 {
		t.Fatal("compaction reclaimed nothing despite checkpoints")
	}
	// The system continues fine after compaction, including a recovery.
	c.CrashProcess(worker)
	c.Run(3 * simtime.Minute)
	expectSteps(t, sink, 20)
}
