package publishing

import (
	"bytes"
	"fmt"
	"testing"

	"publishing/internal/simtime"
)

// shardCfg builds the standard scenario config on the sharded replicated
// recorder trio (three recorders, sixteen slots — the same shape the chaos
// sweep's sharded seeds run).
func shardCfg() Config {
	cfg := DefaultConfig(3)
	cfg.Recorders = 3
	cfg.ShardSlots = 16
	return cfg
}

// dumpRecorderDB reduces one recorder's database to canonical bytes: every
// known stream in sorted order with its liveness, suppression threshold,
// checkpoint cut, coverage, and reconstructed message ids. This is the
// content the replay basis is built from; raw store records additionally
// embed arrival timestamps, which legitimately shift by the watchdog
// timeout when a promotion delays the recovery, so they are excluded.
func dumpRecorderDB(t *testing.T, c *Cluster, rank int) []byte {
	t.Helper()
	r := c.RecorderAt(rank)
	var buf bytes.Buffer
	for _, p := range r.KnownProcs() {
		b := r.Basis(p)
		fmt.Fprintf(&buf, "%v dead=%v lastSent=%d baseReads=%d cov=%d stream=%v\n",
			p, b.Dead, b.LastSent, b.BaseReads, b.Cov(), r.StreamSummary(p))
	}
	return buf.Bytes()
}

// runPromotionScenario crashes the worker and, when killLeader is set, also
// kills the leader of the worker's shard the moment it begins the recovery —
// mid-replay, before the batch pipeline completes — leaving the follower to
// promote on peer-watchdog timeout and finish the job. It returns the
// cluster, the witness sink, and the ranks of the worker-slot's replica pair.
func runPromotionScenario(t *testing.T, killLeader bool) (*Cluster, *witnessSink, int, int) {
	t.Helper()
	const nMsgs = 12
	c, sink, worker := buildScenario(t, shardCfg(), nMsgs)
	sm := c.ShardMap()
	if sm == nil {
		t.Fatal("sharded config produced no shard map")
	}
	slot := sm.ShardOf(worker)
	lead, fol := sm.Leader(slot), sm.Follower(slot)

	c.Scheduler().At(1200*simtime.Millisecond, func() { c.CrashProcess(worker) })
	if killLeader {
		// Poll on a fixed tick grid (deterministic under the simulated
		// clock) and crash the leader the instant its recovery of the
		// worker has started: the 2 s reboot and the replay transfer are
		// still ahead of it, so it dies with the replay in flight.
		var tick func()
		tick = func() {
			r := c.RecorderAt(lead)
			if r != nil && !r.Crashed() && r.Stats().RecoveriesStarted > 0 {
				c.CrashRecorderAt(lead)
				return
			}
			if r != nil && !r.Crashed() {
				c.Scheduler().After(10*simtime.Millisecond, tick)
			}
		}
		c.Scheduler().At(1210*simtime.Millisecond, tick)
	}
	c.Run(120 * simtime.Second)
	expectSteps(t, sink, nMsgs)
	return c, sink, lead, fol
}

// TestFollowerPromotionMidReplay kills the worker-shard leader mid-replay.
// The follower must notice the silence through its peer watchdog, promote
// itself for the leader's slots, and complete the recovery exactly-once —
// and its database must be byte-identical to the run where the leader was
// never killed, so promotion changed who acted, not what was recorded.
func TestFollowerPromotionMidReplay(t *testing.T) {
	cKill, _, lead, fol := runPromotionScenario(t, true)
	if !cKill.RecorderAt(lead).Crashed() {
		t.Fatal("leader was never killed; the scenario exercises nothing")
	}
	folStats := cKill.RecorderAt(fol).Stats()
	if folStats.FollowerPromotions == 0 {
		t.Fatal("follower never promoted after the leader fell silent")
	}
	if folStats.RecoveriesCompleted == 0 {
		t.Fatal("follower completed no recovery; who finished the replay?")
	}

	cBase, _, lead2, fol2 := runPromotionScenario(t, false)
	if lead2 != lead || fol2 != fol {
		t.Fatalf("shard map not seed-stable: leader/follower %d/%d vs %d/%d",
			lead2, fol2, lead, fol)
	}
	dKill := dumpRecorderDB(t, cKill, fol)
	dBase := dumpRecorderDB(t, cBase, fol)
	if !bytes.Equal(dKill, dBase) {
		t.Errorf("follower database differs from the fault-free run (%d vs %d bytes)",
			len(dKill), len(dBase))
	}
}
