package publishing

import (
	"bytes"
	"strings"
	"testing"

	"publishing/internal/demos"
	"publishing/internal/simtime"
)

func TestClusterAccessors(t *testing.T) {
	cfg := DefaultConfig(2)
	cfg.Spares = 1
	c := New(cfg)
	nodes := c.Nodes()
	// 2 processing (0,1) + 1 spare (3; id 2 belongs to the recorder).
	if len(nodes) != 3 || nodes[0] != 0 || nodes[1] != 1 || nodes[2] != 3 {
		t.Fatalf("nodes = %v", nodes)
	}
	if c.Kernel(0) == nil || c.Kernel(2) != nil {
		t.Fatal("Kernel lookup wrong")
	}
	if c.Recorder() == nil || c.RecorderAt(1) != nil || c.Recorders() != 1 {
		t.Fatal("recorder accessors wrong")
	}
	if c.Store() == nil || c.Medium() == nil || c.Trace() == nil || c.Scheduler() == nil {
		t.Fatal("nil plumbing accessor")
	}
	if _, err := c.Spawn(9, ProcSpec{Name: "x"}); err == nil {
		t.Fatal("spawn on missing node succeeded")
	}
	if c.ProcState(ProcID{Node: 0, Local: 42}) != demos.StateUnknown {
		t.Fatal("ghost process has a state")
	}
}

func TestRunUntil(t *testing.T) {
	c := New(DefaultConfig(1))
	fired := false
	c.Scheduler().At(3*simtime.Second, func() { fired = true })
	if c.RunUntil(func() bool { return fired }, 10*simtime.Second) != true {
		t.Fatal("RunUntil missed the event")
	}
	if c.Now() > 4*simtime.Second {
		t.Fatalf("RunUntil overshot: %v", c.Now())
	}
	if c.RunUntil(func() bool { return false }, simtime.Second) {
		t.Fatal("RunUntil invented success")
	}
}

func TestTraceWriterStreams(t *testing.T) {
	var buf bytes.Buffer
	cfg := DefaultConfig(2)
	cfg.TraceWriter = &buf
	c := New(cfg)
	c.Registry().RegisterProgram("p", func(args []byte) Program {
		return func(ctx *PCtx) {
			l := ctx.CreateLink(0, 0)
			_ = ctx.Send(l, []byte("x"), NoLink)
			ctx.Receive()
		}
	})
	if _, err := c.Spawn(0, ProcSpec{Name: "p", Recoverable: true}); err != nil {
		t.Fatal(err)
	}
	c.Run(5 * simtime.Second)
	out := buf.String()
	if !strings.Contains(out, "created") || !strings.Contains(out, "published") {
		t.Fatalf("trace stream missing expected events:\n%s", out)
	}
}

func TestDebugSessionRequiresPublishing(t *testing.T) {
	cfg := DefaultConfig(1)
	cfg.Publishing = false
	c := New(cfg)
	if _, err := c.DebugSession(ProcID{Node: 0, Local: 1}, false); err == nil {
		t.Fatal("debug session without publishing")
	}
	cfg2 := DefaultConfig(1)
	c2 := New(cfg2)
	if _, err := c2.DebugSession(ProcID{Node: 0, Local: 42}, false); err == nil {
		t.Fatal("debug session for unknown process")
	}
}

func TestCrashAccessorsAreIdempotent(t *testing.T) {
	c := New(DefaultConfig(2))
	c.CrashRecorder()
	c.CrashRecorder() // no-op
	if err := c.RestartRecorder(); err != nil {
		t.Fatal(err)
	}
	if err := c.RestartRecorder(); err != nil { // no-op
		t.Fatal(err)
	}
	c.CrashNode(0)
	c.CrashNode(0)
	c.RebootNode(0)
	c.RebootNode(0)
	c.CrashProcess(ProcID{Node: 0, Local: 99}) // ghost: no-op
	c.Run(simtime.Second)
}

func TestNewPanicsWithoutNodes(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("New(0 nodes) did not panic")
		}
	}()
	New(Config{})
}
