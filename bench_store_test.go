package publishing_test

// The storage-engine benchmark suite behind BENCH_store.json: the open-loop
// workload generator (internal/workload) drives both stable-store engines
// file-backed, measuring append throughput at million-record scale, group
// commit, checkpoint-truncation cost against segment count, and the
// recovery-rebuild (reopen) path. Regenerate the trajectory with
// `make bench-store OUT=BENCH_store.json` (append benches run at
// -benchtime 1000000x so "at 10^6 records" is literal).

import (
	"path/filepath"
	"testing"

	"publishing/internal/simtime"
	"publishing/internal/stablestore"
	"publishing/internal/workload"
)

// millionWorkload is the shared shape of the append suite: a 16-process
// cluster, 80% of traffic from 2 hot publishers, fan-out 2, the recorder's
// 1-second group-commit window, and a rotating checkpoint every 500 ms so
// truncation pressure is part of the steady state.
func millionWorkload(seed uint64) *workload.Gen {
	return workload.New(workload.Config{
		Seed: seed, Procs: 16, Rate: 4000, Hotspot: 0.8, HotProcs: 2,
		MsgBytes: 128, FanOut: 2,
		FlushWindow:     simtime.Second,
		CheckpointEvery: 500 * simtime.Millisecond,
		CompactEvery:    16, // reclaim once per checkpoint rotation
	})
}

// genOps pregenerates the op stream holding n appends, so benchmark loops
// time the store alone, not the generator's arithmetic.
func genOps(g *workload.Gen, n int) []workload.Op {
	ops := make([]workload.Op, 0, n+n/256)
	appends := 0
	for appends < n {
		op := g.Next()
		if op.Kind == workload.OpAppend {
			appends++
		}
		ops = append(ops, op)
	}
	return ops
}

// replayOps feeds a pregenerated stream into a store.
func replayOps(b *testing.B, st stablestore.Store, ops []workload.Op) {
	b.Helper()
	for i := range ops {
		op := &ops[i]
		switch op.Kind {
		case workload.OpAppend:
			if _, err := st.Append(op.Rec); err != nil {
				b.Fatal(err)
			}
		case workload.OpFlush:
			if err := st.Flush(); err != nil {
				b.Fatal(err)
			}
		case workload.OpInvalidate:
			st.Invalidate(op.Key, op.Through)
		case workload.OpCompact:
			if _, err := st.Compact(); err != nil {
				b.Fatal(err)
			}
		}
	}
	if err := st.Flush(); err != nil {
		b.Fatal(err)
	}
}

// benchAppend is the appended-records/sec half of the acceptance claim:
// same offered load (pregenerated, so the generator is off the clock),
// file-backed, per appended record, with checkpoint truncation and
// at-quiescence reclamation in the steady state.
func benchAppend(b *testing.B, cfg stablestore.Config) {
	st, err := stablestore.NewStore(cfg)
	if err != nil {
		b.Fatal(err)
	}
	g := millionWorkload(1)
	ops := genOps(g, b.N)
	b.ReportAllocs()
	b.ResetTimer()
	replayOps(b, st, ops)
	b.StopTimer()
	ss := st.Stats()
	b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "records/sec")
	if fl := g.Stats().Flushes; fl > 0 {
		b.ReportMetric(float64(b.N)/float64(fl), "recs/flush")
	}
	b.ReportMetric(float64(ss.PageWrites), "page-writes")
	b.ReportMetric(float64(ss.SegFlushes), "seg-flushes")
	if err := st.Close(); err != nil {
		b.Fatal(err)
	}
}

func BenchmarkStoreMillionAppend(b *testing.B) {
	b.Run("paged", func(b *testing.B) {
		benchAppend(b, stablestore.Config{Path: filepath.Join(b.TempDir(), "db")})
	})
	b.Run("segment", func(b *testing.B) {
		benchAppend(b, stablestore.Config{
			Backend: stablestore.BackendSegment, Path: b.TempDir(),
		})
	})
}

// benchTruncate measures the checkpoint-truncation cycle: each iteration
// appends the same fixed batch (untimed), then — timed — invalidates every
// key's prefix and compacts. Record count per cycle is identical across
// sub-benchmarks; only the segment size (and so the segment count) varies,
// which is what separates O(segments) truncation from the paged engine's
// per-record page rewrites.
func benchTruncate(b *testing.B, mk func() stablestore.Store) {
	const procs, batch = 8, 4000
	st := mk()
	keys := make([]string, procs)
	for p := range keys {
		keys[p] = "msg:" + string(rune('a'+p))
	}
	body := make([]byte, 120)
	seq := uint64(0)
	var segsSeen uint64
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		for j := 0; j < batch; j++ {
			seq++
			if _, err := st.Append(stablestore.Record{
				Kind: stablestore.KindMessage, Key: keys[j%procs], Seq: seq, Data: body,
			}); err != nil {
				b.Fatal(err)
			}
		}
		if err := st.Flush(); err != nil {
			b.Fatal(err)
		}
		segsSeen += st.Stats().Segments
		b.StartTimer()
		for _, k := range keys {
			st.Invalidate(k, seq)
		}
		if _, err := st.Compact(); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	b.ReportMetric(float64(segsSeen)/float64(b.N), "segments")
	b.ReportMetric(float64(st.Stats().Compacted)/float64(b.N), "recs-dropped")
}

func BenchmarkStoreTruncate(b *testing.B) {
	b.Run("paged", func(b *testing.B) {
		benchTruncate(b, func() stablestore.Store { return stablestore.New() })
	})
	// No hyphens in the sub-bench names: benchjson strips a trailing
	// -GOMAXPROCS suffix, which Go omits on a single-CPU box.
	b.Run("segment16k", func(b *testing.B) {
		benchTruncate(b, func() stablestore.Store {
			return stablestore.NewSegmented(16 * 1024)
		})
	})
	b.Run("segment256k", func(b *testing.B) {
		benchTruncate(b, func() stablestore.Store {
			return stablestore.NewSegmented(256 * 1024)
		})
	})
}

// benchReopen is the §4.5 recovery path: open the file backing written by
// a 200k-record workload run and decode it back into a live store — the
// cost a recorder pays to rebuild its database after a crash.
func benchReopen(b *testing.B, cfg stablestore.Config) {
	st, err := stablestore.NewStore(cfg)
	if err != nil {
		b.Fatal(err)
	}
	replayOps(b, st, genOps(millionWorkload(2), 200_000))
	if err := st.Close(); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		re, err := stablestore.NewStore(cfg)
		if err != nil {
			b.Fatal(err)
		}
		if re.Stats().Appends == 0 && re.Pages() == 0 {
			b.Fatal("reopen found an empty store")
		}
		b.StopTimer()
		if err := re.Close(); err != nil {
			b.Fatal(err)
		}
		b.StartTimer()
	}
}

func BenchmarkStoreReopen(b *testing.B) {
	b.Run("paged", func(b *testing.B) {
		benchReopen(b, stablestore.Config{Path: filepath.Join(b.TempDir(), "db")})
	})
	b.Run("segment", func(b *testing.B) {
		benchReopen(b, stablestore.Config{
			Backend: stablestore.BackendSegment, Path: b.TempDir(),
		})
	})
}
