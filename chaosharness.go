package publishing

import (
	"bytes"
	"encoding/gob"
	"fmt"

	"publishing/internal/chaos"
	"publishing/internal/simtime"
	"publishing/internal/stablestore"
)

// This file is the bridge between internal/chaos and a Cluster: the
// canonical chaos scenario every chaos test, the soak tests, and the
// `experiments -chaos` sweep share. It lives in the non-test part of the
// package so tools can reuse it; *Cluster satisfies chaos.System
// structurally, so internal/chaos never imports this package.

var _ chaos.System = (*Cluster)(nil)

// ChaosOptions parameterize the canonical chaos scenario.
type ChaosOptions struct {
	// Msgs is the producer's message count (default 16).
	Msgs int
	// Nodes sizes the cluster (minimum and default 3, plus the recorder
	// node). The scenario's processes stay on nodes 0..2; larger clusters
	// add bystander stations so fault schedules drive the broadcast
	// delivery, gating, and per-destination fast paths at scale — the
	// 256-node smoke in sim_scale_test.go uses this.
	Nodes int
	// Medium selects the LAN simulation (default MediumPerfect).
	Medium MediumKind
	// Checkpoint enables the recovery-time-bound checkpoint policy on the
	// worker, which arms the harness's bounded-recovery invariant.
	Checkpoint bool
	// BreakDupSuppression disables the transport's duplicate detection —
	// negative testing: a run with injected duplication must then fail the
	// exactly-once invariant, proving the checker has teeth.
	BreakDupSuppression bool
	// SegmentStore runs the recorders on the log-structured segmented
	// stable store instead of the thesis-exact paged default, so fault
	// schedules (including store-write faults) exercise both engines.
	SegmentStore bool
	// Recorders, when > 1, runs that many recorders; with ShardSlots it
	// turns on the sharded recorder configuration (leader/follower replica
	// pairs per shard slot), arming the checker's replay-basis-union
	// invariant and making KindHandoffCrash faults meaningful.
	Recorders int
	// ShardSlots is the shard table size for sharded runs (needs
	// Recorders >= 2; see Config.ShardSlots).
	ShardSlots int
	// ParWorkers runs the scenario's cluster on the conservative parallel
	// engine (see Config.ParWorkers). Chaos runs keep the monitor attached
	// and arm faults, so the engine's gate stays closed and execution falls
	// back to serial stepping — the smoke proves the fallback preserves
	// every invariant, not that windows open.
	ParWorkers int
}

// chaosWorkerBound is the recovery-time bound the Checkpoint option sets.
const chaosWorkerBound = 400 * simtime.Millisecond

// chaosWorkload adapts the scenario's witness transcript and worker state
// to the chaos.Workload interface.
type chaosWorkload struct {
	n    int
	msgs []string
	// workerSt points at the current worker incarnation's state; recovery
	// constructs a fresh machine through the registry factory, which
	// re-points it, so State always reads the live instance.
	workerSt *chaosWorkerState
}

func (w *chaosWorkload) Done() bool { return len(w.msgs) >= w.n }

func (w *chaosWorkload) Output() []string { return append([]string(nil), w.msgs...) }

func (w *chaosWorkload) State() ([]byte, error) {
	var buf bytes.Buffer
	err := gob.NewEncoder(&buf).Encode(w.workerSt)
	return buf.Bytes(), err
}

// chaosWitness appends every message body to the workload transcript. It is
// never a fault target: its output escapes the simulation, so replaying it
// would duplicate external effects (see ROADMAP open items).
type chaosWitness struct{ wl *chaosWorkload }

func (m *chaosWitness) Init(*PCtx)           {}
func (m *chaosWitness) Handle(_ *PCtx, g Msg) { m.wl.msgs = append(m.wl.msgs, string(g.Body)) }
func (m *chaosWitness) Snapshot() ([]byte, error) { return nil, nil }
func (m *chaosWitness) Restore([]byte) error      { return nil }

// chaosWorkerState is the worker's checkpointable state.
type chaosWorkerState struct {
	Witness LinkID
	HasOut  bool
	Count   int
	Sum     int
}

// chaosWorker accumulates integers and reports each step to the witness —
// the recoverable process whose exactly-once, state, and output guarantees
// the invariants check.
type chaosWorker struct{ st *chaosWorkerState }

func (m *chaosWorker) Init(ctx *PCtx) {
	if lid, err := ctx.ServiceLink("chaos-witness"); err == nil {
		m.st.Witness = lid
		m.st.HasOut = true
	}
}

func (m *chaosWorker) Handle(ctx *PCtx, g Msg) {
	m.st.Count++
	m.st.Sum += int(g.Body[0])
	if m.st.HasOut {
		_ = ctx.Send(m.st.Witness, []byte(fmt.Sprintf("step=%d sum=%d", m.st.Count, m.st.Sum)), NoLink)
	}
}

func (m *chaosWorker) Snapshot() ([]byte, error) {
	var buf bytes.Buffer
	err := gob.NewEncoder(&buf).Encode(m.st)
	return buf.Bytes(), err
}

func (m *chaosWorker) Restore(b []byte) error {
	return gob.NewDecoder(bytes.NewReader(b)).Decode(m.st)
}

// ChaosScenario assembles the canonical chaos scenario for one seed:
// producer on node 0, worker on node 1, witness on node 2, recorder on
// node 3. The watchdog's silence tolerance (MissThreshold 20 × 500 ms =
// 10 s) deliberately exceeds the default 8 s fault window, so bursts and
// partitions can never falsely condemn the untargeted witness or producer
// nodes.
func ChaosScenario(seed uint64, opt ChaosOptions) chaos.Scenario {
	if opt.Msgs <= 0 {
		opt.Msgs = 16
	}
	if opt.Nodes < 3 {
		opt.Nodes = 3
	}
	cfg := DefaultConfig(opt.Nodes)
	cfg.Seed = seed
	if opt.Medium != "" {
		cfg.Medium = opt.Medium
	}
	if opt.Nodes > 16 {
		// The recorder pings every processing node each watch tick, so
		// watchdog traffic alone is ~2N frames per 500 ms. On the paper's
		// 10 Mb/s Ethernet (~2 ms per small frame with the interframe gap)
		// that saturates the bus near N≈128 and the scenario collapses into
		// congestion, not faults. Big-cluster smokes model a modern fast
		// LAN instead — the same shape bench_sim_test.go uses — keeping
		// ping load under ~10% so the fault schedule stays the experiment.
		cfg.LAN.BitsPerSecond = 100_000_000
		cfg.LAN.InterframeGap = 50 * simtime.Microsecond
	}
	cfg.MissThreshold = 20
	// The retry budget must outlast worst-case convalescence: ~10 s watchdog
	// detection + 2 s reboot + recovery, plus recorder-outage suspensions.
	// The default 200×50 ms = 10 s budget is exactly the detection tolerance,
	// so a sender could give up moments before the recovered process returns.
	// With the adaptive RTO the attempt counter no longer maps to wall time
	// (backed-off timeouts stretch toward MaxRTO), so the transport also
	// derives a wall-clock RetryBudget from this value — 600 × 50 ms = 30 s
	// remains the effective give-up bound in both modes.
	cfg.Transport.MaxRetries = 600
	cfg.Transport.DisableDupSuppression = opt.BreakDupSuppression
	if opt.Checkpoint {
		cfg.CheckpointPolicy = CheckpointBound
		cfg.CheckpointTick = 300 * simtime.Millisecond
	}
	if opt.SegmentStore {
		cfg.Store.Backend = stablestore.BackendSegment
	}
	if opt.Recorders > 0 {
		cfg.Recorders = opt.Recorders
	}
	cfg.ShardSlots = opt.ShardSlots
	cfg.ParWorkers = opt.ParWorkers
	// Every chaos run carries the online invariant monitor, so the checker
	// can cross-check its streaming verdict against the post-quiescence
	// invariants (and so violations come stamped with the virtual time the
	// violating event landed, not just discovered after the fact).
	cfg.Monitor = true
	c := New(cfg)
	wl := &chaosWorkload{n: opt.Msgs}
	c.Registry().RegisterMachine("chaos-witness", func([]byte) Machine {
		return &chaosWitness{wl: wl}
	})
	c.Registry().RegisterMachine("chaos-worker", func([]byte) Machine {
		st := &chaosWorkerState{}
		wl.workerSt = st
		return &chaosWorker{st: st}
	})
	c.Registry().RegisterProgram("chaos-producer", func([]byte) Program {
		return func(ctx *PCtx) {
			link, err := ctx.ServiceLink("chaos-worker")
			if err != nil {
				return
			}
			for i := 1; i <= opt.Msgs; i++ {
				_ = ctx.Send(link, []byte{byte(i)}, NoLink)
				ctx.Compute(200 * simtime.Millisecond)
			}
		}
	})

	mustSpawn := func(node NodeID, spec ProcSpec) ProcID {
		p, err := c.Spawn(node, spec)
		if err != nil {
			panic(fmt.Sprintf("publishing: chaos scenario spawn %s: %v", spec.Name, err))
		}
		return p
	}
	wit := mustSpawn(2, ProcSpec{Name: "chaos-witness", Recoverable: true})
	c.SetService("chaos-witness", wit)
	workerSpec := ProcSpec{Name: "chaos-worker", Recoverable: true}
	if opt.Checkpoint {
		workerSpec.RecoveryTimeBound = chaosWorkerBound
	}
	worker := mustSpawn(1, workerSpec)
	c.SetService("chaos-worker", worker)
	mustSpawn(0, ProcSpec{Name: "chaos-producer", Recoverable: true})

	ck := chaos.CheckConfig{}
	if opt.Checkpoint {
		ck.RecoveryBound = chaosWorkerBound
	}
	return chaos.Scenario{
		Sys:  c,
		Work: wl,
		Targets: chaos.Targets{
			Worker:     worker,
			CrashNodes: []NodeID{1},
			PartNodes:  []NodeID{0, 1},
			LinkNodes:  []NodeID{0, 1, 2, 3},
		},
		CheckCfg: ck,
	}
}

// ChaosBuild returns the chaos.BuildFunc for ChaosScenario with fixed
// options — what chaos.Run calls twice per schedule (baseline + faulted).
func ChaosBuild(opt ChaosOptions) chaos.BuildFunc {
	return func(seed uint64) chaos.Scenario { return ChaosScenario(seed, opt) }
}

// ChaosSeedVariant derives per-seed option diversity for sweeps: a third of
// seeds run with the checkpoint-bound policy armed (exercising chunked
// checkpoint transfer and the bounded-recovery invariant), a third run the
// sharded replicated recorder trio (arming replay-basis-union and making
// handoff-crash faults bite; a sparse extra rotation overlaps sharding with
// the checkpoint seeds so the combination is covered too), half run on the
// segmented stable store, media rotate through the sweep so every LAN
// simulation faces schedules, and cluster sizes rotate 3/4/8/16/64 so fault
// schedules hit the gated-station and dense-table paths at every width the
// fast paths specialize for.
func ChaosSeedVariant(seed uint64) ChaosOptions {
	opt := ChaosOptions{}
	switch seed % 3 {
	case 1:
		opt.Checkpoint = true
	case 2:
		opt.Recorders = 3
		opt.ShardSlots = 16
	}
	if seed%7 == 1 {
		opt.Recorders = 3
		opt.ShardSlots = 16
	}
	opt.SegmentStore = seed%2 == 0
	switch seed % 4 {
	case 1:
		opt.Medium = MediumEther
	case 2:
		opt.Medium = MediumAckEther
	case 3:
		opt.Medium = MediumStar
	}
	switch seed % 5 {
	case 1:
		opt.Nodes = 4
	case 2:
		opt.Nodes = 8
	case 3:
		opt.Nodes = 16
	case 4:
		opt.Nodes = 64
	}
	return opt
}
