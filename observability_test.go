package publishing

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"

	"publishing/internal/simtime"
	"publishing/internal/stablestore"
)

// chromeSpan is the subset of a trace-event entry the assertions need.
type chromeSpan struct {
	Name string            `json:"name"`
	Cat  string            `json:"cat"`
	Ph   string            `json:"ph"`
	Pid  int               `json:"pid"`
	ID   string            `json:"id"`
	Args map[string]string `json:"args"`
}

// The tentpole acceptance test: a crash-and-recover run exports a valid
// Chrome trace whose replay spans reference the span ids of the original
// published messages — the causal thread from pre-crash traffic to recovery.
func TestCrashRecoverChromeTimeline(t *testing.T) {
	cfg := DefaultConfig(3)
	cfg.Medium = MediumEther
	c, sink, worker := buildScenario(t, cfg, 12)
	c.Trace().SetDetailed(true)
	c.Scheduler().At(1200*simtime.Millisecond, func() { c.CrashProcess(worker) })
	c.Run(60 * simtime.Second)
	expectSteps(t, sink, 12)

	var buf bytes.Buffer
	if err := c.Trace().WriteChrome(&buf); err != nil {
		t.Fatal(err)
	}
	var file struct {
		TraceEvents []chromeSpan `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &file); err != nil {
		t.Fatalf("trace output is not valid JSON: %v", err)
	}

	published := map[string]bool{}
	opened := map[string]bool{}
	var replays []chromeSpan
	for _, e := range file.TraceEvents {
		if e.Pid < 0 {
			t.Fatalf("negative pid in %+v", e)
		}
		if e.Cat != "msg" {
			continue
		}
		switch {
		case e.Ph == "b":
			opened[e.ID] = true
		case e.Args["kind"] == "publish":
			published[e.ID] = true
		case e.Args["kind"] == "replay":
			replays = append(replays, e)
		}
	}
	if len(published) == 0 {
		t.Fatal("no publish spans in the timeline")
	}
	if len(replays) == 0 {
		t.Fatal("no replay spans in the timeline despite a recovery")
	}
	for _, e := range replays {
		if !published[e.ID] {
			t.Fatalf("replay span %q has no matching publish span", e.ID)
		}
		if !opened[e.ID] {
			t.Fatalf("replay span %q has no send open", e.ID)
		}
	}
}

// metricsText runs the standard crash-and-recover scenario on the given
// stable-store backend and returns the Prometheus-style metrics dump.
func metricsText(t *testing.T, seed uint64, backend stablestore.Backend) string {
	t.Helper()
	cfg := DefaultConfig(3)
	cfg.Medium = MediumEther
	cfg.Seed = seed
	cfg.Store.Backend = backend
	c, sink, worker := buildScenario(t, cfg, 12)
	c.Scheduler().At(1200*simtime.Millisecond, func() { c.CrashProcess(worker) })
	c.Run(60 * simtime.Second)
	expectSteps(t, sink, 12)
	var buf bytes.Buffer
	if err := c.Metrics().Snapshot().WriteText(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.String()
}

// The metrics dump is a pure function of the seed: two identical runs
// produce byte-identical text, and a different seed shows the dump is not
// just constant.
func TestMetricsDeterministicAcrossSameSeedRuns(t *testing.T) {
	a := metricsText(t, 1, stablestore.BackendPaged)
	if b := metricsText(t, 1, stablestore.BackendPaged); a != b {
		t.Fatal("same-seed runs produced different metrics text")
	}
	if a == metricsText(t, 99, stablestore.BackendPaged) {
		t.Fatal("different seeds produced identical metrics text (suspicious)")
	}
	// The dump must actually cover every wired subsystem.
	for _, want := range []string{
		"pub_lan_frames_sent", "pub_transport_retransmits",
		"pub_recorder_arrivals_recorded", "pub_recorder_publish_latency_ns_count",
		"pub_store_appends", "pub_kernel_queue_depth", "pub_kernel_msgs_sent",
	} {
		if !bytes.Contains([]byte(a), []byte(want)) {
			t.Fatalf("metrics text missing %s", want)
		}
	}
}

// metricValues extracts every `name{...} value` sample matching the metric
// name from a text dump.
func metricValues(text, name string) []string {
	var out []string
	for _, line := range strings.Split(text, "\n") {
		if strings.HasPrefix(line, name+"{") || strings.HasPrefix(line, name+" ") {
			f := strings.Fields(line)
			out = append(out, f[len(f)-1])
		}
	}
	return out
}

// The per-backend store metrics contract: both engines export the full
// store family (the scrape schema does not depend on the backend), the
// segmented engine's group-commit batch histogram and segment-flush counter
// move and are deterministic across same-seed runs, and both stay zero on
// the paged engine.
func TestStoreMetricsPerBackend(t *testing.T) {
	seg := metricsText(t, 1, stablestore.BackendSegment)
	if seg2 := metricsText(t, 1, stablestore.BackendSegment); seg != seg2 {
		t.Fatal("same-seed segmented runs produced different metrics text")
	}
	paged := metricsText(t, 1, stablestore.BackendPaged)

	for _, want := range []string{
		"pub_store_seg_flushes", "pub_store_segments_sealed",
		"pub_store_group_commit_batch_count",
	} {
		for name, text := range map[string]string{"segment": seg, "paged": paged} {
			if !strings.Contains(text, want) {
				t.Fatalf("%s backend dump missing %s", name, want)
			}
		}
	}

	nonzero := func(vals []string) bool {
		for _, v := range vals {
			if v != "0" {
				return true
			}
		}
		return false
	}
	// The recorder group-commits on the segmented engine, so its flush
	// counter and batch histogram must have observations...
	if !nonzero(metricValues(seg, "pub_store_seg_flushes")) {
		t.Fatal("segmented run recorded no group commits")
	}
	if !nonzero(metricValues(seg, "pub_store_group_commit_batch_count")) {
		t.Fatal("segmented run observed nothing in the batch histogram")
	}
	// ...while the paged engine, which has no group commit, keeps the same
	// metrics present but pinned at zero.
	for _, name := range []string{
		"pub_store_seg_flushes", "pub_store_segments_sealed",
		"pub_store_group_commit_batch_count",
	} {
		if nonzero(metricValues(paged, name)) {
			t.Fatalf("paged backend moved segment metric %s", name)
		}
	}
}

// Config.FlightRecorder bounds trace growth while the exported tail stays
// coherent.
func TestFlightRecorderBoundsTrace(t *testing.T) {
	cfg := DefaultConfig(3)
	cfg.FlightRecorder = 64
	c, sink, _ := buildScenario(t, cfg, 10)
	c.Run(30 * simtime.Second)
	expectSteps(t, sink, 10)
	ev := c.Trace().Events()
	if len(ev) > 64 {
		t.Fatalf("flight recorder kept %d events, want <= 64", len(ev))
	}
	if c.Trace().Dropped() == 0 {
		t.Fatal("a full run should overflow a 64-event ring")
	}
	for i := 1; i < len(ev); i++ {
		if ev[i].At < ev[i-1].At {
			t.Fatal("ring export out of order")
		}
	}
	var buf bytes.Buffer
	if err := c.Trace().WriteChrome(&buf); err != nil {
		t.Fatal(err)
	}
	if !json.Valid(buf.Bytes()) {
		t.Fatal("wrapped ring exported invalid JSON")
	}
}

// Queue-depth gauges must return to zero once every process has drained —
// the invariant that makes the gauge trustworthy across crash and recovery.
func TestQueueDepthGaugeReturnsToZero(t *testing.T) {
	cfg := DefaultConfig(3)
	c, sink, worker := buildScenario(t, cfg, 10)
	c.Scheduler().At(1200*simtime.Millisecond, func() { c.CrashProcess(worker) })
	c.Run(60 * simtime.Second)
	expectSteps(t, sink, 10)
	for _, s := range c.Metrics().Snapshot().Samples {
		if s.Name == "queue_depth" && s.Value != 0 {
			t.Fatalf("node %d queue_depth = %d after quiescence", s.Node, s.Value)
		}
	}
}
