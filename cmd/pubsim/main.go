// Pubsim regenerates the queuing-model half of the paper's evaluation
// (Chapter 5, part one): the Fig 5.1 topology, the Fig 5.2 hardware
// parameters, the Fig 5.3 state-size distribution, the Fig 5.4 operating
// points, the Fig 5.5 utilization surface, the §5.1 prose claims (disk
// saturation and its buffering fix, the >3-node saturation at the maximum
// system-call rate, recorder buffering and storage bounds), the §5.1
// checkpoint-interval observations, the abstract's 115-user capacity, and
// the §6.6 optimization estimates.
//
// Usage:
//
//	go run ./cmd/pubsim              # everything
//	go run ./cmd/pubsim -fig55       # one artifact
package main

import (
	"flag"
	"fmt"
	"os"

	"publishing/internal/model"
	"publishing/internal/simtime"
)

func main() {
	var (
		topology  = flag.Bool("topology", false, "print the Fig 5.1 model topology")
		params    = flag.Bool("params", false, "print the Fig 5.2 hardware parameters")
		sizes     = flag.Bool("statesizes", false, "print the Fig 5.3 state-size distribution")
		points    = flag.Bool("points", false, "print the Fig 5.4 operating points")
		fig55     = flag.Bool("fig55", false, "simulate the Fig 5.5 utilization surface")
		claims    = flag.Bool("claims", false, "check the §5.1 prose claims")
		capacity  = flag.Bool("capacity", false, "find the 115-user capacity")
		intervals = flag.Bool("ckintervals", false, "print the §5.1 checkpoint intervals")
		optim     = flag.Bool("optim", false, "evaluate the §6.6 optimizations")
		seed      = flag.Uint64("seed", 1, "simulation seed")
	)
	flag.Parse()
	all := !(*topology || *params || *sizes || *points || *fig55 || *claims || *capacity || *intervals || *optim)

	if all || *topology {
		printTopology()
	}
	if all || *params {
		printParams()
	}
	if all || *sizes {
		printStateSizes()
	}
	if all || *points {
		printPoints()
	}
	if all || *intervals {
		printIntervals()
	}
	if all || *fig55 {
		printFig55(*seed)
	}
	if all || *claims {
		printClaims(*seed)
	}
	if all || *capacity {
		printCapacity(*seed)
	}
	if all || *optim {
		printOptim()
	}
}

func section(title string) {
	fmt.Printf("\n================ %s ================\n", title)
}

func printTopology() {
	section("Fig 5.1 — the open queuing model")
	fmt.Print(`
  [node 1..N sources] --short/long/ckpt msgs--> (network) --+--> (recorder CPU) --> [4KB buffer] --> (disk x d)
                                                            |
                each delivery provokes an ack frame  <------+
                (rides the Acknowledging Ethernet's reserved slot; the
                 recorder CPU processes it to learn arrival order)
`)
}

func printParams() {
	section("Fig 5.2 — hardware parameters")
	h := model.Fig52()
	fmt.Printf("  Ethernet interface interpacket delay  %v\n", h.InterpacketDelay)
	fmt.Printf("  Network bandwidth                     %d megabits per second\n", h.BitsPerSecond/1_000_000)
	fmt.Printf("  Disk latency                          %v\n", h.DiskLatency)
	fmt.Printf("  Disk transfer rate                    %d megabytes per second\n", h.DiskBytesPerSecond/1_000_000)
	fmt.Printf("  Time to process a packet              %v\n", h.PacketCPU)
}

func printStateSizes() {
	section("Fig 5.3 — state sizes for UNIX processes (synthetic; original figure lost)")
	for _, b := range model.Fig53StateSizes() {
		bar := ""
		for i := 0; i < int(b.Fraction*100); i++ {
			bar += "#"
		}
		fmt.Printf("  %3d KB %5.1f%% %s\n", b.KB, b.Fraction*100, bar)
	}
	fmt.Printf("  mean: %d KB\n", model.MeanStateKB())
}

func printPoints() {
	section("Fig 5.4 — operating points (synthetic; calibrated to §5.1's prose)")
	fmt.Printf("  %-12s %9s %9s %12s %12s\n", "point", "load avg", "state KB", "short/proc/s", "long/proc/s")
	for _, p := range model.Fig54OperatingPoints() {
		fmt.Printf("  %-12s %9d %9d %12.2f %12.2f\n", p.Name, p.LoadAvg, p.StateKB, p.ShortPerProc, p.LongPerProc)
	}
}

func printIntervals() {
	section("§5.1 — storage-balance checkpoint intervals")
	for _, p := range model.Fig54OperatingPoints() {
		fmt.Printf("  %-12s state %2d KB at %7.0f B/s/proc -> checkpoint every %v\n",
			p.Name, p.StateKB, p.BytesPerProcPerSec(), p.CheckpointInterval())
	}
	fmt.Println("  paper: \"between 1 second for 4k byte processes during high message")
	fmt.Println("  rates and 2 minutes for 64k byte processes during low message rates\"")
}

func printFig55(seed uint64) {
	section("Fig 5.5 — % utilization of system components (simulated)")
	rows := model.Fig55(true, seed)
	cur := ""
	for _, r := range rows {
		if r.Disks != 1 && r.Point != "max-msg" {
			continue // the disk sweep only moves the needle at max-msg
		}
		if r.Point != cur {
			cur = r.Point
			fmt.Printf("\n  operating point %q:\n", cur)
			fmt.Printf("    %5s %5s | %8s %8s %8s\n", "nodes", "disks", "network", "cpu", "disk")
		}
		fmt.Printf("    %5d %5d | %7.1f%% %7.1f%% %7.1f%%\n",
			r.Nodes, r.Disks, r.Network*100, r.CPU*100, r.Disk*100)
	}
}

func printClaims(seed uint64) {
	section("§5.1 — prose claims")

	p, _ := model.Point("max-msg")
	unbuf := model.DefaultSystem(p, 5, 1)
	unbuf.Buffered = false
	unbuf.Seed = seed
	ru := model.Simulate(unbuf)
	buf := model.DefaultSystem(p, 5, 1)
	buf.Seed = seed
	rb := model.Simulate(buf)
	fmt.Printf("  disk at max-msg, 5 nodes: per-message writes %.0f%% -> 4KB buffers %.0f%%\n",
		ru.DiskUtil*100, rb.DiskUtil*100)
	fmt.Println("    paper: disk saturation \"removed by allowing messages to be written")
	fmt.Println("    out in 4k byte buffers rather than forcing one disk write per message\"")

	ps, _ := model.Point("max-syscall")
	fmt.Printf("\n  max-syscall saturation: network binds at %.1f nodes (CPU at %.1f)\n",
		model.SaturationNodes(ps, true, 1)*1, satCPU(ps))
	fmt.Println("    paper: \"all three subsystems saturate when more than 3 processing")
	fmt.Println("    nodes are attached ... cannot be removed by any simple optimizations\"")

	worstBacklog, worstStorage := 0.0, 0.0
	for _, p := range model.Fig54OperatingPoints() {
		cfg := model.DefaultSystem(p, 5, 1)
		cfg.Seed = seed
		cfg.Measure = 60 * simtime.Second
		r := model.Simulate(cfg)
		if r.NetworkUtil < 0.95 && r.CPUUtil < 0.95 && r.DiskUtil < 0.95 && r.RecorderBacklogKB > worstBacklog {
			worstBacklog = r.RecorderBacklogKB
		}
		if r.StorageKB > worstStorage {
			worstStorage = r.StorageKB
		}
	}
	fmt.Printf("\n  recorder buffering high-water: %.1f KB   (paper: \"at most 28k bytes\")\n", worstBacklog)
	fmt.Printf("  worst-case checkpoint+message storage: %.2f MB (paper: 2.76 MB)\n", worstStorage/1024)
}

func satCPU(p model.OperatingPoint) float64 {
	_, cpu, _ := model.PerNodeDemand(p, model.Fig52(), true, 1)
	if cpu <= 0 {
		return 0
	}
	return 1 / cpu
}

func printCapacity(seed uint64) {
	section("capacity — the abstract's \"up to 115 users\"")
	fmt.Printf("  analytic capacity:  %d users\n", model.AnalyticCapacity())
	fmt.Printf("  simulated capacity: %d users (binary search to saturation)\n", model.Capacity(seed))
	fmt.Println("  paper: \"a recorder, constructed from current technology, can support")
	fmt.Println("  a system of up to 115 users\"")
}

func printOptim() {
	section("§6.6 — optimizations")
	p, _ := model.Point("max-msg")
	full := model.SaturationNodes(p, false, 1.0)
	trimmed := model.SaturationNodes(p, false, 0.85)
	fmt.Printf("  §6.6.1 not publishing the disk-to-tape backups (15%% of messages at the\n")
	fmt.Printf("  max disk-rate point): supportable nodes %.2f -> %.2f\n", full, trimmed)
	fmt.Println("    paper: \"the recorder would be able to support one more VAX\"")

	fmt.Printf("\n  §6.6.2 node-level recovery removes intranode messages from the wire\n")
	fmt.Printf("  (see 'go run ./cmd/experiments -nodeopt' for the measured trade-off)\n")
	os.Exit(0)
}
