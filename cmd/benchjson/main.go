// Benchjson converts `go test -bench` output on stdin into a JSON snapshot,
// the format of the repo's committed perf-trajectory files (BENCH_*.json).
//
// Usage:
//
//	go test -bench=. -benchmem -run=^$ . | go run ./cmd/benchjson > BENCH_baseline.json
//
// Only benchmark result lines are parsed; everything else (ok lines, logs)
// is ignored, so piping a whole test run through is fine.
package main

import (
	"bufio"
	"encoding/json"
	"fmt"
	"os"
	"strconv"
	"strings"
)

// Bench is one benchmark result.
type Bench struct {
	Name        string  `json:"name"`
	Iters       int64   `json:"iters"`
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  float64 `json:"bytes_per_op,omitempty"`
	AllocsPerOp float64 `json:"allocs_per_op,omitempty"`
	// Extra holds any custom b.ReportMetric units (e.g. "msgs/wallsec").
	Extra map[string]float64 `json:"extra,omitempty"`
}

// Snapshot is the whole file.
type Snapshot struct {
	Note       string  `json:"note,omitempty"`
	Benchmarks []Bench `json:"benchmarks"`
}

func main() {
	note := ""
	if len(os.Args) > 1 {
		note = strings.Join(os.Args[1:], " ")
	}
	snap := Snapshot{Note: note}
	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		if b, ok := parseLine(sc.Text()); ok {
			snap.Benchmarks = append(snap.Benchmarks, b)
		}
	}
	if err := sc.Err(); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	if len(snap.Benchmarks) == 0 {
		fmt.Fprintln(os.Stderr, "benchjson: no benchmark lines on stdin")
		os.Exit(1)
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(snap); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
}

// parseLine parses one `BenchmarkName-P  N  v unit  v unit ...` line.
func parseLine(line string) (Bench, bool) {
	fields := strings.Fields(line)
	if len(fields) < 4 || !strings.HasPrefix(fields[0], "Benchmark") {
		return Bench{}, false
	}
	name := fields[0]
	if i := strings.LastIndexByte(name, '-'); i > 0 {
		name = name[:i] // strip the -GOMAXPROCS suffix
	}
	iters, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return Bench{}, false
	}
	b := Bench{Name: name, Iters: iters}
	for i := 2; i+1 < len(fields); i += 2 {
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			return Bench{}, false
		}
		switch unit := fields[i+1]; unit {
		case "ns/op":
			b.NsPerOp = v
		case "B/op":
			b.BytesPerOp = v
		case "allocs/op":
			b.AllocsPerOp = v
		default:
			if b.Extra == nil {
				b.Extra = make(map[string]float64)
			}
			b.Extra[unit] = v
		}
	}
	return b, true
}
