// Benchjson converts `go test -bench` output on stdin into a JSON snapshot,
// the format of the repo's committed perf-trajectory files (BENCH_*.json).
//
// Usage:
//
//	go test -bench=. -benchmem -run=^$ . | go run ./cmd/benchjson -o BENCH_baseline.json
//	go test -bench=. -run=^$ . | go run ./cmd/benchjson -after BENCH_recovery.json
//	go run ./cmd/benchjson -diff old.json new.json
//	go run ./cmd/benchjson -diff BENCH_recovery.json
//
// Only benchmark result lines are parsed; everything else (ok lines, logs)
// is ignored, so piping a whole test run through is fine.
//
// -o writes the snapshot to a file instead of stdout, but refuses to
// clobber an existing trajectory file: updating one in place is what
// -after is for (-force overrides). -after updates the "after" half of a
// before/after pair file in place, preserving its "before" half (a plain
// snapshot file is adopted as the before). -metrics FILE embeds a metrics
// snapshot (the WriteJSON export of a run's registry) into the output, so
// a trajectory records what the counters looked like alongside the
// timings. -diff prints per-benchmark deltas between two snapshots, or
// between the halves of a single pair file.
package main

import (
	"bufio"
	"encoding/json"
	"fmt"
	"os"
	"sort"
	"strconv"
	"strings"
)

// Bench is one benchmark result.
type Bench struct {
	Name        string  `json:"name"`
	Iters       int64   `json:"iters"`
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  float64 `json:"bytes_per_op,omitempty"`
	AllocsPerOp float64 `json:"allocs_per_op,omitempty"`
	// Extra holds any custom b.ReportMetric units (e.g. "msgs/wallsec").
	Extra map[string]float64 `json:"extra,omitempty"`
}

// Snapshot is the whole file.
type Snapshot struct {
	Note       string  `json:"note,omitempty"`
	Benchmarks []Bench `json:"benchmarks"`
	// Metrics is an optional embedded metrics-registry export (-metrics),
	// recorded alongside the timings but never diffed.
	Metrics json.RawMessage `json:"metrics,omitempty"`
}

// Pair is a before/after trajectory file (BENCH_recovery.json).
type Pair struct {
	Note   string   `json:"note,omitempty"`
	Before Snapshot `json:"before"`
	After  Snapshot `json:"after"`
}

func main() {
	args := os.Args[1:]
	var (
		outPath string
		metPath string
		force   bool
	)
loop:
	for len(args) > 0 {
		switch args[0] {
		case "-diff":
			runDiff(args[1:])
			return
		case "-after":
			if len(args) < 2 {
				fmt.Fprintln(os.Stderr, "benchjson: -after needs a pair-file path")
				os.Exit(1)
			}
			runAfter(args[1], metPath, strings.Join(args[2:], " "))
			return
		case "-o":
			if len(args) < 2 {
				fmt.Fprintln(os.Stderr, "benchjson: -o needs a path")
				os.Exit(1)
			}
			outPath = args[1]
			args = args[2:]
		case "-metrics":
			if len(args) < 2 {
				fmt.Fprintln(os.Stderr, "benchjson: -metrics needs a file path")
				os.Exit(1)
			}
			metPath = args[1]
			args = args[2:]
		case "-force":
			force = true
			args = args[1:]
		default:
			break loop
		}
	}
	snap := readBench(strings.Join(args, " "))
	snap.Metrics = loadMetrics(metPath)
	data, err := json.MarshalIndent(&snap, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	data = append(data, '\n')
	if outPath == "" {
		os.Stdout.Write(data)
		return
	}
	if _, err := os.Stat(outPath); err == nil && !force {
		fmt.Fprintf(os.Stderr, "benchjson: %s already exists; use -after to update a trajectory in place, or -force to overwrite\n", outPath)
		os.Exit(1)
	}
	if err := os.WriteFile(outPath, data, 0o644); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
}

// loadMetrics reads an embedded-metrics file ("" = none), requiring JSON —
// the WriteJSON export of a registry, not the Prometheus text form.
func loadMetrics(path string) json.RawMessage {
	if path == "" {
		return nil
	}
	data, err := os.ReadFile(path)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	if !json.Valid(data) {
		fmt.Fprintf(os.Stderr, "benchjson: %s is not JSON (use the metrics JSON export, not the text form)\n", path)
		os.Exit(1)
	}
	return json.RawMessage(data)
}

// readBench parses `go test -bench` output on stdin into a snapshot.
func readBench(note string) Snapshot {
	snap := Snapshot{Note: note}
	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		if b, ok := parseLine(sc.Text()); ok {
			snap.Benchmarks = append(snap.Benchmarks, b)
		}
	}
	if err := sc.Err(); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	if len(snap.Benchmarks) == 0 {
		fmt.Fprintln(os.Stderr, "benchjson: no benchmark lines on stdin")
		os.Exit(1)
	}
	return snap
}

// loadFile reads a trajectory file as (pair, isPair) or a plain snapshot.
func loadFile(path string) (Pair, bool) {
	data, err := os.ReadFile(path)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	var p Pair
	if err := json.Unmarshal(data, &p); err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: %s: %v\n", path, err)
		os.Exit(1)
	}
	if len(p.Before.Benchmarks) > 0 || len(p.After.Benchmarks) > 0 {
		return p, true
	}
	var s Snapshot
	if err := json.Unmarshal(data, &s); err != nil || len(s.Benchmarks) == 0 {
		fmt.Fprintf(os.Stderr, "benchjson: %s: neither a snapshot nor a before/after pair\n", path)
		os.Exit(1)
	}
	return Pair{Note: s.Note, Before: s}, false
}

// runAfter refreshes the "after" half of a pair file from stdin, keeping the
// existing "before" (or adopting a plain snapshot file as the before). A
// missing file starts a fresh trajectory: the measurement becomes both
// halves until a later change moves the after.
func runAfter(path, metPath, note string) {
	snap := readBench(note)
	snap.Metrics = loadMetrics(metPath)
	pair := Pair{Before: snap}
	if _, err := os.Stat(path); err == nil {
		pair, _ = loadFile(path)
	}
	pair.After = snap
	if note != "" {
		pair.After.Note = note
	}
	data, err := json.MarshalIndent(&pair, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	diffSnapshots(os.Stdout, pair.Before, pair.After)
}

// runDiff prints per-benchmark deltas: two snapshot files, or the before
// and after halves of one pair file.
func runDiff(paths []string) {
	var old, cur Snapshot
	switch len(paths) {
	case 1:
		p, isPair := loadFile(paths[0])
		if !isPair {
			fmt.Fprintf(os.Stderr, "benchjson: %s is not a before/after pair; -diff needs two plain snapshots\n", paths[0])
			os.Exit(1)
		}
		old, cur = p.Before, p.After
	case 2:
		// A pair file stands for its most recent measurement (the after).
		snapOf := func(p Pair, isPair bool) Snapshot {
			if isPair {
				return p.After
			}
			return p.Before
		}
		po, oPair := loadFile(paths[0])
		pn, nPair := loadFile(paths[1])
		old, cur = snapOf(po, oPair), snapOf(pn, nPair)
	default:
		fmt.Fprintln(os.Stderr, "usage: benchjson -diff old.json [new.json]")
		os.Exit(1)
	}
	missing, extra := nameSetDiff(old, cur)
	if len(missing) > 0 {
		// A benchmark that vanished means the snapshots measure different
		// things; a per-row delta over the intersection would read as a
		// perf change when it is really a harness change.
		fmt.Fprintf(os.Stderr, "benchjson: only in old snapshot: %s\n", strings.Join(missing, ", "))
		fmt.Fprintln(os.Stderr, "benchjson: benchmarks removed; re-run both sides with the same -bench selection")
		os.Exit(1)
	}
	if len(extra) > 0 {
		// New benchmarks (and likewise new per-bench ReportMetric units) are
		// additive: the shared rows still diff meaningfully, so growing a
		// trajectory must not be a breaking change. The new rows print with
		// an old value of "-".
		fmt.Fprintf(os.Stderr, "benchjson: new in this snapshot (no old value): %s\n", strings.Join(extra, ", "))
	}
	diffSnapshots(os.Stdout, old, cur)
}

// nameSetDiff reports benchmark names present in only one snapshot.
func nameSetDiff(old, cur Snapshot) (missing, extra []string) {
	o := make(map[string]bool, len(old.Benchmarks))
	for _, b := range old.Benchmarks {
		o[b.Name] = true
	}
	n := make(map[string]bool, len(cur.Benchmarks))
	for _, b := range cur.Benchmarks {
		n[b.Name] = true
		if !o[b.Name] {
			extra = append(extra, b.Name)
		}
	}
	for _, b := range old.Benchmarks {
		if !n[b.Name] {
			missing = append(missing, b.Name)
		}
	}
	sort.Strings(missing)
	sort.Strings(extra)
	return missing, extra
}

// diffSnapshots writes one row per (benchmark, metric) with the relative
// change, matching benchmarks by name.
func diffSnapshots(w *os.File, old, cur Snapshot) {
	byName := make(map[string]*Bench, len(old.Benchmarks))
	for i := range old.Benchmarks {
		byName[old.Benchmarks[i].Name] = &old.Benchmarks[i]
	}
	fmt.Fprintf(w, "%-34s %-28s %14s %14s %9s\n", "benchmark", "metric", "old", "new", "delta")
	seen := make(map[string]bool, len(cur.Benchmarks))
	for i := range cur.Benchmarks {
		nb := &cur.Benchmarks[i]
		seen[nb.Name] = true
		ob := byName[nb.Name]
		if ob == nil {
			fmt.Fprintf(w, "%-34s %-28s %14s %14s %9s\n", nb.Name, "ns/op", "-", fmtNum(nb.NsPerOp), "new")
			continue
		}
		name := nb.Name
		for _, m := range metricRows(ob, nb) {
			fmt.Fprintf(w, "%-34s %-28s %14s %14s %9s\n", name, m.unit, fmtNum(m.old), fmtNum(m.cur), delta(m.old, m.cur))
			name = "" // print the benchmark name once
		}
	}
	for _, ob := range old.Benchmarks {
		if !seen[ob.Name] {
			fmt.Fprintf(w, "%-34s %-28s %14s %14s %9s\n", ob.Name, "ns/op", fmtNum(ob.NsPerOp), "-", "removed")
		}
	}
}

type metricRow struct {
	unit     string
	old, cur float64
}

// metricRows pairs up every metric the two results share (ns/op, -benchmem
// columns, and custom b.ReportMetric units), in a stable order.
func metricRows(ob, nb *Bench) []metricRow {
	rows := []metricRow{{"ns/op", ob.NsPerOp, nb.NsPerOp}}
	if ob.BytesPerOp != 0 || nb.BytesPerOp != 0 {
		rows = append(rows, metricRow{"B/op", ob.BytesPerOp, nb.BytesPerOp})
	}
	if ob.AllocsPerOp != 0 || nb.AllocsPerOp != 0 {
		rows = append(rows, metricRow{"allocs/op", ob.AllocsPerOp, nb.AllocsPerOp})
	}
	units := make([]string, 0, len(nb.Extra))
	for u := range nb.Extra {
		units = append(units, u)
	}
	for u := range ob.Extra {
		if _, ok := nb.Extra[u]; !ok {
			units = append(units, u)
		}
	}
	sort.Strings(units)
	for _, u := range units {
		rows = append(rows, metricRow{u, ob.Extra[u], nb.Extra[u]})
	}
	return rows
}

func fmtNum(v float64) string {
	if v == float64(int64(v)) && v < 1e15 {
		return strconv.FormatInt(int64(v), 10)
	}
	return strconv.FormatFloat(v, 'g', 5, 64)
}

// delta formats the relative change, signed; shrinking is improvement for
// every metric this repo tracks.
func delta(old, cur float64) string {
	if old == 0 {
		return "n/a"
	}
	return fmt.Sprintf("%+.1f%%", (cur-old)/old*100)
}

// parseLine parses one `BenchmarkName-P  N  v unit  v unit ...` line.
func parseLine(line string) (Bench, bool) {
	fields := strings.Fields(line)
	if len(fields) < 4 || !strings.HasPrefix(fields[0], "Benchmark") {
		return Bench{}, false
	}
	name := fields[0]
	b := Bench{Name: name}
	if i := strings.LastIndexByte(name, '-'); i > 0 {
		// The -P suffix is the run's GOMAXPROCS: record it as a "cores"
		// extra so trajectory entries for parallel benchmarks carry the
		// core budget the numbers were measured under.
		if p, err := strconv.ParseFloat(name[i+1:], 64); err == nil && p > 0 {
			b.Extra = map[string]float64{"cores": p}
		}
		b.Name = name[:i] // strip the -GOMAXPROCS suffix
	}
	iters, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return Bench{}, false
	}
	b.Iters = iters
	for i := 2; i+1 < len(fields); i += 2 {
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			return Bench{}, false
		}
		switch unit := fields[i+1]; unit {
		case "ns/op":
			b.NsPerOp = v
		case "B/op":
			b.BytesPerOp = v
		case "allocs/op":
			b.AllocsPerOp = v
		default:
			if b.Extra == nil {
				b.Extra = make(map[string]float64)
			}
			b.Extra[unit] = v
		}
	}
	return b, true
}
