// Demosnet is a scripted playground: it boots a DEMOS/MP cluster with
// publishing on the medium of your choice, runs a request/reply workload,
// injects the crashes you ask for, and streams the simulation's event trace
// so you can watch detection, replay, suppression, and recovery happen.
//
// Usage:
//
//	go run ./cmd/demosnet                              # default scenario
//	go run ./cmd/demosnet -medium ether -trace         # watch every event
//	go run ./cmd/demosnet -crash-node 1 -crash-at 2s
//	go run ./cmd/demosnet -crash-recorder -crash-at 3s
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"sort"
	"time"

	"publishing"
	"publishing/internal/metrics"
	"publishing/internal/simtime"
	"publishing/internal/trace"
)

func main() {
	var (
		medium    = flag.String("medium", "perfect", "perfect | ether | ackether | ring | star")
		nodes     = flag.Int("nodes", 3, "processing nodes")
		msgs      = flag.Int("msgs", 12, "messages the producer sends")
		crashProc = flag.Bool("crash-proc", true, "crash the worker process")
		crashNode = flag.Int("crash-node", -1, "crash a whole node instead")
		crashRec  = flag.Bool("crash-recorder", false, "crash the recorder too")
		crashAt   = flag.Duration("crash-at", 1200*time.Millisecond, "when to inject the crash (virtual)")
		showTrace = flag.Bool("trace", false, "stream the full event trace")
		seed      = flag.Uint64("seed", 1, "determinism seed")
		showMet   = flag.Bool("metrics", false, "print the unified metrics snapshot at the end")
		traceOut  = flag.String("trace-out", "", "write a Chrome trace-event JSON timeline to this file")
		flight    = flag.Int("flight", 0, "flight-recorder mode: keep only the most recent N trace events")
		monitorOn = flag.Bool("monitor", false, "attach the online invariant monitor; print violations live and its report at the end")
	)
	flag.Parse()

	cfg := publishing.DefaultConfig(*nodes)
	cfg.Medium = publishing.MediumKind(*medium)
	cfg.Seed = *seed
	cfg.FlightRecorder = *flight
	cfg.Monitor = *monitorOn
	c := publishing.New(cfg)
	if *traceOut != "" {
		// Timelines need the per-message detail events (replay records,
		// end-to-end acks) that are off by default.
		c.Trace().SetDetailed(true)
	}
	switch {
	case *showTrace:
		c.Trace().SetSink(os.Stdout)
	case *traceOut != "":
		// The filter gates retention too; a timeline export needs every
		// event, so keep the console quiet instead of filtering.
	default:
		c.Trace().SetFilter(func(e trace.Event) bool {
			switch e.Kind {
			case trace.KindCrash, trace.KindDetect, trace.KindRecoveryStart,
				trace.KindRecoveryDone, trace.KindSuppress, trace.KindCheckpoint:
				return true
			}
			return false
		})
		c.Trace().SetSink(os.Stdout)
	}

	var received []string
	c.Registry().RegisterMachine("sink", func(args []byte) publishing.Machine {
		return sinkMachine{f: func(s string) { received = append(received, s) }}
	})
	c.Registry().RegisterMachine("worker", func(args []byte) publishing.Machine { return &workerMachine{} })
	c.Registry().RegisterProgram("producer", func(args []byte) publishing.Program {
		return func(ctx *publishing.PCtx) {
			wl, _ := ctx.ServiceLink("worker")
			for i := 1; i <= *msgs; i++ {
				_ = ctx.Send(wl, []byte{byte(i)}, publishing.NoLink)
				ctx.Compute(200 * publishing.Millisecond)
			}
		}
	})

	snk, err := c.Spawn(publishing.NodeID(*nodes-1), publishing.ProcSpec{Name: "sink", Recoverable: true})
	die(err)
	c.SetService("sink", snk)
	worker, err := c.Spawn(1%publishing.NodeID(*nodes), publishing.ProcSpec{Name: "worker", Recoverable: true})
	die(err)
	c.SetService("worker", worker)
	_, err = c.Spawn(0, publishing.ProcSpec{Name: "producer", Recoverable: true})
	die(err)

	at := simtime.Time(crashAt.Nanoseconds())
	c.Scheduler().At(at, func() {
		switch {
		case *crashNode >= 0:
			fmt.Printf("--- injecting processor crash on node %d ---\n", *crashNode)
			c.CrashNode(publishing.NodeID(*crashNode))
		case *crashProc:
			fmt.Println("--- injecting process fault into the worker ---")
			c.CrashProcess(worker)
		}
		if *crashRec {
			fmt.Println("--- crashing the recorder ---")
			c.CrashRecorder()
			c.Scheduler().After(3*publishing.Second, func() {
				fmt.Println("--- restarting the recorder ---")
				_ = c.RestartRecorder()
			})
		}
	})

	c.Run(3 * publishing.Minute)

	fmt.Printf("\nsink received %d/%d messages: %v\n", len(received), *msgs, received)
	if *monitorOn {
		fmt.Println()
		die(c.Monitor().WriteReport(os.Stdout))
	}
	// Every subsystem reports through the same registry, so the closing
	// summary is one printer over one snapshot instead of per-type printfs.
	snap := c.Metrics().Snapshot()
	printSummary(os.Stdout, snap)
	if *showMet {
		fmt.Println()
		if err := snap.WriteText(os.Stdout); err != nil {
			die(err)
		}
	}
	if *traceOut != "" {
		f, err := os.Create(*traceOut)
		die(err)
		err = c.Trace().WriteChrome(f)
		if cerr := f.Close(); err == nil {
			err = cerr
		}
		die(err)
		fmt.Printf("wrote Chrome trace timeline to %s (open in Perfetto / chrome://tracing)\n", *traceOut)
	}
}

// printSummary prints one line per (subsystem, node) group, skipping
// zero-valued samples so the common case stays readable. Snapshot order is
// (subsystem, name, node), so samples are bucketed per group first.
func printSummary(w io.Writer, snap metrics.Snapshot) {
	type group struct{ sub, node string }
	var order []group
	lines := map[group]string{}
	for _, s := range snap.Samples {
		if s.Value == 0 {
			continue
		}
		g := group{s.Subsystem, ""}
		if s.Node >= 0 {
			g.node = fmt.Sprintf("[%d]", s.Node)
		}
		if _, ok := lines[g]; !ok {
			order = append(order, g)
		}
		if s.Kind == metrics.KindHistogram.String() {
			lines[g] += fmt.Sprintf(" %s{n=%d avg=%d}", s.Name, s.Value, s.Sum/s.Value)
		} else {
			lines[g] += fmt.Sprintf(" %s=%d", s.Name, s.Value)
		}
	}
	sort.Slice(order, func(i, j int) bool {
		if order[i].sub != order[j].sub {
			return order[i].sub < order[j].sub
		}
		return order[i].node < order[j].node
	})
	for _, g := range order {
		fmt.Fprintf(w, "%s%s:%s\n", g.sub, g.node, lines[g])
	}
}

type workerMachine struct {
	st struct {
		Out    publishing.LinkID
		HasOut bool
		N      int
	}
}

func (w *workerMachine) Init(ctx *publishing.PCtx) {
	if l, err := ctx.ServiceLink("sink"); err == nil {
		w.st.Out, w.st.HasOut = l, true
	}
}
func (w *workerMachine) Handle(ctx *publishing.PCtx, m publishing.Msg) {
	w.st.N++
	if w.st.HasOut {
		_ = ctx.Send(w.st.Out, []byte(fmt.Sprintf("#%d(val=%d)", w.st.N, m.Body[0])), publishing.NoLink)
	}
}
func (w *workerMachine) Snapshot() ([]byte, error) {
	return []byte{byte(w.st.N), bo(w.st.HasOut), byte(w.st.Out)}, nil
}
func (w *workerMachine) Restore(b []byte) error {
	w.st.N, w.st.HasOut, w.st.Out = int(b[0]), b[1] == 1, publishing.LinkID(b[2])
	return nil
}

func bo(b bool) byte {
	if b {
		return 1
	}
	return 0
}

type sinkMachine struct{ f func(string) }

func (s sinkMachine) Init(ctx *publishing.PCtx)                     {}
func (s sinkMachine) Handle(ctx *publishing.PCtx, m publishing.Msg) { s.f(string(m.Body)) }
func (s sinkMachine) Snapshot() ([]byte, error)                     { return nil, nil }
func (s sinkMachine) Restore(b []byte) error                        { return nil }

func die(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}
