// Starhub runs the paper's experimental star configuration (Fig 4.1a) over
// real TCP: the recording node is the hub; every frame a node sends travels
// to the hub, is durably stored in a file-backed stable store, and only
// then relayed to its destination — "any messages received incorrectly by
// the recorder are not passed on" (§4.1). This is publish-before-use by
// construction, on a real network stack.
//
// Modes:
//
//	go run ./cmd/starhub -demo                 # hub + 3 nodes in-process on loopback
//	go run ./cmd/starhub -listen :7440 -db pub.db
//	go run ./cmd/starhub -connect host:7440 -node 1 -send 2:hello
//
// The wire protocol is the repository's real frame encoding (length-
// prefixed frame.Encode bytes), so anything recorded here is bit-compatible
// with the simulation's wire format.
package main

import (
	"encoding/binary"
	"flag"
	"fmt"
	"io"
	"net"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"time"

	"publishing/internal/frame"
	"publishing/internal/stablestore"
)

func main() {
	var (
		demo    = flag.Bool("demo", false, "run hub and three nodes in-process on loopback")
		listen  = flag.String("listen", "", "run a hub on this address")
		db      = flag.String("db", "", "stable-store file (default: temp file)")
		connect = flag.String("connect", "", "run a node agent against this hub")
		nodeID  = flag.Int("node", 1, "this node's id (node agent mode)")
		send    = flag.String("send", "", "dst:payload message to send (node agent mode)")
	)
	flag.Parse()

	switch {
	case *demo:
		runDemo()
	case *listen != "":
		path := *db
		if path == "" {
			path = filepath.Join(os.TempDir(), "starhub-publish.db")
		}
		hub, err := newHub(*listen, path)
		die(err)
		fmt.Printf("hub listening on %s, publishing to %s\n", hub.ln.Addr(), path)
		hub.serve()
	case *connect != "":
		agent, err := dialHub(*connect, frame.NodeID(*nodeID))
		die(err)
		if *send != "" {
			dst, payload, ok := strings.Cut(*send, ":")
			if !ok {
				die(fmt.Errorf("-send wants dst:payload"))
			}
			var d int
			fmt.Sscanf(dst, "%d", &d)
			die(agent.send(frame.NodeID(d), []byte(payload)))
		}
		agent.pump(func(f *frame.Frame) {
			fmt.Printf("node %d received: %s %q\n", *nodeID, f, f.Body)
		})
	default:
		flag.Usage()
	}
}

// hub is the recording star hub.
type hub struct {
	ln    net.Listener
	store stablestore.Store

	mu    sync.Mutex
	conns map[frame.NodeID]net.Conn
	seq   map[string]uint64
}

func newHub(addr, dbPath string) (*hub, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	store, err := stablestore.Open(dbPath)
	if err != nil {
		ln.Close()
		return nil, err
	}
	return &hub{ln: ln, store: store, conns: make(map[frame.NodeID]net.Conn), seq: make(map[string]uint64)}, nil
}

func (h *hub) serve() {
	for {
		c, err := h.ln.Accept()
		if err != nil {
			return
		}
		go h.handle(c)
	}
}

// handle speaks to one spoke: first frame announces the node id (Src).
func (h *hub) handle(c net.Conn) {
	defer c.Close()
	var who frame.NodeID = -1
	for {
		f, err := readFrame(c)
		if err != nil {
			if who >= 0 {
				h.mu.Lock()
				if h.conns[who] == c {
					delete(h.conns, who)
				}
				h.mu.Unlock()
			}
			return
		}
		if who < 0 {
			who = f.Src
			h.mu.Lock()
			h.conns[who] = c
			h.mu.Unlock()
		}
		if f.Type == frame.Token {
			continue // keepalive
		}
		// Publish before use: store durably, then relay.
		key := "msg:" + f.To.String()
		h.mu.Lock()
		h.seq[key]++
		seq := h.seq[key]
		h.mu.Unlock()
		if _, err := h.store.Append(stablestore.Record{
			Kind: stablestore.KindMessage, Key: key, Seq: seq, Data: f.Encode(),
		}); err != nil {
			fmt.Fprintf(os.Stderr, "hub: store failed, frame NOT relayed: %v\n", err)
			continue
		}
		if err := h.store.Flush(); err != nil {
			fmt.Fprintf(os.Stderr, "hub: flush failed, frame NOT relayed: %v\n", err)
			continue
		}
		h.relay(f)
	}
}

func (h *hub) relay(f *frame.Frame) {
	h.mu.Lock()
	defer h.mu.Unlock()
	if f.Dst == frame.Broadcast {
		for id, c := range h.conns {
			if id != f.Src {
				_ = writeFrame(c, f)
			}
		}
		return
	}
	if c, ok := h.conns[f.Dst]; ok {
		_ = writeFrame(c, f)
	}
}

// agent is a spoke node.
type agent struct {
	id   frame.NodeID
	conn net.Conn
	seq  uint64
}

func dialHub(addr string, id frame.NodeID) (*agent, error) {
	c, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, err
	}
	a := &agent{id: id, conn: c}
	// Announce ourselves.
	return a, writeFrame(c, &frame.Frame{Type: frame.Token, Src: id, Dst: frame.Broadcast})
}

func (a *agent) send(dst frame.NodeID, body []byte) error {
	a.seq++
	return writeFrame(a.conn, &frame.Frame{
		Type: frame.Guaranteed,
		Src:  a.id, Dst: dst,
		ID:   frame.MsgID{Sender: frame.ProcID{Node: a.id, Local: 1}, Seq: a.seq},
		From: frame.ProcID{Node: a.id, Local: 1},
		To:   frame.ProcID{Node: dst, Local: 1},
		Body: body,
	})
}

func (a *agent) pump(onFrame func(*frame.Frame)) {
	for {
		f, err := readFrame(a.conn)
		if err != nil {
			return
		}
		onFrame(f)
	}
}

// Wire framing: 4-byte big-endian length + frame.Encode bytes. A frame that
// fails its checksum on decode is dropped, exactly like the link layer.
func writeFrame(w io.Writer, f *frame.Frame) error {
	buf := make([]byte, 4, 4+f.WireLen())
	buf = f.AppendEncode(buf)
	binary.BigEndian.PutUint32(buf[:4], uint32(len(buf)-4))
	_, err := w.Write(buf)
	return err
}

func readFrame(r io.Reader) (*frame.Frame, error) {
	var hdr [4]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, err
	}
	n := binary.BigEndian.Uint32(hdr[:])
	if n > 1<<20 {
		return nil, fmt.Errorf("oversized frame (%d bytes)", n)
	}
	buf := make([]byte, n)
	if _, err := io.ReadFull(r, buf); err != nil {
		return nil, err
	}
	return frame.Decode(buf)
}

// runDemo exercises the whole thing in one process.
func runDemo() {
	path := filepath.Join(os.TempDir(), fmt.Sprintf("starhub-demo-%d.db", os.Getpid()))
	defer os.Remove(path)
	h, err := newHub("127.0.0.1:0", path)
	die(err)
	go h.serve()
	addr := h.ln.Addr().String()
	fmt.Printf("hub on %s, stable store %s\n", addr, path)

	var wg sync.WaitGroup
	recv := make(chan string, 16)
	agents := make(map[frame.NodeID]*agent)
	for _, id := range []frame.NodeID{1, 2, 3} {
		a, err := dialHub(addr, id)
		die(err)
		agents[id] = a
		wg.Add(1)
		go func(a *agent) {
			defer wg.Done()
			a.pump(func(f *frame.Frame) {
				recv <- fmt.Sprintf("node %d got %q from %s", a.id, f.Body, f.From)
			})
		}(a)
	}
	time.Sleep(100 * time.Millisecond) // let every spoke announce itself
	die(agents[1].send(2, []byte("hello node 2")))
	die(agents[1].send(3, []byte("hello node 3")))
	die(agents[1].send(2, []byte("second message")))

	for i := 0; i < 3; i++ {
		select {
		case s := <-recv:
			fmt.Println(" ", s)
		case <-time.After(2 * time.Second):
			fmt.Println("timeout waiting for deliveries")
			os.Exit(1)
		}
	}

	// Prove the published log survives: reopen the store cold and read the
	// streams back — the recorder-crash rebuild of §4.5, on a real file.
	die(h.store.Close())
	reopened, err := stablestore.Open(path)
	die(err)
	defer reopened.Close()
	recs, err := reopened.ReadAll()
	die(err)
	fmt.Printf("\nreopened stable store holds %d published frames:\n", len(recs))
	for _, rec := range recs {
		f, err := frame.Decode(rec.Data)
		if err != nil {
			continue
		}
		fmt.Printf("  %-12s #%d %s %q\n", rec.Key, rec.Seq, f.From, f.Body)
	}
	if len(recs) == 3 {
		fmt.Println("\npublish-before-use over real TCP, with a durable, reloadable log ✓")
	} else {
		fmt.Println("\nUNEXPECTED RESULT")
	}
}

func die(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}
