package main

import (
	"path/filepath"
	"testing"
	"time"

	"publishing/internal/frame"
	"publishing/internal/stablestore"
)

// End-to-end over real TCP on loopback: spokes connect, the hub stores and
// relays, and the published log survives a cold reopen.
func TestHubStoreAndRelay(t *testing.T) {
	path := filepath.Join(t.TempDir(), "publish.db")
	h, err := newHub("127.0.0.1:0", path)
	if err != nil {
		t.Fatal(err)
	}
	go h.serve()
	addr := h.ln.Addr().String()

	recv := make(chan *frame.Frame, 8)
	a1, err := dialHub(addr, 1)
	if err != nil {
		t.Fatal(err)
	}
	a2, err := dialHub(addr, 2)
	if err != nil {
		t.Fatal(err)
	}
	go a2.pump(func(f *frame.Frame) { recv <- f })
	go a1.pump(func(f *frame.Frame) { t.Errorf("node 1 received unexpected %v", f) })

	time.Sleep(100 * time.Millisecond) // let announcements land
	if err := a1.send(2, []byte("over real tcp")); err != nil {
		t.Fatal(err)
	}

	select {
	case f := <-recv:
		if string(f.Body) != "over real tcp" || f.From.Node != 1 {
			t.Fatalf("wrong frame: %v %q", f, f.Body)
		}
	case <-time.After(3 * time.Second):
		t.Fatal("relay timed out")
	}

	// Durability: close and reopen the store cold.
	if err := h.store.Close(); err != nil {
		t.Fatal(err)
	}
	h.ln.Close()
	s, err := stablestore.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	recs, err := s.ReadKey("msg:p2.1")
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 1 {
		t.Fatalf("stored %d frames, want 1", len(recs))
	}
	f, err := frame.Decode(recs[0].Data)
	if err != nil {
		t.Fatal(err)
	}
	if string(f.Body) != "over real tcp" {
		t.Fatalf("stored frame corrupt: %q", f.Body)
	}
}

// A frame addressed to a disconnected node is stored but not relayed; a
// corrupted frame on the wire is rejected by the decoder before the hub
// ever stores it.
func TestHubEdgeCases(t *testing.T) {
	path := filepath.Join(t.TempDir(), "publish.db")
	h, err := newHub("127.0.0.1:0", path)
	if err != nil {
		t.Fatal(err)
	}
	defer h.store.Close()
	go h.serve()
	addr := h.ln.Addr().String()

	a1, err := dialHub(addr, 1)
	if err != nil {
		t.Fatal(err)
	}
	time.Sleep(50 * time.Millisecond)
	// Destination 9 never connected: the hub stores the frame anyway
	// (publish-before-use means the log is the source of truth).
	if err := a1.send(9, []byte("to nobody")); err != nil {
		t.Fatal(err)
	}
	// A corrupt frame: valid length prefix, garbage payload. The hub's
	// readFrame must reject it and drop the connection.
	if _, err := a1.conn.Write([]byte{0, 0, 0, 4, 'j', 'u', 'n', 'k'}); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(3 * time.Second)
	for time.Now().Before(deadline) {
		recs, err := h.store.ReadKey("msg:p9.1")
		if err == nil && len(recs) == 1 {
			return // stored exactly the good frame, not the junk
		}
		time.Sleep(20 * time.Millisecond)
	}
	t.Fatal("frame to absent node was not stored")
}
