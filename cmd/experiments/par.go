package main

// The -par mode: run the big-cluster workload scenario (the same shape
// BenchmarkSimThroughput drives, see bench_sim_test.go) once on the serial
// engine and once on the conservative parallel engine, print the throughput
// of each with the engine's window statistics, and verify the two runs'
// metrics + recorder-database fingerprints are byte-identical — the
// determinism demo EXPERIMENTS.md walks through.

import (
	"bytes"
	"crypto/sha256"
	"encoding/binary"
	"fmt"
	"sync/atomic"
	"time"

	"publishing"
	"publishing/internal/simtime"
	"publishing/internal/workload"
)

// parScenario is one built workload scenario awaiting Run.
type parScenario struct {
	c         *publishing.Cluster
	horizon   simtime.Time
	sent      int
	delivered *int64
}

// buildParScenario assembles the floodsub-style open-loop workload on an
// n-node cluster: every arrival is a guaranteed fan-out publication through
// the full stack. Mirrors the benchmark scenario in bench_sim_test.go.
func buildParScenario(nodes int, seed uint64, par int) *parScenario {
	hot := nodes / 16
	if hot < 1 {
		hot = 1
	}
	// Same scaling rules as the benchmark: the aggregate arrival rate tops
	// out at the 256-node figure so the channel stays below saturation.
	rate := 10 * float64(nodes)
	if nodes > 256 {
		rate = 10 * 256
	}
	wcfg := workload.Config{
		Seed:     seed,
		Procs:    nodes,
		Rate:     rate,
		Hotspot:  0.2,
		HotProcs: hot,
		MsgBytes: 96,
		FanOut:   2,
	}
	events := workload.Msgs(wcfg, 8*nodes)
	scheds := make([][]workload.MsgEvent, nodes)
	horizon := simtime.Time(0)
	sent := 0
	for _, ev := range events {
		scheds[ev.Pub] = append(scheds[ev.Pub], ev)
		sent += len(ev.Subs)
		if ev.At > horizon {
			horizon = ev.At
		}
	}

	cfg := publishing.DefaultConfig(nodes)
	cfg.Seed = seed
	cfg.LAN.BitsPerSecond = 100_000_000
	cfg.LAN.InterframeGap = 50 * simtime.Microsecond
	if nodes > 256 {
		// Past 256 nodes per-node background traffic alone saturates the
		// gap-bound 100 Mb/s channel; model a switched 1 Gb/s fabric as the
		// benchmark does (the utilization check in EXPERIMENTS.md).
		cfg.LAN.BitsPerSecond = 1_000_000_000
		cfg.LAN.InterframeGap = 5 * simtime.Microsecond
	}
	cfg.ParWorkers = par
	c := publishing.New(cfg)
	c.Trace().Enable(false)

	delivered := new(int64)
	c.Registry().RegisterMachine("sink", func([]byte) publishing.Machine {
		return &parSink{delivered: delivered}
	})
	sinkNames := make([]string, nodes)
	for i := range sinkNames {
		sinkNames[i] = fmt.Sprintf("sink%d", i)
	}
	body := make([]byte, wcfg.MsgBytes)
	c.Registry().RegisterProgram("pub", func(args []byte) publishing.Program {
		sched := scheds[binary.BigEndian.Uint32(args)]
		return func(ctx *publishing.PCtx) {
			links := make([]publishing.LinkID, nodes)
			have := make([]bool, nodes)
			last := simtime.Time(0)
			for _, ev := range sched {
				if d := ev.At - last; d > 0 {
					ctx.Compute(d)
				}
				last = ev.At
				for _, sub := range ev.Subs {
					if !have[sub] {
						l, err := ctx.ServiceLink(sinkNames[sub])
						if err != nil {
							panic(err)
						}
						links[sub], have[sub] = l, true
					}
					_ = ctx.Send(links[sub], body, publishing.NoLink)
				}
			}
		}
	})
	for i := 0; i < nodes; i++ {
		pid, err := c.Spawn(publishing.NodeID(i), publishing.ProcSpec{Name: "sink", Recoverable: true})
		if err != nil {
			panic(err)
		}
		c.SetService(sinkNames[i], pid)
	}
	for i := 0; i < nodes; i++ {
		var args [4]byte
		binary.BigEndian.PutUint32(args[:], uint32(i))
		if _, err := c.Spawn(publishing.NodeID(i), publishing.ProcSpec{Name: "pub", Args: args[:], Recoverable: true}); err != nil {
			panic(err)
		}
	}
	return &parScenario{c: c, horizon: horizon, sent: sent, delivered: delivered}
}

type parSink struct{ delivered *int64 }

func (s *parSink) Init(*publishing.PCtx) {}
func (s *parSink) Handle(_ *publishing.PCtx, m publishing.Msg) {
	atomic.AddInt64(s.delivered, 1)
}
func (s *parSink) Snapshot() ([]byte, error) { return nil, nil }
func (s *parSink) Restore([]byte) error      { return nil }

// parFingerprint reduces a finished run to its determinism oracle: the full
// metrics snapshot plus the recorder database, hashed.
func parFingerprint(c *publishing.Cluster) ([32]byte, error) {
	var buf bytes.Buffer
	if err := c.Metrics().Snapshot().WriteText(&buf); err != nil {
		return [32]byte{}, err
	}
	recs, err := c.Store().ReadAll()
	if err != nil {
		return [32]byte{}, err
	}
	for _, r := range recs {
		fmt.Fprintf(&buf, "%d %q %d %x\n", r.Kind, r.Key, r.Seq, r.Data)
	}
	return sha256.Sum256(buf.Bytes()), nil
}

// runPar executes the scenario serially and with par in-cluster workers,
// reporting throughput, window statistics, and fingerprint equality.
func runPar(nodes int, par int, seed uint64) {
	section(fmt.Sprintf("conservative parallel simulation — %d nodes, %d workers", nodes, par))
	type leg struct {
		name    string
		workers int
	}
	var sums [2][32]byte
	for i, l := range []leg{{"serial", 0}, {"parallel", par}} {
		s := buildParScenario(nodes, seed, l.workers)
		start := time.Now()
		s.c.Run(s.horizon + 2*simtime.Second)
		wall := time.Since(start)
		if got := atomic.LoadInt64(s.delivered); got != int64(s.sent) {
			fmt.Printf("  %s: delivered %d of %d messages — scenario broken\n", l.name, got, s.sent)
			return
		}
		sum, err := parFingerprint(s.c)
		if err != nil {
			fmt.Printf("  %s: fingerprint failed: %v\n", l.name, err)
			return
		}
		sums[i] = sum
		fired := s.c.Scheduler().Fired()
		fmt.Printf("  %-8s %9d events in %8.2fs wall  →  %9.0f events/s   fp %x…\n",
			l.name, fired, wall.Seconds(), float64(fired)/wall.Seconds(), sum[:6])
		if eng := s.c.Engine(); eng != nil {
			st := eng.Stats()
			winEvents := st.InlineEvents + st.ParEvents
			fmt.Printf("           windows: %d solo/inline (%d events), %d multi-LP (%d events, %.1f LPs avg), %d serial steps\n",
				st.InlineWindows, st.InlineEvents, st.ParWindows, st.ParEvents,
				float64(st.ParLPs)/max1(float64(st.ParWindows)), st.SerialSteps)
			fmt.Printf("           window occupancy: %.1f%% of events ran inside windows\n",
				100*float64(winEvents)/max1(float64(winEvents+st.SerialSteps)))
		}
	}
	if sums[0] == sums[1] {
		fmt.Println("  byte-identical: yes — serial and parallel runs produced the same metrics and recorder database")
	} else {
		fmt.Println("  byte-identical: NO — determinism violation, file a bug")
	}
}

func max1(v float64) float64 {
	if v < 1 {
		return 1
	}
	return v
}
