package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"time"

	"publishing"
	"publishing/internal/simtime"
	"publishing/internal/sweep"
)

// sweepSink is the null destination machine of the sweep workload.
type sweepSink struct{}

func (sweepSink) Init(ctx *publishing.PCtx)                     {}
func (sweepSink) Handle(ctx *publishing.PCtx, m publishing.Msg) {}
func (sweepSink) Snapshot() ([]byte, error)                     { return nil, nil }
func (sweepSink) Restore(b []byte) error                        { return nil }

// sweepRun executes one (medium, seed) cluster simulation and serializes
// its full event trace plus end-of-run counters — the byte stream whose
// equality across serial and parallel execution proves determinism.
func sweepRun(t sweep.Task) ([]byte, error) {
	var trace bytes.Buffer
	cfg := publishing.DefaultConfig(3)
	cfg.Seed = t.Seed
	cfg.Medium = publishing.MediumKind(t.Config)
	cfg.TraceWriter = &trace
	c := publishing.New(cfg)
	c.Registry().RegisterMachine("sink", func(args []byte) publishing.Machine { return sweepSink{} })
	c.Registry().RegisterProgram("gen", func(args []byte) publishing.Program {
		return func(ctx *publishing.PCtx) {
			l, _ := ctx.ServiceLink("sink")
			for j := 0; j < 100; j++ {
				_ = ctx.Send(l, []byte{byte(j)}, publishing.NoLink)
				ctx.Compute(5 * simtime.Millisecond)
			}
		}
	})
	sink, err := c.Spawn(1, publishing.ProcSpec{Name: "sink", Recoverable: true})
	if err != nil {
		return nil, err
	}
	c.SetService("sink", sink)
	if _, err := c.Spawn(0, publishing.ProcSpec{Name: "gen", Recoverable: true}); err != nil {
		return nil, err
	}
	c.Run(2 * simtime.Minute)
	fmt.Fprintf(&trace, "fired=%d now=%v\n", c.Scheduler().Fired(), c.Now())
	fmt.Fprintf(&trace, "recorder=%+v\n", *c.Recorder().Stats())
	fmt.Fprintf(&trace, "medium=%+v\n", *c.Medium().Stats())
	fmt.Fprintf(&trace, "store=%+v\n", c.Store().Stats())
	return trace.Bytes(), nil
}

// sweepEntry is one task's row in BENCH_sweep.json.
type sweepEntry struct {
	Config     string  `json:"config"`
	Seed       uint64  `json:"seed"`
	Digest     string  `json:"digest"`
	OutputLen  int     `json:"output_len"`
	SerialSec  float64 `json:"serial_sec"`
	ParallelOK bool    `json:"parallel_identical"`
}

// sweepFile is the BENCH_sweep.json trajectory format.
type sweepFile struct {
	Workers     int          `json:"workers"`
	Tasks       int          `json:"tasks"`
	SerialSec   float64      `json:"serial_sec"`
	ParallelSec float64      `json:"parallel_sec"`
	Speedup     float64      `json:"speedup"`
	Verified    bool         `json:"verified_bit_identical"`
	Entries     []sweepEntry `json:"entries"`
}

// runSweep fans the (medium, seed) grid across the worker pool, checks the
// parallel outputs against a serial reference run, and writes the
// trajectory file. An empty out runs the determinism check only (the
// `make check` verification mode). workers <= 0 means one per available
// CPU (runtime.GOMAXPROCS(0)); note that on a single-CPU machine the
// "parallel" run degenerates to serial plus goroutine overhead, so the
// recorded speedup can dip below 1.0 without indicating a bug.
func runSweep(out string, workers int) {
	section("parallel deterministic sweep (internal/sweep)")
	var tasks []sweep.Task
	for _, medium := range []string{"perfect", "ether", "ring", "star"} {
		for seed := uint64(1); seed <= 4; seed++ {
			tasks = append(tasks, sweep.Task{Config: medium, Seed: seed})
		}
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	fmt.Printf("  %d tasks (4 media x 4 seeds), %d workers\n", len(tasks), workers)

	t0 := time.Now()
	serial := sweep.RunSerial(tasks, sweepRun)
	serialSec := time.Since(t0).Seconds()
	t1 := time.Now()
	parallel := sweep.Run(tasks, workers, sweepRun)
	parallelSec := time.Since(t1).Seconds()

	verr := sweep.Verify(serial, parallel)
	file := sweepFile{
		Workers:     workers,
		Tasks:       len(tasks),
		SerialSec:   round3(serialSec),
		ParallelSec: round3(parallelSec),
		Speedup:     round3(serialSec / parallelSec),
		Verified:    verr == nil,
	}
	for i, r := range serial {
		if r.Err != nil {
			fmt.Fprintf(os.Stderr, "sweep: task %+v: %v\n", r.Task, r.Err)
			os.Exit(1)
		}
		file.Entries = append(file.Entries, sweepEntry{
			Config:     r.Task.Config,
			Seed:       r.Task.Seed,
			Digest:     r.Digest,
			OutputLen:  len(r.Output),
			SerialSec:  round3(r.Elapsed.Seconds()),
			ParallelOK: bytes.Equal(r.Output, parallel[i].Output),
		})
	}
	if verr != nil {
		fmt.Fprintf(os.Stderr, "sweep: DETERMINISM VIOLATION: %v\n", verr)
		os.Exit(1)
	}
	fmt.Printf("  serial %.2fs, parallel %.2fs (%.1fx); all %d outputs bit-identical\n",
		serialSec, parallelSec, serialSec/parallelSec, len(tasks))
	if out == "" {
		return
	}

	data, err := json.MarshalIndent(&file, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, "sweep:", err)
		os.Exit(1)
	}
	data = append(data, '\n')
	if err := os.WriteFile(out, data, 0o644); err != nil {
		fmt.Fprintln(os.Stderr, "sweep:", err)
		os.Exit(1)
	}
	fmt.Printf("  trajectory written to %s\n", out)
}

func round3(v float64) float64 { return float64(int64(v*1000+0.5)) / 1000 }
