// The observe experiment is the observability counterpart of the paper runs:
// it drives a crash-and-recover workload and exports what the new
// instrumentation sees — the unified metrics snapshot and the causal
// per-message timeline — instead of a paper-vs-measured table.
package main

import (
	"fmt"
	"os"
	"strings"
	"time"

	"publishing"
	"publishing/internal/monitor"
	"publishing/internal/simtime"
	"publishing/internal/stablestore"
	"publishing/internal/trace"
)

// observeOpts carries the surfacing flags from main.
type observeOpts struct {
	metricsOut string // "" = skip; "-" = stdout
	traceOut   string // Chrome trace-event JSON file
	flight     int    // flight-recorder bound on the trace ring
	seed       uint64
	store      string // stable-store backend: "paged" (default) or "segment"
	explain    string // message id to post-mortem after the run ("" = off)
}

// runObserve boots a 3-node published cluster, crashes the worker's node
// mid-stream, lets recovery replay it, and then exports the metrics
// snapshot and trace timeline per opts. With explain set it instead becomes
// a causal post-mortem: the run carries the online monitor, and afterwards
// the named message's full timeline is reconstructed from the trace events
// and cross-referenced against the recorder's database (with -trace-out, the
// Chrome export narrows to just that message's events).
func runObserve(o observeOpts) {
	section("observe — crash-and-recover run with metrics + timeline export")

	cfg := publishing.DefaultConfig(3)
	cfg.Medium = publishing.MediumEther
	cfg.Seed = o.seed
	cfg.FlightRecorder = o.flight
	cfg.Store.Backend = stablestore.Backend(o.store)
	cfg.Monitor = o.explain != ""
	c := publishing.New(cfg)
	if o.traceOut != "" {
		c.Trace().SetDetailed(true)
	}

	const msgs = 10
	var got int
	c.Registry().RegisterMachine("sink", func(args []byte) publishing.Machine {
		return obSink{f: func() { got++ }}
	})
	c.Registry().RegisterMachine("worker", func(args []byte) publishing.Machine { return &obWorker{} })
	c.Registry().RegisterProgram("producer", func(args []byte) publishing.Program {
		return func(ctx *publishing.PCtx) {
			wl, _ := ctx.ServiceLink("worker")
			for i := 1; i <= msgs; i++ {
				_ = ctx.Send(wl, []byte{byte(i)}, publishing.NoLink)
				ctx.Compute(200 * publishing.Millisecond)
			}
		}
	})

	snk, err := c.Spawn(2, publishing.ProcSpec{Name: "sink", Recoverable: true})
	obDie(err)
	c.SetService("sink", snk)
	worker, err := c.Spawn(1, publishing.ProcSpec{Name: "worker", Recoverable: true})
	obDie(err)
	c.SetService("worker", worker)
	_, err = c.Spawn(0, publishing.ProcSpec{Name: "producer", Recoverable: true})
	obDie(err)

	c.Scheduler().At(simtime.Time((1200 * time.Millisecond).Nanoseconds()), func() {
		c.CrashNode(1)
	})
	c.Run(3 * publishing.Minute)

	s := c.Recorder().Stats()
	fmt.Printf("  crash of node 1 at 1.2s: sink received %d/%d, %d messages replayed, %d suppressed resends\n",
		got, msgs, s.MessagesReplayed, c.Kernel(1).Stats().Suppressed)

	if o.metricsOut != "" {
		w := os.Stdout
		if o.metricsOut != "-" {
			f, err := os.Create(o.metricsOut)
			obDie(err)
			defer f.Close()
			w = f
		}
		snap := c.Metrics().Snapshot()
		if strings.HasSuffix(o.metricsOut, ".json") {
			// The JSON form is what benchjson -metrics embeds.
			obDie(snap.WriteJSON(w))
		} else {
			obDie(snap.WriteText(w))
		}
		if o.metricsOut != "-" {
			fmt.Printf("  wrote metrics snapshot to %s\n", o.metricsOut)
		}
	}
	msgEvents := []trace.Event(nil)
	if o.explain != "" {
		fmt.Printf("\n  ---- causal post-mortem for %s ----\n", o.explain)
		msgEvents = monitor.Explain(os.Stdout, c.Trace().Events(), o.explain)
		explainStreams(c, o.explain)
		fmt.Println()
		obDie(c.Monitor().WriteReport(os.Stdout))
	}
	if o.traceOut != "" {
		f, err := os.Create(o.traceOut)
		obDie(err)
		if msgEvents != nil {
			// Single-message export: just this id's causal thread.
			err = trace.WriteChrome(f, msgEvents)
		} else {
			err = c.Trace().WriteChrome(f)
		}
		if cerr := f.Close(); err == nil {
			err = cerr
		}
		obDie(err)
		fmt.Printf("  wrote Chrome trace timeline to %s (open in Perfetto / chrome://tracing)\n", o.traceOut)
		if d := c.Trace().Dropped(); d > 0 {
			fmt.Printf("  flight recorder dropped %d older events\n", d)
		}
	}
}

// explainStreams cross-references one message id against the recorder's
// database: for every process stream that holds the message, print its
// replay-order position — the authoritative "would recovery re-deliver
// this?" answer, independent of what the trace retained.
func explainStreams(c *publishing.Cluster, msgID string) {
	found := false
	for _, n := range c.Nodes() {
		k := c.Kernel(n)
		if k == nil {
			continue
		}
		for _, p := range k.Procs() {
			stream := c.Recorder().StreamSummary(p)
			for i, id := range stream {
				if id.String() == msgID {
					fmt.Printf("recorder database: position %d/%d in %s's replay stream\n", i+1, len(stream), p)
					found = true
				}
			}
		}
	}
	if !found {
		fmt.Println("recorder database: not in any replay stream (acked past, checkpoint-trimmed, or never published)")
	}
}

type obWorker struct{ n int }

func (w *obWorker) Init(ctx *publishing.PCtx) {}
func (w *obWorker) Handle(ctx *publishing.PCtx, m publishing.Msg) {
	w.n++
	if l, err := ctx.ServiceLink("sink"); err == nil {
		_ = ctx.Send(l, []byte{byte(w.n)}, publishing.NoLink)
	}
}
func (w *obWorker) Snapshot() ([]byte, error) { return []byte{byte(w.n)}, nil }
func (w *obWorker) Restore(b []byte) error    { w.n = int(b[0]); return nil }

type obSink struct{ f func() }

func (s obSink) Init(ctx *publishing.PCtx)                     {}
func (s obSink) Handle(ctx *publishing.PCtx, m publishing.Msg) { s.f() }
func (s obSink) Snapshot() ([]byte, error)                     { return nil, nil }
func (s obSink) Restore(b []byte) error                        { return nil }

func obDie(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}
