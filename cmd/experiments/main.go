// Experiments regenerates the measurement half of the paper's evaluation —
// the numbers that came from the DEMOS/MP implementation itself (§5.2) —
// plus the §3.2.3 recovery-time worked example, printing paper-vs-measured
// for each. The measured values come from running the actual simulated
// system, not from tables.
//
// Usage:
//
//	go run ./cmd/experiments            # everything
//	go run ./cmd/experiments -fig57     # one experiment
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"runtime/pprof"

	"publishing/internal/checkpoint"
	"publishing/internal/measure"
	"publishing/internal/simtime"
)

func main() {
	var (
		fig31    = flag.Bool("fig31", false, "the §3.2.3 recovery-time bound example")
		fig57    = flag.Bool("fig57", false, "Fig 5.7 per-message overheads")
		fig58    = flag.Bool("fig58", false, "Fig 5.8 per-process overheads")
		publish  = flag.Bool("publishtime", false, "§5.2.2 publishing time per message")
		nodeopt  = flag.Bool("nodeopt", false, "§6.6.2 node-level recovery trade-off")
		doSweep  = flag.Bool("sweep", false, "parallel deterministic seed sweep; writes -sweepout")
		sweepOut = flag.String("sweepout", "BENCH_sweep.json", "trajectory file the sweep writes")
		workers  = flag.Int("workers", 0, "sweep: worker pool fanning whole independent per-seed clusters across cores (0 = one per CPU); contrast -par")
		par      = flag.Int("par", 0, "run the workload scenario on the conservative parallel engine with N in-cluster worker goroutines sharing ONE simulation (byte-identical to serial); contrast -workers")
		parNodes = flag.Int("parnodes", 256, "par: cluster size for the -par comparison run")
		storeEng = flag.String("store", "paged", "observe: stable-store backend (paged|segment)")
		doVerify = flag.Bool("verify", false, "run the sweep determinism check without writing a trajectory file")
		doChaos  = flag.Bool("chaos", false, "seeded fault-schedule sweep through the chaos harness")
		chaosN   = flag.Int("chaosn", 10, "chaos: number of consecutive seeds to sweep")
		chaosDir = flag.String("chaosdir", "", "chaos: dump failing-schedule artifacts under this directory (default: system temp)")
		observe  = flag.Bool("observe", false, "crash-and-recover run that exports metrics + timeline")
		explain  = flag.String("explain", "", "causal post-mortem for one message id on the observe run (implies -observe)")
		metOut   = flag.String("metrics", "", "observe: write the metrics snapshot here (\"-\" = stdout)")
		traceOut = flag.String("trace-out", "", "observe: write a Chrome trace-event JSON timeline here")
		flight   = flag.Int("flight", 0, "observe: keep only the most recent N trace events")
		seed     = flag.Uint64("seed", 1, "observe: determinism seed")
		cpuProf  = flag.String("cpuprofile", "", "write a CPU profile of the run here")
		memProf  = flag.String("memprofile", "", "write a heap profile at exit here")
	)
	flag.Parse()
	if *cpuProf != "" {
		f, err := os.Create(*cpuProf)
		if err != nil {
			fmt.Fprintln(os.Stderr, "experiments:", err)
			os.Exit(1)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintln(os.Stderr, "experiments:", err)
			os.Exit(1)
		}
		defer func() {
			pprof.StopCPUProfile()
			f.Close()
		}()
	}
	if *memProf != "" {
		defer func() {
			f, err := os.Create(*memProf)
			if err != nil {
				fmt.Fprintln(os.Stderr, "experiments:", err)
				return
			}
			defer f.Close()
			runtime.GC() // settle so the profile shows live objects, not garbage
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintln(os.Stderr, "experiments:", err)
			}
		}()
	}
	if *doChaos {
		// A tool run like the sweep; -seed picks the first schedule.
		dir := *chaosDir
		if dir == "" {
			dir = filepath.Join(os.TempDir(), "publishing-chaos")
		}
		runChaos(*seed, *chaosN, dir)
		return
	}
	if *observe || *explain != "" {
		// Like the sweep, a tool run outside the default paper set.
		runObserve(observeOpts{metricsOut: *metOut, traceOut: *traceOut, flight: *flight, seed: *seed, store: *storeEng, explain: *explain})
		return
	}
	if *par != 0 {
		// A tool run like the sweep: compare serial vs parallel execution of
		// one scenario. Guard against oversubscription — more in-cluster
		// workers than cores adds scheduling overhead and can only slow the
		// run down (never change its bytes), so clamp with a warning.
		w := *par
		if n := runtime.NumCPU(); w > n {
			fmt.Fprintf(os.Stderr, "experiments: -par %d oversubscribes %d CPUs; clamping to %d (determinism is unaffected by worker count)\n", w, n, n)
			w = n
		}
		if w < 2 {
			fmt.Fprintf(os.Stderr, "experiments: -par needs >= 2 workers for a parallel leg; running with 2 (host has %d CPUs)\n", runtime.NumCPU())
			w = 2
		}
		runPar(*parNodes, w, *seed)
		return
	}
	if *doSweep || *doVerify {
		// The sweep is a tool run, not one of the paper's experiments: it
		// never joins the default "run everything" set.
		out := *sweepOut
		if *doVerify {
			out = ""
		}
		runSweep(out, *workers)
		return
	}
	all := !(*fig31 || *fig57 || *fig58 || *publish || *nodeopt)

	if all || *fig31 {
		runFig31()
	}
	if all || *fig57 {
		runFig57()
	}
	if all || *fig58 {
		runFig58()
	}
	if all || *publish {
		runPublishTime()
	}
	if all || *nodeopt {
		runNodeOpt()
	}
}

func section(title string) {
	fmt.Printf("\n================ %s ================\n", title)
}

func runFig31() {
	section("Fig 3.1 / §3.2.3 — the recovery-time bound, worked example")
	lp := checkpoint.Fig31Params()
	fmt.Printf("  parameters: t_cfix=%v t_page=%v/page t_mfix=%v t_byte=%v/B f_cpu=%.1f\n",
		lp.CFix, lp.PerPage, lp.MFix, lp.PerByte, lp.CPUShare)

	pp := checkpoint.ProcParams{CheckpointPages: 4}
	fmt.Printf("  right after a 4-page checkpoint:      t_max = %-9v (paper: 140ms)\n", checkpoint.Bound(lp, pp))
	pp.ExecSince = 100 * simtime.Millisecond
	fmt.Printf("  at +200ms (100ms of execution):       t_max = %-9v (paper: 340ms)\n", checkpoint.Bound(lp, pp))
	pp.MsgsSince, pp.BytesSince = 1, 1024
	fmt.Printf("  right after a 1024-byte message:      t_max = %-9v (paper's figure lost; +t_mfix+l*t_byte = +12.24ms)\n",
		checkpoint.Bound(lp, pp))
	fmt.Printf("  Young's interval for Ts=10s, Tf=2min: T_c  = %v\n",
		checkpoint.YoungInterval(10*simtime.Second, 2*simtime.Minute))
}

func runFig57() {
	section("Fig 5.7 — per-message overheads (512 intranode self-sends, quiescent system)")
	rows := measure.Fig57Table()
	fmt.Printf("  %-9s %12s %12s\n", "", "realTime", "cpuTime")
	for _, r := range rows {
		tag := "without"
		if r.Publishing {
			tag = "with"
		}
		fmt.Printf("  %-9s %10.1fms %10.1fms\n", tag, r.RealMS, r.CPUMS)
	}
	fmt.Println("  paper's surviving anchors: real-cpu = 1ms without publishing, ~3ms with")
	fmt.Printf("  (measured: %.1fms and %.1fms); publishing adds ~26ms CPU per message\n",
		rows[0].RealMS-rows[0].CPUMS, rows[1].RealMS-rows[1].CPUMS)
	fmt.Printf("  (measured: %.1fms)\n", rows[1].CPUMS-rows[0].CPUMS)
}

func runFig58() {
	section("Fig 5.8 — per-process overheads (create+destroy a null process x25)")
	rows := measure.Fig58Table()
	fmt.Printf("  %-9s %12s %12s\n", "", "measured", "paper")
	fmt.Printf("  %-9s %10.0fms %10s\n", "without", rows[0].TotalCPUMS, "608ms")
	fmt.Printf("  %-9s %10.0fms %10s\n", "with", rows[1].TotalCPUMS, "5135ms")
	fmt.Printf("  blow-up ratio: %.1fx (paper: 8.4x) — \"directly attributable to the\n",
		rows[1].TotalCPUMS/rows[0].TotalCPUMS)
	fmt.Println("  servicing of network protocols\"")
}

func runPublishTime() {
	section("§5.2.2 — publishing time per message at the recorder")
	fmt.Printf("  %-14s %10s %10s\n", "implementation", "measured", "paper")
	paper := []string{"57ms", "12ms", "0.8ms"}
	for i, l := range measure.PublishTimeLevels() {
		fmt.Printf("  %-14s %8.2fms %10s\n", l.Mode, l.PerMS, paper[i])
	}
	fmt.Println("  \"by intercepting and publishing the messages directly at the media")
	fmt.Println("  layer ... the per message cost can be reduced to the desired 0.8ms\"")
}

func runNodeOpt() {
	section("§6.6.2 — recovering nodes rather than processes")
	rows := measure.Fig57Table()
	withPub, withoutPub := rows[1].CPUMS, rows[0].CPUMS
	fmt.Printf("  per-process publishing: every intranode message costs %.1fms CPU\n", withPub)
	fmt.Printf("  node-level recovery:    intranode messages stay local (%.1fms) but every\n", withoutPub)
	fmt.Printf("  extranode message needs a sync companion (x2 extranode traffic)\n\n")
	fmt.Printf("  %-28s %22s %22s\n", "intranode share of traffic", "per-proc CPU/msg", "node-level CPU/msg")
	for _, frac := range []float64{0.2, 0.5, 0.8, 0.9} {
		perProc := frac*withPub + (1-frac)*withPub
		nodeLevel := frac*withoutPub + (1-frac)*2*withPub
		fmt.Printf("  %26.0f%% %20.1fms %20.1fms\n", frac*100, perProc, nodeLevel)
	}
	fmt.Println("\n  \"not all sites may wish to recover single processes ... we can greatly")
	fmt.Println("  reduce the number of messages that the recorder needs to publish\"")
}
