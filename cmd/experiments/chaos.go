package main

import (
	"fmt"
	"os"
	"runtime"
	"sync"

	"publishing"
	"publishing/internal/chaos"
)

// chaosRow is one seed's verdict in the chaos sweep.
type chaosRow struct {
	seed   uint64
	sched  chaos.Schedule
	result chaos.Result
}

// runChaos sweeps n seeded fault schedules through the chaos harness and
// prints a verdict per seed — the CLI face of the TestChaosScheduleSweep
// table, for exploring seeds beyond the checked-in range. Failures print the
// invariant report, the post-mortem artifact directory (trace tail, online
// monitor report, metrics snapshot), and a minimized reproducer, and exit
// nonzero.
func runChaos(start uint64, n int, artifactDir string) {
	section("chaos harness sweep (internal/chaos)")
	lim := chaos.DefaultLimits()
	fmt.Printf("  seeds %d..%d, window %dms, <=%d faults each, %d workers\n",
		start, start+uint64(n)-1, lim.WindowMs, lim.MaxFaults, runtime.GOMAXPROCS(0))
	opt := chaos.Options{ArtifactDir: artifactDir}

	rows := make([]chaosRow, n)
	var wg sync.WaitGroup
	sem := make(chan struct{}, runtime.GOMAXPROCS(0))
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			seed := start + uint64(i)
			s := chaos.Generate(seed, lim)
			build := publishing.ChaosBuild(publishing.ChaosSeedVariant(seed))
			rows[i] = chaosRow{seed: seed, sched: s, result: chaos.Run(s, build, opt)}
		}(i)
	}
	wg.Wait()

	failed := 0
	for _, r := range rows {
		verdict := "ok"
		if !r.result.Passed {
			verdict = "FAIL"
			failed++
		}
		fmt.Printf("  seed %-4d %-4s %d faults  [%s]  %s\n",
			r.seed, verdict, len(r.sched.Faults), variantTag(publishing.ChaosSeedVariant(r.seed)), r.sched.Hex())
	}
	if failed == 0 {
		fmt.Printf("  all %d schedules passed every invariant\n", n)
		return
	}
	for _, r := range rows {
		if r.result.Passed {
			continue
		}
		fmt.Printf("\n  ---- seed %d ----\n%s", r.seed, r.result.Report)
		if r.result.Artifacts != "" {
			fmt.Printf("  artifacts (trace tail, monitor report, metrics) for schedule %s:\n    %s\n",
				r.sched.Hex(), r.result.Artifacts)
		}
		fmt.Printf("%s\n",
			chaos.Reproducer(r.sched, publishing.ChaosBuild(publishing.ChaosSeedVariant(r.seed)), chaos.Options{}))
	}
	fmt.Fprintf(os.Stderr, "chaos: %d/%d schedules failed\n", failed, len(rows))
	os.Exit(1)
}

// variantTag compacts one seed's ChaosSeedVariant into a sweep-row note:
// cluster width, LAN medium, and which option rotations are armed — the
// checkpoint-bound policy, the sharded replicated recorder trio, the
// segmented stable store.
func variantTag(opt publishing.ChaosOptions) string {
	n := opt.Nodes
	if n < 3 {
		n = 3
	}
	tag := fmt.Sprintf("n=%d", n)
	if opt.Medium != "" {
		tag += " " + string(opt.Medium)
	}
	if opt.Checkpoint {
		tag += " ckpt"
	}
	if opt.Recorders > 1 {
		tag += fmt.Sprintf(" shard%dx%d", opt.Recorders, opt.ShardSlots)
	}
	if opt.SegmentStore {
		tag += " seg"
	}
	return tag
}
