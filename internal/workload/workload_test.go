package workload

import (
	"math"
	"testing"

	"publishing/internal/queuing"
	"publishing/internal/simtime"
	"publishing/internal/stablestore"
)

// The generator is a pure function of its seed.
func TestWorkloadDeterministic(t *testing.T) {
	cfg := Config{Seed: 7, Procs: 8, Rate: 5000, Hotspot: 0.7, HotProcs: 2,
		FanOut: 2, CheckpointEvery: 100 * simtime.Millisecond}
	a, b := New(cfg), New(cfg)
	for i := 0; i < 20000; i++ {
		oa, ob := a.Next(), b.Next()
		if oa.At != ob.At || oa.Kind != ob.Kind || oa.Rec.Key != ob.Rec.Key ||
			oa.Rec.Seq != ob.Rec.Seq || oa.Key != ob.Key || oa.Through != ob.Through {
			t.Fatalf("op %d diverged: %+v vs %+v", i, oa, ob)
		}
	}
	if a.Stats() != b.Stats() {
		t.Fatalf("stats diverged: %+v vs %+v", a.Stats(), b.Stats())
	}
}

// The arrival process matches the open queuing model the paper solved with
// RESQ2 (§5.1): over the same horizon, the workload's arrival count agrees
// with an internal/queuing Poisson source of the same rate, and the
// empirical mean interarrival time is 1/rate. Both checks are statistical
// with seeded streams, so the tolerances are tight but never flaky.
func TestWorkloadArrivalsMatchQueuingModel(t *testing.T) {
	const rate = 2000.0
	horizon := 30 * simtime.Second
	g := New(Config{Seed: 3, Procs: 4, Rate: rate})
	for g.Now() < horizon {
		g.Next()
	}
	got := float64(g.Stats().Arrivals)
	want := rate * horizon.Seconds()
	if math.Abs(got-want)/want > 0.05 {
		t.Fatalf("workload arrivals %v, queuing-model expectation %v (>5%% off)", got, want)
	}

	// The same experiment through internal/queuing: a Poisson source of the
	// same rate into a sink. The two implementations draw from different
	// seeded streams, so equality is statistical, not exact.
	net := queuing.New(3)
	sink := net.NewSink("sink")
	src := net.NewSource("arrivals", "msg", 128, rate, sink)
	src.Start()
	net.Run(horizon)
	ref := float64(src.Generated)
	if math.Abs(got-ref)/ref > 0.05 {
		t.Fatalf("workload arrivals %v vs queuing source %v (>5%% apart)", got, ref)
	}

	// Mean interarrival = 1/rate within 5%.
	mean := horizon.Seconds() / got
	if math.Abs(mean-1/rate)/(1/rate) > 0.05 {
		t.Fatalf("mean interarrival %.6fs, want %.6fs", mean, 1/rate)
	}
}

// Hotspot skew and fan-out hit their configured proportions.
func TestWorkloadSkewAndFanOut(t *testing.T) {
	g := New(Config{Seed: 11, Procs: 16, Rate: 4000, Hotspot: 0.8, HotProcs: 2, FanOut: 3})
	for g.Stats().Arrivals < 50000 {
		g.Next()
	}
	st := g.Stats()
	hot := float64(st.HotArrivals) / float64(st.Arrivals)
	// Uniform picks land on the hot set too, so the observed hot share is
	// Hotspot + (1-Hotspot)*HotProcs/Procs = 0.8 + 0.2*2/16 = 0.825.
	if math.Abs(hot-0.825) > 0.02 {
		t.Fatalf("hot-set share %.3f, want ~0.825", hot)
	}
	if st.Advisories != 3*st.Arrivals {
		t.Fatalf("advisories %d, want %d (fan-out 3)", st.Advisories, 3*st.Arrivals)
	}
}

// Flush ops arrive once per window and checkpoints once per interval, and
// Drive feeds the whole stream into a store without error.
func TestWorkloadDriveAndCadence(t *testing.T) {
	g := New(Config{Seed: 5, Procs: 4, Rate: 1000, FanOut: 1,
		FlushWindow: 250 * simtime.Millisecond, CheckpointEvery: simtime.Second})
	// Small segments so this short run spans enough of them for
	// checkpoint truncation to drop some.
	st := stablestore.NewSegmented(32 * 1024)
	n, err := Drive(g, st, 10000)
	if err != nil {
		t.Fatal(err)
	}
	stats := g.Stats()
	if uint64(n) != stats.Arrivals+stats.Advisories+stats.Checkpoints {
		t.Fatalf("Drive appended %d, stats say %d", n,
			stats.Arrivals+stats.Advisories+stats.Checkpoints)
	}
	elapsed := g.Now().Seconds()
	flushPerSec := float64(stats.Flushes) / elapsed
	if math.Abs(flushPerSec-4) > 0.2 {
		t.Fatalf("%.2f flushes/sec, want ~4 (250ms window)", flushPerSec)
	}
	ckPerSec := float64(stats.Checkpoints) / elapsed
	if math.Abs(ckPerSec-1) > 0.2 {
		t.Fatalf("%.2f checkpoints/sec, want ~1", ckPerSec)
	}
	// Checkpoint invalidation must actually free space: after a compaction
	// the store holds fewer live records than were appended.
	if _, err := st.Compact(); err != nil {
		t.Fatal(err)
	}
	all, err := st.ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(all) >= n {
		t.Fatalf("no records reclaimed: %d live of %d appended", len(all), n)
	}
	ss := st.Stats()
	if ss.SegDropped == 0 {
		t.Fatal("checkpoint truncation dropped no segments")
	}
}
