package workload

import (
	"publishing/internal/simtime"
	"publishing/internal/stablestore"
)

// MsgEvent is one published message of the cluster-broadcast view of the
// workload stream: at At, proc Pub publishes a MsgBytes-byte message whose
// FanOut subscriber advisories go to Subs. It is the same seeded op stream
// the storage benchmarks drive (an OpAppend on a message key plus its queued
// advisory appends), re-expressed as inter-process traffic so the same
// arrival discipline — open-loop Poisson with hotspot skew — can drive a
// full simulated cluster instead of a bare store.
type MsgEvent struct {
	At   simtime.Time
	Pub  int
	Subs []int
}

// Msgs generates the first n messages of cfg's stream as cluster traffic.
// Flush, checkpoint, and compaction ops are storage-engine artifacts and are
// skipped; everything that shapes inter-process load — arrival times,
// publisher skew, subscriber draws — is preserved exactly, so a (Seed,
// Procs, Rate, Hotspot, FanOut) tuple names the same offered load whether it
// hits a store or a cluster.
func Msgs(cfg Config, n int) []MsgEvent {
	g := New(cfg)
	pubOf := make(map[string]int, len(g.msgKeys))
	subOf := make(map[string]int, len(g.advKeys))
	for p, k := range g.msgKeys {
		pubOf[k] = p
	}
	for p, k := range g.advKeys {
		subOf[k] = p
	}
	out := make([]MsgEvent, 0, n)
	// The generator emits each arrival's message record first and queues its
	// advisory fan-out behind it, so after the n-th arrival only the pending
	// queue still holds that message's subscribers.
	for len(out) < n || len(g.pending) > 0 {
		op := g.Next()
		if op.Kind != OpAppend {
			continue
		}
		if p, ok := pubOf[op.Rec.Key]; ok && op.Rec.Kind == stablestore.KindMessage {
			out = append(out, MsgEvent{At: op.At, Pub: p})
		} else if s, ok := subOf[op.Rec.Key]; ok && len(out) > 0 {
			m := &out[len(out)-1]
			m.Subs = append(m.Subs, s)
		}
	}
	return out
}
