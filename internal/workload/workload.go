// Package workload generates open-loop stable-store workloads: a seeded
// Poisson arrival stream (the open-queuing-model discipline of §5.1 — the
// same arrival process internal/queuing feeds its RESQ2-style networks)
// shaped by hotspot key skew, fan-out advisory traffic, and periodic
// per-process checkpoints. The generator emits a flat op stream (append /
// group-commit flush / prefix invalidation) against the stablestore record
// vocabulary, so the same workload drives either storage engine for
// benchmarking and for the cross-backend correctness oracle.
//
// The stream is open-loop: arrival times come from the seeded exponential
// clock alone, never from the store's completion times, so a slow backend
// faces the same offered load as a fast one — the property that makes
// throughput numbers comparable across engines.
package workload

import (
	"fmt"

	"publishing/internal/simtime"
	"publishing/internal/stablestore"
)

// Config shapes the generated stream.
type Config struct {
	// Seed drives the arrival clock and all skew choices; same seed,
	// same op stream.
	Seed uint64
	// Procs is the cluster size: the number of publishing processes.
	Procs int
	// Rate is the aggregate message arrival rate in messages per
	// (virtual) second — the Poisson intensity.
	Rate float64
	// Hotspot is the fraction of arrivals whose publisher is drawn from
	// the hot set (0 = uniform over all procs).
	Hotspot float64
	// HotProcs is the hot-set size (default 1).
	HotProcs int
	// MsgBytes is the message body size.
	MsgBytes int
	// FanOut is how many subscriber advisories each message fans out to
	// (0 = none). Subscribers are drawn uniformly from the other procs,
	// so hotspot publishers also concentrate advisory fan-in.
	FanOut int
	// FlushWindow is the group-commit cadence (default 1 virtual second
	// — the recorder's flush tick).
	FlushWindow simtime.Time
	// CheckpointEvery, when > 0, checkpoints one process in rotation at
	// this interval: a checkpoint record is appended and the process's
	// message and advisory prefixes are invalidated — the §3.3 discipline
	// that makes truncation possible.
	CheckpointEvery simtime.Time
	// CompactEvery, when > 0, emits an OpCompact after every Nth
	// checkpoint's invalidations — the background-at-quiescence
	// reclamation that keeps a long run's storage bounded.
	CompactEvery int
}

// OpKind distinguishes stream operations.
type OpKind uint8

const (
	// OpAppend appends Rec to the store.
	OpAppend OpKind = iota
	// OpFlush is a group-commit boundary: call Flush.
	OpFlush
	// OpInvalidate invalidates Key through seq Through.
	OpInvalidate
	// OpCompact reclaims invalidated records: call Compact.
	OpCompact
)

// Op is one stream operation, stamped with its virtual arrival time.
type Op struct {
	At      simtime.Time
	Kind    OpKind
	Rec     stablestore.Record // OpAppend
	Key     string             // OpInvalidate
	Through uint64             // OpInvalidate
}

// Stats counts what the generator has emitted.
type Stats struct {
	Arrivals    uint64 // messages (excluding advisories and checkpoints)
	HotArrivals uint64 // messages published by a hot-set proc
	Advisories  uint64
	Flushes     uint64
	Checkpoints uint64
	Compactions uint64
}

// Gen is the open-loop generator. Next returns ops in nondecreasing
// virtual-time order, forever.
type Gen struct {
	cfg Config
	rng *simtime.Rand

	now      simtime.Time
	nextArr  simtime.Time
	nextFl   simtime.Time
	nextCk   simtime.Time
	ckProc   int // rotation cursor
	seq      []uint64
	advSeq   []uint64
	ckRev    []uint64
	body     []byte
	pending  []Op
	stats    Stats
	msgKeys  []string
	advKeys  []string
	ckKeys   []string
}

// New builds a generator; Config zero values get the documented defaults.
func New(cfg Config) *Gen {
	if cfg.Procs <= 0 {
		cfg.Procs = 1
	}
	if cfg.Rate <= 0 {
		cfg.Rate = 1000
	}
	if cfg.HotProcs <= 0 {
		cfg.HotProcs = 1
	}
	if cfg.HotProcs > cfg.Procs {
		cfg.HotProcs = cfg.Procs
	}
	if cfg.MsgBytes <= 0 {
		cfg.MsgBytes = 128
	}
	if cfg.FlushWindow <= 0 {
		cfg.FlushWindow = simtime.Second
	}
	g := &Gen{
		cfg:    cfg,
		rng:    simtime.NewRand(cfg.Seed),
		seq:    make([]uint64, cfg.Procs),
		advSeq: make([]uint64, cfg.Procs),
		ckRev:  make([]uint64, cfg.Procs),
		body:   make([]byte, cfg.MsgBytes),
	}
	for i := range g.body {
		g.body[i] = byte(i)
	}
	// Pre-render the key strings: the generator's own allocation noise
	// must not leak into append-path benchmarks.
	for p := 0; p < cfg.Procs; p++ {
		g.msgKeys = append(g.msgKeys, fmt.Sprintf("msg:%d", p))
		g.advKeys = append(g.advKeys, fmt.Sprintf("adv:%d", p))
		g.ckKeys = append(g.ckKeys, fmt.Sprintf("ck:%d", p))
	}
	g.nextArr = g.interarrival()
	g.nextFl = cfg.FlushWindow
	if cfg.CheckpointEvery > 0 {
		g.nextCk = cfg.CheckpointEvery
	}
	return g
}

// Stats returns emission counters.
func (g *Gen) Stats() Stats { return g.stats }

// Now returns the generator's virtual clock.
func (g *Gen) Now() simtime.Time { return g.now }

func (g *Gen) interarrival() simtime.Time {
	mean := simtime.Time(float64(simtime.Second) / g.cfg.Rate)
	d := g.rng.Exp(mean)
	if d <= 0 {
		d = 1
	}
	return g.now + d
}

// publisher picks the arrival's publishing proc: hot set with probability
// Hotspot, uniform otherwise (so a uniform pick can land on the hot set
// too — the observed hot share is Hotspot + (1-Hotspot)*HotProcs/Procs).
func (g *Gen) publisher() int {
	if g.cfg.Hotspot > 0 && g.rng.Float64() < g.cfg.Hotspot {
		return g.rng.Intn(g.cfg.HotProcs)
	}
	return g.rng.Intn(g.cfg.Procs)
}

// Next returns the next op of the infinite stream.
func (g *Gen) Next() Op {
	if len(g.pending) > 0 {
		op := g.pending[0]
		g.pending = g.pending[1:]
		return op
	}
	// Earliest of arrival, flush boundary, checkpoint tick.
	switch {
	case (g.nextCk > 0 && g.nextCk <= g.nextArr) && g.nextCk <= g.nextFl:
		return g.checkpoint()
	case g.nextFl <= g.nextArr:
		g.now = g.nextFl
		g.nextFl += g.cfg.FlushWindow
		g.stats.Flushes++
		return Op{At: g.now, Kind: OpFlush}
	default:
		return g.arrival()
	}
}

// arrival emits the publisher's message record and queues its fan-out
// advisories at the same instant.
func (g *Gen) arrival() Op {
	g.now = g.nextArr
	g.nextArr = g.interarrival()
	p := g.publisher()
	g.seq[p]++
	g.stats.Arrivals++
	if p < g.cfg.HotProcs {
		g.stats.HotArrivals++
	}
	for i := 0; i < g.cfg.FanOut; i++ {
		sub := g.rng.Intn(g.cfg.Procs)
		g.advSeq[sub]++
		g.stats.Advisories++
		g.pending = append(g.pending, Op{At: g.now, Kind: OpAppend, Rec: stablestore.Record{
			Kind: stablestore.KindMessage, Key: g.advKeys[sub], Seq: g.advSeq[sub],
		}})
	}
	return Op{At: g.now, Kind: OpAppend, Rec: stablestore.Record{
		Kind: stablestore.KindMessage, Key: g.msgKeys[p], Seq: g.seq[p], Data: g.body,
	}}
}

// checkpoint checkpoints the rotation's next proc: append the checkpoint
// record, then invalidate the proc's message and advisory prefixes.
func (g *Gen) checkpoint() Op {
	g.now = g.nextCk
	g.nextCk += g.cfg.CheckpointEvery
	p := g.ckProc
	g.ckProc = (g.ckProc + 1) % g.cfg.Procs
	g.ckRev[p]++
	g.stats.Checkpoints++
	if g.seq[p] > 0 {
		g.pending = append(g.pending, Op{At: g.now, Kind: OpInvalidate, Key: g.msgKeys[p], Through: g.seq[p]})
	}
	if g.advSeq[p] > 0 {
		g.pending = append(g.pending, Op{At: g.now, Kind: OpInvalidate, Key: g.advKeys[p], Through: g.advSeq[p]})
	}
	if g.cfg.CompactEvery > 0 && g.stats.Checkpoints%uint64(g.cfg.CompactEvery) == 0 {
		g.stats.Compactions++
		g.pending = append(g.pending, Op{At: g.now, Kind: OpCompact})
	}
	return Op{At: g.now, Kind: OpAppend, Rec: stablestore.Record{
		Kind: stablestore.KindCheckpoint, Key: g.ckKeys[p], Seq: g.ckRev[p], Data: g.body[:min(32, len(g.body))],
	}}
}

// Drive feeds ops into a store until n message arrivals have been
// appended (advisories and checkpoints ride along, and the final
// arrival's queued fan-out drains too), ending with a flush. It returns
// the total number of records appended.
func Drive(g *Gen, st stablestore.Store, n int) (int, error) {
	appended := 0
	apply := func(op Op) error {
		switch op.Kind {
		case OpAppend:
			if _, err := st.Append(op.Rec); err != nil {
				return err
			}
			appended++
		case OpFlush:
			if err := st.Flush(); err != nil {
				return err
			}
		case OpInvalidate:
			st.Invalidate(op.Key, op.Through)
		case OpCompact:
			if _, err := st.Compact(); err != nil {
				return err
			}
		}
		return nil
	}
	for g.stats.Arrivals < uint64(n) || len(g.pending) > 0 {
		if err := apply(g.Next()); err != nil {
			return appended, err
		}
	}
	return appended, st.Flush()
}
