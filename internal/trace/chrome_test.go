package trace

import (
	"bytes"
	"encoding/json"
	"testing"

	"publishing/internal/simtime"
)

// decodeChrome parses exporter output back into generic JSON for assertions.
func decodeChrome(t *testing.T, data []byte) []map[string]any {
	t.Helper()
	var file struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal(data, &file); err != nil {
		t.Fatalf("exporter wrote invalid JSON: %v", err)
	}
	return file.TraceEvents
}

func TestWriteChromeSpansAndMetadata(t *testing.T) {
	now := simtime.Time(0)
	l := New(func() simtime.Time { return now })
	l.AddMsg(KindSend, 0, "m1", "m1", "sent")
	now = 2 * simtime.Microsecond
	l.AddMsg(KindPublish, 2, "m1", "p0.1", "published")
	now = 4 * simtime.Microsecond
	l.AddMsg(KindReplay, 1, "m1", "p1.1", "replayed")
	now = 6 * simtime.Microsecond
	l.AddMsg(KindAck, 0, "m1", "m1", "acked")
	l.Add(KindCollision, -1, "wire", "two senders")

	var buf bytes.Buffer
	if err := l.WriteChrome(&buf); err != nil {
		t.Fatal(err)
	}
	events := decodeChrome(t, buf.Bytes())

	names := map[string]bool{}
	phases := map[string]int{}
	for _, e := range events {
		phases[e["ph"].(string)]++
		if e["ph"] == "M" {
			names[e["args"].(map[string]any)["name"].(string)] = true
		}
	}
	if !names["node 0"] || !names["medium"] {
		t.Fatalf("process_name metadata missing: %v", names)
	}
	// 5 instants; m1's span: one "b" (send), one "e" (ack), two "n"
	// (publish, replay) — all sharing the message id.
	if phases["i"] != 5 || phases["b"] != 1 || phases["e"] != 1 || phases["n"] != 2 {
		t.Fatalf("phase counts: %v", phases)
	}
	for _, e := range events {
		switch e["ph"] {
		case "b", "e", "n":
			if e["id"] != "m1" {
				t.Fatalf("span event with id %v, want m1", e["id"])
			}
		}
	}
	// The medium event must not land on a negative pid.
	for _, e := range events {
		if pid := e["pid"].(float64); pid < 0 {
			t.Fatalf("negative pid %v", pid)
		}
	}
	// Replay span instants share the original message's span id: the
	// causal link the timeline view hinges on.
	var replayID, publishID any
	for _, e := range events {
		if e["ph"] == "n" {
			kind := e["args"].(map[string]any)["kind"]
			if kind == "replay" {
				replayID = e["id"]
			}
			if kind == "publish" {
				publishID = e["id"]
			}
		}
	}
	if replayID == nil || replayID != publishID {
		t.Fatalf("replay id %v != publish id %v", replayID, publishID)
	}
}

func TestWriteChromeTimestampsMicroseconds(t *testing.T) {
	now := 1500 * simtime.Nanosecond
	l := New(func() simtime.Time { return now })
	l.Add(KindSend, 0, "s", "x")
	var buf bytes.Buffer
	if err := l.WriteChrome(&buf); err != nil {
		t.Fatal(err)
	}
	for _, e := range decodeChrome(t, buf.Bytes()) {
		if e["ph"] == "i" && e["ts"].(float64) != 1.5 {
			t.Fatalf("ts = %v µs, want 1.5", e["ts"])
		}
	}
}
