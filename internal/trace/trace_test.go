package trace

import (
	"bytes"
	"strings"
	"testing"

	"publishing/internal/simtime"
)

func TestNilLogIsSafe(t *testing.T) {
	var l *Log
	l.Add(KindSend, 1, "x", "anything %d", 42)
	l.AddMsg(KindSend, 1, "m1", "x", "anything")
	l.Enable(true)
	l.SetSink(&bytes.Buffer{})
	l.SetFilter(func(Event) bool { return true })
	l.SetDetailed(true)
	l.SetFlightRecorder(4)
	l.Reset()
	l.Dump(&bytes.Buffer{})
	if err := l.WriteChrome(&bytes.Buffer{}); err != nil {
		t.Fatalf("nil WriteChrome: %v", err)
	}
	if l.Events() != nil || l.OfKind(KindSend) != nil || l.Count(KindSend) != 0 {
		t.Fatal("nil log leaked data")
	}
	if l.CountSubject(KindSend, "x") != 0 || l.Contains(KindSend, "y") {
		t.Fatal("nil log counted")
	}
	if l.Detailed() || l.Dropped() != 0 {
		t.Fatal("nil log has state")
	}
}

func TestRecordAndQuery(t *testing.T) {
	now := simtime.Time(0)
	l := New(func() simtime.Time { return now })
	l.Add(KindSend, 0, "p0.1", "first")
	now = 5 * simtime.Millisecond
	l.Add(KindCrash, 1, "p1.2", "boom %d", 7)
	l.Add(KindSend, 0, "p0.1", "second")

	if len(l.Events()) != 3 {
		t.Fatalf("events = %d", len(l.Events()))
	}
	if l.Count(KindSend) != 2 || l.Count(KindCrash) != 1 || l.Count(KindDetect) != 0 {
		t.Fatal("counts wrong")
	}
	if l.CountSubject(KindSend, "p0.1") != 2 || l.CountSubject(KindSend, "zzz") != 0 {
		t.Fatal("subject counts wrong")
	}
	if !l.Contains(KindCrash, "boom 7") || l.Contains(KindCrash, "nope") {
		t.Fatal("Contains wrong")
	}
	if l.Events()[1].At != 5*simtime.Millisecond {
		t.Fatal("timestamp not taken from clock")
	}
}

func TestEnableDisable(t *testing.T) {
	l := New(nil)
	l.Enable(false)
	l.Add(KindSend, 0, "s", "hidden")
	if len(l.Events()) != 0 {
		t.Fatal("disabled log recorded")
	}
	l.Enable(true)
	l.Add(KindSend, 0, "s", "visible")
	if len(l.Events()) != 1 {
		t.Fatal("enabled log did not record")
	}
}

func TestFilterAndSink(t *testing.T) {
	var buf bytes.Buffer
	l := New(nil)
	l.SetSink(&buf)
	l.SetFilter(func(e Event) bool { return e.Kind == KindCrash })
	l.Add(KindSend, 0, "s", "dropped")
	l.Add(KindCrash, 2, "p2.1", "kept")
	if len(l.Events()) != 1 {
		t.Fatalf("filter kept %d events", len(l.Events()))
	}
	out := buf.String()
	if !strings.Contains(out, "kept") || strings.Contains(out, "dropped") {
		t.Fatalf("sink output: %q", out)
	}
}

func TestResetAndDump(t *testing.T) {
	l := New(nil)
	l.Add(KindReplay, 3, "p3.1", "one")
	l.Add(KindReplay, 3, "p3.1", "two")
	var buf bytes.Buffer
	l.Dump(&buf)
	if strings.Count(buf.String(), "\n") != 2 {
		t.Fatalf("dump: %q", buf.String())
	}
	l.Reset()
	if len(l.Events()) != 0 {
		t.Fatal("reset did not clear")
	}
}

// panicStringer proves formatting never happened: Sprintf on it panics.
type panicStringer struct{}

func (panicStringer) String() string { panic("formatted a filtered event") }

func TestFilterRunsBeforeFormatting(t *testing.T) {
	l := New(nil)
	sawDetail := "unset"
	l.SetFilter(func(e Event) bool {
		sawDetail = e.Detail
		return false
	})
	l.Add(KindSend, 0, "s", "costly %v", panicStringer{})
	if sawDetail != "" {
		t.Fatalf("filter saw Detail %q, want empty (pre-format)", sawDetail)
	}
	if len(l.Events()) != 0 {
		t.Fatal("rejected event recorded")
	}
}

func TestFilterSeesMsgAndSinkGetsFiltered(t *testing.T) {
	var buf bytes.Buffer
	l := New(nil)
	l.SetSink(&buf)
	l.SetFilter(func(e Event) bool { return e.Msg == "keep-me" })
	l.AddMsg(KindSend, 0, "drop-me", "s", "a")
	l.AddMsg(KindSend, 0, "keep-me", "s", "b")
	if got := l.Count(KindSend); got != 1 {
		t.Fatalf("recorded %d, want 1", got)
	}
	if out := buf.String(); !strings.Contains(out, "keep-me") || strings.Contains(out, "drop-me") {
		t.Fatalf("sink saw filtered event: %q", out)
	}
}

func TestCountDoesNotAllocate(t *testing.T) {
	l := New(nil)
	for i := 0; i < 100; i++ {
		l.Add(KindSend, 0, "s", "x")
		l.Add(KindCrash, 0, "s", "x")
	}
	allocs := testing.AllocsPerRun(10, func() {
		if l.Count(KindSend) != 100 || l.CountSubject(KindCrash, "s") != 100 {
			t.Fatal("wrong counts")
		}
	})
	if allocs != 0 {
		t.Fatalf("Count allocated %.0f times per run", allocs)
	}
}

func TestFlightRecorderWraparound(t *testing.T) {
	now := simtime.Time(0)
	l := New(func() simtime.Time { return now })
	l.SetFlightRecorder(3)
	for i := 1; i <= 7; i++ {
		now = simtime.Time(i)
		l.Add(KindSend, 0, "s", "ev")
	}
	ev := l.Events()
	if len(ev) != 3 {
		t.Fatalf("kept %d events, want 3", len(ev))
	}
	for i, want := range []simtime.Time{5, 6, 7} {
		if ev[i].At != want {
			t.Fatalf("event %d at %v, want %v (order broken)", i, ev[i].At, want)
		}
	}
	if l.Dropped() != 4 {
		t.Fatalf("dropped = %d, want 4", l.Dropped())
	}
	if l.Count(KindSend) != 3 {
		t.Fatal("Count ignores the ring bound")
	}
	// Shrinking keeps the newest events; unbounding keeps order.
	l.SetFlightRecorder(2)
	if ev := l.Events(); len(ev) != 2 || ev[1].At != 7 {
		t.Fatalf("shrink kept %v", ev)
	}
	l.SetFlightRecorder(0)
	now = 8
	l.Add(KindSend, 0, "s", "ev")
	if ev := l.Events(); len(ev) != 3 || ev[0].At != 6 || ev[2].At != 8 {
		t.Fatalf("unbound kept %v", ev)
	}
	// Reset keeps the bound itself.
	l.SetFlightRecorder(2)
	l.Reset()
	if l.Dropped() != 0 {
		t.Fatal("Reset kept dropped count")
	}
	for i := 0; i < 5; i++ {
		l.Add(KindSend, 0, "s", "ev")
	}
	if len(l.Events()) != 2 {
		t.Fatal("bound lost across Reset")
	}
}

func TestAddMsgThreadsCausalKey(t *testing.T) {
	l := New(nil)
	l.AddMsg(KindPublish, 1, "p0.1#7", "p0.1", "published")
	e := l.Events()[0]
	if e.Msg != "p0.1#7" {
		t.Fatalf("Msg = %q", e.Msg)
	}
	if s := e.String(); !strings.Contains(s, "msg=p0.1#7") {
		t.Fatalf("Event.String lost the id: %q", s)
	}
	// When the subject IS the id, the suffix would be noise.
	l.AddMsg(KindSend, 1, "p0.1#8", "p0.1#8", "sent")
	if s := l.Events()[1].String(); strings.Contains(s, "msg=") {
		t.Fatalf("redundant msg suffix: %q", s)
	}
}

func TestKindStrings(t *testing.T) {
	names := map[Kind]string{
		KindSend: "send", KindDeliver: "deliver", KindAck: "ack",
		KindPublish: "publish", KindCheckpoint: "checkpoint", KindCrash: "crash",
		KindDetect: "detect", KindRecoveryStart: "recovery-start",
		KindReplay: "replay", KindRecoveryDone: "recovery-done",
		KindDrop: "drop", KindSuppress: "suppress", KindCollision: "collision",
		KindSchedule: "schedule", KindControl: "control", KindRecorder: "recorder",
		KindGiveUp: "give-up", KindOther: "other",
	}
	for k, want := range names {
		if k.String() != want {
			t.Errorf("Kind(%d) = %q, want %q", k, k.String(), want)
		}
	}
	if Kind(99).String() == "" {
		t.Error("unknown kind empty")
	}
	e := Event{Kind: KindSend, Node: 2, Subject: "p2.9", Detail: "hello"}
	if s := e.String(); !strings.Contains(s, "send") || !strings.Contains(s, "p2.9") {
		t.Errorf("Event.String = %q", s)
	}
}

// TestObserverRingBatching covers the batched observer path: events buffer
// up to the ring size, arrive in record order at every flush point (ring
// full, explicit flush, Enable(false), observer swap), and nil-log /
// no-observer cases stay safe.
func TestObserverRingBatching(t *testing.T) {
	var nilLog *Log
	nilLog.SetObserverRing(8) // must not panic
	nilLog.FlushObservers()

	l := New(func() simtime.Time { return 0 })
	var got []string
	l.SetObserver(func(e Event) { got = append(got, e.Subject) })
	l.SetObserverRing(3)

	l.Add(KindSend, 0, "a", "x")
	l.Add(KindSend, 0, "b", "x")
	if len(got) != 0 {
		t.Fatalf("observer ran before the ring filled: %v", got)
	}
	l.Add(KindSend, 0, "c", "x") // fills the ring
	if want := []string{"a", "b", "c"}; strings.Join(got, ",") != strings.Join(want, ",") {
		t.Fatalf("ring-full flush delivered %v, want %v", got, want)
	}

	l.Add(KindSend, 0, "d", "x")
	l.FlushObservers()
	if got[len(got)-1] != "d" {
		t.Fatalf("explicit flush missed the buffered event: %v", got)
	}
	l.FlushObservers() // empty flush is a no-op
	if len(got) != 4 {
		t.Fatalf("empty flush delivered events: %v", got)
	}

	// Enable(false) flushes the tail.
	l.Add(KindSend, 0, "e", "x")
	l.Enable(false)
	if got[len(got)-1] != "e" {
		t.Fatalf("disable did not flush: %v", got)
	}
	l.Add(KindSend, 0, "dropped", "x") // disabled: recorded nowhere
	l.Enable(true)

	// Swapping the observer delivers pending events to the outgoing one.
	l.Add(KindSend, 0, "f", "x")
	var got2 []string
	l.SetObserver(func(e Event) { got2 = append(got2, e.Subject) })
	if got[len(got)-1] != "f" || len(got2) != 0 {
		t.Fatalf("observer swap misdelivered: old=%v new=%v", got, got2)
	}

	// Restoring synchronous mode flushes and then delivers per event.
	l.Add(KindSend, 0, "g", "x")
	l.SetObserverRing(0)
	if got2[len(got2)-1] != "g" {
		t.Fatalf("SetObserverRing(0) did not flush: %v", got2)
	}
	l.Add(KindSend, 0, "h", "x")
	if got2[len(got2)-1] != "h" {
		t.Fatalf("synchronous delivery broken after ring removal: %v", got2)
	}

	// Events the retention filter rejects still reach a batched observer.
	l.SetObserverRing(4)
	l.SetFilter(func(e Event) bool { return false })
	l.Add(KindSend, 0, "filtered", "x")
	l.FlushObservers()
	if got2[len(got2)-1] != "filtered" {
		t.Fatalf("filtered event missed the batched observer: %v", got2)
	}
}
