package trace

import (
	"bytes"
	"strings"
	"testing"

	"publishing/internal/simtime"
)

func TestNilLogIsSafe(t *testing.T) {
	var l *Log
	l.Add(KindSend, 1, "x", "anything %d", 42)
	l.Enable(true)
	l.SetSink(&bytes.Buffer{})
	l.SetFilter(func(Event) bool { return true })
	l.Reset()
	l.Dump(&bytes.Buffer{})
	if l.Events() != nil || l.OfKind(KindSend) != nil || l.Count(KindSend) != 0 {
		t.Fatal("nil log leaked data")
	}
}

func TestRecordAndQuery(t *testing.T) {
	now := simtime.Time(0)
	l := New(func() simtime.Time { return now })
	l.Add(KindSend, 0, "p0.1", "first")
	now = 5 * simtime.Millisecond
	l.Add(KindCrash, 1, "p1.2", "boom %d", 7)
	l.Add(KindSend, 0, "p0.1", "second")

	if len(l.Events()) != 3 {
		t.Fatalf("events = %d", len(l.Events()))
	}
	if l.Count(KindSend) != 2 || l.Count(KindCrash) != 1 || l.Count(KindDetect) != 0 {
		t.Fatal("counts wrong")
	}
	if l.CountSubject(KindSend, "p0.1") != 2 || l.CountSubject(KindSend, "zzz") != 0 {
		t.Fatal("subject counts wrong")
	}
	if !l.Contains(KindCrash, "boom 7") || l.Contains(KindCrash, "nope") {
		t.Fatal("Contains wrong")
	}
	if l.Events()[1].At != 5*simtime.Millisecond {
		t.Fatal("timestamp not taken from clock")
	}
}

func TestEnableDisable(t *testing.T) {
	l := New(nil)
	l.Enable(false)
	l.Add(KindSend, 0, "s", "hidden")
	if len(l.Events()) != 0 {
		t.Fatal("disabled log recorded")
	}
	l.Enable(true)
	l.Add(KindSend, 0, "s", "visible")
	if len(l.Events()) != 1 {
		t.Fatal("enabled log did not record")
	}
}

func TestFilterAndSink(t *testing.T) {
	var buf bytes.Buffer
	l := New(nil)
	l.SetSink(&buf)
	l.SetFilter(func(e Event) bool { return e.Kind == KindCrash })
	l.Add(KindSend, 0, "s", "dropped")
	l.Add(KindCrash, 2, "p2.1", "kept")
	if len(l.Events()) != 1 {
		t.Fatalf("filter kept %d events", len(l.Events()))
	}
	out := buf.String()
	if !strings.Contains(out, "kept") || strings.Contains(out, "dropped") {
		t.Fatalf("sink output: %q", out)
	}
}

func TestResetAndDump(t *testing.T) {
	l := New(nil)
	l.Add(KindReplay, 3, "p3.1", "one")
	l.Add(KindReplay, 3, "p3.1", "two")
	var buf bytes.Buffer
	l.Dump(&buf)
	if strings.Count(buf.String(), "\n") != 2 {
		t.Fatalf("dump: %q", buf.String())
	}
	l.Reset()
	if len(l.Events()) != 0 {
		t.Fatal("reset did not clear")
	}
}

func TestKindStrings(t *testing.T) {
	names := map[Kind]string{
		KindSend: "send", KindDeliver: "deliver", KindAck: "ack",
		KindPublish: "publish", KindCheckpoint: "checkpoint", KindCrash: "crash",
		KindDetect: "detect", KindRecoveryStart: "recovery-start",
		KindReplay: "replay", KindRecoveryDone: "recovery-done",
		KindDrop: "drop", KindSuppress: "suppress", KindCollision: "collision",
		KindSchedule: "schedule", KindControl: "control", KindRecorder: "recorder",
		KindOther: "other",
	}
	for k, want := range names {
		if k.String() != want {
			t.Errorf("Kind(%d) = %q, want %q", k, k.String(), want)
		}
	}
	if Kind(99).String() == "" {
		t.Error("unknown kind empty")
	}
	e := Event{Kind: KindSend, Node: 2, Subject: "p2.9", Detail: "hello"}
	if s := e.String(); !strings.Contains(s, "send") || !strings.Contains(s, "p2.9") {
		t.Errorf("Event.String = %q", s)
	}
}
