// Chrome trace-event export: turns the event log into the JSON object
// format understood by chrome://tracing and Perfetto (ui.perfetto.dev), so
// any simulation run can be inspected as per-node timelines with each
// message's life — send, publish, delivery, ack, replay — threaded through
// as an async span keyed by its message id.
package trace

import (
	"encoding/json"
	"io"
	"sort"

	"publishing/internal/simtime"
)

// chromeEvent is one entry in the trace-event JSON "traceEvents" array.
type chromeEvent struct {
	Name  string            `json:"name"`
	Cat   string            `json:"cat,omitempty"`
	Ph    string            `json:"ph"`
	Ts    float64           `json:"ts"`
	Pid   int               `json:"pid"`
	Tid   int               `json:"tid"`
	ID    string            `json:"id,omitempty"`
	Scope string            `json:"s,omitempty"`
	Args  map[string]string `json:"args,omitempty"`
}

// chromeFile is the top-level trace-event JSON object.
type chromeFile struct {
	TraceEvents     []chromeEvent `json:"traceEvents"`
	DisplayTimeUnit string        `json:"displayTimeUnit"`
}

// chromePid maps a trace node id to a Chrome pid. Node -1 (medium-level
// events) becomes pid 0; node n becomes pid n+1, since the format dislikes
// negative pids.
func chromePid(node int) int { return node + 1 }

// chromeTs converts virtual time to the format's microsecond float.
func chromeTs(t simtime.Time) float64 { return float64(t) / float64(simtime.Microsecond) }

// WriteChrome writes events as Chrome trace-event JSON. Every event appears
// as an instant on its node's timeline; message-scoped events (Msg != "")
// additionally form an async span per message id: KindSend opens it,
// KindAck closes it, and everything between — publish, delivery, replay —
// lands inside it as async instants sharing the id. Replay events therefore
// reference the same span id as the original publish, which is what lets a
// recovery's replays be read against the pre-crash traffic.
func WriteChrome(w io.Writer, events []Event) error {
	file := chromeFile{DisplayTimeUnit: "ms"}

	// Name each pid first so the viewer shows "node N" / "medium" rows.
	pids := map[int]string{}
	for i := range events {
		node := events[i].Node
		if _, ok := pids[node]; !ok {
			if node < 0 {
				pids[node] = "medium"
			} else {
				pids[node] = "node " + itoa(node)
			}
		}
	}
	nodes := make([]int, 0, len(pids))
	for n := range pids {
		nodes = append(nodes, n)
	}
	sort.Ints(nodes)
	for _, n := range nodes {
		file.TraceEvents = append(file.TraceEvents, chromeEvent{
			Name: "process_name",
			Ph:   "M",
			Pid:  chromePid(n),
			Args: map[string]string{"name": pids[n]},
		})
	}

	for i := range events {
		e := &events[i]
		args := map[string]string{"subject": e.Subject}
		if e.Detail != "" {
			args["detail"] = e.Detail
		}
		if e.Msg != "" {
			args["msg"] = e.Msg
		}
		ce := chromeEvent{
			Name:  e.Kind.String(),
			Cat:   e.Kind.String(),
			Ph:    "i",
			Scope: "p",
			Ts:    chromeTs(e.At),
			Pid:   chromePid(e.Node),
			Args:  args,
		}
		file.TraceEvents = append(file.TraceEvents, ce)
		if e.Msg == "" {
			continue
		}
		// The async span of this message's lifetime, keyed by its id.
		span := chromeEvent{
			Name: "msg",
			Cat:  "msg",
			Ts:   ce.Ts,
			Pid:  ce.Pid,
			ID:   e.Msg,
			Args: map[string]string{"kind": e.Kind.String()},
		}
		switch e.Kind {
		case KindSend:
			span.Ph = "b"
		case KindAck:
			span.Ph = "e"
		default:
			span.Ph = "n"
		}
		file.TraceEvents = append(file.TraceEvents, span)
	}

	enc := json.NewEncoder(w)
	return enc.Encode(&file)
}

// WriteChrome exports the log's events; see the package-level WriteChrome.
func (l *Log) WriteChrome(w io.Writer) error {
	return WriteChrome(w, l.Events())
}

// itoa avoids strconv for the tiny node-id case.
func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var buf [8]byte
	i := len(buf)
	for n > 0 {
		i--
		buf[i] = byte('0' + n%10)
		n /= 10
	}
	return string(buf[i:])
}
