// Package trace records structured simulation events. The paper's
// implementation used Bart Miller's metering system to obtain the DEMOS/MP
// measurements (Acknowledgements, Ch. 5); this package plays the same role:
// a low-overhead event log that experiments and tests can filter and assert
// against, and that the demosnet CLI can stream to the terminal.
package trace

import (
	"fmt"
	"io"
	"strings"

	"publishing/internal/simtime"
)

// Kind classifies trace events.
type Kind int

const (
	KindSend Kind = iota
	KindDeliver
	KindAck
	KindPublish
	KindCheckpoint
	KindCrash
	KindDetect
	KindRecoveryStart
	KindReplay
	KindRecoveryDone
	KindDrop
	KindSuppress
	KindCollision
	KindSchedule
	KindControl
	KindRecorder
	KindOther
)

var kindNames = [...]string{
	"send", "deliver", "ack", "publish", "checkpoint", "crash", "detect",
	"recovery-start", "replay", "recovery-done", "drop", "suppress",
	"collision", "schedule", "control", "recorder", "other",
}

// String returns the lowercase name of the kind.
func (k Kind) String() string {
	if int(k) < len(kindNames) {
		return kindNames[k]
	}
	return fmt.Sprintf("kind(%d)", int(k))
}

// Event is one recorded occurrence.
type Event struct {
	At   simtime.Time
	Kind Kind
	// Node is the node id the event happened on, or -1 for medium-level
	// events with no single node.
	Node int
	// Subject identifies the process/message involved, free-form.
	Subject string
	// Detail is a human-readable explanation.
	Detail string
}

// String formats the event as one log line.
func (e Event) String() string {
	return fmt.Sprintf("%12s node=%-2d %-14s %-22s %s", e.At, e.Node, e.Kind, e.Subject, e.Detail)
}

// Log collects events. The zero value is ready to use and records nothing
// until enabled; a nil *Log is also safe everywhere, so simulation code can
// trace unconditionally.
type Log struct {
	enabled bool
	events  []Event
	sink    io.Writer
	clock   func() simtime.Time
	// filter, when non-nil, drops events for which it returns false.
	filter func(Event) bool
}

// New returns an enabled log reading timestamps from clock.
func New(clock func() simtime.Time) *Log {
	return &Log{enabled: true, clock: clock}
}

// SetSink mirrors every recorded event to w as it happens.
func (l *Log) SetSink(w io.Writer) {
	if l != nil {
		l.sink = w
	}
}

// SetFilter installs a predicate; events failing it are not recorded.
func (l *Log) SetFilter(f func(Event) bool) {
	if l != nil {
		l.filter = f
	}
}

// Enable turns recording on or off.
func (l *Log) Enable(on bool) {
	if l != nil {
		l.enabled = on
	}
}

// Add records an event.
func (l *Log) Add(kind Kind, node int, subject, format string, args ...any) {
	if l == nil || !l.enabled {
		return
	}
	e := Event{Kind: kind, Node: node, Subject: subject, Detail: fmt.Sprintf(format, args...)}
	if l.clock != nil {
		e.At = l.clock()
	}
	if l.filter != nil && !l.filter(e) {
		return
	}
	l.events = append(l.events, e)
	if l.sink != nil {
		fmt.Fprintln(l.sink, e)
	}
}

// Events returns all recorded events.
func (l *Log) Events() []Event {
	if l == nil {
		return nil
	}
	return l.events
}

// OfKind returns the recorded events of one kind.
func (l *Log) OfKind(k Kind) []Event {
	if l == nil {
		return nil
	}
	var out []Event
	for _, e := range l.events {
		if e.Kind == k {
			out = append(out, e)
		}
	}
	return out
}

// Count returns how many events of kind k were recorded.
func (l *Log) Count(k Kind) int { return len(l.OfKind(k)) }

// CountSubject returns how many events of kind k mention subject.
func (l *Log) CountSubject(k Kind, subject string) int {
	n := 0
	for _, e := range l.OfKind(k) {
		if e.Subject == subject {
			n++
		}
	}
	return n
}

// Contains reports whether any event of kind k has a detail containing s.
func (l *Log) Contains(k Kind, s string) bool {
	for _, e := range l.OfKind(k) {
		if strings.Contains(e.Detail, s) {
			return true
		}
	}
	return false
}

// Reset discards recorded events.
func (l *Log) Reset() {
	if l != nil {
		l.events = nil
	}
}

// Dump writes every recorded event to w.
func (l *Log) Dump(w io.Writer) {
	if l == nil {
		return
	}
	for _, e := range l.events {
		fmt.Fprintln(w, e)
	}
}
