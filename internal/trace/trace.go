// Package trace records structured simulation events. The paper's
// implementation used Bart Miller's metering system to obtain the DEMOS/MP
// measurements (Acknowledgements, Ch. 5); this package plays the same role:
// a low-overhead event log that experiments and tests can filter and assert
// against, and that the demosnet CLI can stream to the terminal.
//
// Events that concern one particular message carry its id in Event.Msg, so a
// message can be followed causally from send through medium tap, recorder
// publish, delivery, ack, and recovery replay. WriteChrome (chrome.go) turns
// that thread into per-node timelines viewable in about:tracing / Perfetto.
package trace

import (
	"fmt"
	"io"
	"strings"

	"publishing/internal/simtime"
)

// Kind classifies trace events.
type Kind int

const (
	KindSend Kind = iota
	KindDeliver
	KindAck
	KindPublish
	KindCheckpoint
	KindCrash
	KindDetect
	KindRecoveryStart
	KindReplay
	KindRecoveryDone
	KindDrop
	KindSuppress
	KindCollision
	KindSchedule
	KindControl
	KindRecorder
	KindGiveUp
	KindOther
)

var kindNames = [...]string{
	"send", "deliver", "ack", "publish", "checkpoint", "crash", "detect",
	"recovery-start", "replay", "recovery-done", "drop", "suppress",
	"collision", "schedule", "control", "recorder", "give-up", "other",
}

// String returns the lowercase name of the kind.
func (k Kind) String() string {
	if int(k) < len(kindNames) {
		return kindNames[k]
	}
	return fmt.Sprintf("kind(%d)", int(k))
}

// Event is one recorded occurrence.
type Event struct {
	At   simtime.Time
	Kind Kind
	// Node is the node id the event happened on, or -1 for medium-level
	// events with no single node.
	Node int
	// Subject identifies the process/message involved, free-form.
	Subject string
	// Msg is the id of the message this event concerns, or "" for events
	// that are not message-scoped. It is the causal key: every event
	// carrying the same Msg belongs to one message's lifetime.
	Msg string
	// Seq is an event-kind-specific sequence number: for KindPublish it is
	// the recorder's acceptance-order position in the destination stream
	// (the value online monitors check monotonicity of). Zero elsewhere.
	Seq uint64
	// Detail is a human-readable explanation.
	Detail string
}

// String formats the event as one log line.
func (e Event) String() string {
	if e.Msg != "" && e.Msg != e.Subject {
		return fmt.Sprintf("%12s node=%-2d %-14s %-22s %s msg=%s", e.At, e.Node, e.Kind, e.Subject, e.Detail, e.Msg)
	}
	return fmt.Sprintf("%12s node=%-2d %-14s %-22s %s", e.At, e.Node, e.Kind, e.Subject, e.Detail)
}

// Log collects events. The zero value is ready to use and records nothing
// until enabled; a nil *Log is also safe everywhere, so simulation code can
// trace unconditionally.
//
// A bounded log (SetFlightRecorder) keeps only the most recent events in a
// ring buffer — "flight recorder" mode, so long sweeps don't grow without
// bound while the tail leading up to a failure stays available.
type Log struct {
	enabled  bool
	detailed bool
	events   []Event
	// limit > 0 bounds events to a ring of that capacity; start is the
	// ring's logical head once it has wrapped.
	limit   int
	start   int
	wrapped bool
	dropped uint64
	sink    io.Writer
	clock   func() simtime.Time
	// filter, when non-nil, drops events for which it returns false. It
	// runs before Detail is formatted (Detail is always "" inside the
	// filter), so rejected events cost no fmt work.
	filter func(Event) bool
	// observer, when non-nil, sees every enabled event — including events
	// the filter rejects from retention — with Detail formatted. It is the
	// streaming tap online monitors (internal/monitor) subscribe through.
	observer func(Event)
	// obsBuf, when obsCap > 0, batches observer callbacks: events queue
	// here and the observer sees them in bursts at flush points (buffer
	// full, FlushObservers, Enable/SetObserver transitions) instead of one
	// virtual call per event — trimming the monitored hot path. Events are
	// delivered in exact record order, so batching is invisible to any
	// observer that keys its verdicts on Event.At rather than on when the
	// callback happened to run.
	obsBuf []Event
	obsCap int
}

// New returns an enabled log reading timestamps from clock.
func New(clock func() simtime.Time) *Log {
	return &Log{enabled: true, clock: clock}
}

// SetSink mirrors every recorded event to w as it happens.
func (l *Log) SetSink(w io.Writer) {
	if l != nil {
		l.sink = w
	}
}

// SetFilter installs a predicate; events failing it are not recorded. The
// predicate sees the event before Detail formatting (Detail is ""): filter
// on Kind, Node, Subject, or Msg.
func (l *Log) SetFilter(f func(Event) bool) {
	if l != nil {
		l.filter = f
	}
}

// SetObserver installs (or, with nil, removes) a streaming observer. The
// observer is called synchronously for every event recorded while the log is
// enabled — before the retention filter, so a CLI filter cannot blind a
// monitor — with Detail already formatted. Observers must not re-enter the
// log. A disabled log calls no observer: disabling tracing disables
// observation too, keeping the hot path's disabled cost at one branch.
func (l *Log) SetObserver(f func(Event)) {
	if l != nil {
		l.FlushObservers() // pending events belong to the outgoing observer
		l.observer = f
	}
}

// SetObserverRing sets the observer batch size: n > 0 buffers up to n
// events between observer deliveries (see FlushObservers for when the
// buffer drains), n <= 0 restores the default synchronous per-event
// callback. The cluster's monitor wiring batches one stall-window's worth
// of events per flush.
func (l *Log) SetObserverRing(n int) {
	if l == nil {
		return
	}
	l.FlushObservers()
	if n <= 0 {
		l.obsCap, l.obsBuf = 0, nil
		return
	}
	l.obsCap = n
	l.obsBuf = make([]Event, 0, n)
}

// FlushObservers delivers any batched events to the observer immediately,
// in record order. Harmless (and O(1)) when nothing is buffered. Callers
// that read observer-derived state mid-run — the monitor's tick, a
// violation query — flush first so the observer is current.
func (l *Log) FlushObservers() {
	if l == nil || len(l.obsBuf) == 0 {
		return
	}
	f := l.observer
	buf := l.obsBuf
	l.obsBuf = l.obsBuf[:0]
	if f == nil {
		return
	}
	for i := range buf {
		f(buf[i])
	}
}

// Enable turns recording on or off. Turning recording off flushes any
// batched observer events: everything recorded while enabled reaches the
// observer.
func (l *Log) Enable(on bool) {
	if l != nil {
		if !on {
			l.FlushObservers()
		}
		l.enabled = on
	}
}

// SetDetailed turns per-message fine-grained events (per-record replay,
// end-to-end ack completion) on or off. They are off by default: exporters
// that reconstruct full causal timelines enable them, and hot paths consult
// Detailed before paying for them.
func (l *Log) SetDetailed(on bool) {
	if l != nil {
		l.detailed = on
	}
}

// Detailed reports whether fine-grained per-message events are wanted.
func (l *Log) Detailed() bool { return l != nil && l.detailed }

// Enabled reports whether the log is recording at all. Hot paths that
// pre-format arguments (message ids, frame summaries) consult it so a
// disabled trace costs a nil check and a branch, not a fmt call.
func (l *Log) Enabled() bool { return l != nil && l.enabled }

// SetFlightRecorder bounds the log to the most recent n events (n <= 0
// removes the bound). If more than n events are already recorded, only the
// newest n survive.
func (l *Log) SetFlightRecorder(n int) {
	if l == nil {
		return
	}
	if n <= 0 {
		if l.wrapped {
			l.events = l.ordered(nil)
		}
		l.limit, l.start, l.wrapped = 0, 0, false
		return
	}
	ev := l.events
	if l.wrapped {
		ev = l.ordered(nil)
	}
	if len(ev) > n {
		ev = ev[len(ev)-n:]
	}
	l.events = append(make([]Event, 0, n), ev...)
	l.limit, l.start, l.wrapped = n, 0, false
}

// Dropped returns how many events the flight-recorder bound has discarded.
func (l *Log) Dropped() uint64 {
	if l == nil {
		return 0
	}
	return l.dropped
}

// Add records an event.
func (l *Log) Add(kind Kind, node int, subject, format string, args ...any) {
	l.record(kind, node, "", subject, 0, format, args...)
}

// AddMsg records an event about one particular message: msg is the
// message's id, the causal key exporters group a message's lifetime by.
func (l *Log) AddMsg(kind Kind, node int, msg, subject, format string, args ...any) {
	l.record(kind, node, msg, subject, 0, format, args...)
}

// AddMsgSeq is AddMsg with an event sequence number (Event.Seq) attached —
// the recorder stamps KindPublish events with their acceptance-order
// position through this.
func (l *Log) AddMsgSeq(kind Kind, node int, msg, subject string, seq uint64, format string, args ...any) {
	l.record(kind, node, msg, subject, seq, format, args...)
}

func (l *Log) record(kind Kind, node int, msg, subject string, seq uint64, format string, args ...any) {
	if l == nil || !l.enabled {
		return
	}
	e := Event{Kind: kind, Node: node, Subject: subject, Msg: msg, Seq: seq}
	if l.clock != nil {
		e.At = l.clock()
	}
	// The filter runs before Detail exists, so a rejected event never pays
	// for formatting — unless an observer is installed, which must see the
	// formatted event whatever the retention filter decides.
	keep := l.filter == nil || l.filter(e)
	if !keep && l.observer == nil {
		return
	}
	if len(args) == 0 {
		e.Detail = format
	} else {
		e.Detail = fmt.Sprintf(format, args...)
	}
	if l.observer != nil {
		if l.obsCap > 0 {
			l.obsBuf = append(l.obsBuf, e)
			if len(l.obsBuf) >= l.obsCap {
				l.FlushObservers()
			}
		} else {
			l.observer(e)
		}
	}
	if !keep {
		return
	}
	l.append(e)
	if l.sink != nil {
		fmt.Fprintln(l.sink, e)
	}
}

// append stores e, honoring the flight-recorder bound.
func (l *Log) append(e Event) {
	if l.limit <= 0 || len(l.events) < l.limit {
		l.events = append(l.events, e)
		return
	}
	l.events[l.start] = e
	l.start++
	if l.start == l.limit {
		l.start = 0
	}
	l.wrapped = true
	l.dropped++
}

// each calls f for every recorded event in order, without allocating.
func (l *Log) each(f func(e *Event)) {
	if l == nil {
		return
	}
	n := len(l.events)
	for i := 0; i < n; i++ {
		idx := i
		if l.wrapped {
			idx = (l.start + i) % n
		}
		f(&l.events[idx])
	}
}

// ordered appends the recorded events to dst in chronological order.
func (l *Log) ordered(dst []Event) []Event {
	l.each(func(e *Event) { dst = append(dst, *e) })
	return dst
}

// Events returns all recorded events in order. Until the flight-recorder
// ring wraps this is the backing slice (no copy); after wrapping it is a
// fresh ordered copy.
func (l *Log) Events() []Event {
	if l == nil {
		return nil
	}
	if !l.wrapped {
		return l.events
	}
	return l.ordered(make([]Event, 0, len(l.events)))
}

// OfKind returns the recorded events of one kind.
func (l *Log) OfKind(k Kind) []Event {
	if l == nil {
		return nil
	}
	var out []Event
	l.each(func(e *Event) {
		if e.Kind == k {
			out = append(out, *e)
		}
	})
	return out
}

// Count returns how many events of kind k were recorded.
func (l *Log) Count(k Kind) int {
	n := 0
	l.each(func(e *Event) {
		if e.Kind == k {
			n++
		}
	})
	return n
}

// CountSubject returns how many events of kind k mention subject.
func (l *Log) CountSubject(k Kind, subject string) int {
	n := 0
	l.each(func(e *Event) {
		if e.Kind == k && e.Subject == subject {
			n++
		}
	})
	return n
}

// Contains reports whether any event of kind k has a detail containing s.
func (l *Log) Contains(k Kind, s string) bool {
	found := false
	l.each(func(e *Event) {
		if !found && e.Kind == k && strings.Contains(e.Detail, s) {
			found = true
		}
	})
	return found
}

// Reset discards recorded events (the flight-recorder bound stays).
func (l *Log) Reset() {
	if l != nil {
		l.events = l.events[:0]
		l.start, l.wrapped, l.dropped = 0, false, 0
	}
}

// Dump writes every recorded event to w.
func (l *Log) Dump(w io.Writer) {
	l.each(func(e *Event) { fmt.Fprintln(w, e) })
}
