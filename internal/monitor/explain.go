package monitor

import (
	"fmt"
	"io"
	"strings"

	"publishing/internal/trace"
)

// Explain writes a causal post-mortem for one message: every recorded trace
// event carrying the id, in virtual-time order — send, retransmissions,
// medium tap, recorder publish (with its acceptance-order position),
// delivery, end-to-end ack, recovery replays — followed by a lifetime
// summary and an exactly-once verdict. It returns the matching events so
// callers can export them as a single-message Chrome trace
// (trace.WriteChrome); nil means the id never appears in events (the ring
// may have dropped it, or detailed tracing was off).
func Explain(w io.Writer, events []trace.Event, msgID string) []trace.Event {
	var out []trace.Event
	for _, e := range events {
		if e.Msg == msgID {
			out = append(out, e)
		}
	}
	if len(out) == 0 {
		fmt.Fprintf(w, "no trace events mention message %s — raise the flight-recorder bound or enable detailed tracing\n", msgID)
		return nil
	}

	fmt.Fprintf(w, "message %s: %d events, t=%v … t=%v\n", msgID, len(out), out[0].At, out[len(out)-1].At)
	var freshSends, retrans, delivered, published, replays, acks int
	gaveUp := false
	for _, e := range out {
		switch e.Kind {
		case trace.KindSend:
			if strings.HasPrefix(e.Detail, "retransmit") {
				retrans++
			} else {
				freshSends++
			}
		case trace.KindDeliver:
			delivered++
		case trace.KindPublish:
			published++
		case trace.KindReplay:
			replays++
		case trace.KindAck:
			acks++
		case trace.KindGiveUp:
			gaveUp = true
		}
		fmt.Fprintf(w, "  %12v %-14s node=%-2d %-14s %s\n", e.At, e.Kind, e.Node, e.Subject, e.Detail)
	}

	fmt.Fprintf(w, "lifetime: sends=%d retransmits=%d published=%d delivered=%d replays=%d acks=%d\n",
		freshSends, retrans, published, delivered, replays, acks)
	switch {
	case gaveUp && delivered == 0:
		fmt.Fprintln(w, "verdict: LOST — the sender exhausted its retry budget and no delivery was observed")
	case delivered == 0:
		fmt.Fprintln(w, "verdict: never delivered (still in flight, or suppressed)")
	case delivered > 1+replays:
		fmt.Fprintf(w, "verdict: DUPLICATE — delivered %d times with only %d replay licenses\n", delivered, replays)
	case replays > 0:
		fmt.Fprintf(w, "verdict: delivered exactly once per license (%d original + %d replayed)\n", delivered-replays, replays)
	default:
		fmt.Fprintln(w, "verdict: delivered exactly once")
	}
	return out
}
