// Package monitor checks the paper's §5 reliability claims online, while a
// simulation runs, instead of post-quiescence the way internal/chaos does.
// It subscribes to the trace event stream (trace.Log.SetObserver) and keeps
// per-message and per-stream state, so a violation is flagged at the virtual
// timestamp of the violating event — the moment a duplicate lands, an
// acceptance order goes backwards, or a replay draws on a message that was
// never published — minutes of virtual time before the chaos checker would
// see it.
//
// Two invariants the post-quiescence checker cannot express at all become
// checkable here, because the monitor sees give-up and re-execution events
// in causal order (ROADMAP "carried forward" items):
//
//   - reexec-output: a duplicated delivery whose extra copy traces back to a
//     fresh (non-retransmission) resend after the sender recovered — output
//     re-executed past the suppression window escaping to the world;
//   - giveup-inference: the recorder's cumulative-ack inference promoting a
//     message whose sender had exhausted its retry budget and whose delivery
//     was never observed ("lost then wrongly inferred", latent replay-basis
//     corruption even when the run otherwise passes).
//
// On the same stream the monitor tracks virtual-time SLOs (publish→deliver
// and publish→stable latency histograms, exported through the cluster's
// metrics registry with p50/p99/p999 quantiles) and runs a stall detector: a
// periodic virtual-time tick that fires a diagnostic when no forward
// progress happens on a nonempty queue for a configurable window.
//
// The monitor is passive: it never mutates simulation state, draws no
// randomness, and its report is a deterministic function of the event
// stream — same seed, byte-identical report (asserted by tests).
package monitor

import (
	"fmt"
	"io"
	"sort"
	"strings"

	"publishing/internal/metrics"
	"publishing/internal/simtime"
	"publishing/internal/trace"
)

// Invariant names, shared with the chaos cross-check and reports.
const (
	InvExactlyOnce     = "exactly-once"
	InvAcceptanceOrder = "acceptance-order"
	InvReplayBasis     = "replay-basis"
	InvReexecOutput    = "reexec-output"
	InvGiveupInference = "giveup-inference"
	InvShardOwnership  = "shard-ownership"
)

// Config tunes a Monitor.
type Config struct {
	// StallWindow is how long (virtual) forward progress may pause on a
	// nonempty queue before the stall detector fires (default 10 s).
	StallWindow simtime.Time
	// QueueProbe, when set, reports the total queued-message count across
	// the system and a short human-readable depth description; the stall
	// detector calls it only when progress has already paused. The cluster
	// wires this to its kernel queue-depth gauges.
	QueueProbe func() (queued int64, depths string)
	// Metrics, when set, receives the SLO latency histograms (node -1,
	// subsystem "monitor").
	Metrics *metrics.Registry
	// ShardOwner, when set (sharded recorder clusters), reports whether the
	// given node may act — replay, start or finish a recovery — on the given
	// process stream. The cluster wires it to the shard map: recorder nodes
	// answer per their replica set, every other node is unconstrained. A
	// false answer is the shard-ownership violation: a recorder touching a
	// stream outside its shards means the union invariant no longer bounds
	// what any one recorder's loss can take down.
	ShardOwner func(node int, proc string) bool
}

// DefaultStallWindow is the stall detector's default virtual window.
const DefaultStallWindow = 10 * simtime.Second

// Violation is one online invariant failure, stamped with the virtual time
// of the event that violated it.
type Violation struct {
	At        simtime.Time
	Invariant string
	// Msg is the message id involved (the causal key), when there is one.
	Msg    string
	Detail string
}

func (v Violation) String() string {
	if v.Msg != "" {
		return fmt.Sprintf("t=%v %s %s: %s", v.At, v.Invariant, v.Msg, v.Detail)
	}
	return fmt.Sprintf("t=%v %s: %s", v.At, v.Invariant, v.Detail)
}

// Stall is one stall-detector diagnostic. Stalls are diagnostics, not
// violations: a partition or a crashed node legitimately pauses progress.
type Stall struct {
	At     simtime.Time
	Detail string
}

func (s Stall) String() string { return fmt.Sprintf("t=%v stall: %s", s.At, s.Detail) }

// msgState is what the monitor remembers about one message id.
type msgState struct {
	firstSendAt simtime.Time
	haveSend    bool
	// freshSends counts non-retransmission KindSend events; sendRecGen is
	// the sender's recovery count at the first of them. A later fresh send
	// under a higher recovery count is a re-executed output.
	freshSends int
	sendRecGen int
	reexecSend bool
	delivered  int
	replays    int
	gaveUp     bool
	inferred   bool
	dupFlagged bool
	m5Flagged  bool
	stableSeen bool
}

// arrKey identifies one acceptance-order stream: the recorder node that
// assigned the order and the destination process.
type arrKey struct {
	node int
	proc string
}

// pubKey identifies one published message in one destination stream.
type pubKey struct {
	proc string
	msg  string
}

// Monitor is the online invariant checker. Create with New, subscribe via
// trace.Log.SetObserver(m.Observe), and drive the stall detector with
// periodic Tick calls on the virtual clock. Not safe for concurrent use —
// the simulation is single-threaded by design.
type Monitor struct {
	cfg Config
	now func() simtime.Time

	msgs       map[string]*msgState
	arr        map[arrKey]uint64
	arrSeen    map[arrKey]bool
	published  map[pubKey]bool
	basisMiss  map[pubKey]bool
	recoveries map[string]int
	inflight   map[string]struct{}
	ownFlagged map[arrKey]bool

	violations []Violation
	stalls     []Stall

	// progress advances on deliveries, publishes, replays, and acks; the
	// stall detector watches it stand still.
	lastProgress   uint64
	lastProgressAt simtime.Time
	stalled        bool

	delivLat  *metrics.Histogram
	stableLat *metrics.Histogram

	// event counts for the report.
	events, sends, deliveries, publishes, replays, acks, giveups, progress uint64
}

// New builds a monitor reading virtual time from now.
func New(cfg Config, now func() simtime.Time) *Monitor {
	if cfg.StallWindow <= 0 {
		cfg.StallWindow = DefaultStallWindow
	}
	m := &Monitor{
		cfg:        cfg,
		now:        now,
		msgs:       make(map[string]*msgState),
		arr:        make(map[arrKey]uint64),
		arrSeen:    make(map[arrKey]bool),
		published:  make(map[pubKey]bool),
		basisMiss:  make(map[pubKey]bool),
		recoveries: make(map[string]int),
		inflight:   make(map[string]struct{}),
		ownFlagged: make(map[arrKey]bool),
	}
	if cfg.Metrics != nil {
		m.delivLat = cfg.Metrics.Histogram(-1, "monitor", "deliver_latency_ns")
		m.stableLat = cfg.Metrics.Histogram(-1, "monitor", "stable_latency_ns")
	}
	return m
}

// StallWindow returns the configured stall window.
func (m *Monitor) StallWindow() simtime.Time { return m.cfg.StallWindow }

func (m *Monitor) violate(at simtime.Time, inv, msg, format string, args ...any) {
	m.violations = append(m.violations, Violation{
		At: at, Invariant: inv, Msg: msg, Detail: fmt.Sprintf(format, args...),
	})
}

func (m *Monitor) state(id string) *msgState {
	ms := m.msgs[id]
	if ms == nil {
		ms = &msgState{}
		m.msgs[id] = ms
	}
	return ms
}

// senderOf extracts the sending process from a message id ("pN.L#S").
func senderOf(msgID string) string {
	if i := strings.IndexByte(msgID, '#'); i >= 0 {
		return msgID[:i]
	}
	return msgID
}

// Observe consumes one trace event. It is the callback to install with
// trace.Log.SetObserver.
func (m *Monitor) Observe(e trace.Event) {
	m.events++
	switch e.Kind {
	case trace.KindSend:
		if e.Msg == "" {
			return
		}
		m.sends++
		ms := m.state(e.Msg)
		if strings.HasPrefix(e.Detail, "retransmit") {
			return
		}
		ms.freshSends++
		if ms.freshSends == 1 {
			ms.firstSendAt = e.At
			ms.haveSend = true
			ms.sendRecGen = m.recoveries[senderOf(e.Msg)]
			m.inflight[e.Msg] = struct{}{}
		} else if m.recoveries[senderOf(e.Msg)] > ms.sendRecGen {
			// A fresh (not retransmitted) copy of an already-sent message,
			// emitted after its sender recovered: the send-sequence
			// suppression window let a re-executed output escape. If it
			// also gets delivered, the duplicate is attributed to
			// re-execution (reexec-output) rather than transport failure.
			ms.reexecSend = true
		}

	case trace.KindDeliver:
		if e.Msg == "" {
			return
		}
		m.deliveries++
		m.noteProgress(e.At)
		ms := m.state(e.Msg)
		ms.delivered++
		if ms.delivered == 1 && ms.haveSend {
			m.delivLat.Observe(int64(e.At - ms.firstSendAt))
		}
		if ms.delivered > 1+ms.replays && !ms.dupFlagged {
			ms.dupFlagged = true
			inv := InvExactlyOnce
			if ms.reexecSend {
				inv = InvReexecOutput
			}
			m.violate(e.At, inv, e.Msg, "delivered %d with %d replay licenses (to %s)",
				ms.delivered, ms.replays, e.Subject)
		}

	case trace.KindPublish:
		if e.Msg == "" {
			return
		}
		m.publishes++
		m.noteProgress(e.At)
		k := arrKey{node: e.Node, proc: e.Subject}
		if m.arrSeen[k] && e.Seq <= m.arr[k] {
			m.violate(e.At, InvAcceptanceOrder, e.Msg,
				"stream %s on node %d: acceptance seq %d after %d", e.Subject, e.Node, e.Seq, m.arr[k])
		}
		m.arr[k] = e.Seq
		m.arrSeen[k] = true
		m.published[pubKey{proc: e.Subject, msg: e.Msg}] = true
		ms := m.state(e.Msg)
		if !ms.inferred && strings.Contains(e.Detail, "inferred from later ack") {
			ms.inferred = true
			m.checkInference(e.At, e.Msg, ms)
		}
		if ms.haveSend && m.stableLat != nil && m.publishedOnce(ms) {
			m.stableLat.Observe(int64(e.At - ms.firstSendAt))
		}

	case trace.KindReplay:
		if e.Msg == "" {
			// Batch-level replay events (no message id) come from the
			// recorder driving the transfer; per-record events carry ids and
			// come from the receiving kernel, which owns no shards.
			m.checkOwnership(e)
			return
		}
		m.replays++
		m.noteProgress(e.At)
		ms := m.state(e.Msg)
		ms.replays++
		pk := pubKey{proc: e.Subject, msg: e.Msg}
		if !m.published[pk] && !m.basisMiss[pk] {
			m.basisMiss[pk] = true
			m.violate(e.At, InvReplayBasis, e.Msg,
				"replayed to %s but never observed published for that stream", e.Subject)
		}

	case trace.KindAck:
		if e.Msg == "" {
			return
		}
		m.acks++
		m.noteProgress(e.At)
		delete(m.inflight, e.Msg)

	case trace.KindGiveUp:
		if e.Msg == "" {
			return
		}
		m.giveups++
		delete(m.inflight, e.Msg)
		ms := m.state(e.Msg)
		if !ms.gaveUp {
			ms.gaveUp = true
			m.checkInference(e.At, e.Msg, ms)
		}

	case trace.KindRecoveryStart:
		m.checkOwnership(e)
		m.recoveries[e.Subject]++

	case trace.KindRecoveryDone:
		m.checkOwnership(e)

	case trace.KindCrash:
		if e.Subject == "recorder" {
			// The recorder's acceptance counters die with it; the rebuilt
			// database restarts streams from the persisted frontier, so the
			// monotonicity watermark resets per stream on that node.
			for k := range m.arrSeen {
				if k.node == e.Node {
					delete(m.arrSeen, k)
					delete(m.arr, k)
				}
			}
		}
	}
}

// publishedOnce reports whether this publish is the message's first — the
// stable-latency observation must not repeat when several recorders (or an
// inference plus the direct tap) publish the same message.
func (m *Monitor) publishedOnce(ms *msgState) bool {
	// state is tracked per message, so count via a dedicated bit.
	if ms.stableSeen {
		return false
	}
	ms.stableSeen = true
	return true
}

// checkOwnership fires the shard-ownership invariant when a node acts on a
// stream outside its shard replica set (sharded clusters only; flagged once
// per node/stream pair so one confused recorder doesn't flood the report).
func (m *Monitor) checkOwnership(e trace.Event) {
	if m.cfg.ShardOwner == nil || m.cfg.ShardOwner(e.Node, e.Subject) {
		return
	}
	k := arrKey{node: e.Node, proc: e.Subject}
	if m.ownFlagged[k] {
		return
	}
	m.ownFlagged[k] = true
	m.violate(e.At, InvShardOwnership, "",
		"node %d acted on stream %s outside its shard replica set", e.Node, e.Subject)
}

// checkInference fires the giveup-inference invariant once both halves of
// the bad pattern are in: the sender exhausted its retries on this message
// and the recorder promoted it into the replay basis by inference, with no
// delivery ever observed. Either order of the two events is caught.
func (m *Monitor) checkInference(at simtime.Time, id string, ms *msgState) {
	if ms.gaveUp && ms.inferred && ms.delivered == 0 && !ms.m5Flagged {
		ms.m5Flagged = true
		m.violate(at, InvGiveupInference, id,
			"published by cumulative-ack inference, but the sender gave up and no delivery was ever observed")
	}
}

// noteProgress records forward progress at virtual time at.
func (m *Monitor) noteProgress(at simtime.Time) {
	m.progress++
	m.lastProgressAt = at
	m.stalled = false
}

// Tick runs one stall-detector check; the cluster schedules it on the
// virtual clock (twice per window). It reads state and appends diagnostics —
// it never mutates simulation state, so arming the tick cannot perturb a
// deterministic run.
func (m *Monitor) Tick() {
	now := m.now()
	if m.progress != m.lastProgress {
		m.lastProgress = m.progress
		return
	}
	if m.stalled || now-m.lastProgressAt < m.cfg.StallWindow {
		return
	}
	queued, depths := int64(0), ""
	if m.cfg.QueueProbe != nil {
		queued, depths = m.cfg.QueueProbe()
	}
	if queued == 0 && len(m.inflight) == 0 {
		return
	}
	m.stalled = true
	ids := make([]string, 0, len(m.inflight))
	for id := range m.inflight {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	if len(ids) > 8 {
		ids = append(ids[:8], fmt.Sprintf("… (%d total)", len(m.inflight)))
	}
	detail := fmt.Sprintf("no forward progress since t=%v (window %v): queued=%d", m.lastProgressAt, m.cfg.StallWindow, queued)
	if depths != "" {
		detail += " [" + depths + "]"
	}
	if len(ids) > 0 {
		detail += "; in-flight: " + strings.Join(ids, ", ")
	}
	m.stalls = append(m.stalls, Stall{At: now, Detail: detail})
}

// Violations returns every invariant violation flagged so far, in event
// order.
func (m *Monitor) Violations() []Violation {
	if m == nil {
		return nil
	}
	return m.violations
}

// Stalls returns the stall diagnostics fired so far.
func (m *Monitor) Stalls() []Stall {
	if m == nil {
		return nil
	}
	return m.stalls
}

// DupViolations counts the violations in the duplicate-delivery family
// (exactly-once and its reexec-output attribution) — the family the chaos
// checker's post-quiescence exactly-once invariant must agree with.
func (m *Monitor) DupViolations() int {
	n := 0
	for _, v := range m.Violations() {
		if v.Invariant == InvExactlyOnce || v.Invariant == InvReexecOutput {
			n++
		}
	}
	return n
}

// Passed reports whether no invariant was violated (stalls don't count).
func (m *Monitor) Passed() bool { return m == nil || len(m.violations) == 0 }

// WriteReport writes the deterministic monitor report: event counts, SLO
// quantiles, violations, and stall diagnostics. Same seed ⇒ byte-identical
// report (asserted by tests).
func (m *Monitor) WriteReport(w io.Writer) error {
	if m == nil {
		_, err := fmt.Fprintln(w, "monitor: disabled")
		return err
	}
	fmt.Fprintf(w, "monitor events=%d sends=%d deliveries=%d publishes=%d replays=%d acks=%d giveups=%d\n",
		m.events, m.sends, m.deliveries, m.publishes, m.replays, m.acks, m.giveups)
	writeSLO := func(name string, h *metrics.Histogram) {
		if h.Count() == 0 {
			fmt.Fprintf(w, "slo %-16s n=0\n", name)
			return
		}
		fmt.Fprintf(w, "slo %-16s p50=%v p99=%v p999=%v n=%d\n", name,
			simtime.Time(h.Quantile(0.5)), simtime.Time(h.Quantile(0.99)),
			simtime.Time(h.Quantile(0.999)), h.Count())
	}
	if m.delivLat != nil {
		writeSLO("publish→deliver", m.delivLat)
		writeSLO("publish→stable", m.stableLat)
	}
	fmt.Fprintf(w, "violations=%d\n", len(m.violations))
	for _, v := range m.violations {
		fmt.Fprintf(w, "  VIOLATION %s\n", v)
	}
	fmt.Fprintf(w, "stalls=%d\n", len(m.stalls))
	for _, s := range m.stalls {
		fmt.Fprintf(w, "  %s\n", s)
	}
	if _, err := fmt.Fprintf(w, "monitor verdict: %s\n", verdict(len(m.violations))); err != nil {
		return err
	}
	return nil
}

func verdict(violations int) string {
	if violations == 0 {
		return "PASS"
	}
	return fmt.Sprintf("FAIL (%d violations)", violations)
}

// Report returns WriteReport's output as a string.
func (m *Monitor) Report() string {
	var b strings.Builder
	_ = m.WriteReport(&b)
	return b.String()
}
