package monitor

import (
	"strings"
	"testing"

	"publishing/internal/metrics"
	"publishing/internal/simtime"
	"publishing/internal/trace"
)

// newTest returns a monitor fed by a settable fake clock.
func newTest(cfg Config) (*Monitor, *simtime.Time) {
	now := new(simtime.Time)
	return New(cfg, func() simtime.Time { return *now }), now
}

func ev(at simtime.Time, kind trace.Kind, node int, msg, subject, detail string) trace.Event {
	return trace.Event{At: at, Kind: kind, Node: node, Msg: msg, Subject: subject, Detail: detail}
}

func wantViolations(t *testing.T, m *Monitor, invs ...string) {
	t.Helper()
	got := m.Violations()
	if len(got) != len(invs) {
		t.Fatalf("got %d violations, want %d:\n%s", len(got), len(invs), m.Report())
	}
	for i, inv := range invs {
		if got[i].Invariant != inv {
			t.Fatalf("violation %d is %s, want %s: %s", i, got[i].Invariant, inv, got[i])
		}
	}
}

func TestExactlyOnceDuplicateFlaggedAtDeliveryTime(t *testing.T) {
	m, _ := newTest(Config{})
	m.Observe(ev(100, trace.KindSend, 0, "p0.1#1", "p1.1", "guaranteed"))
	m.Observe(ev(200, trace.KindDeliver, 1, "p0.1#1", "p1.1", "queued"))
	wantViolations(t, m)
	m.Observe(ev(350, trace.KindDeliver, 1, "p0.1#1", "p1.1", "queued"))
	wantViolations(t, m, InvExactlyOnce)
	if v := m.Violations()[0]; v.At != 350 {
		t.Fatalf("violation stamped t=%v, want the duplicate delivery's t=350", v.At)
	}
	if m.DupViolations() != 1 {
		t.Fatalf("DupViolations = %d, want 1", m.DupViolations())
	}
	// A third copy must not be flagged again: one violation per message.
	m.Observe(ev(400, trace.KindDeliver, 1, "p0.1#1", "p1.1", "queued"))
	wantViolations(t, m, InvExactlyOnce)
}

func TestReplayLicensesExtraDelivery(t *testing.T) {
	m, _ := newTest(Config{})
	m.Observe(ev(100, trace.KindSend, 0, "p0.1#1", "p1.1", "guaranteed"))
	m.Observe(ev(200, trace.KindDeliver, 1, "p0.1#1", "p1.1", "queued"))
	m.Observe(ev(300, trace.KindPublish, 3, "p0.1#1", "p1.1", "published"))
	// Recovery replays the message: the license precedes the re-delivery, so
	// the second delivery is legitimate.
	m.Observe(ev(900, trace.KindReplay, 1, "p0.1#1", "p1.1", "replayed"))
	m.Observe(ev(950, trace.KindDeliver, 1, "p0.1#1", "p1.1", "queued"))
	wantViolations(t, m)
	// A second delivery of the same replayed copy is again a duplicate.
	m.Observe(ev(980, trace.KindDeliver, 1, "p0.1#1", "p1.1", "queued"))
	wantViolations(t, m, InvExactlyOnce)
}

func TestRetransmitDoesNotCountAsFreshSend(t *testing.T) {
	m, _ := newTest(Config{})
	m.Observe(ev(100, trace.KindSend, 0, "p0.1#1", "p1.1", "guaranteed"))
	m.Observe(ev(150, trace.KindSend, 0, "p0.1#1", "p1.1", "retransmit #2"))
	m.Observe(ev(160, trace.KindRecoveryStart, 3, "", "p0.1", "recovering"))
	m.Observe(ev(200, trace.KindSend, 0, "p0.1#1", "p1.1", "retransmit #3"))
	m.Observe(ev(300, trace.KindDeliver, 1, "p0.1#1", "p1.1", "queued"))
	m.Observe(ev(350, trace.KindDeliver, 1, "p0.1#1", "p1.1", "queued"))
	// The duplicate is a transport failure (exactly-once), not re-executed
	// output: no fresh send followed the sender's recovery.
	wantViolations(t, m, InvExactlyOnce)
}

func TestReexecOutputAttribution(t *testing.T) {
	m, _ := newTest(Config{})
	m.Observe(ev(100, trace.KindSend, 0, "p0.1#1", "p1.1", "guaranteed"))
	m.Observe(ev(200, trace.KindDeliver, 1, "p0.1#1", "p1.1", "queued"))
	// The sender's node dies and is re-executed; the suppression window
	// fails and the same message id goes out fresh again.
	m.Observe(ev(5000, trace.KindRecoveryStart, 3, "", "p0.1", "recovering"))
	m.Observe(ev(6000, trace.KindSend, 0, "p0.1#1", "p1.1", "guaranteed"))
	m.Observe(ev(6100, trace.KindDeliver, 1, "p0.1#1", "p1.1", "queued"))
	wantViolations(t, m, InvReexecOutput)
}

func TestAcceptanceOrderMonotonic(t *testing.T) {
	m, _ := newTest(Config{})
	pub := func(at simtime.Time, seq uint64) {
		e := ev(at, trace.KindPublish, 3, "p0.1#1", "p1.1", "published")
		e.Seq = seq
		m.Observe(e)
	}
	pub(100, 1)
	pub(200, 2)
	pub(300, 5) // gaps are fine; only regressions violate
	wantViolations(t, m)
	pub(400, 3)
	wantViolations(t, m, InvAcceptanceOrder)
	// A recorder crash resets that node's watermarks: the rebuilt database
	// restarts streams, so a low seq after the crash is legitimate.
	m.Observe(ev(500, trace.KindCrash, 3, "", "recorder", "recorder crash"))
	pub(600, 1)
	wantViolations(t, m, InvAcceptanceOrder)
}

func TestReplayBasisCoverage(t *testing.T) {
	m, _ := newTest(Config{})
	m.Observe(ev(100, trace.KindPublish, 3, "p0.1#1", "p1.1", "published"))
	m.Observe(ev(900, trace.KindReplay, 1, "p0.1#1", "p1.1", "replayed"))
	wantViolations(t, m)
	// Replaying a message never observed published for that stream is a
	// corrupt replay basis; flagged once per (stream, message).
	m.Observe(ev(950, trace.KindReplay, 1, "p0.1#2", "p1.1", "replayed"))
	m.Observe(ev(960, trace.KindReplay, 1, "p0.1#2", "p1.1", "replayed"))
	wantViolations(t, m, InvReplayBasis)
}

func TestGiveupInferenceEitherOrder(t *testing.T) {
	inferred := "published (#4 in stream, inferred from later ack)"
	// Give-up first, inference second.
	m, _ := newTest(Config{})
	m.Observe(ev(100, trace.KindSend, 0, "p0.1#1", "p1.1", "guaranteed"))
	m.Observe(ev(5000, trace.KindGiveUp, 0, "p0.1#1", "p1.1", "gave up after 600 attempts"))
	m.Observe(ev(6000, trace.KindPublish, 3, "p0.1#1", "p1.1", inferred))
	wantViolations(t, m, InvGiveupInference)

	// Inference first, give-up second.
	m2, _ := newTest(Config{})
	m2.Observe(ev(100, trace.KindSend, 0, "p0.1#1", "p1.1", "guaranteed"))
	m2.Observe(ev(4000, trace.KindPublish, 3, "p0.1#1", "p1.1", inferred))
	m2.Observe(ev(5000, trace.KindGiveUp, 0, "p0.1#1", "p1.1", "gave up after 600 attempts"))
	wantViolations(t, m2, InvGiveupInference)

	// A delivery anywhere clears the premise: the message was not lost.
	m3, _ := newTest(Config{})
	m3.Observe(ev(100, trace.KindSend, 0, "p0.1#1", "p1.1", "guaranteed"))
	m3.Observe(ev(200, trace.KindDeliver, 1, "p0.1#1", "p1.1", "queued"))
	m3.Observe(ev(4000, trace.KindPublish, 3, "p0.1#1", "p1.1", inferred))
	m3.Observe(ev(5000, trace.KindGiveUp, 0, "p0.1#1", "p1.1", "gave up after 600 attempts"))
	wantViolations(t, m3)
}

func TestStallDetector(t *testing.T) {
	queued := int64(0)
	m, now := newTest(Config{
		StallWindow: 10 * simtime.Second,
		QueueProbe:  func() (int64, string) { return queued, "n1=2" },
	})
	*now = simtime.Second
	m.Observe(ev(*now, trace.KindDeliver, 1, "p0.1#1", "p1.1", "queued"))
	m.Tick() // records the progress baseline

	// Progress pauses but queues are empty and nothing is in flight (the
	// delivery cleared p0.1#1? no — deliver does not clear inflight; only a
	// send puts it there): quiet idleness is not a stall.
	*now += 20 * simtime.Second
	m.Tick()
	if len(m.Stalls()) != 0 {
		t.Fatalf("idle system reported a stall: %v", m.Stalls())
	}

	// Now messages are stuck in a nonempty queue past the window.
	queued = 2
	*now += 20 * simtime.Second
	m.Tick()
	if len(m.Stalls()) != 1 {
		t.Fatalf("got %d stalls, want 1", len(m.Stalls()))
	}
	if s := m.Stalls()[0]; !strings.Contains(s.Detail, "queued=2") || !strings.Contains(s.Detail, "n1=2") {
		t.Fatalf("stall diagnostic missing queue depths: %s", s)
	}
	// The same episode must not re-fire every tick.
	*now += 20 * simtime.Second
	m.Tick()
	if len(m.Stalls()) != 1 {
		t.Fatalf("stall episode re-fired: %v", m.Stalls())
	}
	// Fresh progress arms a new episode.
	m.Observe(ev(*now, trace.KindDeliver, 1, "p0.1#2", "p1.1", "queued"))
	m.Tick()
	*now += 20 * simtime.Second
	m.Tick()
	if len(m.Stalls()) != 2 {
		t.Fatalf("got %d stalls after a second pause, want 2", len(m.Stalls()))
	}
	// Stalls are diagnostics: the run still passes.
	if !m.Passed() {
		t.Fatal("stalls must not fail the monitor verdict")
	}
}

func TestSLOHistogramsAndReport(t *testing.T) {
	reg := metrics.NewRegistry()
	m, _ := newTest(Config{Metrics: reg})
	pub := func(at simtime.Time, seq uint64) {
		e := ev(at, trace.KindPublish, 3, "p0.1#1", "p1.1", "published")
		e.Seq = seq
		m.Observe(e)
	}
	m.Observe(ev(1000, trace.KindSend, 0, "p0.1#1", "p1.1", "guaranteed"))
	m.Observe(ev(3000, trace.KindDeliver, 1, "p0.1#1", "p1.1", "queued"))
	pub(5000, 1)
	// Only the first delivery and first publish observe latency.
	m.Observe(ev(9000, trace.KindReplay, 1, "p0.1#1", "p1.1", "replayed"))
	m.Observe(ev(9100, trace.KindDeliver, 1, "p0.1#1", "p1.1", "queued"))
	pub(9200, 2)

	if n := reg.Histogram(-1, "monitor", "deliver_latency_ns").Count(); n != 1 {
		t.Fatalf("deliver_latency_ns count = %d, want 1", n)
	}
	if n := reg.Histogram(-1, "monitor", "stable_latency_ns").Count(); n != 1 {
		t.Fatalf("stable_latency_ns count = %d, want 1", n)
	}
	rep := m.Report()
	for _, want := range []string{"publish→deliver", "publish→stable", "monitor verdict: PASS", "violations=0"} {
		if !strings.Contains(rep, want) {
			t.Fatalf("report missing %q:\n%s", want, rep)
		}
	}
}

func TestNilMonitorIsSafe(t *testing.T) {
	var m *Monitor
	if !m.Passed() || m.Violations() != nil || m.Stalls() != nil {
		t.Fatal("nil monitor accessors must be inert")
	}
	if got := m.Report(); !strings.Contains(got, "disabled") {
		t.Fatalf("nil monitor report = %q", got)
	}
}
