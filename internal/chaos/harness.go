package chaos

import (
	"fmt"

	"publishing/internal/simtime"
)

// Workload is the application-level load a scenario runs, plus how to read
// its results back for invariant checking.
type Workload interface {
	// Done reports whether the workload's expected outputs all arrived.
	Done() bool
	// Output is the ordered application-level output stream.
	Output() []string
	// State returns the canonical final-state snapshot of the recoverable
	// process under test.
	State() ([]byte, error)
}

// Scenario is one assembled system plus its workload and fault targets. A
// BuildFunc must return a fresh, fully deterministic scenario for a seed:
// building twice with the same seed and running identically must produce
// identical results.
type Scenario struct {
	Sys      System
	Work     Workload
	Targets  Targets
	CheckCfg CheckConfig
}

// BuildFunc constructs a scenario for a seed. It is called twice per Run —
// once for the fault-free baseline, once for the faulted run.
type BuildFunc func(seed uint64) Scenario

// Options bounds a harness run.
type Options struct {
	// MaxRun caps how long (virtual) the workload may take to complete.
	MaxRun simtime.Time
	// Grace is the extra virtual time after completion for retransmissions,
	// acks, and recoveries to drain before invariants are checked.
	Grace simtime.Time
	// ArtifactDir, when set, makes Run dump post-mortem artifacts for every
	// failing schedule into a per-schedule directory underneath it: the
	// checker report, the faulted run's trace tail (the flight-recorder ring
	// when one is bound, the full log otherwise), and the final metrics
	// snapshot. Minimization probes never dump — Reproducer clears this
	// before re-running candidates.
	ArtifactDir string
}

// DefaultOptions gives faulted runs four virtual minutes to converge and
// fifteen seconds to drain — generous against the ~10 s fault window, and
// still milliseconds of real time.
func DefaultOptions() Options {
	return Options{MaxRun: 4 * simtime.Minute, Grace: 15 * simtime.Second}
}

// Result is one schedule's verdict.
type Result struct {
	Schedule   Schedule
	Passed     bool
	Violations []Violation
	// Report is the deterministic invariant-checker report: same schedule,
	// byte-identical report.
	Report string
	// Artifacts is the directory post-mortem artifacts were dumped into
	// ("" when the run passed or Options.ArtifactDir was unset).
	Artifacts string
}

// Run executes the full harness cycle for one schedule: a fault-free
// baseline run of the same seed, then the faulted run with detailed tracing,
// then the invariant check after quiescence.
func Run(s Schedule, build BuildFunc, opt Options) Result {
	if opt.MaxRun <= 0 {
		opt = DefaultOptions()
	}

	base := build(s.Seed)
	baseline := runOne(base, opt)

	sc := build(s.Seed)
	// Detailed tracing emits the per-record replay events the exactly-once
	// invariant counts against deliveries. It changes only what is logged,
	// never the execution.
	sc.Sys.Trace().SetDetailed(true)
	Apply(sc.Sys, s, sc.Targets)
	faulted := runOne(sc, opt)

	res := Check(sc.Sys, s, faulted, baseline, sc.CheckCfg)
	r := Result{Schedule: s, Passed: res.Passed(), Violations: res.Violations, Report: res.Report}
	if !r.Passed && opt.ArtifactDir != "" {
		if dir, err := dumpArtifacts(opt.ArtifactDir, sc.Sys, s, res); err == nil {
			r.Artifacts = dir
		}
	}
	return r
}

// runOne drives one scenario to quiescence and collects its outcome.
func runOne(sc Scenario, opt Options) RunOutcome {
	done := sc.Sys.RunUntil(sc.Work.Done, opt.MaxRun)
	sc.Sys.Run(opt.Grace)
	out := RunOutcome{Done: done, Output: sc.Work.Output()}
	if st, err := sc.Work.State(); err == nil {
		out.State = st
	} else {
		out.State = []byte(fmt.Sprintf("state error: %v", err))
	}
	return out
}

// Reproducer minimizes a failing schedule and formats the one-line repro
// instructions a test failure prints: re-running the minimized hex token
// replays the exact failure.
func Reproducer(s Schedule, build BuildFunc, opt Options) string {
	opt.ArtifactDir = "" // probes re-run the failure; don't dump each one
	min := Minimize(s, func(cand Schedule) bool {
		return !Run(cand, build, opt).Passed
	})
	return fmt.Sprintf(
		"failing seed %d; minimized schedule (%d/%d faults):\n%s\nreproduce with: CHAOS_SCHEDULE=%s go test -run TestChaosRepro .",
		s.Seed, len(min.Faults), len(s.Faults), min, min.Hex())
}
