// Package chaos is the simulation-testing layer: a deterministic
// fault-schedule generator plus a system-wide invariant checker that any
// test or fuzz target can wrap around a cluster. From a single seed it
// derives a timed schedule of composable faults — process/node crashes,
// recorder outages, partitions, per-link loss, and bursts of loss,
// duplication, corruption, tap misses, receiver misses, ack-slot errors, and
// store failures — expressed against the injection knobs of internal/lan and
// internal/recorder. After the run quiesces, the checker consumes the trace
// log and metrics registry to assert the paper's global guarantees:
// exactly-once delivery per message, output and state byte-identical to a
// fault-free same-seed run, no orphaned guaranteed messages, and every
// started recovery completed.
//
// The package deliberately does not import the root publishing package (so
// the root test suite can use it); clusters reach it through the structural
// System interface in apply.go.
package chaos

import (
	"encoding/binary"
	"encoding/hex"
	"errors"
	"fmt"
	"strings"

	"publishing/internal/simtime"
)

// Kind enumerates fault types. The zero value is invalid so a zeroed record
// is detectable.
type Kind uint8

const (
	// KindProcCrash crashes the scenario's worker process at At.
	KindProcCrash Kind = iota + 1
	// KindNodeCrash crashes a whole processor (Targets.CrashNodes[A]).
	KindNodeCrash
	// KindRecorderOutage crashes the primary recorder at At and restarts it
	// at At+Dur (§3.3.4: guaranteed traffic suspends meanwhile).
	KindRecorderOutage
	// KindPartition isolates Targets.PartNodes[A] into its own partition
	// group for Dur (§3.6), then heals it back to group 0.
	KindPartition
	// KindLossBurst raises the medium's frame-loss probability for Dur.
	KindLossBurst
	// KindDupBurst raises the medium's duplicate-delivery probability.
	KindDupBurst
	// KindCorruptBurst raises the checksum-corruption probability.
	KindCorruptBurst
	// KindTapMissBurst makes the taps fail to store frames (the medium-level
	// "recorder received incorrectly" fault).
	KindTapMissBurst
	// KindRecvMissBurst raises the per-receiver interface-miss probability.
	KindRecvMissBurst
	// KindAckSlotBurst corrupts the recorder's ack slot after a successful
	// store, forcing retransmits into the recorder's duplicate detection.
	KindAckSlotBurst
	// KindStoreFailBurst raises the recorder's own store-failure probability
	// — the in-model stand-in for stable-storage write faults (the recorder
	// treats a hard store error as beyond the paper's fault model and
	// panics, so chaos injects the equivalent observable failure: the frame
	// is not stored and no ack is published).
	KindStoreFailBurst
	// KindLinkLoss drops frames on one directed link
	// Targets.LinkNodes[A] -> Targets.LinkNodes[B] for Dur.
	KindLinkLoss
	// KindHandoffCrash crashes recorder A%len(recorders) at At, then at
	// At+Dur/2 arms its shard-handoff partner to crash itself mid-transfer
	// (after 1+B%3 chunks) and restarts the first victim — so the restart's
	// handoff pull dies partway through and the requester must fall back to
	// its local basis. Crashed recorders are restarted at At+Dur. On clusters
	// without at least two recorders it degrades to a recorder outage.
	KindHandoffCrash

	kindMax = KindHandoffCrash
)

var kindNames = map[Kind]string{
	KindProcCrash:      "proc-crash",
	KindNodeCrash:      "node-crash",
	KindRecorderOutage: "recorder-outage",
	KindPartition:      "partition",
	KindLossBurst:      "loss-burst",
	KindDupBurst:       "dup-burst",
	KindCorruptBurst:   "corrupt-burst",
	KindTapMissBurst:   "tapmiss-burst",
	KindRecvMissBurst:  "recvmiss-burst",
	KindAckSlotBurst:   "ackslot-burst",
	KindStoreFailBurst: "storefail-burst",
	KindLinkLoss:       "link-loss",
	KindHandoffCrash:   "handoff-crash",
}

func (k Kind) String() string {
	if n, ok := kindNames[k]; ok {
		return n
	}
	return fmt.Sprintf("kind(%d)", uint8(k))
}

// instant reports whether the kind is a point event (Dur unused).
func (k Kind) instant() bool { return k == KindProcCrash || k == KindNodeCrash }

// probCap bounds each kind's effective probability so generated and
// sanitized schedules stay survivable: retransmission and recovery must be
// able to outrun the fault (a 100% loss burst longer than the retry budget
// would make every invariant vacuous).
func probCap(k Kind) float64 {
	switch k {
	case KindLossBurst, KindCorruptBurst, KindRecvMissBurst:
		return 0.25
	case KindTapMissBurst, KindAckSlotBurst, KindStoreFailBurst:
		return 0.3
	case KindDupBurst, KindLinkLoss:
		return 0.5
	default:
		return 0
	}
}

// maxDurMs bounds each kind's duration. Outages and partitions must end well
// inside the watchdog's silence tolerance so the scenario's witness and
// producer nodes are never falsely declared crashed (a witness re-execution
// would legitimately duplicate its external output — see ROADMAP open
// items).
func maxDurMs(k Kind) uint32 {
	switch k {
	case KindRecorderOutage, KindHandoffCrash:
		return 2500
	case KindPartition:
		return 2000
	default:
		return 3000
	}
}

// Fault is one scheduled fault. Fields are kept in their encoded units
// (milliseconds, scaled probability bytes) so Encode/Decode round-trip
// exactly and fuzzers mutate the same representation tests minimize.
type Fault struct {
	Kind  Kind
	AtMs  uint32 // fault start, ms after schedule start
	DurMs uint32 // duration for non-instant kinds, ms
	A, B  uint8  // kind-specific operands (target indices)
	Prob  uint8  // scaled probability: effective = Prob/255 * probCap(Kind)
}

// At returns the fault's start offset in virtual time.
func (f Fault) At() simtime.Time { return simtime.Time(f.AtMs) * simtime.Millisecond }

// Dur returns the fault's duration (zero for instant kinds).
func (f Fault) Dur() simtime.Time {
	if f.Kind.instant() {
		return 0
	}
	return simtime.Time(f.DurMs) * simtime.Millisecond
}

// EffProb returns the effective injection probability.
func (f Fault) EffProb() float64 { return float64(f.Prob) / 255 * probCap(f.Kind) }

func (f Fault) String() string {
	switch {
	case f.Kind.instant():
		return fmt.Sprintf("%s at=%dms a=%d", f.Kind, f.AtMs, f.A)
	case f.Kind == KindRecorderOutage:
		return fmt.Sprintf("%s at=%dms dur=%dms", f.Kind, f.AtMs, f.DurMs)
	case f.Kind == KindHandoffCrash:
		return fmt.Sprintf("%s at=%dms dur=%dms a=%d b=%d", f.Kind, f.AtMs, f.DurMs, f.A, f.B)
	case f.Kind == KindPartition:
		return fmt.Sprintf("%s at=%dms dur=%dms a=%d", f.Kind, f.AtMs, f.DurMs, f.A)
	case f.Kind == KindLinkLoss:
		return fmt.Sprintf("%s at=%dms dur=%dms a=%d b=%d p=%.3f", f.Kind, f.AtMs, f.DurMs, f.A, f.B, f.EffProb())
	default:
		return fmt.Sprintf("%s at=%dms dur=%dms p=%.3f", f.Kind, f.AtMs, f.DurMs, f.EffProb())
	}
}

// Schedule is a seed plus its timed faults. The seed drives the cluster's
// randomness; the faults are applied on the virtual clock, so one Schedule
// fully determines an execution.
type Schedule struct {
	Seed   uint64
	Faults []Fault
}

func (s Schedule) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "seed=%d faults=%d", s.Seed, len(s.Faults))
	for _, f := range s.Faults {
		b.WriteString("\n  ")
		b.WriteString(f.String())
	}
	return b.String()
}

const faultLen = 12 // kind(1) at(4) dur(4) a(1) b(1) prob(1)

// Encode serializes the schedule: 8-byte big-endian seed, then one 12-byte
// record per fault. The format is the fuzzing surface of FuzzChaosSchedule.
func (s Schedule) Encode() []byte {
	out := make([]byte, 8+faultLen*len(s.Faults))
	binary.BigEndian.PutUint64(out, s.Seed)
	p := out[8:]
	for _, f := range s.Faults {
		p[0] = byte(f.Kind)
		binary.BigEndian.PutUint32(p[1:5], f.AtMs)
		binary.BigEndian.PutUint32(p[5:9], f.DurMs)
		p[9], p[10], p[11] = f.A, f.B, f.Prob
		p = p[faultLen:]
	}
	return out
}

// Hex returns the encoded schedule as a hex string — the one-line reproducer
// token printed on failures (see DecodeHex).
func (s Schedule) Hex() string { return hex.EncodeToString(s.Encode()) }

// Decode errors.
var (
	ErrShortSchedule = errors.New("chaos: schedule shorter than its seed header")
	ErrBadLength     = errors.New("chaos: schedule length is not seed + whole fault records")
	ErrBadKind       = errors.New("chaos: fault record with invalid kind")
)

// Decode parses an encoded schedule, strictly: truncated input, trailing
// bytes, and unknown kinds are errors (Sanitize, not Decode, makes arbitrary
// values survivable).
func Decode(b []byte) (Schedule, error) {
	if len(b) < 8 {
		return Schedule{}, ErrShortSchedule
	}
	if (len(b)-8)%faultLen != 0 {
		return Schedule{}, ErrBadLength
	}
	s := Schedule{Seed: binary.BigEndian.Uint64(b)}
	for p := b[8:]; len(p) > 0; p = p[faultLen:] {
		k := Kind(p[0])
		if k == 0 || k > kindMax {
			return Schedule{}, fmt.Errorf("%w: %d", ErrBadKind, p[0])
		}
		s.Faults = append(s.Faults, Fault{
			Kind:  k,
			AtMs:  binary.BigEndian.Uint32(p[1:5]),
			DurMs: binary.BigEndian.Uint32(p[5:9]),
			A:     p[9],
			B:     p[10],
			Prob:  p[11],
		})
	}
	return s, nil
}

// DecodeHex parses the reproducer token printed by a failing run.
func DecodeHex(s string) (Schedule, error) {
	b, err := hex.DecodeString(strings.TrimSpace(s))
	if err != nil {
		return Schedule{}, fmt.Errorf("chaos: bad hex schedule: %w", err)
	}
	return Decode(b)
}

// Limits bounds schedule generation and sanitization.
type Limits struct {
	// WindowMs is the fault window: every fault starts and ends within
	// [0, WindowMs]. It must stay well below the watchdog silence tolerance
	// of the scenario so bursts never falsely kill an untargeted node.
	WindowMs uint32
	// MaxFaults caps the faults per generated schedule (>= 1).
	MaxFaults int
}

// DefaultLimits matches the canonical chaos scenario (watchdog tolerance
// 10 s; see the root package's ChaosScenario).
func DefaultLimits() Limits { return Limits{WindowMs: 8000, MaxFaults: 8} }

// normLimits fills defaults and enforces the smallest window the envelope
// arithmetic supports (a window under a second could not fit the minimum
// 200 ms burst plus its margins).
func normLimits(lim Limits) Limits {
	if lim.WindowMs == 0 {
		lim = DefaultLimits()
	}
	if lim.WindowMs < 1000 {
		lim.WindowMs = 1000
	}
	if lim.MaxFaults < 1 {
		lim.MaxFaults = 1
	}
	return lim
}

// Sanitize clamps an arbitrary (decoded, possibly fuzzer-mutated) schedule
// into the survivable envelope: every fault starts inside the window, ends
// inside it too, and keeps its kind's duration bound. Values are folded with
// modulo rather than saturated so fuzz inputs keep their diversity. The
// result always passes Validate.
func Sanitize(s Schedule, lim Limits) Schedule {
	lim = normLimits(lim)
	out := Schedule{Seed: s.Seed, Faults: make([]Fault, 0, len(s.Faults))}
	for _, f := range s.Faults {
		if f.Kind == 0 || f.Kind > kindMax {
			continue
		}
		if !f.Kind.instant() {
			max := maxDurMs(f.Kind)
			f.DurMs = 200 + f.DurMs%(max-200+1)
		} else {
			f.DurMs = 0
		}
		span := f.DurMs
		if span+100 >= lim.WindowMs {
			span = lim.WindowMs - 100 - 1
			f.DurMs = span
		}
		f.AtMs = 100 + f.AtMs%(lim.WindowMs-span-100)
		out.Faults = append(out.Faults, f)
	}
	if len(out.Faults) == 0 {
		out.Faults = nil // canonical empty form, so Decode∘Encode is identity
	}
	return out
}

// Validate reports whether every fault respects the envelope Sanitize
// establishes; Generate and Sanitize outputs must always pass.
func Validate(s Schedule, lim Limits) error {
	lim = normLimits(lim)
	for i, f := range s.Faults {
		if f.Kind == 0 || f.Kind > kindMax {
			return fmt.Errorf("chaos: fault %d: invalid kind %d", i, f.Kind)
		}
		if f.Kind.instant() && f.DurMs != 0 {
			return fmt.Errorf("chaos: fault %d (%s): instant kind with duration", i, f.Kind)
		}
		if !f.Kind.instant() && (f.DurMs < 200 || f.DurMs > maxDurMs(f.Kind)) {
			return fmt.Errorf("chaos: fault %d (%s): duration %dms outside [200, %d]", i, f.Kind, f.DurMs, maxDurMs(f.Kind))
		}
		if f.AtMs < 100 || f.AtMs+f.DurMs >= lim.WindowMs {
			return fmt.Errorf("chaos: fault %d (%s): [%d, %d]ms outside fault window [100, %d)", i, f.Kind, f.AtMs, f.AtMs+f.DurMs, lim.WindowMs)
		}
	}
	return nil
}

// Generate derives a schedule from a seed: every seed is a new adversary,
// and the same seed always yields the same schedule. The output passes
// Validate for the same limits.
func Generate(seed uint64, lim Limits) Schedule {
	lim = normLimits(lim)
	// The generator's stream is separate from the cluster's (the cluster
	// forks its own from the same seed), but derive it from the seed so a
	// schedule is one number to report.
	rng := simtime.NewRand(seed ^ 0xc4a05ce5)
	n := 1 + rng.Intn(lim.MaxFaults)
	s := Schedule{Seed: seed, Faults: make([]Fault, 0, n)}
	outages := 0
	for i := 0; i < n; i++ {
		f := Fault{
			Kind: Kind(1 + rng.Intn(int(kindMax))),
			A:    uint8(rng.Intn(256)),
			B:    uint8(rng.Intn(256)),
			Prob: uint8(64 + rng.Intn(192)), // strong enough to matter
		}
		if f.Kind == KindRecorderOutage || f.Kind == KindHandoffCrash {
			// At most two recorder-downing faults per schedule: each suspends
			// guaranteed traffic (all of it, or its shards') for its whole
			// duration, and stacking many makes the run boringly serial
			// rather than adversarial.
			if outages >= 2 {
				f.Kind = KindLossBurst
			} else {
				outages++
			}
		}
		if !f.Kind.instant() {
			f.DurMs = uint32(rng.Intn(int(maxDurMs(f.Kind))))
		}
		f.AtMs = uint32(rng.Intn(int(lim.WindowMs)))
		s.Faults = append(s.Faults, f)
	}
	return Sanitize(s, lim)
}

// Minimize greedily shrinks a failing schedule: it repeatedly drops any
// fault whose removal keeps stillFails true, until no single removal does.
// The result is the reproducer printed alongside the seed. stillFails is
// re-run O(n²) times worst case; chaos runs are virtual-time cheap.
func Minimize(s Schedule, stillFails func(Schedule) bool) Schedule {
	for {
		shrunk := false
		for i := 0; i < len(s.Faults); i++ {
			cand := Schedule{Seed: s.Seed, Faults: make([]Fault, 0, len(s.Faults)-1)}
			cand.Faults = append(cand.Faults, s.Faults[:i]...)
			cand.Faults = append(cand.Faults, s.Faults[i+1:]...)
			if stillFails(cand) {
				s = cand
				shrunk = true
				break
			}
		}
		if !shrunk {
			return s
		}
	}
}
