package chaos

import (
	"publishing/internal/demos"
	"publishing/internal/frame"
	"publishing/internal/lan"
	"publishing/internal/metrics"
	"publishing/internal/recorder"
	"publishing/internal/simtime"
	"publishing/internal/trace"
)

// System is the slice of a cluster the chaos harness drives. The root
// package's *publishing.Cluster satisfies it structurally, so chaos never
// imports publishing (which would cycle through the root test suite).
type System interface {
	Scheduler() *simtime.Scheduler
	Medium() lan.Medium
	Trace() *trace.Log
	Metrics() *metrics.Registry
	Kernel(n frame.NodeID) *demos.Kernel
	Nodes() []frame.NodeID
	RecorderAt(i int) *recorder.Recorder
	CrashProcess(p frame.ProcID)
	CrashNode(n frame.NodeID)
	CrashRecorderAt(i int)
	RestartRecorderAt(i int) error
	Run(d simtime.Time)
	RunUntil(pred func() bool, max simtime.Time) bool
	Now() simtime.Time
}

// Targets maps a schedule's abstract operands onto one scenario's concrete
// victims. Fault operands are indices reduced modulo these slices, so any
// byte value (fuzzed included) resolves to a legal target. Nodes whose
// external effects cannot be replay-deduplicated (the scenario's witness)
// are simply left out of the crash/partition lists.
type Targets struct {
	// Worker is the KindProcCrash victim.
	Worker frame.ProcID
	// CrashNodes are KindNodeCrash candidates.
	CrashNodes []frame.NodeID
	// PartNodes are KindPartition candidates.
	PartNodes []frame.NodeID
	// LinkNodes are KindLinkLoss endpoint candidates.
	LinkNodes []frame.NodeID
}

func pick(ids []frame.NodeID, idx uint8) (frame.NodeID, bool) {
	if len(ids) == 0 {
		return 0, false
	}
	return ids[int(idx)%len(ids)], true
}

// Apply schedules every fault of s onto sys's virtual clock, offset from the
// current instant. Burst faults set an injection knob at At and restore it
// at At+Dur; overlapping bursts of the same kind resolve last-writer-wins,
// which is deterministic under the simulation scheduler's stable event
// order. Recorder outages are guarded so overlapping outages cannot
// double-crash or double-restart.
func Apply(sys System, s Schedule, tg Targets) {
	start := sys.Scheduler().Now()
	for i, f := range s.Faults {
		f := f
		at := start + f.At()
		end := at + f.Dur()
		switch f.Kind {
		case KindProcCrash:
			sys.Scheduler().At(at, func() { sys.CrashProcess(tg.Worker) })
		case KindNodeCrash:
			if n, ok := pick(tg.CrashNodes, f.A); ok {
				sys.Scheduler().At(at, func() { sys.CrashNode(n) })
			}
		case KindRecorderOutage:
			sys.Scheduler().At(at, func() {
				if r := sys.RecorderAt(0); r != nil && !r.Crashed() {
					sys.CrashRecorderAt(0)
				}
			})
			sys.Scheduler().At(end, func() {
				if r := sys.RecorderAt(0); r != nil && r.Crashed() {
					_ = sys.RestartRecorderAt(0)
				}
			})
		case KindHandoffCrash:
			nRecs := 0
			for sys.RecorderAt(nRecs) != nil {
				nRecs++
			}
			if nRecs < 2 {
				// Degenerate cluster: behave like a recorder outage so the
				// fault still exercises something on classic scenarios.
				sys.Scheduler().At(at, func() {
					if r := sys.RecorderAt(0); r != nil && !r.Crashed() {
						sys.CrashRecorderAt(0)
					}
				})
				sys.Scheduler().At(end, func() {
					if r := sys.RecorderAt(0); r != nil && r.Crashed() {
						_ = sys.RestartRecorderAt(0)
					}
				})
				break
			}
			victim := int(f.A) % nRecs
			partner := (victim + 1) % nRecs
			chunks := 1 + int(f.B)%3
			sys.Scheduler().At(at, func() {
				if r := sys.RecorderAt(victim); r != nil && !r.Crashed() {
					sys.CrashRecorderAt(victim)
				}
			})
			// Halfway through, arm the surviving partner to kill itself a few
			// chunks into serving the victim's catch-up handoff, then restart
			// the victim so that handoff actually starts.
			sys.Scheduler().At(at+f.Dur()/2, func() {
				if r := sys.RecorderAt(partner); r != nil && !r.Crashed() {
					r.ArmHandoffCrash(chunks)
				}
				if r := sys.RecorderAt(victim); r != nil && r.Crashed() {
					_ = sys.RestartRecorderAt(victim)
				}
			})
			sys.Scheduler().At(end, func() {
				for i := 0; i < nRecs; i++ {
					if r := sys.RecorderAt(i); r != nil && r.Crashed() {
						_ = sys.RestartRecorderAt(i)
					}
				}
			})
		case KindPartition:
			if n, ok := pick(tg.PartNodes, f.A); ok {
				group := 1 + i // distinct per fault so overlaps stay separate
				sys.Scheduler().At(at, func() { sys.Medium().Faults().SetPartition(n, group) })
				sys.Scheduler().At(end, func() { sys.Medium().Faults().SetPartition(n, 0) })
			}
		case KindLinkLoss:
			src, okA := pick(tg.LinkNodes, f.A)
			dst, okB := pick(tg.LinkNodes, f.B)
			if okA && okB && src != dst {
				p := f.EffProb()
				sys.Scheduler().At(at, func() { sys.Medium().Faults().SetLinkLoss(src, dst, p) })
				sys.Scheduler().At(end, func() { sys.Medium().Faults().SetLinkLoss(src, dst, 0) })
			}
		case KindStoreFailBurst:
			p := f.EffProb()
			sys.Scheduler().At(at, func() {
				if r := sys.RecorderAt(0); r != nil {
					r.SetStoreFailProb(p)
				}
			})
			sys.Scheduler().At(end, func() {
				if r := sys.RecorderAt(0); r != nil {
					r.SetStoreFailProb(0)
				}
			})
		default:
			if knob := probKnob(sys.Medium().Faults(), f.Kind); knob != nil {
				p := f.EffProb()
				sys.Scheduler().At(at, func() { *knob = p })
				sys.Scheduler().At(end, func() { *knob = 0 })
			}
		}
	}
}

// probKnob maps a burst kind to its FaultPlan field.
func probKnob(fp *lan.FaultPlan, k Kind) *float64 {
	switch k {
	case KindLossBurst:
		return &fp.LossProb
	case KindDupBurst:
		return &fp.DupProb
	case KindCorruptBurst:
		return &fp.CorruptProb
	case KindTapMissBurst:
		return &fp.TapMissProb
	case KindRecvMissBurst:
		return &fp.ReceiverMissProb
	case KindAckSlotBurst:
		return &fp.AckSlotErrProb
	default:
		return nil
	}
}
