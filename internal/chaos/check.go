package chaos

import (
	"fmt"
	"sort"
	"strings"

	"publishing/internal/frame"
	"publishing/internal/monitor"
	"publishing/internal/recorder"
	"publishing/internal/simtime"
	"publishing/internal/trace"
)

// RunOutcome is what one run of the scenario's workload produced.
type RunOutcome struct {
	// Done reports whether the workload completed before its deadline.
	Done bool
	// Output is the ordered application-level output stream (the witness's
	// transcript).
	Output []string
	// State is the canonical final-state snapshot of the recoverable
	// process (the worker's encoded machine state).
	State []byte
}

// CheckConfig tunes the invariant checker.
type CheckConfig struct {
	// RecoveryBound, when > 0, is the scenario's configured recovery-time
	// bound; completed recoveries that no other fault disturbed must finish
	// within 2*bound + 1s (the same slack margin the checkpoint-policy
	// tests allow, doubled for fault-window scheduling noise).
	RecoveryBound simtime.Time
}

// Violation is one failed invariant.
type Violation struct {
	Invariant string
	Detail    string
}

func (v Violation) String() string { return v.Invariant + ": " + v.Detail }

// Outcome of Check: the violations plus a deterministic text report. Two
// runs of the same schedule produce byte-identical reports — that property
// is itself asserted by the root chaos tests.
type CheckResult struct {
	Violations []Violation
	Report     string
}

// Passed reports whether every invariant held.
func (r CheckResult) Passed() bool { return len(r.Violations) == 0 }

// capList joins up to max items for a report line.
func capList(items []string, max int) string {
	if len(items) <= max {
		return strings.Join(items, ", ")
	}
	return strings.Join(items[:max], ", ") + fmt.Sprintf(", … (%d total)", len(items))
}

// Check asserts the system-wide invariants after quiescence. faulted is the
// outcome of the run the schedule was applied to (on sys); baseline is the
// outcome of a fault-free run of the same seed.
//
// Invariants (the paper's §5 claims, made executable):
//
//	I1 exactly-once — no message was queued to a process more often than
//	   once plus its recovery replays (trace KindDeliver vs KindReplay).
//	I2 output-equivalence — the application output stream is byte-identical
//	   to the fault-free run's ("the computation completes exactly as if
//	   the crash had not occurred").
//	I3 state-equivalence — the recoverable process's final state snapshot
//	   is byte-identical to the fault-free run's.
//	I4 no-orphans — after quiescence no endpoint still holds unacknowledged
//	   guaranteed messages (ack received or retransmission exhausted).
//	I5 recovery-completion — every recovery that started also completed.
//	I6 quiescent-queues — every kernel queue-depth gauge reads zero.
//	I7 bounded-recovery — undisturbed recoveries respect the checkpoint
//	   policy's time bound (only checked when the scenario sets one).
func Check(sys System, s Schedule, faulted, baseline RunOutcome, cfg CheckConfig) CheckResult {
	var res CheckResult
	var b strings.Builder
	violate := func(invariant, format string, args ...any) {
		v := Violation{Invariant: invariant, Detail: fmt.Sprintf(format, args...)}
		res.Violations = append(res.Violations, v)
		fmt.Fprintf(&b, "%-18s VIOLATION %s\n", invariant, v.Detail)
	}
	ok := func(invariant, format string, args ...any) {
		fmt.Fprintf(&b, "%-18s ok %s\n", invariant, fmt.Sprintf(format, args...))
	}

	fmt.Fprintf(&b, "chaos seed=%d faults=%d schedule=%s\n", s.Seed, len(s.Faults), s.Hex())
	for _, f := range s.Faults {
		fmt.Fprintf(&b, "  %s\n", f)
	}

	// I0: both runs must have finished the workload at all; every later
	// invariant assumes quiescence.
	switch {
	case !baseline.Done:
		violate("completion", "fault-free baseline did not complete (scenario bug)")
	case !faulted.Done:
		violate("completion", "workload did not complete under faults by the deadline")
	default:
		ok("completion", "t=%v", sys.Now())
	}

	// I1 exactly-once: deliveries per message id across all nodes must not
	// exceed one original plus one per replayed copy. Replay re-queues a
	// message with its original id, so each detailed KindReplay event
	// licenses exactly one extra KindDeliver.
	deliver := map[string]int{}
	replays := map[string]int{}
	for _, e := range sys.Trace().OfKind(trace.KindDeliver) {
		if e.Msg != "" {
			deliver[e.Msg]++
		}
	}
	for _, e := range sys.Trace().OfKind(trace.KindReplay) {
		if e.Msg != "" {
			replays[e.Msg]++
		}
	}
	var dups []string
	totalReplays := 0
	for id, n := range deliver {
		if n > 1+replays[id] {
			dups = append(dups, fmt.Sprintf("%s delivered %d with %d replays", id, n, replays[id]))
		}
	}
	for _, n := range replays {
		totalReplays += n
	}
	sort.Strings(dups)
	if len(dups) > 0 {
		violate("exactly-once", "%s", capList(dups, 5))
	} else {
		ok("exactly-once", "msgs=%d replayed=%d", len(deliver), totalReplays)
	}

	// I2 output-equivalence.
	if len(faulted.Output) != len(baseline.Output) {
		violate("output-match", "faulted run produced %d outputs, baseline %d", len(faulted.Output), len(baseline.Output))
	} else {
		diff := -1
		for i := range faulted.Output {
			if faulted.Output[i] != baseline.Output[i] {
				diff = i
				break
			}
		}
		if diff >= 0 {
			violate("output-match", "output[%d] = %q, baseline %q", diff, faulted.Output[diff], baseline.Output[diff])
		} else {
			ok("output-match", "%d outputs identical", len(faulted.Output))
		}
	}

	// I3 state-equivalence.
	if string(faulted.State) != string(baseline.State) {
		violate("state-match", "final state (%dB) differs from baseline (%dB)", len(faulted.State), len(baseline.State))
	} else {
		ok("state-match", "%dB identical", len(faulted.State))
	}

	// I4 no-orphans: every processing node's endpoint drained — each
	// guaranteed message was acknowledged or its retransmission budget
	// exhausted (which removes it from flight and is reported).
	inflight := 0
	var gaveUp uint64
	var orphans []string
	for _, n := range sys.Nodes() {
		k := sys.Kernel(n)
		if k == nil || k.Endpoint() == nil {
			continue
		}
		gaveUp += k.Endpoint().Stats().GaveUp
		if inf := k.Endpoint().InFlight(); inf > 0 {
			inflight += inf
			orphans = append(orphans, fmt.Sprintf("node %d holds %d", n, inf))
		}
	}
	if inflight > 0 {
		violate("no-orphans", "%s", capList(orphans, 5))
	} else {
		ok("no-orphans", "inflight=0 gaveup=%d", gaveUp)
	}

	// I5 recovery-completion: per process, the last recovery start must be
	// followed by a recovery done.
	type recWindow struct {
		lastStart simtime.Time
		lastDone  simtime.Time
		starts    int
		dones     int
	}
	recs := map[string]*recWindow{}
	for _, e := range sys.Trace().OfKind(trace.KindRecoveryStart) {
		w := recs[e.Subject]
		if w == nil {
			w = &recWindow{}
			recs[e.Subject] = w
		}
		w.starts++
		w.lastStart = e.At
	}
	for _, e := range sys.Trace().OfKind(trace.KindRecoveryDone) {
		w := recs[e.Subject]
		if w == nil {
			w = &recWindow{}
			recs[e.Subject] = w
		}
		w.dones++
		w.lastDone = e.At
	}
	subjects := make([]string, 0, len(recs))
	for subj := range recs {
		subjects = append(subjects, subj)
	}
	sort.Strings(subjects)
	recoveries := 0
	var unfinished []string
	for _, subj := range subjects {
		w := recs[subj]
		recoveries += w.starts
		if w.dones == 0 || w.lastDone < w.lastStart {
			unfinished = append(unfinished, fmt.Sprintf("%s (starts=%d dones=%d)", subj, w.starts, w.dones))
		}
	}
	if len(unfinished) > 0 {
		violate("recovery-complete", "%s", capList(unfinished, 5))
	} else {
		ok("recovery-complete", "starts=%d", recoveries)
	}

	// I7 bounded-recovery: a recovery no other fault disturbed must finish
	// within the checkpoint policy's promised window. A fault disturbs the
	// recovery [rs, rd] if its active interval intersects the open window —
	// the triggering crash (at or before rs) does not.
	if cfg.RecoveryBound > 0 {
		limit := 2*cfg.RecoveryBound + simtime.Second
		checked, skipped := 0, 0
		var slow []string
		for _, subj := range subjects {
			w := recs[subj]
			if w.dones == 0 || w.lastDone < w.lastStart {
				continue
			}
			disturbed := false
			for _, f := range s.Faults {
				if f.At() < w.lastDone && f.At()+f.Dur() > w.lastStart {
					disturbed = true
					break
				}
			}
			if disturbed {
				skipped++
				continue
			}
			checked++
			if d := w.lastDone - w.lastStart; d > limit {
				slow = append(slow, fmt.Sprintf("%s took %v (limit %v)", subj, d, limit))
			}
		}
		if len(slow) > 0 {
			violate("bounded-recovery", "%s", capList(slow, 5))
		} else {
			ok("bounded-recovery", "checked=%d skipped=%d limit=%v", checked, skipped, 2*cfg.RecoveryBound+simtime.Second)
		}
	}

	// I6 quiescent-queues: the kernel queue-depth gauges must all be zero
	// once the system drained.
	var depths []string
	for _, sample := range sys.Metrics().Snapshot().Samples {
		if sample.Name == "queue_depth" && sample.Value != 0 {
			depths = append(depths, fmt.Sprintf("node %d depth=%d", sample.Node, sample.Value))
		}
	}
	if len(depths) > 0 {
		violate("quiescent-queues", "%s", capList(depths, 5))
	} else {
		ok("quiescent-queues", "all zero")
	}

	// I8 replay-basis-union (sharded recorder clusters only): after
	// quiescence, every live stream's shard must have a live replica, a live
	// replica on recovery duty, and every replica on duty must hold the best
	// basis any live replica has — coverage here is the checkpointed-read
	// count plus recorded arrivals, the same total order the handoff protocol
	// ships by. Together these say the union of the shards is a complete
	// replay basis: no recorder crash (mid-handoff included) left a slot
	// whose only competent copy is dead or whose acting copy is stale.
	sharded := false
	if ssys, isSh := sys.(interface{ ShardMap() *recorder.ShardMap }); isSh && ssys.ShardMap() != nil {
		sharded = true
		sm := ssys.ShardMap()
		var recList []*recorder.Recorder
		for i := 0; sys.RecorderAt(i) != nil; i++ {
			recList = append(recList, sys.RecorderAt(i))
		}
		procSet := map[frame.ProcID]bool{}
		for _, r := range recList {
			if !r.Crashed() {
				for _, p := range r.KnownProcs() {
					procSet[p] = true
				}
			}
		}
		procs := make([]frame.ProcID, 0, len(procSet))
		for p := range procSet {
			procs = append(procs, p)
		}
		sort.Slice(procs, func(i, j int) bool {
			if procs[i].Node != procs[j].Node {
				return procs[i].Node < procs[j].Node
			}
			return procs[i].Local < procs[j].Local
		})
		var holes []string
		checked := 0
		for _, p := range procs {
			slot := sm.ShardOf(p)
			type rep struct {
				rank   int
				acting bool
				sum    recorder.BasisSummary
			}
			var reps []rep
			var maxCov uint64
			dead := false
			for _, rank := range []int{sm.Leader(slot), sm.Follower(slot)} {
				if rank < 0 || rank >= len(recList) || recList[rank].Crashed() {
					continue
				}
				sum := recList[rank].Basis(p)
				if sum.Dead {
					dead = true
				}
				if sum.Cov() > maxCov {
					maxCov = sum.Cov()
				}
				reps = append(reps, rep{rank: rank, acting: recList[rank].ActsFor(slot), sum: sum})
			}
			if dead {
				continue // dead streams are not recovered, so not part of the basis
			}
			checked++
			acting := 0
			for _, r := range reps {
				if !r.acting {
					continue
				}
				acting++
				if r.sum.Cov() < maxCov {
					holes = append(holes, fmt.Sprintf("%v slot %d: acting rec%d coverage %d behind best %d",
						p, slot, r.rank, r.sum.Cov(), maxCov))
				}
			}
			switch {
			case len(reps) == 0:
				holes = append(holes, fmt.Sprintf("%v slot %d: no live replica", p, slot))
			case acting == 0:
				holes = append(holes, fmt.Sprintf("%v slot %d: no live replica on recovery duty", p, slot))
			}
		}
		if len(holes) > 0 {
			violate("replay-basis-union", "%s", capList(holes, 5))
		} else {
			ok("replay-basis-union", "streams=%d slots=%d recorders=%d", checked, sm.Slots(), len(recList))
		}
	}

	// M online-monitor cross-check: when the system runs the online invariant
	// monitor (internal/monitor), its streaming duplicate-delivery verdict
	// must agree with I1's post-quiescence count — flagged online at the
	// violating delivery's virtual timestamp, confirmed here after the run —
	// and its online-only invariants (acceptance order, replay basis,
	// re-executed output, give-up inference) are surfaced as violations in
	// their own right.
	hasMon := false
	if msys, isMon := sys.(interface{ Monitor() *monitor.Monitor }); isMon {
		if mon := msys.Monitor(); mon != nil {
			hasMon = true
			monDups := mon.DupViolations()
			switch {
			case monDups > 0 && len(dups) == 0:
				violate("monitor-agree", "online monitor flagged %d duplicate deliveries this checker did not", monDups)
			case monDups == 0 && len(dups) > 0:
				violate("monitor-agree", "post-quiescence duplicates were never flagged online")
			default:
				ok("monitor-agree", "dup verdicts agree (online=%d post-quiescence=%d)", monDups, len(dups))
			}
			for _, v := range mon.Violations() {
				if v.Invariant == monitor.InvExactlyOnce || v.Invariant == monitor.InvReexecOutput {
					continue // the dup family is covered by exactly-once + the agreement line
				}
				violate("online-"+v.Invariant, "%s", v)
			}
		}
	}

	if len(res.Violations) == 0 {
		fmt.Fprintf(&b, "PASS %d invariants\n", 6+boolToInt(cfg.RecoveryBound > 0)+boolToInt(hasMon)+boolToInt(sharded))
	} else {
		fmt.Fprintf(&b, "FAIL %d violation(s)\n", len(res.Violations))
	}
	res.Report = b.String()
	return res
}

func boolToInt(b bool) int {
	if b {
		return 1
	}
	return 0
}
