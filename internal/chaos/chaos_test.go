package chaos

import (
	"bytes"
	"reflect"
	"testing"
)

func TestGenerateIsDeterministicAndValid(t *testing.T) {
	lim := DefaultLimits()
	distinct := map[string]bool{}
	for seed := uint64(1); seed <= 60; seed++ {
		a := Generate(seed, lim)
		b := Generate(seed, lim)
		if !reflect.DeepEqual(a, b) {
			t.Fatalf("seed %d: two generations differ:\n%s\n%s", seed, a, b)
		}
		if len(a.Faults) == 0 {
			t.Fatalf("seed %d: empty schedule", seed)
		}
		if err := Validate(a, lim); err != nil {
			t.Fatalf("seed %d: generated schedule invalid: %v\n%s", seed, err, a)
		}
		distinct[a.Hex()] = true
	}
	if len(distinct) < 55 {
		t.Fatalf("only %d distinct schedules from 60 seeds", len(distinct))
	}
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	for seed := uint64(1); seed <= 20; seed++ {
		s := Generate(seed, DefaultLimits())
		got, err := Decode(s.Encode())
		if err != nil {
			t.Fatalf("seed %d: decode failed: %v", seed, err)
		}
		if !reflect.DeepEqual(s, got) {
			t.Fatalf("seed %d: roundtrip mismatch:\n%s\n%s", seed, s, got)
		}
		viaHex, err := DecodeHex(s.Hex())
		if err != nil || !reflect.DeepEqual(s, viaHex) {
			t.Fatalf("seed %d: hex roundtrip mismatch (%v)", seed, err)
		}
	}
}

func TestDecodeRejectsMalformed(t *testing.T) {
	good := Generate(3, DefaultLimits()).Encode()
	cases := map[string][]byte{
		"empty":        nil,
		"short header": good[:5],
		"ragged tail":  good[:len(good)-3],
		"zero kind":    append(append([]byte{}, good...), make([]byte, faultLen)...),
		"big kind": append(append([]byte{}, good...), func() []byte {
			r := make([]byte, faultLen)
			r[0] = byte(kindMax) + 1
			return r
		}()...),
	}
	for name, in := range cases {
		if _, err := Decode(in); err == nil {
			t.Errorf("%s: decode accepted malformed input", name)
		}
	}
	// But a bare seed with no faults is a valid (empty) schedule.
	s, err := Decode(make([]byte, 8))
	if err != nil || len(s.Faults) != 0 {
		t.Fatalf("bare seed rejected: %v", err)
	}
}

func TestSanitizeTamesArbitraryValues(t *testing.T) {
	lim := DefaultLimits()
	wild := Schedule{Seed: 9, Faults: []Fault{
		{Kind: KindLossBurst, AtMs: 4_000_000_000, DurMs: 4_000_000_000, Prob: 255},
		{Kind: KindProcCrash, AtMs: 0, DurMs: 77},
		{Kind: KindRecorderOutage, AtMs: 7999, DurMs: 0},
		{Kind: Kind(200)}, // invalid kind: dropped
		{Kind: KindLinkLoss, A: 255, B: 255, Prob: 1},
	}}
	s := Sanitize(wild, lim)
	if err := Validate(s, lim); err != nil {
		t.Fatalf("sanitized schedule invalid: %v\n%s", err, s)
	}
	if len(s.Faults) != 4 {
		t.Fatalf("kept %d faults, want 4 (invalid kind dropped)", len(s.Faults))
	}
	for _, f := range s.Faults {
		if p := f.EffProb(); p < 0 || p > probCap(f.Kind) {
			t.Fatalf("fault %s: effective prob %v beyond cap", f, p)
		}
	}
}

func TestMinimizeShrinksToCulprit(t *testing.T) {
	s := Generate(11, DefaultLimits())
	// Ensure at least one dup burst is present, then define failure as "any
	// dup burst in the schedule" — the minimizer must strip everything else.
	s.Faults = append(s.Faults, Fault{Kind: KindDupBurst, AtMs: 500, DurMs: 400, Prob: 128})
	fails := func(c Schedule) bool {
		for _, f := range c.Faults {
			if f.Kind == KindDupBurst {
				return true
			}
		}
		return false
	}
	min := Minimize(s, fails)
	if len(min.Faults) != 1 || min.Faults[0].Kind != KindDupBurst {
		t.Fatalf("minimized to %s", min)
	}
	if min.Seed != s.Seed {
		t.Fatal("minimization changed the seed")
	}
}

// FuzzChaosSchedule fuzzes the schedule wire format: any input either fails
// Decode, or decodes to a schedule whose re-encoding is byte-identical and
// whose sanitized form passes Validate and round-trips too. This is the
// contract the failure reproducer depends on (a printed hex token must
// replay the identical schedule).
func FuzzChaosSchedule(f *testing.F) {
	for seed := uint64(1); seed <= 5; seed++ {
		f.Add(Generate(seed, DefaultLimits()).Encode())
	}
	f.Add(make([]byte, 8))
	f.Add([]byte("not a schedule"))
	f.Fuzz(func(t *testing.T, data []byte) {
		s, err := Decode(data)
		if err != nil {
			return
		}
		if enc := s.Encode(); !bytes.Equal(enc, data) {
			t.Fatalf("decode/encode not identity:\n in=%x\nout=%x", data, enc)
		}
		lim := DefaultLimits()
		san := Sanitize(s, lim)
		if err := Validate(san, lim); err != nil {
			t.Fatalf("sanitized schedule invalid: %v\nfrom %x", err, data)
		}
		back, err := Decode(san.Encode())
		if err != nil {
			t.Fatalf("sanitized schedule does not re-decode: %v", err)
		}
		if !reflect.DeepEqual(san, back) {
			t.Fatalf("sanitized schedule round-trip mismatch")
		}
	})
}
