package chaos

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"

	"publishing/internal/monitor"
)

// dumpArtifacts writes a failing schedule's post-mortem bundle into a
// directory named after the seed and schedule token, so the printed path
// doubles as the reproducer: report.txt (the checker report), trace.log
// (whatever the trace log retained — the flight-recorder ring on bounded
// runs), monitor.txt (the online monitor's report, when the system runs
// one), and metrics.txt (the final metrics snapshot).
func dumpArtifacts(root string, sys System, s Schedule, res CheckResult) (string, error) {
	token := s.Hex()
	if len(token) > 24 {
		token = token[:24]
	}
	dir := filepath.Join(root, fmt.Sprintf("chaos-seed%d-%s", s.Seed, token))
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return "", err
	}
	write := func(name string, b []byte) error {
		return os.WriteFile(filepath.Join(dir, name), b, 0o644)
	}
	if err := write("report.txt", []byte(res.Report)); err != nil {
		return "", err
	}
	var tb bytes.Buffer
	fmt.Fprintf(&tb, "# trace tail: %d events retained, %d dropped by the flight-recorder bound\n",
		len(sys.Trace().Events()), sys.Trace().Dropped())
	sys.Trace().Dump(&tb)
	if err := write("trace.log", tb.Bytes()); err != nil {
		return "", err
	}
	if msys, ok := sys.(interface{ Monitor() *monitor.Monitor }); ok {
		if mon := msys.Monitor(); mon != nil {
			if err := write("monitor.txt", []byte(mon.Report())); err != nil {
				return "", err
			}
		}
	}
	var mb bytes.Buffer
	if err := sys.Metrics().Snapshot().WriteText(&mb); err == nil {
		if err := write("metrics.txt", mb.Bytes()); err != nil {
			return "", err
		}
	}
	return dir, nil
}
