// Package txn implements §6.4: atomic transactions whose recovery mechanism
// is published communications itself. A coordinator runs two-phase commit
// over participant processes holding keyed integer values. The punchline of
// the section is what is *missing*: "there is no need to store intentions
// and transaction state in stable store. When a crashed process recovers,
// its intentions and transaction state will be rebuilt along with the rest
// of the process state" — so participants keep intentions in ordinary
// machine state, and crash recovery (replay) makes commit decisions
// durable. Only one reliable store exists in the whole system: the
// recorder's.
package txn

import (
	"bytes"
	"encoding/gob"
	"fmt"

	"publishing/internal/demos"
)

// Op is one update within a transaction: add Delta to Key at a participant.
type Op struct {
	Participant string // service name of the participant
	Key         string
	Delta       int
}

// Request bodies between client, coordinator, and participants.
type (
	// Begin asks the coordinator to run ops atomically. The client passes
	// a reply link; the coordinator answers with an Outcome.
	Begin struct {
		Ops []Op
	}
	// Outcome reports a transaction's fate to its client.
	Outcome struct {
		TxID      uint64
		Committed bool
		Reason    string
	}
	// Prepare carries a participant's ops for phase one.
	Prepare struct {
		TxID uint64
		Ops  []Op
	}
	// Vote answers a Prepare.
	Vote struct {
		TxID uint64
		Yes  bool
	}
	// Decide carries the commit/abort decision (phase two).
	Decide struct {
		TxID   uint64
		Commit bool
	}
	// Decided acknowledges a Decide.
	Decided struct {
		TxID uint64
	}
	// Read asks a participant for a value (reply gets ReadReply).
	Read struct {
		Key string
	}
	// ReadReply returns a value.
	ReadReply struct {
		Key   string
		Value int
	}
)

// wire wraps the payloads with a discriminator for gob.
type wire struct {
	Begin     *Begin
	Outcome   *Outcome
	Prepare   *Prepare
	Vote      *Vote
	Decide    *Decide
	Decided   *Decided
	Read      *Read
	ReadReply *ReadReply
}

// Encode serializes any txn payload.
func Encode(v any) []byte {
	var w wire
	switch m := v.(type) {
	case *Begin:
		w.Begin = m
	case *Outcome:
		w.Outcome = m
	case *Prepare:
		w.Prepare = m
	case *Vote:
		w.Vote = m
	case *Decide:
		w.Decide = m
	case *Decided:
		w.Decided = m
	case *Read:
		w.Read = m
	case *ReadReply:
		w.ReadReply = m
	default:
		panic(fmt.Sprintf("txn: cannot encode %T", v))
	}
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(&w); err != nil {
		panic(err)
	}
	return buf.Bytes()
}

// Decode parses a txn payload; it returns one of the pointer types above.
func Decode(b []byte) (any, error) {
	var w wire
	if err := gob.NewDecoder(bytes.NewReader(b)).Decode(&w); err != nil {
		return nil, err
	}
	switch {
	case w.Begin != nil:
		return w.Begin, nil
	case w.Outcome != nil:
		return w.Outcome, nil
	case w.Prepare != nil:
		return w.Prepare, nil
	case w.Vote != nil:
		return w.Vote, nil
	case w.Decide != nil:
		return w.Decide, nil
	case w.Decided != nil:
		return w.Decided, nil
	case w.Read != nil:
		return w.Read, nil
	case w.ReadReply != nil:
		return w.ReadReply, nil
	}
	return nil, fmt.Errorf("txn: empty wire message")
}

// Image names for the registry.
const (
	ImageParticipant = "txn/participant"
	ImageCoordinator = "txn/coordinator"
)

// Register installs both images.
func Register(r *demos.Registry) {
	r.RegisterMachine(ImageParticipant, func(args []byte) demos.Machine {
		return NewParticipant()
	})
	r.RegisterMachine(ImageCoordinator, func(args []byte) demos.Machine {
		return NewCoordinator(args)
	})
}

// Participant holds keyed values and per-transaction intentions — all of it
// plain machine state, recovered by replay, never written to local stable
// storage.
type Participant struct {
	st participantState
}

type participantState struct {
	Values map[string]int
	// Intentions maps a prepared transaction to its pending ops; they take
	// effect only on Decide{Commit: true} (§2.2's tentative updates).
	Intentions map[uint64][]Op
	Prepared   uint64
	Committed  uint64
	Aborted    uint64
}

// NewParticipant returns an empty participant.
func NewParticipant() *Participant {
	return &Participant{st: participantState{
		Values:     make(map[string]int),
		Intentions: make(map[uint64][]Op),
	}}
}

// Init implements demos.Machine.
func (p *Participant) Init(ctx *demos.PCtx) {}

// Handle implements demos.Machine.
func (p *Participant) Handle(ctx *demos.PCtx, m demos.Msg) {
	v, err := Decode(m.Body)
	if err != nil {
		return
	}
	switch req := v.(type) {
	case *Prepare:
		// Vote yes unless the ops would drive a value negative (the demo
		// integrity constraint — overdrafts abort).
		yes := true
		tent := make(map[string]int)
		for _, op := range req.Ops {
			tent[op.Key] += op.Delta
		}
		for k, d := range tent {
			if p.st.Values[k]+d < 0 {
				yes = false
			}
		}
		if yes {
			p.st.Intentions[req.TxID] = req.Ops
			p.st.Prepared++
		}
		if m.Link != demos.NoLink {
			_ = ctx.Send(m.Link, Encode(&Vote{TxID: req.TxID, Yes: yes}), demos.NoLink)
		}
	case *Decide:
		ops, prepared := p.st.Intentions[req.TxID]
		if prepared {
			delete(p.st.Intentions, req.TxID)
			if req.Commit {
				for _, op := range ops {
					p.st.Values[op.Key] += op.Delta
				}
				p.st.Committed++
			} else {
				p.st.Aborted++
			}
		}
		if m.Link != demos.NoLink {
			_ = ctx.Send(m.Link, Encode(&Decided{TxID: req.TxID}), demos.NoLink)
		}
	case *Read:
		if m.Link != demos.NoLink {
			_ = ctx.Send(m.Link, Encode(&ReadReply{Key: req.Key, Value: p.st.Values[req.Key]}), demos.NoLink)
		}
	}
}

// Snapshot implements demos.Machine.
func (p *Participant) Snapshot() ([]byte, error) { return gobBytes(&p.st) }

// Restore implements demos.Machine.
func (p *Participant) Restore(b []byte) error { return gobInto(b, &p.st) }

// Coordinator runs two-phase commit. Its transaction state table is also
// ordinary machine state.
type Coordinator struct {
	st coordState
}

type coordState struct {
	// ParticipantNames lists the services this coordinator can reach; the
	// links are minted lazily and cached.
	ParticipantNames []string
	Links            map[string]demos.LinkID
	NextTx           uint64
	Live             map[uint64]*liveTx
	CommittedTotal   uint64
	AbortedTotal     uint64
}

type liveTx struct {
	Ops       []Op
	Parts     []string // participant names involved
	Votes     map[string]bool
	VotesIn   int
	Reply     demos.LinkID
	Phase     int // 1 = preparing, 2 = deciding
	Commit    bool
	DecidedIn int
}

// NewCoordinator builds a coordinator whose args name the participants
// (comma-free gob list via demos args: a gob []string).
func NewCoordinator(args []byte) *Coordinator {
	var names []string
	_ = gobInto(args, &names)
	return &Coordinator{st: coordState{
		ParticipantNames: names,
		Links:            make(map[string]demos.LinkID),
		Live:             make(map[uint64]*liveTx),
	}}
}

// EncodeParticipants builds the args blob for NewCoordinator.
func EncodeParticipants(names []string) []byte {
	b, err := gobBytes(&names)
	if err != nil {
		panic(err)
	}
	return b
}

// Init implements demos.Machine.
func (c *Coordinator) Init(ctx *demos.PCtx) {}

func (c *Coordinator) link(ctx *demos.PCtx, name string) (demos.LinkID, bool) {
	if l, ok := c.st.Links[name]; ok {
		return l, true
	}
	l, err := ctx.ServiceLink(name)
	if err != nil {
		return demos.NoLink, false
	}
	c.st.Links[name] = l
	return l, true
}

// Handle implements demos.Machine.
func (c *Coordinator) Handle(ctx *demos.PCtx, m demos.Msg) {
	v, err := Decode(m.Body)
	if err != nil {
		return
	}
	switch req := v.(type) {
	case *Begin:
		c.begin(ctx, req, m.Link)
	case *Vote:
		c.vote(ctx, req)
	case *Decided:
		c.decided(ctx, req)
	}
}

func (c *Coordinator) begin(ctx *demos.PCtx, b *Begin, reply demos.LinkID) {
	c.st.NextTx++
	id := c.st.NextTx
	tx := &liveTx{Ops: b.Ops, Reply: reply, Votes: make(map[string]bool), Phase: 1}
	byPart := make(map[string][]Op)
	for _, op := range b.Ops {
		byPart[op.Participant] = append(byPart[op.Participant], op)
	}
	for name, ops := range byPart {
		tx.Parts = append(tx.Parts, name)
		l, ok := c.link(ctx, name)
		if !ok {
			c.finish(ctx, id, tx, false, "unknown participant "+name)
			return
		}
		// Votes come back on our request channel; participants learn the
		// coordinator's identity from the passed reply link.
		vl := ctx.CreateLink(demos.ChanRequest, uint32(id))
		_ = ctx.Send(l, Encode(&Prepare{TxID: id, Ops: ops}), vl)
	}
	c.st.Live[id] = tx
	if len(tx.Parts) == 0 {
		c.finish(ctx, id, tx, true, "empty transaction")
	}
}

func (c *Coordinator) vote(ctx *demos.PCtx, v *Vote) {
	tx := c.st.Live[v.TxID]
	if tx == nil || tx.Phase != 1 {
		return
	}
	tx.VotesIn++
	if !v.Yes {
		c.decide(ctx, v.TxID, tx, false)
		return
	}
	if tx.VotesIn == len(tx.Parts) {
		// All prepared: the commit point (§6.4 — the decision's durability
		// comes from the published stream, not a local log).
		c.decide(ctx, v.TxID, tx, true)
	}
}

func (c *Coordinator) decide(ctx *demos.PCtx, id uint64, tx *liveTx, commit bool) {
	tx.Phase = 2
	tx.Commit = commit
	for _, name := range tx.Parts {
		l, ok := c.link(ctx, name)
		if !ok {
			continue
		}
		dl := ctx.CreateLink(demos.ChanRequest, uint32(id))
		_ = ctx.Send(l, Encode(&Decide{TxID: id, Commit: commit}), dl)
	}
}

func (c *Coordinator) decided(ctx *demos.PCtx, d *Decided) {
	tx := c.st.Live[d.TxID]
	if tx == nil || tx.Phase != 2 {
		return
	}
	tx.DecidedIn++
	if tx.DecidedIn == len(tx.Parts) {
		reason := "committed"
		if !tx.Commit {
			reason = "aborted by participant vote"
		}
		c.finish(ctx, d.TxID, tx, tx.Commit, reason)
	}
}

func (c *Coordinator) finish(ctx *demos.PCtx, id uint64, tx *liveTx, commit bool, reason string) {
	if commit {
		c.st.CommittedTotal++
	} else {
		c.st.AbortedTotal++
	}
	delete(c.st.Live, id)
	if tx.Reply != demos.NoLink {
		_ = ctx.Send(tx.Reply, Encode(&Outcome{TxID: id, Committed: commit, Reason: reason}), demos.NoLink)
	}
}

// Snapshot implements demos.Machine.
func (c *Coordinator) Snapshot() ([]byte, error) { return gobBytes(&c.st) }

// Restore implements demos.Machine.
func (c *Coordinator) Restore(b []byte) error { return gobInto(b, &c.st) }

func gobBytes(v any) ([]byte, error) {
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(v); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

func gobInto(b []byte, v any) error {
	return gob.NewDecoder(bytes.NewReader(b)).Decode(v)
}
