package txn_test

import (
	"fmt"
	"testing"

	"publishing"
	"publishing/internal/demos"
	"publishing/internal/simtime"
	"publishing/internal/txn"
)

// bank assembles a coordinator on node 0 and two participants on nodes 1
// and 2, with a client program that runs transfers and reads balances.
type bank struct {
	c        *publishing.Cluster
	coord    publishing.ProcID
	partA    publishing.ProcID
	partB    publishing.ProcID
	outcomes []txn.Outcome
	balances map[string]int
}

// clientScript is what the client program executes.
type clientScript func(ctx *publishing.PCtx, coord publishing.LinkID, read func(part publishing.LinkID, key string) int)

func newBank(t *testing.T, cfg publishing.Config, script clientScript) *bank {
	t.Helper()
	b := &bank{balances: make(map[string]int)}
	c := publishing.New(cfg)
	b.c = c
	txn.Register(c.Registry())

	c.Registry().RegisterProgram("client", func(args []byte) publishing.Program {
		return func(ctx *publishing.PCtx) {
			coord, err := ctx.ServiceLink("coord")
			if err != nil {
				panic(err)
			}
			read := func(part publishing.LinkID, key string) int {
				m := ctx.Request(part, txn.Encode(&txn.Read{Key: key}), demos.ChanReply, 0)
				v, err := txn.Decode(m.Body)
				if err != nil {
					panic(err)
				}
				return v.(*txn.ReadReply).Value
			}
			script(ctx, coord, read)
		}
	})

	var err error
	b.partA, err = c.Spawn(1, publishing.ProcSpec{Name: txn.ImageParticipant, Recoverable: true})
	if err != nil {
		t.Fatal(err)
	}
	b.partB, err = c.Spawn(2, publishing.ProcSpec{Name: txn.ImageParticipant, Recoverable: true})
	if err != nil {
		t.Fatal(err)
	}
	c.SetService("bankA", b.partA)
	c.SetService("bankB", b.partB)
	b.coord, err = c.Spawn(0, publishing.ProcSpec{
		Name:        txn.ImageCoordinator,
		Args:        txn.EncodeParticipants([]string{"bankA", "bankB"}),
		Recoverable: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	c.SetService("coord", b.coord)
	if _, err := c.Spawn(0, publishing.ProcSpec{Name: "client", Recoverable: true}); err != nil {
		t.Fatal(err)
	}
	return b
}

// transfer runs one Begin and waits for its outcome.
func transfer(ctx *publishing.PCtx, coord publishing.LinkID, ops []txn.Op) txn.Outcome {
	m := ctx.Request(coord, txn.Encode(&txn.Begin{Ops: ops}), demos.ChanReply, 0)
	v, err := txn.Decode(m.Body)
	if err != nil {
		panic(err)
	}
	return *v.(*txn.Outcome)
}

func fund(key string, amount int) []txn.Op {
	part := "bankA"
	if key[0] == 'b' {
		part = "bankB"
	}
	return []txn.Op{{Participant: part, Key: key, Delta: amount}}
}

func moveAtoB(amount int) []txn.Op {
	return []txn.Op{
		{Participant: "bankA", Key: "alice", Delta: -amount},
		{Participant: "bankB", Key: "bob", Delta: amount},
	}
}

func TestCommitAndAbort(t *testing.T) {
	var out []txn.Outcome
	final := map[string]int{}
	b := newBank(t, publishing.DefaultConfig(3), func(ctx *publishing.PCtx, coord publishing.LinkID, read func(publishing.LinkID, string) int) {
		out = append(out, transfer(ctx, coord, fund("alice", 100)))
		out = append(out, transfer(ctx, coord, moveAtoB(30)))
		// Overdraft: alice has 70, moving 500 must abort atomically.
		out = append(out, transfer(ctx, coord, moveAtoB(500)))
		a, _ := ctx.ServiceLink("bankA")
		bb, _ := ctx.ServiceLink("bankB")
		final["alice"] = read(a, "alice")
		final["bob"] = read(bb, "bob")
	})
	b.c.Run(2 * simtime.Minute)
	if len(out) != 3 {
		t.Fatalf("outcomes: %v", out)
	}
	if !out[0].Committed || !out[1].Committed {
		t.Fatalf("funding/transfer failed: %v", out)
	}
	if out[2].Committed {
		t.Fatal("overdraft committed")
	}
	if final["alice"] != 70 || final["bob"] != 30 {
		t.Fatalf("balances = %v, want alice=70 bob=30", final)
	}
}

// The §6.4 claim: a participant crash in the middle of a stream of
// transactions is recovered entirely by replay — intentions and all — and
// every transaction still commits exactly once. Total money is conserved.
func TestParticipantCrashPreservesAtomicity(t *testing.T) {
	var out []txn.Outcome
	final := map[string]int{}
	b := newBank(t, publishing.DefaultConfig(3), func(ctx *publishing.PCtx, coord publishing.LinkID, read func(publishing.LinkID, string) int) {
		out = append(out, transfer(ctx, coord, fund("alice", 1000)))
		for i := 0; i < 8; i++ {
			out = append(out, transfer(ctx, coord, moveAtoB(10)))
		}
		a, _ := ctx.ServiceLink("bankA")
		bb, _ := ctx.ServiceLink("bankB")
		final["alice"] = read(a, "alice")
		final["bob"] = read(bb, "bob")
	})
	// Crash participant B twice while the stream runs.
	b.c.Scheduler().At(2*simtime.Second, func() { b.c.CrashProcess(b.partB) })
	b.c.Scheduler().At(9*simtime.Second, func() { b.c.CrashProcess(b.partB) })
	b.c.Run(5 * simtime.Minute)

	if len(out) != 9 {
		t.Fatalf("only %d outcomes: %v", len(out), out)
	}
	for i, o := range out {
		if !o.Committed {
			t.Fatalf("transaction %d aborted: %v", i, o)
		}
	}
	if final["alice"] != 920 || final["bob"] != 80 {
		t.Fatalf("balances = %v, want alice=920 bob=80 (money conserved)", final)
	}
	if got := b.c.Recorder().Stats().RecoveriesCompleted; got < 2 {
		t.Fatalf("recoveries = %d, want >= 2", got)
	}
}

// A coordinator crash mid-stream: its transaction table is ordinary state,
// rebuilt by replay; in-flight transactions complete.
func TestCoordinatorCrashRecovers(t *testing.T) {
	var out []txn.Outcome
	final := map[string]int{}
	b := newBank(t, publishing.DefaultConfig(3), func(ctx *publishing.PCtx, coord publishing.LinkID, read func(publishing.LinkID, string) int) {
		out = append(out, transfer(ctx, coord, fund("alice", 500)))
		for i := 0; i < 6; i++ {
			out = append(out, transfer(ctx, coord, moveAtoB(5)))
		}
		a, _ := ctx.ServiceLink("bankA")
		bb, _ := ctx.ServiceLink("bankB")
		final["alice"] = read(a, "alice")
		final["bob"] = read(bb, "bob")
	})
	b.c.Scheduler().At(2500*simtime.Millisecond, func() { b.c.CrashProcess(b.coord) })
	b.c.Run(5 * simtime.Minute)
	if len(out) != 7 {
		t.Fatalf("outcomes = %d: %v", len(out), out)
	}
	if final["alice"] != 470 || final["bob"] != 30 {
		t.Fatalf("balances = %v, want alice=470 bob=30", final)
	}
}

func TestCodecRoundTrips(t *testing.T) {
	msgs := []any{
		&txn.Begin{Ops: []txn.Op{{Participant: "p", Key: "k", Delta: -3}}},
		&txn.Outcome{TxID: 7, Committed: true, Reason: "ok"},
		&txn.Prepare{TxID: 1, Ops: []txn.Op{{Key: "x"}}},
		&txn.Vote{TxID: 2, Yes: true},
		&txn.Decide{TxID: 3, Commit: false},
		&txn.Decided{TxID: 4},
		&txn.Read{Key: "k"},
		&txn.ReadReply{Key: "k", Value: 9},
	}
	for _, m := range msgs {
		got, err := txn.Decode(txn.Encode(m))
		if err != nil {
			t.Fatalf("%T: %v", m, err)
		}
		if fmt.Sprintf("%+v", got) != fmt.Sprintf("%+v", m) {
			t.Fatalf("%T round trip: %+v vs %+v", m, got, m)
		}
	}
	if _, err := txn.Decode([]byte("junk")); err == nil {
		t.Fatal("junk decoded")
	}
}
