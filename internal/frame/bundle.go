package frame

import "encoding/binary"

// Bundle body wire format (the steady-state coalescing fast path).
//
// A Bundle frame packs several small guaranteed/unguaranteed messages for
// one destination node into a single MTU-sized frame, amortizing the fixed
// per-frame cost (header, checksum, interframe gap — on the paper's 10 Mb
// Ethernet the 1.6 ms interpacket delay dwarfs a small payload's clock-out
// time). It generalizes the recovery pipeline's replay batches to live
// traffic, with the same discipline: fixed binary layout, one encoding pass
// at the sender, zero-copy decode at the receiver (record bodies alias the
// frame body).
//
// The body is:
//
//	count u16, then count records:
//	    type u8 (Guaranteed | Unguaranteed)
//	    id.sender u32+u32, id.seq u64, from u32+u32, to u32+u32,
//	    channel u16, code u32, xseq u64, deliverToKernel u8, hasLink u8,
//	    bodyLen u32,
//	    [link: to u32+u32, channel u16, code u32, deliverToKernel u8,]
//	    body bytes
//
// The enclosing frame's XLow applies to every guaranteed record: all records
// of one bundle belong to the same src->dst transport stream.

// BundleHdrLen is the encoded size of the bundle body header.
const BundleHdrLen = 2

// BundleRecFixed is the per-record overhead excluding body and link.
const BundleRecFixed = 1 + 8 + 8 + 8 + 8 + 2 + 4 + 8 + 1 + 1 + 4

// BundleRecLink is the additional per-record overhead of a passed link.
const BundleRecLink = linkLen

// BundleRec is one message inside a Bundle frame body. After decoding, Body
// aliases the bundle frame's body — delivered frames belong to the receiving
// endpoint, so no copy is needed before handing records upward.
type BundleRec struct {
	Type            Type // Guaranteed or Unguaranteed
	ID              MsgID
	From, To        ProcID
	Channel         uint16
	Code            uint32
	XSeq            uint64
	DeliverToKernel bool
	HasLink         bool
	Link            Link
	Body            []byte
}

// EncodedLen returns the record's encoded size, for bundle budgeting.
func (rec *BundleRec) EncodedLen() int {
	n := BundleRecFixed + len(rec.Body)
	if rec.HasLink {
		n += BundleRecLink
	}
	return n
}

// RecOf fills rec from a single-message frame, the inverse of Expand.
func (rec *BundleRec) RecOf(f *Frame) {
	rec.Type = f.Type
	rec.ID = f.ID
	rec.From = f.From
	rec.To = f.To
	rec.Channel = f.Channel
	rec.Code = f.Code
	rec.XSeq = f.XSeq
	rec.DeliverToKernel = f.DeliverToKernel
	if f.PassedLink != nil {
		rec.HasLink = true
		rec.Link = *f.PassedLink
	} else {
		rec.HasLink = false
		rec.Link = Link{}
	}
	rec.Body = f.Body
}

// Expand reconstitutes the record as a standalone frame carrying the
// enclosing bundle's addressing and stream low-water mark. The frame's Body
// (and link) still alias the record.
func (rec *BundleRec) Expand(bundle *Frame) *Frame {
	f := &Frame{
		Type:            rec.Type,
		Src:             bundle.Src,
		Dst:             bundle.Dst,
		ID:              rec.ID,
		From:            rec.From,
		To:              rec.To,
		Channel:         rec.Channel,
		Code:            rec.Code,
		XSeq:            rec.XSeq,
		XLow:            bundle.XLow,
		DeliverToKernel: rec.DeliverToKernel,
		Body:            rec.Body,
	}
	if rec.HasLink {
		l := rec.Link
		f.PassedLink = &l
	}
	return f
}

// BeginBundle appends a bundle body header with a zero count onto buf. The
// sender appends records with AppendBundleRec and patches the count with
// FinishBundle.
func BeginBundle(buf []byte) []byte {
	return binary.BigEndian.AppendUint16(buf, 0)
}

// AppendBundleRec appends one record to a bundle body.
func AppendBundleRec(buf []byte, rec *BundleRec) []byte {
	buf = append(buf, uint8(rec.Type))
	buf = appendProc(buf, rec.ID.Sender)
	buf = binary.BigEndian.AppendUint64(buf, rec.ID.Seq)
	buf = appendProc(buf, rec.From)
	buf = appendProc(buf, rec.To)
	buf = binary.BigEndian.AppendUint16(buf, rec.Channel)
	buf = binary.BigEndian.AppendUint32(buf, rec.Code)
	buf = binary.BigEndian.AppendUint64(buf, rec.XSeq)
	buf = appendBool(buf, rec.DeliverToKernel)
	buf = appendBool(buf, rec.HasLink)
	buf = binary.BigEndian.AppendUint32(buf, uint32(len(rec.Body)))
	if rec.HasLink {
		buf = appendProc(buf, rec.Link.To)
		buf = binary.BigEndian.AppendUint16(buf, rec.Link.Channel)
		buf = binary.BigEndian.AppendUint32(buf, rec.Link.Code)
		buf = appendBool(buf, rec.Link.DeliverToKernel)
	}
	return append(buf, rec.Body...)
}

// FinishBundle patches the record count into a body started at start.
func FinishBundle(buf []byte, start, count int) []byte {
	binary.BigEndian.PutUint16(buf[start:], uint16(count))
	return buf
}

// DecodeBundle parses a bundle body into recs (reusing its capacity) and
// returns the filled slice. Record bodies alias b; the caller owns b for the
// records' lifetime. Bundles travel inside checksummed frames, so a decode
// failure means a software bug or trailing garbage, not wire noise; it is
// still reported (ErrShortFrame / ErrBadType) rather than trusted.
func DecodeBundle(b []byte, recs []BundleRec) ([]BundleRec, error) {
	if len(b) < BundleHdrLen {
		return nil, ErrShortFrame
	}
	count := int(binary.BigEndian.Uint16(b))
	pos := BundleHdrLen
	recs = recs[:0]
	for i := 0; i < count; i++ {
		if len(b)-pos < BundleRecFixed {
			return nil, ErrShortFrame
		}
		var rec BundleRec
		rec.Type = Type(b[pos])
		pos++
		if rec.Type != Guaranteed && rec.Type != Unguaranteed {
			return nil, ErrBadType
		}
		rec.ID.Sender = ProcID{Node: NodeID(int32(binary.BigEndian.Uint32(b[pos:]))), Local: binary.BigEndian.Uint32(b[pos+4:])}
		rec.ID.Seq = binary.BigEndian.Uint64(b[pos+8:])
		rec.From = ProcID{Node: NodeID(int32(binary.BigEndian.Uint32(b[pos+16:]))), Local: binary.BigEndian.Uint32(b[pos+20:])}
		rec.To = ProcID{Node: NodeID(int32(binary.BigEndian.Uint32(b[pos+24:]))), Local: binary.BigEndian.Uint32(b[pos+28:])}
		rec.Channel = binary.BigEndian.Uint16(b[pos+32:])
		rec.Code = binary.BigEndian.Uint32(b[pos+34:])
		rec.XSeq = binary.BigEndian.Uint64(b[pos+38:])
		rec.DeliverToKernel = b[pos+46] != 0
		rec.HasLink = b[pos+47] != 0
		bodyLen := int(binary.BigEndian.Uint32(b[pos+48:]))
		pos += BundleRecFixed - 1 // type byte already consumed
		if rec.HasLink {
			if len(b)-pos < BundleRecLink {
				return nil, ErrShortFrame
			}
			rec.Link.To = ProcID{Node: NodeID(int32(binary.BigEndian.Uint32(b[pos:]))), Local: binary.BigEndian.Uint32(b[pos+4:])}
			rec.Link.Channel = binary.BigEndian.Uint16(b[pos+8:])
			rec.Link.Code = binary.BigEndian.Uint32(b[pos+10:])
			rec.Link.DeliverToKernel = b[pos+14] != 0
			pos += BundleRecLink
		}
		if len(b)-pos < bodyLen {
			return nil, ErrShortFrame
		}
		if bodyLen > 0 {
			rec.Body = b[pos : pos+bodyLen : pos+bodyLen]
		}
		pos += bodyLen
		recs = append(recs, rec)
	}
	if pos != len(b) {
		return nil, ErrShortFrame
	}
	return recs, nil
}

// Recorder-ack id lists. A RecorderAck frame with a non-empty Body covers a
// whole batch of stored messages: the Body is a packed sequence of message
// ids (sender u32+u32, seq u64), no count prefix. An empty Body keeps the
// legacy single-id semantics (the frame's ID field).

// AckIDLen is the encoded size of one message id in a recorder-ack batch.
const AckIDLen = 4 + 4 + 8

// AppendAckID appends one message id to a recorder-ack batch body.
func AppendAckID(buf []byte, id MsgID) []byte {
	buf = appendProc(buf, id.Sender)
	return binary.BigEndian.AppendUint64(buf, id.Seq)
}

// DecodeAckIDs parses a recorder-ack batch body into ids (reusing its
// capacity).
func DecodeAckIDs(b []byte, ids []MsgID) ([]MsgID, error) {
	if len(b)%AckIDLen != 0 {
		return nil, ErrShortFrame
	}
	ids = ids[:0]
	for pos := 0; pos < len(b); pos += AckIDLen {
		ids = append(ids, MsgID{
			Sender: ProcID{Node: NodeID(int32(binary.BigEndian.Uint32(b[pos:]))), Local: binary.BigEndian.Uint32(b[pos+4:])},
			Seq:    binary.BigEndian.Uint64(b[pos+8:]),
		})
	}
	return ids, nil
}
