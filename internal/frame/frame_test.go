package frame

import (
	"bytes"
	"errors"
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
)

func sampleFrame() *Frame {
	return &Frame{
		Type:    Guaranteed,
		Src:     2,
		Dst:     5,
		ID:      MsgID{Sender: ProcID{Node: 2, Local: 7}, Seq: 42},
		From:    ProcID{Node: 2, Local: 7},
		To:      ProcID{Node: 5, Local: 3},
		Channel: 9,
		Code:    1234,
		PassedLink: &Link{
			To:      ProcID{Node: 5, Local: 3},
			Channel: 1,
			Code:    88,
		},
		Body: []byte("read block 12 of file foo"),
	}
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	f := sampleFrame()
	g, err := Decode(f.Encode())
	if err != nil {
		t.Fatalf("Decode: %v", err)
	}
	if !reflect.DeepEqual(f, g) {
		t.Fatalf("round trip mismatch:\n got %+v\nwant %+v", g, f)
	}
}

func TestEncodeDecodeNoLinkNoBody(t *testing.T) {
	f := &Frame{Type: Ack, Src: 1, Dst: 2, ID: MsgID{Sender: ProcID{Node: 1, Local: 1}, Seq: 9}}
	g, err := Decode(f.Encode())
	if err != nil {
		t.Fatalf("Decode: %v", err)
	}
	if !reflect.DeepEqual(f, g) {
		t.Fatalf("round trip mismatch: %+v vs %+v", g, f)
	}
}

func TestDecodeRejectsCorruptChecksum(t *testing.T) {
	f := sampleFrame()
	f.Corrupt = true
	if _, err := Decode(f.Encode()); !errors.Is(err, ErrBadChecksum) {
		t.Fatalf("corrupt frame decoded: err=%v", err)
	}
}

func TestDecodeRejectsBitFlips(t *testing.T) {
	enc := sampleFrame().Encode()
	for i := 0; i < len(enc); i++ {
		b := append([]byte(nil), enc...)
		b[i] ^= 0x40
		if _, err := Decode(b); err == nil {
			t.Fatalf("bit flip at byte %d went undetected", i)
		}
	}
}

func TestDecodeRejectsTruncation(t *testing.T) {
	enc := sampleFrame().Encode()
	for _, n := range []int{0, 1, headerLen - 1, headerLen, len(enc) - 1} {
		if _, err := Decode(enc[:n]); err == nil {
			t.Fatalf("truncation to %d bytes went undetected", n)
		}
	}
}

func TestDecodeRejectsInvalidType(t *testing.T) {
	f := sampleFrame()
	f.PassedLink = nil
	enc := f.Encode()
	// Overwrite type byte and re-checksum so only the type is wrong.
	payload := append([]byte(nil), enc[:len(enc)-checksumLen]...)
	payload[0] = 200
	g := &Frame{}
	_ = g
	sum := Checksum(payload)
	var b []byte
	b = append(b, payload...)
	b = append(b, byte(sum>>24), byte(sum>>16), byte(sum>>8), byte(sum))
	if _, err := Decode(b); !errors.Is(err, ErrBadType) {
		t.Fatalf("invalid type accepted: err=%v", err)
	}
}

func TestChecksumDetectsTransposition(t *testing.T) {
	a := Checksum([]byte{1, 2, 3, 4})
	b := Checksum([]byte{1, 3, 2, 4})
	if a == b {
		t.Fatal("rotating checksum failed to detect transposition")
	}
}

func TestWireLenMatchesEncoding(t *testing.T) {
	cases := []*Frame{
		sampleFrame(),
		{Type: Ack, Src: 1, Dst: 2},
		{Type: Unguaranteed, Src: 0, Dst: Broadcast, Body: make([]byte, 1024)},
		{Type: Token},
	}
	for _, f := range cases {
		if got := len(f.Encode()); got != f.WireLen() {
			t.Errorf("WireLen=%d but encoding is %d bytes (%v)", f.WireLen(), got, f.Type)
		}
	}
}

func TestCloneIsDeep(t *testing.T) {
	f := sampleFrame()
	g := f.Clone()
	g.Body[0] = 'X'
	g.PassedLink.Code = 999
	if f.Body[0] == 'X' || f.PassedLink.Code == 999 {
		t.Fatal("Clone shares storage with the original")
	}
	if !reflect.DeepEqual(f, sampleFrame()) {
		t.Fatal("original mutated")
	}
}

func TestProcIDAndMsgIDHelpers(t *testing.T) {
	if !NilProc.IsNil() {
		t.Fatal("NilProc not nil")
	}
	p := ProcID{Node: 3, Local: 4}
	if p.IsNil() || p.String() != "p3.4" {
		t.Fatalf("ProcID helpers: %v", p)
	}
	var m MsgID
	if !m.IsNil() {
		t.Fatal("zero MsgID not nil")
	}
	a := MsgID{Sender: p, Seq: 1}
	b := MsgID{Sender: p, Seq: 2}
	if !a.Less(b) || b.Less(a) {
		t.Fatal("MsgID.Less ordering wrong")
	}
	c := MsgID{Sender: ProcID{Node: 1, Local: 9}, Seq: 100}
	if !c.Less(a) {
		t.Fatal("MsgID.Less cross-sender ordering wrong")
	}
	if a.String() != "p3.4#1" {
		t.Fatalf("MsgID.String = %q", a.String())
	}
}

func TestLinkString(t *testing.T) {
	l := Link{To: ProcID{Node: 1, Local: 2}, Channel: 3, Code: 4, DeliverToKernel: true}
	if l.IsNil() {
		t.Fatal("non-nil link reported nil")
	}
	if s := l.String(); s != "link(->p1.2 ch=3 code=4 kernel)" {
		t.Fatalf("Link.String = %q", s)
	}
}

// Property: encode/decode round-trips for arbitrary frames.
func TestEncodeDecodeProperty(t *testing.T) {
	gen := func(r *rand.Rand) *Frame {
		f := &Frame{
			Type:            []Type{Unguaranteed, Guaranteed, Ack, RecorderAck}[r.Intn(4)],
			Src:             NodeID(r.Intn(100)),
			Dst:             NodeID(r.Intn(100) - 1),
			ID:              MsgID{Sender: ProcID{Node: NodeID(r.Intn(10)), Local: r.Uint32()}, Seq: r.Uint64()},
			From:            ProcID{Node: NodeID(r.Intn(10)), Local: r.Uint32()},
			To:              ProcID{Node: NodeID(r.Intn(10)), Local: r.Uint32()},
			Channel:         uint16(r.Uint32()),
			Code:            r.Uint32(),
			DeliverToKernel: r.Intn(2) == 0,
		}
		if n := r.Intn(200); n > 0 {
			f.Body = make([]byte, n)
			r.Read(f.Body)
		}
		if r.Intn(2) == 0 {
			f.PassedLink = &Link{
				To:      ProcID{Node: NodeID(r.Intn(10)), Local: r.Uint32()},
				Channel: uint16(r.Uint32()),
				Code:    r.Uint32(),
			}
		}
		return f
	}
	cfg := &quick.Config{MaxCount: 500}
	if err := quick.Check(func(seed int64) bool {
		f := gen(rand.New(rand.NewSource(seed)))
		g, err := Decode(f.Encode())
		return err == nil && reflect.DeepEqual(f, g)
	}, cfg); err != nil {
		t.Fatal(err)
	}
}

// Property: any single-byte corruption of the encoding is rejected.
func TestCorruptionDetectionProperty(t *testing.T) {
	enc := sampleFrame().Encode()
	if err := quick.Check(func(pos int, mask byte) bool {
		if mask == 0 {
			return true
		}
		i := pos % len(enc)
		if i < 0 {
			i += len(enc)
		}
		b := append([]byte(nil), enc...)
		b[i] ^= mask
		_, err := Decode(b)
		return err != nil
	}, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

func TestTypeStrings(t *testing.T) {
	for ty, want := range map[Type]string{
		Unguaranteed: "unguaranteed",
		Guaranteed:   "guaranteed",
		Ack:          "ack",
		RecorderAck:  "recorder-ack",
		Token:        "token",
	} {
		if ty.String() != want {
			t.Errorf("Type(%d).String() = %q, want %q", ty, ty.String(), want)
		}
		if !ty.Valid() {
			t.Errorf("Type %v not Valid", ty)
		}
	}
	if Type(0).Valid() || Type(99).Valid() {
		t.Error("invalid types reported valid")
	}
}

func TestFrameString(t *testing.T) {
	f := sampleFrame()
	if s := f.String(); !bytes.Contains([]byte(s), []byte("guaranteed")) {
		t.Fatalf("String = %q", s)
	}
	ack := &Frame{Type: Ack, Src: 1, Dst: 2, ID: MsgID{Sender: ProcID{Node: 1, Local: 1}, Seq: 3}}
	if s := ack.String(); !bytes.Contains([]byte(s), []byte("ack")) {
		t.Fatalf("ack String = %q", s)
	}
	if (&Frame{Type: Token}).String() != "token" {
		t.Fatal("token String")
	}
}

func TestAppendEncodeMatchesEncode(t *testing.T) {
	for _, f := range []*Frame{
		sampleFrame(),
		{Type: Ack, Src: 1, Dst: 2, ID: MsgID{Sender: ProcID{Node: 1, Local: 1}, Seq: 9}},
		{Type: Token},
	} {
		if !bytes.Equal(f.Encode(), f.AppendEncode(nil)) {
			t.Fatalf("AppendEncode(nil) differs from Encode for %v", f)
		}
		// Appending after a prefix must checksum only the frame bytes.
		pre := []byte{0xde, 0xad}
		out := f.AppendEncode(append([]byte(nil), pre...))
		if !bytes.Equal(out[:2], pre) {
			t.Fatal("AppendEncode clobbered the prefix")
		}
		if g, err := Decode(out[2:]); err != nil {
			t.Fatalf("Decode after prefix: %v", err)
		} else if g.ID != f.ID {
			t.Fatalf("round trip after prefix mismatch: %v vs %v", g.ID, f.ID)
		}
	}
}

func TestDecodeIntoReusesBuffers(t *testing.T) {
	f := sampleFrame()
	enc := f.Encode()
	var g Frame
	if err := DecodeInto(&g, enc); err != nil {
		t.Fatalf("DecodeInto: %v", err)
	}
	if !reflect.DeepEqual(f, &g) {
		t.Fatalf("DecodeInto mismatch:\n got %+v\nwant %+v", &g, f)
	}
	// Second decode into the same frame must reuse Body and PassedLink.
	body, link := &g.Body[0], g.PassedLink
	if err := DecodeInto(&g, enc); err != nil {
		t.Fatalf("DecodeInto (reuse): %v", err)
	}
	if &g.Body[0] != body || g.PassedLink != link {
		t.Fatal("DecodeInto did not reuse buffers")
	}
	// A link-less frame must clear the reused link, and stale fields must
	// not leak through.
	h := &Frame{Type: Unguaranteed, Src: 3, Dst: 4}
	if err := DecodeInto(&g, h.Encode()); err != nil {
		t.Fatalf("DecodeInto (link-less): %v", err)
	}
	if g.PassedLink != nil || len(g.Body) != 0 || g.DeliverToKernel {
		t.Fatalf("stale state leaked: %+v", &g)
	}
}

func TestEncodeDecodeSteadyStateAllocFree(t *testing.T) {
	f := sampleFrame()
	var buf []byte
	var g Frame
	buf = f.AppendEncode(buf[:0])
	if err := DecodeInto(&g, buf); err != nil {
		t.Fatal(err)
	}
	avg := testing.AllocsPerRun(200, func() {
		buf = f.AppendEncode(buf[:0])
		if err := DecodeInto(&g, buf); err != nil {
			t.Fatal(err)
		}
	})
	if avg > 0 {
		t.Fatalf("steady-state encode/decode allocates %.1f allocs/run, want 0", avg)
	}
}
