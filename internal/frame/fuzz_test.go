package frame

import (
	"errors"
	"reflect"
	"testing"
)

// frameCorpus returns representative frames covering every encoder branch:
// body/no body, passed link, control types, corrupt checksum.
func frameCorpus() []*Frame {
	return []*Frame{
		{
			Type: Guaranteed, Src: 0, Dst: 1,
			ID:   MsgID{Sender: ProcID{Node: 0, Local: 1}, Seq: 7},
			From: ProcID{Node: 0, Local: 1}, To: ProcID{Node: 1, Local: 2},
			Channel: 3, Code: 99, XSeq: 1<<48 | 12, XLow: 1<<48 | 10,
			Body: []byte("step=7 sum=42"),
		},
		{
			Type: Guaranteed, Src: 2, Dst: Broadcast,
			ID:   MsgID{Sender: ProcID{Node: 2, Local: 5}, Seq: 1},
			From: ProcID{Node: 2, Local: 5}, To: ProcID{Node: 1, Local: 0},
			DeliverToKernel: true,
			PassedLink:      &Link{To: ProcID{Node: 2, Local: 5}, Channel: 9, Code: 4, DeliverToKernel: true},
			Body:            []byte{0x00},
		},
		{Type: Ack, Src: 1, Dst: 0, ID: MsgID{Sender: ProcID{Node: 0, Local: 1}, Seq: 7}, XSeq: 12},
		{
			Type: Ack, Src: 1, Dst: 0,
			ID:        MsgID{Sender: ProcID{Node: 0, Local: 1}, Seq: 7},
			AckCumSet: true, AckCum: 1<<48 | 6,
			AckRecs: []AckRec{
				{ID: MsgID{Sender: ProcID{Node: 0, Local: 1}, Seq: 7}, Rcv: ProcID{Node: 1, Local: 2}},
				{ID: MsgID{Sender: ProcID{Node: 0, Local: 3}, Seq: 2}, Rcv: ProcID{Node: 1, Local: 2}},
			},
		},
		{
			Type: Guaranteed, Src: 1, Dst: 0,
			ID:   MsgID{Sender: ProcID{Node: 1, Local: 4}, Seq: 3},
			From: ProcID{Node: 1, Local: 4}, To: ProcID{Node: 0, Local: 1},
			XSeq: 3, Body: []byte("reverse data"),
			AckRecs: []AckRec{{ID: MsgID{Sender: ProcID{Node: 0, Local: 1}, Seq: 9}, Rcv: ProcID{Node: 1, Local: 2}}},
		},
		{Type: Bundle, Src: 0, Dst: 1, XLow: 1<<48 | 10, Body: []byte("opaque bundle records")},
		{Type: RecorderAck, Src: 3, Dst: Broadcast, ID: MsgID{Sender: ProcID{Node: 0, Local: 1}, Seq: 8}},
		{Type: Unguaranteed, Src: 0, Dst: 2, From: ProcID{Node: 0, Local: 0}, To: ProcID{Node: 2, Local: 0}, Body: []byte{0x01}},
		{Type: Token},
		{
			Type: Guaranteed, Src: 0, Dst: 1,
			ID:   MsgID{Sender: ProcID{Node: 0, Local: 1}, Seq: 9},
			From: ProcID{Node: 0, Local: 1}, To: ProcID{Node: 1, Local: 2},
			Body: []byte("noise got me"), Corrupt: true,
		},
	}
}

// normalizeBody maps an empty body to nil so frames decoded into fresh and
// reused Frames (which differ only in empty-slice identity) compare equal.
func normalizeBody(f *Frame) {
	if len(f.Body) == 0 {
		f.Body = nil
	}
}

// FuzzFrameDecode fuzzes the link-layer frame codec: arbitrary bytes either
// fail Decode with one of the documented errors, or decode to a frame whose
// re-encoding decodes back to the identical frame. Byte-for-byte encode
// identity is deliberately NOT asserted — decode accepts any nonzero byte as
// a bool while encode always emits 1 — but the decode∘encode fixed point
// must hold, and a corrupted re-encoding must be rejected.
func FuzzFrameDecode(f *testing.F) {
	for _, fr := range frameCorpus() {
		f.Add(fr.Encode())
	}
	f.Add([]byte{})
	f.Add(make([]byte, headerLen+checksumLen))
	f.Add(frameCorpus()[0].Encode()[:headerLen])
	f.Fuzz(func(t *testing.T, data []byte) {
		fr, err := Decode(data)
		if err != nil {
			if !errors.Is(err, ErrShortFrame) && !errors.Is(err, ErrBadChecksum) && !errors.Is(err, ErrBadType) {
				t.Fatalf("undocumented decode error: %v", err)
			}
			return
		}
		if fr.Corrupt {
			t.Fatal("decode accepted a frame yet left Corrupt set")
		}

		enc := fr.Encode()
		if want := fr.WireLen(); len(enc) != want {
			t.Fatalf("WireLen %d but encoded %d bytes", want, len(enc))
		}
		back, err := Decode(enc)
		if err != nil {
			t.Fatalf("re-encoding does not decode: %v", err)
		}
		normalizeBody(fr)
		normalizeBody(back)
		if !reflect.DeepEqual(fr, back) {
			t.Fatalf("decode/encode not a fixed point:\n got %+v\nwant %+v", back, fr)
		}

		// DecodeInto must agree with Decode even when reusing a dirty frame.
		dirty := &Frame{Body: make([]byte, 64), PassedLink: &Link{Channel: 77}, Corrupt: true}
		if err := DecodeInto(dirty, data); err != nil {
			t.Fatalf("DecodeInto failed where Decode succeeded: %v", err)
		}
		normalizeBody(dirty)
		if !reflect.DeepEqual(fr, dirty) {
			t.Fatalf("DecodeInto reuse diverged:\n got %+v\nwant %+v", dirty, fr)
		}

		// Invalidating the checksum — how injected noise and the ring
		// recorder's store-failure signal appear on the wire — must be caught.
		fr.Corrupt = true
		if _, err := Decode(fr.Encode()); !errors.Is(err, ErrBadChecksum) {
			t.Fatalf("corrupt re-encoding not rejected: %v", err)
		}
	})
}
