// Package frame defines the wire vocabulary shared by every layer of the
// reproduced system: process and message identifiers, link capabilities as
// they appear inside messages, and the network frame format with its
// link-layer rotating checksum (§4.3.3 of the paper).
//
// The paper's network is strictly layered (media, link, transport); this
// package is the part every layer agrees on. Frames can be serialized to a
// byte stream (used by cmd/starhub to run the star configuration over real
// TCP) and carry enough metadata for the recorder to publish them passively.
package frame

import (
	"encoding/binary"
	"errors"
	"fmt"
)

// NodeID identifies a processor on the network. The recorder is a node too.
type NodeID int32

// Broadcast is the destination for frames addressed to every station.
const Broadcast NodeID = -1

// ProcID names a process uniquely network-wide. Following §4.3.1, it is the
// single-processor id made unique by appending the id of the node the
// process was created on; a process keeps its ProcID even if it migrates.
type ProcID struct {
	Node  NodeID // creating node
	Local uint32 // id unique within the creating node
}

// Nil is the zero ProcID, meaning "no process".
var NilProc ProcID

// IsNil reports whether p names no process.
func (p ProcID) IsNil() bool { return p == NilProc }

// String formats the ProcID as node.local.
func (p ProcID) String() string {
	if p.IsNil() {
		return "<nil-proc>"
	}
	return fmt.Sprintf("p%d.%d", p.Node, p.Local)
}

// MsgID uniquely identifies a guaranteed message (§4.3.3): "The identifier
// is made up of two fields: the unique identifier of the sending process and
// a number from that process's state block. This number is increased every
// time a message is sent by that process."
type MsgID struct {
	Sender ProcID
	Seq    uint64
}

// IsNil reports whether the id is unset.
func (m MsgID) IsNil() bool { return m.Sender.IsNil() && m.Seq == 0 }

// String formats the message id.
func (m MsgID) String() string { return fmt.Sprintf("%s#%d", m.Sender, m.Seq) }

// Less orders message ids from the same sender by sequence number.
func (m MsgID) Less(o MsgID) bool {
	if m.Sender != o.Sender {
		if m.Sender.Node != o.Sender.Node {
			return m.Sender.Node < o.Sender.Node
		}
		return m.Sender.Local < o.Sender.Local
	}
	return m.Seq < o.Seq
}

// Link is a capability to send messages to a process (§4.2.2.1). Links live
// outside process address spaces — in kernel link tables or inside messages;
// this type is the in-message/wire representation. Channel and Code are
// stamped into the header of every message sent over the link.
type Link struct {
	// To is the process the link points at.
	To ProcID
	// Channel selects the receive channel at the destination (§4.2.2.2).
	Channel uint16
	// Code lets the receiver tell its links apart (§4.2.2.1).
	Code uint32
	// DeliverToKernel marks the process-control links of §4.4.3: messages
	// sent over such a link are handed to the kernel process on the
	// destination node, which acts on behalf of the addressed process.
	DeliverToKernel bool
}

// IsNil reports whether the link is unset.
func (l Link) IsNil() bool { return l.To.IsNil() }

// String formats the link.
func (l Link) String() string {
	k := ""
	if l.DeliverToKernel {
		k = " kernel"
	}
	return fmt.Sprintf("link(->%s ch=%d code=%d%s)", l.To, l.Channel, l.Code, k)
}

// Type classifies frames on the wire.
type Type uint8

const (
	// Unguaranteed frames carry dated/statistical traffic (routing tables,
	// "I'm alive" hints). Lost ones are never retransmitted.
	Unguaranteed Type = iota + 1
	// Guaranteed frames carry process messages; the transport layer
	// retransmits them until the destination node acknowledges end-to-end.
	Guaranteed
	// Ack is the end-to-end acknowledgement for a guaranteed frame. The
	// recorder also listens to these: an ack tells it the order in which
	// messages were accepted (queued) at the destination (§4.4.1).
	Ack
	// RecorderAck is the recorder's own acknowledgement, used by media or
	// transports that enforce publish-before-use (§3.3.4, §6.1): a receiver
	// must not use a guaranteed frame until the recorder has stored it.
	RecorderAck
	// Token is the circulating token of the ring medium (§6.1.2); it never
	// leaves the media layer.
	Token
	// Bundle coalesces several small guaranteed/unguaranteed messages for
	// the same destination node into one frame (the steady-state analogue
	// of the recovery replay batches). The Body is a sequence of BundleRec
	// records; the frame-level XLow applies to every guaranteed record, as
	// they all belong to the one src->dst transport stream.
	Bundle
)

var typeNames = map[Type]string{
	Unguaranteed: "unguaranteed",
	Guaranteed:   "guaranteed",
	Ack:          "ack",
	RecorderAck:  "recorder-ack",
	Token:        "token",
	Bundle:       "bundle",
}

// String returns the frame type name.
func (t Type) String() string {
	if s, ok := typeNames[t]; ok {
		return s
	}
	return fmt.Sprintf("type(%d)", uint8(t))
}

// Valid reports whether t is a known frame type; the link layer discards
// frames with invalid types (§4.3.3: "checking the message type for
// validity").
func (t Type) Valid() bool { _, ok := typeNames[t]; return ok }

// Frame is one transmission on the network medium.
type Frame struct {
	Type Type
	// Src and Dst are station (node) addresses. Dst may be Broadcast.
	Src, Dst NodeID

	// ID identifies the guaranteed message this frame carries, or — for Ack
	// and RecorderAck frames — the message being acknowledged.
	ID MsgID

	// From and To are the endpoint processes for Guaranteed/Unguaranteed
	// frames. For control traffic generated on behalf of another process
	// (§4.4.3) From is the impersonated process, so the recorder attributes
	// the message correctly.
	From, To ProcID

	// Channel and Code are copied from the sending link (§4.2.2.3).
	Channel uint16
	Code    uint32

	// XSeq is the transport-layer stream sequence number used to preserve
	// per-processor message order (§4.3.3 anticipates "a windowing scheme
	// that will continue to preserve message ordering"). Layout: bits 63..48
	// hold the sender's boot epoch, bits 47..0 the per-destination sequence.
	XSeq uint64
	// XLow is the lowest XSeq still unacknowledged at the sender when this
	// frame (or retransmission) was put on the wire. The receiver syncs its
	// in-order delivery expectation to it: sequences below XLow were
	// acknowledged before and will never be resent.
	XLow uint64

	// DeliverToKernel routes the message to the destination node's kernel
	// process instead of directly to To (§4.4.3).
	DeliverToKernel bool

	// PassedLink is the (at most one) link included in the message
	// (§4.2.2.3). Nil when no link is passed.
	PassedLink *Link

	// Body is uninterpreted payload.
	Body []byte

	// AckCumSet/AckCum/AckRecs are the piggybacked acknowledgement block.
	// Any gated frame may carry it in the reverse direction of a data
	// stream, so steady-state traffic needs no dedicated ack frames (the
	// delayed/cumulative scheme the LLFT line of systems uses). AckCum,
	// valid when AckCumSet, is a cumulative stream acknowledgement in XSeq
	// layout (epoch<<48 | seq): every guaranteed frame the sender put on
	// the Dst->Src stream with that epoch and a sequence <= seq is
	// acknowledged. AckRecs lists individually acknowledged messages in the
	// order they were accepted at the receiver — the recorder snoops the
	// list to learn arrival order exactly as it did standalone Ack frames
	// (§4.4.1).
	AckCumSet bool
	AckCum    uint64
	AckRecs   []AckRec

	// Corrupt marks a frame whose checksum has been invalidated — either by
	// injected noise or deliberately by the ring recorder when it failed to
	// store the message (§6.1.2). The link layer discards corrupt frames.
	Corrupt bool
}

// AckRec is one piggybacked end-to-end acknowledgement: the message id and
// the process that accepted it (the legacy standalone Ack frame's From).
type AckRec struct {
	ID  MsgID
	Rcv ProcID
}

// headerLen is the encoded size of everything except Body, PassedLink, and
// the optional ack block.
const headerLen = 1 + 4 + 4 + // type, src, dst
	4 + 4 + 8 + // ID (sender node, local, seq)
	4 + 4 + 4 + 4 + // From, To
	2 + 4 + 8 + 8 + 1 + 1 + 1 + // channel, code, xseq, xlow, deliverToKernel, hasLink, hasAcks
	4 // body length

// linkLen is the encoded size of a passed link.
const linkLen = 4 + 4 + 2 + 4 + 1

// ackBlockLen is the fixed part of an encoded ack block (cumSet, cum,
// record count); AckRecLen is each piggybacked acknowledgement record.
const ackBlockLen = 1 + 8 + 2

// AckRecLen is the encoded size of one AckRec, exported so the transport
// can budget how many acknowledgements fit beside a data payload.
const AckRecLen = 4 + 4 + 8 + 4 + 4

// checksumLen is the trailing rotating checksum.
const checksumLen = 4

// MTU is the largest frame the simulated media carry, the classic Ethernet
// maximum the paper's 10 Mb network used.
const MTU = 1500

// MaxBody is the largest Body that fits in one MTU-sized frame alongside
// the header, a passed link, and the checksum. Senders that pack multiple
// records into one frame (the recovery replay pipeline) size their batches
// against this.
const MaxBody = MTU - headerLen - linkLen - checksumLen

// WireLen returns the number of bytes this frame occupies on the medium,
// used by the media simulations to compute transmission time. Acks and
// tokens are minimal frames.
func (f *Frame) WireLen() int {
	n := headerLen + len(f.Body) + checksumLen
	if f.PassedLink != nil {
		n += linkLen
	}
	if f.hasAcks() {
		n += ackBlockLen + len(f.AckRecs)*AckRecLen
	}
	return n
}

// hasAcks reports whether the frame carries an ack block on the wire.
func (f *Frame) hasAcks() bool { return f.AckCumSet || len(f.AckRecs) > 0 }

// Clone returns a deep copy; media hand copies to each station so that one
// receiver mutating a body cannot corrupt another's view (the wire is
// value-semantics).
func (f *Frame) Clone() *Frame {
	g := *f
	if f.Body != nil {
		g.Body = append([]byte(nil), f.Body...)
	}
	if f.PassedLink != nil {
		l := *f.PassedLink
		g.PassedLink = &l
	}
	if f.AckRecs != nil {
		g.AckRecs = append([]AckRec(nil), f.AckRecs...)
	}
	return &g
}

// String summarizes the frame for traces.
func (f *Frame) String() string {
	switch f.Type {
	case Ack, RecorderAck:
		return fmt.Sprintf("%s(%s) n%d->n%d", f.Type, f.ID, f.Src, f.Dst)
	case Bundle:
		return fmt.Sprintf("bundle n%d->n%d len=%d acks=%d", f.Src, f.Dst, len(f.Body), len(f.AckRecs))
	case Token:
		return "token"
	default:
		return fmt.Sprintf("%s %s %s->%s ch=%d len=%d", f.Type, f.ID, f.From, f.To, f.Channel, len(f.Body))
	}
}

// Checksum computes the link-layer rotating checksum over the encoded
// header and body (§4.3.3: "wrapping all messages with a rotating
// checksum"). It rotates the accumulator left one bit per byte and XORs, so
// byte transpositions are detected, unlike a plain additive sum.
func Checksum(b []byte) uint32 {
	var c uint32
	for _, x := range b {
		c = (c << 1) | (c >> 31) // rotate left 1
		c ^= uint32(x)
	}
	return c
}

// Encode serializes the frame including its trailing checksum. A Corrupt
// frame is encoded with its checksum complemented, exactly how the ring
// recorder invalidates a message it failed to store (§6.1.2).
func (f *Frame) Encode() []byte {
	return f.AppendEncode(make([]byte, 0, f.WireLen()))
}

func appendBool(buf []byte, b bool) []byte {
	if b {
		return append(buf, 1)
	}
	return append(buf, 0)
}

func appendProc(buf []byte, p ProcID) []byte {
	buf = binary.BigEndian.AppendUint32(buf, uint32(p.Node))
	return binary.BigEndian.AppendUint32(buf, p.Local)
}

// AppendEncode serializes the frame (checksum included) onto buf and
// returns the extended slice. Passing a reused buffer (`buf[:0]` of a
// previous call) makes encoding allocation-free — the media and starhub hot
// paths depend on this. The checksum covers only the bytes this call
// appends, so buf may already hold unrelated data.
func (f *Frame) AppendEncode(buf []byte) []byte {
	start := len(buf)
	buf = append(buf, uint8(f.Type))
	buf = binary.BigEndian.AppendUint32(buf, uint32(f.Src))
	buf = binary.BigEndian.AppendUint32(buf, uint32(f.Dst))
	buf = appendProc(buf, f.ID.Sender)
	buf = binary.BigEndian.AppendUint64(buf, f.ID.Seq)
	buf = appendProc(buf, f.From)
	buf = appendProc(buf, f.To)
	buf = binary.BigEndian.AppendUint16(buf, f.Channel)
	buf = binary.BigEndian.AppendUint32(buf, f.Code)
	buf = binary.BigEndian.AppendUint64(buf, f.XSeq)
	buf = binary.BigEndian.AppendUint64(buf, f.XLow)
	buf = appendBool(buf, f.DeliverToKernel)
	buf = appendBool(buf, f.PassedLink != nil)
	buf = appendBool(buf, f.hasAcks())
	buf = binary.BigEndian.AppendUint32(buf, uint32(len(f.Body)))
	if f.PassedLink != nil {
		buf = appendProc(buf, f.PassedLink.To)
		buf = binary.BigEndian.AppendUint16(buf, f.PassedLink.Channel)
		buf = binary.BigEndian.AppendUint32(buf, f.PassedLink.Code)
		buf = appendBool(buf, f.PassedLink.DeliverToKernel)
	}
	if f.hasAcks() {
		buf = appendBool(buf, f.AckCumSet)
		cum := f.AckCum
		if !f.AckCumSet {
			cum = 0
		}
		buf = binary.BigEndian.AppendUint64(buf, cum)
		buf = binary.BigEndian.AppendUint16(buf, uint16(len(f.AckRecs)))
		for i := range f.AckRecs {
			r := &f.AckRecs[i]
			buf = appendProc(buf, r.ID.Sender)
			buf = binary.BigEndian.AppendUint64(buf, r.ID.Seq)
			buf = appendProc(buf, r.Rcv)
		}
	}
	buf = append(buf, f.Body...)

	sum := Checksum(buf[start:])
	if f.Corrupt {
		sum = ^sum
	}
	return binary.BigEndian.AppendUint32(buf, sum)
}

// Decoding errors.
var (
	ErrShortFrame  = errors.New("frame: truncated")
	ErrBadChecksum = errors.New("frame: checksum mismatch")
	ErrBadType     = errors.New("frame: invalid type")
)

// Decode parses an encoded frame, verifying the checksum. A checksum
// mismatch returns ErrBadChecksum — the link layer's cue to discard the
// frame silently and let the transport layer retransmit.
func Decode(b []byte) (*Frame, error) {
	f := &Frame{}
	if err := DecodeInto(f, b); err != nil {
		return nil, err
	}
	return f, nil
}

// DecodeInto parses an encoded frame into f, verifying the checksum like
// Decode. It reuses f's existing Body capacity (and PassedLink allocation)
// where possible, so a caller decoding a stream of frames into one reused
// Frame allocates nothing in steady state. Every field of f is overwritten;
// on error f is left in an unspecified state and must not be used.
func DecodeInto(f *Frame, b []byte) error {
	if len(b) < headerLen+checksumLen {
		return ErrShortFrame
	}
	payload, sumBytes := b[:len(b)-checksumLen], b[len(b)-checksumLen:]
	if Checksum(payload) != binary.BigEndian.Uint32(sumBytes) {
		return ErrBadChecksum
	}

	pos := 0
	get8 := func() uint8 { v := payload[pos]; pos++; return v }
	get16 := func() uint16 { v := binary.BigEndian.Uint16(payload[pos:]); pos += 2; return v }
	get32 := func() uint32 { v := binary.BigEndian.Uint32(payload[pos:]); pos += 4; return v }
	get64 := func() uint64 { v := binary.BigEndian.Uint64(payload[pos:]); pos += 8; return v }
	getProc := func() ProcID { n := NodeID(int32(get32())); l := get32(); return ProcID{Node: n, Local: l} }
	getBool := func() bool { return get8() != 0 }

	f.Type = Type(get8())
	if !f.Type.Valid() {
		return ErrBadType
	}
	f.Src = NodeID(int32(get32()))
	f.Dst = NodeID(int32(get32()))
	f.ID.Sender = getProc()
	f.ID.Seq = get64()
	f.From = getProc()
	f.To = getProc()
	f.Channel = get16()
	f.Code = get32()
	f.XSeq = get64()
	f.XLow = get64()
	f.DeliverToKernel = getBool()
	hasLink := getBool()
	hasAcks := getBool()
	bodyLen := int(get32())
	f.Corrupt = false
	if hasLink {
		if len(payload)-pos < linkLen {
			return ErrShortFrame
		}
		l := f.PassedLink
		if l == nil {
			l = &Link{}
		}
		l.To = getProc()
		l.Channel = get16()
		l.Code = get32()
		l.DeliverToKernel = getBool()
		f.PassedLink = l
	} else {
		f.PassedLink = nil
	}
	reuseRecs := f.AckRecs
	f.AckCumSet, f.AckCum, f.AckRecs = false, 0, nil
	if hasAcks {
		if len(payload)-pos < ackBlockLen {
			return ErrShortFrame
		}
		f.AckCumSet = getBool()
		f.AckCum = get64()
		if !f.AckCumSet {
			f.AckCum = 0
		}
		n := int(get16())
		if len(payload)-pos < n*AckRecLen {
			return ErrShortFrame
		}
		if n > 0 {
			recs := reuseRecs
			if cap(recs) < n {
				recs = make([]AckRec, 0, n)
			}
			recs = recs[:0]
			for i := 0; i < n; i++ {
				var r AckRec
				r.ID.Sender = getProc()
				r.ID.Seq = get64()
				r.Rcv = getProc()
				recs = append(recs, r)
			}
			f.AckRecs = recs
		}
	}
	if len(payload)-pos != bodyLen {
		return ErrShortFrame
	}
	if bodyLen > 0 {
		f.Body = append(f.Body[:0], payload[pos:pos+bodyLen]...)
	} else {
		f.Body = f.Body[:0]
	}
	return nil
}
