package frame

import (
	"bytes"
	"errors"
	"reflect"
	"testing"
)

func bundleCorpus() []BundleRec {
	return []BundleRec{
		{
			Type: Guaranteed,
			ID:   MsgID{Sender: ProcID{Node: 0, Local: 1}, Seq: 7},
			From: ProcID{Node: 0, Local: 1}, To: ProcID{Node: 1, Local: 2},
			Channel: 3, Code: 99, XSeq: 1<<48 | 12,
			Body: []byte("step=7 sum=42"),
		},
		{
			Type: Guaranteed,
			ID:   MsgID{Sender: ProcID{Node: 0, Local: 1}, Seq: 8},
			From: ProcID{Node: 0, Local: 1}, To: ProcID{Node: 1, Local: 2},
			XSeq: 1<<48 | 13, DeliverToKernel: true,
			HasLink: true,
			Link:    Link{To: ProcID{Node: 0, Local: 1}, Channel: 9, Code: 4, DeliverToKernel: true},
		},
		{
			Type: Unguaranteed,
			From: ProcID{Node: 0, Local: 0}, To: ProcID{Node: 1, Local: 0},
			Body: []byte{0xfe},
		},
	}
}

func TestBundleRoundTrip(t *testing.T) {
	recs := bundleCorpus()
	body := BeginBundle(nil)
	want := BundleHdrLen
	for i := range recs {
		body = AppendBundleRec(body, &recs[i])
		want += recs[i].EncodedLen()
	}
	body = FinishBundle(body, 0, len(recs))
	if len(body) != want {
		t.Fatalf("encoded %d bytes, EncodedLen sums to %d", len(body), want)
	}

	got, err := DecodeBundle(body, nil)
	if err != nil {
		t.Fatalf("DecodeBundle: %v", err)
	}
	if len(got) != len(recs) {
		t.Fatalf("decoded %d records, want %d", len(got), len(recs))
	}
	for i := range recs {
		g, w := got[i], recs[i]
		if len(g.Body) == 0 {
			g.Body = nil
		}
		if !bytes.Equal(g.Body, w.Body) {
			t.Errorf("record %d body mismatch: %q vs %q", i, g.Body, w.Body)
		}
		g.Body, w.Body = nil, nil
		if !reflect.DeepEqual(g, w) {
			t.Errorf("record %d mismatch:\n got %+v\nwant %+v", i, g, w)
		}
	}
	// Zero-copy: decoded bodies alias the batch body.
	if len(got[0].Body) > 0 && &got[0].Body[0] != &body[BundleHdrLen+BundleRecFixed] {
		t.Error("decoded record body does not alias the bundle body")
	}
}

func TestBundleRecExpand(t *testing.T) {
	bundle := &Frame{Type: Bundle, Src: 0, Dst: 1, XLow: 1<<48 | 10}
	rec := bundleCorpus()[1]
	f := rec.Expand(bundle)
	if f.Type != Guaranteed || f.Src != 0 || f.Dst != 1 || f.XLow != bundle.XLow {
		t.Fatalf("expanded frame lost addressing: %+v", f)
	}
	if f.ID != rec.ID || f.XSeq != rec.XSeq || !f.DeliverToKernel {
		t.Fatalf("expanded frame lost record fields: %+v", f)
	}
	if f.PassedLink == nil || *f.PassedLink != rec.Link {
		t.Fatalf("expanded frame lost the passed link: %+v", f.PassedLink)
	}

	// RecOf is the inverse.
	var back BundleRec
	back.RecOf(f)
	if !reflect.DeepEqual(back, rec) {
		t.Fatalf("RecOf(Expand(rec)) != rec:\n got %+v\nwant %+v", back, rec)
	}
}

func TestBundleDecodeRejectsGarbage(t *testing.T) {
	recs := bundleCorpus()
	body := BeginBundle(nil)
	for i := range recs {
		body = AppendBundleRec(body, &recs[i])
	}
	body = FinishBundle(body, 0, len(recs))

	cases := [][]byte{
		nil,
		{0},
		body[:len(body)-1],                       // truncated record
		append(body[:len(body):len(body)], 0xaa), // trailing garbage
	}
	for i, b := range cases {
		if _, err := DecodeBundle(b, nil); err == nil {
			t.Errorf("case %d: decode accepted malformed body", i)
		} else if !errors.Is(err, ErrShortFrame) && !errors.Is(err, ErrBadType) {
			t.Errorf("case %d: undocumented error %v", i, err)
		}
	}

	bad := append([]byte(nil), body...)
	bad[BundleHdrLen] = uint8(Token) // records cannot be control frames
	if _, err := DecodeBundle(bad, nil); !errors.Is(err, ErrBadType) {
		t.Errorf("bad record type not rejected: %v", err)
	}
}

func TestAckIDListRoundTrip(t *testing.T) {
	ids := []MsgID{
		{Sender: ProcID{Node: 0, Local: 1}, Seq: 7},
		{Sender: ProcID{Node: 2, Local: 5}, Seq: 1},
	}
	var body []byte
	for _, id := range ids {
		body = AppendAckID(body, id)
	}
	if len(body) != len(ids)*AckIDLen {
		t.Fatalf("encoded %d bytes, want %d", len(body), len(ids)*AckIDLen)
	}
	got, err := DecodeAckIDs(body, nil)
	if err != nil {
		t.Fatalf("DecodeAckIDs: %v", err)
	}
	if !reflect.DeepEqual(got, ids) {
		t.Fatalf("round trip mismatch: %v vs %v", got, ids)
	}
	if _, err := DecodeAckIDs(body[:AckIDLen+3], nil); err == nil {
		t.Fatal("truncated id list not rejected")
	}
}

func TestAckBlockRoundTrip(t *testing.T) {
	f := &Frame{
		Type: Guaranteed, Src: 1, Dst: 0,
		ID:   MsgID{Sender: ProcID{Node: 1, Local: 4}, Seq: 3},
		From: ProcID{Node: 1, Local: 4}, To: ProcID{Node: 0, Local: 1},
		XSeq: 3, Body: []byte("reverse data"),
		AckCumSet: true, AckCum: 1<<48 | 6,
		AckRecs: []AckRec{
			{ID: MsgID{Sender: ProcID{Node: 0, Local: 1}, Seq: 7}, Rcv: ProcID{Node: 1, Local: 2}},
		},
	}
	enc := f.Encode()
	if len(enc) != f.WireLen() {
		t.Fatalf("WireLen %d but encoded %d bytes", f.WireLen(), len(enc))
	}
	g, err := Decode(enc)
	if err != nil {
		t.Fatalf("Decode: %v", err)
	}
	if !g.AckCumSet || g.AckCum != f.AckCum || !reflect.DeepEqual(g.AckRecs, f.AckRecs) {
		t.Fatalf("ack block did not round trip: %+v", g)
	}
	// Clone must deep-copy the records.
	c := f.Clone()
	c.AckRecs[0].ID.Seq = 999
	if f.AckRecs[0].ID.Seq == 999 {
		t.Fatal("Clone shares AckRecs storage")
	}
}
