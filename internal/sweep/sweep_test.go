package sweep_test

import (
	"bytes"
	"fmt"
	"testing"

	"publishing"
	"publishing/internal/simtime"
	"publishing/internal/sweep"
)

type sinkMachine struct{}

func (sinkMachine) Init(ctx *publishing.PCtx)                     {}
func (sinkMachine) Handle(ctx *publishing.PCtx, m publishing.Msg) {}
func (sinkMachine) Snapshot() ([]byte, error)                     { return nil, nil }
func (sinkMachine) Restore(b []byte) error                        { return nil }

// clusterRun is the sweep_test RunFunc: a full publishing cluster with a
// generator/sink workload, serialized as the complete event trace plus the
// end-of-run counters. Any nondeterminism anywhere in the stack — scheduler,
// medium, transport, recorder, stable store — shows up as a byte difference.
func clusterRun(t sweep.Task) ([]byte, error) {
	var trace bytes.Buffer
	cfg := publishing.DefaultConfig(3)
	cfg.Seed = t.Seed
	cfg.Medium = publishing.MediumKind(t.Config)
	cfg.TraceWriter = &trace
	c := publishing.New(cfg)
	c.Registry().RegisterMachine("sink", func(args []byte) publishing.Machine { return sinkMachine{} })
	c.Registry().RegisterProgram("gen", func(args []byte) publishing.Program {
		return func(ctx *publishing.PCtx) {
			l, _ := ctx.ServiceLink("sink")
			for j := 0; j < 40; j++ {
				_ = ctx.Send(l, []byte{byte(j)}, publishing.NoLink)
				ctx.Compute(5 * simtime.Millisecond)
			}
		}
	})
	sink, err := c.Spawn(1, publishing.ProcSpec{Name: "sink", Recoverable: true})
	if err != nil {
		return nil, err
	}
	c.SetService("sink", sink)
	if _, err := c.Spawn(0, publishing.ProcSpec{Name: "gen", Recoverable: true}); err != nil {
		return nil, err
	}
	c.Run(30 * simtime.Second)
	fmt.Fprintf(&trace, "fired=%d now=%v\n", c.Scheduler().Fired(), c.Now())
	fmt.Fprintf(&trace, "recorder=%+v\n", *c.Recorder().Stats())
	fmt.Fprintf(&trace, "medium=%+v\n", *c.Medium().Stats())
	fmt.Fprintf(&trace, "store=%+v\n", c.Store().Stats())
	return trace.Bytes(), nil
}

func sweepTasks() []sweep.Task {
	var tasks []sweep.Task
	for _, medium := range []string{"perfect", "ether"} {
		for seed := uint64(1); seed <= 4; seed++ {
			tasks = append(tasks, sweep.Task{Config: medium, Seed: seed})
		}
	}
	return tasks
}

func TestParallelSweepMatchesSerial(t *testing.T) {
	// The acceptance property: for every (config, seed), the parallel
	// sweep's output is byte-identical to serial execution. Run under
	// -race this also proves the runs share no mutable state.
	tasks := sweepTasks()
	serial := sweep.RunSerial(tasks, clusterRun)
	parallel := sweep.Run(tasks, 0, clusterRun)
	for i, r := range serial {
		if r.Err != nil {
			t.Fatalf("task %d (%+v): %v", i, r.Task, r.Err)
		}
		if len(r.Output) == 0 {
			t.Fatalf("task %d (%+v): empty output proves nothing", i, r.Task)
		}
	}
	if err := sweep.Verify(serial, parallel); err != nil {
		t.Fatal(err)
	}
	// And a second parallel run reproduces the digests exactly.
	again := sweep.Run(tasks, 3, clusterRun)
	if err := sweep.Verify(parallel, again); err != nil {
		t.Fatal(err)
	}
}

func TestSeedsActuallyDiffer(t *testing.T) {
	// Guard against a vacuous determinism proof: different seeds must
	// produce different traces (the medium and costs are randomized).
	rs := sweep.RunSerial([]sweep.Task{{Config: "ether", Seed: 1}, {Config: "ether", Seed: 2}}, clusterRun)
	if rs[0].Err != nil || rs[1].Err != nil {
		t.Fatalf("runs failed: %v %v", rs[0].Err, rs[1].Err)
	}
	if rs[0].Digest == rs[1].Digest {
		t.Fatal("seeds 1 and 2 produced identical traces; sweep would prove nothing")
	}
}

func TestVerifyReportsDivergence(t *testing.T) {
	fn := func(t sweep.Task) ([]byte, error) { return []byte{byte(t.Seed)}, nil }
	tasks := []sweep.Task{{Config: "c", Seed: 1}, {Config: "c", Seed: 2}}
	a := sweep.RunSerial(tasks, fn)
	b := sweep.RunSerial(tasks, fn)
	if err := sweep.Verify(a, b); err != nil {
		t.Fatalf("identical runs rejected: %v", err)
	}
	b[1].Output = []byte{0xff}
	if err := sweep.Verify(a, b); err == nil {
		t.Fatal("diverging output not detected")
	}
	if err := sweep.Verify(a, a[:1]); err == nil {
		t.Fatal("length mismatch not detected")
	}
}

func TestRunOrdersResultsByTask(t *testing.T) {
	var tasks []sweep.Task
	for i := uint64(0); i < 50; i++ {
		tasks = append(tasks, sweep.Task{Config: "c", Seed: i})
	}
	rs := sweep.Run(tasks, 8, func(t sweep.Task) ([]byte, error) {
		return []byte(fmt.Sprintf("seed-%d", t.Seed)), nil
	})
	for i, r := range rs {
		if r.Task != tasks[i] {
			t.Fatalf("result %d is for task %+v", i, r.Task)
		}
		if string(r.Output) != fmt.Sprintf("seed-%d", i) {
			t.Fatalf("result %d output %q", i, r.Output)
		}
	}
}
