// Package sweep fans independent deterministic simulations out across a
// worker pool. Each (config, seed) run owns a private Scheduler, Rand, and
// cluster, so runs share no mutable state and the fan-out changes nothing
// about any individual execution: a task's output is bit-identical whether
// it runs serially or on N goroutines. Verify checks exactly that, turning
// the substrate's determinism claim (see internal/simtime) into an asserted
// property rather than an assumption.
package sweep

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"runtime"
	"sync"
	"time"
)

// Task names one independent simulation: a configuration label and the seed
// that drives every random stream in it.
type Task struct {
	Config string
	Seed   uint64
}

// RunFunc executes one task from scratch and serializes its outcome. It
// must be pure with respect to the task: build a fresh simulation from
// (Config, Seed), run it, and return only data derived from the simulation
// (no wall-clock times, no shared counters). Purity is what makes parallel
// execution indistinguishable from serial.
type RunFunc func(t Task) ([]byte, error)

// Result is one task's outcome.
type Result struct {
	Task   Task
	Output []byte
	// Digest is the hex SHA-256 of Output — the per-seed fingerprint that
	// trajectory files record.
	Digest string
	Err    error
	// Elapsed is host wall time for the run (reporting only; never part of
	// Output).
	Elapsed time.Duration
}

// Run executes every task on a pool of workers goroutines (GOMAXPROCS when
// workers <= 0), returning results in task order.
func Run(tasks []Task, workers int, fn RunFunc) []Result {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(tasks) {
		workers = len(tasks)
	}
	results := make([]Result, len(tasks))
	idx := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range idx {
				results[i] = runOne(tasks[i], fn)
			}
		}()
	}
	for i := range tasks {
		idx <- i
	}
	close(idx)
	wg.Wait()
	return results
}

// RunSerial executes every task in order on the calling goroutine — the
// reference execution Verify compares a parallel run against.
func RunSerial(tasks []Task, fn RunFunc) []Result {
	results := make([]Result, len(tasks))
	for i := range tasks {
		results[i] = runOne(tasks[i], fn)
	}
	return results
}

func runOne(t Task, fn RunFunc) Result {
	start := time.Now()
	out, err := fn(t)
	sum := sha256.Sum256(out)
	return Result{
		Task:    t,
		Output:  out,
		Digest:  hex.EncodeToString(sum[:]),
		Err:     err,
		Elapsed: time.Since(start),
	}
}

// Verify checks that two executions of the same task list produced
// bit-identical per-task outputs, reporting the first divergence.
func Verify(a, b []Result) error {
	if len(a) != len(b) {
		return fmt.Errorf("sweep: result counts differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i].Task != b[i].Task {
			return fmt.Errorf("sweep: task %d differs: %+v vs %+v", i, a[i].Task, b[i].Task)
		}
		ae, be := a[i].Err, b[i].Err
		if (ae == nil) != (be == nil) {
			return fmt.Errorf("sweep: task %+v errors diverge: %v vs %v", a[i].Task, ae, be)
		}
		if !bytes.Equal(a[i].Output, b[i].Output) {
			return fmt.Errorf("sweep: task %+v outputs diverge: %s vs %s (lengths %d vs %d)",
				a[i].Task, a[i].Digest, b[i].Digest, len(a[i].Output), len(b[i].Output))
		}
	}
	return nil
}
