package simtime

import "math"

// Rand is a small, fast, seedable PRNG (splitmix64 core) used everywhere the
// simulations need randomness: exponential interarrival times in the queuing
// model, Ethernet backoff, fault injection. We deliberately avoid math/rand's
// global state so that independent simulation components can own independent,
// reproducible streams.
type Rand struct {
	state uint64
}

// NewRand returns a PRNG seeded with seed. Two Rands with the same seed
// produce identical streams.
func NewRand(seed uint64) *Rand {
	// Avoid the all-zeros fixed point by mixing the seed once up front.
	r := &Rand{state: seed}
	r.Uint64()
	return r
}

// Uint64 returns the next 64 pseudo-random bits (splitmix64).
func (r *Rand) Uint64() uint64 {
	r.state += 0x9e3779b97f4a7c15
	z := r.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Intn returns a uniform int in [0, n). It panics if n <= 0.
func (r *Rand) Intn(n int) int {
	if n <= 0 {
		panic("simtime: Intn with non-positive n")
	}
	return int(r.Uint64() % uint64(n))
}

// Float64 returns a uniform float64 in [0, 1).
func (r *Rand) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Exp returns an exponentially distributed duration with the given mean.
// This is the arrival process the paper's queuing model assumes
// ("Assuming that failures arrive exponentially", §3.2.4; Poisson message
// sources in §5.1).
func (r *Rand) Exp(mean Time) Time {
	if mean <= 0 {
		return 0
	}
	u := r.Float64()
	for u == 0 {
		u = r.Float64()
	}
	d := -math.Log(u) * float64(mean)
	if d >= float64(math.MaxInt64) {
		return Never - 1
	}
	return Time(d)
}

// Bool returns true with probability p.
func (r *Rand) Bool(p float64) bool {
	return r.Float64() < p
}

// Fork derives an independent child stream. Children of the same parent in
// the same order are reproducible.
func (r *Rand) Fork() *Rand {
	return NewRand(r.Uint64())
}
