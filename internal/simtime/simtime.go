// Package simtime provides the deterministic discrete-event substrate on
// which every simulation in this repository runs: a virtual clock, an event
// scheduler, and a seedable pseudo-random source.
//
// The paper's testbed was real hardware (VAX 11/780s, Z8000s, a 10 Mb/s
// Ethernet). We substitute virtual time so that every experiment is exactly
// reproducible: two runs with the same seed produce bit-identical event
// orders. Determinism is not just a convenience here — it is the property
// published communications itself relies on (§1.1.1 of the paper), so the
// substrate doubles as a statement of the model's assumptions.
package simtime

import (
	"fmt"
	"math"
)

// Time is virtual time in nanoseconds since the start of the simulation.
// Nanoseconds give enough resolution to express the paper's parameters
// (0.01 ms/byte, 0.8 ms/packet) without floating-point drift in the clock.
type Time int64

// Common durations, mirroring time.Duration conventions.
const (
	Nanosecond  Time = 1
	Microsecond      = 1000 * Nanosecond
	Millisecond      = 1000 * Microsecond
	Second           = 1000 * Millisecond
	Minute           = 60 * Second

	// Never is a sentinel for "no deadline".
	Never Time = math.MaxInt64
)

// Seconds reports t as floating-point seconds.
func (t Time) Seconds() float64 { return float64(t) / float64(Second) }

// Milliseconds reports t as floating-point milliseconds.
func (t Time) Milliseconds() float64 { return float64(t) / float64(Millisecond) }

// String formats the time as milliseconds with microsecond precision,
// the natural scale of the paper's measurements.
func (t Time) String() string {
	if t == Never {
		return "never"
	}
	return fmt.Sprintf("%.3fms", t.Milliseconds())
}

// FromSeconds converts floating-point seconds to a Time.
func FromSeconds(s float64) Time { return Time(s * float64(Second)) }

// FromMillis converts floating-point milliseconds to a Time.
func FromMillis(ms float64) Time { return Time(ms * float64(Millisecond)) }

// eventNode is the scheduler-owned state of one scheduled callback. Nodes
// are pooled on a free list: once an event fires or is cancelled its node
// returns to the scheduler and is re-armed for a later event under a new
// generation number, so the hot path schedules without heap allocation.
type eventNode struct {
	at   Time
	seq  uint64
	fn   func()
	gen  uint32 // incremented each time the node is re-armed
	idx  int    // heap index; -1 not queued, -2 held by a parallel window
	dead bool   // cancelled before firing (valid for the current gen)
	aff  int32  // logical-process affinity (serialAff = engine-serial)
	ref  int32  // parallel engine: execution-record index, -1 otherwise
}

// Event is a handle on a scheduled callback. It is a small value (copyable,
// comparable to its zero value) stamped with the generation of the node it
// refers to: once the event fires or is cancelled, the scheduler may reuse
// the node for a later event, and this handle silently becomes inert —
// Cancel on a stale handle is a no-op and can never affect the new event.
// The zero Event refers to nothing.
//
// Events with equal times fire in the order they were scheduled (FIFO
// tie-break by sequence number), which keeps the simulation deterministic
// without requiring callers to perturb timestamps.
type Event struct {
	n   *eventNode
	gen uint32
}

// live reports whether the handle still refers to its original event.
func (e Event) live() bool { return e.n != nil && e.n.gen == e.gen }

// Cancelled reports whether the event was cancelled before firing. Once the
// scheduler reuses the underlying slot for a later event, the handle is
// stale and Cancelled reports false (the event is simply done).
func (e Event) Cancelled() bool { return e.live() && e.n.dead }

// Pending reports whether the event is still queued to fire. An event held
// by a parallel execution window (idx == -2, see par.go) is still pending:
// it has neither fired nor been cancelled, exactly as if it were queued.
func (e Event) Pending() bool { return e.live() && !e.n.dead && e.n.idx != -1 }

// At reports the virtual time the event is scheduled for, or 0 once the
// handle is stale.
func (e Event) At() Time {
	if !e.live() {
		return 0
	}
	return e.n.at
}

// Scheduler owns the virtual clock and the pending event queue. It is not
// safe for concurrent use: the entire simulation is single-threaded by
// design (process goroutines are stepped synchronously by the kernel
// scheduler, never run concurrently with the event loop). Run whole
// independent simulations on separate Schedulers to use multiple cores
// (see internal/sweep).
type Scheduler struct {
	now    Time
	seq    uint64
	events []*eventNode // 4-ary min-heap on (at, seq)
	free   []*eventNode // recycled nodes, reused by At/After
	fired  uint64
	halted bool
}

// NewScheduler returns a scheduler with the clock at zero.
func NewScheduler() *Scheduler {
	return &Scheduler{}
}

// Now returns the current virtual time.
func (s *Scheduler) Now() Time { return s.now }

// Fired returns the number of events executed so far.
func (s *Scheduler) Fired() uint64 { return s.fired }

// alloc takes a node from the free list (or the heap allocator) and arms it
// under a fresh generation.
func (s *Scheduler) alloc() *eventNode {
	var n *eventNode
	if k := len(s.free); k > 0 {
		n = s.free[k-1]
		s.free[k-1] = nil
		s.free = s.free[:k-1]
	} else {
		n = &eventNode{}
	}
	n.gen++
	n.dead = false
	return n
}

// recycle returns a node to the free list. The node keeps its generation
// until re-armed, so outstanding handles still answer queries correctly.
func (s *Scheduler) recycle(n *eventNode) {
	n.fn = nil
	n.idx = -1
	n.ref = -1
	s.free = append(s.free, n)
}

// At schedules fn to run at absolute virtual time t. Scheduling in the past
// is a programming error and panics: silently reordering time would destroy
// the causality the recorder depends on.
//
// Events scheduled through the Scheduler directly carry serial affinity:
// the parallel engine (par.go) executes them alone, never concurrently with
// other events. Per-LP affinity is assigned by the engine's LPClock views.
func (s *Scheduler) At(t Time, fn func()) Event {
	return s.atAff(serialAff, t, fn)
}

func (s *Scheduler) atAff(aff int32, t Time, fn func()) Event {
	if t < s.now {
		panic(fmt.Sprintf("simtime: event scheduled in the past: %v < %v", t, s.now))
	}
	n := s.alloc()
	n.at, n.seq, n.fn = t, s.seq, fn
	n.aff, n.ref = aff, -1
	s.seq++
	s.push(n)
	return Event{n: n, gen: n.gen}
}

// After schedules fn to run d after the current time.
func (s *Scheduler) After(d Time, fn func()) Event {
	if d < 0 {
		panic(fmt.Sprintf("simtime: negative delay %v", d))
	}
	return s.At(s.now+d, fn)
}

// Cancel removes a pending event. Cancelling an already-fired, already-
// cancelled, stale, or zero handle is a no-op.
func (s *Scheduler) Cancel(e Event) {
	n := e.n
	if n == nil || n.gen != e.gen || n.dead || n.idx == -1 {
		return
	}
	if n.idx == -2 {
		// Held by a parallel execution window (or buffered as an intent):
		// mark dead; the window executor skips it and recycles at the merge
		// barrier. Observably identical to immediate removal.
		n.dead = true
		return
	}
	n.dead = true
	s.removeAt(n.idx)
	s.recycle(n)
}

// Step fires the next pending event, advancing the clock to its timestamp.
// It reports false when the queue is empty or the scheduler is halted.
func (s *Scheduler) Step() bool {
	if s.halted || len(s.events) == 0 {
		return false
	}
	n := s.popMin()
	s.now = n.at
	s.fired++
	fn := n.fn
	// Recycle before running: the callback may immediately schedule new
	// events and reuse this very node (under a new generation).
	s.recycle(n)
	fn()
	return true
}

// Run fires events until the queue drains or the clock passes limit.
// It returns the number of events fired.
func (s *Scheduler) Run(limit Time) uint64 {
	start := s.fired
	for !s.halted && len(s.events) > 0 {
		if next := s.events[0].at; next > limit {
			// Leave future events queued; advance the clock to the limit so
			// utilization windows close at a well-defined instant.
			s.now = limit
			break
		}
		s.Step()
	}
	if len(s.events) == 0 && s.now < limit {
		s.now = limit
	}
	return s.fired - start
}

// RunAll fires events until none remain. A safety cap guards against
// runaway self-rescheduling loops; exceeding it panics, since an unbounded
// simulation indicates a bug, not load.
func (s *Scheduler) RunAll(maxEvents uint64) uint64 {
	start := s.fired
	for !s.halted && len(s.events) > 0 {
		if s.fired-start >= maxEvents {
			panic(fmt.Sprintf("simtime: exceeded %d events; runaway simulation", maxEvents))
		}
		s.Step()
	}
	return s.fired - start
}

// Halt stops Run/RunAll after the current event returns.
func (s *Scheduler) Halt() { s.halted = true }

// Halted reports whether Halt was called.
func (s *Scheduler) Halted() bool { return s.halted }

// Resume clears a halt.
func (s *Scheduler) Resume() { s.halted = false }

// Pending returns the number of queued (uncancelled) events. Cancel removes
// events from the queue eagerly, so every queued node is live and this is
// O(1) — it used to scan the whole queue filtering cancelled entries.
func (s *Scheduler) Pending() int { return len(s.events) }

// NextAt returns the time of the next pending event, or Never.
func (s *Scheduler) NextAt() Time {
	if len(s.events) == 0 {
		return Never
	}
	return s.events[0].at
}

// --- 4-ary min-heap on (at, seq) --------------------------------------------
//
// Hand-rolled rather than container/heap so pops and removals stay free of
// interface boxing and so the scheduler controls node lifetimes exactly.
//
// The heap is 4-ary rather than binary: half the depth means half the
// sift-down levels per pop, and the four children sit in one cache line of
// the pointer slice. Sifting moves a single hole instead of swapping, so
// each level costs one write, not three. Because (at, seq) is a strict
// total order — seq never repeats — every valid heap pops the identical
// event sequence, so the shape change cannot perturb determinism.

const heapArity = 4

func lessNode(a, b *eventNode) bool {
	if a.at != b.at {
		return a.at < b.at
	}
	return a.seq < b.seq
}

func (s *Scheduler) push(n *eventNode) {
	s.events = append(s.events, n)
	s.up(len(s.events)-1, n)
}

func (s *Scheduler) popMin() *eventNode {
	n := s.events[0]
	last := len(s.events) - 1
	moved := s.events[last]
	s.events[last] = nil
	s.events = s.events[:last]
	if last > 0 {
		s.down(0, moved)
	}
	n.idx = -1
	return n
}

func (s *Scheduler) removeAt(i int) {
	n := s.events[i]
	last := len(s.events) - 1
	moved := s.events[last]
	s.events[last] = nil
	s.events = s.events[:last]
	if i < last {
		if !s.down(i, moved) {
			s.up(i, moved)
		}
	}
	n.idx = -1
}

// up sifts node n toward the root, starting from the hole at index i.
func (s *Scheduler) up(i int, n *eventNode) {
	for i > 0 {
		parent := (i - 1) / heapArity
		p := s.events[parent]
		if !lessNode(n, p) {
			break
		}
		s.events[i] = p
		p.idx = i
		i = parent
	}
	s.events[i] = n
	n.idx = i
}

// down sifts node n toward the leaves, starting from the hole at index i,
// reporting whether it moved.
func (s *Scheduler) down(i int, n *eventNode) bool {
	start := i
	size := len(s.events)
	for {
		first := heapArity*i + 1
		if first >= size {
			break
		}
		least, ln := first, s.events[first]
		end := first + heapArity
		if end > size {
			end = size
		}
		for c := first + 1; c < end; c++ {
			if lessNode(s.events[c], ln) {
				least, ln = c, s.events[c]
			}
		}
		if !lessNode(ln, n) {
			break
		}
		s.events[i] = ln
		ln.idx = i
		i = least
	}
	s.events[i] = n
	n.idx = i
	return i > start
}
