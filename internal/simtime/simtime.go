// Package simtime provides the deterministic discrete-event substrate on
// which every simulation in this repository runs: a virtual clock, an event
// scheduler, and a seedable pseudo-random source.
//
// The paper's testbed was real hardware (VAX 11/780s, Z8000s, a 10 Mb/s
// Ethernet). We substitute virtual time so that every experiment is exactly
// reproducible: two runs with the same seed produce bit-identical event
// orders. Determinism is not just a convenience here — it is the property
// published communications itself relies on (§1.1.1 of the paper), so the
// substrate doubles as a statement of the model's assumptions.
package simtime

import (
	"container/heap"
	"fmt"
	"math"
)

// Time is virtual time in nanoseconds since the start of the simulation.
// Nanoseconds give enough resolution to express the paper's parameters
// (0.01 ms/byte, 0.8 ms/packet) without floating-point drift in the clock.
type Time int64

// Common durations, mirroring time.Duration conventions.
const (
	Nanosecond  Time = 1
	Microsecond      = 1000 * Nanosecond
	Millisecond      = 1000 * Microsecond
	Second           = 1000 * Millisecond
	Minute           = 60 * Second

	// Never is a sentinel for "no deadline".
	Never Time = math.MaxInt64
)

// Seconds reports t as floating-point seconds.
func (t Time) Seconds() float64 { return float64(t) / float64(Second) }

// Milliseconds reports t as floating-point milliseconds.
func (t Time) Milliseconds() float64 { return float64(t) / float64(Millisecond) }

// String formats the time as milliseconds with microsecond precision,
// the natural scale of the paper's measurements.
func (t Time) String() string {
	if t == Never {
		return "never"
	}
	return fmt.Sprintf("%.3fms", t.Milliseconds())
}

// FromSeconds converts floating-point seconds to a Time.
func FromSeconds(s float64) Time { return Time(s * float64(Second)) }

// FromMillis converts floating-point milliseconds to a Time.
func FromMillis(ms float64) Time { return Time(ms * float64(Millisecond)) }

// Event is a scheduled callback. Events with equal times fire in the order
// they were scheduled (FIFO tie-break by sequence number), which keeps the
// simulation deterministic without requiring callers to perturb timestamps.
type Event struct {
	at   Time
	seq  uint64
	fn   func()
	dead bool // cancelled
	idx  int  // heap index, -1 when not queued
}

// Cancelled reports whether the event was cancelled before firing.
func (e *Event) Cancelled() bool { return e.dead }

// At reports the virtual time the event is scheduled for.
func (e *Event) At() Time { return e.at }

type eventHeap []*Event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].idx, h[j].idx = i, j
}
func (h *eventHeap) Push(x any) {
	e := x.(*Event)
	e.idx = len(*h)
	*h = append(*h, e)
}
func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	e.idx = -1
	*h = old[:n-1]
	return e
}

// Scheduler owns the virtual clock and the pending event queue. It is not
// safe for concurrent use: the entire simulation is single-threaded by
// design (process goroutines are stepped synchronously by the kernel
// scheduler, never run concurrently with the event loop).
type Scheduler struct {
	now    Time
	seq    uint64
	events eventHeap
	fired  uint64
	halted bool
}

// NewScheduler returns a scheduler with the clock at zero.
func NewScheduler() *Scheduler {
	return &Scheduler{}
}

// Now returns the current virtual time.
func (s *Scheduler) Now() Time { return s.now }

// Fired returns the number of events executed so far.
func (s *Scheduler) Fired() uint64 { return s.fired }

// At schedules fn to run at absolute virtual time t. Scheduling in the past
// is a programming error and panics: silently reordering time would destroy
// the causality the recorder depends on.
func (s *Scheduler) At(t Time, fn func()) *Event {
	if t < s.now {
		panic(fmt.Sprintf("simtime: event scheduled in the past: %v < %v", t, s.now))
	}
	e := &Event{at: t, seq: s.seq, fn: fn, idx: -1}
	s.seq++
	heap.Push(&s.events, e)
	return e
}

// After schedules fn to run d after the current time.
func (s *Scheduler) After(d Time, fn func()) *Event {
	if d < 0 {
		panic(fmt.Sprintf("simtime: negative delay %v", d))
	}
	return s.At(s.now+d, fn)
}

// Cancel removes a pending event. Cancelling an already-fired or
// already-cancelled event is a no-op.
func (s *Scheduler) Cancel(e *Event) {
	if e == nil || e.dead || e.idx < 0 {
		if e != nil {
			e.dead = true
		}
		return
	}
	e.dead = true
	heap.Remove(&s.events, e.idx)
	e.idx = -1
}

// Step fires the next pending event, advancing the clock to its timestamp.
// It reports false when the queue is empty or the scheduler is halted.
func (s *Scheduler) Step() bool {
	if s.halted {
		return false
	}
	for len(s.events) > 0 {
		e := heap.Pop(&s.events).(*Event)
		if e.dead {
			continue
		}
		s.now = e.at
		s.fired++
		e.fn()
		return true
	}
	return false
}

// Run fires events until the queue drains or the clock passes limit.
// It returns the number of events fired.
func (s *Scheduler) Run(limit Time) uint64 {
	start := s.fired
	for !s.halted && len(s.events) > 0 {
		if next := s.events[0].at; next > limit {
			// Leave future events queued; advance the clock to the limit so
			// utilization windows close at a well-defined instant.
			s.now = limit
			break
		}
		s.Step()
	}
	if len(s.events) == 0 && s.now < limit {
		s.now = limit
	}
	return s.fired - start
}

// RunAll fires events until none remain. A safety cap guards against
// runaway self-rescheduling loops; exceeding it panics, since an unbounded
// simulation indicates a bug, not load.
func (s *Scheduler) RunAll(maxEvents uint64) uint64 {
	start := s.fired
	for !s.halted && len(s.events) > 0 {
		if s.fired-start >= maxEvents {
			panic(fmt.Sprintf("simtime: exceeded %d events; runaway simulation", maxEvents))
		}
		s.Step()
	}
	return s.fired - start
}

// Halt stops Run/RunAll after the current event returns.
func (s *Scheduler) Halt() { s.halted = true }

// Halted reports whether Halt was called.
func (s *Scheduler) Halted() bool { return s.halted }

// Resume clears a halt.
func (s *Scheduler) Resume() { s.halted = false }

// Pending returns the number of queued (uncancelled) events.
func (s *Scheduler) Pending() int {
	n := 0
	for _, e := range s.events {
		if !e.dead {
			n++
		}
	}
	return n
}

// NextAt returns the time of the next pending event, or Never.
func (s *Scheduler) NextAt() Time {
	if len(s.events) == 0 {
		return Never
	}
	return s.events[0].at
}
