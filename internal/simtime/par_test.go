package simtime

import (
	"fmt"
	"testing"
)

// The engine's contract is byte-identity with the serial scheduler, so the
// tests here are differential: a randomized multi-LP simulation model — LPs
// that chatter through a FIFO shared medium, schedule bursts of short and
// long follow-ups, and cancel each other's stale work — is run on the plain
// scheduler and on the engine at several worker counts, and every externally
// observable quantity (per-LP state hashes, medium state, event counts, the
// clock) must match exactly. The model deliberately mirrors the cluster's
// structure: per-LP scheduling through LPClock, medium sends captured via
// Defer inside windows, frame completions as serial-affinity events.

// splitmix64 advances *x and returns the next value of a SplitMix64 stream —
// a tiny deterministic PRNG private to each model LP.
func splitmix64(x *uint64) uint64 {
	*x += 0x9e3779b97f4a7c15
	z := *x
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

func mix(h, v uint64) uint64 {
	h ^= v
	h *= 0x100000001b3
	return h
}

// modelSim is the shared world: the scheduler/engine pair, the LPs, and a
// FIFO medium whose busy-until chain and delivery log are shared mutable
// state that must only ever mutate in serial order.
type modelSim struct {
	s       *Scheduler
	eng     *Engine // nil for the plain serial reference
	lps     []*modelLP
	frame   Time // medium transmission time (== the engine's lookahead)
	horizon Time // LPs stop seeding new work past this virtual time
	medBusy Time
	medHash uint64
	sends   int
	deliv   int
}

type modelLP struct {
	sim     *modelSim
	id      int
	clk     Clock
	rng     uint64
	hash    uint64
	steps   int
	pending []Event
}

func newModelSim(eng *Engine, s *Scheduler, lps int, seed uint64) *modelSim {
	m := &modelSim{
		s:       s,
		eng:     eng,
		frame:   500 * Microsecond,
		horizon: 40 * Millisecond,
	}
	for i := 0; i < lps; i++ {
		lp := &modelLP{sim: m, id: i, rng: seed + uint64(i)*0x9e37, hash: uint64(i) + 1}
		if eng != nil {
			lp.clk = eng.Clock(i)
		} else {
			lp.clk = s
		}
		m.lps = append(m.lps, lp)
	}
	return m
}

// seed schedules each LP's first step at a staggered sub-lookahead offset so
// the very first window already spans several LPs.
func (m *modelSim) seed() {
	for _, lp := range m.lps {
		lp := lp
		lp.clk.At(Time(lp.id+1)*20*Microsecond, lp.step)
	}
}

func (l *modelLP) schedule(d Time) {
	l.pending = append(l.pending, l.clk.After(d, l.step))
}

func (l *modelLP) step() {
	m := l.sim
	now := l.clk.Now()
	l.steps++
	l.hash = mix(l.hash, uint64(now)^uint64(l.id)<<32)
	r := splitmix64(&l.rng)
	if now >= m.horizon {
		return
	}
	switch r % 8 {
	case 0, 1, 2:
		// Short follow-up: usually lands inside the current window.
		l.schedule(Time(30+r%300) * Microsecond)
	case 3, 4:
		// Long follow-up: outlives the window, re-enters the heap.
		l.schedule(Time(1+r%4) * Millisecond)
	case 5:
		// Schedule a decoy and cancel it immediately: in a parallel window
		// this exercises the intent-cancel path; serially, heap removal.
		ev := l.clk.After(Time(40+r%100)*Microsecond, l.step)
		l.schedule(Time(60+r%200) * Microsecond)
		l.clk.Cancel(ev)
		l.hash = mix(l.hash, 0xdead)
	case 6:
		// Cancel the oldest still-tracked event (may already have fired —
		// stale-handle cancels must be no-ops on both engines).
		if len(l.pending) > 0 {
			l.clk.Cancel(l.pending[0])
			l.pending = l.pending[1:]
		}
		l.schedule(Time(80+r%160) * Microsecond)
	default:
		// Broadcast a frame to the next LP through the shared medium.
		m.send(l.id)
		l.schedule(Time(50+r%250) * Microsecond)
	}
	if len(l.pending) > 32 {
		l.pending = l.pending[len(l.pending)-16:]
	}
}

// send transmits on the shared FIFO medium. Inside a parallel window the
// mutation is deferred to the merge barrier (exactly how lan.Perfect captures
// sends); otherwise it runs inline. Either way it executes with the clock at
// the sending event's serial time, in serial order.
func (m *modelSim) send(src int) {
	do := func() {
		start := m.s.Now()
		if m.medBusy > start {
			start = m.medBusy
		}
		end := start + m.frame
		m.medBusy = end
		m.sends++
		m.medHash = mix(m.medHash, uint64(end)^uint64(src)<<8)
		dst := m.lps[(src+1)%len(m.lps)]
		// Frame completion is a serial-affinity event: it touches the medium
		// and the destination LP, like lan's complete/deliver path.
		m.s.At(end, func() {
			m.deliv++
			m.medHash = mix(m.medHash, uint64(m.s.Now()))
			dst.hash = mix(dst.hash, uint64(src)+0xbeef)
			if m.s.Now() < m.horizon {
				dst.clk.At(m.s.Now()+Time(10)*Microsecond, dst.step)
			}
		})
	}
	if m.eng != nil && m.eng.InRound() {
		m.eng.Defer(src, do)
		return
	}
	do()
}

// fingerprint reduces the model's externally observable state to a string.
func (m *modelSim) fingerprint() string {
	out := fmt.Sprintf("now=%d fired=%d pending=%d sends=%d deliv=%d busy=%d med=%x\n",
		m.s.Now(), m.s.Fired(), m.s.Pending(), m.sends, m.deliv, m.medBusy, m.medHash)
	for _, lp := range m.lps {
		out += fmt.Sprintf("lp%d steps=%d hash=%x\n", lp.id, lp.steps, lp.hash)
	}
	return out
}

// runModel drives the model: a mid-run fingerprint (heap still populated —
// catches divergence in queued state) plus the drained end state.
func runModel(workers, lps int, seed uint64) (string, EngineStats) {
	s := NewScheduler()
	var eng *Engine
	if workers > 0 {
		eng = NewEngine(s, workers, lps)
	}
	m := newModelSim(eng, s, lps, seed)
	if eng != nil {
		eng.SetLookahead(m.frame)
	}
	m.seed()
	run := func(limit Time) {
		if eng != nil {
			eng.Run(limit)
		} else {
			s.Run(limit)
		}
	}
	run(17 * Millisecond) // mid-run cut, deliberately not window-aligned
	fp := m.fingerprint()
	run(m.horizon + 50*Millisecond)
	fp += m.fingerprint()
	var st EngineStats
	if eng != nil {
		st = eng.Stats()
	}
	return fp, st
}

// TestEngineMatchesSerial is the core differential oracle: the serial
// scheduler, the engine in serial-fallback mode (workers=1), and the engine
// at 2/4/8 workers must produce identical fingerprints for several seeds.
func TestEngineMatchesSerial(t *testing.T) {
	for _, lps := range []int{2, 5, 16} {
		for seed := uint64(1); seed <= 5; seed++ {
			want, _ := runModel(0, lps, seed) // plain serial scheduler
			for _, workers := range []int{1, 2, 4, 8} {
				got, st := runModel(workers, lps, seed)
				if got != want {
					t.Fatalf("lps=%d seed=%d workers=%d diverged from serial:\n--- serial ---\n%s--- engine ---\n%s",
						lps, seed, workers, want, got)
				}
				if workers > 1 && st.ParWindows == 0 && st.InlineWindows == 0 {
					t.Fatalf("lps=%d seed=%d workers=%d: no windows executed (stats %+v) — the parallel path was never exercised", lps, seed, workers, st)
				}
			}
		}
	}
}

// TestEngineParallelWindowsExercised pins that the model genuinely reaches
// multi-LP windows (otherwise TestEngineMatchesSerial would vacuously pass
// through the serial fallback).
func TestEngineParallelWindowsExercised(t *testing.T) {
	_, st := runModel(4, 16, 3)
	if st.ParWindows == 0 {
		t.Fatalf("no multi-LP windows executed: %+v", st)
	}
	if st.ParEvents == 0 {
		t.Fatalf("no events executed inside parallel windows: %+v", st)
	}
}

// TestEngineDoubleRunIdentical runs the engine twice with the same seed —
// the same oracle the 256-node cluster test applies, at unit scale.
func TestEngineDoubleRunIdentical(t *testing.T) {
	a, _ := runModel(4, 8, 42)
	b, _ := runModel(4, 8, 42)
	if a != b {
		t.Fatalf("same-seed engine runs diverged:\n--- run 1 ---\n%s--- run 2 ---\n%s", a, b)
	}
}

// TestEngineDegenerateLookahead: with zero lookahead (an Ether-style medium
// whose steady-state randomness forbids windowing) the engine must execute
// every event through the serial fallback and still match the serial
// scheduler exactly.
func TestEngineDegenerateLookahead(t *testing.T) {
	want, _ := runModel(0, 8, 9)
	s := NewScheduler()
	eng := NewEngine(s, 4, 8)
	eng.SetLookahead(0) // degenerate: no safe horizon at all
	m := newModelSim(eng, s, 8, 9)
	m.seed()
	eng.Run(17 * Millisecond)
	fp := m.fingerprint()
	eng.Run(m.horizon + 50*Millisecond)
	fp += m.fingerprint()
	if fp != want {
		t.Fatalf("zero-lookahead engine diverged from serial:\n--- serial ---\n%s--- engine ---\n%s", want, fp)
	}
	st := eng.Stats()
	if st.ParWindows != 0 || st.InlineWindows != 0 {
		t.Fatalf("zero lookahead must disable windowing entirely: %+v", st)
	}
	if st.SerialSteps == 0 {
		t.Fatalf("expected serial fallback steps: %+v", st)
	}
}

// TestEngineGateClosed: a closed gate (faults armed, tracing on) must force
// serial execution while still producing identical results.
func TestEngineGateClosed(t *testing.T) {
	want, _ := runModel(0, 8, 11)
	s := NewScheduler()
	eng := NewEngine(s, 4, 8)
	m := newModelSim(eng, s, 8, 11)
	eng.SetLookahead(m.frame)
	eng.SetGate(func() bool { return false })
	m.seed()
	eng.Run(17 * Millisecond)
	fp := m.fingerprint()
	eng.Run(m.horizon + 50*Millisecond)
	fp += m.fingerprint()
	if fp != want {
		t.Fatalf("gated engine diverged from serial:\n--- serial ---\n%s--- engine ---\n%s", want, fp)
	}
	if st := eng.Stats(); st.ParWindows != 0 || st.InlineWindows != 0 {
		t.Fatalf("closed gate must disable windowing: %+v", st)
	}
}

// TestWindowCancelSemantics pins the Event handle semantics inside a
// parallel window: a window-held root reports Pending until cancelled, an
// in-window intent can be cancelled before it runs, a cross-window heap
// event cancelled from inside a window leaves the queue by the barrier, and
// none of the cancelled callbacks ever fire.
func TestWindowCancelSemantics(t *testing.T) {
	s := NewScheduler()
	eng := NewEngine(s, 2, 2)
	eng.SetLookahead(Millisecond)

	var intentFired, heapFired, rootFired bool
	var intentEv, heapEv Event
	clk0, clk1 := eng.Clock(0), eng.Clock(1)

	// Pre-schedule the far heap event on LP0 (outside any window).
	heapEv = clk0.At(5*Millisecond, func() { heapFired = true })
	// A root for LP0 inside the first window that LP0's first event cancels.
	rootEv := clk0.At(30*Microsecond, func() { rootFired = true })

	clk0.At(10*Microsecond, func() {
		if !eng.InRound() {
			t.Error("expected to execute inside a parallel window")
		}
		// In-window intent: schedule, observe, cancel.
		intentEv = clk0.At(clk0.Now()+50*Microsecond, func() { intentFired = true })
		if !intentEv.Pending() {
			t.Error("fresh intent must report Pending")
		}
		clk0.Cancel(intentEv)
		if intentEv.Pending() || !intentEv.Cancelled() {
			t.Error("cancelled intent must be !Pending and Cancelled")
		}
		// Window-held sibling root: pending until cancelled.
		if !rootEv.Pending() {
			t.Error("window-held root must report Pending")
		}
		clk0.Cancel(rootEv)
		if rootEv.Pending() || !rootEv.Cancelled() {
			t.Error("cancelled root must be !Pending and Cancelled")
		}
		// Far heap event: eager dead-mark, removal at the barrier.
		clk0.Cancel(heapEv)
		if heapEv.Pending() || !heapEv.Cancelled() {
			t.Error("cancelled heap event must be !Pending and Cancelled")
		}
	})
	// Give LP1 an event in the same window so the window is multi-LP.
	clk1.At(20*Microsecond, func() {})

	eng.Run(10 * Millisecond)
	if intentFired || heapFired || rootFired {
		t.Fatalf("cancelled events fired: intent=%v heap=%v root=%v", intentFired, heapFired, rootFired)
	}
	if st := eng.Stats(); st.ParWindows == 0 {
		t.Fatalf("scenario was expected to execute as a multi-LP window: %+v", st)
	}
	if s.Pending() != 0 {
		t.Fatalf("cancelled heap event still queued: %d pending", s.Pending())
	}
}

// TestEngineRunReturnsFired mirrors Scheduler.Run's contract for the return
// value and the clock's final position.
func TestEngineRunReturnsFired(t *testing.T) {
	s := NewScheduler()
	eng := NewEngine(s, 2, 2)
	eng.SetLookahead(Millisecond)
	n := 0
	eng.Clock(0).At(10*Microsecond, func() { n++ })
	eng.Clock(1).At(20*Microsecond, func() { n++ })
	fired := eng.Run(Second)
	if fired != 2 || n != 2 {
		t.Fatalf("fired=%d n=%d, want 2/2", fired, n)
	}
	if s.Now() != Second {
		t.Fatalf("clock at %v after drained run, want %v", s.Now(), Second)
	}
}
