package simtime

// Clock is the scheduling interface the simulation's subsystems (kernels,
// transport endpoints, recorders) program against. A *Scheduler is a Clock;
// so is the parallel engine's per-LP view (LPClock), which is how the same
// kernel code runs unchanged on the serial engine and inside a concurrent
// execution window.
//
// The interface is deliberately the four calls the subsystems actually use:
// cluster-level drivers (Run, Fired, Pending, ...) keep the concrete
// *Scheduler and are never called from inside an event.
type Clock interface {
	// Now returns the current virtual time as seen by the caller's logical
	// process: the timestamp of the event being executed.
	Now() Time
	// At schedules fn at absolute time t on the caller's logical process.
	At(t Time, fn func()) Event
	// After schedules fn at Now()+d on the caller's logical process.
	After(d Time, fn func()) Event
	// Cancel removes a pending event scheduled through this clock.
	Cancel(e Event)
}

var _ Clock = (*Scheduler)(nil)
var _ Clock = (*LPClock)(nil)
