package simtime

// Conservative parallel event execution with byte-identical replay.
//
// The serial Scheduler executes the global (at, seq) total order one event
// at a time. The Engine in this file executes the same order on a worker
// pool without changing a single observable byte, exploiting the property
// the paper's medium gives us: stations interact exclusively through the
// broadcast channel, and a frame occupies the wire for a non-zero
// transmission time before any other node can observe it. That delay is a
// hard lower bound on cross-node causality — the classic conservative
// "lookahead" — so events on different nodes closer together than the
// lookahead are provably independent and may run concurrently.
//
// # Model
//
// Every event carries an affinity: the logical process (LP) whose state its
// callback touches. LP ids are node ids — a kernel, its processes, and its
// transport endpoint form one LP; a recorder is its own LP. Events
// scheduled directly on the Scheduler (cluster ticks, chaos injection,
// medium frame completions) have serial affinity: they may touch anything,
// so the engine executes them alone, exactly like the serial engine.
// Subsystems acquire their affinity by scheduling through an LPClock view
// (Engine.Clock), which tags events with the LP and, inside a window,
// routes scheduling into per-LP intent buffers instead of the shared heap.
//
// # Window protocol
//
// The engine repeatedly:
//
//  1. Pops the run of pending events with at < horizon, where horizon =
//     min(t0+lookahead, first serial-affinity event, limit+1) and t0 is the
//     earliest pending time. Serial events and windows the gate refuses
//     (faults armed, tracing on) fall back to Scheduler.Step — the serial
//     engine verbatim.
//  2. Groups the window by LP. A single-LP window executes inline on the
//     coordinating goroutine with direct heap access — literally the serial
//     execution sequence, no synchronization. This matters because at
//     realistic loads most windows hold one event.
//  3. A multi-LP window runs each LP's batch on the worker pool. Workers
//     never touch shared state: Now() reads the LP-local clock, At/After
//     append intents, Cancel marks the target dead (own-LP only), and
//     medium sends are captured as deferred closures (Engine.Defer).
//     Intents that land inside the window on their own LP are executed
//     locally in (at, creation) order — the serial order restricted to that
//     LP, which is sufficient because LP states are disjoint.
//  4. At the barrier, a deterministic replay merge reconstructs the serial
//     engine's behavior exactly: executed events are popped from a priority
//     queue in (at, seq) order, and each event's recorded intents are
//     re-applied in creation order — assigning every At call the sequence
//     number the serial engine would have assigned at that position,
//     running every deferred medium send with the virtual clock set to its
//     serial execution time, and applying deferred cancels. New events
//     whose time falls beyond the window are pushed with those exact serial
//     (at, seq) keys, so the heap after the barrier is byte-for-byte the
//     heap the serial engine would hold.
//
// # Why this is byte-identical
//
// Within a window, two events on different LPs share no state (LP
// disjointness; cross-LP interaction flows through the medium, whose
// lookahead keeps effects out of the window, or through serial-affinity
// events, which bound the window). Per LP, local execution follows (at,
// creation) order, which equals the serial total order restricted to that
// LP because sequence numbers are assigned in creation order. The replay
// merge then regenerates the global interleaving for everything that
// outlives the window — sequence numbers, medium state mutations, heap
// contents — in exact serial order. Induction over windows gives equality
// of the full execution trace, which the scale/sweep determinism oracles
// assert empirically.

import (
	"fmt"
	"sync"
	"sync/atomic"
)

// serialAff marks events that may touch arbitrary state; the engine
// executes them exactly like the serial scheduler.
const serialAff int32 = -1

// EngineStats counts how the engine actually executed a run; tests use it
// to prove the parallel paths were exercised, experiments report it.
type EngineStats struct {
	SerialSteps   uint64 // events executed via the serial fallback
	InlineWindows uint64 // single-LP windows executed inline
	InlineEvents  uint64
	ParWindows    uint64 // multi-LP windows executed on the pool
	ParEvents     uint64 // events executed inside parallel windows
	ParLPs        uint64 // sum of LP counts over parallel windows
}

// Engine drives a Scheduler with the conservative windowed protocol above.
// Construct one per cluster; it is not safe to share across clusters.
type Engine struct {
	s         *Scheduler
	workers   int
	lookahead Time
	gate      func() bool

	lps    []*lpCtx
	clocks []LPClock

	inRound bool
	horizon Time
	batch   []*eventNode

	groups    []*lpCtx
	roundNext atomic.Int64
	startCh   chan struct{}
	wg        sync.WaitGroup
	helpers   int
	panicMu   sync.Mutex
	panicked  any

	pq []replayEnt

	stats EngineStats
}

// NewEngine returns an engine executing s on up to workers goroutines for a
// simulation with lps logical processes (LP ids 0..lps-1).
func NewEngine(s *Scheduler, workers, lps int) *Engine {
	if workers < 1 {
		workers = 1
	}
	e := &Engine{s: s, workers: workers}
	e.lps = make([]*lpCtx, lps)
	e.clocks = make([]LPClock, lps)
	for i := range e.lps {
		e.lps[i] = &lpCtx{eng: e, lp: int32(i)}
		e.clocks[i] = LPClock{eng: e, lp: int32(i)}
	}
	return e
}

// SetLookahead installs the medium-derived safe horizon: the minimum
// virtual delay between an action on one LP and its earliest possible
// effect on another. Zero disables windowing (every event steps serially).
func (e *Engine) SetLookahead(d Time) { e.lookahead = d }

// Lookahead returns the installed lookahead.
func (e *Engine) Lookahead() Time { return e.lookahead }

// SetGate installs a predicate consulted before each window: parallel
// execution is attempted only while it returns true. Clusters gate on
// "no faults armed, tracing off, single recorder" — conditions under which
// the LP-disjointness argument holds.
func (e *Engine) SetGate(f func() bool) { e.gate = f }

// Clock returns the scheduling view for LP lp. The returned pointer is
// stable for the engine's lifetime.
func (e *Engine) Clock(lp int) *LPClock { return &e.clocks[lp] }

// InRound reports whether a parallel window is currently executing. Media
// use it to decide between sending directly and capturing via Defer.
func (e *Engine) InRound() bool { return e.inRound }

// Stats returns execution counters accumulated so far.
func (e *Engine) Stats() EngineStats { return e.stats }

// Defer captures a barrier operation from LP lp's executing event: fn runs
// at the merge, in this event's exact serial position, with the virtual
// clock set to the event's timestamp. Media capture sends this way so that
// shared medium state (FIFO busy time, wire stats, completion scheduling)
// mutates in serial order. Panics outside a window.
func (e *Engine) Defer(lp int, fn func()) {
	if !e.inRound {
		panic("simtime: Defer outside a parallel window")
	}
	ctx := e.lps[lp]
	ctx.ops = append(ctx.ops, winOp{fn: fn})
}

// Run is the engine's counterpart of Scheduler.Run: fire events until the
// queue drains or the clock passes limit, returning the number fired.
// Same-seed runs produce byte-identical results to Scheduler.Run.
func (e *Engine) Run(limit Time) uint64 {
	s := e.s
	start := s.fired
	if e.workers > 1 {
		e.startHelpers()
		defer e.stopHelpers()
	}
	for !s.halted && len(s.events) > 0 {
		next := s.events[0]
		if next.at > limit {
			s.now = limit
			break
		}
		if e.workers <= 1 || e.lookahead <= 0 || next.aff == serialAff ||
			(e.gate != nil && !e.gate()) {
			s.Step()
			e.stats.SerialSteps++
			continue
		}
		horizon := next.at + e.lookahead
		if horizon > limit+1 || horizon < next.at {
			horizon = limit + 1
		}
		if e.soloWindow(horizon) {
			// The window would hold exactly one event; executing it is
			// literally one serial step, so skip the window bookkeeping.
			// At realistic loads (mean event spacing >> lookahead) this is
			// the dominant path.
			s.Step()
			e.stats.InlineWindows++
			e.stats.InlineEvents++
			continue
		}
		batch, horizon := e.popWindow(horizon)
		if singleLP(batch) {
			e.runInline(batch)
			continue
		}
		e.runWindow(batch, horizon)
	}
	if len(s.events) == 0 && s.now < limit {
		s.now = limit
	}
	return s.fired - start
}

// soloWindow reports whether the pending window [events[0].at, horizon)
// holds exactly one event. The second-earliest pending time in a 4-ary heap
// is the minimum over the root's children (indices 1..4), so the check is
// O(arity) with no pops.
func (e *Engine) soloWindow(horizon Time) bool {
	s := e.s
	n := len(s.events)
	if n <= 1 {
		return true
	}
	end := heapArity + 1
	if end > n {
		end = n
	}
	second := s.events[1].at
	for i := 2; i < end; i++ {
		if at := s.events[i].at; at < second {
			second = at
		}
	}
	return second >= horizon
}

// popWindow removes the window's events from the heap in (at, seq) order.
// A serial-affinity event bounds the window: it stays queued and shrinks
// the horizon to its timestamp, so in-window intents cannot jump past it.
func (e *Engine) popWindow(horizon Time) ([]*eventNode, Time) {
	s := e.s
	e.batch = e.batch[:0]
	for len(s.events) > 0 {
		top := s.events[0]
		if top.at >= horizon {
			break
		}
		if top.aff == serialAff {
			horizon = top.at
			break
		}
		n := s.popMin()
		n.idx = -2
		n.ref = -1
		e.batch = append(e.batch, n)
	}
	return e.batch, horizon
}

// singleLP reports whether every event in the batch belongs to one LP.
func singleLP(batch []*eventNode) bool {
	lp := batch[0].aff
	for _, n := range batch[1:] {
		if n.aff != lp {
			return false
		}
	}
	return true
}

// runInline executes a single-LP window on the coordinating goroutine with
// direct scheduler access — the serial engine's execution sequence exactly,
// including interleaving with any events the window's callbacks push at
// earlier (at, seq) positions, and honoring mid-window cancels and halts.
func (e *Engine) runInline(batch []*eventNode) {
	s := e.s
	e.stats.InlineWindows++
	for i, n := range batch {
		if s.halted {
			// Re-queue the unexecuted tail; seq is intact, so heap order
			// is restored exactly.
			for _, m := range batch[i:] {
				if !m.dead {
					s.push(m)
				} else {
					s.recycle(m)
				}
			}
			return
		}
		// The callback may have scheduled events ordered before n.
		for len(s.events) > 0 && lessNode(s.events[0], n) {
			s.Step()
		}
		if n.dead {
			s.recycle(n)
			continue
		}
		s.now = n.at
		s.fired++
		e.stats.InlineEvents++
		fn := n.fn
		s.recycle(n)
		fn()
	}
}

// --- multi-LP windows -------------------------------------------------------

// winOp is one recorded side effect of an event executed inside a window,
// replayed in creation order at the merge. Exactly one field is set:
// n — an At intent; fn — a deferred barrier closure (medium send);
// ev — a deferred cancel of a heap event.
type winOp struct {
	n  *eventNode
	fn func()
	ev Event
}

// execRec is one executed event: its timestamp, its (assigned) sequence
// number, and the slice of its recorded ops.
type execRec struct {
	at         Time
	seq        uint64
	ops0, ops1 int32
}

// localEnt orders an LP's in-window work: window roots first (creation
// order = pop order), then intents in creation order — the serial total
// order restricted to the LP.
type localEnt struct {
	at  Time
	ord uint64
	n   *eventNode
}

// lpCtx is one LP's window execution state.
type lpCtx struct {
	eng   *Engine
	lp    int32
	now   Time
	ord   uint64
	roots []*eventNode
	local []localEnt
	ops   []winOp
	execs []execRec
	free  []*eventNode
	fired uint64
}

// alloc arms an intent node owned by this LP.
func (c *lpCtx) alloc() *eventNode {
	var n *eventNode
	if k := len(c.free); k > 0 {
		n = c.free[k-1]
		c.free[k-1] = nil
		c.free = c.free[:k-1]
	} else {
		n = &eventNode{}
	}
	n.gen++
	n.dead = false
	n.idx = -2
	n.ref = -1
	n.aff = c.lp
	return n
}

func (c *lpCtx) localPush(ent localEnt) {
	c.local = append(c.local, ent)
	i := len(c.local) - 1
	for i > 0 {
		p := (i - 1) / 2
		if !lessLocal(c.local[i], c.local[p]) {
			break
		}
		c.local[i], c.local[p] = c.local[p], c.local[i]
		i = p
	}
}

func (c *lpCtx) localPop() localEnt {
	top := c.local[0]
	last := len(c.local) - 1
	c.local[0] = c.local[last]
	c.local = c.local[:last]
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		m := i
		if l < last && lessLocal(c.local[l], c.local[m]) {
			m = l
		}
		if r < last && lessLocal(c.local[r], c.local[m]) {
			m = r
		}
		if m == i {
			break
		}
		c.local[i], c.local[m] = c.local[m], c.local[i]
		i = m
	}
	return top
}

func lessLocal(a, b localEnt) bool {
	if a.at != b.at {
		return a.at < b.at
	}
	return a.ord < b.ord
}

// run executes the LP's window batch plus every intent that lands inside
// the window on this LP, in (at, creation) order.
func (c *lpCtx) run() {
	for i, n := range c.roots {
		c.localPush(localEnt{at: n.at, ord: uint64(i), n: n})
	}
	c.ord = uint64(len(c.roots))
	for len(c.local) > 0 {
		ent := c.localPop()
		n := ent.n
		if n.dead {
			continue
		}
		c.now = n.at
		rec := int32(len(c.execs))
		c.execs = append(c.execs, execRec{at: n.at, ops0: int32(len(c.ops))})
		n.ref = rec
		n.idx = -1
		fn := n.fn
		n.fn = nil
		c.fired++
		fn()
		c.execs[rec].ops1 = int32(len(c.ops))
	}
}

func (c *lpCtx) reset() {
	c.roots = c.roots[:0]
	c.local = c.local[:0]
	c.ops = c.ops[:0]
	c.execs = c.execs[:0]
	c.fired = 0
}

// runWindow executes a multi-LP window on the pool and merges at the
// barrier.
func (e *Engine) runWindow(batch []*eventNode, horizon Time) {
	e.horizon = horizon
	e.groups = e.groups[:0]
	for _, n := range batch {
		ctx := e.lps[n.aff]
		if len(ctx.roots) == 0 {
			e.groups = append(e.groups, ctx)
		}
		ctx.roots = append(ctx.roots, n)
	}
	e.stats.ParWindows++
	e.stats.ParLPs += uint64(len(e.groups))

	e.roundNext.Store(0)
	e.inRound = true
	helpers := e.helpers
	if helpers > len(e.groups)-1 {
		helpers = len(e.groups) - 1
	}
	e.wg.Add(helpers)
	for i := 0; i < helpers; i++ {
		e.startCh <- struct{}{}
	}
	e.drainGroups()
	e.wg.Wait()
	e.inRound = false
	if p := e.panicked; p != nil {
		e.panicked = nil
		panic(p)
	}
	e.merge()
}

func (e *Engine) drainGroups() {
	defer func() {
		if p := recover(); p != nil {
			e.panicMu.Lock()
			if e.panicked == nil {
				e.panicked = p
			}
			e.panicMu.Unlock()
		}
	}()
	for {
		i := e.roundNext.Add(1) - 1
		if i >= int64(len(e.groups)) {
			return
		}
		e.groups[i].run()
	}
}

func (e *Engine) startHelpers() {
	e.helpers = e.workers - 1
	ch := make(chan struct{}, e.helpers)
	e.startCh = ch
	for i := 0; i < e.helpers; i++ {
		go func() {
			// Range over the captured channel, not the field: a later Run
			// re-creates the pool, and lingering goroutines from this one
			// must keep draining their own (closed) channel only.
			for range ch {
				e.drainGroups()
				e.wg.Done()
			}
		}()
	}
}

func (e *Engine) stopHelpers() {
	close(e.startCh)
	e.helpers = 0
}

// replayEnt is one executed event awaiting replay, keyed (at, seq).
type replayEnt struct {
	at  Time
	seq uint64
	ctx *lpCtx
	rec int32
}

// merge is the deterministic replay: walk the window's executed events in
// serial (at, seq) order and re-apply each one's recorded ops in creation
// order, assigning the exact sequence numbers the serial engine would have
// and running deferred closures with the clock at their serial times.
func (e *Engine) merge() {
	s := e.s
	for _, n := range e.batch {
		if n.ref < 0 {
			// Cancelled before execution; consumed no sequence numbers.
			s.recycle(n)
			continue
		}
		e.pqPush(replayEnt{at: n.at, seq: n.seq, ctx: e.lps[n.aff], rec: n.ref})
		s.recycle(n)
	}
	for len(e.pq) > 0 {
		ent := e.pqPop()
		s.now = ent.at
		rec := ent.ctx.execs[ent.rec]
		for _, op := range ent.ctx.ops[rec.ops0:rec.ops1] {
			switch {
			case op.n != nil:
				n := op.n
				n.seq = s.seq
				s.seq++
				switch {
				case n.dead:
					// Scheduled then cancelled inside the window: the
					// serial engine would have pushed and removed it.
					ctx := e.lps[n.aff]
					n.fn = nil
					n.ref = -1
					ctx.free = append(ctx.free, n)
				case n.ref >= 0:
					// Executed locally; replay its ops at its serial
					// position.
					ctx := e.lps[n.aff]
					e.pqPush(replayEnt{at: n.at, seq: n.seq, ctx: ctx, rec: n.ref})
					n.fn = nil
					ctx.free = append(ctx.free, n)
				default:
					// Outlives the window: enters the heap with its exact
					// serial key.
					s.push(n)
				}
			case op.fn != nil:
				op.fn()
			default:
				e.applyCancel(op.ev)
			}
		}
	}
	for _, ctx := range e.groups {
		s.fired += ctx.fired
		e.stats.ParEvents += ctx.fired
		ctx.reset()
	}
}

// applyCancel completes a deferred cancel of a heap event. The target was
// eagerly marked dead (for Pending/Cancelled visibility); here it leaves
// the heap, as the serial engine's Cancel would have done immediately.
func (e *Engine) applyCancel(ev Event) {
	n := ev.n
	if n == nil || n.gen != ev.gen || !n.dead || n.idx < 0 {
		return
	}
	e.s.removeAt(n.idx)
	e.s.recycle(n)
}

func (e *Engine) pqPush(ent replayEnt) {
	e.pq = append(e.pq, ent)
	i := len(e.pq) - 1
	for i > 0 {
		p := (i - 1) / 2
		if !lessReplay(e.pq[i], e.pq[p]) {
			break
		}
		e.pq[i], e.pq[p] = e.pq[p], e.pq[i]
		i = p
	}
}

func (e *Engine) pqPop() replayEnt {
	top := e.pq[0]
	last := len(e.pq) - 1
	e.pq[0] = e.pq[last]
	e.pq = e.pq[:last]
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		m := i
		if l < last && lessReplay(e.pq[l], e.pq[m]) {
			m = l
		}
		if r < last && lessReplay(e.pq[r], e.pq[m]) {
			m = r
		}
		if m == i {
			break
		}
		e.pq[i], e.pq[m] = e.pq[m], e.pq[i]
		i = m
	}
	return top
}

func lessReplay(a, b replayEnt) bool {
	if a.at != b.at {
		return a.at < b.at
	}
	return a.seq < b.seq
}

// --- per-LP clock view ------------------------------------------------------

// LPClock is the Clock a logical process schedules through. Outside a
// window it passes through to the Scheduler, tagging events with the LP's
// affinity; inside a window it reads the LP-local clock and buffers
// scheduling as intents for the merge. Only the LP's own executing event
// may call it during a window — which is guaranteed structurally, because
// the clock is wired into exactly that LP's kernel, transport, and
// recorder at construction.
type LPClock struct {
	eng *Engine
	lp  int32
}

// Now returns the executing event's timestamp.
func (c *LPClock) Now() Time {
	e := c.eng
	if e.inRound {
		return e.lps[c.lp].now
	}
	return e.s.now
}

// At schedules fn at t on this LP.
func (c *LPClock) At(t Time, fn func()) Event {
	e := c.eng
	if !e.inRound {
		return e.s.atAff(c.lp, t, fn)
	}
	ctx := e.lps[c.lp]
	if t < ctx.now {
		panic(fmt.Sprintf("simtime: event scheduled in the past: %v < %v", t, ctx.now))
	}
	n := ctx.alloc()
	n.at, n.fn = t, fn
	ctx.ops = append(ctx.ops, winOp{n: n})
	if t < e.horizon {
		ctx.localPush(localEnt{at: t, ord: ctx.ord, n: n})
		ctx.ord++
	}
	return Event{n: n, gen: n.gen}
}

// After schedules fn at Now()+d on this LP.
func (c *LPClock) After(d Time, fn func()) Event {
	if d < 0 {
		panic(fmt.Sprintf("simtime: negative delay %v", d))
	}
	return c.At(c.Now()+d, fn)
}

// Cancel removes a pending event scheduled through this clock. Inside a
// window, in-window targets (roots and intents) are marked dead and
// skipped; heap targets are marked dead eagerly — so Pending and Cancelled
// answer as the serial engine would — and leave the heap at the merge.
func (c *LPClock) Cancel(ev Event) {
	e := c.eng
	if !e.inRound {
		e.s.Cancel(ev)
		return
	}
	n := ev.n
	if n == nil || n.gen != ev.gen || n.dead || n.idx == -1 {
		return
	}
	if n.aff != c.lp {
		panic("simtime: cross-LP cancel inside a parallel window")
	}
	n.dead = true
	if n.idx >= 0 {
		ctx := e.lps[c.lp]
		ctx.ops = append(ctx.ops, winOp{ev: ev})
	}
}
