package simtime

import (
	"math"
	"testing"
	"testing/quick"
)

func TestTimeConversions(t *testing.T) {
	if FromMillis(1.5) != 1500*Microsecond {
		t.Fatalf("FromMillis(1.5) = %v", FromMillis(1.5))
	}
	if FromSeconds(2) != 2*Second {
		t.Fatalf("FromSeconds(2) = %v", FromSeconds(2))
	}
	if got := (250 * Millisecond).Seconds(); got != 0.25 {
		t.Fatalf("Seconds = %v", got)
	}
	if got := (250 * Microsecond).Milliseconds(); got != 0.25 {
		t.Fatalf("Milliseconds = %v", got)
	}
	if Never.String() != "never" {
		t.Fatalf("Never.String() = %q", Never.String())
	}
	if s := (1500 * Microsecond).String(); s != "1.500ms" {
		t.Fatalf("String = %q", s)
	}
}

func TestSchedulerOrdering(t *testing.T) {
	s := NewScheduler()
	var order []int
	s.At(30, func() { order = append(order, 3) })
	s.At(10, func() { order = append(order, 1) })
	s.At(20, func() { order = append(order, 2) })
	// Same-time events fire in scheduling order.
	s.At(20, func() { order = append(order, 4) })
	s.RunAll(100)
	want := []int{1, 2, 4, 3}
	if len(order) != len(want) {
		t.Fatalf("order = %v", order)
	}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("order = %v, want %v", order, want)
		}
	}
	if s.Now() != 30 {
		t.Fatalf("Now = %v", s.Now())
	}
}

func TestSchedulerAfterAndCancel(t *testing.T) {
	s := NewScheduler()
	fired := 0
	s.After(5, func() { fired++ })
	e := s.After(6, func() { fired++ })
	s.Cancel(e)
	if !e.Cancelled() {
		t.Fatal("event not marked cancelled")
	}
	s.Cancel(e) // double-cancel is a no-op
	s.RunAll(10)
	if fired != 1 {
		t.Fatalf("fired = %d, want 1", fired)
	}
}

func TestSchedulerCancelFromWithinEvent(t *testing.T) {
	s := NewScheduler()
	fired := 0
	var e2 Event
	s.At(1, func() { s.Cancel(e2) })
	e2 = s.At(2, func() { fired++ })
	s.At(3, func() { fired++ })
	s.RunAll(10)
	if fired != 1 {
		t.Fatalf("fired = %d, want 1", fired)
	}
}

func TestSchedulerPastPanics(t *testing.T) {
	s := NewScheduler()
	s.At(10, func() {})
	s.Step()
	defer func() {
		if recover() == nil {
			t.Fatal("scheduling in the past did not panic")
		}
	}()
	s.At(5, func() {})
}

func TestSchedulerRunLimit(t *testing.T) {
	s := NewScheduler()
	fired := 0
	for i := Time(1); i <= 10; i++ {
		s.At(i*10, func() { fired++ })
	}
	n := s.Run(35)
	if n != 3 || fired != 3 {
		t.Fatalf("fired %d events, want 3", fired)
	}
	if s.Now() != 35 {
		t.Fatalf("Now = %v, want 35", s.Now())
	}
	if s.Pending() != 7 {
		t.Fatalf("Pending = %d, want 7", s.Pending())
	}
	if s.NextAt() != 40 {
		t.Fatalf("NextAt = %v, want 40", s.NextAt())
	}
	s.Run(1000)
	if fired != 10 {
		t.Fatalf("fired = %d, want 10", fired)
	}
	if s.Now() != 1000 {
		t.Fatalf("Now advanced to %v, want limit 1000", s.Now())
	}
	if s.NextAt() != Never {
		t.Fatalf("NextAt on empty queue = %v", s.NextAt())
	}
}

func TestSchedulerHalt(t *testing.T) {
	s := NewScheduler()
	fired := 0
	s.At(1, func() { fired++; s.Halt() })
	s.At(2, func() { fired++ })
	s.RunAll(100)
	if fired != 1 {
		t.Fatalf("fired = %d after halt, want 1", fired)
	}
	if !s.Halted() {
		t.Fatal("not halted")
	}
	s.Resume()
	s.RunAll(100)
	if fired != 2 {
		t.Fatalf("fired = %d after resume, want 2", fired)
	}
}

func TestSchedulerRunAllCap(t *testing.T) {
	s := NewScheduler()
	var loop func()
	loop = func() { s.After(1, loop) }
	s.After(1, loop)
	defer func() {
		if recover() == nil {
			t.Fatal("runaway simulation did not panic")
		}
	}()
	s.RunAll(100)
}

func TestSchedulerReschedulesDuringEvent(t *testing.T) {
	// An event scheduling another event at the same timestamp must still
	// fire it (FIFO within a timestamp).
	s := NewScheduler()
	var order []string
	s.At(10, func() {
		order = append(order, "a")
		s.At(10, func() { order = append(order, "b") })
	})
	s.RunAll(10)
	if len(order) != 2 || order[0] != "a" || order[1] != "b" {
		t.Fatalf("order = %v", order)
	}
}

func TestSchedulerPendingCounts(t *testing.T) {
	// Regression test for the Pending O(n) scan fix: Pending must keep its
	// exact semantics — the number of scheduled, uncancelled, unfired
	// events — through every combination of At, Cancel, and Step.
	s := NewScheduler()
	if s.Pending() != 0 {
		t.Fatalf("Pending on empty scheduler = %d", s.Pending())
	}
	var evs []Event
	for i := Time(1); i <= 10; i++ {
		evs = append(evs, s.At(i*10, func() {}))
	}
	if s.Pending() != 10 {
		t.Fatalf("Pending = %d, want 10", s.Pending())
	}
	s.Cancel(evs[3])
	s.Cancel(evs[7])
	s.Cancel(evs[7]) // double-cancel must not double-count
	if s.Pending() != 8 {
		t.Fatalf("Pending after 2 cancels = %d, want 8", s.Pending())
	}
	s.Step()
	s.Step()
	if s.Pending() != 6 {
		t.Fatalf("Pending after 2 steps = %d, want 6", s.Pending())
	}
	s.RunAll(100)
	if s.Pending() != 0 {
		t.Fatalf("Pending after RunAll = %d, want 0", s.Pending())
	}
	// Cancelling a long-fired handle is a no-op and must not go negative.
	s.Cancel(evs[0])
	if s.Pending() != 0 {
		t.Fatalf("Pending after stale cancel = %d, want 0", s.Pending())
	}
}

func TestSchedulerFreeListReuse(t *testing.T) {
	// The free list must reuse event nodes without letting a stale handle
	// cancel the event that now occupies the recycled node.
	s := NewScheduler()
	stale := s.At(1, func() {})
	s.RunAll(10) // fires `stale`; its node returns to the free list
	fired := 0
	fresh := s.At(2, func() { fired++ })
	// The recycled node backs `fresh` now; cancelling through the stale
	// handle must not touch it.
	s.Cancel(stale)
	if stale.Pending() || stale.Cancelled() {
		t.Fatal("stale handle reports live state")
	}
	if !fresh.Pending() {
		t.Fatal("fresh event lost by stale cancel")
	}
	s.RunAll(10)
	if fired != 1 {
		t.Fatalf("fired = %d, want 1", fired)
	}
}

func TestSchedulerNoAllocSteadyState(t *testing.T) {
	// Once the free list is primed, schedule/fire cycles must not allocate.
	s := NewScheduler()
	fn := func() {}
	for i := 0; i < 64; i++ {
		s.After(1, fn)
	}
	s.RunAll(1000)
	avg := testing.AllocsPerRun(200, func() {
		for i := 0; i < 32; i++ {
			s.After(Time(i), fn)
		}
		s.RunAll(1000)
	})
	if avg > 0.5 {
		t.Fatalf("steady-state scheduling allocates %.1f allocs/run, want 0", avg)
	}
}

func TestRandDeterminism(t *testing.T) {
	a, b := NewRand(42), NewRand(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatal("same seed diverged")
		}
	}
	c := NewRand(43)
	same := 0
	for i := 0; i < 1000; i++ {
		if a.Uint64() == c.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("different seeds collide too often: %d/1000", same)
	}
}

func TestRandFloat64Range(t *testing.T) {
	r := NewRand(7)
	if err := quick.Check(func(_ int) bool {
		f := r.Float64()
		return f >= 0 && f < 1
	}, &quick.Config{MaxCount: 5000}); err != nil {
		t.Fatal(err)
	}
}

func TestRandIntnRange(t *testing.T) {
	r := NewRand(9)
	for n := 1; n < 50; n++ {
		for i := 0; i < 100; i++ {
			v := r.Intn(n)
			if v < 0 || v >= n {
				t.Fatalf("Intn(%d) = %d", n, v)
			}
		}
	}
}

func TestRandIntnPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Intn(0) did not panic")
		}
	}()
	NewRand(1).Intn(0)
}

func TestRandExpMean(t *testing.T) {
	r := NewRand(1234)
	const mean = 10 * Millisecond
	const n = 200000
	var sum float64
	for i := 0; i < n; i++ {
		d := r.Exp(mean)
		if d < 0 {
			t.Fatalf("negative exponential sample %v", d)
		}
		sum += float64(d)
	}
	got := sum / n
	if math.Abs(got-float64(mean))/float64(mean) > 0.02 {
		t.Fatalf("Exp mean = %v, want ~%v", Time(got), mean)
	}
	if r.Exp(0) != 0 {
		t.Fatal("Exp(0) != 0")
	}
}

func TestRandBoolProbability(t *testing.T) {
	r := NewRand(5)
	n, hits := 100000, 0
	for i := 0; i < n; i++ {
		if r.Bool(0.3) {
			hits++
		}
	}
	p := float64(hits) / float64(n)
	if math.Abs(p-0.3) > 0.01 {
		t.Fatalf("Bool(0.3) frequency = %v", p)
	}
}

func TestRandFork(t *testing.T) {
	a := NewRand(11)
	b := NewRand(11)
	fa, fb := a.Fork(), b.Fork()
	for i := 0; i < 100; i++ {
		if fa.Uint64() != fb.Uint64() {
			t.Fatal("forks of identical parents diverged")
		}
	}
	// Fork stream differs from parent stream.
	if a.Uint64() == fa.Uint64() {
		t.Log("parent and fork coincide once; acceptable but unusual")
	}
}
