package recorder

import (
	"publishing/internal/demos"
	"publishing/internal/frame"
	"publishing/internal/trace"
)

// Batched, pipelined recovery replay.
//
// The original replay path sent one guaranteed control frame per published
// message, so recovery time scaled with the message count at roughly one
// wire round-trip each (§5.2's dominant term). This file replaces it: the
// reconstructed stream is consumed through an iterator (no ordered-slice
// materialization per attempt), packed into MTU-sized OpReplayBatch frames,
// and kept ReplayWindow batches deep in the transport so the next batch is
// on the wire the moment the previous one is acknowledged. Loss and
// reordering are the transport's problem — batches ride the same guaranteed
// FIFO stream as everything else — while the kernel's cumulative batch
// acknowledgement (CtlReply.AckedBatch) paces the window end to end.

// replayIter streams a process's published messages in reconstructed read
// order — the same order reconstruct produces, emitted one message at a
// time. Recovery replays each attempt from this iterator instead of
// building the whole ordered slice, which a recursive crash would pay for
// repeatedly.
type replayIter struct {
	arrivals   []storedMsg
	advisories []advisory
	// taken marks arrivals already emitted by an advisory's out-of-order
	// read (nil when there are no advisories and order is arrival order).
	taken []bool
	pos   int // next in-order candidate
	ai    int // next advisory to honor
}

func newReplayIter(arrivals []storedMsg, advisories []advisory) *replayIter {
	it := &replayIter{arrivals: arrivals, advisories: advisories}
	if len(advisories) > 0 {
		it.taken = make([]bool, len(arrivals))
	}
	return it
}

// next returns the next message in replay order. The pointer aliases the
// arrivals slice; callers must copy what they keep.
func (it *replayIter) next() (*storedMsg, bool) {
	for it.ai < len(it.advisories) {
		adv := &it.advisories[it.ai]
		it.skipTaken()
		if it.pos < len(it.arrivals) && it.arrivals[it.pos].ID != adv.HeadID {
			// In-order reads precede the advised out-of-order read.
			sm := &it.arrivals[it.pos]
			it.pos++
			return sm, true
		}
		// Head reached (or the queue drained without it): honor the advisory.
		it.ai++
		for i := it.pos; i < len(it.arrivals); i++ {
			if !it.taken[i] && it.arrivals[i].ID == adv.ReadID {
				it.taken[i] = true
				return &it.arrivals[i], true
			}
		}
		// Advised message absent: the advisory is consumed with no emission,
		// exactly as reconstruct's search-and-miss behaves.
	}
	it.skipTaken()
	if it.pos < len(it.arrivals) {
		sm := &it.arrivals[it.pos]
		it.pos++
		return sm, true
	}
	return nil, false
}

func (it *replayIter) skipTaken() {
	for it.taken != nil && it.pos < len(it.arrivals) && it.taken[it.pos] {
		it.pos++
	}
}

// batchSender is one recovery's windowed replay pipeline.
type batchSender struct {
	r   *Recorder
	e   *procEntry
	rp  *recoveryProc
	gen uint64
	it  *replayIter

	// staged is the one-message lookahead between iterator and packer (a
	// record that did not fit the previous batch).
	staged     *storedMsg
	haveStaged bool

	nextSeq uint64 // highest batch sequence sent
	acked   uint64 // kernel's cumulative batch acknowledgement
	// ids maps unacked batch sequences to their transport frame ids so a
	// superseding generation can withdraw whatever has not left the node.
	ids map[uint64]frame.MsgID
	// codes are this sender's reply-waiter codes, orphaned on cancel.
	codes    []uint32
	doneSent bool
}

// startReplay reenacts the published stream: "It then reads all the
// published messages and resends them to the process" (§4.7), batched and
// pipelined. Transport ordering (FIFO per node pair) delivers the batches
// in sequence; the kernel unpacks each batch in record order, so the
// process observes exactly the reconstructed read order.
func (r *Recorder) startReplay(e *procEntry, rp *recoveryProc, gen uint64) {
	bs := &batchSender{
		r: r, e: e, rp: rp, gen: gen,
		it:  newReplayIter(e.Arrivals, e.Advisories),
		ids: make(map[uint64]frame.MsgID),
	}
	r.replaying[e.Proc] = bs
	bs.fill()
}

// replayWindow returns the effective batch window (>= 1).
func (r *Recorder) replayWindow() int {
	if r.cfg.ReplayWindow > 1 {
		return r.cfg.ReplayWindow
	}
	return 1
}

// replayBudget returns the effective batch body budget in bytes.
func (r *Recorder) replayBudget() int {
	if r.cfg.ReplayBatchBytes > 0 {
		return r.cfg.ReplayBatchBytes
	}
	return frame.MaxBody
}

// routeRepeats returns the effective routing-update broadcast count: the
// configured knob, defaulting to 3, with negative meaning none.
func (r *Recorder) routeRepeats() int {
	switch {
	case r.cfg.RouteRepeats < 0:
		return 0
	case r.cfg.RouteRepeats == 0:
		return 3
	default:
		return r.cfg.RouteRepeats
	}
}

// peek stages the next record without consuming it.
func (bs *batchSender) peek() (*storedMsg, bool) {
	if !bs.haveStaged {
		bs.staged, bs.haveStaged = bs.it.next()
	}
	return bs.staged, bs.haveStaged
}

// fill tops the window up and, once the stream is exhausted and every batch
// acknowledged, declares recovery done.
func (bs *batchSender) fill() {
	for int(bs.nextSeq-bs.acked) < bs.r.replayWindow() {
		if !bs.sendBatch() {
			break
		}
	}
	if _, more := bs.peek(); !more && bs.acked == bs.nextSeq && !bs.doneSent {
		bs.sendDone()
	}
}

// sendBatch packs records into one batch frame until the byte budget is
// reached (always at least one record) and hands it to the transport. It
// reports whether there was anything left to send.
func (bs *batchSender) sendBatch() bool {
	sm, ok := bs.peek()
	if !ok {
		return false
	}
	r := bs.r
	budget := r.replayBudget()
	seq := bs.nextSeq + 1
	buf := demos.BeginReplayBatch(make([]byte, 0, budget+64), bs.e.Proc, bs.gen, seq)
	count := 0
	for {
		rec := demos.ReplayRec{
			ID: sm.ID, From: sm.From, Channel: sm.Channel,
			Code: sm.Code, Body: sm.Body, Link: sm.Link,
		}
		if count > 0 && len(buf)+rec.EncodedLen() > budget {
			break // does not fit; starts the next batch
		}
		buf = demos.AppendReplayRec(buf, &rec)
		count++
		bs.haveStaged = false
		r.stats.MessagesReplayed++
		if sm, ok = bs.peek(); !ok {
			break
		}
	}
	demos.FinishReplayBatch(buf, count)
	bs.nextSeq = seq
	id, code := r.sendReplay(bs.rp.target, buf, bs.onAck)
	bs.ids[seq] = id
	bs.codes = append(bs.codes, code)
	r.stats.ReplayBatches++
	r.replayOcc.Add(1)
	r.log.Add(trace.KindReplay, int(r.cfg.Node), bs.e.Proc.String(),
		"replaying batch #%d (%d messages, %d B)", seq, count, len(buf))
	return true
}

// onAck applies one kernel batch acknowledgement and refills the window.
func (bs *batchSender) onAck(f *frame.Frame) {
	r := bs.r
	if r.crashed || !r.current(bs.rp, bs.gen) {
		return
	}
	rep, err := demos.DecodeReply(f.Body)
	if err != nil {
		r.log.Add(trace.KindReplay, int(r.cfg.Node), bs.e.Proc.String(), "batch ack undecodable: %v", err)
		return // the recovery retry timer backstops a wedged window
	}
	if !rep.OK {
		r.log.Add(trace.KindReplay, int(r.cfg.Node), bs.e.Proc.String(), "batch refused: %s", rep.Err)
		return
	}
	if rep.AckedBatch > bs.acked {
		for s := bs.acked + 1; s <= rep.AckedBatch; s++ {
			delete(bs.ids, s)
		}
		r.replayOcc.Add(-int64(rep.AckedBatch - bs.acked))
		bs.acked = rep.AckedBatch
	}
	bs.fill()
}

// sendDone tells the kernel the last published message has been replayed:
// "After the recovery process has sent the last published message, it sends
// a message ... that the process is now recovered" (§4.7).
func (bs *batchSender) sendDone() {
	bs.doneSent = true
	r := bs.r
	e, rp, gen := bs.e, bs.rp, bs.gen
	r.sendCtl(rp.target, frame.ProcID{Node: rp.target, Local: 0}, false,
		&demos.CtlMsg{Op: demos.OpRecoveryDone, Proc: e.Proc, RecoveryGen: gen},
		chanCtlReply, func(f *frame.Frame) {
			if r.crashed || !r.current(rp, gen) {
				return
			}
			e.Recovering = false
			delete(r.recovering, e.Proc)
			delete(r.replaying, e.Proc)
			r.stats.RecoveriesCompleted++
			r.log.Add(trace.KindRecoveryDone, int(r.cfg.Node), e.Proc.String(), "recovered on n%d", rp.target)
		})
}

// sendReplay transmits one ChanReplay body (batch or checkpoint chunk) as
// guaranteed traffic to a node's kernel process, returning the transport
// frame id and the reply-waiter code (zero when no reply is expected).
func (r *Recorder) sendReplay(node frame.NodeID, body []byte, onReply func(*frame.Frame)) (frame.MsgID, uint32) {
	r.sendSeq++
	f := &frame.Frame{
		Type:    frame.Guaranteed,
		Dst:     node,
		ID:      frame.MsgID{Sender: r.cfg.Proc, Seq: r.restartNumber<<40 | r.sendSeq},
		From:    r.cfg.Proc,
		To:      frame.ProcID{Node: node, Local: 0},
		Channel: demos.ChanReplay,
		Body:    body,
	}
	var code uint32
	if onReply != nil {
		code = r.nextCode
		r.nextCode++
		r.waiters[code] = onReply
		f.PassedLink = &frame.Link{To: r.cfg.Proc, Channel: chanCtlReply, Code: code}
	}
	r.ep.SendGuaranteed(f)
	return f.ID, code
}

// cancelReplay tears down a live batch pipeline: unsent batch frames are
// withdrawn from the transport and the reply waiters orphaned, so a
// superseded generation cannot race the attempt that replaces it.
func (r *Recorder) cancelReplay(p frame.ProcID) {
	bs := r.replaying[p]
	if bs == nil {
		return
	}
	delete(r.replaying, p)
	r.replayOcc.Add(-int64(bs.nextSeq - bs.acked))
	for _, code := range bs.codes {
		delete(r.waiters, code)
	}
	if len(bs.ids) > 0 {
		live := make(map[frame.MsgID]bool, len(bs.ids))
		for _, id := range bs.ids {
			live[id] = true
		}
		r.ep.Abort(func(f *frame.Frame) bool { return live[f.ID] })
	}
}
