package recorder

import (
	"sort"

	"publishing/internal/demos"
	"publishing/internal/frame"
	"publishing/internal/simtime"
	"publishing/internal/trace"
)

// watchState is one watchdog (§4.6): "its kernel process creates, on the
// recording node, a watch process for each processor in the system".
type watchState struct {
	node    frame.NodeID
	misses  int
	gotPong bool
	down    bool
	// responsible marks that this recorder owns the node's recovery
	// (always true with a single recorder; decided by arbitration with
	// peers, §6.3).
	responsible bool
}

// Start arms the watchdogs and begins periodic stable-store flushing.
func (r *Recorder) Start() {
	for _, n := range r.cfg.Nodes {
		if _, ok := r.watch[n]; !ok {
			r.watch[n] = &watchState{node: n}
		}
	}
	r.initPeerWatch()
	r.armWatchTick()
	r.armFlushTick()
}

func (r *Recorder) armWatchTick() {
	epoch := r.epoch
	tick := r.cfg.TickSched
	if tick == nil {
		tick = r.sched
	}
	tick.After(r.cfg.WatchInterval, func() {
		if r.epoch != epoch || r.crashed {
			return
		}
		r.watchTick()
		r.armWatchTick()
	})
}

func (r *Recorder) armFlushTick() {
	if r.cfg.FlushEveryMessage {
		return
	}
	epoch := r.epoch
	r.sched.After(simtime.Second, func() {
		if r.epoch != epoch || r.crashed {
			return
		}
		_ = r.store.Flush()
		// Sweep pending frames that were never acknowledged (destination
		// dead, sender gave up) so they don't accumulate.
		cutoff := r.sched.Now() - simtime.Minute
		for id, sm := range r.pending {
			if sm.SeenAt < cutoff {
				delete(r.pending, id)
				r.recycleStored(sm)
			}
		}
		r.armFlushTick()
	})
}

// watchTick evaluates last interval's pongs and sends the next pings.
// Iteration follows cfg.Nodes (sorted at construction), not the watch map:
// the pings serialize onto the shared medium, so map order here would make
// same-seed runs diverge (caught by the online monitor's event-stream
// fingerprints — deliveries shifted by whole frame slots from t=500 ms on).
func (r *Recorder) watchTick() {
	for _, n := range r.cfg.Nodes {
		w := r.watch[n]
		if w == nil {
			continue
		}
		if w.gotPong {
			w.misses = 0
			if w.down {
				// The node answered again after a crash: it rebooted. The
				// responsible recorder recovers its processes on it (§4.6
				// "recover on the same processor").
				w.down = false
				if w.responsible {
					w.responsible = false
					r.log.Add(trace.KindDetect, int(r.cfg.Node), nodeSubject(w.node), "node is back; recovering its processes")
					r.recoverNode(w.node, w.node)
				}
			}
		} else {
			w.misses++
			if w.misses >= r.cfg.MissThreshold && !w.down {
				r.processorCrash(w)
			}
		}
		w.gotPong = false
		// "Are you alive?" — unguaranteed, like all dated traffic (§4.3.3).
		r.ep.SendUnguaranteed(&frame.Frame{
			Dst:  w.node,
			From: r.cfg.Proc,
			To:   frame.ProcID{Node: w.node, Local: 0},
			Body: demos.PingBody,
		})
	}
	r.tickPeerWatch()
}

func (r *Recorder) handlePong(f *frame.Frame) {
	if len(f.Body) == 0 {
		return
	}
	if len(f.Body) == 1 && f.Body[0] == demos.PingBody[0] {
		// Sharded recorders watch each other; answer the peer's ping the way
		// kernels answer ours. Classic recorders are never pinged.
		if r.cfg.Shards != nil {
			r.ep.SendUnguaranteed(&frame.Frame{Dst: f.Src, From: r.cfg.Proc, To: f.From, Body: demos.PongBody})
		}
		return
	}
	if f.Body[0] != demos.PongBody[0] {
		return
	}
	if w, ok := r.watch[f.Src]; ok {
		w.gotPong = true
	}
	for _, w := range r.peerWatch {
		if w.node == f.Src {
			w.gotPong = true
		}
	}
}

func nodeSubject(n frame.NodeID) string { return frame.ProcID{Node: n, Local: 0}.String() }

// processorCrash reacts to a watchdog timeout (§3.3.2, §4.6): with peers,
// arbitration decides who acts; alone, we act.
func (r *Recorder) processorCrash(w *watchState) {
	w.down = true
	r.stats.ProcessorCrashes++
	r.log.Add(trace.KindDetect, int(r.cfg.Node), nodeSubject(w.node), "processor crash detected by watchdog")
	if r.cfg.Shards != nil {
		// Sharded mode: duty is per shard, not per node, so there is nothing
		// to arbitrate — every recorder acts and startRecovery's ActsFor
		// guard filters the node's processes to this recorder's slots.
		w.responsible = true
		r.actOnCrash(w)
		return
	}
	r.arbitrate(w)
}

// actOnCrash applies the §4.6 operator decision for a node we are
// responsible for.
func (r *Recorder) actOnCrash(w *watchState) {
	w.responsible = true
	dec := Decision{Action: ActionRecoverSame}
	if r.cfg.OnProcessorCrash != nil {
		dec = r.cfg.OnProcessorCrash(w.node)
	}
	switch dec.Action {
	case ActionNoRecover:
		w.responsible = false
		r.log.Add(trace.KindDetect, int(r.cfg.Node), nodeSubject(w.node), "operator chose no recovery")
	case ActionRecoverSpare:
		r.log.Add(trace.KindDetect, int(r.cfg.Node), nodeSubject(w.node), "recovering on spare node %d", dec.Spare)
		r.recoverNode(w.node, dec.Spare)
	default: // ActionRecoverSame
		if r.cfg.RebootFn != nil {
			r.cfg.RebootFn(w.node)
		}
		// Recovery starts when the watchdog sees the node answer again.
	}
}

// recoverNode starts recovery of every process located on failed, placing
// them on target (== failed for same-processor recovery). The entries are
// sorted by process id before launch: map iteration order is randomized,
// and the launch order fixes how the recoveries' batch streams interleave
// on the shared transport, so determinism requires a canonical order. Each
// process gets its own windowed batch sender; their refills alternate as
// acks return, a round-robin interleave rather than one process's full
// stream before the next.
func (r *Recorder) recoverNode(failed, target frame.NodeID) {
	var procs []*procEntry
	for _, e := range r.db {
		if e.Node == failed && !e.Dead {
			procs = append(procs, e)
		}
	}
	sort.Slice(procs, func(i, j int) bool {
		a, b := procs[i].Proc, procs[j].Proc
		if a.Node != b.Node {
			return a.Node < b.Node
		}
		return a.Local < b.Local
	})
	for _, e := range procs {
		r.startRecovery(e, target)
	}
}

// recoveryProc is one recovery process (§3.3.3, §4.7). It is recorder-
// internal event logic rather than a scheduled DEMOS process, but performs
// exactly the thesis's steps: recreate, replay in read order, declare done.
type recoveryProc struct {
	proc   frame.ProcID
	target frame.NodeID
	gen    uint64 // generation; a recursive crash abandons stale generations
}

// startRecovery launches (or relaunches, §3.5) recovery of one process.
func (r *Recorder) startRecovery(e *procEntry, target frame.NodeID) {
	if e.Dead {
		return
	}
	if r.cfg.Shards != nil && !r.ActsFor(r.cfg.Shards.ShardOf(e.Proc)) {
		return // another replica holds this shard's recovery duty
	}
	rp := r.recovering[e.Proc]
	if rp == nil {
		rp = &recoveryProc{proc: e.Proc}
		if r.cfg.Shards != nil {
			// Salt the generation by rank so two replicas recovering the same
			// process during a handoff overlap can never collide on a
			// generation number: the kernel's exact-generation batch guard
			// then drops the superseded replica's replay cleanly.
			rp.gen = uint64(r.cfg.Rank+1) << 32
		}
		r.recovering[e.Proc] = rp
	}
	// A relaunch supersedes any in-flight replay of the previous attempt:
	// withdraw its unsent batches and orphan its reply waiters before the
	// generation bump makes them stale.
	r.cancelReplay(e.Proc)
	rp.gen++
	rp.target = target
	gen := rp.gen
	e.Recovering = true
	if e.Node != target {
		e.Node = target
		r.persistProcMeta(e)
		r.broadcastRoute(e.Proc, target, r.routeRepeats())
	}
	r.stats.RecoveriesStarted++
	// len(e.Arrivals) is the replay count: reconstruct emits every arrival
	// exactly once (advisories only reorder), so there is no need to build
	// the whole ordered slice just to log its length.
	r.log.Add(trace.KindRecoveryStart, int(r.cfg.Node), e.Proc.String(),
		"recovery started (target n%d, %d messages to replay, checkpoint=%v)",
		target, len(e.Arrivals), e.Checkpoint != nil)

	epoch := r.epoch
	r.sched.After(r.cfg.ReplayGrace, func() {
		if r.epoch != epoch || r.crashed || !r.current(rp, gen) {
			return
		}
		r.sendRecreate(e, rp, gen)
	})
	r.armRecoveryRetry(e, rp, gen)
}

// current reports whether gen is still the live attempt for rp.
func (r *Recorder) current(rp *recoveryProc, gen uint64) bool {
	live, ok := r.recovering[rp.proc]
	return ok && live == rp && rp.gen == gen
}

// armRecoveryRetry restarts a recovery from scratch if it has not completed
// after RecoveryRetry — covering lost nodes and recursive crashes (§3.5).
func (r *Recorder) armRecoveryRetry(e *procEntry, rp *recoveryProc, gen uint64) {
	if r.cfg.RecoveryRetry <= 0 {
		return
	}
	epoch := r.epoch
	r.sched.After(r.cfg.RecoveryRetry, func() {
		if r.epoch != epoch || r.crashed || !r.current(rp, gen) {
			return
		}
		if e.Recovering {
			r.log.Add(trace.KindRecoveryStart, int(r.cfg.Node), e.Proc.String(), "recovery stalled; reinitiating (§3.5)")
			r.startRecovery(e, rp.target)
		}
	})
}

func (r *Recorder) sendRecreate(e *procEntry, rp *recoveryProc, gen uint64) {
	ctl := &demos.CtlMsg{
		Op:           demos.OpRecreate,
		Spec:         e.Spec,
		Proc:         e.Proc,
		FirstSendSeq: 1,
		LastSentSeq:  e.LastSent,
		RecoveryGen:  gen,
	}
	if e.Checkpoint != nil {
		ctl.FirstSendSeq = e.CkSendSeq + 1
		ctl.ReadCount = e.CkReadCount
		if budget := r.replayBudget(); len(e.Checkpoint) > budget {
			// Catch-up transfer: a checkpoint too big for one frame ships as
			// MTU-sized chunks on the replay channel ahead of the recreate.
			// The transport's per-node-pair FIFO guarantees the kernel has
			// staged every chunk before it sees the recreate that assembles
			// them, so no handshake is needed.
			total := (len(e.Checkpoint) + budget - 1) / budget
			for i := 0; i < total; i++ {
				lo := i * budget
				hi := lo + budget
				if hi > len(e.Checkpoint) {
					hi = len(e.Checkpoint)
				}
				body := demos.EncodeCkChunk(nil, e.Proc, gen, uint64(i), uint32(total), e.Checkpoint[lo:hi])
				r.sendReplay(rp.target, body, nil)
				r.stats.CkChunksSent++
			}
			ctl.CkChunks = uint32(total)
		} else {
			ctl.Checkpoint = e.Checkpoint
		}
	}
	r.sendCtl(rp.target, frame.ProcID{Node: rp.target, Local: 0}, false, ctl, chanCtlReply, func(f *frame.Frame) {
		if r.crashed || !r.current(rp, gen) {
			return
		}
		rep, err := demos.DecodeReply(f.Body)
		if err != nil {
			// An undecodable reply says nothing about the kernel's decision;
			// rep is meaningless here and must not be consulted.
			r.log.Add(trace.KindRecoveryStart, int(r.cfg.Node), e.Proc.String(),
				"recreate reply undecodable: %v", err)
			return // the retry timer will reinitiate
		}
		if !rep.OK {
			r.log.Add(trace.KindRecoveryStart, int(r.cfg.Node), e.Proc.String(),
				"recreate refused by kernel: %s", rep.Err)
			return // the retry timer will reinitiate
		}
		r.startReplay(e, rp, gen)
	})
}

// broadcastRoute tells every kernel where a process now lives (migration /
// recovery on a spare). It is best-effort routing information, so it goes
// out unguaranteed (§4.3.3) and is repeated a few times; kernels that miss
// it still forward through the home node.
func (r *Recorder) broadcastRoute(p frame.ProcID, node frame.NodeID, times int) {
	if times <= 0 {
		return
	}
	body := demos.EncodeRouteUpdate(p, node)
	for i := 0; i < times; i++ {
		delay := simtime.Time(i) * 50 * simtime.Millisecond
		epoch := r.epoch
		r.sched.After(delay, func() {
			if r.epoch != epoch || r.crashed {
				return
			}
			r.ep.SendUnguaranteed(&frame.Frame{Dst: frame.Broadcast, From: r.cfg.Proc, Body: body})
		})
	}
}

// --- Recorder crash and restart (§3.3.4, §3.4) -----------------------------

// Crash takes the recorder down: all volatile state — database, pending
// messages, watchdogs, in-flight recoveries — is lost; stable storage
// survives (its write buffer is battery-backed solid-state memory per
// §3.3.4). While the recorder is down, publish-before-use suspends all
// guaranteed traffic, exactly the paper's availability trade-off.
func (r *Recorder) Crash() {
	if r.crashed {
		return
	}
	r.crashed = true
	r.epoch++
	r.db = make(map[frame.ProcID]*procEntry)
	for _, sm := range r.pending {
		r.recycleStored(sm) // never exposed; safe to reuse
	}
	r.pending = make(map[frame.MsgID]*storedMsg)
	r.preArrivals = make(map[frame.ProcID][]storedMsg)
	r.preLastSent = make(map[frame.ProcID]uint64)
	r.ackq = r.ackq[:0]
	r.ackTimerSet = false
	r.noticeSeen.Reset()
	r.catchingUp = false
	r.awaitCk = nil
	r.recovering = make(map[frame.ProcID]*recoveryProc)
	r.replaying = make(map[frame.ProcID]*batchSender)
	r.replayOcc.Set(0)
	r.waiters = make(map[uint32]func(*frame.Frame))
	for _, w := range r.watch {
		w.gotPong, w.misses = false, 0
	}
	if r.cfg.Shards != nil {
		r.actingSlots = make(map[int]bool)
		r.handoffPending = make(map[int]bool)
		r.handoffs = make(map[int]*handoffSession)
		r.handoffRx = make(map[uint32]*handoffAssembly)
		r.handoffCrashAfter = 0
		for _, w := range r.peerWatch {
			w.gotPong, w.misses, w.down = false, 0, false
		}
	}
	r.ep.Reset()
	r.med.Faults().SetDown(r.cfg.Node, true)
	r.log.Add(trace.KindCrash, int(r.cfg.Node), "recorder", "recorder crash")
}

// Restart brings the recorder back: bump and persist the restart number
// (§3.4), rebuild the database from stable storage, re-arm watchdogs, and
// run the §3.3.4 state-query protocol against every node.
func (r *Recorder) Restart() error {
	if !r.crashed {
		return nil
	}
	r.crashed = false
	r.epoch++
	r.med.Faults().SetDown(r.cfg.Node, false)
	r.restartNumber++
	if err := r.rebuild(); err != nil {
		return err
	}
	r.persistRestartNumber()
	r.sendSeq = 0
	r.Start()
	r.beginCatchUp()
	r.beginHandoff()
	r.log.Add(trace.KindRecorder, int(r.cfg.Node), "recorder", "restart #%d; querying %d nodes", r.restartNumber, len(r.cfg.Nodes))
	for _, n := range r.cfg.Nodes {
		n := n
		r.sendCtl(n, frame.ProcID{Node: n, Local: 0}, false,
			&demos.CtlMsg{Op: demos.OpQueryProcs, RestartNumber: r.restartNumber},
			chanQueryResp, func(f *frame.Frame) { r.handleQueryResponse(f) })
	}
	return nil
}

// handleQueryResponse applies the §3.3.4 decision table to one node's
// report. Responses stamped with a stale restart number are ignored (§3.4).
func (r *Recorder) handleQueryResponse(f *frame.Frame) {
	q, err := demos.DecodeQuery(f.Body)
	if err != nil {
		return
	}
	if q.RestartNumber != r.restartNumber {
		r.log.Add(trace.KindRecorder, int(r.cfg.Node), nodeSubject(q.Node),
			"stale restart response #%d ignored (§3.4)", q.RestartNumber)
		return
	}
	reported := make(map[frame.ProcID]demos.ProcState)
	for _, rep := range q.Procs {
		reported[rep.Proc] = rep.State
	}
	for _, e := range r.db {
		if e.Dead || e.Node != q.Node {
			continue
		}
		st, known := reported[e.Proc]
		if !known {
			st = demos.StateUnknown
		}
		switch st {
		case demos.StateFunctioning:
			// Nothing happened; no action (§3.3.4).
			e.Recovering = false
		case demos.StateCrashed, demos.StateRecovering, demos.StateUnknown:
			// Crashed before/while we were down, a recovery we had started
			// and lost, or a process its node lost: (re)start recovery.
			r.startRecovery(e, e.Node)
		}
	}
}
