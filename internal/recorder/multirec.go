package recorder

import (
	"bytes"
	"encoding/gob"

	"publishing/internal/frame"
	"publishing/internal/simtime"
	"publishing/internal/trace"
)

// This file implements §6.3, "Multiple recorders for reliability": with n
// recorders all recording all messages, n−1 can fail before the network
// becomes unavailable. Three problems are solved exactly as the thesis
// prescribes:
//
//  1. Coordinating recovery: each node has a priority vector over the
//     recorders; on detecting a node crash, a recorder queries every
//     higher-priority recorder and defers if any is "willing and able to
//     perform recovery"; silence for the claim interval means the duty
//     falls through. A deferring recorder "continues to monitor" and
//     requeries periodically in case the higher recorder dies mid-recovery.
//  2. Ensuring all recorders record each message: the media require a
//     positive verdict from every *reachable* tap before a message (or
//     ack) is usable — the per-recorder acknowledge slots of §6.3.
//  3. Recovering failed recorders: a restarted recorder rebuilds from its
//     own store, then forces every process to checkpoint; once they have,
//     its stale stream suffixes are irrelevant and it resumes accepting
//     recovery responsibilities.

// peerKind discriminates recorder-to-recorder messages.
type peerKind uint8

const (
	peerQuery peerKind = iota + 1 // "willing to recover node N?"
	peerWilling
)

// peerMsg is the body of recorder-to-recorder traffic (channel chanPeer).
type peerMsg struct {
	Kind peerKind
	Node frame.NodeID
	Code uint32
}

// chanPeer carries recorder-to-recorder arbitration.
const chanPeer = 3

func encodePeer(m *peerMsg) []byte {
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(m); err != nil {
		panic(err)
	}
	return buf.Bytes()
}

func decodePeer(b []byte) (*peerMsg, error) {
	var m peerMsg
	err := gob.NewDecoder(bytes.NewReader(b)).Decode(&m)
	return &m, err
}

// higherPeers returns the recorder procs with priority above ours for a
// node, per the node's priority vector (default: ascending rank).
func (r *Recorder) higherPeers(node frame.NodeID) []frame.ProcID {
	if len(r.cfg.Peers) == 0 {
		return nil
	}
	order := r.cfg.priorityFor(node, len(r.cfg.Peers)+1)
	var out []frame.ProcID
	for _, rank := range order {
		if rank == r.cfg.Rank {
			break
		}
		// Ranks map onto the combined (self + peers) list the cluster
		// built; PeerByRank resolves them.
		if p, ok := r.cfg.peerByRank(rank); ok {
			out = append(out, p)
		}
	}
	return out
}

// priorityFor returns the recorder-rank order responsible for a node.
func (c *Config) priorityFor(node frame.NodeID, nRecs int) []int {
	if c.Priority != nil {
		return c.Priority(node)
	}
	order := make([]int, nRecs)
	for i := range order {
		order[i] = i
	}
	return order
}

// peerByRank resolves a rank to a peer's proc id (our own rank resolves to
// nothing — we are not our own peer).
func (c *Config) peerByRank(rank int) (frame.ProcID, bool) {
	if rank == c.Rank {
		return frame.NilProc, false
	}
	// Peers are stored in rank order with our own slot removed; map back.
	idx := rank
	if rank > c.Rank {
		idx = rank - 1
	}
	if idx < 0 || idx >= len(c.Peers) {
		return frame.NilProc, false
	}
	return c.Peers[idx], true
}

// sendPeer ships an arbitration message to another recorder.
func (r *Recorder) sendPeer(to frame.ProcID, m *peerMsg) {
	r.sendSeq++
	r.ep.SendGuaranteed(&frame.Frame{
		Type:    frame.Guaranteed,
		Dst:     to.Node,
		ID:      frame.MsgID{Sender: r.cfg.Proc, Seq: r.restartNumber<<40 | r.sendSeq},
		From:    r.cfg.Proc,
		To:      to,
		Channel: chanPeer,
		Body:    encodePeer(m),
	})
}

// handlePeer serves arbitration traffic.
func (r *Recorder) handlePeer(f *frame.Frame) {
	m, err := decodePeer(f.Body)
	if err != nil {
		return
	}
	switch m.Kind {
	case peerQuery:
		// We are alive; we accept the duty unless still catching up after
		// our own restart (§6.3's "up to date and able to accept recovery
		// responsibilities").
		if r.catchingUp {
			return // silence means "not willing"; the asker's timer decides
		}
		r.sendPeer(f.From, &peerMsg{Kind: peerWilling, Node: m.Node, Code: m.Code})
		// Taking the duty: behave as if our own watchdog found the node.
		if w, ok := r.watch[m.Node]; ok && !w.down {
			w.down = true
			r.stats.ProcessorCrashes++
			r.log.Add(trace.KindDetect, int(r.cfg.Node), nodeSubject(m.Node),
				"accepting recovery duty from %s", f.From)
			r.actOnCrash(w)
		}
	case peerWilling:
		if fn, ok := r.waiters[m.Code]; ok {
			delete(r.waiters, m.Code)
			fn(f)
		}
	}
}

// arbitrate decides who recovers a crashed node (§6.3). Without peers the
// duty is ours immediately.
func (r *Recorder) arbitrate(w *watchState) {
	higher := r.higherPeers(w.node)
	if len(higher) == 0 {
		w.responsible = true
		r.actOnCrash(w)
		return
	}
	code := r.nextCode
	r.nextCode++
	answered := false
	r.waiters[code] = func(*frame.Frame) {
		answered = true
		w.responsible = false
		r.log.Add(trace.KindDetect, int(r.cfg.Node), nodeSubject(w.node),
			"higher-priority recorder took node %d; monitoring", w.node)
		// "If P_i does not recover in a set interval, R periodically
		// requeries its higher priority nodes" (§6.3).
		epoch := r.epoch
		r.sched.After(r.cfg.RecoveryRetry, func() {
			if r.epoch != epoch || r.crashed {
				return
			}
			if w.down {
				r.arbitrate(w)
			}
		})
	}
	for _, p := range higher {
		r.sendPeer(p, &peerMsg{Kind: peerQuery, Node: w.node, Code: code})
	}
	epoch := r.epoch
	claim := r.cfg.ClaimTimeout
	if claim <= 0 {
		claim = 2 * simtime.Second
	}
	r.sched.After(claim, func() {
		if r.epoch != epoch || r.crashed || answered {
			return
		}
		delete(r.waiters, code)
		if w.down {
			r.log.Add(trace.KindDetect, int(r.cfg.Node), nodeSubject(w.node),
				"no higher-priority recorder answered; taking node %d", w.node)
			w.responsible = true
			r.actOnCrash(w)
		}
	})
}

// beginCatchUp starts the §6.3 restart catch-up: force a checkpoint from
// every live process; until they all land, this recorder declines recovery
// duties (its stream suffixes may be stale from its downtime).
func (r *Recorder) beginCatchUp() {
	if len(r.cfg.Peers) == 0 {
		return // sole recorder: nothing was published while we were down
	}
	r.catchingUp = true
	r.awaitCk = make(map[frame.ProcID]bool)
	for p, e := range r.db {
		if !e.Dead && e.Spec.Recoverable {
			r.awaitCk[p] = true
			r.RequestCheckpoint(p)
		}
	}
	r.log.Add(trace.KindRecorder, int(r.cfg.Node), "recorder",
		"catching up: awaiting %d forced checkpoints", len(r.awaitCk))
	r.checkCaughtUp()
	// Fallback: processes that cannot checkpoint (Program images) never
	// will; cap the catch-up phase.
	epoch := r.epoch
	r.sched.After(10*simtime.Second, func() {
		if r.epoch != epoch || r.crashed {
			return
		}
		if r.catchingUp {
			r.log.Add(trace.KindRecorder, int(r.cfg.Node), "recorder", "catch-up timed out; resuming duties")
			r.finishCatchUp()
		}
	})
}

func (r *Recorder) noteCatchUpProgress(p frame.ProcID) {
	if !r.catchingUp {
		return
	}
	delete(r.awaitCk, p)
	r.checkCaughtUp()
}

func (r *Recorder) checkCaughtUp() {
	if r.catchingUp && len(r.awaitCk) == 0 {
		r.finishCatchUp()
	}
}

func (r *Recorder) finishCatchUp() {
	r.catchingUp = false
	r.awaitCk = nil
	r.log.Add(trace.KindRecorder, int(r.cfg.Node), "recorder", "caught up; accepting recovery duties")
}
