package recorder

import (
	"bytes"
	"encoding/gob"
	"sort"

	"publishing/internal/demos"
	"publishing/internal/frame"
	"publishing/internal/simtime"
	"publishing/internal/trace"
)

// This file implements §6.3, "Multiple recorders for reliability": with n
// recorders all recording all messages, n−1 can fail before the network
// becomes unavailable. Three problems are solved exactly as the thesis
// prescribes:
//
//  1. Coordinating recovery: each node has a priority vector over the
//     recorders; on detecting a node crash, a recorder queries every
//     higher-priority recorder and defers if any is "willing and able to
//     perform recovery"; silence for the claim interval means the duty
//     falls through. A deferring recorder "continues to monitor" and
//     requeries periodically in case the higher recorder dies mid-recovery.
//  2. Ensuring all recorders record each message: the media require a
//     positive verdict from every *reachable* tap before a message (or
//     ack) is usable — the per-recorder acknowledge slots of §6.3.
//  3. Recovering failed recorders: a restarted recorder rebuilds from its
//     own store, then forces every process to checkpoint; once they have,
//     its stale stream suffixes are irrelevant and it resumes accepting
//     recovery responsibilities.

// peerKind discriminates recorder-to-recorder messages.
type peerKind uint8

const (
	peerQuery peerKind = iota + 1 // "willing to recover node N?"
	peerWilling

	// Shard-handoff protocol (sharded mode; see shard.go). A restarted
	// recorder Requests the stream suffixes it missed from the surviving
	// replica of each shared slot; the partner streams per-process blobs as
	// Data chunks and finishes with Done; the requester Commits, at which
	// point the partner stands down from the requester's leader slots.
	peerHandoffReq
	peerHandoffData
	peerHandoffDone
	peerHandoffCommit
)

// procCov is the requester's per-stream coverage statement: how far its
// local basis reaches (BaseReads + recorded arrivals) and its send-side
// suppression watermark. The serving side ships only streams it knows more
// about.
type procCov struct {
	Proc     frame.ProcID
	Dead     bool
	Cov      uint64
	LastSent uint64
}

// peerMsg is the body of recorder-to-recorder traffic (channel chanPeer).
type peerMsg struct {
	Kind peerKind
	Node frame.NodeID
	Code uint32

	// Shard-handoff fields.
	Rank  int          // sender's recorder rank
	Cov   []procCov    // Req: requester's coverage table
	Proc  frame.ProcID // Data: the stream this chunk belongs to
	Chunk uint32       // Data: chunk index within the stream's blob
	Total uint32       // Data: chunk count for the stream's blob
	Data  []byte       // Data: chunk bytes
	Procs int          // Done: streams shipped this session
}

// handoffProc is the per-stream transfer blob: everything the requester
// needs to adopt the partner's basis wholesale — checkpoint, reconstructed
// replay order (advisories pre-applied), the full seen-set (including
// trimmed ids, so late retransmissions stay suppressed), and the metadata.
type handoffProc struct {
	Proc        frame.ProcID
	Spec        demos.ProcSpec
	Node        frame.NodeID
	Dead        bool
	LastSent    uint64
	Ck          []byte
	CkSendSeq   uint64
	CkReadCount uint64
	CkStateKB   int
	BaseReads   uint64
	Cov         uint64
	Msgs        []storedMsg
	Have        []frame.MsgID
}

// handoffSession is the requester's side of one transfer (keyed by partner
// rank); a retry supersedes it with a fresh code.
type handoffSession struct {
	partner int
	code    uint32
}

// handoffAssembly reassembles one stream's chunked blob (FIFO transport:
// chunks arrive in order, streams arrive sequentially per session).
type handoffAssembly struct {
	proc  frame.ProcID
	total uint32
	next  uint32
	buf   []byte
}

// handoffChunkBytes bounds one Data chunk so the gob-encoded peerMsg around
// it still fits a frame body.
const handoffChunkBytes = frame.MaxBody - 512

// handoffRetry is how long the requester waits for a session's Done before
// re-requesting from scratch.
const handoffRetry = 3 * simtime.Second

// chanPeer carries recorder-to-recorder arbitration.
const chanPeer = 3

func encodePeer(m *peerMsg) []byte {
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(m); err != nil {
		panic(err)
	}
	return buf.Bytes()
}

func decodePeer(b []byte) (*peerMsg, error) {
	var m peerMsg
	err := gob.NewDecoder(bytes.NewReader(b)).Decode(&m)
	return &m, err
}

// higherPeers returns the recorder procs with priority above ours for a
// node, per the node's priority vector (default: ascending rank).
func (r *Recorder) higherPeers(node frame.NodeID) []frame.ProcID {
	if len(r.cfg.Peers) == 0 {
		return nil
	}
	order := r.cfg.priorityFor(node, len(r.cfg.Peers)+1)
	var out []frame.ProcID
	for _, rank := range order {
		if rank == r.cfg.Rank {
			break
		}
		// Ranks map onto the combined (self + peers) list the cluster
		// built; PeerByRank resolves them.
		if p, ok := r.cfg.peerByRank(rank); ok {
			out = append(out, p)
		}
	}
	return out
}

// priorityFor returns the recorder-rank order responsible for a node.
func (c *Config) priorityFor(node frame.NodeID, nRecs int) []int {
	if c.Priority != nil {
		return c.Priority(node)
	}
	order := make([]int, nRecs)
	for i := range order {
		order[i] = i
	}
	return order
}

// peerByRank resolves a rank to a peer's proc id (our own rank resolves to
// nothing — we are not our own peer).
func (c *Config) peerByRank(rank int) (frame.ProcID, bool) {
	if rank == c.Rank {
		return frame.NilProc, false
	}
	// Peers are stored in rank order with our own slot removed; map back.
	idx := rank
	if rank > c.Rank {
		idx = rank - 1
	}
	if idx < 0 || idx >= len(c.Peers) {
		return frame.NilProc, false
	}
	return c.Peers[idx], true
}

// sendPeer ships an arbitration message to another recorder.
func (r *Recorder) sendPeer(to frame.ProcID, m *peerMsg) {
	r.sendSeq++
	r.ep.SendGuaranteed(&frame.Frame{
		Type:    frame.Guaranteed,
		Dst:     to.Node,
		ID:      frame.MsgID{Sender: r.cfg.Proc, Seq: r.restartNumber<<40 | r.sendSeq},
		From:    r.cfg.Proc,
		To:      to,
		Channel: chanPeer,
		Body:    encodePeer(m),
	})
}

// handlePeer serves arbitration traffic.
func (r *Recorder) handlePeer(f *frame.Frame) {
	m, err := decodePeer(f.Body)
	if err != nil {
		return
	}
	switch m.Kind {
	case peerQuery:
		// We are alive; we accept the duty unless still catching up after
		// our own restart (§6.3's "up to date and able to accept recovery
		// responsibilities").
		if r.catchingUp {
			return // silence means "not willing"; the asker's timer decides
		}
		r.sendPeer(f.From, &peerMsg{Kind: peerWilling, Node: m.Node, Code: m.Code})
		// Taking the duty: behave as if our own watchdog found the node.
		if w, ok := r.watch[m.Node]; ok && !w.down {
			w.down = true
			r.stats.ProcessorCrashes++
			r.log.Add(trace.KindDetect, int(r.cfg.Node), nodeSubject(m.Node),
				"accepting recovery duty from %s", f.From)
			r.actOnCrash(w)
		}
	case peerWilling:
		if fn, ok := r.waiters[m.Code]; ok {
			delete(r.waiters, m.Code)
			fn(f)
		}
	case peerHandoffReq:
		r.serveHandoff(f.From, m)
	case peerHandoffData:
		r.handleHandoffData(m)
	case peerHandoffDone:
		r.handleHandoffDone(m)
	case peerHandoffCommit:
		r.handleHandoffCommit(m)
	}
}

// --- Shard handoff (sharded mode) ------------------------------------------

// beginHandoff starts a transfer session with every partner rank that
// co-replicates at least one slot with us. Called on restart, before this
// recorder resumes duty on its leader slots (ActsFor stays false for a slot
// while its follower is a pending partner).
func (r *Recorder) beginHandoff() {
	m := r.cfg.Shards
	if m == nil {
		return
	}
	for rank := 0; rank < m.Recorders(); rank++ {
		if rank == r.cfg.Rank || !m.SharedSlots(r.cfg.Rank, rank) {
			continue
		}
		r.startHandoffSession(rank)
	}
}

// startHandoffSession (re)opens the transfer with one partner: send our
// coverage table for every stream in a shared slot and wait for the blobs.
func (r *Recorder) startHandoffSession(partner int) {
	peer, ok := r.cfg.peerByRank(partner)
	if !ok {
		return
	}
	m := r.cfg.Shards
	if old := r.handoffs[partner]; old != nil {
		delete(r.handoffRx, old.code)
	}
	code := r.nextCode
	r.nextCode++
	r.handoffPending[partner] = true
	r.handoffs[partner] = &handoffSession{partner: partner, code: code}
	var cov []procCov
	for _, p := range r.sortedProcs() {
		s := m.ShardOf(p)
		if !m.Replicates(r.cfg.Rank, s) || !m.Replicates(partner, s) {
			continue
		}
		e := r.db[p]
		cov = append(cov, procCov{
			Proc:     p,
			Dead:     e.Dead,
			Cov:      e.BaseReads + uint64(len(e.Arrivals)),
			LastSent: e.LastSent,
		})
	}
	r.sendPeer(peer, &peerMsg{Kind: peerHandoffReq, Code: code, Rank: r.cfg.Rank, Cov: cov})
	r.log.Add(trace.KindRecorder, int(r.cfg.Node), "recorder",
		"shard handoff requested from rec%d (%d streams known locally)", partner, len(cov))
	epoch := r.epoch
	r.sched.After(handoffRetry, func() {
		if r.epoch != epoch || r.crashed {
			return
		}
		ses := r.handoffs[partner]
		if ses == nil || ses.code != code || !r.handoffPending[partner] {
			return // completed or superseded
		}
		if w := r.peerWatch[partner]; w != nil && w.down {
			return // onPeerDown resumes us with the local basis
		}
		r.log.Add(trace.KindRecorder, int(r.cfg.Node), "recorder",
			"shard handoff from rec%d stalled; re-requesting", partner)
		r.startHandoffSession(partner)
	})
}

// serveHandoff is the partner side: stream every shared-slot process whose
// basis we know more of than the requester, then declare Done. The armed
// chaos counter (ArmHandoffCrash) can kill us between chunks — the exact
// mid-transfer window the I8 invariant is checked under.
func (r *Recorder) serveHandoff(from frame.ProcID, m *peerMsg) {
	sm := r.cfg.Shards
	if sm == nil {
		return
	}
	theirs := make(map[frame.ProcID]procCov, len(m.Cov))
	for _, c := range m.Cov {
		theirs[c.Proc] = c
	}
	shipped := 0
	for _, p := range r.sortedProcs() {
		s := sm.ShardOf(p)
		if !sm.Replicates(r.cfg.Rank, s) || !sm.Replicates(m.Rank, s) {
			continue
		}
		e := r.db[p]
		myCov := e.BaseReads + uint64(len(e.Arrivals))
		tc, known := theirs[p]
		var ship bool
		switch {
		case known && tc.Dead:
			ship = false // terminal; nothing newer can exist
		case e.Dead:
			ship = true // they think it is alive: ship the death certificate
		case !known:
			ship = true
		default:
			ship = myCov > tc.Cov || e.LastSent > tc.LastSent
		}
		if !ship {
			continue
		}
		blob := handoffProc{
			Proc:        p,
			Spec:        e.Spec,
			Node:        e.Node,
			Dead:        e.Dead,
			LastSent:    e.LastSent,
			Ck:          e.Checkpoint,
			CkSendSeq:   e.CkSendSeq,
			CkReadCount: e.CkReadCount,
			CkStateKB:   e.CkStateKB,
			BaseReads:   e.BaseReads,
			Cov:         myCov,
			Msgs:        reconstruct(e.Arrivals, e.Advisories),
		}
		blob.Have = make([]frame.MsgID, 0, len(e.have))
		for id := range e.have {
			blob.Have = append(blob.Have, id)
		}
		sortMsgIDs(blob.Have)
		var buf bytes.Buffer
		if err := gob.NewEncoder(&buf).Encode(&blob); err != nil {
			panic(err)
		}
		data := buf.Bytes()
		total := (len(data) + handoffChunkBytes - 1) / handoffChunkBytes
		if total == 0 {
			total = 1
		}
		for i := 0; i < total; i++ {
			if r.handoffCrashAfter > 0 {
				r.handoffCrashAfter--
				if r.handoffCrashAfter == 0 {
					r.log.Add(trace.KindRecorder, int(r.cfg.Node), "recorder",
						"injected crash mid-handoff (serving %s to rec%d, chunk %d/%d)", p, m.Rank, i, total)
					r.scheduleSelfCrash()
					return
				}
			}
			lo := i * handoffChunkBytes
			hi := lo + handoffChunkBytes
			if hi > len(data) {
				hi = len(data)
			}
			r.sendPeer(from, &peerMsg{
				Kind: peerHandoffData, Code: m.Code, Rank: r.cfg.Rank,
				Proc: p, Chunk: uint32(i), Total: uint32(total), Data: data[lo:hi],
			})
			r.stats.HandoffChunksSent++
		}
		shipped++
		r.stats.HandoffProcsShipped++
	}
	r.sendPeer(from, &peerMsg{Kind: peerHandoffDone, Code: m.Code, Rank: r.cfg.Rank, Procs: shipped})
	r.log.Add(trace.KindRecorder, int(r.cfg.Node), "recorder",
		"served shard handoff to rec%d: %d streams shipped", m.Rank, shipped)
}

func sortMsgIDs(ids []frame.MsgID) {
	sort.Slice(ids, func(i, j int) bool {
		a, b := ids[i], ids[j]
		if a.Sender.Node != b.Sender.Node {
			return a.Sender.Node < b.Sender.Node
		}
		if a.Sender.Local != b.Sender.Local {
			return a.Sender.Local < b.Sender.Local
		}
		return a.Seq < b.Seq
	})
}

// handleHandoffData reassembles one stream's chunked blob on the requester.
func (r *Recorder) handleHandoffData(m *peerMsg) {
	ses := r.handoffs[m.Rank]
	if ses == nil || ses.code != m.Code {
		return // stale session (retry superseded it)
	}
	asm := r.handoffRx[m.Code]
	if m.Chunk == 0 {
		asm = &handoffAssembly{proc: m.Proc, total: m.Total}
		r.handoffRx[m.Code] = asm
	}
	if asm == nil || asm.proc != m.Proc || m.Chunk != asm.next || m.Total != asm.total {
		delete(r.handoffRx, m.Code) // protocol slip; the retry re-syncs
		return
	}
	asm.buf = append(asm.buf, m.Data...)
	asm.next++
	if asm.next < asm.total {
		return
	}
	delete(r.handoffRx, m.Code)
	var blob handoffProc
	if err := gobIntoR(asm.buf, &blob); err != nil {
		r.log.Add(trace.KindRecorder, int(r.cfg.Node), "recorder",
			"handoff blob from rec%d undecodable: %v", m.Rank, err)
		return
	}
	r.installHandoffProc(&blob)
}

// handleHandoffDone closes the session on the requester: commit to the
// partner (it stands down from our leader slots), resume duty, and sweep for
// recoveries that went unserved while the transfer ran.
func (r *Recorder) handleHandoffDone(m *peerMsg) {
	ses := r.handoffs[m.Rank]
	if ses == nil || ses.code != m.Code {
		return
	}
	delete(r.handoffRx, m.Code)
	delete(r.handoffs, m.Rank)
	delete(r.handoffPending, m.Rank)
	r.stats.HandoffsCompleted++
	if peer, ok := r.cfg.peerByRank(m.Rank); ok {
		r.sendPeer(peer, &peerMsg{Kind: peerHandoffCommit, Code: m.Code, Rank: r.cfg.Rank})
	}
	r.log.Add(trace.KindRecorder, int(r.cfg.Node), "recorder",
		"shard handoff from rec%d complete (%d streams shipped); resuming shard duties", m.Rank, m.Procs)
	r.sweepDuties()
}

// handleHandoffCommit demotes this (promoted-follower) recorder from the
// requester's leader slots: the restarted leader's basis is whole again.
// Until this message the follower kept acting — a brief overlap rather than
// a gap, safe because redundant recovery is idempotent (generation-guarded
// batches, §3.5 restart-from-scratch).
func (r *Recorder) handleHandoffCommit(m *peerMsg) {
	sm := r.cfg.Shards
	if sm == nil {
		return
	}
	demoted := 0
	for s := 0; s < sm.Slots(); s++ {
		if sm.Leader(s) == m.Rank && r.actingSlots[s] {
			delete(r.actingSlots, s)
			demoted++
		}
	}
	if demoted > 0 {
		r.log.Add(trace.KindRecorder, int(r.cfg.Node), "recorder",
			"rec%d reclaimed %d shard slots; standing down", m.Rank, demoted)
	}
}

// installHandoffProc merges one transferred stream into the local database.
// If the blob's basis reaches further than ours, adopt it wholesale and keep
// only local arrivals the partner has never seen as a suffix (both replicas
// hear acknowledgements in wire order, so anything we have that the blob
// lacks postdates its encoding). Otherwise just merge the watermarks.
func (r *Recorder) installHandoffProc(blob *handoffProc) {
	e := r.db[blob.Proc]
	if e == nil {
		e = &procEntry{Proc: blob.Proc, Node: blob.Node, have: make(map[frame.MsgID]bool)}
		e.Spec = blob.Spec
		e.LastCkAt = r.sched.Now()
		r.db[blob.Proc] = e
		r.persistProcMeta(e)
	}
	if blob.Dead {
		if !e.Dead {
			e.Dead = true
			e.Arrivals = nil
			e.Advisories = nil
			r.persistDead(e)
			r.store.Invalidate(msgKey(blob.Proc), e.ArrSeqNext)
			r.store.Invalidate(advKey(blob.Proc), e.AdvSeqNext)
		}
		return
	}
	if e.Dead {
		return // we saw the destruction; the blob is stale
	}
	if blob.LastSent > e.LastSent {
		e.LastSent = blob.LastSent
		r.persistLastSent(e)
	}
	localCov := e.BaseReads + uint64(len(e.Arrivals))
	if blob.Cov <= localCov {
		return // our basis reaches at least as far
	}
	r.cancelReplay(blob.Proc) // in-flight batches from the stale basis
	blobHave := make(map[frame.MsgID]bool, len(blob.Have)+len(blob.Msgs))
	for _, id := range blob.Have {
		blobHave[id] = true
	}
	for i := range blob.Msgs {
		blobHave[blob.Msgs[i].ID] = true
	}
	var extras []storedMsg
	for _, lm := range reconstruct(e.Arrivals, e.Advisories) {
		if !blobHave[lm.ID] {
			extras = append(extras, lm)
		}
	}
	old := e.Arrivals
	e.Checkpoint = blob.Ck
	e.CkSendSeq = blob.CkSendSeq
	e.CkReadCount = blob.CkReadCount
	e.CkStateKB = blob.CkStateKB
	e.BaseReads = blob.BaseReads
	e.LastCkAt = r.sched.Now()
	for id := range blobHave {
		e.have[id] = true
	}
	e.Arrivals = make([]storedMsg, 0, len(blob.Msgs)+len(extras))
	for _, src := range [][]storedMsg{blob.Msgs, extras} {
		for i := range src {
			nm := src[i]
			nm.ArrSeq = e.ArrSeqNext
			e.ArrSeqNext++
			e.Arrivals = append(e.Arrivals, nm)
			r.persistMessage(e, &nm)
		}
	}
	// The adopted Msgs are already in reconstructed read order; advisories
	// would double-apply, so clear them (the checkpoint record's AdvTrim
	// makes the same cut on rebuild).
	e.Advisories = nil
	r.persistCheckpoint(e, old)
	r.stats.HandoffProcsAdopted++
	r.log.Add(trace.KindRecorder, int(r.cfg.Node), blob.Proc.String(),
		"adopted handoff basis (coverage %d -> %d, %d local extras kept)", localCov, blob.Cov, len(extras))
}

// arbitrate decides who recovers a crashed node (§6.3). Without peers the
// duty is ours immediately.
func (r *Recorder) arbitrate(w *watchState) {
	higher := r.higherPeers(w.node)
	if len(higher) == 0 {
		w.responsible = true
		r.actOnCrash(w)
		return
	}
	code := r.nextCode
	r.nextCode++
	answered := false
	r.waiters[code] = func(*frame.Frame) {
		answered = true
		w.responsible = false
		r.log.Add(trace.KindDetect, int(r.cfg.Node), nodeSubject(w.node),
			"higher-priority recorder took node %d; monitoring", w.node)
		// "If P_i does not recover in a set interval, R periodically
		// requeries its higher priority nodes" (§6.3).
		epoch := r.epoch
		r.sched.After(r.cfg.RecoveryRetry, func() {
			if r.epoch != epoch || r.crashed {
				return
			}
			if w.down {
				r.arbitrate(w)
			}
		})
	}
	for _, p := range higher {
		r.sendPeer(p, &peerMsg{Kind: peerQuery, Node: w.node, Code: code})
	}
	epoch := r.epoch
	claim := r.cfg.ClaimTimeout
	if claim <= 0 {
		claim = 2 * simtime.Second
	}
	r.sched.After(claim, func() {
		if r.epoch != epoch || r.crashed || answered {
			return
		}
		delete(r.waiters, code)
		if w.down {
			r.log.Add(trace.KindDetect, int(r.cfg.Node), nodeSubject(w.node),
				"no higher-priority recorder answered; taking node %d", w.node)
			w.responsible = true
			r.actOnCrash(w)
		}
	})
}

// beginCatchUp starts the §6.3 restart catch-up: force a checkpoint from
// every live process; until they all land, this recorder declines recovery
// duties (its stream suffixes may be stale from its downtime).
func (r *Recorder) beginCatchUp() {
	if len(r.cfg.Peers) == 0 {
		return // sole recorder: nothing was published while we were down
	}
	r.catchingUp = true
	r.awaitCk = make(map[frame.ProcID]bool)
	for p, e := range r.db {
		if !e.Dead && e.Spec.Recoverable {
			r.awaitCk[p] = true
			r.RequestCheckpoint(p)
		}
	}
	r.log.Add(trace.KindRecorder, int(r.cfg.Node), "recorder",
		"catching up: awaiting %d forced checkpoints", len(r.awaitCk))
	r.checkCaughtUp()
	// Fallback: processes that cannot checkpoint (Program images) never
	// will; cap the catch-up phase.
	epoch := r.epoch
	r.sched.After(10*simtime.Second, func() {
		if r.epoch != epoch || r.crashed {
			return
		}
		if r.catchingUp {
			r.log.Add(trace.KindRecorder, int(r.cfg.Node), "recorder", "catch-up timed out; resuming duties")
			r.finishCatchUp()
		}
	})
}

func (r *Recorder) noteCatchUpProgress(p frame.ProcID) {
	if !r.catchingUp {
		return
	}
	delete(r.awaitCk, p)
	r.checkCaughtUp()
}

func (r *Recorder) checkCaughtUp() {
	if r.catchingUp && len(r.awaitCk) == 0 {
		r.finishCatchUp()
	}
}

func (r *Recorder) finishCatchUp() {
	r.catchingUp = false
	r.awaitCk = nil
	r.log.Add(trace.KindRecorder, int(r.cfg.Node), "recorder", "caught up; accepting recovery duties")
}
