package recorder

import (
	"sort"

	"publishing/internal/demos"
	"publishing/internal/frame"
	"publishing/internal/trace"
)

// This file is the sharded-recorder half of the multiple-recorder design:
// instead of §6.3's "all recorders record all messages", each process stream
// hashes into a shard slot owned by a leader recorder and mirrored by one
// follower (see ShardMap). A recorder stores, gates (votes on), and recovers
// only the streams whose slots it replicates. The replay basis for the whole
// system is then the union of the shards — the chaos checker's I8 invariant —
// and any single recorder crash leaves every slot with a live replica.
//
// Three mechanisms keep the union complete across recorder failures:
//
//  1. Voting taps: gating media need a positive verdict only from the
//     recorders that own a frame's streams; non-owners abstain rather than
//     veto, so one recorder's outage suspends only its shards' traffic.
//  2. Peer watchdogs + follower promotion: recorders ping each other on the
//     same watchdog schedule they use for processing nodes; a silent leader's
//     followers promote themselves on its slots and sweep for recoveries the
//     dead leader left orphaned.
//  3. Shard handoff (multirec.go): a restarted recorder pulls the stream
//     suffixes it missed from the surviving replica of each shared slot
//     before reclaiming its slots, so leadership moves back only once its
//     basis is whole.

// ownsProc reports whether this recorder replicates the process's shard. In
// classic (unsharded) mode every recorder owns everything.
func (r *Recorder) ownsProc(p frame.ProcID) bool {
	m := r.cfg.Shards
	return m == nil || m.Replicates(r.cfg.Rank, m.ShardOf(p))
}

// ShardMap exposes the cluster's shard table (nil in classic mode).
func (r *Recorder) ShardMap() *ShardMap { return r.cfg.Shards }

// Rank returns this recorder's rank in the cluster's recorder order.
func (r *Recorder) Rank() int { return r.cfg.Rank }

// ActsFor reports whether this recorder currently performs recovery duty for
// a shard slot. The leader acts unless it is mid-handoff with the slot's
// follower (the follower keeps acting until the handoff Commit); a follower
// acts only after promoting itself on the leader's silence. Classic mode
// always acts.
func (r *Recorder) ActsFor(slot int) bool {
	m := r.cfg.Shards
	if m == nil {
		return true
	}
	switch r.cfg.Rank {
	case m.Leader(slot):
		f := m.Follower(slot)
		return f < 0 || !r.handoffPending[f]
	case m.Follower(slot):
		return r.actingSlots[slot]
	default:
		return false
	}
}

// ObserveVote implements lan.VotingTap: Observe's stored verdict plus an
// ownership vote. Abstaining recorders still observe the frame — piggybacked
// acknowledgement records for streams they DO own ride on frames they don't.
func (r *Recorder) ObserveVote(f *frame.Frame) (stored, voting bool) {
	if r.cfg.Shards == nil {
		return r.Observe(f), true
	}
	voting = r.votesOn(f)
	return r.Observe(f), voting
}

// votesOn decides whether this recorder's store verdict gates the frame.
func (r *Recorder) votesOn(f *frame.Frame) bool {
	// An owner of any acknowledged stream must gate the carrier frame:
	// delivered acknowledgements are never resent, so an abstaining owner
	// would silently lose the arrival from its shard's replay basis.
	for i := range f.AckRecs {
		if r.ownsProc(f.AckRecs[i].Rcv) {
			return true
		}
	}
	switch f.Type {
	case frame.Guaranteed:
		return r.votesOnMsg(f.From, f.To)
	case frame.Bundle:
		recs, err := frame.DecodeBundle(f.Body, r.voteScratch)
		r.voteScratch = recs[:0]
		if err != nil {
			return true // undecodable: gate conservatively
		}
		for i := range recs {
			if recs[i].Type == frame.Guaranteed && r.votesOnMsg(recs[i].From, recs[i].To) {
				return true
			}
		}
		return false
	case frame.Ack:
		if len(f.AckRecs) == 0 {
			return r.ownsProc(f.From) // legacy single-message ack
		}
		return false // carried records checked above; none were ours
	default:
		return true
	}
}

// votesOnMsg is the per-message ownership test: the destination's owner
// records the arrival, and the sender's owner tracks LastSent — the §4.5
// suppression threshold — so both gate. Recorder-bound traffic (notices,
// control replies) is gated by everyone: every recorder consumes notices.
func (r *Recorder) votesOnMsg(from, to frame.ProcID) bool {
	if to == r.cfg.Proc || r.isNoticeProc(to) || r.ownsProc(to) {
		return true
	}
	return from.Local != 0 && r.ownsProc(from)
}

// BasisSummary is one recorder's view of a stream's replay basis — the
// chaos checker compares these across a shard's replicas (I8).
type BasisSummary struct {
	Known      bool
	Dead       bool
	Recovering bool
	BaseReads  uint64
	Msgs       int
	LastSent   uint64
}

// Cov is the basis's totally-ordered coverage proxy: reads folded into the
// checkpoint plus recorded arrivals behind it.
func (b BasisSummary) Cov() uint64 { return b.BaseReads + uint64(b.Msgs) }

// Basis returns this recorder's basis summary for a stream.
func (r *Recorder) Basis(p frame.ProcID) BasisSummary {
	e := r.db[p]
	if e == nil {
		return BasisSummary{}
	}
	return BasisSummary{
		Known:      true,
		Dead:       e.Dead,
		Recovering: e.Recovering,
		BaseReads:  e.BaseReads,
		Msgs:       len(e.Arrivals),
		LastSent:   e.LastSent,
	}
}

// KnownProcs lists every stream in this recorder's database, sorted.
func (r *Recorder) KnownProcs() []frame.ProcID { return r.sortedProcs() }

// sortedProcs returns the database's keys in canonical order — every
// iteration that emits wire traffic or trace events must use it, never raw
// map order.
func (r *Recorder) sortedProcs() []frame.ProcID {
	out := make([]frame.ProcID, 0, len(r.db))
	for p := range r.db {
		out = append(out, p)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Node != out[j].Node {
			return out[i].Node < out[j].Node
		}
		return out[i].Local < out[j].Local
	})
	return out
}

// initPeerWatch creates a watchdog per peer recorder rank (sharded mode).
func (r *Recorder) initPeerWatch() {
	if r.cfg.Shards == nil {
		return
	}
	for rank := 0; rank < r.cfg.Shards.Recorders(); rank++ {
		if rank == r.cfg.Rank {
			continue
		}
		if _, ok := r.peerWatch[rank]; ok {
			continue
		}
		if p, ok := r.cfg.peerByRank(rank); ok {
			r.peerWatch[rank] = &watchState{node: p.Node}
		}
	}
}

// tickPeerWatch runs the peer-recorder watchdogs on the same cadence as the
// node watchdogs: evaluate last interval's pongs, then ping. Ranks ascend so
// the pings serialize deterministically onto the medium.
func (r *Recorder) tickPeerWatch() {
	if r.cfg.Shards == nil {
		return
	}
	ranks := make([]int, 0, len(r.peerWatch))
	for rank := range r.peerWatch {
		ranks = append(ranks, rank)
	}
	sort.Ints(ranks)
	for _, rank := range ranks {
		w := r.peerWatch[rank]
		if w.gotPong {
			w.misses = 0
			if w.down {
				// A restarted peer reclaims its slots through the handoff
				// Commit, not the mere reappearance of pongs.
				w.down = false
				r.log.Add(trace.KindDetect, int(r.cfg.Node), "recorder", "peer recorder rec%d answers again", rank)
			}
		} else {
			w.misses++
			if w.misses >= r.cfg.MissThreshold && !w.down {
				w.down = true
				r.onPeerDown(rank)
			}
		}
		w.gotPong = false
		peer, ok := r.cfg.peerByRank(rank)
		if !ok {
			continue
		}
		r.ep.SendUnguaranteed(&frame.Frame{
			Dst:  w.node,
			From: r.cfg.Proc,
			To:   peer,
			Body: demos.PingBody,
		})
	}
}

// onPeerDown is follower promotion: a silent leader's followers take over
// its slots and sweep for recoveries it left orphaned. If the dead peer was
// the source of an in-progress handoff, the requester abandons the transfer
// and resumes duty with whatever basis it has locally.
func (r *Recorder) onPeerDown(rank int) {
	m := r.cfg.Shards
	promoted := 0
	for s := 0; s < m.Slots(); s++ {
		if m.Leader(s) == rank && m.Follower(s) == r.cfg.Rank && !r.actingSlots[s] {
			r.actingSlots[s] = true
			promoted++
		}
	}
	resumed := false
	if r.handoffPending[rank] {
		delete(r.handoffPending, rank)
		if ses := r.handoffs[rank]; ses != nil {
			delete(r.handoffRx, ses.code)
			delete(r.handoffs, rank)
		}
		resumed = true
		r.log.Add(trace.KindRecorder, int(r.cfg.Node), "recorder",
			"handoff source rec%d lost mid-transfer; resuming with local basis", rank)
	}
	if promoted > 0 {
		r.stats.FollowerPromotions++
		r.log.Add(trace.KindDetect, int(r.cfg.Node), "recorder",
			"peer recorder rec%d silent; promoted to leader on %d shard slots", rank, promoted)
	}
	if promoted > 0 || resumed {
		r.sweepDuties()
	}
}

// sweepDuties re-runs the §3.3.4 state query against every node so newly
// assumed shard duty (promotion, handoff completion) picks up crashed or
// half-recovered processes another recorder left behind. startRecovery's
// ActsFor guard filters the responses to this recorder's slots.
func (r *Recorder) sweepDuties() {
	for _, n := range r.cfg.Nodes {
		r.sendCtl(n, frame.ProcID{Node: n, Local: 0}, false,
			&demos.CtlMsg{Op: demos.OpQueryProcs, RestartNumber: r.restartNumber},
			chanQueryResp, func(f *frame.Frame) { r.handleQueryResponse(f) })
	}
}

// ArmHandoffCrash is the chaos hook for the mid-handoff fault: the recorder
// crashes itself after serving n more transfer chunks. One-shot; disarmed by
// the crash. Never fires in classic mode (nothing serves chunks).
func (r *Recorder) ArmHandoffCrash(n int) {
	if n < 1 {
		n = 1
	}
	r.handoffCrashAfter = n
}

// scheduleSelfCrash crashes the recorder after the current event completes —
// crashing inline would reset the transport endpoint out from under the
// delivery path that called us.
func (r *Recorder) scheduleSelfCrash() {
	epoch := r.epoch
	r.sched.After(0, func() {
		if r.epoch != epoch || r.crashed {
			return
		}
		r.Crash()
	})
}
