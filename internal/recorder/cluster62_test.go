package recorder_test

import (
	"fmt"
	"testing"

	"publishing/internal/demos"
	"publishing/internal/frame"
	"publishing/internal/lan"
	"publishing/internal/recorder"
	"publishing/internal/simtime"
	"publishing/internal/stablestore"
	"publishing/internal/trace"
	"publishing/internal/transport"
)

// The §6.2 cluster configuration: two broadcast LANs joined by a
// store-and-forward gateway, one autonomous recorder per cluster. Cross-
// cluster request/reply traffic flows through the bridge; a crash on one
// side is recovered by that side's recorder alone; severing the bridge
// (the partition §3.6 worries about) merely delays cross-cluster messages
// — each cluster keeps operating and nothing is duplicated.
func TestClustersOfLANsWithPerClusterRecorders(t *testing.T) {
	sched := simtime.NewScheduler()
	log := trace.New(sched.Now)
	rng := simtime.NewRand(3)

	// Cluster A: nodes 0,1 + recorder node 2. Cluster B: nodes 10,11 +
	// recorder node 12.
	lanA := lan.NewPerfect(lan.DefaultConfig(), sched, rng.Fork(), log)
	lanB := lan.NewPerfect(lan.DefaultConfig(), sched, rng.Fork(), log)
	lan.NewBridge(sched, lanA, lanB,
		[]frame.NodeID{0, 1, 2}, []frame.NodeID{10, 11, 12}, 5*simtime.Millisecond)

	reg := demos.NewRegistry()
	services := map[string]frame.ProcID{}
	mkEnv := func(med lan.Medium, recProc frame.ProcID) demos.Env {
		return demos.Env{
			Sched: sched, Rng: rng.Fork(), Log: log, Registry: reg,
			Costs: demos.DefaultCosts(), Medium: med,
			Transport:  transport.DefaultConfig(),
			Publishing: true, RecorderProc: recProc, Services: services,
		}
	}
	recAProc := frame.ProcID{Node: 2, Local: 1}
	recBProc := frame.ProcID{Node: 12, Local: 1}
	kernels := map[frame.NodeID]*demos.Kernel{
		0:  demos.NewKernel(0, mkEnv(lanA, recAProc)),
		1:  demos.NewKernel(1, mkEnv(lanA, recAProc)),
		10: demos.NewKernel(10, mkEnv(lanB, recBProc)),
		11: demos.NewKernel(11, mkEnv(lanB, recBProc)),
	}

	mkRec := func(med lan.Medium, node frame.NodeID, watched []frame.NodeID) *recorder.Recorder {
		cfg := recorder.DefaultConfig(node, watched)
		r := recorder.New(cfg, sched, rng.Fork(), log, med, stablestore.New(), transport.DefaultConfig())
		r.Start()
		return r
	}
	recA := mkRec(lanA, 2, []frame.NodeID{0, 1})
	recB := mkRec(lanB, 12, []frame.NodeID{10, 11})

	// Workload: a client in cluster A calls a server in cluster B.
	var replies []string
	reg.RegisterMachine("server", func(args []byte) demos.Machine {
		return &echoServer{}
	})
	reg.RegisterProgram("client", func(args []byte) demos.Program {
		return func(ctx *demos.PCtx) {
			sl, err := ctx.ServiceLink("server")
			if err != nil {
				panic(err)
			}
			for i := 1; i <= 8; i++ {
				m := ctx.Request(sl, []byte(fmt.Sprintf("req%d", i)), demos.ChanReply, 0)
				replies = append(replies, string(m.Body))
			}
		}
	})
	server, err := kernels[10].Spawn(demos.ProcSpec{Name: "server", Recoverable: true}, demos.SpawnOptions{})
	if err != nil {
		t.Fatal(err)
	}
	services["server"] = server
	if _, err := kernels[0].Spawn(demos.ProcSpec{Name: "client", Recoverable: true}, demos.SpawnOptions{}); err != nil {
		t.Fatal(err)
	}

	// Crash the server mid-stream; cluster B's recorder must recover it.
	sched.At(800*simtime.Millisecond, func() { kernels[10].CrashProcess(server, "injected") })
	sched.Run(60 * simtime.Second)

	if len(replies) != 8 {
		t.Fatalf("client got %d replies: %v", len(replies), replies)
	}
	for i, r := range replies {
		if r != fmt.Sprintf("echo:req%d #%d", i+1, i+1) {
			t.Fatalf("reply %d = %q (exactly-once across the bridge broken)", i, r)
		}
	}
	if got := recB.Stats().RecoveriesCompleted; got != 1 {
		t.Fatalf("cluster B recoveries = %d, want 1", got)
	}
	if got := recA.Stats().RecoveriesStarted; got != 0 {
		t.Fatalf("cluster A recovered a foreign process (%d)", got)
	}
	// Autonomy in storage too: B's recorder holds the server's stream; A's
	// recorder may have overheard crossing frames but never registered the
	// foreign process for recovery.
	if known, _, _, _, _ := recB.Entry(server); !known {
		t.Fatal("cluster B recorder does not know its own server")
	}
}

// Severing the bridge partitions the clusters; traffic resumes after the
// link heals, exactly once.
func TestBridgeOutageDelaysButNeverDuplicates(t *testing.T) {
	sched := simtime.NewScheduler()
	log := trace.New(sched.Now)
	rng := simtime.NewRand(9)
	lanA := lan.NewPerfect(lan.DefaultConfig(), sched, rng.Fork(), log)
	lanB := lan.NewPerfect(lan.DefaultConfig(), sched, rng.Fork(), log)
	bridge := lan.NewBridge(sched, lanA, lanB,
		[]frame.NodeID{0, 2}, []frame.NodeID{10, 12}, 2*simtime.Millisecond)

	reg := demos.NewRegistry()
	services := map[string]frame.ProcID{}
	env := func(med lan.Medium, rec frame.ProcID) demos.Env {
		return demos.Env{Sched: sched, Rng: rng.Fork(), Log: log, Registry: reg,
			Costs: demos.DefaultCosts(), Medium: med, Transport: transport.DefaultConfig(),
			Publishing: true, RecorderProc: rec, Services: services}
	}
	kA := demos.NewKernel(0, env(lanA, frame.ProcID{Node: 2, Local: 1}))
	kB := demos.NewKernel(10, env(lanB, frame.ProcID{Node: 12, Local: 1}))
	recorder.New(recorder.DefaultConfig(2, []frame.NodeID{0}), sched, rng.Fork(), log, lanA, stablestore.New(), transport.DefaultConfig()).Start()
	recorder.New(recorder.DefaultConfig(12, []frame.NodeID{10}), sched, rng.Fork(), log, lanB, stablestore.New(), transport.DefaultConfig()).Start()

	var got []string
	reg.RegisterMachine("sink", func(args []byte) demos.Machine {
		return &collector{out: &got}
	})
	reg.RegisterProgram("gen", func(args []byte) demos.Program {
		return func(ctx *demos.PCtx) {
			sl, _ := ctx.ServiceLink("sink")
			for i := 1; i <= 6; i++ {
				_ = ctx.Send(sl, []byte(fmt.Sprintf("m%d", i)), demos.NoLink)
				ctx.Compute(100 * simtime.Millisecond)
			}
		}
	})
	sink, err := kB.Spawn(demos.ProcSpec{Name: "sink", Recoverable: true}, demos.SpawnOptions{})
	if err != nil {
		t.Fatal(err)
	}
	services["sink"] = sink
	if _, err := kA.Spawn(demos.ProcSpec{Name: "gen", Recoverable: true}, demos.SpawnOptions{}); err != nil {
		t.Fatal(err)
	}

	sched.At(250*simtime.Millisecond, func() { bridge.SetDown(true) })
	sched.Run(3 * simtime.Second)
	during := len(got)
	if during >= 6 {
		t.Fatal("all messages crossed a severed bridge")
	}
	bridge.SetDown(false)
	sched.Run(60 * simtime.Second)
	if len(got) != 6 {
		t.Fatalf("after healing: %v", got)
	}
	for i, s := range got {
		if s != fmt.Sprintf("m%d", i+1) {
			t.Fatalf("order/duplication broken: %v", got)
		}
	}
}

type echoServer struct{ n int }

func (e *echoServer) Init(ctx *demos.PCtx) {}
func (e *echoServer) Handle(ctx *demos.PCtx, m demos.Msg) {
	e.n++
	if m.Link != demos.NoLink {
		_ = ctx.Send(m.Link, []byte(fmt.Sprintf("echo:%s #%d", m.Body, e.n)), demos.NoLink)
	}
}
func (e *echoServer) Snapshot() ([]byte, error) { return []byte{byte(e.n)}, nil }
func (e *echoServer) Restore(b []byte) error    { e.n = int(b[0]); return nil }

type collector struct{ out *[]string }

func (c *collector) Init(ctx *demos.PCtx)                {}
func (c *collector) Handle(ctx *demos.PCtx, m demos.Msg) { *c.out = append(*c.out, string(m.Body)) }
func (c *collector) Snapshot() ([]byte, error)           { return nil, nil }
func (c *collector) Restore(b []byte) error              { return nil }
