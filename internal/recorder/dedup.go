package recorder

import "publishing/internal/frame"

// noticeSeenLimit bounds each generation of the notice dedup set.
const noticeSeenLimit = 65536

// genSet is a bounded dedup set with two generations. Adding beyond the
// per-generation limit rotates: the current generation becomes the previous
// one and lookups keep consulting both. Unlike a wholesale reset, rotation
// never forgets an id added in the current generation, so a notice that is
// still being retransmitted cannot be re-applied the moment the set fills —
// only ids idle for a whole generation (≥ limit newer ids) age out.
type genSet struct {
	cur, prev map[frame.MsgID]bool
	limit     int
}

func newGenSet(limit int) genSet {
	return genSet{cur: make(map[frame.MsgID]bool), limit: limit}
}

// Seen reports whether id was added within the last two generations.
func (g *genSet) Seen(id frame.MsgID) bool { return g.cur[id] || g.prev[id] }

// Add records id in the current generation, rotating first if it is full.
func (g *genSet) Add(id frame.MsgID) {
	if len(g.cur) >= g.limit {
		g.prev = g.cur
		g.cur = make(map[frame.MsgID]bool, g.limit)
	}
	g.cur[id] = true
}

// Reset drops both generations (recorder crash: volatile state is lost).
func (g *genSet) Reset() {
	g.cur = make(map[frame.MsgID]bool)
	g.prev = nil
}

// Len reports how many ids the set currently remembers.
func (g *genSet) Len() int { return len(g.cur) + len(g.prev) }
