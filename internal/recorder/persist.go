package recorder

import (
	"fmt"
	"sort"
	"strings"

	"publishing/internal/demos"
	"publishing/internal/frame"
	"publishing/internal/gobx"
	"publishing/internal/stablestore"
	"publishing/internal/trace"
)

// Persisted record codecs. Every record kind the recorder writes per
// message (stored messages, advisories, last-sent watermarks) goes through
// a gobx codec: byte-identical to the one-shot gob encoding the database
// format has always used, but without paying type-descriptor transmission
// and engine compilation per record. Codecs are package-level (and
// internally locked) so parallel sweep clusters share the warmed state.
var (
	msgCodec  gobx.Codec[storedMsg]
	advCodec  gobx.Codec[advisory]
	lastCodec gobx.Codec[uint64]
	procCodec gobx.Codec[procMeta]
	ckCodec   gobx.Codec[ckMeta]
)

// encWith encodes v into the recorder's reused scratch via codec c. Same
// contract as gobEnc: the slice is valid until the next persist call.
func encWith[T any](r *Recorder, c *gobx.Codec[T], v *T) []byte {
	b, err := c.Encode(r.encScratch[:0], v)
	if err != nil {
		panic(fmt.Sprintf("recorder: gob: %v", err))
	}
	r.encScratch = b
	return b
}

// Stable-storage key namespaces. Every piece of recorder state needed to
// survive a recorder crash lands under one of these, so the database can be
// rebuilt purely from the store (§4.5: "If the recorder crashes, it is
// possible to rebuild the data base from the disk").
func msgKey(p frame.ProcID) string  { return "msg:" + p.String() }
func advKey(p frame.ProcID) string  { return "adv:" + p.String() }
func ckKey(p frame.ProcID) string   { return "ck:" + p.String() }
func procKey(p frame.ProcID) string { return "proc:" + p.String() }
func lastKey(p frame.ProcID) string { return "last:" + p.String() }
func deadKey(p frame.ProcID) string { return "dead:" + p.String() }

const restartKey = "restart"

// procMeta is the persisted registration record.
type procMeta struct {
	Proc frame.ProcID
	Spec demos.ProcSpec
	Node frame.NodeID
}

// ckMeta is the persisted checkpoint record.
type ckMeta struct {
	Blob      []byte
	SendSeq   uint64
	ReadCount uint64
	StateKB   int
	BaseReads uint64
	// DroppedArr are the arrival seqs invalidated by this checkpoint;
	// AdvTrim invalidates advisories with seq < AdvTrim.
	DroppedArr []uint64
	AdvTrim    uint64
	// RetainedOrder lists the retained arrival seqs in replay (queue)
	// order, which can differ from arrival order after a recovery.
	RetainedOrder []uint64
}

func (r *Recorder) append(rec stablestore.Record) {
	if _, err := r.store.Append(rec); err != nil {
		// Stable storage failing is beyond the paper's fault model (TMR,
		// battery backup, §3.3.4); surface loudly.
		panic(fmt.Sprintf("recorder: stable store append: %v", err))
	}
	if r.cfg.FlushEveryMessage {
		if err := r.store.Flush(); err != nil {
			panic(fmt.Sprintf("recorder: stable store flush: %v", err))
		}
	}
}

func (r *Recorder) persistMessage(e *procEntry, sm *storedMsg) {
	r.append(stablestore.Record{Kind: stablestore.KindMessage, Key: msgKey(e.Proc), Seq: sm.ArrSeq, Data: encWith(r, &msgCodec, sm)})
}

func (r *Recorder) persistAdvisory(e *procEntry, adv *advisory) {
	r.append(stablestore.Record{Kind: stablestore.KindMessage, Key: advKey(e.Proc), Seq: adv.AdvSeq, Data: encWith(r, &advCodec, adv)})
}

func (r *Recorder) persistProcMeta(e *procEntry) {
	e.Rev++
	r.append(stablestore.Record{Kind: stablestore.KindMeta, Key: procKey(e.Proc), Seq: e.Rev,
		Data: encWith(r, &procCodec, &procMeta{Proc: e.Proc, Spec: e.Spec, Node: e.Node})})
}

func (r *Recorder) persistLastSent(e *procEntry) {
	e.Rev++
	r.append(stablestore.Record{Kind: stablestore.KindMeta, Key: lastKey(e.Proc), Seq: e.Rev, Data: encWith(r, &lastCodec, &e.LastSent)})
}

func (r *Recorder) persistDead(e *procEntry) {
	e.Rev++
	r.append(stablestore.Record{Kind: stablestore.KindMeta, Key: deadKey(e.Proc), Seq: e.Rev})
}

func (r *Recorder) persistCheckpoint(e *procEntry, trimmed []storedMsg) {
	dropped := make([]uint64, len(trimmed))
	for i, sm := range trimmed {
		dropped[i] = sm.ArrSeq
	}
	retained := make([]uint64, len(e.Arrivals))
	for i, sm := range e.Arrivals {
		retained[i] = sm.ArrSeq
	}
	e.Rev++
	r.append(stablestore.Record{Kind: stablestore.KindCheckpoint, Key: ckKey(e.Proc), Seq: e.Rev,
		Data: encWith(r, &ckCodec, &ckMeta{
			Blob:          e.Checkpoint,
			SendSeq:       e.CkSendSeq,
			ReadCount:     e.CkReadCount,
			StateKB:       e.CkStateKB,
			BaseReads:     e.BaseReads,
			DroppedArr:    dropped,
			AdvTrim:       e.AdvSeqNext,
			RetainedOrder: retained,
		})})
	r.store.InvalidateSeqs(msgKey(e.Proc), dropped)
	if e.AdvSeqNext > 0 {
		r.store.Invalidate(advKey(e.Proc), e.AdvSeqNext-1)
	}
}

func (r *Recorder) loadRestartNumber() {
	recs, err := r.store.ReadKey(restartKey)
	if err != nil || len(recs) == 0 {
		return
	}
	r.restartNumber = recs[len(recs)-1].Seq
}

func (r *Recorder) persistRestartNumber() {
	r.append(stablestore.Record{Kind: stablestore.KindMeta, Key: restartKey, Seq: r.restartNumber})
}

// rebuild reconstructs the in-memory database from stable storage after a
// recorder crash (§3.3.4 step one: "it first reads the checkpoint and
// message information on its stable storage to determine which processes
// should exist").
func (r *Recorder) rebuild() error {
	recs, err := r.store.ReadAll()
	if err != nil {
		return fmt.Errorf("recorder: rebuild: %w", err)
	}
	r.db = make(map[frame.ProcID]*procEntry)
	r.pending = make(map[frame.MsgID]*storedMsg)
	r.preArrivals = make(map[frame.ProcID][]storedMsg)
	r.preLastSent = make(map[frame.ProcID]uint64)

	entry := func(p frame.ProcID) *procEntry {
		e := r.db[p]
		if e == nil {
			e = &procEntry{Proc: p, Node: p.Node, have: make(map[frame.MsgID]bool)}
			r.db[p] = e
		}
		return e
	}

	type perProc struct {
		msgs     []storedMsg
		advs     []advisory
		lastRev  map[string]uint64
		ck       *ckMeta
		ckRev    uint64
		deadRev  uint64
		metaRev  uint64
		lastSent uint64
		lastSRev uint64
	}
	acc := make(map[frame.ProcID]*perProc)
	get := func(p frame.ProcID) *perProc {
		a := acc[p]
		if a == nil {
			a = &perProc{}
			acc[p] = a
		}
		return a
	}

	for _, rec := range recs {
		ns, pidStr, ok := splitKey(rec.Key)
		if !ok {
			continue
		}
		pid, ok := parseProcID(pidStr)
		if !ok {
			continue
		}
		a := get(pid)
		switch ns {
		case "msg":
			var sm storedMsg
			if gobIntoR(rec.Data, &sm) == nil {
				a.msgs = append(a.msgs, sm)
			}
		case "adv":
			var adv advisory
			if gobIntoR(rec.Data, &adv) == nil {
				a.advs = append(a.advs, adv)
			}
		case "ck":
			if rec.Seq >= a.ckRev {
				var cm ckMeta
				if gobIntoR(rec.Data, &cm) == nil {
					a.ck = &cm
					a.ckRev = rec.Seq
				}
			}
		case "proc":
			if rec.Seq >= a.metaRev {
				var pm procMeta
				if gobIntoR(rec.Data, &pm) == nil {
					e := entry(pid)
					e.Spec = pm.Spec
					e.Node = pm.Node
					a.metaRev = rec.Seq
					e.Rev = maxU64(e.Rev, rec.Seq)
				}
			}
		case "last":
			if rec.Seq >= a.lastSRev {
				var ls uint64
				if gobIntoR(rec.Data, &ls) == nil {
					a.lastSent = ls
					a.lastSRev = rec.Seq
				}
			}
		case "dead":
			a.deadRev = maxU64(a.deadRev, rec.Seq)
		}
	}

	for pid, a := range acc {
		e := r.db[pid]
		if e == nil {
			// Messages without a registration record: the process is not
			// recoverable from here (no spec); skip.
			continue
		}
		e.LastSent = a.lastSent
		e.Rev = maxU64(e.Rev, maxU64(a.lastSRev, maxU64(a.ckRev, a.deadRev)))
		if a.deadRev > 0 && a.deadRev >= a.metaRev {
			e.Dead = true
			continue
		}
		dropped := make(map[uint64]bool)
		advTrim := uint64(0)
		if a.ck != nil {
			e.Checkpoint = a.ck.Blob
			e.CkSendSeq = a.ck.SendSeq
			e.CkReadCount = a.ck.ReadCount
			e.CkStateKB = a.ck.StateKB
			e.BaseReads = a.ck.BaseReads
			for _, q := range a.ck.DroppedArr {
				dropped[q] = true
			}
			advTrim = a.ck.AdvTrim
			// Earlier checkpoints' drops matter too: everything any
			// checkpoint dropped stays dropped. Conservatively, also drop
			// arrival seqs below the smallest retained one implied by
			// earlier trims — covered because every checkpoint records its
			// own DroppedArr and we replay only the latest; earlier drops
			// are re-applied by reading all checkpoint records:
		}
		// Apply drops from every checkpoint revision (not just the latest).
		for _, rec := range recs {
			if rec.Key == ckKey(pid) {
				var cm ckMeta
				if gobIntoR(rec.Data, &cm) == nil {
					for _, q := range cm.DroppedArr {
						dropped[q] = true
					}
					if cm.AdvTrim > advTrim {
						advTrim = cm.AdvTrim
					}
				}
			}
		}
		sort.Slice(a.msgs, func(i, j int) bool { return a.msgs[i].ArrSeq < a.msgs[j].ArrSeq })
		// The latest checkpoint fixes the replay order of its retained
		// messages (queue order at checkpoint, which may differ from
		// arrival order after a recovery); later arrivals follow by seq.
		rank := make(map[uint64]int)
		if a.ck != nil {
			for i, q := range a.ck.RetainedOrder {
				rank[q] = i
			}
		}
		var pre, post []storedMsg
		for _, sm := range a.msgs {
			if dropped[sm.ArrSeq] {
				continue
			}
			sm := sm
			if _, ok := rank[sm.ArrSeq]; ok {
				pre = append(pre, sm)
			} else {
				post = append(post, sm)
			}
			e.have[sm.ID] = true
			if sm.ArrSeq >= e.ArrSeqNext {
				e.ArrSeqNext = sm.ArrSeq + 1
			}
		}
		sort.SliceStable(pre, func(i, j int) bool { return rank[pre[i].ArrSeq] < rank[pre[j].ArrSeq] })
		e.Arrivals = append(pre, post...)
		sort.Slice(a.advs, func(i, j int) bool { return a.advs[i].AdvSeq < a.advs[j].AdvSeq })
		for _, adv := range a.advs {
			if adv.AdvSeq < advTrim {
				continue
			}
			e.Advisories = append(e.Advisories, adv)
			if adv.AdvSeq >= e.AdvSeqNext {
				e.AdvSeqNext = adv.AdvSeq + 1
			}
		}
		if advTrim > e.AdvSeqNext {
			e.AdvSeqNext = advTrim
		}
		e.LastCkAt = r.sched.Now()
	}
	r.log.Add(trace.KindRecorder, int(r.cfg.Node), "recorder", "rebuilt database: %d processes", len(r.db))
	return nil
}

func splitKey(k string) (ns, pid string, ok bool) {
	i := strings.IndexByte(k, ':')
	if i < 0 {
		return "", "", false
	}
	return k[:i], k[i+1:], true
}

// parseProcID parses the "p<node>.<local>" form produced by ProcID.String.
func parseProcID(s string) (frame.ProcID, bool) {
	if len(s) < 4 || s[0] != 'p' {
		return frame.NilProc, false
	}
	var node int32
	var local uint32
	if _, err := fmt.Sscanf(s, "p%d.%d", &node, &local); err != nil {
		return frame.NilProc, false
	}
	return frame.ProcID{Node: frame.NodeID(node), Local: local}, true
}

func maxU64(a, b uint64) uint64 {
	if a > b {
		return a
	}
	return b
}
