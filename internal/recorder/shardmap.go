package recorder

import (
	"fmt"
	"strings"

	"publishing/internal/frame"
)

// ShardMap is the deterministic, seed-stable assignment of process streams
// to recorders. Streams hash into a fixed number of shard slots; each slot
// is owned by a leader recorder and (when the cluster runs at least two
// recorders) mirrored by one follower, chosen by rendezvous (highest random
// weight) hashing. Rendezvous hashing gives the rebalance property the
// shard-map tests pin: adding recorder R to the set changes a slot's leader
// only when R itself wins it, so the only streams that move are the ones the
// new recorder takes over — nothing shuffles between survivors.
//
// The map is immutable after construction and shared read-only by every
// recorder in a cluster; same seed + same recorder count ⇒ byte-identical
// ownership (asserted by TestShardMapDeterminism).
type ShardMap struct {
	seed     uint64
	slots    int
	recs     int
	leader   []int // per slot: the owning recorder rank
	follower []int // per slot: the replica rank, -1 when recs < 2
}

// Salts separating the slot-weight, rank-weight, and stream-hash domains of
// the seed so the three derived streams never collapse onto each other.
const (
	shardSlotSalt   = 0x9e3779b97f4a7c15
	shardRankSalt   = 0xd6e8feb86659fd93
	shardStreamSalt = 0xa5a5a5a55a5a5a5a
)

// mix64 is the splitmix64 finalizer: a cheap, statistically strong 64-bit
// mixer whose output is a pure function of its input — the whole map derives
// from it, so determinism reduces to arithmetic.
func mix64(x uint64) uint64 {
	x ^= x >> 33
	x *= 0xff51afd7ed558ccd
	x ^= x >> 33
	x *= 0xc4ceb9fe1a85ec53
	x ^= x >> 33
	return x
}

// shardWeight is recorder rank's rendezvous weight for a slot.
func shardWeight(seed uint64, slot, rank int) uint64 {
	return mix64(seed ^ uint64(slot)*shardSlotSalt ^ uint64(rank)*shardRankSalt)
}

// NewShardMap builds the ownership map for a cluster of recs recorders over
// slots shard slots. Ties (astronomically unlikely) break toward the lower
// rank, keeping the winner independent of iteration order.
func NewShardMap(seed uint64, recs, slots int) *ShardMap {
	if recs < 1 {
		recs = 1
	}
	if slots < 1 {
		slots = 1
	}
	m := &ShardMap{
		seed:     seed,
		slots:    slots,
		recs:     recs,
		leader:   make([]int, slots),
		follower: make([]int, slots),
	}
	for s := 0; s < slots; s++ {
		best, second := -1, -1
		var bestW, secondW uint64
		for rank := 0; rank < recs; rank++ {
			w := shardWeight(seed, s, rank)
			switch {
			case best < 0 || w > bestW:
				second, secondW = best, bestW
				best, bestW = rank, w
			case second < 0 || w > secondW:
				second, secondW = rank, w
			}
		}
		m.leader[s] = best
		if recs >= 2 {
			m.follower[s] = second
		} else {
			m.follower[s] = -1
		}
	}
	return m
}

// Slots returns the shard-slot count.
func (m *ShardMap) Slots() int { return m.slots }

// Recorders returns the recorder count the map was built for.
func (m *ShardMap) Recorders() int { return m.recs }

// Seed returns the seed the map derives from.
func (m *ShardMap) Seed() uint64 { return m.seed }

// Leader returns the owning recorder rank for a slot.
func (m *ShardMap) Leader(slot int) int { return m.leader[slot] }

// Follower returns the replica rank for a slot, or -1 when the cluster runs
// a single recorder.
func (m *ShardMap) Follower(slot int) int { return m.follower[slot] }

// Replicates reports whether rank holds a copy of slot (as leader or
// follower).
func (m *ShardMap) Replicates(rank, slot int) bool {
	return m.leader[slot] == rank || m.follower[slot] == rank
}

// ShardOf hashes a process stream into its slot. The hash covers the full
// process identity (node and local id) so streams spread evenly even when
// every node runs the same local-id layout.
func (m *ShardMap) ShardOf(p frame.ProcID) int {
	h := mix64(m.seed ^ shardStreamSalt ^ uint64(uint32(p.Node))<<32 | uint64(p.Local))
	return int(h % uint64(m.slots))
}

// SharedSlots returns whether ranks a and b co-replicate at least one slot —
// the condition under which a restarting recorder hands off to a partner.
func (m *ShardMap) SharedSlots(a, b int) bool {
	for s := 0; s < m.slots; s++ {
		if m.Replicates(a, s) && m.Replicates(b, s) {
			return true
		}
	}
	return false
}

// Fingerprint renders the complete ownership table as text — the
// byte-comparable form the determinism test and reports use.
func (m *ShardMap) Fingerprint() string {
	var b strings.Builder
	fmt.Fprintf(&b, "shardmap seed=%d recs=%d slots=%d\n", m.seed, m.recs, m.slots)
	for s := 0; s < m.slots; s++ {
		fmt.Fprintf(&b, "slot %d: leader=%d follower=%d\n", s, m.leader[s], m.follower[s])
	}
	return b.String()
}
