package recorder

import (
	"testing"

	"publishing/internal/frame"
)

// TestShardMapDeterminism is the satellite's table: same seed and recorder
// set ⇒ byte-identical ownership, different seeds ⇒ (almost surely)
// different ownership, and the structural guarantees every caller leans on —
// leader ≠ follower, ranks in range, single-recorder maps have no follower.
func TestShardMapDeterminism(t *testing.T) {
	cases := []struct {
		name        string
		seed        uint64
		recs, slots int
	}{
		{"two-recs", 1, 2, 16},
		{"three-recs", 7, 3, 16},
		{"five-recs", 42, 5, 64},
		{"single-rec", 9, 1, 16},
		{"more-recs-than-slots", 3, 8, 4},
		{"seed-zero", 0, 3, 16},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			a := NewShardMap(tc.seed, tc.recs, tc.slots)
			b := NewShardMap(tc.seed, tc.recs, tc.slots)
			if a.Fingerprint() != b.Fingerprint() {
				t.Fatalf("same seed produced different maps:\n%s\nvs\n%s", a.Fingerprint(), b.Fingerprint())
			}
			for s := 0; s < a.Slots(); s++ {
				l, f := a.Leader(s), a.Follower(s)
				if l < 0 || l >= tc.recs {
					t.Fatalf("slot %d: leader %d out of range [0,%d)", s, l, tc.recs)
				}
				switch {
				case tc.recs < 2:
					if f != -1 {
						t.Fatalf("slot %d: single-recorder map has follower %d", s, f)
					}
				default:
					if f < 0 || f >= tc.recs {
						t.Fatalf("slot %d: follower %d out of range [0,%d)", s, f, tc.recs)
					}
					if f == l {
						t.Fatalf("slot %d: leader and follower are both rank %d", s, l)
					}
				}
				if !a.Replicates(l, s) || (f >= 0 && !a.Replicates(f, s)) {
					t.Fatalf("slot %d: Replicates disagrees with Leader/Follower", s)
				}
			}
			// A different seed must not reproduce the table (16+ slots make a
			// collision astronomically unlikely; the fixed cases here don't).
			if tc.slots >= 16 {
				c := NewShardMap(tc.seed+1, tc.recs, tc.slots)
				if c.Fingerprint() == a.Fingerprint() {
					t.Fatalf("seed %d and %d produced identical maps", tc.seed, tc.seed+1)
				}
			}
		})
	}
}

// TestShardMapStreamHashStable pins ShardOf: stable across calls, in range,
// and sensitive to both halves of the process identity.
func TestShardMapStreamHashStable(t *testing.T) {
	m := NewShardMap(7, 3, 16)
	seen := map[int]bool{}
	for node := 0; node < 8; node++ {
		for local := uint32(0); local < 8; local++ {
			p := frame.ProcID{Node: frame.NodeID(node), Local: local}
			s := m.ShardOf(p)
			if s < 0 || s >= m.Slots() {
				t.Fatalf("ShardOf(%v) = %d out of range", p, s)
			}
			if s != m.ShardOf(p) {
				t.Fatalf("ShardOf(%v) unstable", p)
			}
			seen[s] = true
		}
	}
	if len(seen) < 2 {
		t.Fatalf("64 distinct streams landed in %d slot(s); hash is degenerate", len(seen))
	}
}

// TestShardMapRebalance is the rendezvous-hashing property the handoff
// protocol depends on: growing the recorder set from n to n+1 moves a slot's
// leadership only to the new recorder — no slot changes hands between
// survivors — and every slot's new replica set is a subset of the old one
// plus the new rank.
func TestShardMapRebalance(t *testing.T) {
	for _, seed := range []uint64{1, 7, 42, 1234567} {
		for n := 2; n <= 6; n++ {
			old := NewShardMap(seed, n, 64)
			grown := NewShardMap(seed, n+1, 64)
			moved := 0
			for s := 0; s < 64; s++ {
				if grown.Leader(s) != old.Leader(s) {
					if grown.Leader(s) != n {
						t.Fatalf("seed=%d n=%d slot %d: leadership moved %d → %d, not to the new rank %d",
							seed, n, s, old.Leader(s), grown.Leader(s), n)
					}
					moved++
				}
				oldSet := map[int]bool{old.Leader(s): true, old.Follower(s): true}
				for _, r := range []int{grown.Leader(s), grown.Follower(s)} {
					if r != n && !oldSet[r] {
						t.Fatalf("seed=%d n=%d slot %d: replica set gained survivor rank %d (old %d/%d, new %d/%d)",
							seed, n, s, r, old.Leader(s), old.Follower(s), grown.Leader(s), grown.Follower(s))
					}
				}
			}
			// The new recorder should actually win something at these sizes
			// (expected 64/(n+1) slots).
			if moved == 0 {
				t.Fatalf("seed=%d n=%d: new recorder won no slots", seed, n)
			}
		}
	}
}
