package recorder

import (
	"fmt"
	"testing"
	"testing/quick"

	"publishing/internal/frame"
	"publishing/internal/simtime"
)

// The §4.4.2 reconstruction algorithm, verified against a reference
// simulation of exactly what the kernel and recorder do: messages arrive
// into a queue over time; the process reads with channel selection,
// sometimes past the head; every out-of-order read emits an advisory; the
// recorder must be able to reconstruct the true read order from nothing but
// the arrival order and those advisories.
func TestReconstructMatchesReferenceSimulation(t *testing.T) {
	run := func(seed uint64) error {
		rng := simtime.NewRand(seed)
		n := rng.Intn(30) + 1

		// Arrivals with random channels.
		arrivals := make([]storedMsg, n)
		for i := range arrivals {
			arrivals[i] = storedMsg{
				ID:      mid(1, uint64(i+1)),
				Channel: uint16(rng.Intn(3)),
				Body:    []byte{byte(i)},
			}
		}

		// Reference execution: interleave arrivals and reads. The queue
		// fills from the arrival stream; each read targets the channel of a
		// randomly chosen queued message (so it always succeeds) and pops
		// the FIRST queued message with that channel — the kernel's scan
		// semantics. Reads past the head emit advisories.
		var queue []storedMsg
		next := 0
		var reads []frame.MsgID
		var advs []advisory
		advSeq := uint64(0)
		for len(reads) < n {
			// Randomly admit 0-2 more arrivals (always at least one if the
			// queue is empty).
			admit := rng.Intn(3)
			for a := 0; a < admit || len(queue) == 0; a++ {
				if next >= n {
					break
				}
				queue = append(queue, arrivals[next])
				next++
				if len(queue) == 0 {
					break
				}
			}
			if len(queue) == 0 {
				break
			}
			want := queue[rng.Intn(len(queue))].Channel
			for i := range queue {
				if queue[i].Channel == want {
					if i > 0 {
						advs = append(advs, advisory{
							ReadID: queue[i].ID,
							HeadID: queue[0].ID,
							AdvSeq: advSeq,
						})
						advSeq++
					}
					reads = append(reads, queue[i].ID)
					queue = append(queue[:i], queue[i+1:]...)
					break
				}
			}
		}

		got := reconstruct(arrivals, advs)
		if len(got) != n {
			return fmt.Errorf("seed %d: reconstructed %d of %d", seed, len(got), n)
		}
		for i := range reads {
			if got[i].ID != reads[i] {
				return fmt.Errorf("seed %d: position %d: reconstructed %v, actually read %v\nreads: %v\nadvs: %+v",
					seed, i, got[i].ID, reads[i], reads, advs)
			}
		}
		return nil
	}
	if err := quick.Check(func(seed uint64) bool {
		if err := run(seed); err != nil {
			t.Log(err)
			return false
		}
		return true
	}, &quick.Config{MaxCount: 3000}); err != nil {
		t.Fatal(err)
	}
}

// The same property with a crash in the middle: reconstruct over the full
// history must agree with (reads so far) ++ (remaining queue in arrival
// order) — exactly what replay needs at an arbitrary crash instant.
func TestReconstructAtCrashInstant(t *testing.T) {
	rng := simtime.NewRand(424242)
	for trial := 0; trial < 2000; trial++ {
		n := rng.Intn(20) + 2
		arrivals := make([]storedMsg, n)
		for i := range arrivals {
			arrivals[i] = storedMsg{ID: mid(2, uint64(i+1)), Channel: uint16(rng.Intn(2))}
		}
		// All messages arrive, then the process reads k of them.
		queue := append([]storedMsg(nil), arrivals...)
		k := rng.Intn(n)
		var reads []frame.MsgID
		var advs []advisory
		for r := 0; r < k; r++ {
			want := queue[rng.Intn(len(queue))].Channel
			for i := range queue {
				if queue[i].Channel == want {
					if i > 0 {
						advs = append(advs, advisory{ReadID: queue[i].ID, HeadID: queue[0].ID, AdvSeq: uint64(len(advs))})
					}
					reads = append(reads, queue[i].ID)
					queue = append(queue[:i], queue[i+1:]...)
					break
				}
			}
		}
		// Crash here. Replay must deliver reads in order, then the unread
		// remainder in arrival order.
		got := reconstruct(arrivals, advs)
		for i, id := range reads {
			if got[i].ID != id {
				t.Fatalf("trial %d: read segment diverges at %d", trial, i)
			}
		}
		for i, sm := range queue {
			if got[k+i].ID != sm.ID {
				t.Fatalf("trial %d: unread segment diverges at %d", trial, i)
			}
		}
	}
}
