package recorder

import (
	"fmt"
	"testing"
	"testing/quick"

	"publishing/internal/demos"
	"publishing/internal/frame"
	"publishing/internal/lan"
	"publishing/internal/simtime"
	"publishing/internal/stablestore"
	"publishing/internal/trace"
	"publishing/internal/transport"
)

func mid(local uint32, seq uint64) frame.MsgID {
	return frame.MsgID{Sender: frame.ProcID{Node: 9, Local: local}, Seq: seq}
}

func sm(local uint32, seq uint64) storedMsg {
	return storedMsg{ID: mid(local, seq), Body: []byte{byte(seq)}}
}

func TestReconstructNoAdvisories(t *testing.T) {
	arr := []storedMsg{sm(1, 1), sm(1, 2), sm(1, 3)}
	out := reconstruct(arr, nil)
	if len(out) != 3 || out[0].ID != arr[0].ID || out[2].ID != arr[2].ID {
		t.Fatalf("identity reconstruction broken: %v", out)
	}
	// The input must not be aliased.
	out[0] = sm(1, 99)
	if arr[0].ID == out[0].ID {
		t.Fatal("reconstruct aliases its input")
	}
}

func TestReconstructSingleOutOfOrderRead(t *testing.T) {
	// Arrivals: A B C. The process read B while A was at the head.
	arr := []storedMsg{sm(1, 1), sm(1, 2), sm(1, 3)}
	adv := []advisory{{ReadID: mid(1, 2), HeadID: mid(1, 1)}}
	out := reconstruct(arr, adv)
	want := []uint64{2, 1, 3}
	for i, w := range want {
		if out[i].ID.Seq != w {
			t.Fatalf("order = %v, want %v", ids(out), want)
		}
	}
}

func TestReconstructInterleavedReads(t *testing.T) {
	// Arrivals: A B C D E. Reads: A (in order), then D (head B), then B, C, E.
	arr := []storedMsg{sm(1, 1), sm(1, 2), sm(1, 3), sm(1, 4), sm(1, 5)}
	adv := []advisory{{ReadID: mid(1, 4), HeadID: mid(1, 2)}}
	out := reconstruct(arr, adv)
	want := []uint64{1, 4, 2, 3, 5}
	for i, w := range want {
		if out[i].ID.Seq != w {
			t.Fatalf("order = %v, want %v", ids(out), want)
		}
	}
}

func TestReconstructConsecutiveSameHead(t *testing.T) {
	// Reads: C (head A), then B (head A), then A.
	arr := []storedMsg{sm(1, 1), sm(1, 2), sm(1, 3)}
	adv := []advisory{
		{ReadID: mid(1, 3), HeadID: mid(1, 1)},
		{ReadID: mid(1, 2), HeadID: mid(1, 1)},
	}
	out := reconstruct(arr, adv)
	want := []uint64{3, 2, 1}
	for i, w := range want {
		if out[i].ID.Seq != w {
			t.Fatalf("order = %v, want %v", ids(out), want)
		}
	}
}

// Property: reconstruction is a permutation — every arrival appears exactly
// once no matter what (possibly bogus) advisories are applied.
func TestReconstructIsPermutation(t *testing.T) {
	if err := quick.Check(func(n uint8, advPairs []uint8) bool {
		size := int(n%10) + 1
		arr := make([]storedMsg, size)
		for i := range arr {
			arr[i] = sm(1, uint64(i+1))
		}
		var advs []advisory
		for i := 0; i+1 < len(advPairs) && i < 8; i += 2 {
			advs = append(advs, advisory{
				ReadID: mid(1, uint64(advPairs[i]%uint8(size))+1),
				HeadID: mid(1, uint64(advPairs[i+1]%uint8(size))+1),
			})
		}
		out := reconstruct(arr, advs)
		if len(out) != size {
			return false
		}
		seen := make(map[uint64]bool)
		for _, m := range out {
			if seen[m.ID.Seq] {
				return false
			}
			seen[m.ID.Seq] = true
		}
		return true
	}, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

func ids(ms []storedMsg) []uint64 {
	out := make([]uint64, len(ms))
	for i, m := range ms {
		out[i] = m.ID.Seq
	}
	return out
}

// newBench builds a recorder on a quiet medium for direct-observation tests.
func newBench(t *testing.T) (*Recorder, *simtime.Scheduler, stablestore.Store) {
	t.Helper()
	sched := simtime.NewScheduler()
	log := trace.New(sched.Now)
	rng := simtime.NewRand(3)
	med := lan.NewPerfect(lan.DefaultConfig(), sched, rng, log)
	store := stablestore.New()
	cfg := DefaultConfig(5, []frame.NodeID{0, 1})
	r := New(cfg, sched, rng, log, med, store, transport.DefaultConfig())
	return r, sched, store
}

func procA() frame.ProcID { return frame.ProcID{Node: 0, Local: 7} }
func procB() frame.ProcID { return frame.ProcID{Node: 1, Local: 3} }

// observe a guaranteed message and its ack, as the tap would.
func publish(r *Recorder, from, to frame.ProcID, seq uint64, body string) {
	f := &frame.Frame{
		Type: frame.Guaranteed, Src: from.Node, Dst: to.Node,
		ID: frame.MsgID{Sender: from, Seq: seq}, From: from, To: to,
		Body: []byte(body),
	}
	if !r.Observe(f) {
		panic("tap rejected")
	}
	r.Observe(&frame.Frame{Type: frame.Ack, Src: to.Node, Dst: from.Node, ID: f.ID, From: to, To: from})
}

func register(r *Recorder, p frame.ProcID, name string) {
	r.handleNotice(&demos.Notice{Kind: demos.NoticeCreated, Proc: p, Spec: demos.ProcSpec{Name: name, Recoverable: true}})
}

func TestObserveBuildsStreams(t *testing.T) {
	r, _, _ := newBench(t)
	register(r, procA(), "a")
	register(r, procB(), "b")
	for i := uint64(1); i <= 4; i++ {
		publish(r, procA(), procB(), i, fmt.Sprintf("m%d", i))
	}
	known, recovering, dead, lastSent, queued := r.Entry(procB())
	if !known || recovering || dead || queued != 4 {
		t.Fatalf("entry B: known=%v rec=%v dead=%v queued=%d", known, recovering, dead, queued)
	}
	if lastSent != 0 {
		t.Fatalf("B sent nothing but lastSent=%d", lastSent)
	}
	_, _, _, lastSentA, _ := r.Entry(procA())
	if lastSentA != 4 {
		t.Fatalf("A's lastSent = %d, want 4", lastSentA)
	}
	if got := len(r.StreamSummary(procB())); got != 4 {
		t.Fatalf("stream = %d", got)
	}
}

func TestDuplicateAcksAndRetransmitsIgnored(t *testing.T) {
	r, _, _ := newBench(t)
	register(r, procB(), "b")
	f := &frame.Frame{
		Type: frame.Guaranteed, Src: 0, Dst: 1,
		ID: frame.MsgID{Sender: procA(), Seq: 1}, From: procA(), To: procB(),
		Body: []byte("x"),
	}
	ack := &frame.Frame{Type: frame.Ack, Src: 1, Dst: 0, ID: f.ID, From: procB(), To: procA()}
	r.Observe(f)
	r.Observe(f) // retransmission
	r.Observe(ack)
	r.Observe(ack) // duplicate ack
	r.Observe(f)   // late retransmission after arrival
	r.Observe(ack)
	if _, _, _, _, queued := r.Entry(procB()); queued != 1 {
		t.Fatalf("stream has %d entries, want 1", queued)
	}
}

// Traffic that beats the creation notice is buffered and merged (the
// pre-registration race).
func TestPreRegistrationBuffering(t *testing.T) {
	r, _, _ := newBench(t)
	publish(r, procA(), procB(), 1, "early")
	publish(r, procA(), procB(), 2, "early2")
	if known, _, _, _, _ := r.Entry(procB()); known {
		t.Fatal("entry exists before registration")
	}
	register(r, procB(), "b")
	if _, _, _, _, queued := r.Entry(procB()); queued != 2 {
		t.Fatalf("pre-registration arrivals lost: queued=%d", queued)
	}
	// Sender's lastSent was buffered too.
	register(r, procA(), "a")
	if _, _, _, ls, _ := r.Entry(procA()); ls != 2 {
		t.Fatalf("pre-registration lastSent lost: %d", ls)
	}
}

func TestCheckpointTrimsStream(t *testing.T) {
	r, _, store := newBench(t)
	register(r, procB(), "b")
	for i := uint64(1); i <= 6; i++ {
		publish(r, procA(), procB(), i, "m")
	}
	// B read 4 messages, then checkpointed with 5 and 6 still queued.
	r.handleNotice(&demos.Notice{
		Kind: demos.NoticeCheckpoint, Proc: procB(),
		Checkpoint: []byte("blob"), SendSeq: 10, ReadCount: 4, StateKB: 2,
		Queued: []frame.MsgID{{Sender: procA(), Seq: 5}, {Sender: procA(), Seq: 6}},
	})
	if _, _, _, _, queued := r.Entry(procB()); queued != 2 {
		t.Fatalf("stream after checkpoint = %d, want 2", queued)
	}
	sum := r.StreamSummary(procB())
	if sum[0].Seq != 5 || sum[1].Seq != 6 {
		t.Fatalf("wrong suffix retained: %v", sum)
	}
	// Compaction reclaims the trimmed records.
	dropped, err := store.Compact()
	if err != nil {
		t.Fatal(err)
	}
	if dropped < 4 {
		t.Fatalf("compaction dropped %d, want >=4", dropped)
	}
}

func TestRebuildFromStore(t *testing.T) {
	r, _, _ := newBench(t)
	register(r, procA(), "a")
	register(r, procB(), "b")
	for i := uint64(1); i <= 5; i++ {
		publish(r, procA(), procB(), i, fmt.Sprintf("m%d", i))
	}
	r.handleNotice(&demos.Notice{Kind: demos.NoticeReadOrder, Proc: procB(),
		ReadID: mid(0, 0), HeadID: mid(0, 0)}) // harmless bogus advisory
	r.handleNotice(&demos.Notice{
		Kind: demos.NoticeCheckpoint, Proc: procB(),
		Checkpoint: []byte("ck"), SendSeq: 3, ReadCount: 2, StateKB: 1,
		Queued: []frame.MsgID{
			{Sender: procA(), Seq: 3}, {Sender: procA(), Seq: 4}, {Sender: procA(), Seq: 5},
		},
	})
	publish(r, procA(), procB(), 6, "m6")
	before := r.StreamSummary(procB())

	// Crash and rebuild purely from stable storage.
	r.Crash()
	if err := r.rebuild(); err != nil {
		t.Fatal(err)
	}
	after := r.StreamSummary(procB())
	if fmt.Sprint(before) != fmt.Sprint(after) {
		t.Fatalf("rebuild mismatch:\nbefore %v\nafter  %v", before, after)
	}
	known, _, _, lastSent, _ := r.Entry(procA())
	if !known || lastSent != 6 {
		t.Fatalf("A after rebuild: known=%v lastSent=%d", known, lastSent)
	}
	e := r.db[procB()]
	if string(e.Checkpoint) != "ck" || e.CkReadCount != 2 || e.CkSendSeq != 3 {
		t.Fatalf("checkpoint not rebuilt: %+v", e)
	}
}

func TestDestroyedProcessForgotten(t *testing.T) {
	r, _, _ := newBench(t)
	register(r, procB(), "b")
	publish(r, procA(), procB(), 1, "m")
	r.handleNotice(&demos.Notice{Kind: demos.NoticeDestroyed, Proc: procB()})
	_, _, dead, _, queued := r.Entry(procB())
	if !dead || queued != 0 {
		t.Fatalf("dead=%v queued=%d", dead, queued)
	}
	// Survives rebuild.
	r.Crash()
	if err := r.rebuild(); err != nil {
		t.Fatal(err)
	}
	if _, _, dead, _, _ := r.Entry(procB()); !dead {
		t.Fatal("death forgotten across rebuild")
	}
}

func TestRestartNumberPersistence(t *testing.T) {
	r, sched, store := newBench(t)
	_ = sched
	r.Crash()
	if err := r.Restart(); err != nil {
		t.Fatal(err)
	}
	if r.RestartNumber() != 1 {
		t.Fatalf("restart number = %d", r.RestartNumber())
	}
	r.Crash()
	if err := r.Restart(); err != nil {
		t.Fatal(err)
	}
	if r.RestartNumber() != 2 {
		t.Fatalf("restart number = %d", r.RestartNumber())
	}
	// A brand-new recorder over the same store resumes the counter (§3.4:
	// the counter lives in stable storage).
	log := trace.New(sched.Now)
	rng := simtime.NewRand(4)
	med := lan.NewPerfect(lan.DefaultConfig(), sched, rng, log)
	r2 := New(DefaultConfig(6, nil), sched, rng, log, med, store, transport.DefaultConfig())
	if r2.RestartNumber() != 2 {
		t.Fatalf("restart number not persisted: %d", r2.RestartNumber())
	}
}

func TestProcessModeCosts(t *testing.T) {
	if ModeNaive.PerMessageCPU() != 57*simtime.Millisecond {
		t.Fatal("naive")
	}
	if ModeOptimized.PerMessageCPU() != 12*simtime.Millisecond {
		t.Fatal("optimized")
	}
	if ModeMediaLayer.PerMessageCPU() != 800*simtime.Microsecond {
		t.Fatal("media layer")
	}
	for _, m := range []ProcessMode{ModeNaive, ModeOptimized, ModeMediaLayer} {
		if m.String() == "" {
			t.Fatal("mode name")
		}
	}
}

func TestCrashedTapRefuses(t *testing.T) {
	r, _, _ := newBench(t)
	r.Crash()
	f := &frame.Frame{Type: frame.Guaranteed, ID: frame.MsgID{Sender: procA(), Seq: 1}, From: procA(), To: procB()}
	if r.Observe(f) {
		t.Fatal("crashed recorder stored a frame")
	}
}

func TestParseProcID(t *testing.T) {
	p := frame.ProcID{Node: 3, Local: 44}
	got, ok := parseProcID(p.String()[1:] /* strip 'p' is wrong */)
	if ok && got == p {
		t.Fatal("parse should fail without prefix")
	}
	got, ok = parseProcID(p.String())
	if !ok || got != p {
		t.Fatalf("parseProcID(%q) = %v, %v", p.String(), got, ok)
	}
	if _, ok := parseProcID("zork"); ok {
		t.Fatal("garbage parsed")
	}
}
