package recorder

import (
	"fmt"
	"testing"

	"publishing/internal/frame"
)

// gframeAB returns a stored-but-unacked guaranteed frame procA→procB.
func gframeAB(seq uint64) *frame.Frame {
	return &frame.Frame{
		Type: frame.Guaranteed, Src: 0, Dst: 1,
		ID: frame.MsgID{Sender: procA(), Seq: seq}, From: procA(), To: procB(),
		Body: []byte(fmt.Sprintf("m%d", seq)),
	}
}

// A delayed-ack flush covers several messages with one Ack frame whose
// payload lists the accepted records in acceptance order; the recorder must
// credit each record exactly as it would a standalone ack.
func TestObserveRangeAckRecords(t *testing.T) {
	r, _, _ := newBench(t)
	register(r, procA(), "a")
	register(r, procB(), "b")
	for seq := uint64(1); seq <= 3; seq++ {
		if !r.Observe(gframeAB(seq)) {
			t.Fatalf("tap rejected frame %d", seq)
		}
	}
	if _, _, _, _, queued := r.Entry(procB()); queued != 0 {
		t.Fatalf("arrivals before any ack = %d, want 0", queued)
	}
	// One cumulative Ack frame carries all three records, acceptance order.
	ack := &frame.Frame{
		Type: frame.Ack, Src: 1, Dst: 0,
		ID: frame.MsgID{Sender: procA(), Seq: 3}, From: procB(), To: procA(),
	}
	for seq := uint64(1); seq <= 3; seq++ {
		ack.AckRecs = append(ack.AckRecs, frame.AckRec{
			ID: frame.MsgID{Sender: procA(), Seq: seq}, Rcv: procB(),
		})
	}
	r.Observe(ack)
	if got := r.Stats().AcksSeen; got != 3 {
		t.Fatalf("AcksSeen = %d, want one per record", got)
	}
	if _, _, _, _, queued := r.Entry(procB()); queued != 3 {
		t.Fatalf("arrivals after range ack = %d, want 3", queued)
	}
	stream := r.StreamSummary(procB())
	if len(stream) != 3 {
		t.Fatalf("stream = %d messages", len(stream))
	}
	for i, id := range stream {
		if id.Seq != uint64(i+1) {
			t.Fatalf("acceptance order broken at %d: %v", i, id)
		}
	}
	// A retransmitted copy and a duplicate range ack change nothing.
	r.Observe(gframeAB(2))
	r.Observe(ack)
	if _, _, _, _, queued := r.Entry(procB()); queued != 3 {
		t.Fatalf("arrivals after duplicates = %d, want 3", queued)
	}
}

// Records listed out of a frame's header: the payload path must not fall
// back to the header id/From fields (which name only the last record).
func TestRangeAckHeaderFieldsIgnored(t *testing.T) {
	r, _, _ := newBench(t)
	register(r, procA(), "a")
	register(r, procB(), "b")
	if !r.Observe(gframeAB(1)) {
		t.Fatal("tap rejected")
	}
	// Header names seq 9 (never sent); the payload names the real message.
	ack := &frame.Frame{
		Type: frame.Ack, Src: 1, Dst: 0,
		ID: frame.MsgID{Sender: procA(), Seq: 9}, From: procB(), To: procA(),
		AckRecs: []frame.AckRec{{ID: frame.MsgID{Sender: procA(), Seq: 1}, Rcv: procB()}},
	}
	r.Observe(ack)
	if _, _, _, _, queued := r.Entry(procB()); queued != 1 {
		t.Fatalf("arrivals = %d, want 1 from the payload record", queued)
	}
	if got := r.Stats().AcksSeen; got != 1 {
		t.Fatalf("AcksSeen = %d, want 1", got)
	}
}
