package recorder

import (
	"math/rand"
	"testing"

	"publishing/internal/frame"
)

func mkArrivals(n int) []storedMsg {
	out := make([]storedMsg, n)
	for i := range out {
		out[i] = storedMsg{
			ID:     frame.MsgID{Sender: frame.ProcID{Node: 0, Local: 7}, Seq: uint64(i + 1)},
			ArrSeq: uint64(i),
			Body:   []byte{byte(i)},
		}
	}
	return out
}

func drainIter(arrivals []storedMsg, advisories []advisory) []storedMsg {
	it := newReplayIter(arrivals, advisories)
	var out []storedMsg
	for {
		sm, ok := it.next()
		if !ok {
			return out
		}
		out = append(out, *sm)
	}
}

func sameOrder(t *testing.T, name string, want, got []storedMsg) {
	t.Helper()
	if len(want) != len(got) {
		t.Fatalf("%s: iterator emitted %d messages, reconstruct %d", name, len(got), len(want))
	}
	for i := range want {
		if want[i].ID != got[i].ID {
			t.Fatalf("%s: position %d: iterator %v, reconstruct %v", name, i, got[i].ID, want[i].ID)
		}
	}
}

// The iterator must emit exactly reconstruct's order for every stream shape,
// including the degenerate advisories reconstruct quietly tolerates: a head
// id that never appears (drains the queue), an advised read that is missing
// (advisory consumed, nothing emitted), and an advisory whose read IS the
// head.
func TestReplayIterMatchesReconstructEdgeCases(t *testing.T) {
	id := func(seq int) frame.MsgID {
		return frame.MsgID{Sender: frame.ProcID{Node: 0, Local: 7}, Seq: uint64(seq)}
	}
	cases := []struct {
		name string
		n    int
		adv  []advisory
	}{
		{"empty", 0, nil},
		{"no-advisories", 5, nil},
		{"simple-skip", 5, []advisory{{HeadID: id(2), ReadID: id(4)}}},
		{"read-is-head", 5, []advisory{{HeadID: id(3), ReadID: id(3)}}},
		{"head-missing", 4, []advisory{{HeadID: id(99), ReadID: id(2)}}},
		{"read-missing", 4, []advisory{{HeadID: id(2), ReadID: id(99)}}},
		{"both-missing", 3, []advisory{{HeadID: id(98), ReadID: id(99)}}},
		{"chained", 6, []advisory{
			{HeadID: id(1), ReadID: id(3)},
			{HeadID: id(2), ReadID: id(6)},
			{HeadID: id(4), ReadID: id(5)},
		}},
		{"advisory-on-empty", 0, []advisory{{HeadID: id(1), ReadID: id(2)}}},
	}
	for _, tc := range cases {
		arr := mkArrivals(tc.n)
		sameOrder(t, tc.name, reconstruct(arr, tc.adv), drainIter(arr, tc.adv))
	}
}

func TestReplayIterMatchesReconstructRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 500; trial++ {
		n := rng.Intn(20)
		arr := mkArrivals(n)
		var advs []advisory
		for a := rng.Intn(6); a > 0; a-- {
			// Mostly valid ids, occasionally bogus ones, to hit every branch.
			head := uint64(rng.Intn(n + 3))
			read := uint64(rng.Intn(n + 3))
			advs = append(advs, advisory{
				HeadID: frame.MsgID{Sender: frame.ProcID{Node: 0, Local: 7}, Seq: head},
				ReadID: frame.MsgID{Sender: frame.ProcID{Node: 0, Local: 7}, Seq: read},
			})
		}
		sameOrder(t, "random", reconstruct(arr, advs), drainIter(arr, advs))
	}
}
