package recorder

import (
	"testing"

	"publishing/internal/frame"
)

func mkID(n uint64) frame.MsgID {
	return frame.MsgID{Sender: frame.ProcID{Node: 1, Local: 2}, Seq: n}
}

func TestGenSetNeverForgetsCurrentGeneration(t *testing.T) {
	// The bug this replaces: a wholesale reset at the size limit forgot
	// every id at once, so a notice still being retransmitted was
	// re-applied. Across a rotation, recently added ids must stay seen.
	const limit = 8
	g := newGenSet(limit)
	for i := uint64(0); i < 3*limit; i++ {
		id := mkID(i)
		if g.Seen(id) {
			t.Fatalf("id %d seen before Add", i)
		}
		g.Add(id)
		if !g.Seen(id) {
			t.Fatalf("id %d not seen immediately after Add", i)
		}
		// The previous `limit` ids span at most one rotation and must
		// still be deduplicated.
		for j := uint64(1); j <= limit && j <= i; j++ {
			if !g.Seen(mkID(i - j)) {
				t.Fatalf("after adding id %d, id %d (within window %d) forgotten", i, i-j, limit)
			}
		}
	}
	if g.Len() > 2*limit {
		t.Fatalf("genSet holds %d ids, want ≤ %d", g.Len(), 2*limit)
	}
}

func TestGenSetAgesOutAndResets(t *testing.T) {
	const limit = 4
	g := newGenSet(limit)
	old := mkID(0)
	g.Add(old)
	// Two full generations of newer ids push `old` out.
	for i := uint64(1); i <= 2*limit; i++ {
		g.Add(mkID(i))
	}
	if g.Seen(old) {
		t.Fatal("id idle for two generations still seen; set is unbounded")
	}
	g.Reset()
	if g.Len() != 0 || g.Seen(mkID(2*limit)) {
		t.Fatal("Reset did not clear the set")
	}
	g.Add(old)
	if !g.Seen(old) {
		t.Fatal("Add after Reset not seen")
	}
}
