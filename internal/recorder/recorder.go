// Package recorder implements the paper's central contribution: the passive
// recorder of published communications (§3.3, §4.5) and its recovery
// manager (§3.3.3, §4.6–4.7).
//
// The recorder attaches to the broadcast medium as a tap and stores every
// guaranteed message; overheard end-to-end acknowledgements tell it the
// order in which messages were accepted at each destination (§4.4.1). Node
// kernels send it bookkeeping notices — process creation/destruction,
// out-of-order channel reads (§4.4.2), checkpoints, and fault traps — as
// ordinary published messages. Watchdogs detect processor crashes by
// timeout (§3.3.2, §4.6). A recovery process per crashed process recreates
// it from its last checkpoint (or initial image), replays its published
// messages in their original read order, and tells the kernel when direct
// traffic may resume (§3.3.3, §4.7). The recorder itself recovers from
// crashes by rebuilding its database from stable storage and running the
// §3.3.4 restart protocol, with restart numbers guarding against recursive
// crashes (§3.4).
package recorder

import (
	"bytes"
	"encoding/gob"
	"sort"

	"publishing/internal/demos"
	"publishing/internal/frame"
	"publishing/internal/lan"
	"publishing/internal/metrics"
	"publishing/internal/simtime"
	"publishing/internal/stablestore"
	"publishing/internal/trace"
	"publishing/internal/transport"
)

// ProcessMode selects the recorder's per-message processing cost,
// reproducing the three implementation points of §5.2.2: the unmodified
// kernel path measured at 57 ms, the inlined version at 12 ms, and the
// media-layer interception goal of 0.8 ms.
type ProcessMode int

const (
	// ModeNaive: messages climb the whole network protocol stack (57 ms).
	ModeNaive ProcessMode = iota
	// ModeOptimized: subroutine calls replaced by inline routines (12 ms).
	ModeOptimized
	// ModeMediaLayer: interception directly at the media layer (0.8 ms),
	// the queuing model's assumption (Fig 5.2 "time to process a packet").
	ModeMediaLayer
)

// PerMessageCPU returns the publish processing cost of the mode.
func (m ProcessMode) PerMessageCPU() simtime.Time {
	switch m {
	case ModeNaive:
		return 57 * simtime.Millisecond
	case ModeOptimized:
		return 12 * simtime.Millisecond
	default:
		return 800 * simtime.Microsecond
	}
}

// String names the mode.
func (m ProcessMode) String() string {
	switch m {
	case ModeNaive:
		return "naive"
	case ModeOptimized:
		return "optimized"
	default:
		return "media-layer"
	}
}

// Action tells the recovery manager what to do about a processor crash —
// the three operator choices of §4.6.
type Action int

const (
	// ActionRecoverSame restarts the node's processes on the same
	// processor once it reboots.
	ActionRecoverSame Action = iota
	// ActionRecoverSpare migrates the node's processes to a spare.
	ActionRecoverSpare
	// ActionNoRecover abandons the node's processes.
	ActionNoRecover
)

// Decision is the operator's answer to a processor crash.
type Decision struct {
	Action Action
	Spare  frame.NodeID
}

// Config tunes a recorder.
type Config struct {
	// Node is the recording node's station address; Proc the recording
	// software's process id (notices are addressed to it).
	Node frame.NodeID
	Proc frame.ProcID
	// Nodes are the processing nodes to watch.
	Nodes []frame.NodeID
	// Mode is the publish processing cost model (§5.2.2).
	Mode ProcessMode
	// EmitRecorderAcks broadcasts a RecorderAck frame for every stored
	// guaranteed message — transport-level publish-before-use for media
	// without hardware ack slots (§6.1).
	EmitRecorderAcks bool
	// FlushEveryMessage forces one stable-store write per message instead
	// of 4 KB buffering — the configuration whose disk saturation §5.1
	// reports before the buffering fix.
	FlushEveryMessage bool
	// WatchInterval is the watchdog ping period; MissThreshold consecutive
	// silent intervals declare a processor crash (§4.6).
	WatchInterval simtime.Time
	MissThreshold int
	// ReplayGrace delays the start of replay after a crash so in-flight
	// advisories and acks drain into the database.
	ReplayGrace simtime.Time
	// RecoveryRetry re-runs a recovery that saw no progress (lost node,
	// recursive crash) after this long.
	RecoveryRetry simtime.Time
	// OnProcessorCrash is the operator query of §4.6; nil defaults to
	// recover-on-same-processor.
	OnProcessorCrash func(node frame.NodeID) Decision
	// TickSched, when set, schedules the periodic watchdog tick instead of
	// the recorder's own clock. The parallel engine wires the serial
	// scheduler here: the tick's crash decisions reach across nodes
	// (RebootFn rebuilds a kernel), so it must never execute inside a
	// concurrent window. Nil keeps the recorder's clock (serial engine).
	TickSched simtime.Clock
	// RebootFn asks the outside world (the cluster, standing in for a
	// front-panel reset) to reboot a crashed node.
	RebootFn func(node frame.NodeID)
	// StoreFailProb makes the tap randomly fail to store a frame, for
	// exercising publish-before-use.
	StoreFailProb float64

	// ReplayWindow is how many replay batches a recovery keeps in flight
	// before waiting for the kernel's cumulative batch acknowledgement
	// (<= 0 means 1: stop-and-wait).
	ReplayWindow int
	// ReplayBatchBytes bounds a replay batch's encoded body (and the size
	// of one checkpoint catch-up chunk); <= 0 means frame.MaxBody, one MTU.
	// Setting it to 1 forces one message per batch — the serial ablation.
	ReplayBatchBytes int
	// RouteRepeats is how many times a routing update is broadcast after a
	// migration or spare-node recovery (unguaranteed traffic, so repeats
	// cover loss). 0 means the default of 3; negative means none — kernels
	// then depend entirely on home-node forwarding.
	RouteRepeats int

	// Multiple-recorder support (§6.3). Peers lists the other recorders'
	// procs in rank order (this recorder's own slot removed); Rank is this
	// recorder's position in the combined order. Priority, when set, maps
	// a node to its recorder-rank priority vector V_i; nil means ascending
	// rank for every node. NoticeProcs lists every recorder proc so the
	// tap can consume kernel notices addressed to any of them.
	Peers        []frame.ProcID
	Rank         int
	Priority     func(node frame.NodeID) []int
	ClaimTimeout simtime.Time
	NoticeProcs  []frame.ProcID

	// Shards, when non-nil, puts the recorder in sharded mode: it records
	// (and gates, votes on, and recovers) only the process streams whose
	// shard slots it replicates per the map, acting as leader or follower
	// per slot. All recorders of a cluster share one read-only map. Nil is
	// the classic §6.3 mode — every recorder records everything.
	Shards *ShardMap

	// Metrics, when non-nil, receives the recorder's counters (subsystem
	// "recorder"), the stable store's (subsystem "store"), the publish
	// latency histogram, and the replay window occupancy gauge.
	Metrics *metrics.Registry
}

// DefaultConfig returns simulation defaults for a recorder at node.
func DefaultConfig(node frame.NodeID, watched []frame.NodeID) Config {
	return Config{
		Node:             node,
		Proc:             frame.ProcID{Node: node, Local: 1},
		Nodes:            watched,
		Mode:             ModeMediaLayer,
		WatchInterval:    500 * simtime.Millisecond,
		MissThreshold:    3,
		ReplayGrace:      200 * simtime.Millisecond,
		RecoveryRetry:    20 * simtime.Second,
		ReplayWindow:     4,
		ReplayBatchBytes: frame.MaxBody,
		RouteRepeats:     3,
	}
}

// Stats counts recorder activity.
type Stats struct {
	MessagesSeen        uint64
	MessagesPending     uint64
	ArrivalsRecorded    uint64
	BytesStored         uint64
	AcksSeen            uint64
	Notices             uint64
	Advisories          uint64
	CheckpointsStored   uint64
	ProcessCrashes      uint64
	ProcessorCrashes    uint64
	RecoveriesStarted   uint64
	RecoveriesCompleted uint64
	MessagesReplayed    uint64
	ReplayBatches       uint64
	CkChunksSent        uint64
	RecorderAcksSent    uint64
	MissedArrivals      uint64
	StoreFailures       uint64
	PublishCPU          simtime.Time

	// Sharded-mode counters: follower promotions on a dead leader's slots,
	// shard-handoff sessions completed after a restart, and the handoff
	// transfer volume (streams shipped by the serving side, chunks on the
	// wire, streams adopted wholesale by the requester).
	FollowerPromotions  uint64
	HandoffsCompleted   uint64
	HandoffProcsShipped uint64
	HandoffChunksSent   uint64
	HandoffProcsAdopted uint64
}

// storedMsg is one published message in a process's stream.
type storedMsg struct {
	ID      frame.MsgID
	From    frame.ProcID
	Channel uint16
	Code    uint32
	Body    []byte
	Link    *frame.Link
	ArrSeq  uint64
	// To is the destination the tap saw on the wire; pending messages need
	// it so a later ack from the same stream can claim them (see observeAck).
	To frame.ProcID
	// SeenAt is when the tap heard the frame (pending-sweep bookkeeping;
	// not persisted semantics).
	SeenAt simtime.Time
}

// advisory is one §4.4.2 read-order correction.
type advisory struct {
	ReadID frame.MsgID
	HeadID frame.MsgID
	AdvSeq uint64
}

// procEntry is the §4.5 per-process database record: "the process
// identifier, the identifier of the most recent message sent by the
// process, a list of ids of messages received by the process (since the
// last checkpoint), the file name of the last checkpoint, the id of the
// first valid message, a list of disk pages containing messages to the
// process, and whether or not the process is recovering."
type procEntry struct {
	Proc frame.ProcID
	Spec demos.ProcSpec
	Node frame.NodeID

	LastSent uint64

	Arrivals   []storedMsg
	have       map[frame.MsgID]bool
	Advisories []advisory
	ArrSeqNext uint64
	AdvSeqNext uint64

	Checkpoint  []byte
	CkSendSeq   uint64
	CkReadCount uint64
	CkStateKB   int
	BaseReads   uint64
	LastCkAt    simtime.Time
	// trimDebt counts messages a past checkpoint reported consumed whose
	// records had not yet reached us when it was applied (a tap miss makes a
	// publish land late, inferred from an ack). Their records arrive after
	// that checkpoint, so the next trim must reach this much deeper or the
	// stream keeps an already-read message and replay duplicates it. Kept in
	// memory only: a rebuilt recorder starts at zero, which merely retains
	// conservatively.
	trimDebt uint64

	Rev        uint64 // meta revision for stable storage
	Recovering bool
	Dead       bool
}

// Recorder is the recording node: tap, database, stable store, and
// recovery manager.
type Recorder struct {
	cfg   Config
	sched simtime.Clock
	rng   *simtime.Rand
	log   *trace.Log
	med   lan.Medium
	ep    *transport.Endpoint
	store stablestore.Store

	db      map[frame.ProcID]*procEntry
	pending map[frame.MsgID]*storedMsg
	// preArrivals buffers accepted messages (and preLastSent the send
	// sequences) of processes whose creation notice has not arrived yet:
	// on a busy system a new process's first traffic can beat the kernel's
	// NoticeCreated to the recorder. Merged at registration; bounded.
	preArrivals map[frame.ProcID][]storedMsg
	preLastSent map[frame.ProcID]uint64

	restartNumber uint64
	sendSeq       uint64
	crashed       bool
	epoch         uint64 // invalidates timers across Crash/Restart

	watch      map[frame.NodeID]*watchState
	recovering map[frame.ProcID]*recoveryProc
	// replaying holds each live recovery's pipelined batch sender, so a
	// superseding attempt (or process destruction) can withdraw its
	// in-flight frames and orphan its reply waiters.
	replaying map[frame.ProcID]*batchSender
	waiters   map[uint32]func(f *frame.Frame)
	nextCode  uint32

	// §6.3 restart catch-up state.
	catchingUp bool
	awaitCk    map[frame.ProcID]bool

	// Sharded-mode state (cfg.Shards non-nil). peerWatch runs a watchdog per
	// peer recorder rank; actingSlots marks the leader slots this follower
	// has promoted itself on; handoffPending marks partner ranks a restarted
	// peer is mid-handoff with (the partner keeps acting until Commit).
	// handoffs holds this recorder's own outbound handoff sessions (it is
	// the restarted requester); handoffRx assembles inbound transfer chunks.
	// handoffCrashAfter, when > 0, is the chaos hook: crash this recorder
	// after serving that many more transfer chunks (mid-handoff crash).
	peerWatch         map[int]*watchState
	actingSlots       map[int]bool
	handoffPending    map[int]bool
	handoffs          map[int]*handoffSession
	handoffRx         map[uint32]*handoffAssembly
	handoffCrashAfter int
	// voteScratch is the voting path's bundle-decode buffer, separate from
	// recScratch so ObserveVote's pre-decode cannot clobber the store path's.
	voteScratch []frame.BundleRec
	// noticeSeen dedups notices consumed off the wire (other recorders'
	// deliveries; the tap sees every retransmission).
	noticeSeen genSet

	// encScratch is the reused scratch for the typed gobx codecs the
	// persist paths encode records through (see persist.go). Each record is
	// its own self-contained gob stream (type preamble + value, which
	// rebuild's per-record decoder expects), but the buffer is shared:
	// stablestore.Append copies Data, so the bytes only need to survive one
	// call.
	encScratch []byte
	// smFree pools storedMsg nodes between Observe and the ack/sweep paths
	// that retire them, so the tap's steady state stops allocating a node,
	// body, and link per overheard frame.
	smFree []*storedMsg
	// recScratch is the tap's reused bundle-decode buffer.
	recScratch []frame.BundleRec
	// ackq queues recorder acknowledgements awaiting their publish
	// processing time; one flush timer drains every ready entry into a
	// single batched RecorderAck frame.
	ackq        []recAck
	ackTimerSet bool

	stats Stats
	// publishLat observes tap-hear to publish (arrival recorded) latency in
	// virtual nanoseconds; replayOcc tracks the replay window's in-flight
	// batch count across all live recoveries.
	publishLat *metrics.Histogram
	replayOcc  *metrics.Gauge
}

// Reply channels on the recorder's pseudo-links.
const (
	chanCtlReply  = 1
	chanQueryResp = 2
)

// New builds a recorder on the given medium and stable store, attaching
// both its passive tap and its transport endpoint.
func New(cfg Config, sched simtime.Clock, rng *simtime.Rand, log *trace.Log, med lan.Medium, store stablestore.Store, tcfg transport.Config) *Recorder {
	r := &Recorder{
		cfg:         cfg,
		sched:       sched,
		rng:         rng,
		log:         log,
		med:         med,
		store:       store,
		db:          make(map[frame.ProcID]*procEntry),
		pending:     make(map[frame.MsgID]*storedMsg),
		preArrivals: make(map[frame.ProcID][]storedMsg),
		preLastSent: make(map[frame.ProcID]uint64),
		watch:       make(map[frame.NodeID]*watchState),
		recovering:  make(map[frame.ProcID]*recoveryProc),
		replaying:   make(map[frame.ProcID]*batchSender),
		waiters:     make(map[uint32]func(*frame.Frame)),
		noticeSeen:  newGenSet(noticeSeenLimit),
		nextCode:    1,
	}
	if cfg.Shards != nil {
		r.peerWatch = make(map[int]*watchState)
		r.actingSlots = make(map[int]bool)
		r.handoffPending = make(map[int]bool)
		r.handoffs = make(map[int]*handoffSession)
		r.handoffRx = make(map[uint32]*handoffAssembly)
	}
	r.ep = transport.New(cfg.Node, med, sched, log, tcfg)
	r.ep.Deliver = r.deliver
	med.AttachTap(cfg.Node, r)
	r.loadRestartNumber()
	if reg := cfg.Metrics; reg != nil {
		node := int(cfg.Node)
		r.publishLat = reg.Histogram(node, "recorder", "publish_latency_ns")
		r.replayOcc = reg.Gauge(node, "recorder", "replay_window_batches")
		s := &r.stats
		reg.AddCollector(node, "recorder", func(emit func(string, int64)) {
			emit("messages_seen", int64(s.MessagesSeen))
			emit("messages_pending", int64(s.MessagesPending))
			emit("arrivals_recorded", int64(s.ArrivalsRecorded))
			emit("bytes_stored", int64(s.BytesStored))
			emit("acks_seen", int64(s.AcksSeen))
			emit("notices", int64(s.Notices))
			emit("advisories", int64(s.Advisories))
			emit("checkpoints_stored", int64(s.CheckpointsStored))
			emit("process_crashes", int64(s.ProcessCrashes))
			emit("processor_crashes", int64(s.ProcessorCrashes))
			emit("recoveries_started", int64(s.RecoveriesStarted))
			emit("recoveries_completed", int64(s.RecoveriesCompleted))
			emit("messages_replayed", int64(s.MessagesReplayed))
			emit("replay_batches", int64(s.ReplayBatches))
			emit("ck_chunks_sent", int64(s.CkChunksSent))
			emit("recorder_acks_sent", int64(s.RecorderAcksSent))
			emit("missed_arrivals", int64(s.MissedArrivals))
			emit("store_failures", int64(s.StoreFailures))
			emit("publish_cpu_ns", int64(s.PublishCPU))
			emit("follower_promotions", int64(s.FollowerPromotions))
			emit("handoffs_completed", int64(s.HandoffsCompleted))
			emit("handoff_procs_shipped", int64(s.HandoffProcsShipped))
			emit("handoff_chunks_sent", int64(s.HandoffChunksSent))
			emit("handoff_procs_adopted", int64(s.HandoffProcsAdopted))
		})
		reg.AddCollector(node, "store", func(emit func(string, int64)) {
			ss := r.store.Stats()
			emit("appends", int64(ss.Appends))
			emit("page_writes", int64(ss.PageWrites))
			emit("page_reads", int64(ss.PageReads))
			emit("compacted", int64(ss.Compacted))
			emit("bytes_live", int64(ss.BytesLive))
			emit("seg_flushes", int64(ss.SegFlushes))
			emit("segments_sealed", int64(ss.SegSealed))
			emit("segments_dropped", int64(ss.SegDropped))
			emit("seg_rewrites", int64(ss.SegRewrites))
			emit("segments", int64(ss.Segments))
			emit("bytes_dead", int64(ss.BytesDead))
		})
		// The group-commit batch histogram is registered for every backend
		// (so the metric set is backend-independent) but only the segmented
		// store feeds it: the paged engine has no commit batches, so its
		// histogram stays all-zero.
		gcBatch := reg.Histogram(node, "store", "group_commit_batch")
		if bo, ok := store.(stablestore.BatchObserver); ok {
			bo.SetBatchObserver(func(records int) { gcBatch.Observe(int64(records)) })
		}
	}
	return r
}

// Stats returns the recorder counters.
func (r *Recorder) Stats() *Stats { return &r.stats }

// SetStoreFailProb adjusts the tap's store-failure probability at runtime —
// the chaos harness's in-model stand-in for stable-store write failures
// (a failed store write and a failed tap store look identical to the rest of
// the system: no recorder ack, publish-before-use blocks the frame).
func (r *Recorder) SetStoreFailProb(p float64) { r.cfg.StoreFailProb = p }

// Store exposes the stable store (experiments inspect its stats).
func (r *Recorder) Store() stablestore.Store { return r.store }

// Proc returns the recording software's process id.
func (r *Recorder) Proc() frame.ProcID { return r.cfg.Proc }

// RestartNumber returns the §3.4 restart counter.
func (r *Recorder) RestartNumber() uint64 { return r.restartNumber }

// Crashed reports whether the recorder is down.
func (r *Recorder) Crashed() bool { return r.crashed }

// Entry returns a copy-ish view of a process's database entry state for
// tests and tools: (known, recovering, dead, lastSent, queued messages).
func (r *Recorder) Entry(p frame.ProcID) (known, recovering, dead bool, lastSent uint64, queued int) {
	e := r.db[p]
	if e == nil {
		return false, false, false, 0, 0
	}
	return true, e.Recovering, e.Dead, e.LastSent, len(e.Arrivals)
}

// Observe implements lan.Tap: the passive listener of §3.1. Its verdict is
// the medium's publish-before-use gate.
func (r *Recorder) Observe(f *frame.Frame) bool {
	if r.crashed {
		return false
	}
	ok := true
	switch f.Type {
	case frame.Guaranteed:
		if r.storeFailed() {
			ok = false
		} else {
			r.observeMessage(f)
		}
	case frame.Bundle:
		ok = r.observeBundle(f)
	case frame.Ack:
		if len(f.AckRecs) == 0 {
			r.observeAck(f)
		}
	}
	if ok {
		// Acknowledgement records piggybacked on any gated frame reach the
		// recorder through the same stored frame — a blocked frame's payload
		// is ignored because its receivers never see it either.
		r.observeAckPayload(f)
	}
	return ok
}

// storeFailed draws the injected store-failure fault.
func (r *Recorder) storeFailed() bool {
	if r.cfg.StoreFailProb > 0 && r.rng.Bool(r.cfg.StoreFailProb) {
		r.stats.StoreFailures++
		return true
	}
	return false
}

// observeBundle stores every guaranteed record of a coalesced frame,
// drawing the store-failure fault per record (the records land on distinct
// database pages). Any failed record blocks the whole frame — the medium
// gates per frame — and the sender's individual retransmissions land on the
// duplicate checks for the records that did store.
func (r *Recorder) observeBundle(f *frame.Frame) bool {
	recs, err := frame.DecodeBundle(f.Body, r.recScratch)
	if err != nil {
		r.recScratch = recs[:0]
		r.stats.StoreFailures++
		return false
	}
	r.recScratch = recs
	ok := true
	for i := range recs {
		if recs[i].Type != frame.Guaranteed {
			continue
		}
		if r.storeFailed() {
			ok = false
			continue
		}
		r.observeMessage(recs[i].Expand(f))
	}
	return ok
}

// observeAckPayload feeds piggybacked acknowledgement records to the
// arrival-order machinery, in the acceptance order the receiver recorded
// them (§4.4.1's tracing, one frame carrying several acks).
func (r *Recorder) observeAckPayload(f *frame.Frame) {
	for i := range f.AckRecs {
		r.stats.AcksSeen++
		r.observeAckRecord(f.AckRecs[i].ID, f.AckRecs[i].Rcv)
	}
}

func (r *Recorder) observeMessage(f *frame.Frame) {
	r.stats.MessagesSeen++
	r.stats.PublishCPU += r.cfg.Mode.PerMessageCPU()

	if r.cfg.EmitRecorderAcks && (r.cfg.Shards == nil || r.ownsProc(f.To)) {
		// Transport-level publish-before-use (§6.1): receivers hold the
		// frame until this acknowledgement. Emission waits out the publish
		// processing time, so ModeNaive recorders visibly slow the system.
		// Sharded mode: only a stream's owners acknowledge it (duplicate
		// acks from the two replicas release the same held frame once).
		r.queueRecorderAck(f.ID)
	}

	if f.To == r.cfg.Proc {
		return // bookkeeping traffic to the recorder itself is not a stream
	}
	if f.Channel == chanPeer || r.isNoticeProc(f.From) {
		// Recorder-originated traffic: peer arbitration and handoff frames,
		// control requests, replay batches. None of it belongs to a process
		// stream. Recording a peer's replay batch or checkpoint request as an
		// arrival of its destination would feed it back into the next
		// recovery as application traffic, and a handoff chunk would gob-
		// decode as a plausible-looking notice (peerMsg and demos.Notice
		// share field names) and corrupt the basis. A lone recorder never
		// taps its own sends, so only multi-recorder clusters see these.
		return
	}
	if r.isNoticeProc(f.To) {
		// A kernel notice addressed to another recorder: every recorder
		// must apply it to stay consistent (§6.3: all recorders record all
		// messages). The tap sees retransmissions, so dedup.
		if !r.noticeSeen.Seen(f.ID) {
			r.noticeSeen.Add(f.ID)
			if n, err := demos.DecodeNotice(f.Body); err == nil {
				r.handleNotice(n)
			}
		}
		return
	}

	// Track the highest message id each published process has sent — the
	// future suppression threshold (§4.5). In sharded mode only the sender's
	// owners track it (they replay the sender, so they set the threshold).
	if f.From.Local != 0 && (r.cfg.Shards == nil || r.ownsProc(f.From)) { // kernel processes are not replayed
		if e := r.db[f.From]; e != nil && !e.Dead {
			if f.ID.Seq > e.LastSent {
				e.LastSent = f.ID.Seq
				r.persistLastSent(e)
			}
		} else if e == nil {
			if f.ID.Seq > r.preLastSent[f.From] && len(r.preLastSent) < 4096 {
				r.preLastSent[f.From] = f.ID.Seq
			}
		}
	}

	if r.cfg.Shards != nil && !r.ownsProc(f.To) {
		return // another shard's stream; its replicas record the arrival
	}
	if e := r.db[f.To]; e != nil {
		if e.Dead || e.have[f.ID] {
			return // dead destination or retransmission of an arrival
		}
	}
	if _, dup := r.pending[f.ID]; dup {
		return
	}
	sm := r.allocStored()
	sm.ID = f.ID
	sm.From = f.From
	sm.Channel = f.Channel
	sm.Code = f.Code
	sm.Body = append(sm.Body[:0], f.Body...)
	// Deep-copy the link: the medium no longer clones frames for taps, so f
	// (and everything it points at) belongs to the sender after we return.
	if f.PassedLink != nil {
		if sm.Link == nil {
			sm.Link = new(frame.Link)
		}
		*sm.Link = *f.PassedLink
	} else {
		sm.Link = nil
	}
	sm.ArrSeq = 0
	sm.To = f.To
	sm.SeenAt = r.sched.Now()
	r.pending[f.ID] = sm
	r.stats.MessagesPending++
}

// recAck is one queued recorder acknowledgement: the id becomes
// broadcastable once its publish processing time has elapsed.
type recAck struct {
	id      frame.MsgID
	readyAt simtime.Time
}

// maxAckIDsPerFrame bounds a batched RecorderAck frame's id list to the MTU.
const maxAckIDsPerFrame = frame.MaxBody / frame.AckIDLen

// queueRecorderAck schedules the §6.1 acknowledgement for one stored
// message. Ready entries are flushed together: every record of a coalesced
// bundle finishes processing at the same instant, so one RecorderAck frame
// covers the whole batch instead of one frame per message.
func (r *Recorder) queueRecorderAck(id frame.MsgID) {
	r.ackq = append(r.ackq, recAck{id: id, readyAt: r.sched.Now() + r.cfg.Mode.PerMessageCPU()})
	if !r.ackTimerSet {
		r.armAckTimer(r.cfg.Mode.PerMessageCPU())
	}
}

func (r *Recorder) armAckTimer(d simtime.Time) {
	r.ackTimerSet = true
	epoch := r.epoch
	r.sched.After(d, func() {
		if r.epoch != epoch || r.crashed {
			return
		}
		r.flushRecorderAcks()
	})
}

// flushRecorderAcks broadcasts every ready queued acknowledgement. A batch
// of one keeps the legacy single-id wire form (the frame's ID field, empty
// Body); larger batches pack an id list into the Body.
func (r *Recorder) flushRecorderAcks() {
	r.ackTimerSet = false
	now := r.sched.Now()
	ready := 0
	for ready < len(r.ackq) && r.ackq[ready].readyAt <= now {
		ready++
	}
	for start := 0; start < ready; {
		n := ready - start
		if n > maxAckIDsPerFrame {
			n = maxAckIDsPerFrame
		}
		f := &frame.Frame{Type: frame.RecorderAck, Dst: frame.Broadcast, ID: r.ackq[start].id}
		if n > 1 {
			body := make([]byte, 0, n*frame.AckIDLen)
			for _, a := range r.ackq[start : start+n] {
				body = frame.AppendAckID(body, a.id)
			}
			f.Body = body
		}
		r.stats.RecorderAcksSent++
		r.ep.SendRaw(f)
		start += n
	}
	r.ackq = append(r.ackq[:0], r.ackq[ready:]...)
	if len(r.ackq) > 0 {
		r.armAckTimer(r.ackq[0].readyAt - now)
	}
}

// allocStored takes a storedMsg node from the pool (or the heap); the caller
// overwrites every field, reusing Body and Link capacity.
func (r *Recorder) allocStored() *storedMsg {
	if k := len(r.smFree); k > 0 {
		sm := r.smFree[k-1]
		r.smFree[k-1] = nil
		r.smFree = r.smFree[:k-1]
		return sm
	}
	return &storedMsg{}
}

// recycleStored returns a node whose Body and Link were never exposed
// outside the recorder (drop paths only) for full reuse.
func (r *Recorder) recycleStored(sm *storedMsg) {
	if len(r.smFree) < 1024 {
		r.smFree = append(r.smFree, sm)
	}
}

// releaseStored retires a node whose Body/Link now alias an archived copy
// (e.Arrivals or preArrivals): the struct is reused but its buffers are
// detached so the archive keeps sole ownership.
func (r *Recorder) releaseStored(sm *storedMsg) {
	sm.Body, sm.Link = nil, nil
	r.recycleStored(sm)
}

// observeAck assigns arrival order from a legacy single-message Ack frame:
// "It is possible to discover the order in which messages are received at
// the receiving node by tracing the acknowledgements sent in response to
// messages" (§4.4.1). The ack's From is the receiving process.
func (r *Recorder) observeAck(f *frame.Frame) {
	r.stats.AcksSeen++
	r.observeAckRecord(f.ID, f.From)
}

// observeAckRecord processes one acknowledgement — id accepted by process
// rcv — from either a standalone Ack frame or a piggybacked record.
func (r *Recorder) observeAckRecord(id frame.MsgID, rcv frame.ProcID) {
	sm, ok := r.pending[id]
	if !ok {
		return // duplicate ack, untracked message, or our own traffic
	}
	if r.cfg.Shards != nil && !r.ownsProc(rcv) {
		delete(r.pending, id)
		r.recycleStored(sm)
		return // another shard's arrival
	}
	e := r.db[rcv]
	if e == nil {
		// Accepted before the destination's creation notice arrived:
		// buffer until registration. Bounded per process.
		delete(r.pending, id)
		if rcv.Local != 0 && rcv != r.cfg.Proc && len(r.preArrivals[rcv]) < 1024 {
			r.preArrivals[rcv] = append(r.preArrivals[rcv], *sm)
			r.releaseStored(sm)
		} else {
			r.recycleStored(sm)
		}
		return
	}
	if e.Dead || e.have[id] {
		delete(r.pending, id)
		r.recycleStored(sm)
		return
	}
	delete(r.pending, id)
	// Cumulative-ack inference: the transport delivers each sender's stream
	// in sequence order, so this ack also proves every lower-sequence
	// message from the same sender to this process arrived — their own acks
	// were snooped past (tap miss). Left pending they would be lost from
	// the replay basis forever, since the sender has its ack and will never
	// retransmit. Promote them, in sequence order, ahead of this arrival.
	// (Caveat: a sender that exhausted retries below this sequence makes
	// the inference wrong, but that run already lost a guaranteed message.)
	var earlier []*storedMsg
	for id, p := range r.pending {
		if p.From == sm.From && p.To == e.Proc && id.Seq < sm.ID.Seq {
			earlier = append(earlier, p)
		}
	}
	sort.Slice(earlier, func(i, j int) bool { return earlier[i].ID.Seq < earlier[j].ID.Seq })
	for _, p := range earlier {
		delete(r.pending, p.ID)
		if e.have[p.ID] {
			r.recycleStored(p)
			continue
		}
		r.stats.MissedArrivals++
		r.recordArrival(e, p, "published (#%d in stream, inferred from later ack)")
	}
	r.recordArrival(e, sm, "published (#%d in stream)")
}

// recordArrival appends one message to a process's published stream.
func (r *Recorder) recordArrival(e *procEntry, sm *storedMsg, format string) {
	sm.ArrSeq = e.ArrSeqNext
	e.ArrSeqNext++
	e.Arrivals = append(e.Arrivals, *sm)
	e.have[sm.ID] = true
	r.stats.ArrivalsRecorded++
	r.stats.BytesStored += uint64(len(sm.Body))
	r.publishLat.Observe(int64(r.sched.Now() - sm.SeenAt))
	r.persistMessage(e, sm)
	if r.log.Enabled() {
		// Event.Seq carries the acceptance-order position so online monitors
		// can check per-stream monotonicity without parsing Detail.
		r.log.AddMsgSeq(trace.KindPublish, int(r.cfg.Node), sm.ID.String(), e.Proc.String(), sm.ArrSeq, format, sm.ArrSeq)
	}
	r.releaseStored(sm)
}

// deliver handles guaranteed traffic addressed to the recording software:
// kernel notices, control replies, and query responses.
func (r *Recorder) deliver(f *frame.Frame) bool {
	if r.crashed {
		return false
	}
	if f.Type == frame.Unguaranteed {
		r.handlePong(f)
		return true
	}
	if f.To != r.cfg.Proc {
		return true // stray; accept and ignore
	}
	switch f.Channel {
	case chanCtlReply, chanQueryResp:
		if fn, ok := r.waiters[f.Code]; ok {
			delete(r.waiters, f.Code)
			fn(f)
		}
	case chanPeer:
		r.handlePeer(f)
	default:
		n, err := demos.DecodeNotice(f.Body)
		if err != nil {
			r.log.Add(trace.KindRecorder, int(r.cfg.Node), f.From.String(), "bad notice: %v", err)
			return true
		}
		r.handleNotice(n)
	}
	return true
}

func (r *Recorder) handleNotice(n *demos.Notice) {
	r.stats.Notices++
	switch n.Kind {
	case demos.NoticeCreated:
		if r.cfg.Shards != nil && !r.ownsProc(n.Proc) {
			// Another shard's stream: never enters this database, so the
			// recovery, catch-up, and query paths skip it automatically.
			delete(r.preArrivals, n.Proc)
			delete(r.preLastSent, n.Proc)
			return
		}
		e := r.db[n.Proc]
		if e == nil {
			e = &procEntry{Proc: n.Proc, have: make(map[frame.MsgID]bool)}
			r.db[n.Proc] = e
		}
		e.Spec = n.Spec
		e.Node = n.Proc.Node
		e.Dead = false
		e.LastCkAt = r.sched.Now()
		// Merge traffic that beat this notice to the recorder.
		if pre := r.preArrivals[n.Proc]; len(pre) > 0 {
			for i := range pre {
				sm := pre[i]
				if e.have[sm.ID] {
					continue
				}
				sm.ArrSeq = e.ArrSeqNext
				e.ArrSeqNext++
				e.Arrivals = append(e.Arrivals, sm)
				e.have[sm.ID] = true
				r.stats.ArrivalsRecorded++
				r.stats.BytesStored += uint64(len(sm.Body))
				r.persistMessage(e, &sm)
			}
			delete(r.preArrivals, n.Proc)
		}
		if ls, ok := r.preLastSent[n.Proc]; ok {
			if ls > e.LastSent {
				e.LastSent = ls
				r.persistLastSent(e)
			}
			delete(r.preLastSent, n.Proc)
		}
		r.persistProcMeta(e)
		r.log.Add(trace.KindRecorder, int(r.cfg.Node), n.Proc.String(), "registered %q", n.Spec.Name)

	case demos.NoticeDestroyed:
		delete(r.preArrivals, n.Proc)
		delete(r.preLastSent, n.Proc)
		r.cancelReplay(n.Proc)
		if r.catchingUp {
			delete(r.awaitCk, n.Proc)
			r.checkCaughtUp()
		}
		if e := r.db[n.Proc]; e != nil {
			e.Dead = true
			e.Arrivals = nil
			e.Advisories = nil
			r.persistDead(e)
			r.store.Invalidate(msgKey(n.Proc), e.ArrSeqNext)
			r.store.Invalidate(advKey(n.Proc), e.AdvSeqNext)
		}

	case demos.NoticeReadOrder:
		if e := r.db[n.Proc]; e != nil && !e.Dead {
			adv := advisory{ReadID: n.ReadID, HeadID: n.HeadID, AdvSeq: e.AdvSeqNext}
			e.AdvSeqNext++
			e.Advisories = append(e.Advisories, adv)
			r.stats.Advisories++
			r.persistAdvisory(e, &adv)
		}

	case demos.NoticeCheckpoint:
		complete := true
		if e := r.db[n.Proc]; e != nil && !e.Dead {
			complete = r.applyCheckpoint(e, n)
		}
		if complete {
			// Incomplete checkpoints (queued messages we never saw) keep
			// the catch-up phase open; the next one will be complete.
			r.noteCatchUpProgress(n.Proc)
		} else if r.catchingUp {
			r.RequestCheckpoint(n.Proc)
		}

	case demos.NoticeMigrated:
		if e := r.db[n.Proc]; e != nil && !e.Dead {
			e.Node = n.Node
			r.persistProcMeta(e)
			r.broadcastRoute(n.Proc, n.Node, r.routeRepeats())
			r.log.Add(trace.KindRecorder, int(r.cfg.Node), n.Proc.String(), "migrated to n%d", n.Node)
		}

	case demos.NoticeCrashed:
		r.stats.ProcessCrashes++
		if e := r.db[n.Proc]; e != nil && !e.Dead {
			r.log.Add(trace.KindDetect, int(r.cfg.Node), n.Proc.String(), "process fault reported")
			r.startRecovery(e, e.Node)
		}
	}
}

// applyCheckpoint installs a new checkpoint: "After the checkpoint has been
// reliably stored, older checkpoints and messages can be discarded"
// (§3.3.1). The replay basis becomes exactly the messages still queued at
// the process when the checkpoint was taken (the notice lists them in
// queue order), which stays correct even for a recorder whose stream has
// gaps from its own downtime (§6.3 catch-up). It reports whether the
// recorder could supply every queued message from its own records.
func (r *Recorder) applyCheckpoint(e *procEntry, n *demos.Notice) (complete bool) {
	if n.ReadCount < e.BaseReads {
		// A checkpoint from before the basis we already hold. Notices are
		// guaranteed messages, so one emitted before a recorder outage can be
		// retransmitted long after newer checkpoints landed; readCount is
		// monotonic per stream, so applying it would regress the basis.
		return true
	}
	byID := make(map[frame.MsgID]storedMsg, len(e.Arrivals))
	for _, sm := range e.Arrivals {
		byID[sm.ID] = sm
	}
	var retained []storedMsg
	missing := 0
	for _, id := range n.Queued {
		if sm, ok := byID[id]; ok {
			retained = append(retained, sm)
			delete(byID, id)
		} else {
			missing++
		}
	}
	// Of the remainder, only messages the process actually read before the
	// checkpoint are superseded. A message can be recorded yet neither read
	// nor queued: published at the tap while every receiver copy was lost
	// (corruption, receiver miss, ack-slot interference), so it is still in
	// flight via retransmission. Trimming it would drop it from the replay
	// basis forever. Trim exactly the consumed prefix of the read-order
	// stream; keep the in-flight tail behind the queued messages (queue
	// FIFO: a later arrival is read after everything queued now).
	consumed := n.ReadCount - e.BaseReads + e.trimDebt
	var trimmed []storedMsg
	idx := uint64(0)
	for _, sm := range reconstruct(e.Arrivals, e.Advisories) {
		if _, unqueued := byID[sm.ID]; !unqueued {
			continue // retained above, in queue order
		}
		if idx < consumed {
			trimmed = append(trimmed, sm)
		} else {
			retained = append(retained, sm)
		}
		idx++
	}
	// Reads the checkpoint vouches for but we could not trim are messages
	// whose records are still on their way (see trimDebt); their late records
	// extend the next checkpoint's consumed prefix.
	e.trimDebt = consumed - uint64(len(trimmed))
	e.Arrivals = retained
	e.Advisories = nil
	e.BaseReads = n.ReadCount
	e.Checkpoint = n.Checkpoint
	e.CkSendSeq = n.SendSeq
	e.CkReadCount = n.ReadCount
	e.CkStateKB = n.StateKB
	e.LastCkAt = r.sched.Now()
	// Note: trimmed ids stay in e.have so a late retransmission of an
	// already-consumed message can never re-enter the stream.
	r.stats.CheckpointsStored++
	r.persistCheckpoint(e, trimmed)
	r.log.Add(trace.KindCheckpoint, int(r.cfg.Node), e.Proc.String(),
		"stored checkpoint (%d KB, readCount=%d); %d messages discarded, %d retained, %d missing",
		n.StateKB, n.ReadCount, len(trimmed), len(retained), missing)
	return missing == 0
}

// reconstruct recovers the true read order of a stream from its arrival
// order plus the out-of-order read advisories (§4.4.2): pop in-order reads
// until the advised head is at the front, take the advised message, repeat;
// unadvised messages follow in arrival order.
func reconstruct(arrivals []storedMsg, advisories []advisory) []storedMsg {
	if len(advisories) == 0 {
		return append([]storedMsg(nil), arrivals...)
	}
	queue := append([]storedMsg(nil), arrivals...)
	replay := make([]storedMsg, 0, len(arrivals))
	for _, adv := range advisories {
		// In-order reads precede the advised out-of-order read.
		for len(queue) > 0 && queue[0].ID != adv.HeadID {
			replay = append(replay, queue[0])
			queue = queue[1:]
		}
		for i := range queue {
			if queue[i].ID == adv.ReadID {
				replay = append(replay, queue[i])
				queue = append(queue[:i], queue[i+1:]...)
				break
			}
		}
	}
	return append(replay, queue...)
}

// ReplayMsg is an exported view of one published message, in replay order.
type ReplayMsg struct {
	ID      frame.MsgID
	From    frame.ProcID
	Channel uint16
	Code    uint32
	Body    []byte
	Link    *frame.Link
}

// StreamMessages returns a process's published stream in reconstructed
// read order — the debugger's input (§6.5) and the recovery replay feed.
func (r *Recorder) StreamMessages(p frame.ProcID) []ReplayMsg {
	e := r.db[p]
	if e == nil {
		return nil
	}
	order := reconstruct(e.Arrivals, e.Advisories)
	out := make([]ReplayMsg, len(order))
	for i, m := range order {
		out[i] = ReplayMsg{ID: m.ID, From: m.From, Channel: m.Channel, Code: m.Code, Body: m.Body, Link: m.Link}
	}
	return out
}

// CheckpointOf returns a process's latest stored checkpoint, if any.
func (r *Recorder) CheckpointOf(p frame.ProcID) (blob []byte, sendSeq, readCount uint64, ok bool) {
	e := r.db[p]
	if e == nil || e.Checkpoint == nil {
		return nil, 0, 0, false
	}
	return e.Checkpoint, e.CkSendSeq, e.CkReadCount, true
}

// SpecOf returns a process's registered image spec.
func (r *Recorder) SpecOf(p frame.ProcID) (demos.ProcSpec, bool) {
	e := r.db[p]
	if e == nil {
		return demos.ProcSpec{}, false
	}
	return e.Spec, true
}

// LastSentOf returns the highest message id the process sent.
func (r *Recorder) LastSentOf(p frame.ProcID) uint64 {
	if e := r.db[p]; e != nil {
		return e.LastSent
	}
	return 0
}

// StreamSummary exposes a process's reconstructed replay order (tests,
// debugger).
func (r *Recorder) StreamSummary(p frame.ProcID) []frame.MsgID {
	e := r.db[p]
	if e == nil {
		return nil
	}
	order := reconstruct(e.Arrivals, e.Advisories)
	out := make([]frame.MsgID, len(order))
	for i, m := range order {
		out[i] = m.ID
	}
	return out
}

// sendCtl transmits a control message to a node's kernel process, with an
// optional reply callback correlated through the pseudo reply link's code.
func (r *Recorder) sendCtl(node frame.NodeID, to frame.ProcID, deliverToKernel bool, ctl *demos.CtlMsg, replyChan uint16, onReply func(*frame.Frame)) {
	r.sendSeq++
	f := &frame.Frame{
		Type:            frame.Guaranteed,
		Dst:             node,
		ID:              frame.MsgID{Sender: r.cfg.Proc, Seq: r.restartNumber<<40 | r.sendSeq},
		From:            r.cfg.Proc,
		To:              to,
		Channel:         demos.ChanRequest,
		DeliverToKernel: deliverToKernel,
		Body:            demos.EncodeCtl(ctl),
	}
	if onReply != nil {
		code := r.nextCode
		r.nextCode++
		r.waiters[code] = onReply
		f.PassedLink = &frame.Link{To: r.cfg.Proc, Channel: replyChan, Code: code}
	}
	r.ep.SendGuaranteed(f)
}

// isNoticeProc reports whether p is one of the recorder procs kernels send
// notices to.
func (r *Recorder) isNoticeProc(p frame.ProcID) bool {
	for _, q := range r.cfg.NoticeProcs {
		if q == p {
			return true
		}
	}
	return false
}

// CatchingUp reports whether the recorder is still in its §6.3 restart
// catch-up phase (declining recovery duties).
func (r *Recorder) CatchingUp() bool { return r.catchingUp }

// RequestCheckpoint asks a process's kernel to checkpoint it now (the
// checkpoint policy driver calls this).
func (r *Recorder) RequestCheckpoint(p frame.ProcID) {
	e := r.db[p]
	if e == nil || e.Dead || e.Recovering {
		return
	}
	r.sendCtl(e.Node, p, true, &demos.CtlMsg{Op: demos.OpCheckpoint}, 0, nil)
}

func gobIntoR(b []byte, v any) error {
	return gob.NewDecoder(bytes.NewReader(b)).Decode(v)
}
