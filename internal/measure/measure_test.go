package measure

import (
	"testing"

	"publishing/internal/recorder"
)

// Figure 5.7's prose anchors (the table body is lost from the source):
//   - without publishing, realTime − cpuTime = 1 ms (user-process time);
//   - with publishing the difference grows to ~3 ms (2 ms of network
//     transmission);
//   - publishing adds ~26 ms of kernel CPU per message.
func TestFig57ReproducesPaperDeltas(t *testing.T) {
	rows := Fig57Table()
	without, with := rows[0], rows[1]

	if d := without.RealMS - without.CPUMS; d < 0.5 || d > 1.5 {
		t.Fatalf("without publishing: real-cpu = %.2fms, paper says ~1ms (rows: %v)", d, rows)
	}
	if d := with.RealMS - with.CPUMS; d < 1.5 || d > 4.5 {
		t.Fatalf("with publishing: real-cpu = %.2fms, paper says ~3ms (rows: %v)", d, rows)
	}
	if d := with.CPUMS - without.CPUMS; d < 23 || d > 29 {
		t.Fatalf("publishing CPU overhead = %.2fms/message, paper says ~26ms (rows: %v)", d, rows)
	}
	if without.CPUMS <= 0 || with.CPUMS <= without.CPUMS {
		t.Fatalf("implausible rows: %v", rows)
	}
}

// Figure 5.8: 25 create/destroy cycles cost 608 ms without publishing and
// 5135 ms with it — an ~8.4× blow-up caused entirely by pushing the control
// messages through the network protocol. We assert the absolute numbers
// within ~15% and the ratio's shape.
func TestFig58ReproducesPaperNumbers(t *testing.T) {
	rows := Fig58Table()
	without, with := rows[0], rows[1]
	if without.TotalCPUMS < 500 || without.TotalCPUMS > 720 {
		t.Fatalf("without publishing = %.0fms, paper says 608ms", without.TotalCPUMS)
	}
	if with.TotalCPUMS < 4400 || with.TotalCPUMS > 5900 {
		t.Fatalf("with publishing = %.0fms, paper says 5135ms", with.TotalCPUMS)
	}
	ratio := with.TotalCPUMS / without.TotalCPUMS
	if ratio < 6 || ratio > 11 {
		t.Fatalf("publishing blow-up ratio = %.1f, paper's is ~8.4", ratio)
	}
}

// §5.2.2: 57 ms per message through the full kernel path, 12 ms after
// inlining, 0.8 ms intercepting at the media layer.
func TestPublishTimeLevels(t *testing.T) {
	levels := PublishTimeLevels()
	if len(levels) != 3 {
		t.Fatalf("levels = %v", levels)
	}
	want := map[recorder.ProcessMode]float64{
		recorder.ModeNaive:      57,
		recorder.ModeOptimized:  12,
		recorder.ModeMediaLayer: 0.8,
	}
	for _, l := range levels {
		w := want[l.Mode]
		if l.PerMS < w*0.95 || l.PerMS > w*1.05 {
			t.Fatalf("%v: measured %.2fms, want ~%.1fms", l.Mode, l.PerMS, w)
		}
	}
}

func TestRowFormatting(t *testing.T) {
	if Fig57(false).String() == "" || (PerProcess{}).String() == "" || (PublishCost{}).String() == "" {
		t.Fatal("formatting broken")
	}
}
