// Package measure ports the paper's DEMOS/MP measurements (§5.2) onto the
// cluster simulation. These are *measurements*, not table lookups: the
// Fig 5.6 program really runs on a simulated node, reads the virtual
// real-time clock and the kernel's accumulated CPU time, and the reported
// numbers emerge from the kernel cost model plus the medium — the same way
// the originals emerged from a VAX 11/750.
//
//   - Fig 5.7: per-message overheads of a 512-iteration self-send loop on a
//     quiescent system, with and without publishing.
//   - Fig 5.8: CPU cost of creating and destroying a null process 25 times
//     through the full process-control chain, with and without publishing.
//   - §5.2.2: the recorder's per-message publishing cost at the three
//     implementation points (57 ms naive, 12 ms inlined, 0.8 ms media
//     layer), measured as recorder CPU per published message.
package measure

import (
	"fmt"

	"publishing"
	"publishing/internal/demos"
	"publishing/internal/recorder"
	"publishing/internal/simtime"
)

// PerMessage is one row of Figure 5.7.
type PerMessage struct {
	Publishing bool
	RealMS     float64
	CPUMS      float64
}

// String formats the row.
func (p PerMessage) String() string {
	tag := "without"
	if p.Publishing {
		tag = "with"
	}
	return fmt.Sprintf("%-7s realTime=%.1fms cpuTime=%.1fms", tag, p.RealMS, p.CPUMS)
}

// measureCluster builds a quiescent single-node cluster.
func measureCluster(pub bool, medium publishing.MediumKind) *publishing.Cluster {
	cfg := publishing.DefaultConfig(1)
	cfg.Medium = medium
	cfg.Publishing = pub
	// Keep the system quiescent: no watchdog chatter during measurement.
	cfg.WatchInterval = 10 * simtime.Minute
	return publishing.New(cfg)
}

// Fig57 runs the Fig 5.6 measurement program — 512 self-sends — and
// returns the per-message real and CPU times.
func Fig57(pub bool) PerMessage {
	c := measureCluster(pub, publishing.MediumPerfect)
	const iters = 512
	var realPer, cpuPer simtime.Time
	done := false
	c.Registry().RegisterProgram("fig56", func(args []byte) publishing.Program {
		return func(ctx *publishing.PCtx) {
			l := ctx.CreateLink(0, 0)
			body := make([]byte, 128)
			// --- Get the value of the real time clock (Fig 5.6) ---
			startReal := ctx.RealTime()
			// --- Get the CPU time spent outside the idle loop ---
			startCPU := ctx.RunTime()
			// --- Send the message 512 times ---
			for i := 0; i < iters; i++ {
				if err := ctx.Send(l, body, publishing.NoLink); err != nil {
					panic(err)
				}
				ctx.Receive()
			}
			// --- Calculate time for each Send/Receive ---
			realPer = (ctx.RealTime() - startReal) / iters
			cpuPer = (ctx.RunTime() - startCPU) / iters
			done = true
		}
	})
	if _, err := c.Spawn(0, publishing.ProcSpec{Name: "fig56", Recoverable: true}); err != nil {
		panic(err)
	}
	c.Run(5 * simtime.Minute)
	if !done {
		panic("measure: Fig 5.6 program did not finish")
	}
	return PerMessage{Publishing: pub, RealMS: realPer.Milliseconds(), CPUMS: cpuPer.Milliseconds()}
}

// Fig57Table returns both rows of Figure 5.7.
func Fig57Table() [2]PerMessage {
	return [2]PerMessage{Fig57(false), Fig57(true)}
}

// PerProcess is one row of Figure 5.8: total CPU for 25 create/destroy
// cycles of a null process.
type PerProcess struct {
	Publishing bool
	TotalCPUMS float64
}

// String formats the row.
func (p PerProcess) String() string {
	tag := "without"
	if p.Publishing {
		tag = "with"
	}
	return fmt.Sprintf("%-7s cpuTime=%.0fms", tag, p.TotalCPUMS)
}

// Fig58 creates and destroys a null process 25 times through the process
// manager → memory scheduler → kernel process chain and reports the
// system's total kernel CPU increase.
func Fig58(pub bool) PerProcess {
	cfg := publishing.DefaultConfig(1)
	cfg.Publishing = pub
	cfg.WatchInterval = 10 * simtime.Minute
	cfg.SystemProcs = true
	c := publishing.New(cfg)

	c.Registry().RegisterProgram("null", func(args []byte) publishing.Program {
		return func(ctx *publishing.PCtx) { ctx.Receive() }
	})
	const cycles = 25
	var startCPU, endCPU simtime.Time
	done := false
	c.Registry().RegisterProgram("driver", func(args []byte) publishing.Program {
		return func(ctx *publishing.PCtx) {
			pm, err := ctx.ServiceLink("procmgr")
			if err != nil {
				panic(err)
			}
			startCPU = ctx.RunTime()
			for i := 0; i < cycles; i++ {
				_, ctl, err := ctx.CreateProcess(pm, publishing.ProcSpec{Name: "null", Recoverable: true}, 0)
				if err != nil {
					panic(err)
				}
				if err := ctx.DestroyProcess(ctl); err != nil {
					panic(err)
				}
			}
			endCPU = ctx.RunTime()
			done = true
		}
	})
	// Let the system processes finish booting before measuring.
	c.Run(10 * simtime.Second)
	if _, err := c.Spawn(0, publishing.ProcSpec{Name: "driver", Recoverable: true}); err != nil {
		panic(err)
	}
	c.Run(30 * simtime.Minute)
	if !done {
		panic("measure: Fig 5.8 driver did not finish")
	}
	return PerProcess{Publishing: pub, TotalCPUMS: (endCPU - startCPU).Milliseconds()}
}

// Fig58Table returns both rows of Figure 5.8.
func Fig58Table() [2]PerProcess {
	return [2]PerProcess{Fig58(false), Fig58(true)}
}

// PublishCost is one §5.2.2 measurement: recorder CPU per published
// message under one implementation mode.
type PublishCost struct {
	Mode  recorder.ProcessMode
	PerMS float64
}

// String formats the measurement.
func (p PublishCost) String() string {
	return fmt.Sprintf("%-12s %.2fms/message", p.Mode, p.PerMS)
}

// PublishTimeLevels measures the recorder's per-message cost at all three
// §5.2.2 implementation points by running a message workload and dividing
// accumulated publish CPU by messages seen.
func PublishTimeLevels() []PublishCost {
	var out []PublishCost
	for _, mode := range []recorder.ProcessMode{recorder.ModeNaive, recorder.ModeOptimized, recorder.ModeMediaLayer} {
		cfg := publishing.DefaultConfig(2)
		cfg.RecorderMode = mode
		cfg.WatchInterval = 10 * simtime.Minute
		c := publishing.New(cfg)
		c.Registry().RegisterMachine("sink", func(args []byte) publishing.Machine { return &sinkMachine{} })
		c.Registry().RegisterProgram("gen", func(args []byte) publishing.Program {
			return func(ctx *publishing.PCtx) {
				sl, _ := ctx.ServiceLink("sink")
				for i := 0; i < 50; i++ {
					_ = ctx.Send(sl, make([]byte, 128), publishing.NoLink)
				}
			}
		})
		sink, err := c.Spawn(1, publishing.ProcSpec{Name: "sink", Recoverable: true})
		if err != nil {
			panic(err)
		}
		c.SetService("sink", sink)
		if _, err := c.Spawn(0, publishing.ProcSpec{Name: "gen", Recoverable: true}); err != nil {
			panic(err)
		}
		c.Run(5 * simtime.Minute)
		st := c.Recorder().Stats()
		if st.MessagesSeen == 0 {
			panic("measure: recorder saw no messages")
		}
		out = append(out, PublishCost{
			Mode:  mode,
			PerMS: (st.PublishCPU / simtime.Time(st.MessagesSeen)).Milliseconds(),
		})
	}
	return out
}

// sinkMachine discards messages.
type sinkMachine struct{ n int }

func (s *sinkMachine) Init(ctx *publishing.PCtx)                {}
func (s *sinkMachine) Handle(ctx *publishing.PCtx, m demos.Msg) { s.n++ }
func (s *sinkMachine) Snapshot() ([]byte, error)                { return []byte{byte(s.n)}, nil }
func (s *sinkMachine) Restore(b []byte) error                   { s.n = int(b[0]); return nil }
