package measure

import (
	"fmt"

	"publishing"
	"publishing/internal/simtime"
	"publishing/internal/trace"
)

// RecoveryResult is one RecoveryReplay measurement: the virtual-time cost of
// a full crash → detect → recreate → replay → done cycle, which the paper's
// recovery cost model (§5.2, Fig 3.1) says is dominated by replaying the
// published stream.
type RecoveryResult struct {
	// Window is the virtual time from the crash to recovery-done.
	Window simtime.Time
	// Replayed is how many published messages the recorder replayed.
	Replayed uint64
}

// PerMsgMS is the recovery window divided by the replayed-message count, in
// virtual milliseconds — the quantity that distinguishes a replay that
// scales with message count from one that scales with bytes.
func (r RecoveryResult) PerMsgMS() float64 {
	if r.Replayed == 0 {
		return 0
	}
	return (r.Window / simtime.Time(r.Replayed)).Milliseconds()
}

// RecoveryReplay runs the standard producer → worker → witness pipeline
// until the worker has an n-message published stream, crashes the worker,
// and measures the recovery window. tune, when non-nil, may adjust the
// cluster config (replay knobs, medium) before the cluster is built. The
// scenario panics on any correctness violation — lost or duplicated
// deliveries at the witness — so benchmarks cannot quietly measure a broken
// recovery.
func RecoveryReplay(n int, tune func(*publishing.Config)) RecoveryResult {
	cfg := publishing.DefaultConfig(3)
	// Keep the watchdogs quiet: process-crash detection is via the kernel's
	// fault notice, and ping chatter would pollute the replay window.
	cfg.WatchInterval = 10 * simtime.Minute
	if tune != nil {
		tune(&cfg)
	}
	c := publishing.New(cfg)

	var got int
	c.Registry().RegisterMachine("witness", func(args []byte) publishing.Machine {
		return &recWitness{got: &got}
	})
	c.Registry().RegisterMachine("worker", func(args []byte) publishing.Machine {
		return &recWorker{}
	})
	c.Registry().RegisterProgram("producer", func(args []byte) publishing.Program {
		return func(ctx *publishing.PCtx) {
			l, err := ctx.ServiceLink("worker")
			if err != nil {
				panic(err)
			}
			body := make([]byte, 48)
			for j := 0; j < n; j++ {
				body[0] = byte(j)
				if err := ctx.Send(l, body, publishing.NoLink); err != nil {
					panic(err)
				}
			}
		}
	})
	wit, err := c.Spawn(2, publishing.ProcSpec{Name: "witness", Recoverable: true})
	if err != nil {
		panic(err)
	}
	c.SetService("witness", wit)
	worker, err := c.Spawn(1, publishing.ProcSpec{Name: "worker", Recoverable: true})
	if err != nil {
		panic(err)
	}
	c.SetService("worker", worker)
	if _, err := c.Spawn(0, publishing.ProcSpec{Name: "producer", Recoverable: true}); err != nil {
		panic(err)
	}

	feed := 2*simtime.Minute + simtime.Time(n)*150*simtime.Millisecond
	if !c.RunUntil(func() bool { return got == n }, feed) {
		panic(fmt.Sprintf("measure: pipeline stalled feeding %d messages (%d delivered)", n, got))
	}
	c.CrashProcess(worker)
	recover := simtime.Minute + simtime.Time(n)*50*simtime.Millisecond
	if !c.RunUntil(func() bool { return c.Recorder().Stats().RecoveriesCompleted >= 1 }, recover) {
		panic(fmt.Sprintf("measure: recovery of %d-message stream did not finish", n))
	}
	if got != n {
		panic(fmt.Sprintf("measure: witness saw %d messages after recovery, want %d (suppression broken)", got, n))
	}

	var crashAt, doneAt simtime.Time
	for _, e := range c.Trace().OfKind(trace.KindCrash) {
		if e.Subject == worker.String() {
			crashAt = e.At
			break
		}
	}
	for _, e := range c.Trace().OfKind(trace.KindRecoveryDone) {
		if e.Subject == worker.String() {
			doneAt = e.At
		}
	}
	return RecoveryResult{
		Window:   doneAt - crashAt,
		Replayed: c.Recorder().Stats().MessagesReplayed,
	}
}

// recWorker forwards each received message's tag to the witness.
type recWorker struct {
	out    publishing.LinkID
	hasOut bool
	n      uint32
}

func (w *recWorker) Init(ctx *publishing.PCtx) {
	if l, err := ctx.ServiceLink("witness"); err == nil {
		w.out, w.hasOut = l, true
	}
}

func (w *recWorker) Handle(ctx *publishing.PCtx, m publishing.Msg) {
	w.n++
	if w.hasOut {
		tag := byte(0)
		if len(m.Body) > 0 {
			tag = m.Body[0]
		}
		_ = ctx.Send(w.out, []byte{tag}, publishing.NoLink)
	}
}

func (w *recWorker) Snapshot() ([]byte, error) {
	return []byte{byte(w.out), boolByte(w.hasOut), byte(w.n >> 16), byte(w.n >> 8), byte(w.n)}, nil
}

func (w *recWorker) Restore(b []byte) error {
	w.out, w.hasOut = publishing.LinkID(b[0]), b[1] == 1
	w.n = uint32(b[2])<<16 | uint32(b[3])<<8 | uint32(b[4])
	return nil
}

// recWitness counts deliveries into an external cell.
type recWitness struct{ got *int }

func (s *recWitness) Init(ctx *publishing.PCtx)                     {}
func (s *recWitness) Handle(ctx *publishing.PCtx, m publishing.Msg) { *s.got++ }
func (s *recWitness) Snapshot() ([]byte, error)                     { return nil, nil }
func (s *recWitness) Restore(b []byte) error                        { return nil }

func boolByte(b bool) byte {
	if b {
		return 1
	}
	return 0
}
