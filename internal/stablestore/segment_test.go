package stablestore

import (
	"bytes"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"testing"
)

func rec(key string, seq uint64, data string) Record {
	return Record{Kind: KindMessage, Key: key, Seq: seq, Data: []byte(data)}
}

func TestSegmentAppendReadBack(t *testing.T) {
	s := NewSegmented(0)
	for i := 0; i < 10; i++ {
		if _, err := s.Append(rec("p1.1", uint64(i), fmt.Sprintf("m%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	recs, err := s.ReadKey("p1.1")
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 10 {
		t.Fatalf("got %d records, want 10", len(recs))
	}
	for i, r := range recs {
		if r.Seq != uint64(i) || string(r.Data) != fmt.Sprintf("m%d", i) {
			t.Fatalf("record %d = %+v", i, r)
		}
	}
}

// Group commit: records buffer in the active segment and one Flush covers
// the whole window, feeding the batch observer.
func TestSegmentGroupCommit(t *testing.T) {
	s := NewSegmented(0)
	var batches []int
	s.SetBatchObserver(func(n int) { batches = append(batches, n) })
	for i := 0; i < 7; i++ {
		if _, err := s.Append(rec("k", uint64(i), "x")); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Flush(); err != nil {
		t.Fatal(err)
	}
	if err := s.Flush(); err != nil { // empty window: no commit
		t.Fatal(err)
	}
	for i := 7; i < 10; i++ {
		if _, err := s.Append(rec("k", uint64(i), "x")); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Flush(); err != nil {
		t.Fatal(err)
	}
	if len(batches) != 2 || batches[0] != 7 || batches[1] != 3 {
		t.Fatalf("batches = %v, want [7 3]", batches)
	}
	if st := s.Stats(); st.SegFlushes != 2 {
		t.Fatalf("SegFlushes = %d, want 2", st.SegFlushes)
	}
}

// Truncation drops whole segments whose live count hits zero — without
// visiting records — and the frontier segment straddling the truncation
// point is rewritten to only its live records.
func TestSegmentTruncationDropsDeadSegments(t *testing.T) {
	s := NewSegmented(256) // tiny segments: a few records each
	n := 100
	for i := 0; i < n; i++ {
		if _, err := s.Append(rec("k", uint64(i), "0123456789abcdef")); err != nil {
			t.Fatal(err)
		}
	}
	before := s.Stats()
	if before.SegSealed == 0 {
		t.Fatal("expected several sealed segments")
	}
	// Invalidate a prefix that ends mid-segment.
	cut := uint64(n/2 + 1)
	s.Invalidate("k", cut)
	dropped, err := s.Compact()
	if err != nil {
		t.Fatal(err)
	}
	if dropped != int(cut)+1 {
		t.Fatalf("dropped %d, want %d", dropped, cut+1)
	}
	st := s.Stats()
	if st.SegDropped == 0 {
		t.Fatal("no whole segments dropped")
	}
	if st.SegRewrites != 1 {
		t.Fatalf("SegRewrites = %d, want 1 (the frontier)", st.SegRewrites)
	}
	if st.BytesDead != 0 {
		t.Fatalf("BytesDead = %d after full truncation, want 0", st.BytesDead)
	}
	recs, err := s.ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != n-int(cut)-1 {
		t.Fatalf("%d records survive, want %d", len(recs), n-int(cut)-1)
	}
	for i, r := range recs {
		if want := cut + 1 + uint64(i); r.Seq != want {
			t.Fatalf("survivor %d has seq %d, want %d", i, r.Seq, want)
		}
	}
}

// A second compaction after everything died reclaims the rewritten
// frontier too, and out-of-order InvalidateSeqs maintain liveness.
func TestSegmentInvalidateSeqsAndFullDrain(t *testing.T) {
	s := NewSegmented(256)
	for i := 0; i < 40; i++ {
		if _, err := s.Append(rec("k", uint64(i), "payloadpayload")); err != nil {
			t.Fatal(err)
		}
	}
	// Kill a scattered subset first (non-prefix, like a checkpoint after
	// out-of-order channel reads), then the rest.
	var odd []uint64
	for i := 1; i < 40; i += 2 {
		odd = append(odd, uint64(i))
	}
	s.InvalidateSeqs("k", odd)
	s.Invalidate("k", 39)
	if _, err := s.Compact(); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Compact(); err != nil {
		t.Fatal(err)
	}
	recs, err := s.ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 0 {
		t.Fatalf("%d records survive a full drain", len(recs))
	}
	if st := s.Stats(); st.Segments != 0 || st.BytesDead != 0 {
		t.Fatalf("stats after drain: %+v", st)
	}
}

// A record invalidated before it is appended is born dead (the paged
// engine's compaction would drop it too — the engines must agree).
func TestSegmentAppendAfterInvalidate(t *testing.T) {
	s := NewSegmented(0)
	s.InvalidateSeqs("k", []uint64{5})
	s.Invalidate("k", 2)
	for i := 0; i < 8; i++ {
		if _, err := s.Append(rec("k", uint64(i), "x")); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := s.Compact(); err != nil {
		t.Fatal(err)
	}
	recs, _ := s.ReadAll()
	want := map[uint64]bool{3: true, 4: true, 6: true, 7: true}
	if len(recs) != len(want) {
		t.Fatalf("%d survivors, want %d", len(recs), len(want))
	}
	for _, r := range recs {
		if !want[r.Seq] {
			t.Fatalf("seq %d should be dead", r.Seq)
		}
	}
}

// Meta revisions shadow their predecessors so checkpoint truncation can
// reclaim segments interleaved with recorder metadata; checkpoint records
// keep full history (every revision's drop list matters to the rebuild).
func TestSegmentMetaRevisionShadowing(t *testing.T) {
	s := NewSegmented(256)
	for i := uint64(1); i <= 30; i++ {
		if _, err := s.Append(rec("msg:p1.1", i, "mmmmmmmmmmmm")); err != nil {
			t.Fatal(err)
		}
		if _, err := s.Append(Record{Kind: KindMeta, Key: "last:p1.1", Seq: i}); err != nil {
			t.Fatal(err)
		}
		if _, err := s.Append(Record{Kind: KindCheckpoint, Key: "ck:p1.1", Seq: i, Data: []byte("ck")}); err != nil {
			t.Fatal(err)
		}
	}
	s.Invalidate("msg:p1.1", 30)
	for i := 0; i < 10; i++ {
		if _, err := s.Compact(); err != nil {
			t.Fatal(err)
		}
	}
	recs, err := s.ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	metas, cks := 0, 0
	for _, r := range recs {
		switch r.Kind {
		case KindMessage:
			t.Fatalf("message seq %d survived full invalidation", r.Seq)
		case KindMeta:
			metas++
			if r.Seq != 30 {
				t.Fatalf("shadowed meta revision %d survived", r.Seq)
			}
		case KindCheckpoint:
			cks++
		}
	}
	if metas != 1 {
		t.Fatalf("%d meta records survive, want 1 (latest revision)", metas)
	}
	if cks != 30 {
		t.Fatalf("%d checkpoint records survive, want all 30", cks)
	}
}

// Oversized records (multi-page checkpoints) need no special casing: the
// segment simply grows past its seal threshold and seals after.
func TestSegmentOversizedRecords(t *testing.T) {
	s := NewSegmented(0)
	big := bytes.Repeat([]byte("c"), 3*PageSize)
	if _, err := s.Append(Record{Kind: KindCheckpoint, Key: "ck:p1.1", Seq: 1, Data: big}); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Append(rec("msg:p1.1", 1, "after")); err != nil {
		t.Fatal(err)
	}
	recs, err := s.ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 2 || !bytes.Equal(recs[0].Data, big) || string(recs[1].Data) != "after" {
		t.Fatalf("oversized round trip broken: %d records", len(recs))
	}
}

// ReadKey matches filtering ReadAll by key — the sparse index is an
// optimization, never a semantic change.
func TestSegmentReadKeyMatchesReadAllFilter(t *testing.T) {
	s := NewSegmented(512)
	keys := []string{"a", "b", "c"}
	for i := 0; i < 120; i++ {
		k := keys[i%len(keys)]
		if _, err := s.Append(rec(k, uint64(i/len(keys)), fmt.Sprintf("%s-%d", k, i))); err != nil {
			t.Fatal(err)
		}
	}
	all, err := s.ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	for _, k := range keys {
		var want []Record
		for _, r := range all {
			if r.Key == k {
				want = append(want, r)
			}
		}
		got, err := s.ReadKey(k)
		if err != nil {
			t.Fatal(err)
		}
		if len(got) != len(want) {
			t.Fatalf("key %s: %d vs %d", k, len(got), len(want))
		}
		for i := range got {
			if got[i].Seq != want[i].Seq || !bytes.Equal(got[i].Data, want[i].Data) {
				t.Fatalf("key %s record %d: %+v vs %+v", k, i, got[i], want[i])
			}
		}
	}
}

// The same operation sequence fed to both engines yields byte-identical
// ReadAll sequences (pre-compaction) — the store half of the cross-backend
// recovery oracle.
func TestSegmentPagedReadAllIdentical(t *testing.T) {
	p := New()
	s := NewSegmented(512)
	ops := func(st Store) {
		for i := 0; i < 200; i++ {
			k := fmt.Sprintf("msg:p%d.1", i%5)
			if _, err := st.Append(Record{Kind: KindMessage, Key: k, Seq: uint64(i / 5), Data: []byte(fmt.Sprintf("body-%d", i))}); err != nil {
				t.Fatal(err)
			}
			if i%17 == 0 {
				if err := st.Flush(); err != nil {
					t.Fatal(err)
				}
			}
			if i%31 == 0 {
				st.Invalidate(fmt.Sprintf("msg:p%d.1", i%5), uint64(i/10))
			}
		}
	}
	ops(p)
	ops(s)
	pr, err := p.ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	sr, err := s.ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(pr) != len(sr) {
		t.Fatalf("record counts differ: paged %d, segmented %d", len(pr), len(sr))
	}
	for i := range pr {
		if pr[i].Kind != sr[i].Kind || pr[i].Key != sr[i].Key || pr[i].Seq != sr[i].Seq || !bytes.Equal(pr[i].Data, sr[i].Data) {
			t.Fatalf("record %d differs: paged %+v, segmented %+v", i, pr[i], sr[i])
		}
	}
}

func TestSegmentFileBackedReload(t *testing.T) {
	dir := t.TempDir()
	s, err := OpenSegmented(dir, 512)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 50; i++ {
		if _, err := s.Append(rec("k", uint64(i), fmt.Sprintf("v%02d", i))); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	re, err := OpenSegmented(dir, 512)
	if err != nil {
		t.Fatal(err)
	}
	recs, err := re.ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 50 {
		t.Fatalf("reloaded %d records, want 50", len(recs))
	}
	for i, r := range recs {
		if r.Seq != uint64(i) || string(r.Data) != fmt.Sprintf("v%02d", i) {
			t.Fatalf("record %d = %+v", i, r)
		}
	}
	// Keep writing after reopen; truncation must remove segment files.
	for i := 50; i < 60; i++ {
		if _, err := re.Append(rec("k", uint64(i), "x")); err != nil {
			t.Fatal(err)
		}
	}
	re.Invalidate("k", 59)
	for i := 0; i < 4; i++ {
		if _, err := re.Compact(); err != nil {
			t.Fatal(err)
		}
	}
	if err := re.Close(); err != nil {
		t.Fatal(err)
	}
	files, _ := filepath.Glob(filepath.Join(dir, "seg-*.seg"))
	if len(files) != 0 {
		t.Fatalf("%d segment files survive a full drain: %v", len(files), files)
	}
}

// pagedRebuildOfPrefix feeds the first n of recs into a fresh paged store
// and returns its ReadAll — the §4.5 reference rebuild the crash-recovery
// assertions compare against.
func pagedRebuildOfPrefix(t *testing.T, recs []Record, n int) []Record {
	t.Helper()
	p := New()
	for _, r := range recs[:n] {
		if _, err := p.Append(r); err != nil {
			t.Fatal(err)
		}
	}
	out, err := p.ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	return out
}

func sameRecords(t *testing.T, got, want []Record) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%d records, want %d", len(got), len(want))
	}
	for i := range got {
		if got[i].Kind != want[i].Kind || got[i].Key != want[i].Key ||
			got[i].Seq != want[i].Seq || !bytes.Equal(got[i].Data, want[i].Data) {
			t.Fatalf("record %d: got %+v, want %+v", i, got[i], want[i])
		}
	}
}

// Crash after a partial segment write: the torn tail is discarded, the
// valid record prefix survives, and the rebuilt DB equals the paged-store
// rebuild of the same prefix.
func TestSegmentCrashRecoveryTornTail(t *testing.T) {
	dir := t.TempDir()
	s, err := OpenSegmented(dir, DefaultSegmentBytes)
	if err != nil {
		t.Fatal(err)
	}
	var all []Record
	for i := 0; i < 30; i++ {
		r := rec("msg:p1.1", uint64(i), fmt.Sprintf("body-%04d", i))
		all = append(all, r)
		if _, err := s.Append(r); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Flush(); err != nil {
		t.Fatal(err)
	}
	// Crash: no Close, no seal. Tear the last record by chopping 5 bytes.
	files, _ := filepath.Glob(filepath.Join(dir, "seg-*.seg"))
	if len(files) != 1 {
		t.Fatalf("expected 1 segment file, found %v", files)
	}
	info, err := os.Stat(files[0])
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Truncate(files[0], info.Size()-5); err != nil {
		t.Fatal(err)
	}

	re, err := OpenSegmented(dir, DefaultSegmentBytes)
	if err != nil {
		t.Fatal(err)
	}
	got, err := re.ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	sameRecords(t, got, pagedRebuildOfPrefix(t, all, 29))

	// The recovered store must be re-sealed: a second open is identical.
	if err := re.Close(); err != nil {
		t.Fatal(err)
	}
	re2, err := OpenSegmented(dir, DefaultSegmentBytes)
	if err != nil {
		t.Fatal(err)
	}
	got2, err := re2.ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	sameRecords(t, got2, got)
}

// Crash between the index write and the data sync: the footer and index
// are intact on disk but the data region is damaged (lost write). The data
// CRC catches it and recovery falls back to the longest valid record
// prefix — again equal to the paged rebuild of that prefix.
func TestSegmentCrashRecoveryIndexBeforeDataSync(t *testing.T) {
	dir := t.TempDir()
	s, err := OpenSegmented(dir, 1024)
	if err != nil {
		t.Fatal(err)
	}
	var all []Record
	for i := 0; i < 80; i++ {
		r := rec("msg:p1.1", uint64(i), fmt.Sprintf("body-%04d", i))
		all = append(all, r)
		if _, err := s.Append(r); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	files, _ := filepath.Glob(filepath.Join(dir, "seg-*.seg"))
	if len(files) < 2 {
		t.Fatalf("expected several sealed segments, found %v", files)
	}
	// Damage the data region of the first sealed segment: zero a record
	// header a few records in, as if that data page never reached disk even
	// though the index (written later, synced earlier) did.
	b, err := os.ReadFile(files[0])
	if err != nil {
		t.Fatal(err)
	}
	recs, sealed, _ := decodeSegment(b)
	if !sealed || len(recs) < 4 {
		t.Fatalf("segment 0: sealed=%v records=%d", sealed, len(recs))
	}
	off := 0
	for i := 0; i < 3; i++ { // offset of record 3
		off += (&recs[i]).encodedLen()
	}
	for i := 0; i < 4; i++ {
		b[off+i] = 0
	}
	if err := os.WriteFile(files[0], b, 0o644); err != nil {
		t.Fatal(err)
	}

	re, err := OpenSegmented(dir, 1024)
	if err != nil {
		t.Fatal(err)
	}
	got, err := re.ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	// Survivors: records 0..2 of the damaged segment, then every later
	// segment in full. That is NOT a clean prefix of the whole log, so
	// compare against the paged rebuild of the matching record subset.
	want := append([]Record(nil), all[:3]...)
	want = append(want, all[len(recs):]...)
	p := New()
	for _, r := range want {
		if _, err := p.Append(r); err != nil {
			t.Fatal(err)
		}
	}
	pref, err := p.ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	sameRecords(t, got, pref)
}

func TestSegmentWriteFaultInjection(t *testing.T) {
	s := NewSegmented(0)
	if _, err := s.Append(rec("k", 1, "ok")); err != nil {
		t.Fatal(err)
	}
	boom := errors.New("disk on fire")
	s.SetWriteFault(func() error { return boom })
	if err := s.Flush(); !errors.Is(err, boom) {
		t.Fatalf("Flush error = %v, want injected fault", err)
	}
	if st := s.Stats(); st.WriteFaults != 1 {
		t.Fatalf("WriteFaults = %d, want 1", st.WriteFaults)
	}
	s.SetWriteFault(nil)
	if err := s.Flush(); err != nil {
		t.Fatalf("Flush after clearing fault: %v", err)
	}
}

func TestSegmentPagesFootprint(t *testing.T) {
	s := NewSegmented(256)
	if s.Pages() != 0 {
		t.Fatalf("empty store footprint = %d", s.Pages())
	}
	for i := 0; i < 60; i++ {
		if _, err := s.Append(rec("k", uint64(i), "0123456789abcdef")); err != nil {
			t.Fatal(err)
		}
	}
	if got, want := s.Pages(), int(s.Stats().Segments); got != want {
		t.Fatalf("Pages() = %d, Stats().Segments = %d", got, want)
	}
	if s.Pages() < 2 {
		t.Fatalf("footprint %d, want several tiny segments", s.Pages())
	}
}

// The liveness manifest: records invalidated before Close are skipped at
// reopen (never decoded, never indexed), while marks made after a sealed
// segment's tail reached disk — without a clean Close to refresh the
// manifest — stay volatile and resurrect, to be re-dropped by the
// recorder's rebuild. Meta shadowing marks must survive the trip too.
func TestSegmentManifestReopenSkipsDead(t *testing.T) {
	dir := t.TempDir()
	s, err := OpenSegmented(dir, 256)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 40; i++ {
		if _, err := s.Append(rec("k", uint64(i), fmt.Sprintf("v%02d", i))); err != nil {
			t.Fatal(err)
		}
	}
	// Two meta revisions: reopen must keep only the newer.
	for _, q := range []uint64{1, 2} {
		if _, err := s.Append(Record{Kind: KindMeta, Key: "meta:x", Seq: q, Data: []byte{byte(q)}}); err != nil {
			t.Fatal(err)
		}
	}
	// Marks before Close: both the born-dead and the sealed-segment
	// (manifest-refresh) variants land in the on-disk bitmaps.
	s.Invalidate("k", 9)
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	re, err := OpenSegmented(dir, 256)
	if err != nil {
		t.Fatal(err)
	}
	recs, err := re.ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	var keys []string
	for _, r := range recs {
		if r.Kind == KindMessage && r.Seq <= 9 {
			t.Fatalf("reopen resurrected invalidated record %+v", r)
		}
		if r.Kind == KindMeta {
			if r.Seq != 2 {
				t.Fatalf("reopen kept shadowed meta revision %d", r.Seq)
			}
			keys = append(keys, r.Key)
		}
	}
	if want := 40 - 10 + 1; len(recs) != want {
		t.Fatalf("reopen loaded %d records, want %d", len(recs), want)
	}
	if len(keys) != 1 {
		t.Fatalf("reopen kept %d meta revisions, want 1", len(keys))
	}

	// Marks after the manifest reached disk, with no Close before the
	// "crash": stale manifest, records resurrect.
	re.Invalidate("k", 19)
	if err := re.Flush(); err != nil {
		t.Fatal(err)
	}
	// No Close: reopen the directory as-is.
	re2, err := OpenSegmented(dir, 256)
	if err != nil {
		t.Fatal(err)
	}
	recs2, err := re2.ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	n := 0
	for _, r := range recs2 {
		if r.Kind == KindMessage && r.Seq >= 10 && r.Seq <= 19 {
			n++
		}
	}
	if n != 10 {
		t.Fatalf("stale-manifest reopen kept %d of the 10 late-invalidated records", n)
	}
	if err := re2.Close(); err != nil {
		t.Fatal(err)
	}
}
