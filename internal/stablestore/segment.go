// The log-structured segment engine: the recorder's high-volume backend.
//
// The thesis removes disk saturation "by allowing messages to be written
// out in 4k byte buffers rather than forcing one disk write per message"
// (§5.1). Segmented generalizes that buffering discipline from one page to
// one segment: appends land in an active in-memory segment and are
// committed at group-commit boundaries — one Flush covers every record that
// arrived in the same flush window. Sealed segments are immutable (files in
// file mode, byte slices in sim mode) and carry a per-segment sparse index
// keyed (key, seq) with min/max seq bounds per key, so ReadKey, replay
// iteration, and InvalidateSeqs resolve by segment-bound comparison instead
// of page-chain walks. Each segment maintains a liveness counter at
// invalidation time; checkpoint truncation drops whole segments whose live
// count hits zero — O(segments), not O(records) — and a compactor run at
// quiescence (Compact) rewrites the single frontier segment that straddles
// the truncation point.
package stablestore

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"math/bits"
	"os"
	"path/filepath"
	"sort"
	"sync"
)

// DefaultSegmentBytes is the seal threshold for the segmented engine: 64
// pages' worth of the §5.1 buffering discipline. Larger segments amortize
// seal/IO cost over more records; smaller ones truncate at a finer grain —
// 256 KiB is the measured sweet spot for million-record workloads (see
// BENCH_store.json) while keeping checkpoint truncation responsive.
const DefaultSegmentBytes = 64 * PageSize

// recHeaderLen is the fixed part of an encoded record (kind, keylen, seq,
// datalen) — encodedLen minus key and payload.
const recHeaderLen = 1 + 2 + 8 + 4

// keyRun is one key's slice of a segment's sparse index: the seqs and
// record ordinals of that key's records, with min/max bounds so Invalidate
// and InvalidateSeqs can skip whole segments by bound comparison.
type keyRun struct {
	seqs           []uint64
	ords           []uint32
	minSeq, maxSeq uint64
}

// segment is one log segment. Until sealed it is the active append target;
// sealed segments are immutable (only the liveness metadata — dead bitmap
// and counters — mutates afterwards).
type segment struct {
	id     uint64
	data   []byte
	recOff []uint32 // record start offsets; len = count+1, last = len(data)
	keys   map[string]*keyRun
	dead   []uint64 // bitmap over record ordinals
	deadN  int      // records marked dead
	sealed bool
	// manifestStale is set when a sealed (file-backed) segment gains dead
	// marks after its tail was written; Close refreshes such manifests.
	manifestStale bool
}

func (g *segment) count() int { return len(g.recOff) - 1 }

func (g *segment) live() int { return g.count() - g.deadN }

func (g *segment) isDead(ord uint32) bool {
	return int(ord/64) < len(g.dead) && g.dead[ord/64]&(1<<(ord%64)) != 0
}

// markDead sets ord's dead bit, returning false if it already was.
func (g *segment) markDead(ord uint32) bool {
	for int(ord/64) >= len(g.dead) {
		g.dead = append(g.dead, 0)
	}
	if g.dead[ord/64]&(1<<(ord%64)) != 0 {
		return false
	}
	g.dead[ord/64] |= 1 << (ord % 64)
	g.deadN++
	return true
}

// recSize returns ord's encoded length.
func (g *segment) recSize(ord uint32) int {
	return int(g.recOff[ord+1] - g.recOff[ord])
}

// run returns key's index run, creating it on first append.
func (g *segment) run(key string) *keyRun {
	kr := g.keys[key]
	if kr == nil {
		kr = &keyRun{minSeq: ^uint64(0)}
		g.keys[key] = kr
	}
	return kr
}

func newSegment(id uint64, capBytes int) *segment {
	// PageSize of slack: the record that pushes data past the seal
	// threshold must not reallocate (and copy) the whole segment.
	return &segment{
		id:     id,
		data:   make([]byte, 0, capBytes+PageSize),
		recOff: make([]uint32, 1, capBytes/64+1),
		keys:   make(map[string]*keyRun),
	}
}

// Segmented is the log-structured store engine. Like Paged it is safe for
// concurrent use; simulations call it single-threaded.
type Segmented struct {
	mu       sync.Mutex
	segBytes int
	segs     []*segment // sealed, in append (= id) order
	active   *segment
	nextID   uint64

	// pending is how many records arrived since the last group commit;
	// synced is how much of the active segment's data already reached the
	// file backing (file mode writes are append-only). af is the active
	// segment's file, held open between commits.
	pending int
	synced  int
	af      *os.File

	// invalid / invalidSeqs mirror the paged engine's garbage marks so both
	// engines agree on which records are dead (the cross-backend oracle).
	// They also pre-kill future appends of an already-invalidated (key, seq).
	invalid     map[string]uint64
	invalidSeqs map[string]map[uint64]bool

	// keySegs lists, per key, the segments holding its records (in segment
	// order) — the cross-segment half of the sparse index.
	keySegs map[string][]*segment

	// metaSeen tracks the newest revision seen per KindMeta key. Meta
	// records are revisioned (the rebuild reads only the latest), so an
	// append of revision R shadows every earlier revision of the same key;
	// shadowed metas are marked dead at append time so segments they occupy
	// can still be truncated. Checkpoint records are exempt: every
	// checkpoint revision's drop list matters to the rebuild.
	metaSeen map[string]*metaTrail

	stats      Stats
	writeFault func() error
	batchObs   func(int)

	// free recycles dropped segments' data buffers into new actives, so a
	// steady state of truncation-and-refill stops allocating (and zeroing)
	// a segment-sized buffer per generation.
	free [][]byte

	dir string // file backing, "" = in-memory
}

// metaTrail remembers where the latest revision of a meta key lives so the
// next revision can shadow it in O(1).
type metaTrail struct {
	seq uint64
	seg *segment
	ord uint32
}

// NewSegmented returns an in-memory segmented store. segBytes <= 0 selects
// DefaultSegmentBytes.
func NewSegmented(segBytes int) *Segmented {
	if segBytes <= 0 {
		segBytes = DefaultSegmentBytes
	}
	s := &Segmented{
		segBytes:    segBytes,
		invalid:     make(map[string]uint64),
		invalidSeqs: make(map[string]map[uint64]bool),
		keySegs:     make(map[string][]*segment),
		metaSeen:    make(map[string]*metaTrail),
	}
	s.active = newSegment(s.nextID, segBytes)
	s.nextID++
	return s
}

// Append stores a record in the active segment, returning the segment id it
// lands on. The record is readable immediately; it becomes durable at the
// next group-commit boundary (Flush), or at seal time if the segment fills
// first.
func (s *Segmented) Append(r Record) (uint64, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.stats.Appends++
	s.stats.BytesLive += uint64(len(r.Data))

	g := s.active
	ord := uint32(g.count())
	g.data = appendRecord(g.data, &r)
	g.recOff = append(g.recOff, uint32(len(g.data)))
	kr := g.keys[r.Key]
	if kr == nil {
		kr = &keyRun{minSeq: ^uint64(0)}
		g.keys[r.Key] = kr
		// First record of this key in this segment — the only moment the
		// cross-segment index can need a new entry, so the common
		// consecutive-append case costs no extra map work.
		s.keySegs[r.Key] = append(s.keySegs[r.Key], g)
	}
	kr.seqs = append(kr.seqs, r.Seq)
	kr.ords = append(kr.ords, ord)
	if r.Seq < kr.minSeq {
		kr.minSeq = r.Seq
	}
	if r.Seq > kr.maxSeq {
		kr.maxSeq = r.Seq
	}
	s.pending++

	// Records already condemned by an earlier Invalidate/InvalidateSeqs are
	// born dead, exactly as the paged engine would drop them at compaction.
	if r.Kind == KindMessage && s.deadLocked(r.Key, r.Seq) {
		s.markDeadLocked(g, r.Key, ord)
	}
	// Revision shadowing: a newer meta revision makes every older one
	// garbage (the rebuild reads only the latest). Checkpoints keep their
	// full history — every revision's drop list matters.
	if r.Kind == KindMeta {
		switch mt := s.metaSeen[r.Key]; {
		case mt == nil:
			s.metaSeen[r.Key] = &metaTrail{seq: r.Seq, seg: g, ord: ord}
		case r.Seq >= mt.seq:
			s.markDeadLocked(mt.seg, r.Key, mt.ord)
			mt.seq, mt.seg, mt.ord = r.Seq, g, ord
		default:
			// A stale revision behind the latest: born shadowed.
			s.markDeadLocked(g, r.Key, ord)
		}
	}

	id := g.id
	if len(g.data) >= s.segBytes {
		if err := s.sealLocked(); err != nil {
			return id, err
		}
	}
	return id, nil
}

// indexSegLocked records that seg holds key (dedupes the common run of
// consecutive appends into the same segment).
func (s *Segmented) indexSegLocked(key string, g *segment) {
	segs := s.keySegs[key]
	if n := len(segs); n > 0 && segs[n-1] == g {
		return
	}
	s.keySegs[key] = append(segs, g)
}

// deadLocked mirrors Paged.dead: is (key, seq) condemned?
func (s *Segmented) deadLocked(key string, seq uint64) bool {
	if through, ok := s.invalid[key]; ok && seq <= through {
		return true
	}
	if len(s.invalidSeqs) == 0 {
		return false
	}
	return s.invalidSeqs[key][seq]
}

// markDeadLocked marks one record dead, maintaining the liveness counter
// and byte accounting. On an already-sealed file-backed segment the on-disk
// manifest no longer matches; Close refreshes it so the next open still
// skips this record.
func (s *Segmented) markDeadLocked(g *segment, key string, ord uint32) {
	if !g.markDead(ord) {
		return
	}
	if g.sealed && s.dir != "" {
		g.manifestStale = true
	}
	payload := uint64(g.recSize(ord) - recHeaderLen - len(key))
	if s.stats.BytesLive >= payload {
		s.stats.BytesLive -= payload
	}
	s.stats.BytesDead += payload
}

// Flush is the group-commit boundary: one commit covers every record that
// arrived since the previous one (§5.1's buffering generalized from one
// page to one segment). In file mode the active segment's new bytes are
// appended to its file in a single write.
func (s *Segmented) Flush() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.flushLocked()
}

func (s *Segmented) flushLocked() error {
	if s.pending == 0 {
		return nil
	}
	if err := s.commitActiveLocked(); err != nil {
		return err
	}
	if s.batchObs != nil {
		s.batchObs(s.pending)
	}
	s.stats.SegFlushes++
	s.pending = 0
	return nil
}

// commitActiveLocked pushes the active segment's unwritten bytes to the
// file backing (one append write), consulting the fault hook.
func (s *Segmented) commitActiveLocked() error {
	if s.writeFault != nil {
		if err := s.writeFault(); err != nil {
			s.stats.WriteFaults++
			return fmt.Errorf("stablestore: injected write fault on segment %d: %w", s.active.id, err)
		}
	}
	if s.dir == "" || s.synced >= len(s.active.data) {
		s.synced = len(s.active.data)
		return nil
	}
	f, err := s.activeFileLocked()
	if err != nil {
		return err
	}
	if _, err := f.WriteAt(s.active.data[s.synced:], int64(s.synced)); err != nil {
		return fmt.Errorf("stablestore: write segment %d: %w", s.active.id, err)
	}
	s.synced = len(s.active.data)
	return nil
}

// activeFileLocked returns the active segment's file, opening (and caching)
// it on first use.
func (s *Segmented) activeFileLocked() (*os.File, error) {
	if s.af == nil {
		f, err := os.OpenFile(s.segPath(s.active.id), os.O_WRONLY|os.O_CREATE, 0o644)
		if err != nil {
			return nil, err
		}
		s.af = f
	}
	return s.af, nil
}

// closeActiveFileLocked drops the cached active-file handle.
func (s *Segmented) closeActiveFileLocked() error {
	if s.af == nil {
		return nil
	}
	err := s.af.Close()
	s.af = nil
	return err
}

// sealLocked makes the active segment immutable and opens a fresh one. In
// file mode the segment file gains its index block and footer, making it
// self-describing for recovery.
func (s *Segmented) sealLocked() error {
	g := s.active
	if g.count() == 0 {
		return nil
	}
	if err := s.commitActiveLocked(); err != nil {
		return err
	}
	if s.dir != "" {
		tail := encodeSegmentTail(g)
		f, err := s.activeFileLocked()
		if err != nil {
			return err
		}
		_, werr := f.WriteAt(tail, int64(len(g.data)))
		cerr := s.closeActiveFileLocked()
		if werr != nil {
			return fmt.Errorf("stablestore: seal segment %d: %w", g.id, werr)
		}
		if cerr != nil {
			return cerr
		}
	}
	g.sealed = true
	s.segs = append(s.segs, g)
	s.stats.SegSealed++
	s.active = s.newActiveLocked()
	s.synced = 0
	return nil
}

// newActiveLocked opens a fresh active segment, reusing a recycled data
// buffer when one is available.
func (s *Segmented) newActiveLocked() *segment {
	g := newSegment(s.nextID, s.segBytes)
	s.nextID++
	if n := len(s.free); n > 0 {
		g.data = s.free[n-1]
		s.free[n-1] = nil
		s.free = s.free[:n-1]
	}
	return g
}

// freeLocked banks a retired segment's data buffer for reuse.
func (s *Segmented) freeLocked(g *segment) {
	if len(s.free) < 8 && cap(g.data) >= s.segBytes {
		s.free = append(s.free, g.data[:0])
		g.data = nil
	}
}

// Invalidate marks message records of key with seq <= through as garbage,
// maintaining each affected segment's liveness counter. Segments whose
// per-key max bound is above `through` already — and segments not holding
// the key at all — are skipped by bound comparison.
func (s *Segmented) Invalidate(key string, through uint64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	prev, had := s.invalid[key]
	if had && through <= prev {
		return
	}
	s.invalid[key] = through
	for _, g := range s.keySegs[key] {
		kr := g.keys[key]
		if kr == nil || kr.minSeq > through {
			continue
		}
		for i, q := range kr.seqs {
			if q <= through && (!had || q > prev) {
				if s.msgAtLocked(g, kr.ords[i]) {
					s.markDeadLocked(g, key, kr.ords[i])
				}
			}
		}
	}
}

// InvalidateSeqs marks specific (key, seq) message records as garbage. The
// per-segment min/max bounds prune the segment list before any run scan.
func (s *Segmented) InvalidateSeqs(key string, seqs []uint64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	set := s.invalidSeqs[key]
	if set == nil {
		set = make(map[uint64]bool)
		s.invalidSeqs[key] = set
	}
	fresh := seqs[:0:0]
	for _, q := range seqs {
		if !set[q] {
			set[q] = true
			fresh = append(fresh, q)
		}
	}
	if len(fresh) == 0 {
		return
	}
	for _, g := range s.keySegs[key] {
		kr := g.keys[key]
		if kr == nil {
			continue
		}
		for _, q := range fresh {
			if q < kr.minSeq || q > kr.maxSeq {
				continue
			}
			for i, have := range kr.seqs {
				if have == q && s.msgAtLocked(g, kr.ords[i]) {
					s.markDeadLocked(g, key, kr.ords[i])
				}
			}
		}
	}
}

// msgAtLocked reports whether the record at ord is a message (only message
// records die through invalidation — kind is the first encoded byte).
func (s *Segmented) msgAtLocked(g *segment, ord uint32) bool {
	return RecordKind(g.data[g.recOff[ord]]) == KindMessage
}

// Compact is checkpoint truncation plus the at-quiescence compactor: drop
// every sealed segment whose live count is zero (an O(segments) counter
// scan — no record is visited), then rewrite the single frontier segment —
// the oldest one still mixing dead and live records — so the truncation
// point keeps advancing. Returns the number of records reclaimed.
func (s *Segmented) Compact() (int, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if err := s.flushLocked(); err != nil {
		return 0, err
	}
	dropped := 0
	kept := s.segs[:0]
	var frontier *segment
	for _, g := range s.segs {
		if g.live() == 0 {
			dropped += g.count()
			s.stats.Compacted += uint64(g.count())
			s.stats.SegDropped++
			s.reclaimLocked(g)
			s.unlinkSegLocked(g)
			s.freeLocked(g)
			continue
		}
		if frontier == nil && g.deadN > 0 {
			frontier = g
		}
		kept = append(kept, g)
	}
	for i := len(kept); i < len(s.segs); i++ {
		s.segs[i] = nil
	}
	s.segs = kept
	// The frontier: the oldest segment still mixing dead and live records.
	// With a fully-dead prefix dropped above, that is the one straddling
	// the truncation point; the still-mutable active segment counts when no
	// sealed segment qualifies (mirroring the paged engine, whose Compact
	// seals and rewrites the write buffer's page too).
	if frontier == nil && s.active.deadN > 0 {
		frontier = s.active
	}
	if frontier != nil {
		n, err := s.rewriteLocked(frontier)
		dropped += n
		if err != nil {
			return dropped, err
		}
	}
	return dropped, nil
}

// reclaimLocked moves a dropped segment's still-live byte accounting (meta
// and checkpoint records are never dead, but fully-dead segments hold none)
// and clears its dead-byte debt.
func (s *Segmented) reclaimLocked(g *segment) {
	for key, kr := range g.keys {
		for _, ord := range kr.ords {
			if g.isDead(ord) {
				payload := uint64(g.recSize(ord) - recHeaderLen - len(key))
				if s.stats.BytesDead >= payload {
					s.stats.BytesDead -= payload
				}
			}
		}
	}
}

// unlinkSegLocked removes g from every per-key segment list and from the
// meta trail.
func (s *Segmented) unlinkSegLocked(g *segment) {
	for key := range g.keys {
		segs := s.keySegs[key]
		for i, have := range segs {
			if have == g {
				s.keySegs[key] = append(segs[:i], segs[i+1:]...)
				break
			}
		}
		if len(s.keySegs[key]) == 0 {
			delete(s.keySegs, key)
		}
		if mt := s.metaSeen[key]; mt != nil && mt.seg == g {
			delete(s.metaSeen, key)
		}
	}
	if s.dir != "" {
		os.Remove(s.segPath(g.id))
	}
}

// rewriteLocked rebuilds the frontier segment in place with only its live
// records, preserving record order (and thus ReadAll's insertion order).
func (s *Segmented) rewriteLocked(g *segment) (int, error) {
	if s.writeFault != nil {
		if err := s.writeFault(); err != nil {
			s.stats.WriteFaults++
			return 0, fmt.Errorf("stablestore: injected write fault rewriting segment %d: %w", g.id, err)
		}
	}
	nw := &segment{
		id:     g.id,
		data:   make([]byte, 0, len(g.data)),
		recOff: []uint32{0},
		keys:   make(map[string]*keyRun),
		sealed: g.sealed,
	}
	// Walk records in ordinal order, rebuilding the index for survivors.
	ordKey := make([]string, g.count())
	ordSeq := make([]uint64, g.count())
	for key, kr := range g.keys {
		for i, ord := range kr.ords {
			ordKey[ord] = key
			ordSeq[ord] = kr.seqs[i]
		}
	}
	dropped := 0
	for ord := 0; ord < g.count(); ord++ {
		if g.isDead(uint32(ord)) {
			dropped++
			s.stats.Compacted++
			payload := uint64(g.recSize(uint32(ord)) - recHeaderLen - len(ordKey[ord]))
			if s.stats.BytesDead >= payload {
				s.stats.BytesDead -= payload
			}
			continue
		}
		nord := uint32(nw.count())
		nw.data = append(nw.data, g.data[g.recOff[ord]:g.recOff[ord+1]]...)
		nw.recOff = append(nw.recOff, uint32(len(nw.data)))
		kr := nw.run(ordKey[ord])
		kr.seqs = append(kr.seqs, ordSeq[ord])
		kr.ords = append(kr.ords, nord)
		if ordSeq[ord] < kr.minSeq {
			kr.minSeq = ordSeq[ord]
		}
		if ordSeq[ord] > kr.maxSeq {
			kr.maxSeq = ordSeq[ord]
		}
	}
	if dropped == 0 {
		return 0, nil
	}
	s.stats.SegRewrites++
	// Splice the rewritten segment into every structure pointing at g.
	if g == s.active {
		s.active = nw
	}
	for i, have := range s.segs {
		if have == g {
			s.segs[i] = nw
		}
	}
	for key := range g.keys {
		if _, still := nw.keys[key]; still {
			segs := s.keySegs[key]
			for i, have := range segs {
				if have == g {
					segs[i] = nw
				}
			}
		} else {
			segs := s.keySegs[key]
			for i, have := range segs {
				if have == g {
					s.keySegs[key] = append(segs[:i], segs[i+1:]...)
					break
				}
			}
			if len(s.keySegs[key]) == 0 {
				delete(s.keySegs, key)
			}
		}
		if mt := s.metaSeen[key]; mt != nil && mt.seg == g {
			// Re-locate the ordinal of the surviving latest revision.
			delete(s.metaSeen, key)
			if kr := nw.keys[key]; kr != nil {
				for i, q := range kr.seqs {
					if q == mt.seq {
						s.metaSeen[key] = &metaTrail{seq: q, seg: nw, ord: kr.ords[i]}
					}
				}
			}
		}
	}
	if s.dir != "" {
		if !nw.sealed {
			// The old handle would point at the replaced inode.
			if err := s.closeActiveFileLocked(); err != nil {
				return dropped, err
			}
		}
		if !nw.sealed && nw.count() == 0 {
			// The active segment drained completely; drop its file.
			os.Remove(s.segPath(nw.id))
			s.synced = 0
			return dropped, nil
		}
		body := append([]byte(nil), nw.data...)
		if nw.sealed {
			body = append(body, encodeSegmentTail(nw)...)
		}
		tmp := s.segPath(nw.id) + ".rw"
		if err := os.WriteFile(tmp, body, 0o644); err != nil {
			return dropped, err
		}
		if err := os.Rename(tmp, s.segPath(nw.id)); err != nil {
			return dropped, err
		}
	}
	if !nw.sealed {
		s.synced = len(nw.data)
	}
	return dropped, nil
}

// ReadAll returns every stored record in insertion order: sealed segments
// in id order, then the active segment. Garbage-marked records not yet
// reclaimed are included, exactly like the paged engine — the rebuild drops
// them through checkpoint metadata, not store filtering.
func (s *Segmented) ReadAll() ([]Record, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	var out []Record
	for _, g := range s.segs {
		recs, err := decodeRecords(g.data)
		if err != nil {
			return nil, fmt.Errorf("segment %d: %w", g.id, err)
		}
		out = append(out, recs...)
	}
	recs, err := decodeRecords(s.active.data)
	if err != nil {
		return nil, fmt.Errorf("segment %d: %w", s.active.id, err)
	}
	return append(out, recs...), nil
}

// ReadKey returns key's records in seq order. The per-key segment list and
// each segment's index run resolve the records directly — no page chain
// walk, no full decode of unrelated records.
func (s *Segmented) ReadKey(key string) ([]Record, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	var out []Record
	for _, g := range s.keySegs[key] {
		kr := g.keys[key]
		for _, ord := range kr.ords {
			rec, _, err := decodeOne(g.data[g.recOff[ord]:g.recOff[ord+1]])
			if err != nil {
				return nil, fmt.Errorf("segment %d ord %d: %w", g.id, ord, err)
			}
			out = append(out, rec)
		}
	}
	sort.SliceStable(out, func(i, j int) bool { return out[i].Seq < out[j].Seq })
	return out, nil
}

// Pages returns the storage footprint in segments (sealed plus a non-empty
// active segment) — the segmented analogue of the paged engine's page count.
func (s *Segmented) Pages() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	n := len(s.segs)
	if s.active.count() > 0 {
		n++
	}
	return n
}

// Stats returns a copy of the counters.
func (s *Segmented) Stats() Stats {
	s.mu.Lock()
	defer s.mu.Unlock()
	st := s.stats
	st.Segments = uint64(len(s.segs))
	if s.active.count() > 0 {
		st.Segments++
	}
	return st
}

// SetWriteFault installs (or removes) the fault hook consulted before every
// group commit, seal, and frontier rewrite.
func (s *Segmented) SetWriteFault(fn func() error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.writeFault = fn
}

// SetBatchObserver implements BatchObserver: fn receives each group
// commit's record count (the recorder points it at a histogram).
func (s *Segmented) SetBatchObserver(fn func(int)) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.batchObs = fn
}

// Close group-commits pending records and seals the active segment, so a
// file-backed store reopens from sealed segments only. Sealed segments that
// gained garbage marks since their tail reached disk get their liveness
// manifest rewritten, so a clean shutdown hands the next open a fully
// current dead bitmap.
func (s *Segmented) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if err := s.flushLocked(); err != nil {
		return err
	}
	if err := s.sealLocked(); err != nil {
		return err
	}
	for _, g := range s.segs {
		if !g.manifestStale {
			continue
		}
		if err := s.rewriteSegmentFileLocked(g); err != nil {
			return err
		}
		g.manifestStale = false
	}
	return s.closeActiveFileLocked()
}

// rewriteSegmentFileLocked atomically replaces g's file with its current
// in-memory image (records plus a fresh tail).
func (s *Segmented) rewriteSegmentFileLocked(g *segment) error {
	body := append(append([]byte(nil), g.data...), encodeSegmentTail(g)...)
	tmp := s.segPath(g.id) + ".rw"
	if err := os.WriteFile(tmp, body, 0o644); err != nil {
		return err
	}
	return os.Rename(tmp, s.segPath(g.id))
}

func (s *Segmented) segPath(id uint64) string {
	return filepath.Join(s.dir, fmt.Sprintf("seg-%08d.seg", id))
}

// --- file format -----------------------------------------------------------
//
// A sealed segment file is
//
//	records | index | footer
//
// where records are back-to-back encoded Records (the page codec without
// padding), the index is the recOff table, per-key (seq, ord) runs, and a
// liveness manifest (live count + dead bitmap), and the 40-byte footer
// carries lengths, counts, CRCs over both regions, and a magic. A file
// without a valid footer (torn write: the process died mid-commit) is
// recovered by scanning records from the start and keeping the longest
// valid prefix — the classic log-recovery discipline.
//
// The manifest makes garbage marks durable at seal/Close time: OpenSegmented
// decodes it and skips dead records outright — no per-record decode, no
// index entries, no re-encoded bytes — which is where the segmented engine's
// reopen penalty over the paged engine went (see BENCH_store.json). A crash
// before Close leaves sealed segments' manifests stale (missing marks made
// after seal); that only resurrects records the recorder's rebuild re-drops
// through checkpoint metadata, exactly as all garbage marks behaved before
// the manifest existed.

const (
	segMagic      = 0x5055425345473031 // "PUBSEG01"
	segVersion    = 2                  // v2 added the liveness manifest to the index block
	segFooterSize = 8 + 8 + 4 + 4 + 4 + 4 + 8
)

// encodeSegmentTail serializes g's index block (offsets, key runs, liveness
// manifest) and footer.
func encodeSegmentTail(g *segment) []byte {
	var idx []byte
	var tmp [8]byte
	for _, off := range g.recOff {
		binary.BigEndian.PutUint32(tmp[:4], off)
		idx = append(idx, tmp[:4]...)
	}
	keys := make([]string, 0, len(g.keys))
	for k := range g.keys {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	binary.BigEndian.PutUint32(tmp[:4], uint32(len(keys)))
	idx = append(idx, tmp[:4]...)
	for _, k := range keys {
		kr := g.keys[k]
		binary.BigEndian.PutUint16(tmp[:2], uint16(len(k)))
		idx = append(idx, tmp[:2]...)
		idx = append(idx, k...)
		binary.BigEndian.PutUint32(tmp[:4], uint32(len(kr.ords)))
		idx = append(idx, tmp[:4]...)
		for i := range kr.ords {
			binary.BigEndian.PutUint64(tmp[:8], kr.seqs[i])
			idx = append(idx, tmp[:8]...)
			binary.BigEndian.PutUint32(tmp[:4], kr.ords[i])
			idx = append(idx, tmp[:4]...)
		}
	}
	// Liveness manifest: live count, then the dead bitmap padded (or
	// truncated — markDead grows it lazily) to exactly ceil(count/64) words.
	words := (g.count() + 63) / 64
	binary.BigEndian.PutUint32(tmp[:4], uint32(g.live()))
	idx = append(idx, tmp[:4]...)
	binary.BigEndian.PutUint32(tmp[:4], uint32(words))
	idx = append(idx, tmp[:4]...)
	for w := 0; w < words; w++ {
		var v uint64
		if w < len(g.dead) {
			v = g.dead[w]
		}
		binary.BigEndian.PutUint64(tmp[:8], v)
		idx = append(idx, tmp[:8]...)
	}
	foot := make([]byte, segFooterSize)
	binary.BigEndian.PutUint64(foot[0:8], uint64(len(g.data)))
	binary.BigEndian.PutUint64(foot[8:16], uint64(len(idx)))
	binary.BigEndian.PutUint32(foot[16:20], uint32(g.count()))
	binary.BigEndian.PutUint32(foot[20:24], crc32.ChecksumIEEE(g.data))
	binary.BigEndian.PutUint32(foot[24:28], crc32.ChecksumIEEE(idx))
	binary.BigEndian.PutUint32(foot[28:32], segVersion)
	binary.BigEndian.PutUint64(foot[32:40], segMagic)
	return append(idx, foot...)
}

var errSegmentIndex = errors.New("stablestore: segment index corrupt")

// decodeSegment parses one segment file image. Sealed images (valid footer,
// CRCs matching over data and index) decode through the index; anything
// else — torn tail, truncated index, corrupt data written after the index
// reached disk — falls back to a prefix scan of the record region, which
// keeps every record up to the first damage. The returned records always
// re-encode to a decodable image (the fuzz target's round-trip property).
func decodeSegment(b []byte) (recs []Record, sealed bool, err error) {
	if len(b) >= segFooterSize {
		foot := b[len(b)-segFooterSize:]
		magic := binary.BigEndian.Uint64(foot[32:40])
		version := binary.BigEndian.Uint32(foot[28:32])
		if magic == segMagic && version == segVersion {
			dataLen := binary.BigEndian.Uint64(foot[0:8])
			idxLen := binary.BigEndian.Uint64(foot[8:16])
			count := binary.BigEndian.Uint32(foot[16:20])
			if dataLen+idxLen+segFooterSize == uint64(len(b)) {
				data := b[:dataLen]
				idx := b[dataLen : dataLen+idxLen]
				if crc32.ChecksumIEEE(data) == binary.BigEndian.Uint32(foot[20:24]) &&
					crc32.ChecksumIEEE(idx) == binary.BigEndian.Uint32(foot[24:28]) {
					recs, err := decodeRecords(data)
					if err == nil && len(recs) == int(count) {
						return recs, true, nil
					}
					// CRC-clean but inconsistent: treat as torn.
				}
			}
		}
	}
	return scanRecords(b), false, nil
}

// segIndex is a sealed segment file's parsed index block: everything
// OpenSegmented needs to rebuild the in-memory segment without decoding a
// single record.
type segIndex struct {
	data   []byte   // record region (aliases the file image)
	recOff []uint32 // count+1 offsets
	ordKey []string // per-ordinal key, from the runs
	ordSeq []uint64 // per-ordinal seq, from the runs
	dead   []uint64 // liveness manifest bitmap
	live   int      // records not marked dead at seal/Close time
}

func (x *segIndex) isDead(ord int) bool {
	return x.dead[ord/64]&(1<<(ord%64)) != 0
}

// decodeSegmentIndex parses b's index block if b is a well-formed sealed v2
// image. It is stricter than decodeSegment: beyond both CRCs it requires a
// monotone offset table covering the data region exactly, every ordinal
// indexed by exactly one key run, and a manifest that agrees with its own
// bitmap — anything less returns nil and the caller takes the record-scan
// path. CRC-clean-but-inconsistent images only arise from corruption the
// CRC missed or an adversarial writer; falling back is always safe because
// the scan path re-derives everything from the records themselves.
func decodeSegmentIndex(b []byte) *segIndex {
	if len(b) < segFooterSize {
		return nil
	}
	foot := b[len(b)-segFooterSize:]
	if binary.BigEndian.Uint64(foot[32:40]) != segMagic ||
		binary.BigEndian.Uint32(foot[28:32]) != segVersion {
		return nil
	}
	dataLen := binary.BigEndian.Uint64(foot[0:8])
	idxLen := binary.BigEndian.Uint64(foot[8:16])
	count := int(binary.BigEndian.Uint32(foot[16:20]))
	if dataLen+idxLen+segFooterSize != uint64(len(b)) {
		return nil
	}
	data := b[:dataLen]
	idx := b[dataLen : dataLen+idxLen]
	if crc32.ChecksumIEEE(data) != binary.BigEndian.Uint32(foot[20:24]) ||
		crc32.ChecksumIEEE(idx) != binary.BigEndian.Uint32(foot[24:28]) {
		return nil
	}

	// Cursor-style reads; every length is validated before use.
	u16 := func() (uint16, bool) {
		if len(idx) < 2 {
			return 0, false
		}
		v := binary.BigEndian.Uint16(idx)
		idx = idx[2:]
		return v, true
	}
	u32 := func() (uint32, bool) {
		if len(idx) < 4 {
			return 0, false
		}
		v := binary.BigEndian.Uint32(idx)
		idx = idx[4:]
		return v, true
	}
	u64 := func() (uint64, bool) {
		if len(idx) < 8 {
			return 0, false
		}
		v := binary.BigEndian.Uint64(idx)
		idx = idx[8:]
		return v, true
	}

	x := &segIndex{data: data, recOff: make([]uint32, 0, count+1)}
	prev := uint32(0)
	for i := 0; i <= count; i++ {
		off, ok := u32()
		if !ok || off < prev || uint64(off) > dataLen {
			return nil
		}
		x.recOff = append(x.recOff, off)
		prev = off
	}
	if x.recOff[0] != 0 || uint64(x.recOff[count]) != dataLen {
		return nil
	}

	nKeys, ok := u32()
	if !ok {
		return nil
	}
	x.ordKey = make([]string, count)
	x.ordSeq = make([]uint64, count)
	seen := make([]bool, count)
	for k := uint32(0); k < nKeys; k++ {
		klen, ok := u16()
		if !ok || len(idx) < int(klen) {
			return nil
		}
		key := string(idx[:klen])
		idx = idx[klen:]
		runLen, ok := u32()
		if !ok {
			return nil
		}
		for i := uint32(0); i < runLen; i++ {
			seq, ok1 := u64()
			ord, ok2 := u32()
			if !ok1 || !ok2 || int(ord) >= count || seen[ord] {
				return nil
			}
			seen[ord] = true
			x.ordKey[ord] = key
			x.ordSeq[ord] = seq
		}
	}
	for _, s := range seen {
		if !s {
			return nil
		}
	}

	liveN, ok1 := u32()
	words, ok2 := u32()
	if !ok1 || !ok2 || int(words) != (count+63)/64 || len(idx) != int(words)*8 {
		return nil
	}
	x.dead = make([]uint64, words)
	deadN := 0
	for w := range x.dead {
		v, _ := u64()
		x.dead[w] = v
		deadN += bits.OnesCount64(v)
	}
	if deadN != count-int(liveN) {
		return nil
	}
	if r := count % 64; r != 0 && x.dead[words-1]>>r != 0 {
		return nil // dead bits past the last ordinal
	}
	x.live = int(liveN)
	return x
}

// scanRecords keeps the longest decodable record prefix of b.
func scanRecords(b []byte) []Record {
	var out []Record
	for len(b) > 0 {
		rec, n, err := decodeOne(b)
		if err != nil || n == 0 {
			break
		}
		out = append(out, rec)
		b = b[n:]
	}
	return out
}

// openMetaLocked applies the meta revision-shadowing rule while loading
// records at open: the newest revision per key survives, every other one is
// marked dead (possibly in an earlier segment loaded minutes ago).
func (s *Segmented) openMetaLocked(key string, seq uint64, g *segment, ord uint32) {
	switch mt := s.metaSeen[key]; {
	case mt == nil:
		s.metaSeen[key] = &metaTrail{seq: seq, seg: g, ord: ord}
	case seq >= mt.seq:
		s.markDeadLocked(mt.seg, key, mt.ord)
		mt.seq, mt.seg, mt.ord = seq, g, ord
	default:
		s.markDeadLocked(g, key, ord)
	}
}

// OpenSegmented opens (or creates) a file-backed segmented store rooted at
// dir. Sealed segments load through their self-describing index, and the
// liveness manifest drops records invalidated before the last seal/Close
// without decoding them; a torn segment (the active one at crash time) is
// recovered to its longest valid record prefix, truncated, and re-sealed —
// §4.5's "rebuild the data base from the disk" applied to the log itself.
// Garbage marks made after a segment's manifest last reached disk are
// volatile, exactly like the paged engine's Open: such records resurrect
// and are re-dropped by the recorder's rebuild through checkpoint metadata.
func OpenSegmented(dir string, segBytes int) (*Segmented, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	s := NewSegmented(segBytes)
	s.dir = dir
	names, err := filepath.Glob(filepath.Join(dir, "seg-*.seg"))
	if err != nil {
		return nil, err
	}
	sort.Strings(names)
	for _, name := range names {
		b, err := os.ReadFile(name)
		if err != nil {
			return nil, err
		}
		var id uint64
		if _, err := fmt.Sscanf(filepath.Base(name), "seg-%d.seg", &id); err != nil {
			continue
		}
		var g *segment
		if x := decodeSegmentIndex(b); x != nil {
			// Fast path: rebuild from the index alone. Live records' bytes
			// are copied wholesale (they were encoded by this engine, so the
			// raw bytes ARE the canonical encoding); dead records cost one
			// bitmap test each — no decode, no index entry, no key alloc.
			if x.live == 0 {
				os.Remove(name)
				continue
			}
			g = newSegment(id, 0)
			for ord := 0; ord < len(x.ordKey); ord++ {
				if x.isDead(ord) {
					continue
				}
				raw := x.data[x.recOff[ord]:x.recOff[ord+1]]
				key, seq := x.ordKey[ord], x.ordSeq[ord]
				s.stats.BytesLive += uint64(len(raw) - recHeaderLen - len(key))
				nord := uint32(g.count())
				g.data = append(g.data, raw...)
				g.recOff = append(g.recOff, uint32(len(g.data)))
				kr := g.run(key)
				kr.seqs = append(kr.seqs, seq)
				kr.ords = append(kr.ords, nord)
				if seq < kr.minSeq {
					kr.minSeq = seq
				}
				if seq > kr.maxSeq {
					kr.maxSeq = seq
				}
				s.indexSegLocked(key, g)
				if RecordKind(raw[0]) == KindMeta {
					s.openMetaLocked(key, seq, g, nord)
				}
			}
		} else {
			recs, _, _ := decodeSegment(b)
			if len(recs) == 0 {
				os.Remove(name)
				continue
			}
			g = newSegment(id, 0)
			for _, r := range recs {
				r := r
				s.stats.BytesLive += uint64(len(r.Data))
				ord := uint32(g.count())
				g.data = appendRecord(g.data, &r)
				g.recOff = append(g.recOff, uint32(len(g.data)))
				kr := g.run(r.Key)
				kr.seqs = append(kr.seqs, r.Seq)
				kr.ords = append(kr.ords, ord)
				if r.Seq < kr.minSeq {
					kr.minSeq = r.Seq
				}
				if r.Seq > kr.maxSeq {
					kr.maxSeq = r.Seq
				}
				s.indexSegLocked(r.Key, g)
				if r.Kind == KindMeta {
					s.openMetaLocked(r.Key, r.Seq, g, ord)
				}
			}
			// Torn tail: truncate the file to the valid prefix and re-seal
			// it so the next open is index-fast.
			body := append(append([]byte(nil), g.data...), encodeSegmentTail(g)...)
			if err := os.WriteFile(name, body, 0o644); err != nil {
				return nil, err
			}
		}
		g.sealed = true
		s.segs = append(s.segs, g)
		if id >= s.nextID {
			s.nextID = id + 1
		}
	}
	s.active = newSegment(s.nextID, s.segBytes)
	s.nextID++
	s.synced = 0
	return s, nil
}
