package stablestore

import (
	"fmt"
	"path/filepath"
	"testing"
	"testing/quick"
)

func msg(key string, seq uint64, data string) Record {
	return Record{Kind: KindMessage, Key: key, Seq: seq, Data: []byte(data)}
}

func TestAppendReadBack(t *testing.T) {
	s := New()
	for i := uint64(1); i <= 10; i++ {
		if _, err := s.Append(msg("p1.1", i, fmt.Sprintf("body-%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	recs, err := s.ReadKey("p1.1")
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 10 {
		t.Fatalf("read %d records", len(recs))
	}
	for i, r := range recs {
		if r.Seq != uint64(i+1) || string(r.Data) != fmt.Sprintf("body-%d", i+1) {
			t.Fatalf("record %d wrong: %+v", i, r)
		}
	}
}

func TestBufferingWritesPagesLazily(t *testing.T) {
	s := New()
	// Small records accumulate in the 4 KB buffer: no page writes yet.
	for i := uint64(1); i <= 5; i++ {
		if _, err := s.Append(msg("k", i, "0123456789")); err != nil {
			t.Fatal(err)
		}
	}
	if got := s.Stats().PageWrites; got != 0 {
		t.Fatalf("premature page writes: %d", got)
	}
	if err := s.Flush(); err != nil {
		t.Fatal(err)
	}
	if got := s.Stats().PageWrites; got != 1 {
		t.Fatalf("page writes after flush = %d, want 1", got)
	}
	// Filling past a page forces a write without an explicit flush —
	// the §5.1 "one disk write per 4k of messages" behaviour.
	big := make([]byte, 1500)
	for i := uint64(6); i <= 9; i++ {
		if _, err := s.Append(Record{Kind: KindMessage, Key: "k", Seq: i, Data: big}); err != nil {
			t.Fatal(err)
		}
	}
	if got := s.Stats().PageWrites; got < 2 {
		t.Fatalf("full buffer not written: %d writes", got)
	}
}

func TestInvalidateAndCompact(t *testing.T) {
	s := New()
	for i := uint64(1); i <= 20; i++ {
		s.Append(msg("a", i, "aaaaaaaaaa"))
		s.Append(msg("b", i, "bbbbbbbbbb"))
	}
	s.Invalidate("a", 15)
	dropped, err := s.Compact()
	if err != nil {
		t.Fatal(err)
	}
	if dropped != 15 {
		t.Fatalf("dropped %d, want 15", dropped)
	}
	ra, _ := s.ReadKey("a")
	rb, _ := s.ReadKey("b")
	if len(ra) != 5 {
		t.Fatalf("a has %d live records, want 5", len(ra))
	}
	if ra[0].Seq != 16 {
		t.Fatalf("a starts at %d, want 16", ra[0].Seq)
	}
	if len(rb) != 20 {
		t.Fatalf("b lost records: %d", len(rb))
	}
	// Checkpoints are never compacted by message invalidation.
	s.Append(Record{Kind: KindCheckpoint, Key: "a", Seq: 15, Data: []byte("ck")})
	s.Invalidate("a", 99)
	s.Compact()
	recs, _ := s.ReadKey("a")
	foundCk := false
	for _, r := range recs {
		if r.Kind == KindCheckpoint {
			foundCk = true
		}
	}
	if !foundCk {
		t.Fatal("checkpoint compacted away")
	}
}

func TestOversizedRecords(t *testing.T) {
	s := New()
	big := make([]byte, 3*PageSize)
	for i := range big {
		big[i] = byte(i % 251)
	}
	if _, err := s.Append(Record{Kind: KindCheckpoint, Key: "p", Seq: 1, Data: big}); err != nil {
		t.Fatal(err)
	}
	s.Append(msg("p", 2, "after"))
	recs, err := s.ReadKey("p")
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 2 {
		t.Fatalf("got %d records", len(recs))
	}
	if len(recs[0].Data) != len(big) {
		t.Fatalf("oversized data truncated: %d", len(recs[0].Data))
	}
	for i := range big {
		if recs[0].Data[i] != big[i] {
			t.Fatalf("oversized data corrupt at %d", i)
		}
	}
}

func TestFileBackedReload(t *testing.T) {
	path := filepath.Join(t.TempDir(), "publish.db")
	s, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	for i := uint64(1); i <= 8; i++ {
		s.Append(msg("proc", i, fmt.Sprintf("m%d", i)))
	}
	s.Append(Record{Kind: KindCheckpoint, Key: "proc", Seq: 4, Data: []byte("ckpt")})
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	// Reopen: everything must still be there — this is the recorder
	// rebuilding its database from disk after its own crash (§4.5).
	s2, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	recs, err := s2.ReadKey("proc")
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 9 {
		t.Fatalf("reloaded %d records, want 9", len(recs))
	}
}

func TestReadAllOrdersByInsertion(t *testing.T) {
	s := New()
	keys := []string{"x", "y", "x", "z", "y"}
	for i, k := range keys {
		s.Append(msg(k, uint64(i), "d"))
	}
	all, err := s.ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(all) != len(keys) {
		t.Fatalf("got %d records", len(all))
	}
	for i, r := range all {
		if r.Key != keys[i] {
			t.Fatalf("insertion order broken at %d: %s", i, r.Key)
		}
	}
}

func TestPagesFootprint(t *testing.T) {
	s := New()
	if s.Pages() != 0 {
		t.Fatal("empty store has pages")
	}
	s.Append(msg("k", 1, "x"))
	if s.Pages() != 1 {
		t.Fatalf("pages = %d", s.Pages())
	}
	data := make([]byte, 2000)
	for i := uint64(0); i < 10; i++ {
		s.Append(Record{Kind: KindMessage, Key: "k", Seq: i + 2, Data: data})
	}
	if s.Pages() < 5 {
		t.Fatalf("pages = %d, want >= 5", s.Pages())
	}
}

// Property: any set of records survives an append/flush/readback cycle.
func TestRoundTripProperty(t *testing.T) {
	if err := quick.Check(func(keys []uint8, payload []byte) bool {
		if len(payload) > PageSize/2 {
			payload = payload[:PageSize/2]
		}
		s := New()
		for i, k := range keys {
			if _, err := s.Append(Record{
				Kind: KindMessage,
				Key:  fmt.Sprintf("p%d", k%4),
				Seq:  uint64(i),
				Data: payload,
			}); err != nil {
				return false
			}
		}
		all, err := s.ReadAll()
		if err != nil {
			return false
		}
		if len(all) != len(keys) {
			return false
		}
		for i, r := range all {
			if r.Seq != uint64(i) || !bytesEqual(r.Data, payload) {
				return false
			}
		}
		return true
	}, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func bytesEqual(a, b []byte) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func TestMetaRecords(t *testing.T) {
	s := New()
	s.Append(Record{Kind: KindMeta, Key: "restart", Seq: 3})
	s.Append(Record{Kind: KindMeta, Key: "restart", Seq: 4})
	recs, err := s.ReadKey("restart")
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 2 || recs[1].Seq != 4 {
		t.Fatalf("meta records: %+v", recs)
	}
}

func TestOversizedChainSurvivesCompactAndReopen(t *testing.T) {
	// An oversized record's chain map is volatile; before rebuildIndexLocked
	// a reopened store decoded the chain's first page as a self-contained
	// page and failed. The full cycle — append, compact, reopen — must
	// reconstruct the record byte-identically through both read paths.
	path := filepath.Join(t.TempDir(), "chain.db")
	s, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	for i := uint64(1); i <= 6; i++ {
		s.Append(msg("p9.1", i, fmt.Sprintf("pre-%d", i)))
	}
	big := make([]byte, 2*PageSize+123)
	for i := range big {
		big[i] = byte((i*7 + 13) % 256)
	}
	if _, err := s.Append(Record{Kind: KindCheckpoint, Key: "ck:p9.1", Seq: 1, Data: big}); err != nil {
		t.Fatal(err)
	}
	s.Append(msg("p9.1", 7, "post"))
	s.Invalidate("p9.1", 4)
	if _, err := s.Compact(); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	s2, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	check := func(name string, recs []Record, err error) {
		t.Helper()
		if err != nil {
			t.Fatalf("%s after reopen: %v", name, err)
		}
		found := false
		for _, r := range recs {
			if r.Kind != KindCheckpoint {
				continue
			}
			found = true
			if len(r.Data) != len(big) {
				t.Fatalf("%s: chain record %d bytes, want %d", name, len(r.Data), len(big))
			}
			for i := range big {
				if r.Data[i] != big[i] {
					t.Fatalf("%s: chain record corrupt at byte %d", name, i)
				}
			}
		}
		if !found {
			t.Fatalf("%s: chain record missing", name)
		}
	}
	all, err := s2.ReadAll()
	check("ReadAll", all, err)
	byKey, err := s2.ReadKey("ck:p9.1")
	check("ReadKey", byKey, err)
	if len(byKey) != 1 {
		t.Fatalf("ReadKey returned %d records, want 1", len(byKey))
	}
	// The small records around the chain survive too (minus the compacted).
	small, err := s2.ReadKey("p9.1")
	if err != nil {
		t.Fatal(err)
	}
	if len(small) != 3 || small[0].Seq != 5 || small[2].Seq != 7 {
		t.Fatalf("small records after compact+reopen: %+v", small)
	}
}

func TestReadKeyMatchesReadAllFilter(t *testing.T) {
	// The per-key page index must not change ReadKey's results vs the old
	// filter-over-ReadAll implementation.
	s := New()
	keys := []string{"a", "b", "c"}
	for i := uint64(1); i <= 300; i++ {
		s.Append(msg(keys[i%3], i, fmt.Sprintf("body-%d", i)))
	}
	all, err := s.ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	for _, key := range keys {
		var want []Record
		for _, r := range all {
			if r.Key == key {
				want = append(want, r)
			}
		}
		got, err := s.ReadKey(key)
		if err != nil {
			t.Fatal(err)
		}
		if len(got) != len(want) {
			t.Fatalf("key %s: %d records via index, %d via scan", key, len(got), len(want))
		}
		for i := range got {
			if got[i].Seq != want[i].Seq || string(got[i].Data) != string(want[i].Data) {
				t.Fatalf("key %s record %d: %+v vs %+v", key, i, got[i], want[i])
			}
		}
	}
}

func TestWriteFaultInjection(t *testing.T) {
	s := New()
	if _, err := s.Append(msg("k", 1, "survives")); err != nil {
		t.Fatal(err)
	}
	if err := s.Flush(); err != nil {
		t.Fatal(err)
	}

	fail := true
	s.SetWriteFault(func() error {
		if fail {
			return fmt.Errorf("disk offline")
		}
		return nil
	})
	if _, err := s.Append(msg("k", 2, "buffered")); err != nil {
		t.Fatalf("buffered append should not touch the page layer: %v", err)
	}
	if err := s.Flush(); err == nil {
		t.Fatal("flush succeeded despite injected write fault")
	}
	if got := s.Stats().WriteFaults; got == 0 {
		t.Fatal("write fault not counted")
	}

	// An oversized record hits the page layer synchronously.
	big := Record{Kind: KindCheckpoint, Key: "k", Seq: 3, Data: make([]byte, 2*PageSize)}
	if _, err := s.Append(big); err == nil {
		t.Fatal("oversized append succeeded despite injected write fault")
	}

	// Heal: the store keeps working and earlier data is intact.
	fail = false
	if err := s.Flush(); err != nil {
		t.Fatal(err)
	}
	s.SetWriteFault(nil)
	recs, err := s.ReadKey("k")
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) == 0 || string(recs[0].Data) != "survives" {
		t.Fatalf("pre-fault record lost: %+v", recs)
	}
}
