package stablestore

import (
	"bytes"
	"encoding/binary"
	"testing"
)

// sealImage builds the canonical sealed-segment file image for recs —
// records, index block, footer — the same bytes sealLocked writes.
func sealImage(recs []Record) []byte {
	g := newSegment(0, 0)
	for i := range recs {
		r := recs[i]
		ord := uint32(g.count())
		g.data = appendRecord(g.data, &r)
		g.recOff = append(g.recOff, uint32(len(g.data)))
		kr := g.run(r.Key)
		kr.seqs = append(kr.seqs, r.Seq)
		kr.ords = append(kr.ords, ord)
		if r.Seq < kr.minSeq {
			kr.minSeq = r.Seq
		}
		if r.Seq > kr.maxSeq {
			kr.maxSeq = r.Seq
		}
	}
	return append(append([]byte(nil), g.data...), encodeSegmentTail(g)...)
}

func recordsEqual(a, b []Record) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i].Kind != b[i].Kind || a[i].Key != b[i].Key ||
			a[i].Seq != b[i].Seq || !bytes.Equal(a[i].Data, b[i].Data) {
			return false
		}
	}
	return true
}

// FuzzSegmentDecode throws arbitrary bytes at the segment-file decoder and
// checks the recovery invariants: never panic, and whatever records come
// back re-encode into a canonical sealed image that decodes to the same
// records (the round-trip the recorder's rebuild depends on). The seeds
// cover the crash shapes the file-backed tests pin individually: a torn
// final segment, a truncated index block, paged-style zero padding, and a
// duplicate (key, seq) run.
func FuzzSegmentDecode(f *testing.F) {
	recs := []Record{
		{Kind: KindMessage, Key: "msg:0", Seq: 1, Data: []byte("hello")},
		{Kind: KindMessage, Key: "msg:1", Seq: 1, Data: bytes.Repeat([]byte{0xab}, 300)},
		{Kind: KindCheckpoint, Key: "ck:0", Seq: 1, Data: []byte("state")},
		{Kind: KindMeta, Key: "meta:restart", Seq: 2},
		{Kind: KindMessage, Key: "msg:0", Seq: 2, Data: []byte("world")},
	}
	whole := sealImage(recs)
	f.Add([]byte(nil))
	f.Add(whole)
	// Torn final segment: the crash cut the last record short.
	f.Add(whole[:len(whole)/2])
	// Truncated index: data region intact, index and footer cut off mid-way.
	dataLen := 0
	for i := range recs {
		dataLen = len(appendRecord(make([]byte, 0, 1024), &recs[i])) + dataLen
	}
	f.Add(whole[:dataLen+6])
	// Zero padding after valid records (a paged-style page tail).
	f.Add(append(append([]byte(nil), whole[:dataLen]...), make([]byte, 64)...))
	// Duplicate (key, seq): the dedup happens above the codec, so the
	// decoder must pass both through.
	f.Add(sealImage([]Record{
		{Kind: KindMessage, Key: "dup", Seq: 7, Data: []byte("a")},
		{Kind: KindMessage, Key: "dup", Seq: 7, Data: []byte("b")},
	}))

	f.Fuzz(func(t *testing.T, b []byte) {
		recs, sealed, err := decodeSegment(b)
		if err != nil {
			t.Fatalf("decodeSegment error on arbitrary input: %v", err)
		}
		if sealed {
			// A sealed verdict means both CRCs matched and the record
			// count agreed — the decode must account for every data byte.
			n := 0
			for i := range recs {
				n += len(appendRecord(nil, &recs[i]))
			}
			foot := b[len(b)-segFooterSize:]
			if got := int(binary.BigEndian.Uint64(foot[0:8])); n > got {
				t.Fatalf("sealed decode used %d bytes of a %d-byte data region", n, got)
			}
		}

		// Round trip: whatever was recovered re-encodes to a canonical
		// sealed image that decodes back to the same records.
		img := sealImage(recs)
		recs2, sealed2, err := decodeSegment(img)
		if err != nil || !sealed2 {
			t.Fatalf("canonical re-encode did not decode sealed: err=%v sealed=%v", err, sealed2)
		}
		if !recordsEqual(recs, recs2) {
			t.Fatalf("round trip changed records: %d in, %d out", len(recs), len(recs2))
		}

		// Tearing the canonical image's footer off must fall back to the
		// prefix scan and recover a prefix of the same records.
		if len(img) > segFooterSize {
			recs3, sealed3, err := decodeSegment(img[:len(img)-segFooterSize])
			if err != nil {
				t.Fatalf("torn decode error: %v", err)
			}
			if !sealed3 {
				if len(recs3) > len(recs) || !recordsEqual(recs3, recs[:len(recs3)]) {
					t.Fatalf("torn decode is not a prefix: %d of %d records", len(recs3), len(recs))
				}
			}
		}
	})
}
