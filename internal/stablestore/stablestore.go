// Package stablestore implements the recorder's reliable non-volatile
// storage (§3.3.1, §4.5): an append-oriented paged store for published
// messages and checkpoints with the exact disk discipline the thesis
// describes — "As messages are received they are timestamped and buffered
// ... When the buffer is full it is written to disk. Before allocating a
// buffer to a disk page, the disk page is read in. Any messages that are no
// longer valid are removed and the buffer is compacted."
//
// Two backends exist: an in-memory Store (the default for simulations,
// modelling a disk that survives recorder crashes, which the simulation
// injects by discarding only the recorder's volatile state) and a
// file-backed Store for the cmd/starhub real-network mode. Both expose the
// same page/record API and both support rebuilding the recorder's process
// database purely from stored pages ("If the recorder crashes, it is
// possible to rebuild the data base from the disk", §4.5).
package stablestore

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"os"
	"sort"
	"sync"
)

// PageSize is the disk page / write buffer size. §5.1 removes the disk
// saturation "by allowing messages to be written out in 4k byte buffers
// rather than forcing one disk write per message".
const PageSize = 4096

// RecordKind tags stored records.
type RecordKind uint8

const (
	// KindMessage is a published message.
	KindMessage RecordKind = iota + 1
	// KindCheckpoint is a process checkpoint.
	KindCheckpoint
	// KindMeta is recorder metadata (restart counter, process notes).
	KindMeta
)

// Record is one stored item.
type Record struct {
	Kind RecordKind
	// Key groups records (by convention the process id string).
	Key string
	// Seq orders records within a key.
	Seq uint64
	// Data is the payload.
	Data []byte
}

// encodedLen returns the on-page size of the record.
func (r *Record) encodedLen() int {
	return 1 + 2 + len(r.Key) + 8 + 4 + len(r.Data)
}

func (r *Record) encode(buf *bytes.Buffer) {
	buf.WriteByte(byte(r.Kind))
	var tmp [8]byte
	binary.BigEndian.PutUint16(tmp[:2], uint16(len(r.Key)))
	buf.Write(tmp[:2])
	buf.WriteString(r.Key)
	binary.BigEndian.PutUint64(tmp[:8], r.Seq)
	buf.Write(tmp[:8])
	binary.BigEndian.PutUint32(tmp[:4], uint32(len(r.Data)))
	buf.Write(tmp[:4])
	buf.Write(r.Data)
}

var errCorruptPage = errors.New("stablestore: corrupt page")

func decodeRecords(b []byte) ([]Record, error) {
	var out []Record
	for len(b) > 0 {
		if b[0] == 0 {
			break // zero padding: end of page
		}
		if len(b) < 3 {
			return nil, errCorruptPage
		}
		kind := RecordKind(b[0])
		kl := int(binary.BigEndian.Uint16(b[1:3]))
		b = b[3:]
		if len(b) < kl+12 {
			return nil, errCorruptPage
		}
		key := string(b[:kl])
		seq := binary.BigEndian.Uint64(b[kl : kl+8])
		dl := int(binary.BigEndian.Uint32(b[kl+8 : kl+12]))
		b = b[kl+12:]
		if len(b) < dl {
			return nil, errCorruptPage
		}
		data := append([]byte(nil), b[:dl]...)
		b = b[dl:]
		out = append(out, Record{Kind: kind, Key: key, Seq: seq, Data: data})
	}
	return out, nil
}

// Stats counts store activity, feeding the recorder-disk utilization model.
type Stats struct {
	Appends    uint64
	PageWrites uint64
	PageReads  uint64
	Compacted  uint64 // records dropped by compaction
	BytesLive  uint64
}

// Store is the paged stable store. It is safe for concurrent use (the
// starhub server runs it from multiple connections); simulations call it
// single-threaded.
type Store struct {
	mu    sync.Mutex
	pages map[uint64][]byte // pageID -> encoded page (PageSize)
	next  uint64
	// buf is the current write buffer (an unflushed page).
	buf     bytes.Buffer
	bufPage uint64
	// invalid marks (key, seq<=) pairs whose message records may be dropped
	// at the next compaction of their page.
	invalid map[string]uint64
	// invalidSeqs marks individual (key, seq) records as garbage — needed
	// because channel reads can consume messages out of arrival order, so a
	// checkpoint may invalidate a non-prefix subset of a stream.
	invalidSeqs map[string]map[uint64]bool
	// chains maps the first page of an oversized record (checkpoints) to
	// its continuation pages.
	chains map[uint64][]uint64
	stats  Stats

	// file backing, optional.
	f *os.File
}

// New returns an in-memory store.
func New() *Store {
	return &Store{pages: make(map[uint64][]byte), invalid: make(map[string]uint64)}
}

// Open returns a file-backed store, loading any existing pages from path.
func Open(path string) (*Store, error) {
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, err
	}
	s := New()
	s.f = f
	info, err := f.Stat()
	if err != nil {
		f.Close()
		return nil, err
	}
	n := info.Size() / PageSize
	for i := int64(0); i < n; i++ {
		page := make([]byte, PageSize)
		if _, err := f.ReadAt(page, i*PageSize); err != nil {
			f.Close()
			return nil, err
		}
		s.pages[uint64(i)] = page
	}
	s.next = uint64(n)
	return s, nil
}

// Close releases the file backing, if any.
func (s *Store) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if err := s.flushLocked(); err != nil {
		return err
	}
	if s.f != nil {
		err := s.f.Close()
		s.f = nil
		return err
	}
	return nil
}

// Stats returns a copy of the counters.
func (s *Store) Stats() Stats {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.stats
}

// Append stores a record, returning the page it lands on. Records larger
// than a page are split across dedicated pages transparently on read; for
// simplicity here they get a page of their own (checkpoints are the only
// large records).
func (s *Store) Append(r Record) (uint64, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.stats.Appends++
	s.stats.BytesLive += uint64(len(r.Data))

	if r.encodedLen() > PageSize {
		// Oversized record: dedicated page sequence.
		var big bytes.Buffer
		r.encode(&big)
		first := uint64(0)
		data := big.Bytes()
		for i := 0; i < len(data); i += PageSize {
			end := i + PageSize
			if end > len(data) {
				end = len(data)
			}
			page := make([]byte, PageSize)
			copy(page, data[i:end])
			id := s.allocLocked()
			if i == 0 {
				first = id
			}
			// Oversized pages are marked by a continuation map entry.
			s.pages[id] = page
			s.oversize(first, id)
			if err := s.writePageLocked(id); err != nil {
				return 0, err
			}
		}
		return first, nil
	}

	if s.buf.Len()+r.encodedLen() > PageSize {
		if err := s.flushLocked(); err != nil {
			return 0, err
		}
	}
	if s.buf.Len() == 0 {
		s.bufPage = s.allocLocked()
	}
	r.encode(&s.buf)
	return s.bufPage, nil
}

func (s *Store) oversize(first, page uint64) {
	if s.chains == nil {
		s.chains = make(map[uint64][]uint64)
	}
	if page != first {
		s.chains[first] = append(s.chains[first], page)
	} else if _, ok := s.chains[first]; !ok {
		s.chains[first] = nil
	}
}

// Flush forces the current write buffer to disk. The recorder calls it
// before acknowledging a message (§3.3.4: the acknowledgement "is given
// only after the message has been reliably stored") — or batches it, which
// is the 4 KB-buffer optimization of §5.1.
func (s *Store) Flush() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.flushLocked()
}

func (s *Store) flushLocked() error {
	if s.buf.Len() == 0 {
		return nil
	}
	page := make([]byte, PageSize)
	copy(page, s.buf.Bytes())
	s.pages[s.bufPage] = page
	s.buf.Reset()
	return s.writePageLocked(s.bufPage)
}

func (s *Store) writePageLocked(id uint64) error {
	s.stats.PageWrites++
	if s.f == nil {
		return nil
	}
	if _, err := s.f.WriteAt(s.pages[id], int64(id)*PageSize); err != nil {
		return fmt.Errorf("stablestore: write page %d: %w", id, err)
	}
	return nil
}

func (s *Store) allocLocked() uint64 {
	id := s.next
	s.next++
	return id
}

// Invalidate marks message records of key with seq <= through as garbage;
// compaction reclaims them lazily ("Any messages that are no longer valid
// are removed and the buffer is compacted", §4.5). The recorder calls this
// after a checkpoint supersedes old messages (§3.3.1).
func (s *Store) Invalidate(key string, through uint64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if cur, ok := s.invalid[key]; !ok || through > cur {
		s.invalid[key] = through
	}
}

// InvalidateSeqs marks specific (key, seq) message records as garbage.
func (s *Store) InvalidateSeqs(key string, seqs []uint64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.invalidSeqs == nil {
		s.invalidSeqs = make(map[string]map[uint64]bool)
	}
	set := s.invalidSeqs[key]
	if set == nil {
		set = make(map[uint64]bool)
		s.invalidSeqs[key] = set
	}
	for _, q := range seqs {
		set[q] = true
	}
}

// dead reports whether a message record is invalidated.
func (s *Store) dead(r *Record) bool {
	if r.Kind != KindMessage {
		return false
	}
	if through, ok := s.invalid[r.Key]; ok && r.Seq <= through {
		return true
	}
	return s.invalidSeqs[r.Key][r.Seq]
}

// Compact rewrites every full page, dropping invalidated message records.
// It returns the number of records dropped.
func (s *Store) Compact() (int, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if err := s.flushLocked(); err != nil {
		return 0, err
	}
	dropped := 0
	for id, page := range s.pages {
		if s.isChainPage(id) {
			continue
		}
		recs, err := decodeRecords(page)
		if err != nil {
			return dropped, err
		}
		var keep []Record
		changed := false
		for _, r := range recs {
			r := r
			if s.dead(&r) {
				dropped++
				changed = true
				s.stats.Compacted++
				if s.stats.BytesLive >= uint64(len(r.Data)) {
					s.stats.BytesLive -= uint64(len(r.Data))
				}
				continue
			}
			keep = append(keep, r)
		}
		if !changed {
			continue
		}
		var buf bytes.Buffer
		for _, r := range keep {
			r.encode(&buf)
		}
		newPage := make([]byte, PageSize)
		copy(newPage, buf.Bytes())
		s.pages[id] = newPage
		if err := s.writePageLocked(id); err != nil {
			return dropped, err
		}
	}
	return dropped, nil
}

func (s *Store) isChainPage(id uint64) bool {
	for first, rest := range s.chains {
		if id == first {
			return true
		}
		for _, p := range rest {
			if id == p {
				return true
			}
		}
	}
	return false
}

// ReadAll returns every live record, ordered by (key, seq, insertion). The
// recorder uses it to rebuild its database after a crash (§3.3.4, §4.5).
func (s *Store) ReadAll() ([]Record, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if err := s.flushLocked(); err != nil {
		return nil, err
	}
	var out []Record

	// Regular pages, in page order (which is insertion order).
	ids := make([]uint64, 0, len(s.pages))
	for id := range s.pages {
		if !s.isChainPage(id) {
			ids = append(ids, id)
		}
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	for _, id := range ids {
		s.stats.PageReads++
		recs, err := decodeRecords(s.pages[id])
		if err != nil {
			return nil, fmt.Errorf("page %d: %w", id, err)
		}
		out = append(out, recs...)
	}

	// Oversized chains.
	firsts := make([]uint64, 0, len(s.chains))
	for f := range s.chains {
		firsts = append(firsts, f)
	}
	sort.Slice(firsts, func(i, j int) bool { return firsts[i] < firsts[j] })
	for _, f := range firsts {
		var whole bytes.Buffer
		whole.Write(s.pages[f])
		for _, p := range s.chains[f] {
			whole.Write(s.pages[p])
		}
		s.stats.PageReads += uint64(1 + len(s.chains[f]))
		recs, err := decodeRecords(whole.Bytes())
		if err != nil {
			return nil, fmt.Errorf("chain %d: %w", f, err)
		}
		out = append(out, recs...)
	}
	return out, nil
}

// ReadKey returns the live records for one key in seq order.
func (s *Store) ReadKey(key string) ([]Record, error) {
	all, err := s.ReadAll()
	if err != nil {
		return nil, err
	}
	var out []Record
	for _, r := range all {
		if r.Key == key {
			out = append(out, r)
		}
	}
	sort.SliceStable(out, func(i, j int) bool { return out[i].Seq < out[j].Seq })
	return out, nil
}

// Pages returns the number of allocated pages (storage footprint).
func (s *Store) Pages() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	n := len(s.pages)
	if s.buf.Len() > 0 {
		n++
	}
	return n
}
