// Package stablestore implements the recorder's reliable non-volatile
// storage (§3.3.1, §4.5): an append-oriented paged store for published
// messages and checkpoints with the exact disk discipline the thesis
// describes — "As messages are received they are timestamped and buffered
// ... When the buffer is full it is written to disk. Before allocating a
// buffer to a disk page, the disk page is read in. Any messages that are no
// longer valid are removed and the buffer is compacted."
//
// Two engines implement the Store interface:
//
//   - Paged is the thesis-exact 4 KB-paged store (the default): per-key
//     page chains, read-modify-write page allocation, and lazy in-place
//     compaction. It exists in-memory (simulations, modelling a disk that
//     survives recorder crashes) and file-backed (cmd/starhub).
//   - Segmented is the log-structured high-volume engine: appends land in
//     an active segment committed at group-commit boundaries, sealed
//     segments are immutable with a per-segment sparse (key, seq) index,
//     and checkpoint truncation drops whole dead segments in O(segments).
//
// Both engines support rebuilding the recorder's process database purely
// from stored records ("If the recorder crashes, it is possible to rebuild
// the data base from the disk", §4.5), and the same record sequence fed to
// either engine rebuilds a byte-identical database (the cross-backend
// oracle the root acceptance tests enforce).
package stablestore

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"os"
	"sort"
	"sync"
)

// PageSize is the disk page / write buffer size. §5.1 removes the disk
// saturation "by allowing messages to be written out in 4k byte buffers
// rather than forcing one disk write per message".
const PageSize = 4096

// RecordKind tags stored records.
type RecordKind uint8

const (
	// KindMessage is a published message.
	KindMessage RecordKind = iota + 1
	// KindCheckpoint is a process checkpoint.
	KindCheckpoint
	// KindMeta is recorder metadata (restart counter, process notes).
	KindMeta
)

// Record is one stored item.
type Record struct {
	Kind RecordKind
	// Key groups records (by convention the process id string).
	Key string
	// Seq orders records within a key.
	Seq uint64
	// Data is the payload.
	Data []byte
}

// encodedLen returns the on-page size of the record.
func (r *Record) encodedLen() int {
	return 1 + 2 + len(r.Key) + 8 + 4 + len(r.Data)
}

func (r *Record) encode(buf *bytes.Buffer) {
	buf.WriteByte(byte(r.Kind))
	var tmp [8]byte
	binary.BigEndian.PutUint16(tmp[:2], uint16(len(r.Key)))
	buf.Write(tmp[:2])
	buf.WriteString(r.Key)
	binary.BigEndian.PutUint64(tmp[:8], r.Seq)
	buf.Write(tmp[:8])
	binary.BigEndian.PutUint32(tmp[:4], uint32(len(r.Data)))
	buf.Write(tmp[:4])
	buf.Write(r.Data)
}

var errCorruptPage = errors.New("stablestore: corrupt page")

// appendRecord flat-encodes r onto dst — same wire format as
// Record.encode, without the bytes.Buffer indirection (the segmented
// engine's append hot path).
func appendRecord(dst []byte, r *Record) []byte {
	var tmp [8]byte
	dst = append(dst, byte(r.Kind))
	binary.BigEndian.PutUint16(tmp[:2], uint16(len(r.Key)))
	dst = append(dst, tmp[:2]...)
	dst = append(dst, r.Key...)
	binary.BigEndian.PutUint64(tmp[:8], r.Seq)
	dst = append(dst, tmp[:8]...)
	binary.BigEndian.PutUint32(tmp[:4], uint32(len(r.Data)))
	dst = append(dst, tmp[:4]...)
	dst = append(dst, r.Data...)
	return dst
}

// decodeOne parses the record at the head of b, returning it and its
// encoded length. A leading zero byte (page padding) returns n == 0 with a
// nil error.
func decodeOne(b []byte) (Record, int, error) {
	if len(b) == 0 || b[0] == 0 {
		return Record{}, 0, nil
	}
	if len(b) < 3 {
		return Record{}, 0, errCorruptPage
	}
	kind := RecordKind(b[0])
	kl := int(binary.BigEndian.Uint16(b[1:3]))
	if len(b) < 3+kl+12 {
		return Record{}, 0, errCorruptPage
	}
	key := string(b[3 : 3+kl])
	seq := binary.BigEndian.Uint64(b[3+kl : 3+kl+8])
	dl := int(binary.BigEndian.Uint32(b[3+kl+8 : 3+kl+12]))
	n := 3 + kl + 12 + dl
	if len(b) < n {
		return Record{}, 0, errCorruptPage
	}
	data := append([]byte(nil), b[3+kl+12:n]...)
	return Record{Kind: kind, Key: key, Seq: seq, Data: data}, n, nil
}

func decodeRecords(b []byte) ([]Record, error) {
	var out []Record
	for len(b) > 0 {
		rec, n, err := decodeOne(b)
		if err != nil {
			return nil, err
		}
		if n == 0 {
			break // zero padding: end of page
		}
		b = b[n:]
		out = append(out, rec)
	}
	return out, nil
}

// Stats counts store activity, feeding the recorder-disk utilization model.
// The Seg* fields stay zero on the paged engine; PageWrites/PageReads stay
// zero on the segmented engine.
type Stats struct {
	Appends     uint64
	PageWrites  uint64
	PageReads   uint64
	Compacted   uint64 // records dropped by compaction/truncation
	BytesLive   uint64
	WriteFaults uint64 // page writes failed by the injected fault hook

	// Segmented-engine counters.
	SegFlushes  uint64 // group commits (one per flush window with data)
	SegSealed   uint64 // segments sealed immutable
	SegDropped  uint64 // whole segments dropped by truncation
	SegRewrites uint64 // frontier segments rewritten by the compactor
	Segments    uint64 // current segment count (sealed + active)
	BytesDead   uint64 // payload bytes invalidated but not yet reclaimed
}

// Store is the engine interface the recorder writes through. Two
// implementations exist: *Paged (thesis-exact default) and *Segmented (the
// log-structured high-volume engine). Select one with NewStore.
type Store interface {
	// Append stores a record, returning the page (paged) or segment
	// (segmented) it lands on.
	Append(r Record) (uint64, error)
	// Flush is a durability boundary: the paged engine seals the write
	// buffer and syncs dirty pages; the segmented engine group-commits
	// every record that arrived since the previous flush.
	Flush() error
	// Invalidate marks message records of key with seq <= through garbage.
	Invalidate(key string, through uint64)
	// InvalidateSeqs marks specific (key, seq) message records garbage.
	InvalidateSeqs(key string, seqs []uint64)
	// Compact reclaims garbage: the paged engine rewrites affected pages in
	// place; the segmented engine drops whole dead segments (O(segments))
	// and rewrites at most one frontier segment.
	Compact() (int, error)
	// ReadAll returns every stored record in insertion order.
	ReadAll() ([]Record, error)
	// ReadKey returns key's records in seq order.
	ReadKey(key string) ([]Record, error)
	// Pages returns the storage footprint (pages or segments).
	Pages() int
	Stats() Stats
	// SetWriteFault installs a fault hook consulted before logical writes.
	SetWriteFault(fn func() error)
	Close() error
}

// BatchObserver is implemented by engines that group-commit; the recorder
// uses it to feed the per-flush batch-size histogram without the store
// depending on the metrics package.
type BatchObserver interface {
	SetBatchObserver(fn func(records int))
}

// Backend names a storage engine.
type Backend string

const (
	// BackendPaged is the thesis-exact 4 KB-paged engine (the default).
	BackendPaged Backend = "paged"
	// BackendSegment is the log-structured segment engine.
	BackendSegment Backend = "segment"
)

// Config selects and tunes a store engine.
type Config struct {
	// Backend picks the engine; empty means BackendPaged.
	Backend Backend
	// Path enables file backing: a single page file for the paged engine, a
	// segment directory for the segmented one. Empty means in-memory.
	Path string
	// SegmentBytes is the segmented engine's seal threshold (0 means
	// DefaultSegmentBytes).
	SegmentBytes int
}

// NewStore builds the engine cfg selects.
func NewStore(cfg Config) (Store, error) {
	switch cfg.Backend {
	case "", BackendPaged:
		if cfg.Path != "" {
			return Open(cfg.Path)
		}
		return New(), nil
	case BackendSegment:
		if cfg.Path != "" {
			return OpenSegmented(cfg.Path, cfg.SegmentBytes)
		}
		return NewSegmented(cfg.SegmentBytes), nil
	default:
		return nil, fmt.Errorf("stablestore: unknown backend %q", cfg.Backend)
	}
}

// Paged is the thesis-exact paged stable store. It is safe for concurrent
// use (the starhub server runs it from multiple connections); simulations
// call it single-threaded.
type Paged struct {
	mu    sync.Mutex
	pages map[uint64][]byte // pageID -> encoded page (PageSize)
	next  uint64
	// buf is the current write buffer (an unflushed page).
	buf     bytes.Buffer
	bufPage uint64
	// invalid marks (key, seq<=) pairs whose message records may be dropped
	// at the next compaction of their page.
	invalid map[string]uint64
	// invalidSeqs marks individual (key, seq) records as garbage — needed
	// because channel reads can consume messages out of arrival order, so a
	// checkpoint may invalidate a non-prefix subset of a stream.
	invalidSeqs map[string]map[uint64]bool
	// chains maps the first page of an oversized record (checkpoints) to
	// its continuation pages; chainSet holds every page of every chain
	// (including firsts) for O(1) membership tests.
	chains   map[uint64][]uint64
	chainSet map[uint64]bool
	// keyPages indexes which pages hold records of each key (chains by
	// their first page), so ReadKey and Compact visit only relevant pages
	// instead of scanning the whole store.
	keyPages map[string][]uint64
	// dirty holds page ids whose in-memory content is newer than the file
	// backing. Physical WriteAt is batched to Flush/Close/Compact — the
	// §5.1 buffering discipline extended to page syncs — while
	// Stats.PageWrites keeps counting logical page writes for the disk
	// utilization model.
	dirty map[uint64]bool
	stats Stats
	// writeFault, when set, is consulted before every logical page write; a
	// non-nil return fails the write. Fault-injection hook for tests — the
	// recorder itself treats stable-storage failure as beyond the paper's
	// fault model (TMR'd, battery-backed disks, §3.3.4) and panics, so live
	// chaos runs inject at the tap instead.
	writeFault func() error

	// file backing, optional.
	f *os.File
}

// New returns an in-memory paged store.
func New() *Paged {
	return &Paged{
		pages:    make(map[uint64][]byte),
		invalid:  make(map[string]uint64),
		keyPages: make(map[string][]uint64),
	}
}

// Open returns a file-backed store, loading any existing pages from path.
func Open(path string) (*Paged, error) {
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, err
	}
	s := New()
	s.f = f
	info, err := f.Stat()
	if err != nil {
		f.Close()
		return nil, err
	}
	n := info.Size() / PageSize
	for i := int64(0); i < n; i++ {
		page := make([]byte, PageSize)
		if _, err := f.ReadAt(page, i*PageSize); err != nil {
			f.Close()
			return nil, err
		}
		s.pages[uint64(i)] = page
	}
	s.next = uint64(n)
	s.rebuildIndexLocked()
	return s, nil
}

// rebuildIndexLocked reconstructs the volatile chain and key indexes from
// raw pages after Open. Chains must be re-derived or a reopened store would
// try to decode an oversized record's first page as a self-contained page
// and fail: a first page is recognizable because its single record's encoded
// length exceeds the page, and its continuations are the immediately
// following pages (Append allocates them contiguously).
func (s *Paged) rebuildIndexLocked() {
	ids := make([]uint64, 0, len(s.pages))
	for id := range s.pages {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	claimed := uint64(0) // continuation pages already consumed by a chain
	for _, id := range ids {
		if id < claimed {
			continue
		}
		page := s.pages[id]
		key, total, ok := peekRecord(page)
		if !ok {
			continue // empty or unparseable page; ReadAll will complain
		}
		if total <= PageSize {
			// Regular page: index every record's key.
			if recs, err := decodeRecords(page); err == nil {
				for i := range recs {
					s.indexKeyLocked(recs[i].Key, id)
				}
			}
			continue
		}
		// Oversized record: claim ceil(total/PageSize) contiguous pages.
		npages := uint64((total + PageSize - 1) / PageSize)
		s.oversize(id, id)
		for p := id + 1; p < id+npages; p++ {
			s.oversize(id, p)
		}
		s.indexKeyLocked(key, id)
		claimed = id + npages
	}
}

// peekRecord parses the header of the first record on a page, returning its
// key and total encoded length without materializing the payload.
func peekRecord(b []byte) (key string, total int, ok bool) {
	if len(b) < 3 || b[0] == 0 {
		return "", 0, false
	}
	kl := int(binary.BigEndian.Uint16(b[1:3]))
	if len(b) < 3+kl+12 {
		return "", 0, false
	}
	key = string(b[3 : 3+kl])
	dl := int(binary.BigEndian.Uint32(b[3+kl+8 : 3+kl+12]))
	return key, 1 + 2 + kl + 8 + 4 + dl, true
}

// indexKeyLocked records that page id holds records of key (dedupes the
// common case of consecutive appends landing on the same buffer page).
func (s *Paged) indexKeyLocked(key string, id uint64) {
	ids := s.keyPages[key]
	if n := len(ids); n > 0 && ids[n-1] == id {
		return
	}
	s.keyPages[key] = append(ids, id)
}

// dropKeyPageLocked removes page id from key's index (compaction dropped
// the key's last record on that page).
func (s *Paged) dropKeyPageLocked(key string, id uint64) {
	ids := s.keyPages[key]
	for i, p := range ids {
		if p == id {
			s.keyPages[key] = append(ids[:i], ids[i+1:]...)
			return
		}
	}
}

// Close releases the file backing, if any.
func (s *Paged) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if err := s.flushLocked(); err != nil {
		return err
	}
	if err := s.syncLocked(); err != nil {
		return err
	}
	if s.f != nil {
		err := s.f.Close()
		s.f = nil
		return err
	}
	return nil
}

// Stats returns a copy of the counters.
func (s *Paged) Stats() Stats {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.stats
}

// SetWriteFault installs (or, with nil, removes) a fault hook consulted
// before every logical page write; a non-nil return error fails the write.
// The hook runs with the store lock held and must not call back into the
// store.
func (s *Paged) SetWriteFault(fn func() error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.writeFault = fn
}

// Append stores a record, returning the page it lands on. Records larger
// than a page are split across dedicated pages transparently on read; for
// simplicity here they get a page of their own (checkpoints are the only
// large records).
func (s *Paged) Append(r Record) (uint64, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.stats.Appends++
	s.stats.BytesLive += uint64(len(r.Data))

	if r.encodedLen() > PageSize {
		// Oversized record: dedicated page sequence.
		var big bytes.Buffer
		r.encode(&big)
		first := uint64(0)
		data := big.Bytes()
		for i := 0; i < len(data); i += PageSize {
			end := i + PageSize
			if end > len(data) {
				end = len(data)
			}
			page := make([]byte, PageSize)
			copy(page, data[i:end])
			id := s.allocLocked()
			if i == 0 {
				first = id
			}
			// Oversized pages are marked by a continuation map entry.
			s.pages[id] = page
			s.oversize(first, id)
			if err := s.writePageLocked(id); err != nil {
				return 0, err
			}
		}
		s.indexKeyLocked(r.Key, first)
		return first, nil
	}

	if s.buf.Len()+r.encodedLen() > PageSize {
		if err := s.flushLocked(); err != nil {
			return 0, err
		}
	}
	if s.buf.Len() == 0 {
		s.bufPage = s.allocLocked()
	}
	r.encode(&s.buf)
	s.indexKeyLocked(r.Key, s.bufPage)
	return s.bufPage, nil
}

func (s *Paged) oversize(first, page uint64) {
	if s.chains == nil {
		s.chains = make(map[uint64][]uint64)
		s.chainSet = make(map[uint64]bool)
	}
	if page != first {
		s.chains[first] = append(s.chains[first], page)
	} else if _, ok := s.chains[first]; !ok {
		s.chains[first] = nil
	}
	s.chainSet[page] = true
}

// Flush forces the current write buffer — and every dirty page — to disk.
// The recorder calls it before acknowledging a message (§3.3.4: the
// acknowledgement "is given only after the message has been reliably
// stored") — or batches it, which is the 4 KB-buffer optimization of §5.1.
func (s *Paged) Flush() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if err := s.flushLocked(); err != nil {
		return err
	}
	return s.syncLocked()
}

// flushLocked seals the current write buffer into its page. The page is
// only marked dirty; physical writes batch up until syncLocked.
func (s *Paged) flushLocked() error {
	if s.buf.Len() == 0 {
		return nil
	}
	page := s.pages[s.bufPage]
	if page == nil {
		page = make([]byte, PageSize)
		s.pages[s.bufPage] = page
	}
	copy(page, s.buf.Bytes())
	s.buf.Reset()
	return s.writePageLocked(s.bufPage)
}

// writePageLocked records a logical page write. The physical WriteAt is
// deferred: dirty pages are synced together at the next Flush/Close/Compact
// boundary, so a burst of appends costs one syscall pass instead of one per
// page write.
func (s *Paged) writePageLocked(id uint64) error {
	if s.writeFault != nil {
		if err := s.writeFault(); err != nil {
			s.stats.WriteFaults++
			return fmt.Errorf("stablestore: injected write fault on page %d: %w", id, err)
		}
	}
	s.stats.PageWrites++
	if s.f == nil {
		return nil
	}
	if s.dirty == nil {
		s.dirty = make(map[uint64]bool)
	}
	s.dirty[id] = true
	return nil
}

// syncLocked writes every dirty page to the file backing, in page order.
func (s *Paged) syncLocked() error {
	if s.f == nil || len(s.dirty) == 0 {
		return nil
	}
	ids := make([]uint64, 0, len(s.dirty))
	for id := range s.dirty {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	for _, id := range ids {
		if _, err := s.f.WriteAt(s.pages[id], int64(id)*PageSize); err != nil {
			return fmt.Errorf("stablestore: write page %d: %w", id, err)
		}
		delete(s.dirty, id)
	}
	return nil
}

func (s *Paged) allocLocked() uint64 {
	id := s.next
	s.next++
	return id
}

// Invalidate marks message records of key with seq <= through as garbage;
// compaction reclaims them lazily ("Any messages that are no longer valid
// are removed and the buffer is compacted", §4.5). The recorder calls this
// after a checkpoint supersedes old messages (§3.3.1).
func (s *Paged) Invalidate(key string, through uint64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if cur, ok := s.invalid[key]; !ok || through > cur {
		s.invalid[key] = through
	}
}

// InvalidateSeqs marks specific (key, seq) message records as garbage.
func (s *Paged) InvalidateSeqs(key string, seqs []uint64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.invalidSeqs == nil {
		s.invalidSeqs = make(map[string]map[uint64]bool)
	}
	set := s.invalidSeqs[key]
	if set == nil {
		set = make(map[uint64]bool)
		s.invalidSeqs[key] = set
	}
	for _, q := range seqs {
		set[q] = true
	}
}

// dead reports whether a message record is invalidated.
func (s *Paged) dead(r *Record) bool {
	if r.Kind != KindMessage {
		return false
	}
	if through, ok := s.invalid[r.Key]; ok && r.Seq <= through {
		return true
	}
	return s.invalidSeqs[r.Key][r.Seq]
}

// Compact rewrites pages holding invalidated message records, dropping
// them. Only pages indexed under a key with invalidations are visited —
// compaction cost scales with the garbage, not the store. It returns the
// number of records dropped.
func (s *Paged) Compact() (int, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if err := s.flushLocked(); err != nil {
		return 0, err
	}
	// Candidate pages: every page of every key with a pending invalidation.
	cand := make(map[uint64]bool)
	for key := range s.invalid {
		for _, id := range s.keyPages[key] {
			cand[id] = true
		}
	}
	for key := range s.invalidSeqs {
		for _, id := range s.keyPages[key] {
			cand[id] = true
		}
	}
	ids := make([]uint64, 0, len(cand))
	for id := range cand {
		if !s.isChainPage(id) {
			ids = append(ids, id)
		}
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	dropped := 0
	for _, id := range ids {
		recs, err := decodeRecords(s.pages[id])
		if err != nil {
			return dropped, err
		}
		var keep []Record
		changed := false
		for _, r := range recs {
			r := r
			if s.dead(&r) {
				dropped++
				changed = true
				s.stats.Compacted++
				if s.stats.BytesLive >= uint64(len(r.Data)) {
					s.stats.BytesLive -= uint64(len(r.Data))
				}
				continue
			}
			keep = append(keep, r)
		}
		if !changed {
			continue
		}
		var buf bytes.Buffer
		kept := make(map[string]bool, len(keep))
		for _, r := range keep {
			r.encode(&buf)
			kept[r.Key] = true
		}
		// Keys whose last record on this page was dropped leave the index.
		for _, r := range recs {
			if !kept[r.Key] {
				s.dropKeyPageLocked(r.Key, id)
			}
		}
		newPage := make([]byte, PageSize)
		copy(newPage, buf.Bytes())
		s.pages[id] = newPage
		if err := s.writePageLocked(id); err != nil {
			return dropped, err
		}
	}
	if err := s.syncLocked(); err != nil {
		return dropped, err
	}
	return dropped, nil
}

func (s *Paged) isChainPage(id uint64) bool { return s.chainSet[id] }

// ReadAll returns every live record, ordered by (key, seq, insertion). The
// recorder uses it to rebuild its database after a crash (§3.3.4, §4.5).
func (s *Paged) ReadAll() ([]Record, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if err := s.flushLocked(); err != nil {
		return nil, err
	}
	var out []Record

	// Regular pages, in page order (which is insertion order).
	ids := make([]uint64, 0, len(s.pages))
	for id := range s.pages {
		if !s.isChainPage(id) {
			ids = append(ids, id)
		}
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	for _, id := range ids {
		s.stats.PageReads++
		recs, err := decodeRecords(s.pages[id])
		if err != nil {
			return nil, fmt.Errorf("page %d: %w", id, err)
		}
		out = append(out, recs...)
	}

	// Oversized chains.
	firsts := make([]uint64, 0, len(s.chains))
	for f := range s.chains {
		firsts = append(firsts, f)
	}
	sort.Slice(firsts, func(i, j int) bool { return firsts[i] < firsts[j] })
	for _, f := range firsts {
		var whole bytes.Buffer
		whole.Write(s.pages[f])
		for _, p := range s.chains[f] {
			whole.Write(s.pages[p])
		}
		s.stats.PageReads += uint64(1 + len(s.chains[f]))
		recs, err := decodeRecords(whole.Bytes())
		if err != nil {
			return nil, fmt.Errorf("chain %d: %w", f, err)
		}
		out = append(out, recs...)
	}
	return out, nil
}

// ReadKey returns the live records for one key in seq order. The per-key
// page index makes this proportional to the key's own pages rather than a
// full-store scan.
func (s *Paged) ReadKey(key string) ([]Record, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if err := s.flushLocked(); err != nil {
		return nil, err
	}
	ids := append([]uint64(nil), s.keyPages[key]...)
	// Match ReadAll's traversal (regular pages in id order, then chains) so
	// insertion-order ties break identically.
	sort.Slice(ids, func(i, j int) bool {
		ci, cj := s.chainSet[ids[i]], s.chainSet[ids[j]]
		if ci != cj {
			return !ci
		}
		return ids[i] < ids[j]
	})
	var out []Record
	for _, id := range ids {
		var recs []Record
		var err error
		if s.chainSet[id] {
			var whole bytes.Buffer
			whole.Write(s.pages[id])
			for _, p := range s.chains[id] {
				whole.Write(s.pages[p])
			}
			s.stats.PageReads += uint64(1 + len(s.chains[id]))
			recs, err = decodeRecords(whole.Bytes())
		} else {
			s.stats.PageReads++
			recs, err = decodeRecords(s.pages[id])
		}
		if err != nil {
			return nil, fmt.Errorf("page %d: %w", id, err)
		}
		for _, r := range recs {
			if r.Key == key {
				out = append(out, r)
			}
		}
	}
	sort.SliceStable(out, func(i, j int) bool { return out[i].Seq < out[j].Seq })
	return out, nil
}

// Pages returns the number of allocated pages (storage footprint).
func (s *Paged) Pages() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	n := len(s.pages)
	if s.buf.Len() > 0 {
		n++
	}
	return n
}
