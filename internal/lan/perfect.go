package lan

import (
	"publishing/internal/frame"
	"publishing/internal/simtime"
	"publishing/internal/trace"
)

// Perfect is an idealized broadcast medium: frames are serialized FIFO with
// realistic transmission times but never collide. Publish-before-use is
// enforced directly (a frame the taps failed to store is not delivered, as
// if its checksum were bad), which makes Perfect the reference semantics the
// fancier media must match. Unit and integration tests default to it.
type Perfect struct {
	base
	busyUntil simtime.Time
}

// NewPerfect returns a perfect broadcast medium.
func NewPerfect(cfg Config, sched *simtime.Scheduler, rng *simtime.Rand, log *trace.Log) *Perfect {
	return &Perfect{base: newBase(cfg, sched, rng, log)}
}

// Send schedules the frame for delivery after the channel drains.
func (m *Perfect) Send(src frame.NodeID, f *frame.Frame) {
	if m.faults.Down(src) {
		return
	}
	m.stats.FramesSent++
	n := f.WireLen()
	m.stats.BytesOnWire += uint64(n)
	start := m.sched.Now()
	if m.busyUntil > start {
		start = m.busyUntil
	}
	end := start + m.cfg.FrameTime(n)
	m.busyUntil = end
	m.stats.BusyTime += end - start
	g := f.Clone()
	m.maybeCorrupt(g)
	m.sched.At(end, func() { m.complete(src, g) })
}

func (m *Perfect) complete(src frame.NodeID, f *frame.Frame) {
	if m.faults.Down(src) {
		// Sender died mid-flight; treat the frame as never completed.
		m.stats.FramesLost++
		return
	}
	if m.faults.LossProb > 0 && m.rng.Bool(m.faults.LossProb) {
		m.stats.FramesLost++
		m.log.Add(trace.KindDrop, int(src), f.ID.String(), "wire loss %s", f)
		return
	}
	if f.Corrupt {
		m.stats.FramesLost++
		m.log.Add(trace.KindDrop, int(src), f.ID.String(), "corrupt frame discarded")
		return
	}
	stored := m.offerToTaps(src, f)
	if gated(f.Type) && !stored {
		// Publish-before-use: no recorder copy, no delivery (§4.4.1).
		m.stats.RecorderBlocks++
		m.log.Add(trace.KindDrop, int(src), f.ID.String(), "blocked: recorder did not store %s", f)
		return
	}
	m.deliver(src, f)
}

var _ Medium = (*Perfect)(nil)
