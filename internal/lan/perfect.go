package lan

import (
	"publishing/internal/frame"
	"publishing/internal/simtime"
	"publishing/internal/trace"
)

// Perfect is an idealized broadcast medium: frames are serialized FIFO with
// realistic transmission times but never collide. Publish-before-use is
// enforced directly (a frame the taps failed to store is not delivered, as
// if its checksum were bad), which makes Perfect the reference semantics the
// fancier media must match. Unit and integration tests default to it.
type Perfect struct {
	base
	busyUntil simtime.Time
	eng       *simtime.Engine
}

// NewPerfect returns a perfect broadcast medium.
func NewPerfect(cfg Config, sched *simtime.Scheduler, rng *simtime.Rand, log *trace.Log) *Perfect {
	return &Perfect{base: newBase(cfg, sched, rng, log)}
}

// SetEngine attaches the parallel engine. Sends issued from inside a
// parallel execution window are then captured and applied at the merge
// barrier in serial order, because the FIFO busy-until chain, the wire
// stats, and the completion schedule are shared across every sending node.
func (m *Perfect) SetEngine(e *simtime.Engine) { m.eng = e }

// Lookahead: the earliest any frame can complete is one minimal frame time
// after its send — the channel is FIFO with no preemption — so no node can
// observe another node's action sooner than that.
func (m *Perfect) Lookahead() simtime.Time { return m.cfg.FrameTime(0) }

// Send schedules the frame for delivery after the channel drains.
//
// Frame ownership under concurrency: the frame is cloned before Send
// returns on both paths below, so a captured send never retains a buffer
// the caller may reuse — the clone is taken on the sending LP's worker,
// and only the clone crosses the barrier.
func (m *Perfect) Send(src frame.NodeID, f *frame.Frame) {
	if e := m.eng; e != nil && e.InRound() {
		g := f.Clone()
		e.Defer(int(src), func() { m.send(src, g, true) })
		return
	}
	m.send(src, f, false)
}

// send is the serial-context send path; owned marks a frame the medium
// already exclusively owns (pre-cloned by a capturing Send).
func (m *Perfect) send(src frame.NodeID, f *frame.Frame, owned bool) {
	if m.faults.Down(src) {
		return
	}
	m.stats.FramesSent++
	n := f.WireLen()
	m.stats.BytesOnWire += uint64(n)
	start := m.sched.Now()
	if m.busyUntil > start {
		start = m.busyUntil
	}
	end := start + m.cfg.FrameTime(n)
	m.busyUntil = end
	m.stats.BusyTime += end - start
	g := f
	if !owned {
		g = f.Clone()
	}
	m.maybeCorrupt(g)
	m.sched.At(end, func() { m.complete(src, g) })
}

func (m *Perfect) complete(src frame.NodeID, f *frame.Frame) {
	if m.faults.Down(src) {
		// Sender died mid-flight; treat the frame as never completed.
		m.stats.FramesLost++
		return
	}
	if m.faults.LossProb > 0 && m.rng.Bool(m.faults.LossProb) {
		m.stats.FramesLost++
		m.log.Add(trace.KindDrop, int(src), f.ID.String(), "wire loss %s", f)
		return
	}
	if f.Corrupt {
		m.stats.FramesLost++
		m.log.Add(trace.KindDrop, int(src), f.ID.String(), "corrupt frame discarded")
		return
	}
	stored := m.offerToTaps(src, f)
	if gated(f.Type) && !stored {
		// Publish-before-use: no recorder copy, no delivery (§4.4.1).
		m.stats.RecorderBlocks++
		m.log.Add(trace.KindDrop, int(src), f.ID.String(), "blocked: recorder did not store %s", f)
		return
	}
	m.deliver(src, f)
}

var _ Medium = (*Perfect)(nil)
