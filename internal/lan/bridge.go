package lan

import (
	"publishing/internal/frame"
	"publishing/internal/simtime"
)

// Bridge is the §6.2 store-and-forward gateway joining two LANs into a
// cluster configuration ("a number of broadcast media networks connected
// via a store and forward network", CM*-style, or LANs joined through the
// ArpaNet). Each side keeps its own recorder: "a recorder can be attached
// to each cluster to perform recovery for that cluster alone. The great
// advantage to this scheme is autonomous control."
//
// The bridge attaches to each medium impersonating every node of the other
// side, so senders need no routing changes: a frame addressed to a remote
// node is delivered to the bridge locally and re-transmitted on the far
// medium after the store-and-forward delay, preserving its source address.
type Bridge struct {
	sched *simtime.Scheduler
	a, b  Medium
	// Delay is the store-and-forward latency per crossing.
	Delay simtime.Time
	// Forwarded counts crossings.
	Forwarded uint64
	// down pauses the bridge (an inter-cluster link failure — the §3.6
	// partition, at the granularity §6.2's per-cluster recorders handle).
	down bool
}

// NewBridge joins media a and b. aNodes and bNodes list each side's station
// ids; they must be disjoint.
func NewBridge(sched *simtime.Scheduler, a, b Medium, aNodes, bNodes []frame.NodeID, delay simtime.Time) *Bridge {
	br := &Bridge{sched: sched, a: a, b: b, Delay: delay}
	for _, n := range bNodes {
		a.Attach(n, &bridgePort{br: br, to: b}) // b's nodes, impersonated on a
	}
	for _, n := range aNodes {
		b.Attach(n, &bridgePort{br: br, to: a}) // a's nodes, impersonated on b
	}
	return br
}

// SetDown severs (or restores) the inter-cluster link.
func (br *Bridge) SetDown(down bool) { br.down = down }

// bridgePort is the bridge's station presence on one medium; frames it
// receives belong on the other side.
type bridgePort struct {
	br *Bridge
	to Medium
}

// Receive implements Station: store, wait, forward. Broadcasts stay local
// to their cluster (each side's recorder and watchdogs manage their own
// nodes — the autonomy §6.2 argues for), which also keeps the two-sided
// impersonation from amplifying or looping broadcast frames.
func (p *bridgePort) Receive(f *frame.Frame) {
	if p.br.down || f.Dst == frame.Broadcast {
		return
	}
	g := f.Clone()
	p.br.sched.After(p.br.Delay, func() {
		if p.br.down {
			return
		}
		p.br.Forwarded++
		p.to.Send(g.Src, g)
	})
}
