package lan

import (
	"fmt"
	"testing"

	"publishing/internal/frame"
	"publishing/internal/simtime"
	"publishing/internal/trace"
)

// testStation records frames it receives.
type testStation struct {
	id  frame.NodeID
	got []*frame.Frame
}

func (s *testStation) Receive(f *frame.Frame) { s.got = append(s.got, f) }

// testTap records observed frames and can be told to fail.
type testTap struct {
	seen []*frame.Frame
	fail bool
}

func (t *testTap) Observe(f *frame.Frame) bool {
	if t.fail {
		return false
	}
	t.seen = append(t.seen, f)
	return true
}

type rig struct {
	sched    *simtime.Scheduler
	log      *trace.Log
	rng      *simtime.Rand
	stations map[frame.NodeID]*testStation
	tap      *testTap
	m        Medium
}

func newRig(t *testing.T, build func(Config, *simtime.Scheduler, *simtime.Rand, *trace.Log) Medium, nStations int, withTap bool) *rig {
	t.Helper()
	r := &rig{
		sched:    simtime.NewScheduler(),
		rng:      simtime.NewRand(1),
		stations: make(map[frame.NodeID]*testStation),
	}
	r.log = trace.New(r.sched.Now)
	r.m = build(DefaultConfig(), r.sched, r.rng, r.log)
	for i := 0; i < nStations; i++ {
		id := frame.NodeID(i)
		s := &testStation{id: id}
		r.stations[id] = s
		r.m.Attach(id, s)
	}
	if withTap {
		r.tap = &testTap{}
		r.m.AttachTap(frame.NodeID(nStations), r.tap)
	}
	return r
}

func guaranteed(src, dst frame.NodeID, seq uint64, body string) *frame.Frame {
	p := frame.ProcID{Node: src, Local: 1}
	return &frame.Frame{
		Type: frame.Guaranteed,
		Src:  src, Dst: dst,
		ID:   frame.MsgID{Sender: p, Seq: seq},
		From: p,
		To:   frame.ProcID{Node: dst, Local: 1},
		Body: []byte(body),
	}
}

var builders = map[string]func(Config, *simtime.Scheduler, *simtime.Rand, *trace.Log) Medium{
	"perfect": func(c Config, s *simtime.Scheduler, r *simtime.Rand, l *trace.Log) Medium {
		return NewPerfect(c, s, r, l)
	},
	"ether": func(c Config, s *simtime.Scheduler, r *simtime.Rand, l *trace.Log) Medium {
		return NewEther(c, s, r, l)
	},
	"ackether": func(c Config, s *simtime.Scheduler, r *simtime.Rand, l *trace.Log) Medium {
		return NewAckEther(c, s, r, l)
	},
	"ring": func(c Config, s *simtime.Scheduler, r *simtime.Rand, l *trace.Log) Medium {
		return NewRing(c, s, r, l)
	},
	"star": func(c Config, s *simtime.Scheduler, r *simtime.Rand, l *trace.Log) Medium {
		return NewStar(c, s, r, l, 3) // hub is node 3 (the tap node)
	},
}

// All media must deliver a directed frame to its destination and let the
// tap hear it.
func TestAllMediaBasicDelivery(t *testing.T) {
	for name, build := range builders {
		t.Run(name, func(t *testing.T) {
			r := newRig(t, build, 3, true)
			r.m.Send(0, guaranteed(0, 1, 1, "hello"))
			r.sched.RunAll(10000)
			if len(r.stations[1].got) != 1 {
				t.Fatalf("station 1 got %d frames, want 1", len(r.stations[1].got))
			}
			if string(r.stations[1].got[0].Body) != "hello" {
				t.Fatalf("body = %q", r.stations[1].got[0].Body)
			}
			if len(r.stations[0].got)+len(r.stations[2].got) != 0 {
				t.Fatal("directed frame delivered to bystanders")
			}
			if len(r.tap.seen) != 1 {
				t.Fatalf("tap saw %d frames, want 1", len(r.tap.seen))
			}
		})
	}
}

// A node must be able to send a frame to itself over the medium: §4.4.1
// broadcasts intranode messages on the network so the recorder sees them.
func TestAllMediaSelfDelivery(t *testing.T) {
	for name, build := range builders {
		t.Run(name, func(t *testing.T) {
			r := newRig(t, build, 3, true)
			r.m.Send(0, guaranteed(0, 0, 1, "to-myself"))
			r.sched.RunAll(10000)
			if len(r.stations[0].got) != 1 {
				t.Fatalf("self frame not delivered: %d", len(r.stations[0].got))
			}
			if len(r.tap.seen) != 1 {
				t.Fatalf("tap missed intranode frame: %d", len(r.tap.seen))
			}
		})
	}
}

// Publish-before-use: on media that gate on the recorder (perfect,
// ackether, ring, star), a guaranteed frame the tap fails to store must not
// reach the destination.
func TestPublishBeforeUseGating(t *testing.T) {
	for _, name := range []string{"perfect", "ackether", "ring", "star"} {
		t.Run(name, func(t *testing.T) {
			r := newRig(t, builders[name], 3, true)
			r.tap.fail = true
			r.m.Send(0, guaranteed(0, 1, 1, "x"))
			r.sched.RunAll(10000)
			if len(r.stations[1].got) != 0 {
				t.Fatal("frame delivered despite recorder failure")
			}
			if r.m.Stats().RecorderBlocks == 0 {
				t.Fatal("RecorderBlocks not counted")
			}
		})
	}
}

// Plain Ether does NOT gate on the recorder; the transport layer handles it.
func TestPlainEtherDoesNotGate(t *testing.T) {
	r := newRig(t, builders["ether"], 3, true)
	r.tap.fail = true
	r.m.Send(0, guaranteed(0, 1, 1, "x"))
	r.sched.RunAll(10000)
	if len(r.stations[1].got) != 1 {
		t.Fatal("plain ether should deliver even when tap misses")
	}
}

func TestAllMediaBroadcast(t *testing.T) {
	for name, build := range builders {
		t.Run(name, func(t *testing.T) {
			r := newRig(t, build, 4, true)
			f := guaranteed(0, frame.Broadcast, 1, "all")
			r.m.Send(0, f)
			r.sched.RunAll(10000)
			for i := frame.NodeID(1); i <= 3; i++ {
				if name == "star" && i == 3 {
					continue // node 3 is the hub itself in the star rig
				}
				if len(r.stations[i].got) != 1 {
					t.Fatalf("station %d got %d frames", i, len(r.stations[i].got))
				}
			}
			if len(r.stations[0].got) != 0 {
				t.Fatal("broadcast echoed to sender")
			}
		})
	}
}

func TestAllMediaDownNode(t *testing.T) {
	for name, build := range builders {
		t.Run(name, func(t *testing.T) {
			r := newRig(t, build, 3, true)
			r.m.Faults().SetDown(1, true)
			r.m.Send(0, guaranteed(0, 1, 1, "x"))
			// A down node cannot send either.
			r.m.Send(1, guaranteed(1, 2, 1, "y"))
			r.sched.RunAll(10000)
			if len(r.stations[1].got) != 0 {
				t.Fatal("down node received a frame")
			}
			if len(r.stations[2].got) != 0 {
				t.Fatal("frame from down node was delivered")
			}
			// Node comes back up and traffic flows again.
			r.m.Faults().SetDown(1, false)
			r.m.Send(0, guaranteed(0, 1, 2, "z"))
			r.sched.RunAll(10000)
			if len(r.stations[1].got) != 1 {
				t.Fatal("revived node did not receive")
			}
		})
	}
}

func TestPartition(t *testing.T) {
	for name, build := range builders {
		if name == "star" {
			continue // a star cannot partition away from its own hub meaningfully here
		}
		t.Run(name, func(t *testing.T) {
			r := newRig(t, build, 4, true)
			// Nodes 0,1 in group 0; nodes 2,3 (and the tap at node 4) in group 1.
			r.m.Faults().SetPartition(2, 1)
			r.m.Faults().SetPartition(3, 1)
			r.m.Faults().SetPartition(4, 1)
			r.m.Send(2, guaranteed(2, 3, 1, "same side"))
			r.m.Send(0, guaranteed(0, 2, 1, "cross"))
			r.sched.RunAll(10000)
			if len(r.stations[3].got) != 1 {
				t.Fatalf("same-partition frame lost (%d)", len(r.stations[3].got))
			}
			if len(r.stations[2].got) != 0 {
				t.Fatalf("cross-partition frame delivered: station2 got %d", len(r.stations[2].got))
			}
			r.m.Faults().Heal()
			r.m.Send(0, guaranteed(0, 2, 2, "healed"))
			r.sched.RunAll(10000)
			if len(r.stations[2].got) != 1 {
				t.Fatal("healed partition did not restore connectivity")
			}
		})
	}
}

func TestEtherCollisionAndBackoff(t *testing.T) {
	r := newRig(t, builders["ether"], 3, false)
	// Two sends at the same instant collide, then both succeed via backoff.
	r.m.Send(0, guaranteed(0, 2, 1, "a"))
	r.m.Send(1, guaranteed(1, 2, 1, "b"))
	r.sched.RunAll(100000)
	if r.m.Stats().Collisions == 0 {
		t.Fatal("no collision for simultaneous sends")
	}
	if len(r.stations[2].got) != 2 {
		t.Fatalf("station 2 got %d frames after backoff, want 2", len(r.stations[2].got))
	}
}

func TestEtherDeferWhenBusy(t *testing.T) {
	r := newRig(t, builders["ether"], 3, false)
	r.m.Send(0, guaranteed(0, 2, 1, "first"))
	// Second send starts after the collision window but during the first
	// transmission: it must defer, not collide.
	r.sched.After(DefaultConfig().SlotTime*2, func() {
		r.m.Send(1, guaranteed(1, 2, 1, "second"))
	})
	r.sched.RunAll(100000)
	if r.m.Stats().Collisions != 0 {
		t.Fatalf("deferred send collided (%d collisions)", r.m.Stats().Collisions)
	}
	if len(r.stations[2].got) != 2 {
		t.Fatalf("got %d frames, want 2", len(r.stations[2].got))
	}
	if string(r.stations[2].got[0].Body) != "first" {
		t.Fatal("FIFO order violated")
	}
}

func TestAckEtherReservesAckSlots(t *testing.T) {
	cfg := DefaultConfig()
	plain := newRig(t, builders["ether"], 2, true)
	acking := newRig(t, builders["ackether"], 2, true)
	plain.m.Send(0, guaranteed(0, 1, 1, "x"))
	acking.m.Send(0, guaranteed(0, 1, 1, "x"))
	plain.sched.RunAll(1000)
	acking.sched.RunAll(1000)
	diff := acking.m.Stats().BusyTime - plain.m.Stats().BusyTime
	want := cfg.AckSlot * 2 // one tap + one receiver slot
	if diff != want {
		t.Fatalf("ack slot reservation = %v, want %v", diff, want)
	}
}

func TestRingSecondPassWhenDestPrecedesRecorder(t *testing.T) {
	// Ring order: station0, station1, station2, tap(3). A frame from 0 to 1
	// reaches 1 before the tap, so it is read on the second pass — later
	// than a frame from 0 to a hypothetical post-tap station would be.
	r := newRig(t, builders["ring"], 3, true)
	r.m.Send(0, guaranteed(0, 1, 1, "x"))
	r.sched.RunAll(10000)
	if len(r.stations[1].got) != 1 {
		t.Fatal("frame not delivered on second pass")
	}
	// Compare with an untapped ring where the first pass suffices.
	r2 := newRig(t, builders["ring"], 3, false)
	r2.m.Send(0, guaranteed(0, 1, 1, "x"))
	r2.sched.RunAll(10000)
	if r2.sched.Now() >= r.sched.Now() {
		t.Fatalf("gated ring (%v) should finish later than ungated (%v)", r.sched.Now(), r2.sched.Now())
	}
}

func TestStarHubDownKillsNetwork(t *testing.T) {
	r := newRig(t, builders["star"], 3, true)
	r.m.Faults().SetDown(3, true) // hub down
	r.m.Send(0, guaranteed(0, 1, 1, "x"))
	r.sched.RunAll(10000)
	if len(r.stations[1].got) != 0 {
		t.Fatal("frame delivered with hub down")
	}
	if r.m.Stats().FramesLost == 0 {
		t.Fatal("loss not counted")
	}
}

func TestWireLossInjection(t *testing.T) {
	for name, build := range builders {
		t.Run(name, func(t *testing.T) {
			r := newRig(t, build, 2, false)
			r.m.Faults().LossProb = 1.0
			r.m.Send(0, guaranteed(0, 1, 1, "x"))
			r.sched.RunAll(10000)
			if len(r.stations[1].got) != 0 {
				t.Fatal("lossy wire delivered a frame")
			}
		})
	}
}

func TestCorruptFrameDiscarded(t *testing.T) {
	for name, build := range builders {
		t.Run(name, func(t *testing.T) {
			r := newRig(t, build, 2, false)
			f := guaranteed(0, 1, 1, "x")
			f.Corrupt = true
			r.m.Send(0, f)
			r.sched.RunAll(10000)
			if len(r.stations[1].got) != 0 {
				t.Fatal("corrupt frame delivered")
			}
		})
	}
}

func TestStatsUtilization(t *testing.T) {
	r := newRig(t, builders["perfect"], 2, false)
	for i := uint64(1); i <= 10; i++ {
		r.m.Send(0, guaranteed(0, 1, i, "payload"))
	}
	r.sched.RunAll(10000)
	window := r.sched.Now()
	u := r.m.Stats().Utilization(window)
	if u <= 0.9 || u > 1.0 {
		t.Fatalf("back-to-back frames should saturate the wire: util=%v", u)
	}
	if r.m.Stats().Utilization(0) != 0 {
		t.Fatal("zero window should give zero utilization")
	}
	if s := r.m.Stats().String(); s == "" {
		t.Fatal("empty stats string")
	}
}

func TestDeterministicReplayOfMedium(t *testing.T) {
	run := func() string {
		r := newRig(t, builders["ether"], 4, true)
		for i := uint64(0); i < 20; i++ {
			src := frame.NodeID(i % 4)
			dst := frame.NodeID((i + 1) % 4)
			f := guaranteed(src, dst, i, "m")
			at := simtime.Time(i) * 100 * simtime.Microsecond
			r.sched.At(at, func() { r.m.Send(src, f) })
		}
		r.sched.RunAll(1_000_000)
		return fmt.Sprintf("%v|%d", r.m.Stats(), r.sched.Now())
	}
	if run() != run() {
		t.Fatal("medium simulation is not deterministic")
	}
}

func TestConfigTimes(t *testing.T) {
	cfg := DefaultConfig()
	// 1024 bytes at 10 Mb/s = 819.2 µs on the wire.
	if got := cfg.TxTime(1024); got != simtime.Time(819200) {
		t.Fatalf("TxTime(1024) = %v", got)
	}
	if got := cfg.FrameTime(0); got != cfg.InterframeGap {
		t.Fatalf("FrameTime(0) = %v", got)
	}
}
