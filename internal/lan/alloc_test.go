package lan

// Allocation-regression coverage for the no-fault delivery fast path. The
// big-cluster throughput work made the common case — a clean fault plan, no
// per-delivery gating — cost O(receivers) with zero heap allocations:
// broadcast receivers share the sender's frame read-only, unicast hands the
// frame over outright, and neither takes an RNG draw or a map lookup per
// station. AllocsPerRun pins that at zero so a future "just clone it to be
// safe" or an ungated trace call shows up as a test failure, not a silent
// 2x allocation regression at 256 nodes.

import (
	"testing"

	"publishing/internal/frame"
	"publishing/internal/simtime"
	"publishing/internal/trace"
)

// nopStation discards every frame. The stock test station appends frames
// to a slice, which allocates — useless for pinning the medium's own
// allocation behavior.
type nopStation struct{ got int }

func (s *nopStation) Receive(f *frame.Frame) { s.got++ }

func newAllocRig(stations int) (*Perfect, []*nopStation) {
	sched := simtime.NewScheduler()
	rng := simtime.NewRand(1)
	log := trace.New(sched.Now)
	log.Enable(false)
	m := NewPerfect(DefaultConfig(), sched, rng, log)
	recv := make([]*nopStation, stations)
	for i := range recv {
		recv[i] = &nopStation{}
		m.Attach(frame.NodeID(i), recv[i])
	}
	return m, recv
}

// TestBroadcastDeliveryAllocs requires the clean broadcast path to deliver
// to all 63 non-sender stations without a single heap allocation: the
// receivers share the frame, the precomputed receiver set is reused, and
// no fault draw happens. AllocsPerRun's warm-up call absorbs the one-time
// receiver-cache build after Attach.
func TestBroadcastDeliveryAllocs(t *testing.T) {
	m, recv := newAllocRig(64)
	f := &frame.Frame{Type: frame.Unguaranteed, Src: 0, Dst: frame.Broadcast}
	if n := testing.AllocsPerRun(200, func() { m.deliver(0, f) }); n != 0 {
		t.Errorf("clean broadcast delivery allocated %.1f objects per frame; want 0", n)
	}
	if recv[1].got == 0 || recv[0].got != 0 {
		t.Fatalf("delivery shape wrong: recv[0]=%d (want 0), recv[1]=%d (want >0)", recv[0].got, recv[1].got)
	}
}

// TestUnicastDeliveryAllocs pins the clean unicast path at zero
// allocations likewise: one station lookup, one Receive, no clone.
func TestUnicastDeliveryAllocs(t *testing.T) {
	m, recv := newAllocRig(64)
	f := &frame.Frame{Type: frame.Unguaranteed, Src: 0, Dst: 7}
	if n := testing.AllocsPerRun(200, func() { m.deliver(0, f) }); n != 0 {
		t.Errorf("clean unicast delivery allocated %.1f objects per frame; want 0", n)
	}
	if recv[7].got == 0 {
		t.Fatal("unicast frame never arrived")
	}
}

// TestObserverInstalledStillZeroAlloc pins the monitor-off contract: an
// installed trace observer must cost nothing while the log is disabled. The
// online monitor rides the observer hook, so this is what keeps "monitor
// compiled in but not enabled" indistinguishable from the seed hot path —
// no closure capture, no Event construction, no allocation.
func TestObserverInstalledStillZeroAlloc(t *testing.T) {
	m, recv := newAllocRig(64)
	observed := 0
	m.log.SetObserver(func(e trace.Event) { observed++ })
	f := &frame.Frame{Type: frame.Unguaranteed, Src: 0, Dst: frame.Broadcast}
	if n := testing.AllocsPerRun(200, func() { m.deliver(0, f) }); n != 0 {
		t.Errorf("broadcast delivery with an observer on a disabled log allocated %.1f objects per frame; want 0", n)
	}
	if observed != 0 {
		t.Fatalf("disabled log leaked %d events to the observer", observed)
	}
	if recv[1].got == 0 {
		t.Fatal("delivery never happened")
	}
}
