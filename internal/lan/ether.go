package lan

import (
	"publishing/internal/frame"
	"publishing/internal/simtime"
	"publishing/internal/trace"
)

// Ether simulates CSMA/CD (Metcalfe & Boggs): stations sense the carrier,
// defer while it is busy, and transmissions that start within one slot time
// of each other collide and retry after binary exponential backoff.
//
// On a plain Ether the recorder's copy is NOT guaranteed by the medium: the
// taps hear completed frames, but a receiver may use a frame the recorder
// missed. Systems that publish must therefore enforce publish-before-use at
// the transport layer (the recorder-acknowledgement protocol of §3.3.4 /
// §6.1), which internal/transport implements.
type Ether struct {
	base
	// busyUntil is when the channel goes idle.
	busyUntil simtime.Time
	// cur is the transmission currently on the wire, if any.
	cur *etherTx
	// deferred transmissions waiting for the channel.
	deferred []*etherTx
	// maxAttempts before a frame is dropped (classic Ethernet: 16).
	maxAttempts int

	// extraReserve lets a variant reserve channel time after a frame
	// (AckEther's acknowledge slots). Nil means none.
	extraReserve func(f *frame.Frame) simtime.Time
	// gateOnTaps makes a negative tap verdict suppress delivery of
	// guaranteed frames (AckEther's empty recorder-ack slot).
	gateOnTaps bool
}

type etherTx struct {
	src      frame.NodeID
	f        *frame.Frame
	attempts int
	start    simtime.Time
	finish   simtime.Event
}

// NewEther returns a CSMA/CD medium.
func NewEther(cfg Config, sched *simtime.Scheduler, rng *simtime.Rand, log *trace.Log) *Ether {
	return &Ether{base: newBase(cfg, sched, rng, log), maxAttempts: 16}
}

// Send attempts to transmit f from src, contending for the channel.
func (m *Ether) Send(src frame.NodeID, f *frame.Frame) {
	if m.faults.Down(src) {
		return
	}
	m.stats.FramesSent++
	g := f.Clone()
	m.maybeCorrupt(g)
	m.attempt(&etherTx{src: src, f: g})
}

func (m *Ether) attempt(tx *etherTx) {
	now := m.sched.Now()
	if m.faults.Down(tx.src) {
		m.stats.FramesLost++
		return
	}
	if m.cur != nil {
		if now-m.cur.start < m.cfg.SlotTime {
			// Both stations believed the channel idle: collision. The
			// in-flight transmission is jammed; both back off.
			m.collide(tx)
			return
		}
		// Carrier sensed busy: defer until the channel drains.
		m.deferred = append(m.deferred, tx)
		return
	}
	if m.busyUntil > now {
		// Interframe gap (or reserved ack slots) still draining.
		m.deferred = append(m.deferred, tx)
		m.kick()
		return
	}
	// Channel idle: start transmitting.
	tx.start = now
	n := tx.f.WireLen()
	m.stats.BytesOnWire += uint64(n)
	end := now + m.cfg.FrameTime(n)
	if m.extraReserve != nil {
		end += m.extraReserve(tx.f)
	}
	m.busyUntil = end
	m.stats.BusyTime += end - now
	m.cur = tx
	tx.finish = m.sched.At(end, func() { m.finish(tx) })
}

func (m *Ether) collide(tx *etherTx) {
	m.stats.Collisions++
	cur := m.cur
	id := tx.f.ID.String()
	m.log.AddMsg(trace.KindCollision, int(tx.src), id, id,
		"collision with %s from n%d", cur.f.ID, cur.src)
	// Jam: the in-flight transmission is aborted.
	m.sched.Cancel(cur.finish)
	m.cur = nil
	// The channel clears after the jam (one slot). BusyTime was already
	// charged through the aborted frame's full length; charge only any
	// extension the jam adds.
	now := m.sched.Now()
	jamEnd := now + m.cfg.SlotTime
	if jamEnd > m.busyUntil {
		m.stats.BusyTime += jamEnd - m.busyUntil
		m.busyUntil = jamEnd
	} else {
		// Aborting early frees channel time we had charged.
		m.stats.BusyTime -= m.busyUntil - jamEnd
		m.busyUntil = jamEnd
	}
	m.backoff(cur)
	m.backoff(tx)
	m.kick()
}

func (m *Ether) backoff(tx *etherTx) {
	tx.attempts++
	if tx.attempts >= m.maxAttempts {
		m.stats.FramesLost++
		id := tx.f.ID.String()
		m.log.AddMsg(trace.KindDrop, int(tx.src), id, id, "excessive collisions")
		return
	}
	m.stats.Backoffs++
	k := tx.attempts
	if k > 10 {
		k = 10
	}
	slots := m.rng.Intn(1 << k)
	delay := m.cfg.SlotTime * simtime.Time(slots+1)
	m.sched.After(delay, func() { m.attempt(tx) })
}

// kick schedules a retry of deferred transmissions when the channel drains.
func (m *Ether) kick() {
	if len(m.deferred) == 0 {
		return
	}
	at := m.busyUntil
	if at < m.sched.Now() {
		at = m.sched.Now()
	}
	m.sched.At(at, m.drainDeferred)
}

func (m *Ether) drainDeferred() {
	if m.cur != nil || len(m.deferred) == 0 {
		return
	}
	if m.busyUntil > m.sched.Now() {
		m.kick()
		return
	}
	tx := m.deferred[0]
	m.deferred = m.deferred[1:]
	m.attempt(tx)
	if len(m.deferred) > 0 {
		m.kick()
	}
}

func (m *Ether) finish(tx *etherTx) {
	m.cur = nil
	defer m.kick()
	if m.faults.Down(tx.src) {
		m.stats.FramesLost++
		return
	}
	if m.faults.LossProb > 0 && m.rng.Bool(m.faults.LossProb) {
		m.stats.FramesLost++
		id := tx.f.ID.String()
		m.log.AddMsg(trace.KindDrop, int(tx.src), id, id, "wire loss")
		return
	}
	if tx.f.Corrupt {
		m.stats.FramesLost++
		return
	}
	stored := m.offerToTaps(tx.src, tx.f)
	if m.gateOnTaps && gated(tx.f.Type) && !stored {
		// Empty recorder-ack slot: every receiver discards the frame
		// "exactly as if it had received a bad packet" (§6.1.1).
		m.stats.RecorderBlocks++
		id := tx.f.ID.String()
		m.log.AddMsg(trace.KindDrop, int(tx.src), id, id,
			"no recorder ack in slot; receivers discard")
		return
	}
	m.deliver(tx.src, tx.f)
}

var _ Medium = (*Ether)(nil)

// NewAckEther returns the Acknowledging Ethernet (§6.1.1, after Tokoro &
// Tamaru): after every guaranteed frame the channel reserves acknowledge
// slots — one per recorder plus one for the receiver — and a receiver that
// sees no recorder acknowledgement in its slot discards the frame. The
// medium thus guarantees publish-before-use with no transport round-trips;
// under load it also wastes less bandwidth on ack collisions (Fig 6.2).
func NewAckEther(cfg Config, sched *simtime.Scheduler, rng *simtime.Rand, log *trace.Log) *Ether {
	m := NewEther(cfg, sched, rng, log)
	m.gateOnTaps = true
	m.extraReserve = func(f *frame.Frame) simtime.Time {
		if f.Type != frame.Guaranteed && f.Type != frame.Bundle {
			return 0
		}
		nTaps := len(m.taps)
		if nTaps == 0 {
			nTaps = 1 // slot is reserved by the protocol regardless
		}
		return cfg.AckSlot * simtime.Time(nTaps+1)
	}
	return m
}

// Lookahead: zero. CSMA/CD consumes randomness (deference, collision
// windows, backoff draws) on every steady-state send, so there is no
// fault-free window in which events could run concurrently without
// reordering RNG draws; the parallel engine executes Ether clusters
// serially.
func (m *Ether) Lookahead() simtime.Time { return 0 }
