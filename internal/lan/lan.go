// Package lan simulates the local-area network media the paper targets
// (§3.1, Ch. 6): broadcast media where "not only may any node overhear the
// messages destined for another node, but it may do so passively".
//
// Five media are provided:
//
//   - Perfect: an idealized zero-loss broadcast used by unit tests.
//   - Ether: CSMA/CD with collisions and binary exponential backoff
//     (Metcalfe & Boggs). Publish-before-use must be enforced by the
//     transport on this medium.
//   - AckEther: the Acknowledging Ethernet of Tokoro & Tamaru extended with
//     recorder-ack slots (§6.1.1) — a receiver discards any guaranteed frame
//     the recorder did not acknowledge in the reserved slot.
//   - Ring: a slotted token ring with an acknowledge field the recorder
//     fills; it invalidates the checksum of frames it failed to store
//     (§6.1.2).
//   - Star: the Z8000 experimental configuration (Fig 4.1a) with the
//     recorder as hub; "any messages received incorrectly by the recorder
//     are not passed on" (§4.1).
//
// All media run on a shared simtime.Scheduler and support deterministic
// fault injection: frame loss, tap misses, node downtime, and network
// partition (§3.6).
package lan

import (
	"fmt"

	"publishing/internal/frame"
	"publishing/internal/metrics"
	"publishing/internal/simtime"
	"publishing/internal/trace"
)

// Station is a network interface attached to a medium. The transport layer
// of each node implements it.
type Station interface {
	// Receive hands the station a frame that completed transmission and that
	// the medium's semantics allow it to use. Ownership follows the wire
	// addressing: a frame addressed to this station alone (f.Dst != Broadcast)
	// is the receiver's private copy — the medium made exactly one copy at
	// Send and this is it. A broadcast frame is a shared read-only view
	// handed to every receiver in turn: the station must not mutate it and
	// must copy anything it keeps beyond the call — including data reached
	// through pointers such as Body, AckRecs, and PassedLink. This is what
	// lets the common no-fault broadcast cost O(receivers) with zero
	// allocations instead of a clone per receiver.
	Receive(f *frame.Frame)
}

// Tap is a passive listener — the recorder's attachment (§3.7 cites METRIC
// and other Ethernet listeners as precedent). Observe is called for every
// frame the tap hears; its return value reports whether the tap reliably
// stored the frame. Media that enforce publish-before-use use that verdict
// to decide whether receivers may accept the frame.
//
// The frame is a shared read-only view, valid only for the duration of the
// call: media do not clone per tap (a tap only listens, so unlike a Station
// it needs no private copy), and the tap must copy anything it keeps —
// including data reached through pointers such as PassedLink.
type Tap interface {
	Observe(f *frame.Frame) bool
}

// VotingTap is an optional Tap extension for sharded recorders: ObserveVote
// returns both the stored verdict and whether this tap's verdict should count
// toward the medium's publish gate at all. A sharded recorder abstains
// (voting=false) on frames whose streams it does not replicate — the owning
// recorders' verdicts alone gate the frame, so a shard's availability is a
// property of its replicas, not of every recorder on the wire. Plain Taps
// always vote.
type VotingTap interface {
	Tap
	ObserveVote(f *frame.Frame) (stored, voting bool)
}

// Medium is a broadcast network.
type Medium interface {
	// Attach registers a station under a node id. Attaching twice replaces
	// the previous station (a rebooted node re-attaches its interface).
	Attach(id frame.NodeID, s Station)
	// AttachTap registers a passive listener resident at node id (partition
	// and downtime apply to taps by node id).
	AttachTap(id frame.NodeID, t Tap)
	// Send transmits f from node src. Media never block: delivery is
	// scheduled on the virtual clock according to the medium's semantics.
	Send(src frame.NodeID, f *frame.Frame)
	// Faults exposes the medium's fault-injection plan.
	Faults() *FaultPlan
	// Stats exposes medium counters.
	Stats() *Stats
	// Lookahead is the medium's conservative-parallelism export: a lower
	// bound on the virtual delay between a Send on one node and the
	// earliest instant any other node can observe its effect. The parallel
	// engine (internal/simtime) uses it as the safe execution horizon.
	// Media whose steady state consumes randomness (collisions, token
	// rotation) return 0, which pins them to serial execution.
	Lookahead() simtime.Time
}

// Config carries the physical parameters shared by all media, defaulting to
// the paper's measured environment (Fig 5.2).
type Config struct {
	// BitsPerSecond is the raw bandwidth. Paper: 10 megabits/second.
	BitsPerSecond int64
	// InterframeGap is the fixed per-frame interface overhead. Paper
	// ("Ethernet interface interpacket delay"): 1.6 ms.
	InterframeGap simtime.Time
	// SlotTime is the CSMA/CD collision window (classic 10 Mb Ethernet:
	// 51.2 µs).
	SlotTime simtime.Time
	// AckSlot is the reserved acknowledge slot of the Acknowledging
	// Ethernet and the ring's ack field fill time.
	AckSlot simtime.Time
	// HopDelay is the per-station latency of the ring medium.
	HopDelay simtime.Time
}

// DefaultConfig returns the Fig 5.2 parameters.
func DefaultConfig() Config {
	return Config{
		BitsPerSecond: 10_000_000,
		InterframeGap: 1600 * simtime.Microsecond,
		SlotTime:      simtime.Time(51200), // 51.2 µs in ns
		AckSlot:       64 * simtime.Microsecond,
		HopDelay:      4 * simtime.Microsecond,
	}
}

// TxTime returns the time to clock a frame of n bytes onto the wire.
func (c Config) TxTime(n int) simtime.Time {
	return simtime.Time(int64(n) * 8 * int64(simtime.Second) / c.BitsPerSecond)
}

// FrameTime is gap + transmission time, the full channel occupancy.
func (c Config) FrameTime(n int) simtime.Time {
	return c.InterframeGap + c.TxTime(n)
}

// FaultPlan injects deterministic or seeded-random faults into a medium.
// The zero value injects nothing.
type FaultPlan struct {
	// LossProb drops a completed frame before any delivery (noise on the
	// wire). Dropped frames are also unseen by taps.
	LossProb float64
	// TapMissProb makes a tap fail to store a heard frame — the "recorder
	// received incorrectly" case that publish-before-use must handle.
	TapMissProb float64
	// ReceiverMissProb makes one receiving station fail to accept a frame
	// even though it was on the wire (local interface error); the transport
	// retransmission recovers it.
	ReceiverMissProb float64
	// CorruptProb invalidates a frame's checksum at transmission time —
	// wire noise the link layer catches (§4.3.3). A corrupt frame is
	// discarded by every listener, tap included, so it behaves like loss
	// but exercises the checksum-discard path and its counters.
	CorruptProb float64
	// DupProb delivers a completed frame to its receivers a second time
	// (a reflected or re-acknowledged transmission); the transport layer's
	// duplicate suppression must absorb it.
	DupProb float64
	// AckSlotErrProb corrupts the recorder's acknowledgement indication
	// (the §6.1.1 ack slot / §6.1.2 ack field) after the recorder HAS
	// stored the frame: receivers see no valid recorder ack and discard,
	// the sender retransmits, and the recorder's duplicate detection must
	// recognize the resend.
	AckSlotErrProb float64

	down      map[frame.NodeID]bool
	partition map[frame.NodeID]int
	// linkLoss drops frames on one directed (src, dst) station pair only —
	// a bad cable segment between two particular nodes.
	linkLoss map[[2]frame.NodeID]float64
	// nDown counts entries of down that are currently true, so the no-fault
	// delivery fast path can establish "nobody is down" without a map scan.
	nDown int
}

// deliveryClean reports whether per-receiver delivery can skip all fault
// machinery: no node down, no partition ever configured (Heal resets it),
// and no per-receiver probability draws armed. In that state every attached
// station other than the sender hears every completed frame, in the same
// order the faulted path would deliver, with no RNG consumption — so the
// fast path below is byte-identical to the slow one in every fingerprinted
// observable.
func (p *FaultPlan) deliveryClean() bool {
	return p.nDown == 0 && p.partition == nil && len(p.linkLoss) == 0 &&
		p.ReceiverMissProb == 0 && p.DupProb == 0
}

// Quiet reports that no fault machinery is armed at all: nothing down or
// partitioned and every probability zero, so no code path consumes
// randomness or branches on fault state. This is the condition under which
// the parallel engine may run events concurrently — any armed fault could
// interleave RNG draws or cross-node effects that only a serial execution
// orders correctly, so the engine's gate serializes while Quiet is false.
func (p *FaultPlan) Quiet() bool {
	return p.deliveryClean() && p.LossProb == 0 && p.TapMissProb == 0 &&
		p.CorruptProb == 0 && p.AckSlotErrProb == 0
}

// SetLinkLoss makes the directed link from src to dst lose frames with
// probability p (0 removes the entry). Loss applies at delivery to dst only;
// other receivers of a broadcast and the taps still hear the frame.
func (p *FaultPlan) SetLinkLoss(src, dst frame.NodeID, prob float64) {
	if p.linkLoss == nil {
		p.linkLoss = make(map[[2]frame.NodeID]float64)
	}
	if prob <= 0 {
		delete(p.linkLoss, [2]frame.NodeID{src, dst})
		return
	}
	p.linkLoss[[2]frame.NodeID{src, dst}] = prob
}

// linkLossProb returns the injected loss probability of the src->dst link.
func (p *FaultPlan) linkLossProb(src, dst frame.NodeID) float64 {
	if p.linkLoss == nil {
		return 0
	}
	return p.linkLoss[[2]frame.NodeID{src, dst}]
}

// SetDown marks a node's network interface up or down. A down node neither
// sends nor receives; its watchdog will eventually notice (§3.3.2).
func (p *FaultPlan) SetDown(id frame.NodeID, down bool) {
	if p.down == nil {
		p.down = make(map[frame.NodeID]bool)
	}
	if p.down[id] != down {
		if down {
			p.nDown++
		} else {
			p.nDown--
		}
	}
	p.down[id] = down
}

// Down reports whether a node is down.
func (p *FaultPlan) Down(id frame.NodeID) bool { return p.down[id] }

// SetPartition assigns node id to partition group g. Nodes in different
// groups cannot hear each other (§3.6). Group 0 is the default group.
func (p *FaultPlan) SetPartition(id frame.NodeID, g int) {
	if p.partition == nil {
		p.partition = make(map[frame.NodeID]int)
	}
	p.partition[id] = g
}

// Heal removes all partitions.
func (p *FaultPlan) Heal() { p.partition = nil }

// group returns the partition group of a node.
func (p *FaultPlan) group(id frame.NodeID) int { return p.partition[id] }

// reachable reports whether b can hear a transmission from a.
func (p *FaultPlan) reachable(a, b frame.NodeID) bool {
	return !p.Down(b) && p.group(a) == p.group(b)
}

// Stats counts medium-level activity.
type Stats struct {
	FramesSent      uint64
	FramesDelivered uint64
	FramesLost      uint64
	Collisions      uint64
	Backoffs        uint64 // binary-exponential-backoff waits entered
	TapMisses       uint64
	RecorderBlocks  uint64 // frames receivers discarded for lack of recorder ack
	FramesCorrupted uint64 // checksums invalidated by injected wire noise
	FramesDuped     uint64 // extra deliveries injected by DupProb
	AckSlotErrs     uint64 // stored-but-unacknowledged flips from AckSlotErrProb
	LinkDrops       uint64 // frames lost to a per-link fault (SetLinkLoss)
	BytesOnWire     uint64
	BusyTime        simtime.Time
}

func (s *Stats) String() string {
	return fmt.Sprintf("sent=%d delivered=%d lost=%d collisions=%d backoffs=%d tapMiss=%d recBlock=%d corrupt=%d duped=%d ackErr=%d linkDrop=%d bytes=%d busy=%v",
		s.FramesSent, s.FramesDelivered, s.FramesLost, s.Collisions, s.Backoffs, s.TapMisses, s.RecorderBlocks,
		s.FramesCorrupted, s.FramesDuped, s.AckSlotErrs, s.LinkDrops, s.BytesOnWire, s.BusyTime)
}

// Utilization returns the fraction of the elapsed window the channel was
// busy, the quantity plotted in Figure 5.5(c).
func (s *Stats) Utilization(window simtime.Time) float64 {
	if window <= 0 {
		return 0
	}
	return float64(s.BusyTime) / float64(window)
}

// gated reports whether a frame type is subject to publish-before-use: the
// recorder must store both messages and their end-to-end acknowledgements
// (§4.4.1: "If it incorrectly receives a message or message acknowledgement,
// the recorder can block the transmission"); a lost ack would otherwise let
// a sender stop retransmitting a message whose arrival the recorder never
// learned about.
func gated(t frame.Type) bool {
	return t == frame.Guaranteed || t == frame.Ack || t == frame.Bundle
}

// base carries the plumbing every medium shares.
type base struct {
	cfg      Config
	sched    *simtime.Scheduler
	rng      *simtime.Rand
	log      *trace.Log
	stations map[frame.NodeID]Station
	// order lists attached station ids sorted ascending. Broadcast delivery
	// iterates it instead of the map: per-receiver rng draws (interface miss,
	// link loss, duplication) must happen in a fixed order or map iteration
	// would leak nondeterminism into the fault stream.
	order []frame.NodeID
	// recv caches (id, station) pairs in order's order so the per-frame
	// broadcast loop touches one dense slice instead of a map lookup per
	// receiver; byID is the same cache keyed by node id for unicast (node
	// ids are small and dense — slice indexing beats the map on the hottest
	// line in the simulator). Attach invalidates both.
	recv     []recvEntry
	byID     []Station
	recvSane bool
	taps     []tapEntry
	faults   FaultPlan
	stats    Stats
}

type recvEntry struct {
	id frame.NodeID
	s  Station
}

// refreshRecv rebuilds the delivery caches from stations/order.
func (b *base) refreshRecv() {
	b.recv = b.recv[:0]
	maxID := frame.NodeID(-1)
	for _, id := range b.order {
		b.recv = append(b.recv, recvEntry{id: id, s: b.stations[id]})
		if id > maxID {
			maxID = id
		}
	}
	if n := int(maxID) + 1; cap(b.byID) < n {
		b.byID = make([]Station, n)
	} else {
		b.byID = b.byID[:n]
		for i := range b.byID {
			b.byID[i] = nil
		}
	}
	for _, e := range b.recv {
		b.byID[e.id] = e.s
	}
	b.recvSane = true
}

// station resolves a unicast destination through the dense cache.
func (b *base) station(id frame.NodeID) (Station, bool) {
	if !b.recvSane {
		b.refreshRecv()
	}
	if int(id) >= len(b.byID) || id < 0 {
		return nil, false
	}
	s := b.byID[id]
	return s, s != nil
}

type tapEntry struct {
	id  frame.NodeID
	tap Tap
}

func newBase(cfg Config, sched *simtime.Scheduler, rng *simtime.Rand, log *trace.Log) base {
	return base{
		cfg:      cfg,
		sched:    sched,
		rng:      rng,
		log:      log,
		stations: make(map[frame.NodeID]Station),
	}
}

func (b *base) Attach(id frame.NodeID, s Station) {
	if _, known := b.stations[id]; !known {
		i := 0
		for i < len(b.order) && b.order[i] < id {
			i++
		}
		b.order = append(b.order, 0)
		copy(b.order[i+1:], b.order[i:])
		b.order[i] = id
	}
	b.stations[id] = s
	b.recvSane = false
}

func (b *base) AttachTap(id frame.NodeID, t Tap) {
	for i, e := range b.taps {
		if e.id == id {
			b.taps[i].tap = t
			return
		}
	}
	b.taps = append(b.taps, tapEntry{id: id, tap: t})
}

func (b *base) Faults() *FaultPlan { return &b.faults }
func (b *base) Stats() *Stats      { return &b.stats }

// UseMetrics exposes the medium's counters through reg under subsystem
// "lan" (node -1: the medium is not any one node's). Every concrete medium
// inherits it; callers reach it through a type assertion so the Medium
// interface stays minimal.
func (b *base) UseMetrics(reg *metrics.Registry) {
	if reg == nil {
		return
	}
	s := &b.stats
	reg.AddCollector(-1, "lan", func(emit func(string, int64)) {
		emit("frames_sent", int64(s.FramesSent))
		emit("frames_delivered", int64(s.FramesDelivered))
		emit("frames_lost", int64(s.FramesLost))
		emit("collisions", int64(s.Collisions))
		emit("backoffs", int64(s.Backoffs))
		emit("tap_misses", int64(s.TapMisses))
		emit("recorder_blocks", int64(s.RecorderBlocks))
		emit("frames_corrupted", int64(s.FramesCorrupted))
		emit("frames_duped", int64(s.FramesDuped))
		emit("ack_slot_errs", int64(s.AckSlotErrs))
		emit("link_drops", int64(s.LinkDrops))
		emit("bytes_on_wire", int64(s.BytesOnWire))
		emit("busy_time_ns", int64(s.BusyTime))
	})
}

// offerToTaps lets every reachable tap observe the frame and reports
// whether all reachable voting taps stored it and at least one voting tap is
// reachable. Down or partitioned-away taps are excused — with multiple
// recorders the survivors supply the missing acknowledgements (§6.3); with a
// single recorder down, nothing is reachable and the frame blocks. With no
// taps attached at all it returns true (publishing disabled; nothing to wait
// for).
//
// Sharded recorders attach as VotingTaps and abstain on frames outside
// their shards: an abstaining tap still hears the frame (it may carry
// piggybacked acks for streams it does own) but its verdict neither blocks
// nor satisfies the publish gate — availability of a stream is a property of
// its shard's replicas. A tap-miss fault hit is charged before the vote is
// known (same rng draw order as the classic path) and conservatively counts
// as a voting failure.
func (b *base) offerToTaps(src frame.NodeID, f *frame.Frame) bool {
	if len(b.taps) == 0 {
		return true
	}
	anyVoter := false
	allStored := true
	for _, e := range b.taps {
		if !b.faults.reachable(src, e.id) {
			continue
		}
		if b.faults.TapMissProb > 0 && b.rng.Bool(b.faults.TapMissProb) {
			b.stats.TapMisses++
			anyVoter = true
			allStored = false
			continue
		}
		if vt, ok := e.tap.(VotingTap); ok {
			stored, voting := vt.ObserveVote(f)
			if !voting {
				continue
			}
			anyVoter = true
			if !stored {
				b.stats.TapMisses++
				allStored = false
			}
			continue
		}
		anyVoter = true
		if !e.tap.Observe(f) {
			b.stats.TapMisses++
			allStored = false
		}
	}
	ok := anyVoter && allStored
	// Ack-slot interference: the recorder stored the frame, but the slot
	// carrying its acknowledgement is garbled, so receivers must treat the
	// frame as unpublished. The retransmit lands on the recorder's duplicate
	// detection (the tap stores stay — only the verdict flips).
	if ok && b.faults.AckSlotErrProb > 0 && b.rng.Bool(b.faults.AckSlotErrProb) {
		b.stats.AckSlotErrs++
		ok = false
	}
	return ok
}

// maybeCorrupt applies CorruptProb to a freshly cloned frame at transmission
// time: a hit invalidates the checksum so every listener (taps included)
// discards the frame through the medium's existing corrupt-frame path.
func (b *base) maybeCorrupt(f *frame.Frame) {
	if b.faults.CorruptProb > 0 && b.rng.Bool(b.faults.CorruptProb) {
		f.Corrupt = true
		b.stats.FramesCorrupted++
	}
}

// deliver hands the frame to its destination station(s), transferring
// ownership of f per the Station contract: the frame is the medium's
// private copy (made at Send) and this is its last touch. withRecorderGate
// media call it only after a positive tap verdict.
//
// The common case — no per-receiver faults armed — takes a precomputed
// path: broadcast walks the cached receiver slice handing every station the
// same shared frame (no map lookups, no RNG draws, no clones), unicast is a
// dense-slice index plus an ownership hand-off. Both consume zero RNG and
// bump the same counters the faulted path would, so fingerprints cannot
// tell them apart. Any armed fault falls back to the original per-receiver
// loop, whose draw order is part of the determinism contract.
func (b *base) deliver(src frame.NodeID, f *frame.Frame) {
	if !b.recvSane {
		b.refreshRecv()
	}
	clean := b.faults.deliveryClean()
	if f.Dst == frame.Broadcast {
		if clean {
			n := uint64(0)
			for i := range b.recv {
				if b.recv[i].id == src {
					continue
				}
				b.recv[i].s.Receive(f)
				n++
			}
			b.stats.FramesDelivered += n
			return
		}
		for _, id := range b.order {
			if id == src || !b.faults.reachable(src, id) {
				continue
			}
			b.deliverTo(src, id, b.stations[id], f)
		}
		return
	}
	s, ok := b.station(f.Dst)
	if !ok {
		return
	}
	if clean {
		b.stats.FramesDelivered++
		s.Receive(f)
		return
	}
	if !b.faults.reachable(src, f.Dst) {
		return
	}
	b.deliverTo(src, f.Dst, s, f)
}

// deliverTo hands one receiver its copy under armed per-receiver faults:
// interface miss, per-link loss, and injected duplication. Each delivery is
// a private clone so the injected duplicate cannot alias state the receiver
// already took ownership of.
func (b *base) deliverTo(src, dst frame.NodeID, s Station, f *frame.Frame) {
	if b.faults.ReceiverMissProb > 0 && b.rng.Bool(b.faults.ReceiverMissProb) {
		return
	}
	if p := b.faults.linkLossProb(src, dst); p > 0 && b.rng.Bool(p) {
		b.stats.LinkDrops++
		return
	}
	b.stats.FramesDelivered++
	s.Receive(f.Clone())
	// Injected duplication: the same wire transmission is handed up twice
	// (a reflected frame); transport duplicate suppression must absorb it.
	if b.faults.DupProb > 0 && b.rng.Bool(b.faults.DupProb) {
		b.stats.FramesDuped++
		s.Receive(f.Clone())
	}
}
