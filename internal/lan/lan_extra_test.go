package lan

import (
	"testing"

	"publishing/internal/frame"
	"publishing/internal/simtime"
)

// Classic Ethernet gives up after 16 attempts of excessive collisions.
func TestEtherExcessiveCollisionsDropsFrame(t *testing.T) {
	r := newRig(t, builders["ether"], 3, false)
	m := r.m.(*Ether)
	m.maxAttempts = 2
	// Jam the channel by scheduling colliding sends forever.
	var flood func()
	n := uint64(0)
	flood = func() {
		n++
		r.m.Send(1, guaranteed(1, 2, n+1000, "noise"))
		r.m.Send(2, guaranteed(2, 1, n+5000, "noise"))
		if n < 50 {
			r.sched.After(DefaultConfig().SlotTime/4, flood)
		}
	}
	r.m.Send(0, guaranteed(0, 2, 1, "victim"))
	flood()
	r.sched.RunAll(1_000_000)
	if r.m.Stats().FramesLost == 0 {
		t.Fatal("nothing was dropped despite constant collisions")
	}
}

// The Acknowledging Ethernet without any tap still reserves its ack slot
// and delivers (publishing off but hardware present).
func TestAckEtherNoTap(t *testing.T) {
	r := newRig(t, builders["ackether"], 2, false)
	r.m.Send(0, guaranteed(0, 1, 1, "x"))
	r.sched.RunAll(10000)
	if len(r.stations[1].got) != 1 {
		t.Fatal("ackether without tap did not deliver")
	}
}

// Ring broadcast with a tap: all stations get the frame, each on the pass
// consistent with its position relative to the recorder.
func TestRingBroadcastWithTap(t *testing.T) {
	r := newRig(t, builders["ring"], 4, true)
	r.m.Send(0, guaranteed(0, frame.Broadcast, 1, "all"))
	r.sched.RunAll(100000)
	for i := frame.NodeID(1); i <= 3; i++ {
		if len(r.stations[i].got) != 1 {
			t.Fatalf("station %d got %d", i, len(r.stations[i].got))
		}
	}
}

// Acks are gated like messages: a tap that fails to store an ack blocks its
// delivery (the §4.4.1 acknowledgement-blocking requirement).
func TestAckGating(t *testing.T) {
	r := newRig(t, builders["perfect"], 2, true)
	r.tap.fail = true
	ack := &frame.Frame{Type: frame.Ack, Src: 0, Dst: 1,
		ID: frame.MsgID{Sender: frame.ProcID{Node: 0, Local: 1}, Seq: 1}}
	r.m.Send(0, ack)
	r.sched.RunAll(10000)
	if len(r.stations[1].got) != 0 {
		t.Fatal("unstored ack was delivered")
	}
	// Unguaranteed frames are never gated.
	r.m.Send(0, &frame.Frame{Type: frame.Unguaranteed, Src: 0, Dst: 1, Body: []byte("fyi")})
	r.sched.RunAll(10000)
	if len(r.stations[1].got) != 1 {
		t.Fatal("unguaranteed frame was gated")
	}
}

// Star: a frame addressed to the hub node itself is delivered there.
func TestStarDirectedToHub(t *testing.T) {
	r := newRig(t, builders["star"], 4, true) // hub is node 3 with a station too
	r.m.Send(0, guaranteed(0, 3, 1, "for the hub"))
	r.sched.RunAll(10000)
	if len(r.stations[3].got) != 1 {
		t.Fatalf("hub station got %d", len(r.stations[3].got))
	}
}

// FaultPlan accessors behave.
func TestFaultPlanBasics(t *testing.T) {
	var p FaultPlan
	if p.Down(3) {
		t.Fatal("fresh plan has a down node")
	}
	p.SetDown(3, true)
	if !p.Down(3) || p.Down(4) {
		t.Fatal("SetDown wrong")
	}
	p.SetDown(3, false)
	if p.Down(3) {
		t.Fatal("SetDown(false) wrong")
	}
	p.SetPartition(1, 2)
	if p.reachable(1, 0) || !p.reachable(1, 1) {
		t.Fatal("partition reachability wrong")
	}
	p.Heal()
	if !p.reachable(1, 0) {
		t.Fatal("heal wrong")
	}
}

// Media keep working after a long idle gap (no stuck channel state).
func TestIdleGapThenTraffic(t *testing.T) {
	for name, build := range builders {
		t.Run(name, func(t *testing.T) {
			r := newRig(t, build, 2, true)
			r.m.Send(0, guaranteed(0, 1, 1, "a"))
			r.sched.RunAll(100000)
			r.sched.At(r.sched.Now()+10*simtime.Minute, func() {
				r.m.Send(0, guaranteed(0, 1, 2, "b"))
			})
			r.sched.RunAll(100000)
			if len(r.stations[1].got) != 2 {
				t.Fatalf("got %d after idle gap", len(r.stations[1].got))
			}
		})
	}
}
