package lan

import (
	"publishing/internal/frame"
	"publishing/internal/simtime"
	"publishing/internal/trace"
)

// Ring is a token ring (§6.1.2, after Farmer & Newhall / Pierce) with the
// paper's recorder extension: each message slot carries an acknowledge field
// that is empty on insertion. "Messages that have an empty acknowledge field
// are ignored by all nodes except the recorder. When the message passes the
// recorder, the recorder fills the acknowledge field and reads the message."
// If the recorder received the message incorrectly it complements the
// trailing checksum, so the destination discards it too.
//
// Stations and taps occupy ring positions in attachment order. A destination
// upstream of the recorder (relative to the sender) ignores the frame on its
// first pass — the ack field is still empty — and reads it on the second
// pass; the sender removes the frame after the pass on which it became
// readable and then releases the token. With multiple recorders the slot
// carries one acknowledge field per recorder (§6.3) and the frame is
// readable only once every reachable recorder has filled its field.
type Ring struct {
	base
	order []frame.NodeID
	pos   map[frame.NodeID]int
	busy  bool
	queue []*ringTx
}

type ringTx struct {
	src frame.NodeID
	f   *frame.Frame
}

// ringVerdict accumulates the recorder acknowledge fields of one slot.
type ringVerdict struct {
	anyTap    bool
	allStored bool
}

// NewRing returns a token ring medium.
func NewRing(cfg Config, sched *simtime.Scheduler, rng *simtime.Rand, log *trace.Log) *Ring {
	return &Ring{base: newBase(cfg, sched, rng, log), pos: make(map[frame.NodeID]int)}
}

// Attach places the station at the next ring position.
func (m *Ring) Attach(id frame.NodeID, s Station) {
	m.base.Attach(id, s)
	m.place(id)
}

// AttachTap places the tap's node at the next ring position.
func (m *Ring) AttachTap(id frame.NodeID, t Tap) {
	m.base.AttachTap(id, t)
	m.place(id)
}

func (m *Ring) place(id frame.NodeID) {
	if _, ok := m.pos[id]; ok {
		return
	}
	m.pos[id] = len(m.order)
	m.order = append(m.order, id)
}

// dist returns the number of hops from a to b travelling ring-forward.
// dist(a, a) is a full circle (the frame returns to its sender).
func (m *Ring) dist(a, b frame.NodeID) int {
	n := len(m.order)
	d := (m.pos[b] - m.pos[a] + n) % n
	if d == 0 {
		d = n
	}
	return d
}

// Send waits for the token, inserts the frame, and lets it circulate.
func (m *Ring) Send(src frame.NodeID, f *frame.Frame) {
	if m.faults.Down(src) {
		return
	}
	if _, ok := m.pos[src]; !ok {
		return
	}
	m.stats.FramesSent++
	g := f.Clone()
	m.maybeCorrupt(g)
	m.queue = append(m.queue, &ringTx{src: src, f: g})
	if !m.busy {
		m.startNext()
	}
}

func (m *Ring) startNext() {
	for len(m.queue) > 0 {
		tx := m.queue[0]
		m.queue = m.queue[1:]
		if m.faults.Down(tx.src) {
			m.stats.FramesLost++
			continue
		}
		m.busy = true
		m.circulate(tx)
		return
	}
	m.busy = false
}

// circulate models one frame's trip(s) around the ring with event times
// computed analytically (per-hop events would be pure overhead).
func (m *Ring) circulate(tx *ringTx) {
	n := len(m.order)
	now := m.sched.Now()
	txTime := m.cfg.TxTime(tx.f.WireLen())
	onRing := now + txTime
	m.stats.BytesOnWire += uint64(tx.f.WireLen())

	lost := tx.f.Corrupt || (m.faults.LossProb > 0 && m.rng.Bool(m.faults.LossProb))

	// Schedule each reachable tap's observation at the instant the frame
	// passes it. Verdicts accumulate into ackFilled; by ring construction
	// every gated delivery happens strictly after the last tap pass, so the
	// delivery events below read the final verdict.
	ackFilled := &ringVerdict{allStored: true}
	maxTapDist := 0
	if !lost {
		for _, e := range m.taps {
			e := e
			if !m.faults.reachable(tx.src, e.id) {
				// Down recorders are excused; survivors fill their ack
				// fields for them (§6.3).
				continue
			}
			ackFilled.anyTap = true
			d := m.dist(tx.src, e.id)
			if d > maxTapDist {
				maxTapDist = d
			}
			passAt := onRing + simtime.Time(d)*m.cfg.HopDelay + m.cfg.AckSlot
			miss := m.faults.TapMissProb > 0 && m.rng.Bool(m.faults.TapMissProb)
			// tx.f is never mutated after enqueue, so the tap's read-only
			// view needs no clone even though Observe runs later.
			m.sched.At(passAt, func() {
				if miss || !e.tap.Observe(tx.f) {
					m.stats.TapMisses++
					ackFilled.allStored = false
				}
			})
		}
	}
	gatedTx := len(m.taps) > 0 && gated(tx.f.Type)
	usable := !lost

	deliverAt := func(dst frame.NodeID) (simtime.Time, bool) {
		if !m.faults.reachable(tx.src, dst) {
			return 0, false
		}
		d := m.dist(tx.src, dst)
		pass := 0
		if gatedTx && d < maxTapDist {
			// The destination precedes a recorder: ack field still empty on
			// the first pass; readable on the second.
			pass = 1
		}
		return onRing + simtime.Time(pass*n+d)*m.cfg.HopDelay + m.cfg.AckSlot, true
	}

	// receive wraps delivery with the gated verdict check: a destination
	// only reads a slot whose acknowledge field(s) are filled and whose
	// checksum survived (§6.1.2).
	receive := func(s Station, g *frame.Frame) {
		if gatedTx && !(ackFilled.anyTap && ackFilled.allStored) {
			m.stats.FramesLost++
			m.stats.RecorderBlocks++
			m.log.Add(trace.KindDrop, int(tx.src), g.ID.String(),
				"recorder invalidated checksum; frame ignored")
			return
		}
		m.stats.FramesDelivered++
		s.Receive(g)
	}

	lastRead := 0 // passes needed before the sender removes the frame
	if usable {
		delivered := false
		if tx.f.Dst == frame.Broadcast {
			// Walk the ring positions, not the station map: per-receiver rng
			// draws must happen in a deterministic order.
			for _, id := range m.order {
				s, isStation := m.stations[id]
				if !isStation || id == tx.src {
					continue
				}
				at, ok := deliverAt(id)
				if !ok {
					continue
				}
				if m.faults.ReceiverMissProb > 0 && m.rng.Bool(m.faults.ReceiverMissProb) {
					continue
				}
				if gatedTx && m.dist(tx.src, id) < maxTapDist {
					lastRead = 1
				}
				// Broadcast receivers share the ring slot's frame read-only
				// (Station contract); no per-receiver clone.
				g := tx.f
				m.sched.At(at, func() { receive(s, g) })
				delivered = true
			}
		} else if s, ok := m.stations[tx.f.Dst]; ok {
			at, reach := deliverAt(tx.f.Dst)
			miss := m.faults.ReceiverMissProb > 0 && m.rng.Bool(m.faults.ReceiverMissProb)
			if reach && !miss {
				if gatedTx && m.dist(tx.src, tx.f.Dst) < maxTapDist {
					lastRead = 1
				}
				// Unicast: the slot's frame becomes the sole receiver's copy.
				g := tx.f
				m.sched.At(at, func() { receive(s, g) })
				delivered = true
			}
		}
		if !delivered {
			m.stats.FramesLost++
		}
	} else {
		m.stats.FramesLost++
	}

	// The sender removes the frame when it returns after the decisive pass,
	// reinserts the token, and the next waiting station may transmit.
	release := onRing + simtime.Time((lastRead+1)*n)*m.cfg.HopDelay
	m.stats.BusyTime += release - now
	m.sched.At(release, m.startNext)
}

var _ Medium = (*Ring)(nil)

// Lookahead: zero. Token rotation timing depends on the live station set
// and consumes per-rotation state on every send, so the parallel engine
// executes Ring clusters serially.
func (m *Ring) Lookahead() simtime.Time { return 0 }
