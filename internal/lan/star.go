package lan

import (
	"publishing/internal/frame"
	"publishing/internal/simtime"
	"publishing/internal/trace"
)

// Star is the experimental Z8000 configuration of §4.1 (Fig 4.1a): the
// recording node is the hub of a star; every frame is relayed through it.
// "Any messages received incorrectly by the recorder are not passed on", so
// publish-before-use holds by construction. If the hub is down the network
// is unavailable — exactly the recorder-availability limitation §6.3's
// multiple recorders address (on a star, by multiple hubs; not modelled).
type Star struct {
	base
	hub       frame.NodeID
	busyUntil simtime.Time
}

// NewStar returns a star medium with the given hub node. The hub's tap (the
// recorder) should be attached with AttachTap under the same node id.
func NewStar(cfg Config, sched *simtime.Scheduler, rng *simtime.Rand, log *trace.Log, hub frame.NodeID) *Star {
	return &Star{base: newBase(cfg, sched, rng, log), hub: hub}
}

// Hub returns the hub node id.
func (m *Star) Hub() frame.NodeID { return m.hub }

// Send transmits the frame over the point-to-point link to the hub; the hub
// stores it and relays it outward on the destination's link.
func (m *Star) Send(src frame.NodeID, f *frame.Frame) {
	if m.faults.Down(src) {
		return
	}
	m.stats.FramesSent++
	n := f.WireLen()
	m.stats.BytesOnWire += uint64(n)

	// The inbound and outbound links are modelled as a single serialized
	// resource, matching the low-speed point-to-point links of §4.1. The
	// frame occupies the hub for in + out transmission.
	start := m.sched.Now()
	if m.busyUntil > start {
		start = m.busyUntil
	}
	inDone := start + m.cfg.FrameTime(n)
	outDone := inDone + m.cfg.TxTime(n)
	m.busyUntil = outDone
	m.stats.BusyTime += outDone - start

	g := f.Clone()
	m.maybeCorrupt(g)
	m.sched.At(inDone, func() { m.atHub(src, g, outDone) })
}

func (m *Star) atHub(src frame.NodeID, f *frame.Frame, outDone simtime.Time) {
	if m.faults.Down(src) {
		m.stats.FramesLost++
		return
	}
	if m.faults.Down(m.hub) || !m.faults.reachable(src, m.hub) {
		// Hub unreachable: the star is dead for this sender.
		m.stats.FramesLost++
		m.log.Add(trace.KindDrop, int(src), f.ID.String(), "hub down; frame lost")
		return
	}
	if m.faults.LossProb > 0 && m.rng.Bool(m.faults.LossProb) {
		m.stats.FramesLost++
		return
	}
	if f.Corrupt {
		m.stats.FramesLost++
		return
	}
	stored := m.offerToTaps(src, f)
	if gated(f.Type) && !stored {
		// Received incorrectly by the recorder: not passed on (§4.1).
		m.stats.RecorderBlocks++
		m.log.Add(trace.KindDrop, int(src), f.ID.String(), "hub failed to record; not relayed")
		return
	}
	m.sched.At(outDone, func() {
		if m.faults.Down(m.hub) {
			m.stats.FramesLost++
			return
		}
		// Relay outward. Delivery is keyed on the original sender so that
		// broadcasts do not echo back to it; reachability src→dst composes
		// with the src→hub check already done.
		m.deliver(src, f)
	})
}

var _ Medium = (*Star)(nil)

// Lookahead: zero. The hub serializes and re-broadcasts with hub-local
// queue state on every send, so the parallel engine executes Star clusters
// serially.
func (m *Star) Lookahead() simtime.Time { return 0 }
