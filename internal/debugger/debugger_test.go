package debugger_test

import (
	"bytes"
	"encoding/gob"
	"fmt"
	"strings"
	"testing"

	"publishing"
	"publishing/internal/debugger"
	"publishing/internal/demos"
	"publishing/internal/simtime"
)

// accumulator sums message values and reports each step to a peer.
type accState struct {
	Out    demos.LinkID
	HasOut bool
	Sum    int
}

type accMachine struct{ st accState }

func (a *accMachine) Init(ctx *demos.PCtx) {
	if l, err := ctx.ServiceLink("peer"); err == nil {
		a.st.Out = l
		a.st.HasOut = true
	}
}
func (a *accMachine) Handle(ctx *demos.PCtx, m demos.Msg) {
	a.st.Sum += int(m.Body[0])
	if a.st.HasOut {
		_ = ctx.Send(a.st.Out, []byte(fmt.Sprintf("sum=%d", a.st.Sum)), demos.NoLink)
	}
}
func (a *accMachine) Snapshot() ([]byte, error) {
	var buf bytes.Buffer
	err := gob.NewEncoder(&buf).Encode(&a.st)
	return buf.Bytes(), err
}
func (a *accMachine) Restore(b []byte) error {
	return gob.NewDecoder(bytes.NewReader(b)).Decode(&a.st)
}

// buildHistory runs a live cluster, building a published history for the
// accumulator, and returns the cluster plus the accumulator's pid.
func buildHistory(t *testing.T) (*publishing.Cluster, publishing.ProcID) {
	t.Helper()
	cfg := publishing.DefaultConfig(2)
	c := publishing.New(cfg)
	c.Registry().RegisterMachine("acc", func(args []byte) publishing.Machine { return &accMachine{} })
	c.Registry().RegisterMachine("peer", func(args []byte) publishing.Machine {
		return &peerMachine{}
	})
	c.Registry().RegisterProgram("feeder", func(args []byte) publishing.Program {
		return func(ctx *publishing.PCtx) {
			al, _ := ctx.ServiceLink("acc")
			for i := 1; i <= 5; i++ {
				_ = ctx.Send(al, []byte{byte(i)}, publishing.NoLink)
				ctx.Compute(100 * simtime.Millisecond)
			}
		}
	})
	peer, err := c.Spawn(1, publishing.ProcSpec{Name: "peer", Recoverable: true})
	if err != nil {
		t.Fatal(err)
	}
	c.SetService("peer", peer)
	acc, err := c.Spawn(0, publishing.ProcSpec{Name: "acc", Recoverable: true})
	if err != nil {
		t.Fatal(err)
	}
	c.SetService("acc", acc)
	if _, err := c.Spawn(0, publishing.ProcSpec{Name: "feeder", Recoverable: true}); err != nil {
		t.Fatal(err)
	}
	c.Run(30 * simtime.Second)
	return c, acc
}

type peerMachine struct{ n int }

func (p *peerMachine) Init(ctx *demos.PCtx)                {}
func (p *peerMachine) Handle(ctx *demos.PCtx, m demos.Msg) { p.n++ }
func (p *peerMachine) Snapshot() ([]byte, error)           { return nil, nil }
func (p *peerMachine) Restore(b []byte) error              { return nil }

func TestStepThroughHistory(t *testing.T) {
	c, acc := buildHistory(t)
	sess, err := c.DebugSession(acc, false)
	if err != nil {
		t.Fatal(err)
	}
	if sess.Remaining() != 5 {
		t.Fatalf("stream has %d messages, want 5", sess.Remaining())
	}
	wantSums := []int{1, 3, 6, 10, 15}
	for i := 0; i < 5; i++ {
		res, err := sess.Step()
		if err != nil {
			t.Fatalf("step %d: %v", i, err)
		}
		if len(res.Outputs) != 1 {
			t.Fatalf("step %d outputs: %v", i, res.Outputs)
		}
		want := fmt.Sprintf("sum=%d", wantSums[i])
		if string(res.Outputs[0].Body) != want {
			t.Fatalf("step %d output = %q, want %q", i, res.Outputs[0].Body, want)
		}
		if !res.Outputs[0].Resend {
			t.Fatalf("step %d: replayed output not marked as resend", i)
		}
		var st accState
		if err := gob.NewDecoder(bytes.NewReader(res.State)).Decode(&st); err != nil {
			t.Fatalf("step %d state: %v", i, err)
		}
		if st.Sum != wantSums[i] {
			t.Fatalf("step %d state sum = %d, want %d", i, st.Sum, wantSums[i])
		}
	}
	if _, err := sess.Step(); err != debugger.ErrExhausted {
		t.Fatalf("expected exhaustion, got %v", err)
	}
}

// The §6.5 breakpoint: run to the step where a condition first holds.
func TestBreakpoint(t *testing.T) {
	c, acc := buildHistory(t)
	sess, err := c.DebugSession(acc, false)
	if err != nil {
		t.Fatal(err)
	}
	res, found := sess.RunUntil(func(r debugger.StepResult) bool {
		return len(r.Outputs) > 0 && strings.Contains(string(r.Outputs[0].Body), "sum=6")
	})
	if !found {
		t.Fatal("breakpoint never hit")
	}
	if res.Position != 3 {
		t.Fatalf("broke at position %d, want 3", res.Position)
	}
	if sess.Remaining() != 2 {
		t.Fatalf("remaining = %d, want 2", sess.Remaining())
	}
}

// Debugging from a checkpoint starts mid-history: fewer steps, same final
// state.
func TestDebugFromCheckpoint(t *testing.T) {
	cfg := publishing.DefaultConfig(2)
	cfg.CheckpointPolicy = publishing.CheckpointBound
	cfg.CheckpointTick = 200 * simtime.Millisecond
	c := publishing.New(cfg)
	c.Registry().RegisterMachine("acc", func(args []byte) publishing.Machine { return &accMachine{} })
	c.Registry().RegisterMachine("peer", func(args []byte) publishing.Machine { return &peerMachine{} })
	c.Registry().RegisterProgram("feeder", func(args []byte) publishing.Program {
		return func(ctx *publishing.PCtx) {
			al, _ := ctx.ServiceLink("acc")
			for i := 1; i <= 8; i++ {
				_ = ctx.Send(al, []byte{byte(i)}, publishing.NoLink)
				ctx.Compute(300 * simtime.Millisecond)
			}
		}
	})
	peer, _ := c.Spawn(1, publishing.ProcSpec{Name: "peer", Recoverable: true})
	c.SetService("peer", peer)
	acc, err := c.Spawn(0, publishing.ProcSpec{
		Name: "acc", Recoverable: true,
		RecoveryTimeBound: 300 * simtime.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	c.SetService("acc", acc)
	c.Spawn(0, publishing.ProcSpec{Name: "feeder", Recoverable: true})
	c.Run(60 * simtime.Second)

	if _, _, _, ok := c.Recorder().CheckpointOf(acc); !ok {
		t.Fatal("no checkpoint was stored")
	}
	full := 8
	sess, err := c.DebugSession(acc, true)
	if err != nil {
		t.Fatal(err)
	}
	if sess.Remaining() >= full {
		t.Fatalf("checkpointed session replays %d messages, want < %d", sess.Remaining(), full)
	}
	// The checkpoint may cover the whole history (zero steps left) or part
	// of it; either way, replaying the remainder must land on the exact
	// final state.
	boot := sess.Boot()
	state := boot.State
	for _, step := range sess.RunAll() {
		state = step.State
	}
	var st accState
	if err := gob.NewDecoder(bytes.NewReader(state)).Decode(&st); err != nil {
		t.Fatal(err)
	}
	if st.Sum != 36 { // 1+..+8
		t.Fatalf("final sum = %d, want 36", st.Sum)
	}
}

func TestOutputFormatting(t *testing.T) {
	o := debugger.Output{To: publishing.ProcID{Node: 1, Local: 2}, Seq: 3, Body: []byte("x"), Resend: true}
	if !strings.Contains(o.String(), "resend") {
		t.Fatalf("Output.String = %q", o.String())
	}
}
