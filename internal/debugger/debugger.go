// Package debugger implements §6.5, "Debugging using published messages":
// because the recorder holds a process's checkpoint and its complete,
// correctly ordered message history, a programmer can re-execute the
// process in a sandbox, stepping one message at a time and watching every
// output it produces — "back up a process to the point where the problem
// originally occurred".
//
// The sandbox is a single isolated node with publishing off; the debugged
// process's outgoing messages are intercepted before transmission and
// reported as step results instead of being delivered anywhere, so the
// re-execution cannot perturb the live system.
package debugger

import (
	"errors"
	"fmt"

	"publishing/internal/demos"
	"publishing/internal/frame"
	"publishing/internal/lan"
	"publishing/internal/recorder"
	"publishing/internal/simtime"
	"publishing/internal/trace"
	"publishing/internal/transport"
)

// Output is one message the debugged process (re-)sent.
type Output struct {
	To      frame.ProcID
	Channel uint16
	Code    uint32
	Seq     uint64
	Body    []byte
	// Resend marks outputs the original execution had already sent before
	// its crash (seq ≤ the recorded last-sent id); during real recovery the
	// kernel suppresses exactly these.
	Resend bool
}

// String formats the output.
func (o Output) String() string {
	tag := ""
	if o.Resend {
		tag = " (resend)"
	}
	return fmt.Sprintf("-> %s ch=%d #%d %q%s", o.To, o.Channel, o.Seq, o.Body, tag)
}

// StepResult reports one debugging step.
type StepResult struct {
	// Delivered is the replayed message (zero on Boot).
	Delivered recorder.ReplayMsg
	// Outputs are the messages the step provoked.
	Outputs []Output
	// State is the machine state after the step (nil for Program images or
	// when the process is mid-execution).
	State []byte
	// Position is the stream index after the step.
	Position int
}

// Options tune a session.
type Options struct {
	// Checkpoint restores the process from a snapshot instead of the
	// initial image; SendSeq/ReadCount are its counters.
	Checkpoint []byte
	SendSeq    uint64
	ReadCount  uint64
	// OriginalLastSent marks which outputs are resends of pre-crash
	// messages (recorder.LastSentOf).
	OriginalLastSent uint64
	// Services resolves well-known service names exactly as the live
	// cluster did, so re-executed ServiceLink calls behave identically.
	Services map[string]frame.ProcID
}

// Session is one interactive replay.
type Session struct {
	sched  *simtime.Scheduler
	kernel *demos.Kernel
	pid    frame.ProcID
	stream []recorder.ReplayMsg
	pos    int
	opts   Options

	pending []Output
	booted  bool
}

// ErrExhausted is returned by Step when the stream is fully replayed.
var ErrExhausted = errors.New("debugger: published stream exhausted")

// New builds a sandboxed session replaying spec against stream.
func New(reg *demos.Registry, spec demos.ProcSpec, pid frame.ProcID, stream []recorder.ReplayMsg, opts Options) (*Session, error) {
	sched := simtime.NewScheduler()
	log := trace.New(sched.Now)
	rng := simtime.NewRand(1)
	med := lan.NewPerfect(lan.DefaultConfig(), sched, rng, log)
	env := demos.Env{
		Sched:     sched,
		Rng:       rng,
		Log:       log,
		Registry:  reg,
		Costs:     demos.ZeroCosts(),
		Medium:    med,
		Transport: transport.DefaultConfig(),
		Services:  opts.Services,
	}
	k := demos.NewKernel(pid.Node, env)
	s := &Session{sched: sched, kernel: k, pid: pid, stream: stream, opts: opts}
	k.SetEmitFilter(func(f *frame.Frame) bool {
		if f.From != pid {
			return false // not the debugged process; let it through
		}
		if f.To == pid {
			return false // self-sends must loop back for determinism
		}
		s.pending = append(s.pending, Output{
			To:      f.To,
			Channel: f.Channel,
			Code:    f.Code,
			Seq:     f.ID.Seq,
			Body:    append([]byte(nil), f.Body...),
			Resend:  f.ID.Seq <= opts.OriginalLastSent,
		})
		return true
	})
	_, err := k.Spawn(spec, demos.SpawnOptions{
		FixedID:    &pid,
		Checkpoint: opts.Checkpoint,
		SendSeq:    opts.SendSeq,
		ReadCount:  opts.ReadCount,
		Quiet:      true,
	})
	if err != nil {
		return nil, err
	}
	return s, nil
}

// FromRecorder builds a session for a live cluster's process, pulling the
// stream, spec, and latest checkpoint from the recorder. services must be
// the cluster's well-known service map (publishing.Cluster.DebugSession
// wires this up).
func FromRecorder(reg *demos.Registry, rec *recorder.Recorder, pid frame.ProcID, useCheckpoint bool, services map[string]frame.ProcID) (*Session, error) {
	spec, ok := rec.SpecOf(pid)
	if !ok {
		return nil, fmt.Errorf("debugger: recorder knows no process %s", pid)
	}
	opts := Options{OriginalLastSent: rec.LastSentOf(pid), Services: services}
	if useCheckpoint {
		if blob, sendSeq, readCount, ok := rec.CheckpointOf(pid); ok {
			opts.Checkpoint = blob
			opts.SendSeq = sendSeq
			opts.ReadCount = readCount
		}
	}
	return New(reg, spec, pid, rec.StreamMessages(pid), opts)
}

// Remaining reports how many messages are left to replay.
func (s *Session) Remaining() int { return len(s.stream) - s.pos }

// Position reports the current stream index.
func (s *Session) Position() int { return s.pos }

// settle runs the sandbox until the process parks, then harvests outputs.
func (s *Session) settle() StepResult {
	s.sched.RunAll(1_000_000)
	res := StepResult{Outputs: s.pending, Position: s.pos}
	s.pending = nil
	if st, ok := s.kernel.MachineSnapshot(s.pid); ok {
		res.State = st
	}
	return res
}

// Boot runs the process up to its first receive (Init code and any output
// it produces) without delivering a message. Step calls it implicitly.
func (s *Session) Boot() StepResult {
	if s.booted {
		return StepResult{Position: s.pos}
	}
	s.booted = true
	return s.settle()
}

// Step delivers the next published message and runs the process until it
// waits for input again, returning everything it did.
func (s *Session) Step() (StepResult, error) {
	if !s.booted {
		boot := s.Boot()
		if len(boot.Outputs) > 0 {
			// Surface boot activity as its own step.
			return boot, nil
		}
	}
	if s.pos >= len(s.stream) {
		return StepResult{Position: s.pos}, ErrExhausted
	}
	m := s.stream[s.pos]
	s.pos++
	err := s.kernel.Inject(s.pid, demos.Msg{
		ID:      m.ID,
		From:    m.From,
		Channel: m.Channel,
		Code:    m.Code,
		Body:    m.Body,
	}, m.Link)
	if err != nil {
		return StepResult{}, err
	}
	res := s.settle()
	res.Delivered = m
	res.Position = s.pos
	return res, nil
}

// RunUntil steps until pred is satisfied or the stream ends. It reports the
// matching step and whether pred ever held — the §6.5 breakpoint.
func (s *Session) RunUntil(pred func(StepResult) bool) (StepResult, bool) {
	for {
		res, err := s.Step()
		if err != nil {
			return res, false
		}
		if pred(res) {
			return res, true
		}
	}
}

// RunAll replays the remaining stream and returns every step.
func (s *Session) RunAll() []StepResult {
	var out []StepResult
	for {
		res, err := s.Step()
		if err != nil {
			return out
		}
		out = append(out, res)
	}
}
