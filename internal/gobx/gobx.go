// Package gobx amortizes gob's per-stream setup for the frame bodies and
// database records that are encoded once per message on the simulator's hot
// path.
//
// The wire contract everywhere in this repo is "one self-contained gob
// stream per value": producers call gob.NewEncoder(buf).Encode(v), consumers
// gob.NewDecoder(r).Decode(v). That contract is what makes the recorder's
// database and the kernel's notices decodable in isolation — but a fresh
// encoder re-transmits the type descriptors and a fresh decoder re-compiles
// its decode engines for every single value, which profiling shows is the
// single largest CPU and allocation line in a 256-node run.
//
// For a fixed concrete type with no interface fields, a gob stream factors
// into a constant prefix (the type-descriptor messages, a pure function of
// the static type graph) followed by one value message. Codec exploits
// that: it keeps one long-lived encoder whose descriptor traffic was
// captured at construction, so each Encode emits only the value message and
// prepends the cached prefix — producing byte-for-byte the stream a fresh
// encoder would. Decode runs the inverse: when the input starts with the
// expected prefix (always, for streams our own encoders produced), the
// value message is fed to a long-lived decoder with already-compiled
// engines; anything else falls back to a fresh decoder, so foreign or
// corrupt streams behave exactly as before.
//
// Byte-identity is not an optimization nicety here — recorded databases are
// fingerprinted by the determinism oracles (sweep-verify, the scale tests),
// so an encoder that changed the stream would change the fingerprints.
// codec_test.go pins the equivalence against the stock encoder for every
// type the hot paths register.
package gobx

import (
	"bytes"
	"encoding/gob"
	"sync"
)

// Codec encodes and decodes values of the concrete type T as self-contained
// gob streams, byte-compatible with one-shot gob encoders and decoders. T
// must not contain interface-typed fields (the descriptor prefix would then
// depend on the value); the first Encode or Decode panics on types gob
// cannot handle at all, same as the one-shot path.
//
// A Codec is safe for concurrent use; chaos and sweep harnesses drive
// clusters from parallel goroutines through package-level codecs.
type Codec[T any] struct {
	mu sync.Mutex

	// prefix is the constant type-descriptor section a fresh encoder emits
	// before the first value of T.
	prefix []byte

	enc    *gob.Encoder
	encBuf bytes.Buffer

	dec    *gob.Decoder
	decBuf bytes.Buffer
}

// prime captures the descriptor prefix and warms the persistent encoder and
// decoder. Called lazily under mu so constructing package-level codecs stays
// free.
func (c *Codec[T]) prime() error {
	if c.enc != nil {
		return nil
	}
	var zero T
	// A one-shot encode of the zero value yields prefix+valueMsg(zero)...
	var full bytes.Buffer
	if err := gob.NewEncoder(&full).Encode(&zero); err != nil {
		return err
	}
	// ...and a second encode on a persistent encoder yields valueMsg(zero)
	// alone, which lets us split off the constant prefix.
	c.enc = gob.NewEncoder(&c.encBuf)
	if err := c.enc.Encode(&zero); err != nil {
		c.enc = nil
		return err
	}
	c.encBuf.Reset()
	if err := c.enc.Encode(&zero); err != nil {
		c.enc = nil
		return err
	}
	valueLen := c.encBuf.Len()
	c.prefix = append([]byte(nil), full.Bytes()[:full.Len()-valueLen]...)
	c.encBuf.Reset()

	c.dec = gob.NewDecoder(&c.decBuf)
	c.decBuf.Write(full.Bytes())
	if err := c.dec.Decode(&zero); err != nil {
		c.enc, c.dec = nil, nil
		return err
	}
	c.decBuf.Reset()
	return nil
}

// Encode appends the gob stream for v to dst and returns the extended
// slice. The appended bytes are exactly what gob.NewEncoder(w).Encode(v)
// would write.
func (c *Codec[T]) Encode(dst []byte, v *T) ([]byte, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if err := c.prime(); err != nil {
		return dst, err
	}
	c.encBuf.Reset()
	if err := c.enc.Encode(v); err != nil {
		// The persistent encoder's stream state is suspect after a failed
		// encode; rebuild on next use.
		c.enc = nil
		return dst, err
	}
	dst = append(dst, c.prefix...)
	return append(dst, c.encBuf.Bytes()...), nil
}

// Decode decodes one value of T from the gob stream b. Streams produced by
// Encode (or any fresh gob encoder, which emit the same bytes) take the
// fast path; anything else — foreign descriptor layouts, corruption — is
// retried with a one-shot decoder so behavior matches gob exactly.
func (c *Codec[T]) Decode(b []byte, v *T) error {
	c.mu.Lock()
	if err := c.prime(); err != nil {
		c.mu.Unlock()
		return err
	}
	if bytes.HasPrefix(b, c.prefix) {
		c.decBuf.Reset()
		c.decBuf.Write(b[len(c.prefix):])
		err := c.dec.Decode(v)
		if err == nil {
			c.mu.Unlock()
			return nil
		}
		// A failed decode may leave the persistent decoder mid-stream;
		// rebuild it, then let the one-shot path produce the error (or the
		// value, if the stream was merely unusual).
		c.dec, c.enc = nil, nil
		c.decBuf.Reset()
	}
	c.mu.Unlock()
	return gob.NewDecoder(bytes.NewReader(b)).Decode(v)
}
