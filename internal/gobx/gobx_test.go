package gobx

import (
	"bytes"
	"encoding/gob"
	"reflect"
	"testing"
)

type inner struct {
	A uint64
	B [12]byte
}

type sample struct {
	Kind  uint8
	Name  string
	Body  []byte
	Seq   uint64
	Ptr   *inner
	Fixed inner
	Flag  bool
}

func oneShot(t *testing.T, v any) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(v); err != nil {
		t.Fatalf("one-shot encode: %v", err)
	}
	return buf.Bytes()
}

func samples() []sample {
	return []sample{
		{},
		{Kind: 3, Name: "alpha", Body: []byte("payload"), Seq: 1},
		{Name: "", Body: nil, Seq: ^uint64(0), Flag: true},
		{Ptr: &inner{A: 9, B: [12]byte{1, 2, 3}}, Fixed: inner{A: 7}},
		{Kind: 255, Name: "trailing", Body: make([]byte, 300), Seq: 42,
			Ptr: &inner{}, Flag: true},
	}
}

// TestEncodeMatchesOneShot is the byte-identity pin: every Encode must
// produce exactly the stream a fresh gob encoder would, in any call order.
func TestEncodeMatchesOneShot(t *testing.T) {
	var c Codec[sample]
	for round := 0; round < 3; round++ {
		for i, v := range samples() {
			v := v
			got, err := c.Encode(nil, &v)
			if err != nil {
				t.Fatalf("round %d sample %d: %v", round, i, err)
			}
			want := oneShot(t, &v)
			if !bytes.Equal(got, want) {
				t.Fatalf("round %d sample %d: stream mismatch\n got %x\nwant %x", round, i, got, want)
			}
		}
	}
}

// TestEncodeAppends verifies Encode appends to dst rather than clobbering.
func TestEncodeAppends(t *testing.T) {
	var c Codec[sample]
	v := samples()[1]
	got, err := c.Encode([]byte("head"), &v)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.HasPrefix(got, []byte("head")) {
		t.Fatalf("dst prefix lost: %q", got[:8])
	}
	if !bytes.Equal(got[4:], oneShot(t, &v)) {
		t.Fatal("appended stream differs from one-shot encoding")
	}
}

// TestDecodeRoundTrip runs both decode paths: fast (our own streams) and
// fallback (a stream with an unexpected descriptor section).
func TestDecodeRoundTrip(t *testing.T) {
	var c Codec[sample]
	for i, v := range samples() {
		v := v
		b, err := c.Encode(nil, &v)
		if err != nil {
			t.Fatal(err)
		}
		var got sample
		if err := c.Decode(b, &got); err != nil {
			t.Fatalf("sample %d: decode: %v", i, err)
		}
		if !reflect.DeepEqual(got, v) {
			t.Fatalf("sample %d: got %+v want %+v", i, got, v)
		}
	}
}

// TestDecodeForeignStream feeds a gob stream for a *different* struct type
// that sample can still legally decode from (gob matches fields by name);
// its descriptor section differs, forcing the fallback path.
func TestDecodeForeignStream(t *testing.T) {
	type sampleSubset struct {
		Name string
		Seq  uint64
	}
	var c Codec[sample]
	b := oneShot(t, &sampleSubset{Name: "foreign", Seq: 5})
	var got sample
	if err := c.Decode(b, &got); err != nil {
		t.Fatalf("foreign decode: %v", err)
	}
	if got.Name != "foreign" || got.Seq != 5 {
		t.Fatalf("foreign decode got %+v", got)
	}
	// The codec must still work on its own streams afterwards.
	v := samples()[1]
	b, err := c.Encode(nil, &v)
	if err != nil {
		t.Fatal(err)
	}
	var again sample
	if err := c.Decode(b, &again); err != nil {
		t.Fatalf("post-foreign decode: %v", err)
	}
	if !reflect.DeepEqual(again, v) {
		t.Fatalf("post-foreign decode got %+v want %+v", again, v)
	}
}

// TestDecodeCorrupt verifies corrupt input errors without wedging the codec.
func TestDecodeCorrupt(t *testing.T) {
	var c Codec[sample]
	v := samples()[4]
	b, err := c.Encode(nil, &v)
	if err != nil {
		t.Fatal(err)
	}
	bad := append([]byte(nil), b...)
	bad[len(bad)-1] ^= 0xff
	bad = bad[:len(bad)-3]
	var got sample
	if err := c.Decode(bad, &got); err == nil {
		t.Fatal("corrupt stream decoded without error")
	}
	// Healthy streams must still decode after the failure re-primed state.
	var again sample
	if err := c.Decode(b, &again); err != nil {
		t.Fatalf("decode after corruption: %v", err)
	}
	if !reflect.DeepEqual(again, v) {
		t.Fatalf("decode after corruption got %+v want %+v", again, v)
	}
}

func TestZeroAllocPrefixReuse(t *testing.T) {
	var c Codec[inner]
	v := inner{A: 1}
	b1, err := c.Encode(nil, &v)
	if err != nil {
		t.Fatal(err)
	}
	b2, err := c.Encode(nil, &v)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(b1, b2) {
		t.Fatal("repeated encodes differ")
	}
}
