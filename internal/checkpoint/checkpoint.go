// Package checkpoint implements the paper's checkpoint mathematics and
// policies: Young's first-order optimum interval (§3.2.4), the dynamic
// recovery-time bound t_max of §3.2.3 with its load- and process-dependent
// parameters, and the two checkpoint-triggering policies the thesis uses —
// bound-driven ("checkpoint whenever t_max exceeds the specified recovery
// time") and storage-balanced ("a process is checkpointed whenever its
// published message storage exceeds its checkpoint size", §5.1).
package checkpoint

import (
	"math"

	"publishing/internal/simtime"
)

// YoungInterval returns John Young's first-order approximation to the
// optimal checkpoint interval: T_c = sqrt(2 · T_s · T_f), where T_s is the
// time to save a checkpoint and T_f the mean time between failures
// (§3.2.4).
func YoungInterval(save, mtbf simtime.Time) simtime.Time {
	if save <= 0 || mtbf <= 0 {
		return 0
	}
	return simtime.Time(math.Sqrt(2 * float64(save) * float64(mtbf)))
}

// LoadParams are the load-dependent parameters of the t_max formula,
// "determined empirically by measuring the system under various loads"
// (§3.2.3). The defaults are the worked example of Fig 3.1.
type LoadParams struct {
	// CFix is t_cfix, the fixed time to build system table entries.
	CFix simtime.Time
	// PerPage is t_page, the time to load one checkpoint page.
	PerPage simtime.Time
	// MFix is t_mfix, the fixed per-message lookup/replay initiation time.
	MFix simtime.Time
	// PerByte is t_byte, the per-byte message replay transmission time.
	PerByte simtime.Time
	// CPUShare is f_cpu, the fraction of the CPU the recovering process
	// obtains.
	CPUShare float64
}

// Fig31Params returns the example parameters of §3.2.3: t_cfix = 100 ms,
// t_mfix = 2 ms, t_page = 10 ms/page, t_byte = 0.01 ms/byte, f_cpu = 0.5.
func Fig31Params() LoadParams {
	return LoadParams{
		CFix:     100 * simtime.Millisecond,
		PerPage:  10 * simtime.Millisecond,
		MFix:     2 * simtime.Millisecond,
		PerByte:  10 * simtime.Microsecond,
		CPUShare: 0.5,
	}
}

// ProcParams are the process-specific accumulators, updated "each time a
// process is checkpointed or receives a message" (§3.2.3).
type ProcParams struct {
	// CheckpointPages is l_check, the checkpoint length in pages.
	CheckpointPages int
	// MsgsSince is n_τ − n_τ0, messages received since the checkpoint.
	MsgsSince uint64
	// BytesSince is Σ l_msg, total bytes of those messages.
	BytesSince uint64
	// ExecSince is τ − τ0, the execution time since the checkpoint.
	ExecSince simtime.Time
}

// Bound computes t_max = t_reload + t_replay + t_compute (§3.2.3):
//
//	t_max = t_cfix + t_page·l_check
//	      + t_mfix·(n_τ − n_τ0) + t_byte·Σ l_msg
//	      + (τ − τ0)/f_cpu
func Bound(lp LoadParams, pp ProcParams) simtime.Time {
	reload := lp.CFix + lp.PerPage*simtime.Time(pp.CheckpointPages)
	replay := lp.MFix*simtime.Time(pp.MsgsSince) + lp.PerByte*simtime.Time(pp.BytesSince)
	var compute simtime.Time
	if lp.CPUShare > 0 {
		compute = simtime.Time(float64(pp.ExecSince) / lp.CPUShare)
	}
	return reload + replay + compute
}

// Reload returns just t_reload (useful for reporting).
func Reload(lp LoadParams, pages int) simtime.Time {
	return lp.CFix + lp.PerPage*simtime.Time(pages)
}

// Policy decides when a process should be checkpointed.
type Policy interface {
	// ShouldCheckpoint inspects a process's accumulated recovery debt.
	ShouldCheckpoint(lp LoadParams, pp ProcParams, bound simtime.Time) bool
}

// BoundPolicy checkpoints whenever the projected recovery time would exceed
// the process's specified bound (§3.2.3: "If the system checkpoints a
// process whenever its t_max exceeds its specified recovery time, the
// process can always be recovered in that amount of time"). Margin scales
// the trigger point (e.g. 0.9 checkpoints at 90% of the bound to absorb the
// checkpoint's own latency).
type BoundPolicy struct {
	Margin float64
}

// ShouldCheckpoint implements Policy.
func (p BoundPolicy) ShouldCheckpoint(lp LoadParams, pp ProcParams, bound simtime.Time) bool {
	if bound <= 0 {
		return false
	}
	m := p.Margin
	if m <= 0 {
		m = 1
	}
	return float64(Bound(lp, pp)) >= m*float64(bound)
}

// StorageBalancePolicy checkpoints when the bytes of published messages
// accumulated since the last checkpoint exceed the checkpoint size itself —
// the policy used to generate the queuing model's checkpoint traffic
// (§5.1): "a process is checkpointed whenever its published message storage
// exceeds its checkpoint size. This policy tries to balance the cost of
// doing a checkpoint for a process against the disk space required for
// published message storage."
type StorageBalancePolicy struct {
	// PageBytes converts checkpoint pages to bytes (default 512, the
	// DEMOS/MP page granularity assumed in Fig 3.1's 4-page example).
	PageBytes int
}

// ShouldCheckpoint implements Policy.
func (p StorageBalancePolicy) ShouldCheckpoint(lp LoadParams, pp ProcParams, bound simtime.Time) bool {
	pb := p.PageBytes
	if pb <= 0 {
		pb = 512
	}
	return pp.BytesSince > uint64(pp.CheckpointPages*pb)
}

// IntervalForRates predicts the steady-state checkpoint interval the
// storage-balance policy produces for a process with the given state size
// and incoming message byte rate: the time to accumulate stateBytes of
// messages. This is the quantity behind §5.1's "checkpoint intervals
// between 1 second for 4k byte processes during high message rates and 2
// minutes for 64k byte processes during low message rates".
func IntervalForRates(stateBytes int, msgBytesPerSec float64) simtime.Time {
	if msgBytesPerSec <= 0 {
		return simtime.Never
	}
	return simtime.FromSeconds(float64(stateBytes) / msgBytesPerSec)
}
