package checkpoint

import (
	"math"
	"testing"
	"testing/quick"

	"publishing/internal/simtime"
)

// The worked example of §3.2.3 / Fig 3.1, reproduced exactly:
// reload = 100ms + 4 pages × 10ms = 140ms; at +200ms with 100ms of work,
// t_max = 140 + 100/0.5 = 340ms; after a message, add t_mfix + l·t_byte.
func TestFig31WorkedExample(t *testing.T) {
	lp := Fig31Params()

	// Immediately after the checkpoint.
	pp := ProcParams{CheckpointPages: 4}
	if got := Bound(lp, pp); got != 140*simtime.Millisecond {
		t.Fatalf("t_max after checkpoint = %v, want 140ms", got)
	}

	// At time 200 ms, after 100 ms of execution.
	pp.ExecSince = 100 * simtime.Millisecond
	if got := Bound(lp, pp); got != 340*simtime.Millisecond {
		t.Fatalf("t_max at +200ms = %v, want 340ms", got)
	}

	// Immediately after receiving a 1024-byte message:
	// + t_mfix (2ms) + 1024 × 0.01ms = +12.24ms.
	pp.MsgsSince = 1
	pp.BytesSince = 1024
	want := 340*simtime.Millisecond + 2*simtime.Millisecond + 10240*simtime.Microsecond
	if got := Bound(lp, pp); got != want {
		t.Fatalf("t_max after message = %v, want %v", got, want)
	}
}

func TestYoungInterval(t *testing.T) {
	// Young's own example shape: T = sqrt(2·Ts·Tf).
	ts := 10 * simtime.Second
	tf := 2 * simtime.Minute // MTBF
	got := YoungInterval(ts, tf)
	want := simtime.Time(math.Sqrt(2 * float64(ts) * float64(tf)))
	if got != want {
		t.Fatalf("YoungInterval = %v, want %v", got, want)
	}
	if YoungInterval(0, tf) != 0 || YoungInterval(ts, 0) != 0 {
		t.Fatal("degenerate inputs should give 0")
	}
}

// Property: the optimal interval grows with both save cost and MTBF, and
// lies between them when save << mtbf.
func TestYoungIntervalProperties(t *testing.T) {
	if err := quick.Check(func(a, b uint32) bool {
		ts := simtime.Time(a%1000+1) * simtime.Millisecond
		tf := simtime.Time(b%10000+1000) * simtime.Millisecond
		ti := YoungInterval(ts, tf)
		if ti <= 0 {
			return false
		}
		// Monotonicity.
		if YoungInterval(ts*2, tf) < ti || YoungInterval(ts, tf*2) < ti {
			return false
		}
		return true
	}, &quick.Config{MaxCount: 1000}); err != nil {
		t.Fatal(err)
	}
}

// Property: Bound is monotone in every accumulator — more messages, more
// bytes, more execution, bigger checkpoints all increase t_max.
func TestBoundMonotonicity(t *testing.T) {
	lp := Fig31Params()
	if err := quick.Check(func(pages uint8, msgs, bytes uint16, exec uint16) bool {
		pp := ProcParams{
			CheckpointPages: int(pages),
			MsgsSince:       uint64(msgs),
			BytesSince:      uint64(bytes),
			ExecSince:       simtime.Time(exec) * simtime.Millisecond,
		}
		base := Bound(lp, pp)
		inc := func(q ProcParams) bool { return Bound(lp, q) >= base }
		q1, q2, q3, q4 := pp, pp, pp, pp
		q1.CheckpointPages++
		q2.MsgsSince++
		q3.BytesSince += 100
		q4.ExecSince += simtime.Millisecond
		return inc(q1) && inc(q2) && inc(q3) && inc(q4)
	}, &quick.Config{MaxCount: 1000}); err != nil {
		t.Fatal(err)
	}
}

func TestBoundPolicy(t *testing.T) {
	lp := Fig31Params()
	pp := ProcParams{CheckpointPages: 4}
	pol := BoundPolicy{}
	bound := 200 * simtime.Millisecond
	if pol.ShouldCheckpoint(lp, pp, bound) {
		t.Fatal("fresh checkpoint should not trigger")
	}
	pp.ExecSince = 50 * simtime.Millisecond // t_max = 140+100 = 240 > 200
	if !pol.ShouldCheckpoint(lp, pp, bound) {
		t.Fatal("exceeded bound did not trigger")
	}
	// Margin triggers earlier.
	pp.ExecSince = 25 * simtime.Millisecond // t_max = 190 < 200 but > 0.9·200
	if !(BoundPolicy{Margin: 0.9}).ShouldCheckpoint(lp, pp, bound) {
		t.Fatal("margin policy did not trigger early")
	}
	if pol.ShouldCheckpoint(lp, pp, 0) {
		t.Fatal("unbounded process checkpointed")
	}
}

func TestStorageBalancePolicy(t *testing.T) {
	pol := StorageBalancePolicy{}
	pp := ProcParams{CheckpointPages: 8} // 8 × 512 = 4096 bytes of state
	pp.BytesSince = 4096
	if pol.ShouldCheckpoint(LoadParams{}, pp, 0) {
		t.Fatal("triggered at equality")
	}
	pp.BytesSince = 4097
	if !pol.ShouldCheckpoint(LoadParams{}, pp, 0) {
		t.Fatal("did not trigger past state size")
	}
}

// §5.1's checkpoint-interval claim: under the storage-balance policy a 4 KB
// process at high message rates checkpoints about every second, a 64 KB
// process at low rates about every 2 minutes.
func TestPaperCheckpointIntervals(t *testing.T) {
	// High rate: ~32 long messages (1024 B) per second hitting a 4 KB
	// process → interval ≈ 4096/32768 s ≈ 0.125s … order of a second. Use
	// the paper's operating-point-style rates: a 4 KB process receiving
	// ~4 KB/s of messages checkpoints every ~1 s.
	hi := IntervalForRates(4096, 4096)
	if hi != simtime.Second {
		t.Fatalf("high-rate interval = %v, want 1s", hi)
	}
	// Low rate: a 64 KB process receiving ~546 B/s checkpoints every ~2 min.
	lo := IntervalForRates(65536, 546.13)
	if lo < 115*simtime.Second || lo > 125*simtime.Second {
		t.Fatalf("low-rate interval = %v, want ~2min", lo)
	}
	if IntervalForRates(4096, 0) != simtime.Never {
		t.Fatal("zero rate should never checkpoint")
	}
}

func TestReload(t *testing.T) {
	lp := Fig31Params()
	if Reload(lp, 4) != 140*simtime.Millisecond {
		t.Fatalf("Reload = %v", Reload(lp, 4))
	}
}
