// Package metrics is the simulation's unified measurement registry — the
// role Bart Miller's metering system played for the DEMOS/MP numbers in the
// paper's Ch. 5. Every subsystem (lan, transport, recorder, store, kernel)
// registers instruments or collectors keyed by (node, subsystem, name); a
// snapshot is a deterministic, sorted list of samples that can be diffed
// against an earlier snapshot, printed in Prometheus text exposition style,
// or exported as JSON.
//
// Hot-path discipline: Counter/Gauge/Histogram updates are plain field
// arithmetic on pre-allocated structs — no maps, no interfaces, no
// allocation. Subsystems that already keep zero-alloc Stats structs expose
// them through collectors, closures invoked only at snapshot time.
//
// All values are driven by virtual time (internal/simtime) and deterministic
// event counts, so two runs with the same seed produce byte-identical
// WriteText output — a property the repo's tests assert.
//
// A nil *Registry is safe everywhere: instrument constructors return nil and
// every instrument method is a no-op on a nil receiver, so wiring code can
// instrument unconditionally.
package metrics

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"math/bits"
	"sort"
)

// numBuckets is the fixed histogram bucket count: power-of-two buckets
// indexed by bits.Len64 cover the whole int64 range.
const numBuckets = 64

// Counter is a monotonically increasing count.
type Counter struct{ v int64 }

// Inc adds one.
func (c *Counter) Inc() {
	if c != nil {
		c.v++
	}
}

// Add adds n (n must be non-negative for the diff semantics to hold).
func (c *Counter) Add(n int64) {
	if c != nil {
		c.v += n
	}
}

// Value returns the current count.
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v
}

// Gauge is an instantaneous level (queue depth, window occupancy).
type Gauge struct{ v int64 }

// Set replaces the level.
func (g *Gauge) Set(v int64) {
	if g != nil {
		g.v = v
	}
}

// Add moves the level by d (negative to decrease).
func (g *Gauge) Add(d int64) {
	if g != nil {
		g.v += d
	}
}

// Value returns the current level.
func (g *Gauge) Value() int64 {
	if g == nil {
		return 0
	}
	return g.v
}

// Histogram records a distribution of int64 observations (virtual-time
// durations in nanoseconds, or sizes in bytes) in power-of-two buckets:
// bucket 0 counts v <= 0, bucket i counts 2^(i-1) <= v < 2^i. Observation is
// a bits.Len64, two adds, and an array increment — no allocation.
type Histogram struct {
	count   int64
	sum     int64
	buckets [numBuckets + 1]int64
}

// Observe records one value.
func (h *Histogram) Observe(v int64) {
	if h == nil {
		return
	}
	h.count++
	h.sum += v
	idx := 0
	if v > 0 {
		idx = bits.Len64(uint64(v))
	}
	h.buckets[idx]++
}

// Count returns the number of observations.
func (h *Histogram) Count() int64 {
	if h == nil {
		return 0
	}
	return h.count
}

// Sum returns the sum of all observed values.
func (h *Histogram) Sum() int64 {
	if h == nil {
		return 0
	}
	return h.sum
}

// Quantile estimates the q-quantile (0 < q <= 1) of the observed
// distribution from the power-of-two buckets: the result is the upper bound
// of the first bucket whose cumulative count reaches q·count — the same
// `le`-style bound WriteText labels buckets with. Zero observations give 0.
func (h *Histogram) Quantile(q float64) int64 {
	if h == nil {
		return 0
	}
	return quantileFromBuckets(h.buckets[:], h.count, q)
}

// quantileFromBuckets is the shared bucket-walk behind Histogram.Quantile
// and the snapshot exporters (which only have Sample.Buckets).
func quantileFromBuckets(buckets []int64, count int64, q float64) int64 {
	if count <= 0 {
		return 0
	}
	rank := int64(q*float64(count) + 0.5)
	if rank < 1 {
		rank = 1
	}
	if rank > count {
		rank = count
	}
	cum := int64(0)
	for i, b := range buckets {
		cum += b
		if cum >= rank {
			return bucketUpper(i) - 1
		}
	}
	// Unreachable when buckets sum to count; a defensive ceiling otherwise.
	return math.MaxInt64
}

// Kind distinguishes instrument types in snapshots.
type Kind uint8

const (
	KindCounter Kind = iota
	KindGauge
	KindHistogram
)

func (k Kind) String() string {
	switch k {
	case KindCounter:
		return "counter"
	case KindGauge:
		return "gauge"
	case KindHistogram:
		return "histogram"
	}
	return fmt.Sprintf("kind(%d)", int(k))
}

// key identifies one instrument.
type key struct {
	node      int
	subsystem string
	name      string
}

// entry is one registered instrument.
type entry struct {
	key  key
	kind Kind
	c    *Counter
	g    *Gauge
	h    *Histogram
}

// collKey identifies one collector.
type collKey struct {
	node      int
	subsystem string
}

// coll is one registered collector.
type coll struct {
	key collKey
	fn  func(emit func(name string, v int64))
}

// Registry holds every instrument and collector for one simulation. It is
// not safe for concurrent use; the simulation is single-threaded by design.
type Registry struct {
	byKey   map[key]*entry
	entries []*entry
	byColl  map[collKey]int // index into colls
	colls   []*coll
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		byKey:  make(map[key]*entry),
		byColl: make(map[collKey]int),
	}
}

// lookup returns the entry for k, creating it with kind if absent. Asking
// for an existing name with a different kind is a wiring bug and panics.
func (r *Registry) lookup(k key, kind Kind) *entry {
	if e, ok := r.byKey[k]; ok {
		if e.kind != kind {
			panic(fmt.Sprintf("metrics: %s/%s node %d registered as %v, requested as %v",
				k.subsystem, k.name, k.node, e.kind, kind))
		}
		return e
	}
	e := &entry{key: k, kind: kind}
	switch kind {
	case KindCounter:
		e.c = &Counter{}
	case KindGauge:
		e.g = &Gauge{}
	case KindHistogram:
		e.h = &Histogram{}
	}
	r.byKey[k] = e
	r.entries = append(r.entries, e)
	return e
}

// Counter returns the counter for (node, subsystem, name), creating it on
// first use. Returns nil (a safe no-op instrument) on a nil registry.
func (r *Registry) Counter(node int, subsystem, name string) *Counter {
	if r == nil {
		return nil
	}
	return r.lookup(key{node, subsystem, name}, KindCounter).c
}

// Gauge returns the gauge for (node, subsystem, name).
func (r *Registry) Gauge(node int, subsystem, name string) *Gauge {
	if r == nil {
		return nil
	}
	return r.lookup(key{node, subsystem, name}, KindGauge).g
}

// Histogram returns the histogram for (node, subsystem, name).
func (r *Registry) Histogram(node int, subsystem, name string) *Histogram {
	if r == nil {
		return nil
	}
	return r.lookup(key{node, subsystem, name}, KindHistogram).h
}

// AddCollector registers fn to contribute counter samples for (node,
// subsystem) at snapshot time — the bridge for subsystems that already keep
// zero-alloc Stats structs. Re-registering the same (node, subsystem)
// replaces the previous collector, so a restarted component never
// double-reports.
func (r *Registry) AddCollector(node int, subsystem string, fn func(emit func(name string, v int64))) {
	if r == nil || fn == nil {
		return
	}
	k := collKey{node, subsystem}
	if i, ok := r.byColl[k]; ok {
		r.colls[i].fn = fn
		return
	}
	r.byColl[k] = len(r.colls)
	r.colls = append(r.colls, &coll{key: k, fn: fn})
}

// Sample is one (node, subsystem, name) measurement in a snapshot.
type Sample struct {
	Node      int    `json:"node"`
	Subsystem string `json:"subsystem"`
	Name      string `json:"name"`
	Kind      string `json:"kind"`
	// Value is the count (counter), level (gauge), or observation count
	// (histogram).
	Value int64 `json:"value"`
	// Sum is the histogram's sum of observations.
	Sum int64 `json:"sum,omitempty"`
	// Buckets are the histogram's per-bucket counts, trailing zeros
	// trimmed: Buckets[0] counts v <= 0, Buckets[i] counts
	// 2^(i-1) <= v < 2^i.
	Buckets []int64 `json:"buckets,omitempty"`
	// P50/P99/P999 are bucket-resolution quantile estimates (the upper
	// bound of the bucket holding the quantile rank), present for
	// histograms with at least one observation.
	P50  int64 `json:"p50,omitempty"`
	P99  int64 `json:"p99,omitempty"`
	P999 int64 `json:"p999,omitempty"`
}

// fillQuantiles recomputes the sample's quantile fields from its buckets.
func (s *Sample) fillQuantiles() {
	s.P50 = quantileFromBuckets(s.Buckets, s.Value, 0.5)
	s.P99 = quantileFromBuckets(s.Buckets, s.Value, 0.99)
	s.P999 = quantileFromBuckets(s.Buckets, s.Value, 0.999)
}

// Snapshot is a deterministic point-in-time reading of the whole registry,
// sorted by (subsystem, name, node).
type Snapshot struct {
	Samples []Sample `json:"samples"`
}

// Snapshot reads every instrument and runs every collector. The result is
// fully detached from the registry: diffing or serializing it later sees the
// values as of this call.
func (r *Registry) Snapshot() Snapshot {
	var s Snapshot
	if r == nil {
		return s
	}
	for _, e := range r.entries {
		smp := Sample{
			Node:      e.key.node,
			Subsystem: e.key.subsystem,
			Name:      e.key.name,
			Kind:      e.kind.String(),
		}
		switch e.kind {
		case KindCounter:
			smp.Value = e.c.v
		case KindGauge:
			smp.Value = e.g.v
		case KindHistogram:
			smp.Value = e.h.count
			smp.Sum = e.h.sum
			last := -1
			for i, b := range e.h.buckets {
				if b != 0 {
					last = i
				}
			}
			if last >= 0 {
				smp.Buckets = append([]int64(nil), e.h.buckets[:last+1]...)
			}
			smp.fillQuantiles()
		}
		s.Samples = append(s.Samples, smp)
	}
	for _, c := range r.colls {
		c.fn(func(name string, v int64) {
			s.Samples = append(s.Samples, Sample{
				Node:      c.key.node,
				Subsystem: c.key.subsystem,
				Name:      name,
				Kind:      KindCounter.String(),
				Value:     v,
			})
		})
	}
	sort.Slice(s.Samples, func(i, j int) bool {
		a, b := &s.Samples[i], &s.Samples[j]
		if a.Subsystem != b.Subsystem {
			return a.Subsystem < b.Subsystem
		}
		if a.Name != b.Name {
			return a.Name < b.Name
		}
		return a.Node < b.Node
	})
	return s
}

// Sub returns the change from prev to s: counters and histograms subtract
// the matching prev sample (absent = zero); gauges keep their current level.
// Samples present only in prev are dropped.
func (s Snapshot) Sub(prev Snapshot) Snapshot {
	type sk struct {
		node            int
		subsystem, name string
	}
	old := make(map[sk]*Sample, len(prev.Samples))
	for i := range prev.Samples {
		p := &prev.Samples[i]
		old[sk{p.Node, p.Subsystem, p.Name}] = p
	}
	out := Snapshot{Samples: make([]Sample, 0, len(s.Samples))}
	for _, smp := range s.Samples {
		if p := old[sk{smp.Node, smp.Subsystem, smp.Name}]; p != nil && smp.Kind != KindGauge.String() {
			smp.Value -= p.Value
			smp.Sum -= p.Sum
			if len(smp.Buckets) > 0 {
				bk := append([]int64(nil), smp.Buckets...)
				for i := range bk {
					if i < len(p.Buckets) {
						bk[i] -= p.Buckets[i]
					}
				}
				last := -1
				for i, b := range bk {
					if b != 0 {
						last = i
					}
				}
				smp.Buckets = bk[:last+1]
			}
			if smp.Kind == KindHistogram.String() {
				// Quantiles of the interval's own distribution, not a
				// meaningless difference of cumulative quantiles.
				smp.fillQuantiles()
			}
		}
		out.Samples = append(out.Samples, smp)
	}
	return out
}

// bucketUpper returns the exclusive upper bound of bucket i (its `le` label
// is upper-1, the largest value the bucket can hold).
func bucketUpper(i int) int64 {
	if i == 0 {
		return 1 // bucket 0 holds v <= 0
	}
	return int64(1) << uint(i)
}

// WriteText writes the snapshot in Prometheus text exposition style, one
// series per line:
//
//	pub_<subsystem>_<name>{node="N"} value
//
// Histograms expand to cumulative buckets (le is the largest value the
// bucket admits), a _sum, and a _count. Output order is the snapshot's
// deterministic sort, so same-seed runs produce byte-identical text.
func (s Snapshot) WriteText(w io.Writer) error {
	for i := range s.Samples {
		smp := &s.Samples[i]
		base := "pub_" + smp.Subsystem + "_" + smp.Name
		if smp.Kind != KindHistogram.String() {
			if _, err := fmt.Fprintf(w, "%s{node=\"%d\"} %d\n", base, smp.Node, smp.Value); err != nil {
				return err
			}
			continue
		}
		cum := int64(0)
		for bi, b := range smp.Buckets {
			cum += b
			if b == 0 {
				continue // keep the dump compact; cum still accumulates
			}
			if _, err := fmt.Fprintf(w, "%s_bucket{node=\"%d\",le=\"%d\"} %d\n",
				base, smp.Node, bucketUpper(bi)-1, cum); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintf(w, "%s_bucket{node=\"%d\",le=\"+Inf\"} %d\n", base, smp.Node, smp.Value); err != nil {
			return err
		}
		if _, err := fmt.Fprintf(w, "%s_sum{node=\"%d\"} %d\n", base, smp.Node, smp.Sum); err != nil {
			return err
		}
		if _, err := fmt.Fprintf(w, "%s_count{node=\"%d\"} %d\n", base, smp.Node, smp.Value); err != nil {
			return err
		}
		if smp.Value > 0 {
			// Summary-style quantile series (bucket-resolution estimates),
			// so dashboards read p50/p99/p999 without re-deriving them.
			for _, q := range [...]struct {
				label string
				v     int64
			}{{"0.5", smp.P50}, {"0.99", smp.P99}, {"0.999", smp.P999}} {
				if _, err := fmt.Fprintf(w, "%s{node=\"%d\",quantile=\"%s\"} %d\n",
					base, smp.Node, q.label, q.v); err != nil {
					return err
				}
			}
		}
	}
	return nil
}

// WriteJSON writes the snapshot as indented JSON.
func (s Snapshot) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(s)
}
