package metrics

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
)

func TestNilRegistryAndInstrumentsAreSafe(t *testing.T) {
	var r *Registry
	c := r.Counter(0, "s", "c")
	g := r.Gauge(0, "s", "g")
	h := r.Histogram(0, "s", "h")
	if c != nil || g != nil || h != nil {
		t.Fatal("nil registry handed out live instruments")
	}
	c.Inc()
	c.Add(5)
	g.Set(9)
	g.Add(-2)
	h.Observe(123)
	if c.Value() != 0 || g.Value() != 0 || h.Count() != 0 || h.Sum() != 0 {
		t.Fatal("nil instruments kept state")
	}
	r.AddCollector(0, "s", func(emit func(string, int64)) { emit("x", 1) })
	if snap := r.Snapshot(); len(snap.Samples) != 0 {
		t.Fatal("nil registry produced samples")
	}
}

func TestInstrumentIdentityAndKindMismatch(t *testing.T) {
	r := NewRegistry()
	if r.Counter(1, "lan", "frames") != r.Counter(1, "lan", "frames") {
		t.Fatal("same key returned different counters")
	}
	if r.Counter(1, "lan", "frames") == r.Counter(2, "lan", "frames") {
		t.Fatal("different nodes shared a counter")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("kind mismatch did not panic")
		}
	}()
	r.Gauge(1, "lan", "frames")
}

func TestHistogramBuckets(t *testing.T) {
	var h Histogram
	// bucket 0: v <= 0; bucket i: 2^(i-1) <= v < 2^i.
	for _, v := range []int64{-3, 0, 1, 2, 3, 4, 1024} {
		h.Observe(v)
	}
	want := map[int]int64{0: 2, 1: 1, 2: 2, 3: 1, 11: 1}
	for i, n := range h.buckets {
		if n != want[i] {
			t.Fatalf("bucket %d = %d, want %d", i, n, want[i])
		}
	}
	if h.Count() != 7 || h.Sum() != -3+1+2+3+4+1024 {
		t.Fatalf("count=%d sum=%d", h.Count(), h.Sum())
	}
}

func TestSnapshotSortedAndDetached(t *testing.T) {
	r := NewRegistry()
	r.Counter(2, "lan", "b").Inc()
	r.Counter(0, "lan", "b").Add(3)
	r.Gauge(1, "kernel", "depth").Set(4)
	r.Histogram(0, "recorder", "lat").Observe(100)

	snap := r.Snapshot()
	var got []string
	for _, s := range snap.Samples {
		got = append(got, s.Subsystem+"/"+s.Name)
	}
	want := []string{"kernel/depth", "lan/b", "lan/b", "recorder/lat"}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("order %v, want %v", got, want)
		}
	}
	if snap.Samples[1].Node != 0 || snap.Samples[2].Node != 2 {
		t.Fatal("node tiebreak wrong")
	}
	// Later updates must not leak into the detached snapshot.
	r.Counter(0, "lan", "b").Add(10)
	r.Histogram(0, "recorder", "lat").Observe(100)
	if snap.Samples[1].Value != 3 || snap.Samples[3].Value != 1 {
		t.Fatal("snapshot not detached from registry")
	}
}

func TestCollectorReplacement(t *testing.T) {
	r := NewRegistry()
	r.AddCollector(3, "transport", func(emit func(string, int64)) { emit("sent", 1) })
	// A restarted component re-registers; the old closure must not report.
	r.AddCollector(3, "transport", func(emit func(string, int64)) { emit("sent", 42) })
	snap := r.Snapshot()
	if len(snap.Samples) != 1 || snap.Samples[0].Value != 42 {
		t.Fatalf("samples = %+v", snap.Samples)
	}
}

func TestSnapshotSub(t *testing.T) {
	r := NewRegistry()
	c := r.Counter(0, "s", "c")
	g := r.Gauge(0, "s", "g")
	h := r.Histogram(0, "s", "h")
	c.Add(5)
	g.Set(7)
	h.Observe(2)
	before := r.Snapshot()
	c.Add(3)
	g.Set(1)
	h.Observe(2)
	h.Observe(1000)
	diff := r.Snapshot().Sub(before)

	byName := map[string]Sample{}
	for _, s := range diff.Samples {
		byName[s.Name] = s
	}
	if byName["c"].Value != 3 {
		t.Fatalf("counter diff = %d", byName["c"].Value)
	}
	if byName["g"].Value != 1 {
		t.Fatalf("gauge diff kept level: %d", byName["g"].Value)
	}
	hs := byName["h"]
	if hs.Value != 2 || hs.Sum != 1002 {
		t.Fatalf("histogram diff count=%d sum=%d", hs.Value, hs.Sum)
	}
	// The pre-existing observation of 2 cancels; only one new 2 and the
	// 1000 remain.
	var total int64
	for _, b := range hs.Buckets {
		total += b
	}
	if total != 2 {
		t.Fatalf("bucket diff total = %d", total)
	}
}

func TestWriteTextDeterministicAndWellFormed(t *testing.T) {
	build := func() *Registry {
		r := NewRegistry()
		r.Counter(1, "lan", "frames_sent").Add(10)
		r.Gauge(0, "kernel", "queue_depth").Set(3)
		h := r.Histogram(2, "transport", "ack_rtt_ns")
		h.Observe(100)
		h.Observe(100)
		h.Observe(3000)
		return r
	}
	var a, b bytes.Buffer
	if err := build().Snapshot().WriteText(&a); err != nil {
		t.Fatal(err)
	}
	if err := build().Snapshot().WriteText(&b); err != nil {
		t.Fatal(err)
	}
	if a.String() != b.String() {
		t.Fatal("identical registries produced different text")
	}
	out := a.String()
	for _, want := range []string{
		`pub_lan_frames_sent{node="1"} 10`,
		`pub_kernel_queue_depth{node="0"} 3`,
		`pub_transport_ack_rtt_ns_bucket{node="2",le="127"} 2`,
		`pub_transport_ack_rtt_ns_bucket{node="2",le="4095"} 3`,
		`pub_transport_ack_rtt_ns_bucket{node="2",le="+Inf"} 3`,
		`pub_transport_ack_rtt_ns_sum{node="2"} 3200`,
		`pub_transport_ack_rtt_ns_count{node="2"} 3`,
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("text missing %q:\n%s", want, out)
		}
	}
}

func TestWriteJSONRoundTrips(t *testing.T) {
	r := NewRegistry()
	r.Counter(0, "s", "c").Add(4)
	r.Histogram(1, "s", "h").Observe(9)
	var buf bytes.Buffer
	if err := r.Snapshot().WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var back Snapshot
	if err := json.Unmarshal(buf.Bytes(), &back); err != nil {
		t.Fatalf("invalid JSON: %v", err)
	}
	if len(back.Samples) != 2 || back.Samples[0].Value != 4 || back.Samples[1].Kind != "histogram" {
		t.Fatalf("round trip lost data: %+v", back.Samples)
	}
}

func TestHotPathDoesNotAllocate(t *testing.T) {
	r := NewRegistry()
	c := r.Counter(0, "s", "c")
	g := r.Gauge(0, "s", "g")
	h := r.Histogram(0, "s", "h")
	allocs := testing.AllocsPerRun(100, func() {
		c.Inc()
		c.Add(2)
		g.Set(1)
		g.Add(1)
		h.Observe(12345)
	})
	if allocs != 0 {
		t.Fatalf("hot path allocated %.0f times per run", allocs)
	}
}
