package queuing

import (
	"math"
	"testing"

	"publishing/internal/simtime"
)

// An M/M/1 queue must match theory: utilization ρ = λ/μ and mean response
// W = 1/(μ−λ).
func TestMM1AgainstTheory(t *testing.T) {
	const lambda = 50.0 // jobs/s
	const mu = 80.0     // service rate
	n := New(42)
	sink := n.NewSink("done")
	var srv *Server
	srv = n.NewServer("s", 1, func(j *Job) simtime.Time {
		return n.Rng.Exp(simtime.FromSeconds(1 / mu))
	}, sink)
	src := n.NewSource("src", "job", 100, lambda, srv)
	src.Start()
	n.Run(20 * simtime.Second) // warm up
	n.StartMeasuring()
	n.Run(520 * simtime.Second)

	rho := lambda / mu
	if got := srv.Utilization(); math.Abs(got-rho) > 0.02 {
		t.Fatalf("utilization = %.3f, want ~%.3f", got, rho)
	}
	wantW := 1 / (mu - lambda) // seconds
	gotW := sink.MeanLatency().Seconds()
	if math.Abs(gotW-wantW)/wantW > 0.15 {
		t.Fatalf("mean response = %.4fs, want ~%.4fs", gotW, wantW)
	}
}

// An M/D/1 queue's utilization still equals ρ with deterministic service.
func TestMD1Utilization(t *testing.T) {
	n := New(7)
	srv := n.NewServer("s", 1, func(j *Job) simtime.Time { return 2 * simtime.Millisecond }, nil)
	n.NewSource("src", "m", 128, 300, srv).Start()
	n.Run(5 * simtime.Second)
	n.StartMeasuring()
	n.Run(205 * simtime.Second)
	if got, want := srv.Utilization(), 0.6; math.Abs(got-want) > 0.02 {
		t.Fatalf("utilization = %.3f, want ~%.3f", got, want)
	}
	if srv.Stats().Served == 0 || srv.MeanResponse() < 2*simtime.Millisecond {
		t.Fatal("service accounting broken")
	}
}

// K parallel servers split the load: utilization is ρ/K per server.
func TestMultiServer(t *testing.T) {
	n := New(9)
	srv := n.NewServer("disks", 3, func(j *Job) simtime.Time { return 5 * simtime.Millisecond }, nil)
	n.NewSource("src", "w", 4096, 300, srv).Start() // demand 1.5 server-sec/sec
	n.Run(2 * simtime.Second)
	n.StartMeasuring()
	n.Run(102 * simtime.Second)
	if got, want := srv.Utilization(), 0.5; math.Abs(got-want) > 0.02 {
		t.Fatalf("3-server utilization = %.3f, want ~%.3f", got, want)
	}
}

// A saturated server's utilization pins at ~1 and its queue grows.
func TestSaturation(t *testing.T) {
	n := New(3)
	srv := n.NewServer("s", 1, func(j *Job) simtime.Time { return 10 * simtime.Millisecond }, nil)
	n.NewSource("src", "m", 64, 200, srv).Start() // demand 2.0
	n.Run(simtime.Second)
	n.StartMeasuring()
	n.Run(61 * simtime.Second)
	if got := srv.Utilization(); got < 0.99 {
		t.Fatalf("saturated utilization = %.3f", got)
	}
	if srv.QueueLen() < 100 {
		t.Fatalf("queue did not grow under overload: %d", srv.QueueLen())
	}
}

// The batcher emits one batch per Cap bytes — the §5.1 4 KB buffer.
func TestBatcher(t *testing.T) {
	n := New(5)
	srv := n.NewServer("disk", 1, func(j *Job) simtime.Time { return 5 * simtime.Millisecond }, nil)
	b := n.NewBatcher("buf", 4096, "batch", srv)
	for i := 0; i < 10; i++ {
		b.Arrive(&Job{Class: "m", Bytes: 1024})
	}
	if b.Batches != 2 {
		t.Fatalf("batches = %d, want 2", b.Batches)
	}
	if b.Pending() != 2048 {
		t.Fatalf("pending = %d, want 2048", b.Pending())
	}
	// A single oversized arrival flushes multiple batches.
	b.Arrive(&Job{Class: "m", Bytes: 9000})
	if b.Batches != 4 {
		t.Fatalf("batches after big arrival = %d, want 4", b.Batches)
	}
	n.Run(simtime.Second)
	if srv.Stats().Served != 4 {
		t.Fatalf("disk served %d batches", srv.Stats().Served)
	}
}

// Buffered writes need far less disk time than per-message writes — the
// exact mechanism that removed the §5.1 disk saturation.
func TestBatchingRelievesDisk(t *testing.T) {
	diskService := func(j *Job) simtime.Time {
		// 3 ms latency + bytes at 2 MB/s (Fig 5.2).
		return 3*simtime.Millisecond + simtime.Time(int64(j.Bytes)*int64(simtime.Second)/2_000_000)
	}
	run := func(buffered bool) float64 {
		n := New(11)
		disk := n.NewServer("disk", 1, diskService, nil)
		var to Target = disk
		if buffered {
			to = n.NewBatcher("buf", 4096, "batch", disk)
		}
		n.NewSource("long", "long", 1024, 280, to).Start()
		n.Run(2 * simtime.Second)
		n.StartMeasuring()
		n.Run(62 * simtime.Second)
		return disk.Utilization()
	}
	unbuf, buf := run(false), run(true)
	if unbuf < 0.95 {
		t.Fatalf("unbuffered disk should saturate: util=%.3f", unbuf)
	}
	if buf > 0.5 {
		t.Fatalf("buffered disk should be relieved: util=%.3f", buf)
	}
}

func TestSplitterAndClassify(t *testing.T) {
	n := New(1)
	dataSink := n.NewSink("data")
	ackSink := n.NewSink("ack")
	cl := &Classify{Routes: map[string]Target{"ack": ackSink}, Default: dataSink}
	sp := &Splitter{
		Primary:   cl,
		Secondary: cl,
		Companion: func(j *Job) *Job {
			return &Job{Class: "ack", Bytes: 32, Created: j.Created}
		},
	}
	sp.Arrive(&Job{Class: "long", Bytes: 1024})
	sp.Arrive(&Job{Class: "short", Bytes: 128})
	if dataSink.Count != 2 || ackSink.Count != 2 {
		t.Fatalf("splitter/classify routing: data=%d ack=%d", dataSink.Count, ackSink.Count)
	}
}

func TestSourceStopAndZeroRate(t *testing.T) {
	n := New(2)
	sink := n.NewSink("x")
	src := n.NewSource("s", "m", 1, 100, sink)
	src.Start()
	n.Run(simtime.Second)
	src.Stop()
	at := sink.Count
	n.Run(2 * simtime.Second)
	if sink.Count > at+1 { // at most one already-scheduled arrival
		t.Fatalf("source kept generating after Stop: %d -> %d", at, sink.Count)
	}
	zero := n.NewSource("z", "m", 1, 0, sink)
	zero.Start()
	n.Run(3 * simtime.Second)
	if zero.Generated != 0 {
		t.Fatal("zero-rate source generated jobs")
	}
}

func TestDeterministicRuns(t *testing.T) {
	run := func() uint64 {
		n := New(77)
		srv := n.NewServer("s", 1, func(j *Job) simtime.Time {
			return n.Rng.Exp(3 * simtime.Millisecond)
		}, nil)
		n.NewSource("a", "m", 10, 100, srv).Start()
		n.NewSource("b", "m", 20, 50, srv).Start()
		n.Run(30 * simtime.Second)
		return srv.Stats().Served
	}
	if run() != run() {
		t.Fatal("queuing simulation not deterministic")
	}
}

func TestBacklogTracking(t *testing.T) {
	n := New(4)
	srv := n.NewServer("disk", 1, func(j *Job) simtime.Time { return 100 * simtime.Millisecond }, nil)
	for i := 0; i < 5; i++ {
		srv.Arrive(&Job{Bytes: 1000, Created: n.Sched.Now()})
	}
	if srv.Stats().MaxBacklog != 5000 {
		t.Fatalf("max backlog = %d, want 5000", srv.Stats().MaxBacklog)
	}
	n.Run(simtime.Second)
	if srv.Stats().BacklogBytes != 0 {
		t.Fatalf("backlog not drained: %d", srv.Stats().BacklogBytes)
	}
}
