// Package queuing is a small open-queuing-network discrete-event simulator —
// the stand-in for IBM's RESQ2 solver the paper used for its Chapter 5
// performance study ("The model was an open queuing model and was solved
// using IBM's RESQ2 model solver", §5.1). It provides Poisson sources,
// multi-server FIFO queues with arbitrary service-time functions, byte
// batchers (the recorder's 4 KB disk buffers), and sinks, with utilization,
// queue-length, and response-time statistics over a measurement window.
package queuing

import (
	"fmt"

	"publishing/internal/simtime"
)

// Job is one customer flowing through the network.
type Job struct {
	// Class labels the job ("short", "long", "ckpt", "ack", "batch").
	Class string
	// Bytes sizes the job for byte-dependent service times and batching.
	Bytes int
	// Created is the job's birth time (response-time accounting).
	Created simtime.Time
}

// Target consumes jobs.
type Target interface {
	Arrive(j *Job)
}

// Network owns the clock, the random stream, and the measurement window.
type Network struct {
	Sched *simtime.Scheduler
	Rng   *simtime.Rand

	measureStart simtime.Time
	servers      []*Server
	sources      []*Source
}

// New creates an empty network.
func New(seed uint64) *Network {
	return &Network{Sched: simtime.NewScheduler(), Rng: simtime.NewRand(seed)}
}

// Run advances the simulation to absolute time t.
func (n *Network) Run(t simtime.Time) { n.Sched.Run(t) }

// StartMeasuring discards statistics gathered so far (warm-up) and opens
// the measurement window at the current time.
func (n *Network) StartMeasuring() {
	n.measureStart = n.Sched.Now()
	for _, s := range n.servers {
		s.resetStats()
	}
}

// Window returns the elapsed measurement time.
func (n *Network) Window() simtime.Time { return n.Sched.Now() - n.measureStart }

// Source generates jobs with exponential interarrival times (Poisson).
type Source struct {
	net *Network
	// Name labels the source; Class and Bytes stamp generated jobs.
	Name  string
	Class string
	Bytes int
	// Rate is jobs per second; zero disables the source.
	Rate float64
	// To receives the jobs.
	To Target

	running bool
	// Generated counts emissions.
	Generated uint64
}

// NewSource registers a Poisson source.
func (n *Network) NewSource(name, class string, bytes int, rate float64, to Target) *Source {
	s := &Source{net: n, Name: name, Class: class, Bytes: bytes, Rate: rate, To: to}
	n.sources = append(n.sources, s)
	return s
}

// Start begins generation.
func (s *Source) Start() {
	if s.running || s.Rate <= 0 {
		return
	}
	s.running = true
	s.scheduleNext()
}

func (s *Source) scheduleNext() {
	mean := simtime.FromSeconds(1 / s.Rate)
	s.net.Sched.After(s.net.Rng.Exp(mean), func() {
		if !s.running {
			return
		}
		s.Generated++
		s.To.Arrive(&Job{Class: s.Class, Bytes: s.Bytes, Created: s.net.Sched.Now()})
		s.scheduleNext()
	})
}

// Stop halts generation.
func (s *Source) Stop() { s.running = false }

// ServerStats accumulates a server's measurements.
type ServerStats struct {
	Arrived      uint64
	Served       uint64
	BusyTime     simtime.Time // summed across parallel servers
	TotalResp    simtime.Time // queue wait + service
	MaxQueue     int
	BacklogBytes int // current bytes queued or in service
	MaxBacklog   int // high-water of BacklogBytes
}

// Server is a K-server FIFO queue.
type Server struct {
	net *Network
	// Name labels the server.
	Name string
	// K is the number of parallel servers (disks in the array).
	K int
	// Service returns a job's service demand.
	Service func(j *Job) simtime.Time
	// Route receives completed jobs; nil discards them.
	Route Target

	queue []*Job
	busy  int
	stats ServerStats
}

// NewServer registers a server.
func (n *Network) NewServer(name string, k int, service func(j *Job) simtime.Time, route Target) *Server {
	if k <= 0 {
		k = 1
	}
	s := &Server{net: n, Name: name, K: k, Service: service, Route: route}
	n.servers = append(n.servers, s)
	return s
}

func (s *Server) resetStats() { s.stats = ServerStats{BacklogBytes: s.stats.BacklogBytes} }

// Arrive implements Target.
func (s *Server) Arrive(j *Job) {
	s.stats.Arrived++
	s.stats.BacklogBytes += j.Bytes
	if s.stats.BacklogBytes > s.stats.MaxBacklog {
		s.stats.MaxBacklog = s.stats.BacklogBytes
	}
	if s.busy < s.K {
		s.serve(j)
		return
	}
	s.queue = append(s.queue, j)
	if len(s.queue) > s.stats.MaxQueue {
		s.stats.MaxQueue = len(s.queue)
	}
}

func (s *Server) serve(j *Job) {
	s.busy++
	d := s.Service(j)
	if d < 0 {
		d = 0
	}
	s.net.Sched.After(d, func() { s.complete(j, d) })
}

func (s *Server) complete(j *Job, d simtime.Time) {
	s.busy--
	s.stats.Served++
	s.stats.BusyTime += d
	s.stats.TotalResp += s.net.Sched.Now() - j.Created
	s.stats.BacklogBytes -= j.Bytes
	if len(s.queue) > 0 {
		next := s.queue[0]
		s.queue = s.queue[1:]
		s.serve(next)
	}
	if s.Route != nil {
		s.Route.Arrive(j)
	}
}

// Stats returns the server's measurements.
func (s *Server) Stats() ServerStats { return s.stats }

// Utilization is the measured fraction of server capacity in use.
func (s *Server) Utilization() float64 {
	w := s.net.Window()
	if w <= 0 {
		return 0
	}
	u := float64(s.stats.BusyTime) / (float64(w) * float64(s.K))
	return u
}

// MeanResponse is the average time from arrival at this server to service
// completion (for jobs completed in the window).
func (s *Server) MeanResponse() simtime.Time {
	if s.stats.Served == 0 {
		return 0
	}
	return s.stats.TotalResp / simtime.Time(s.stats.Served)
}

// QueueLen returns the instantaneous queue length (excluding in service).
func (s *Server) QueueLen() int { return len(s.queue) }

// String summarizes the server.
func (s *Server) String() string {
	return fmt.Sprintf("%s: util=%.3f served=%d maxq=%d maxbacklog=%dB",
		s.Name, s.Utilization(), s.stats.Served, s.stats.MaxQueue, s.stats.MaxBacklog)
}

// Batcher accumulates job bytes and emits one batch job per Cap bytes — the
// recorder's 4 KB write buffer that rescued the disk in §5.1 ("allowing
// messages to be written out in 4k byte buffers rather than forcing one
// disk write per message").
type Batcher struct {
	net *Network
	// Name labels the batcher.
	Name string
	// Cap is the batch size in bytes.
	Cap int
	// To receives batch jobs.
	To Target
	// BatchClass stamps emitted jobs.
	BatchClass string

	cur     int
	Batches uint64
}

// NewBatcher registers a batcher.
func (n *Network) NewBatcher(name string, capBytes int, class string, to Target) *Batcher {
	return &Batcher{net: n, Name: name, Cap: capBytes, BatchClass: class, To: to}
}

// Arrive implements Target.
func (b *Batcher) Arrive(j *Job) {
	b.cur += j.Bytes
	for b.cur >= b.Cap {
		b.cur -= b.Cap
		b.Batches++
		b.To.Arrive(&Job{Class: b.BatchClass, Bytes: b.Cap, Created: b.net.Sched.Now()})
	}
}

// Pending returns bytes buffered but not yet emitted.
func (b *Batcher) Pending() int { return b.cur }

// Sink counts and times completed jobs.
type Sink struct {
	net *Network
	// Name labels the sink.
	Name string

	Count        uint64
	TotalLatency simtime.Time
}

// NewSink registers a sink.
func (n *Network) NewSink(name string) *Sink {
	return &Sink{net: n, Name: name}
}

// Arrive implements Target.
func (s *Sink) Arrive(j *Job) {
	s.Count++
	s.TotalLatency += s.net.Sched.Now() - j.Created
}

// MeanLatency is the average birth-to-sink time.
func (s *Sink) MeanLatency() simtime.Time {
	if s.Count == 0 {
		return 0
	}
	return s.TotalLatency / simtime.Time(s.Count)
}

// Splitter sends each arriving job to its primary target and emits a
// companion job (e.g. the acknowledgement a delivered message provokes)
// into a second target.
type Splitter struct {
	// Primary receives the original job.
	Primary Target
	// Companion, if non-nil, builds the side job; Secondary receives it.
	Companion func(j *Job) *Job
	Secondary Target
}

// Arrive implements Target.
func (s *Splitter) Arrive(j *Job) {
	if s.Companion != nil && s.Secondary != nil {
		if side := s.Companion(j); side != nil {
			s.Secondary.Arrive(side)
		}
	}
	if s.Primary != nil {
		s.Primary.Arrive(j)
	}
}

// Classify routes jobs by class.
type Classify struct {
	// Routes maps class -> target; Default catches the rest.
	Routes  map[string]Target
	Default Target
}

// Arrive implements Target.
func (c *Classify) Arrive(j *Job) {
	if t, ok := c.Routes[j.Class]; ok {
		t.Arrive(j)
		return
	}
	if c.Default != nil {
		c.Default.Arrive(j)
	}
}
