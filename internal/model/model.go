// Package model wires the paper's Chapter 5 open queuing model (Fig 5.1)
// out of internal/queuing and regenerates its evaluation artifacts:
//
//   - Fig 5.2 — the hardware parameter table (HardwareParams).
//   - Fig 5.3 — the distribution of UNIX process state sizes.
//   - Fig 5.4 — the four operating points (mean, and each load parameter
//     maximized). The original table is lost from the surviving text, so
//     the values here are synthetic, calibrated so every quantitative claim
//     in §5.1's prose reproduces (see EXPERIMENTS.md).
//   - Fig 5.5 — % utilization of the publishing node's disk system, CPU,
//     and the network for 1–5 processing nodes and 1–3 disks.
//   - The prose claims: disk saturation at the maximum long-message rate
//     removed by 4 KB buffering; system saturation above 3 nodes at the
//     maximum system-call rate; ≤28 KB of recorder buffering; worst-case
//     checkpoint+message storage ≈2.76 MB; and the abstract's capacity of
//     ~115 users.
//
// Topology (Fig 5.1): per-node Poisson sources for short (128 B), long
// (1024 B), and checkpoint (1024 B) messages feed the network server; each
// delivered message provokes an acknowledgement frame that also crosses the
// network; the recorder's CPU processes every frame it hears (messages and
// acks — it learns arrival order from acks, §4.4.1); stored messages flow
// through the 4 KB write buffer to the disk array.
package model

import (
	"fmt"

	"publishing/internal/queuing"
	"publishing/internal/simtime"
)

// HardwareParams is Figure 5.2 verbatim.
type HardwareParams struct {
	// InterpacketDelay: Ethernet interface interpacket delay (1.6 ms).
	InterpacketDelay simtime.Time
	// BitsPerSecond: network bandwidth (10 Mb/s).
	BitsPerSecond int64
	// DiskLatency: 3 ms.
	DiskLatency simtime.Time
	// DiskBytesPerSecond: disk transfer rate (2 MB/s).
	DiskBytesPerSecond int64
	// PacketCPU: time to process a packet at the recorder (0.8 ms).
	PacketCPU simtime.Time
	// AckSlot is the reserved acknowledge slot of the Acknowledging
	// Ethernet (§6.1.1): acknowledgements ride in it instead of paying the
	// full interpacket delay.
	AckSlot simtime.Time
}

// Fig52 returns the paper's hardware parameters.
func Fig52() HardwareParams {
	return HardwareParams{
		InterpacketDelay:   1600 * simtime.Microsecond,
		BitsPerSecond:      10_000_000,
		DiskLatency:        3 * simtime.Millisecond,
		DiskBytesPerSecond: 2_000_000,
		PacketCPU:          800 * simtime.Microsecond,
		AckSlot:            64 * simtime.Microsecond,
	}
}

// netService is the network server's demand for one frame.
func (h HardwareParams) netService(bytes int) simtime.Time {
	return h.InterpacketDelay + simtime.Time(int64(bytes)*8*int64(simtime.Second)/h.BitsPerSecond)
}

// ackService is the network demand of an acknowledgement (its reserved
// slot).
func (h HardwareParams) ackService() simtime.Time { return h.AckSlot }

// diskService is one write's demand.
func (h HardwareParams) diskService(bytes int) simtime.Time {
	return h.DiskLatency + simtime.Time(int64(bytes)*int64(simtime.Second)/h.DiskBytesPerSecond)
}

// Message sizes from §5.1: "short messages (128 bytes long), long messages
// (1024 bytes), and checkpointing messages (1024 bytes)". Acks are minimal
// frames.
const (
	ShortBytes = 128
	LongBytes  = 1024
	CkptBytes  = 1024
	AckBytes   = 32
)

// StateSizeBucket is one bar of Figure 5.3.
type StateSizeBucket struct {
	KB       int
	Fraction float64
}

// Fig53StateSizes returns the distribution of UNIX process state sizes.
// The original histogram is lost with the figure; this synthetic version
// keeps its reported range (a heavy mass of small 4–16 KB processes with a
// tail to 64 KB) and a mean of ~16 KB, which the operating points use.
func Fig53StateSizes() []StateSizeBucket {
	return []StateSizeBucket{
		{KB: 4, Fraction: 0.28},
		{KB: 8, Fraction: 0.22},
		{KB: 16, Fraction: 0.23},
		{KB: 24, Fraction: 0.10},
		{KB: 32, Fraction: 0.08},
		{KB: 48, Fraction: 0.05},
		{KB: 64, Fraction: 0.04},
	}
}

// MeanStateKB returns the distribution's mean, rounded.
func MeanStateKB() int {
	var m float64
	for _, b := range Fig53StateSizes() {
		m += float64(b.KB) * b.Fraction
	}
	return int(m + 0.5)
}

// OperatingPoint is one row of Figure 5.4: "one representing the mean of
// each parameter and the other three representing the measurements when
// each of the parameters was maximized".
type OperatingPoint struct {
	Name string
	// LoadAvg is processes per processor.
	LoadAvg int
	// StateKB is the changeable state per process.
	StateKB int
	// ShortPerProc and LongPerProc are message rates per process per
	// second (system calls → short messages; I/O → long messages, §5.1).
	ShortPerProc float64
	LongPerProc  float64
}

// Per-process mean rates (the "mean user" of the capacity experiment),
// calibrated so the network — the binding resource — saturates at 115 mean
// users (the abstract's capacity claim).
const (
	meanShortPerProc = 2.37
	meanLongPerProc  = 0.753
)

// Fig54OperatingPoints returns the operating points: the mean, plus one
// point per maximized load parameter. Synthetic — calibrated against
// §5.1's prose; see the package comment and EXPERIMENTS.md.
func Fig54OperatingPoints() []OperatingPoint {
	return []OperatingPoint{
		// Everything at its measured mean.
		{Name: "mean", LoadAvg: 8, StateKB: 16, ShortPerProc: meanShortPerProc, LongPerProc: meanLongPerProc},
		// Maximum load average (processes per node), mean per-process rates.
		// 17 processes/node × 5 nodes × 2×16 KB live storage per process is
		// also the worst-case storage cell (~2.66 MB; paper: 2.76 MB).
		{Name: "max-load", LoadAvg: 17, StateKB: 16, ShortPerProc: meanShortPerProc, LongPerProc: meanLongPerProc},
		// Maximum state sizes: few, large, quiet processes. Their 64 KB
		// state at these low rates gives the §5.1 ~2-minute checkpoint
		// interval.
		{Name: "max-state", LoadAvg: 4, StateKB: 64, ShortPerProc: 1.19, LongPerProc: 0.377},
		// Maximum message (I/O) traffic: small 4 KB processes streaming
		// long messages — ~1 s checkpoint intervals, and the point whose
		// per-message disk writes saturate the disk until 4 KB buffering.
		{Name: "max-msg", LoadAvg: 8, StateKB: 4, ShortPerProc: 4.0, LongPerProc: 3.0},
		// Maximum system-call rate: short-message flood; the network and
		// recorder CPU saturate above 3–4 nodes and no buffering trick
		// helps ("this saturation cannot be removed by any simple
		// optimizations", §5.1).
		{Name: "max-syscall", LoadAvg: 8, StateKB: 16, ShortPerProc: 15.0, LongPerProc: meanLongPerProc},
	}
}

// Point returns the named operating point.
func Point(name string) (OperatingPoint, bool) {
	for _, p := range Fig54OperatingPoints() {
		if p.Name == name {
			return p, true
		}
	}
	return OperatingPoint{}, false
}

// BytesPerProcPerSec is the per-process incoming message byte rate,
// which the storage-balance checkpoint policy divides into the state size.
func (p OperatingPoint) BytesPerProcPerSec() float64 {
	return p.ShortPerProc*ShortBytes + p.LongPerProc*LongBytes
}

// CheckpointInterval is the steady-state interval the §5.1 storage-balance
// policy yields for this point ("a process is checkpointed whenever its
// published message storage exceeds its checkpoint size").
func (p OperatingPoint) CheckpointInterval() simtime.Time {
	bps := p.BytesPerProcPerSec()
	if bps <= 0 {
		return simtime.Never
	}
	return simtime.FromSeconds(float64(p.StateKB*1024) / bps)
}

// CkptMsgsPerProcPerSec is the checkpoint traffic the policy generates: a
// checkpoint of S KB is S checkpoint messages (1024 B each) every interval.
func (p OperatingPoint) CkptMsgsPerProcPerSec() float64 {
	iv := p.CheckpointInterval().Seconds()
	if iv <= 0 {
		return 0
	}
	return float64(p.StateKB) / iv
}

// SystemConfig configures one simulation run.
type SystemConfig struct {
	Point OperatingPoint
	// Nodes is the number of processing nodes (1–5 in Fig 5.5).
	Nodes int
	// Disks is the publishing node's disk count (1–3 in Fig 5.5).
	Disks int
	// Buffered enables the 4 KB write buffer; false forces one disk write
	// per message (the configuration that saturated in §5.1).
	Buffered bool
	Hardware HardwareParams
	// Seed and durations.
	Seed    uint64
	Warmup  simtime.Time
	Measure simtime.Time
}

// DefaultSystem returns a runnable configuration.
func DefaultSystem(p OperatingPoint, nodes, disks int) SystemConfig {
	return SystemConfig{
		Point:    p,
		Nodes:    nodes,
		Disks:    disks,
		Buffered: true,
		Hardware: Fig52(),
		Seed:     1,
		Warmup:   20 * simtime.Second,
		Measure:  300 * simtime.Second,
	}
}

// Result is one simulation's measurements — a cell of Figure 5.5 plus the
// §5.1 capacity/storage claims.
type Result struct {
	NetworkUtil float64
	CPUUtil     float64
	DiskUtil    float64
	// RecorderBacklogKB is the high-water of bytes queued in the publishing
	// node (write buffer + disk queue) — §5.1's "at most 28k bytes".
	RecorderBacklogKB float64
	// StorageKB is the worst-case live checkpoint+message storage across
	// all processes — §5.1's "2.76 megabytes".
	StorageKB float64
	// MeanPublishLatency is source-to-disk latency for stored messages.
	MeanPublishLatency simtime.Time
	// MessagesPerSec is the measured published-message throughput.
	MessagesPerSec float64
}

// Simulate runs the Fig 5.1 model.
func Simulate(cfg SystemConfig) Result {
	h := cfg.Hardware
	n := queuing.New(cfg.Seed)

	done := n.NewSink("stored")
	ackDone := n.NewSink("acks")

	disk := n.NewServer("disk", cfg.Disks, func(j *queuing.Job) simtime.Time {
		return h.diskService(j.Bytes)
	}, done)

	var toDisk queuing.Target = disk
	var buf *queuing.Batcher
	if cfg.Buffered {
		buf = n.NewBatcher("buffer", 4096, "batch", disk)
		toDisk = buf
	}

	// The recorder CPU hears every frame; data frames continue to storage,
	// ack frames terminate after processing.
	cpu := n.NewServer("recorder-cpu", 1, func(j *queuing.Job) simtime.Time {
		return h.PacketCPU
	}, &queuing.Classify{
		Routes:  map[string]queuing.Target{"ack": ackDone},
		Default: toDisk,
	})

	// The network carries data frames and the acknowledgements their
	// deliveries provoke; both are overheard by the recorder.
	var network *queuing.Server
	network = n.NewServer("network", 1, func(j *queuing.Job) simtime.Time {
		if j.Class == "ack" {
			return h.ackService()
		}
		return h.netService(j.Bytes)
	}, &queuing.Splitter{
		Primary: cpu,
		Companion: func(j *queuing.Job) *queuing.Job {
			if j.Class == "ack" {
				return nil // acks do not provoke acks
			}
			return &queuing.Job{Class: "ack", Bytes: AckBytes, Created: n.Sched.Now()}
		},
		Secondary: &deferToNetwork{n: n, get: func() *queuing.Server { return network }},
	})

	p := cfg.Point
	for i := 0; i < cfg.Nodes; i++ {
		name := fmt.Sprintf("n%d", i)
		procs := float64(p.LoadAvg)
		n.NewSource(name+"-short", "short", ShortBytes, p.ShortPerProc*procs, network).Start()
		n.NewSource(name+"-long", "long", LongBytes, p.LongPerProc*procs, network).Start()
		if ck := p.CkptMsgsPerProcPerSec() * procs; ck > 0 {
			n.NewSource(name+"-ckpt", "ckpt", CkptBytes, ck, network).Start()
		}
	}

	n.Run(cfg.Warmup)
	n.StartMeasuring()
	n.Run(cfg.Warmup + cfg.Measure)

	res := Result{
		NetworkUtil:        network.Utilization(),
		CPUUtil:            cpu.Utilization(),
		DiskUtil:           disk.Utilization(),
		MeanPublishLatency: done.MeanLatency(),
	}
	backlog := disk.Stats().MaxBacklog
	if buf != nil {
		backlog += buf.Pending()
	}
	res.RecorderBacklogKB = float64(backlog) / 1024
	if w := n.Window().Seconds(); w > 0 {
		res.MessagesPerSec = float64(done.Count) / w
	}
	// Worst-case live storage under the storage-balance policy: every
	// process holds its checkpoint plus up to a checkpoint's worth of
	// accumulated messages (§3.3.1 discards older data at each checkpoint).
	procs := cfg.Nodes * p.LoadAvg
	res.StorageKB = float64(procs * 2 * p.StateKB)
	return res
}

// deferToNetwork breaks the declaration cycle network→splitter→network.
type deferToNetwork struct {
	n   *queuing.Network
	get func() *queuing.Server
}

// Arrive implements queuing.Target.
func (d *deferToNetwork) Arrive(j *queuing.Job) { d.get().Arrive(j) }

// Fig55Row is one cell of Figure 5.5.
type Fig55Row struct {
	Point   string
	Nodes   int
	Disks   int
	Network float64
	CPU     float64
	Disk    float64
}

// Fig55 sweeps nodes 1–5 and disks 1–3 for every operating point — the
// full Figure 5.5 surface.
func Fig55(buffered bool, seed uint64) []Fig55Row {
	var rows []Fig55Row
	for _, p := range Fig54OperatingPoints() {
		for nodes := 1; nodes <= 5; nodes++ {
			for disks := 1; disks <= 3; disks++ {
				cfg := DefaultSystem(p, nodes, disks)
				cfg.Buffered = buffered
				cfg.Seed = seed
				r := Simulate(cfg)
				rows = append(rows, Fig55Row{
					Point: p.Name, Nodes: nodes, Disks: disks,
					Network: r.NetworkUtil, CPU: r.CPUUtil, Disk: r.DiskUtil,
				})
			}
		}
	}
	return rows
}

// Capacity finds the abstract's "up to 115 users": the number of mean-rate
// processes (users) the single recorder configuration can support before
// any component saturates. Users are spread over as many nodes as needed;
// only aggregate rates matter to the central servers, so the search is on
// aggregate load.
func Capacity(seed uint64) int {
	sat := func(users int) bool {
		p := OperatingPoint{
			Name: "capacity", LoadAvg: users, StateKB: 16,
			ShortPerProc: meanShortPerProc, LongPerProc: meanLongPerProc,
		}
		cfg := DefaultSystem(p, 1, 1) // one aggregate "node" carrying all users
		cfg.Seed = seed
		cfg.Warmup = 10 * simtime.Second
		cfg.Measure = 120 * simtime.Second
		r := Simulate(cfg)
		return r.NetworkUtil >= 0.99 || r.CPUUtil >= 0.99 || r.DiskUtil >= 0.99
	}
	lo, hi := 1, 1
	for !sat(hi) {
		lo = hi
		hi *= 2
		if hi > 4096 {
			return hi
		}
	}
	for lo+1 < hi {
		mid := (lo + hi) / 2
		if sat(mid) {
			hi = mid
		} else {
			lo = mid
		}
	}
	return lo
}

// PerNodeDemand returns one node's demand, in busy-seconds per second, on
// each central resource at an operating point, with traffic scaled by
// scale (the §6.6.1 selective-publishing knob: scale < 1 models not
// publishing some processes' messages).
func PerNodeDemand(p OperatingPoint, h HardwareParams, buffered bool, scale float64) (net, cpu, disk float64) {
	procs := float64(p.LoadAvg)
	short := p.ShortPerProc * procs * scale
	long := p.LongPerProc * procs * scale
	ck := p.CkptMsgsPerProcPerSec() * procs * scale
	net = short*(h.netService(ShortBytes)+h.ackService()).Seconds() +
		long*(h.netService(LongBytes)+h.ackService()).Seconds() +
		ck*(h.netService(CkptBytes)+h.ackService()).Seconds()
	cpu = (short + long + ck) * 2 * h.PacketCPU.Seconds()
	if buffered {
		bytes := short*ShortBytes + long*LongBytes + ck*CkptBytes
		disk = bytes / 4096 * h.diskService(4096).Seconds()
	} else {
		disk = short*h.diskService(ShortBytes).Seconds() +
			long*h.diskService(LongBytes).Seconds() +
			ck*h.diskService(CkptBytes).Seconds()
	}
	return net, cpu, disk
}

// SaturationNodes returns how many nodes the system supports at a point
// before its binding resource saturates (fractional; the Fig 5.5 knee).
func SaturationNodes(p OperatingPoint, buffered bool, scale float64) float64 {
	net, cpu, disk := PerNodeDemand(p, Fig52(), buffered, scale)
	max := net
	if cpu > max {
		max = cpu
	}
	if disk > max {
		max = disk
	}
	if max <= 0 {
		return 0
	}
	return 1 / max
}

// AnalyticCapacity computes the same limit analytically (mean demand per
// user on the binding resource), for cross-checking the simulation.
func AnalyticCapacity() int {
	h := Fig52()
	p := OperatingPoint{LoadAvg: 1, StateKB: 16, ShortPerProc: meanShortPerProc, LongPerProc: meanLongPerProc}
	ck := p.CkptMsgsPerProcPerSec()
	perUserNet := p.ShortPerProc*(h.netService(ShortBytes)+h.ackService()).Seconds() +
		p.LongPerProc*(h.netService(LongBytes)+h.ackService()).Seconds() +
		ck*(h.netService(CkptBytes)+h.ackService()).Seconds()
	perUserCPU := (p.ShortPerProc + p.LongPerProc + ck) * 2 * h.PacketCPU.Seconds()
	perUserDisk := (p.BytesPerProcPerSec() + ck*CkptBytes) / 4096 *
		h.diskService(4096).Seconds()
	max := perUserNet
	if perUserCPU > max {
		max = perUserCPU
	}
	if perUserDisk > max {
		max = perUserDisk
	}
	return int(1 / max)
}
