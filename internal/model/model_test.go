package model

import (
	"math"
	"testing"

	"publishing/internal/simtime"
)

func TestFig52Parameters(t *testing.T) {
	h := Fig52()
	if h.InterpacketDelay != 1600*simtime.Microsecond {
		t.Fatal("interpacket delay")
	}
	if h.BitsPerSecond != 10_000_000 {
		t.Fatal("bandwidth")
	}
	if h.DiskLatency != 3*simtime.Millisecond {
		t.Fatal("disk latency")
	}
	if h.DiskBytesPerSecond != 2_000_000 {
		t.Fatal("disk rate")
	}
	if h.PacketCPU != 800*simtime.Microsecond {
		t.Fatal("packet CPU")
	}
	// Service times derived from them.
	if got := h.netService(1024); got != 1600*simtime.Microsecond+819200*simtime.Nanosecond {
		t.Fatalf("netService(1024) = %v", got)
	}
	if got := h.diskService(4096); got != 3*simtime.Millisecond+2048*simtime.Microsecond {
		t.Fatalf("diskService(4096) = %v", got)
	}
}

func TestFig53Distribution(t *testing.T) {
	var sum float64
	for _, b := range Fig53StateSizes() {
		if b.KB < 4 || b.KB > 64 {
			t.Fatalf("state size %d KB outside the paper's range", b.KB)
		}
		sum += b.Fraction
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Fatalf("fractions sum to %v", sum)
	}
	if m := MeanStateKB(); m != 16 {
		t.Fatalf("mean state = %d KB, want 16 (the operating points' mean)", m)
	}
}

// §5.1: "The results were checkpoint intervals between 1 second for 4k byte
// processes during high message rates and 2 minutes for 64k byte processes
// during low message rates."
func TestCheckpointIntervalClaims(t *testing.T) {
	maxMsg, ok := Point("max-msg")
	if !ok {
		t.Fatal("no max-msg point")
	}
	iv := maxMsg.CheckpointInterval()
	if iv < 900*simtime.Millisecond || iv > 1300*simtime.Millisecond {
		t.Fatalf("4 KB high-rate checkpoint interval = %v, want ~1s", iv)
	}
	maxState, ok := Point("max-state")
	if !ok {
		t.Fatal("no max-state point")
	}
	iv = maxState.CheckpointInterval()
	if iv < 105*simtime.Second || iv > 135*simtime.Second {
		t.Fatalf("64 KB low-rate checkpoint interval = %v, want ~2min", iv)
	}
}

// The abstract: "the recorder, constructed from current technology, can
// support a system of up to 115 users."
func TestCapacity115Users(t *testing.T) {
	if got := AnalyticCapacity(); got != 115 {
		t.Fatalf("analytic capacity = %d users, want 115", got)
	}
	if testing.Short() {
		t.Skip("simulated capacity search is slow")
	}
	got := Capacity(1)
	if got < 105 || got > 125 {
		t.Fatalf("simulated capacity = %d users, want ~115", got)
	}
}

// §5.1: "The first [exception] was the saturation of the disk system used
// with the maximum long message rate. This saturation was removed by
// allowing messages to be written out in 4k byte buffers."
func TestDiskSaturationRemovedByBuffering(t *testing.T) {
	p, _ := Point("max-msg")
	unbuf := DefaultSystem(p, 5, 1)
	unbuf.Buffered = false
	unbuf.Measure = 120 * simtime.Second
	ru := Simulate(unbuf)
	if ru.DiskUtil < 0.99 {
		t.Fatalf("unbuffered disk at max-msg/5 nodes: util=%.3f, want saturated", ru.DiskUtil)
	}
	buf := DefaultSystem(p, 5, 1)
	buf.Measure = 120 * simtime.Second
	rb := Simulate(buf)
	if rb.DiskUtil > 0.5 {
		t.Fatalf("buffered disk still loaded: util=%.3f", rb.DiskUtil)
	}
	if rb.NetworkUtil >= 0.99 {
		t.Fatalf("network saturated at max-msg/5 nodes (util=%.3f); disk should be the binding resource", rb.NetworkUtil)
	}
}

// §5.1: "The second problem occurred at the high system call rate operating
// point ... all three subsystems saturate when more than 3 processing
// nodes are attached." We reproduce the network (and, nearly, the CPU)
// saturating just above 3 nodes; see EXPERIMENTS.md for the deviation note.
func TestSyscallSaturationAboveThreeNodes(t *testing.T) {
	p, _ := Point("max-syscall")
	ok3 := DefaultSystem(p, 3, 1)
	ok3.Measure = 120 * simtime.Second
	r3 := Simulate(ok3)
	if r3.NetworkUtil >= 0.99 {
		t.Fatalf("already saturated at 3 nodes: net=%.3f", r3.NetworkUtil)
	}
	over := DefaultSystem(p, 4, 1)
	over.Measure = 120 * simtime.Second
	r4 := Simulate(over)
	if r4.NetworkUtil < 0.99 {
		t.Fatalf("not saturated at 4 nodes: net=%.3f", r4.NetworkUtil)
	}
	if r4.CPUUtil < 0.7 {
		t.Fatalf("CPU should be heavily loaded at 4 nodes: %.3f", r4.CPUUtil)
	}
}

// §5.1: "We found no cases in which much buffer space was needed in the
// recording node (at most 28k bytes)" — across non-saturated cells.
func TestRecorderBufferingBounded(t *testing.T) {
	worst := 0.0
	for _, p := range Fig54OperatingPoints() {
		for _, nodes := range []int{1, 3, 5} {
			cfg := DefaultSystem(p, nodes, 1)
			cfg.Measure = 60 * simtime.Second
			r := Simulate(cfg)
			if r.NetworkUtil >= 0.95 || r.CPUUtil >= 0.95 || r.DiskUtil >= 0.95 {
				continue // saturated cells queue unboundedly by definition
			}
			if r.RecorderBacklogKB > worst {
				worst = r.RecorderBacklogKB
			}
		}
	}
	if worst > 32 {
		t.Fatalf("recorder backlog high-water = %.1f KB, paper reports at most 28 KB", worst)
	}
	if worst == 0 {
		t.Fatal("no backlog measured at all; accounting broken")
	}
}

// §5.1: "The worst case for checkpoint and message storage was 2.76
// megabytes." Our calibration lands at 2.66 MB (the max-load point: 85
// processes × 2 × 16 KB) — a 4% deviation, documented in EXPERIMENTS.md.
func TestWorstCaseStorage(t *testing.T) {
	worst := 0.0
	for _, p := range Fig54OperatingPoints() {
		cfg := DefaultSystem(p, 5, 1)
		cfg.Measure = simtime.Second // storage is analytic; no need to simulate long
		r := Simulate(cfg)
		if r.StorageKB > worst {
			worst = r.StorageKB
		}
	}
	if worst < 2300 || worst > 3000 {
		t.Fatalf("worst-case storage = %.0f KB, want ~2560-2760 KB", worst)
	}
}

// Utilization grows monotonically with node count at every point (the shape
// of every Fig 5.5 curve).
func TestFig55Monotonicity(t *testing.T) {
	p, _ := Point("mean")
	prev := Result{}
	for nodes := 1; nodes <= 5; nodes++ {
		cfg := DefaultSystem(p, nodes, 1)
		cfg.Measure = 60 * simtime.Second
		r := Simulate(cfg)
		if nodes > 1 {
			if r.NetworkUtil < prev.NetworkUtil*0.9 || r.CPUUtil < prev.CPUUtil*0.9 {
				t.Fatalf("utilization not growing with nodes: %d nodes %+v vs %+v", nodes, r, prev)
			}
		}
		prev = r
	}
	if prev.NetworkUtil < 0.25 || prev.NetworkUtil > 0.45 {
		t.Fatalf("mean point at 5 nodes: network util = %.3f, want ~0.35", prev.NetworkUtil)
	}
}

// More disks cut disk utilization proportionally (Fig 5.5a's disk sweep).
func TestDisksReduceDiskUtil(t *testing.T) {
	p, _ := Point("max-msg")
	var utils []float64
	for disks := 1; disks <= 3; disks++ {
		cfg := DefaultSystem(p, 5, disks)
		cfg.Measure = 60 * simtime.Second
		utils = append(utils, Simulate(cfg).DiskUtil)
	}
	if !(utils[0] > utils[1] && utils[1] > utils[2]) {
		t.Fatalf("disk utilization not decreasing with disks: %v", utils)
	}
	ratio := utils[0] / utils[2]
	if ratio < 2.4 || ratio > 3.6 {
		t.Fatalf("1-disk/3-disk utilization ratio = %.2f, want ~3", ratio)
	}
}

func TestSimulationDeterminism(t *testing.T) {
	p, _ := Point("mean")
	cfg := DefaultSystem(p, 3, 2)
	cfg.Measure = 30 * simtime.Second
	a, b := Simulate(cfg), Simulate(cfg)
	if a != b {
		t.Fatalf("model simulation not deterministic:\n%+v\n%+v", a, b)
	}
}

func TestPointLookup(t *testing.T) {
	if _, ok := Point("mean"); !ok {
		t.Fatal("mean point missing")
	}
	if _, ok := Point("nope"); ok {
		t.Fatal("bogus point found")
	}
	for _, p := range Fig54OperatingPoints() {
		if p.LoadAvg <= 0 || p.StateKB <= 0 || p.ShortPerProc <= 0 {
			t.Fatalf("degenerate point %+v", p)
		}
	}
}
