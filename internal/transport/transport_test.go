package transport

import (
	"testing"

	"publishing/internal/frame"
	"publishing/internal/lan"
	"publishing/internal/simtime"
	"publishing/internal/trace"
)

type env struct {
	sched *simtime.Scheduler
	rng   *simtime.Rand
	log   *trace.Log
	med   lan.Medium
	eps   map[frame.NodeID]*Endpoint
	got   map[frame.NodeID][]*frame.Frame
}

func newEnv(t *testing.T, n int, cfg Config, medium string) *env {
	t.Helper()
	e := &env{
		sched: simtime.NewScheduler(),
		rng:   simtime.NewRand(7),
		eps:   make(map[frame.NodeID]*Endpoint),
		got:   make(map[frame.NodeID][]*frame.Frame),
	}
	e.log = trace.New(e.sched.Now)
	switch medium {
	case "perfect":
		e.med = lan.NewPerfect(lan.DefaultConfig(), e.sched, e.rng, e.log)
	case "ether":
		e.med = lan.NewEther(lan.DefaultConfig(), e.sched, e.rng, e.log)
	default:
		t.Fatalf("unknown medium %q", medium)
	}
	for i := 0; i < n; i++ {
		id := frame.NodeID(i)
		ep := New(id, e.med, e.sched, e.log, cfg)
		ep.Deliver = func(f *frame.Frame) bool { e.got[id] = append(e.got[id], f); return true }
		e.eps[id] = ep
	}
	return e
}

func gmsg(src, dst frame.NodeID, seq uint64, body string) *frame.Frame {
	p := frame.ProcID{Node: src, Local: 1}
	return &frame.Frame{
		Type: frame.Guaranteed,
		Dst:  dst,
		ID:   frame.MsgID{Sender: p, Seq: seq},
		From: p,
		To:   frame.ProcID{Node: dst, Local: 1},
		Body: []byte(body),
	}
}

func TestGuaranteedDelivery(t *testing.T) {
	e := newEnv(t, 2, DefaultConfig(), "perfect")
	e.eps[0].SendGuaranteed(gmsg(0, 1, 1, "hi"))
	e.sched.RunAll(10000)
	if len(e.got[1]) != 1 || string(e.got[1][0].Body) != "hi" {
		t.Fatalf("delivery failed: %v", e.got[1])
	}
	if e.eps[0].InFlight() != 0 {
		t.Fatal("frame still in flight after ack")
	}
	if e.eps[0].Stats().AcksReceived != 1 {
		t.Fatal("ack not received")
	}
}

func TestRetransmissionRecoversLoss(t *testing.T) {
	e := newEnv(t, 2, DefaultConfig(), "perfect")
	// Drop everything for a while, then heal: retransmission must deliver.
	e.med.Faults().LossProb = 1.0
	e.eps[0].SendGuaranteed(gmsg(0, 1, 1, "persistent"))
	e.sched.Run(120 * simtime.Millisecond)
	if len(e.got[1]) != 0 {
		t.Fatal("delivered during blackout")
	}
	e.med.Faults().LossProb = 0
	e.sched.RunAll(1_000_000)
	if len(e.got[1]) != 1 {
		t.Fatalf("retransmission did not deliver: %d", len(e.got[1]))
	}
	if e.eps[0].Stats().Retransmits == 0 {
		t.Fatal("no retransmits counted")
	}
}

func TestDuplicateSuppression(t *testing.T) {
	e := newEnv(t, 2, DefaultConfig(), "perfect")
	// Lose only acks: receiver gets the frame repeatedly, must deliver once.
	f := gmsg(0, 1, 1, "once")
	e.eps[0].SendGuaranteed(f)
	// Manually resend the identical frame a few times (simulating lost acks
	// from the sender's point of view).
	raw := f.Clone()
	raw.Src = 0
	raw.Type = frame.Guaranteed
	for i := 0; i < 3; i++ {
		e.med.Send(0, raw)
	}
	e.sched.RunAll(100000)
	if len(e.got[1]) != 1 {
		t.Fatalf("delivered %d times, want exactly once", len(e.got[1]))
	}
	if e.eps[1].Stats().DupsSuppressed != 3 {
		t.Fatalf("dups suppressed = %d, want 3", e.eps[1].Stats().DupsSuppressed)
	}
	// Every duplicate must be re-acked (the lost-ack case).
	if e.eps[1].Stats().AcksSent != 4 {
		t.Fatalf("acks sent = %d, want 4", e.eps[1].Stats().AcksSent)
	}
}

func TestOrderingSingleOutstanding(t *testing.T) {
	e := newEnv(t, 2, DefaultConfig(), "perfect")
	for i := uint64(1); i <= 20; i++ {
		e.eps[0].SendGuaranteed(gmsg(0, 1, i, ""))
	}
	// Thesis mode: only one frame may be unacknowledged at a time.
	if got := len(e.eps[0].InFlightIDs()); got != 1 {
		t.Fatalf("inflight = %d, want 1", got)
	}
	e.sched.RunAll(100000)
	if len(e.got[1]) != 20 {
		t.Fatalf("delivered %d, want 20", len(e.got[1]))
	}
	for i, f := range e.got[1] {
		if f.ID.Seq != uint64(i+1) {
			t.Fatalf("out of order: position %d has seq %d", i, f.ID.Seq)
		}
	}
}

func TestOrderingUnderLossWithWindow(t *testing.T) {
	for _, window := range []int{1, 4} {
		cfg := DefaultConfig()
		cfg.Window = window
		e := newEnv(t, 2, cfg, "perfect")
		e.med.Faults().LossProb = 0.3
		for i := uint64(1); i <= 30; i++ {
			e.eps[0].SendGuaranteed(gmsg(0, 1, i, ""))
		}
		e.sched.RunAll(10_000_000)
		if len(e.got[1]) != 30 {
			t.Fatalf("window=%d delivered %d, want 30", window, len(e.got[1]))
		}
		for i, f := range e.got[1] {
			if f.ID.Seq != uint64(i+1) {
				t.Fatalf("window=%d out of order at %d: seq %d", window, i, f.ID.Seq)
			}
		}
	}
}

// Windowing pays off when acknowledgements are slow — here a recorder that
// takes 5 ms to store each message before acking (publish-before-use on a
// plain Ether). Window=1 serializes those 5 ms stalls; window=4 pipelines
// them.
func TestWindowedModeIsFasterWithSlowRecorder(t *testing.T) {
	elapsed := func(window int) simtime.Time {
		cfg := DefaultConfig()
		cfg.Window = window
		cfg.NeedRecorderAck = true
		cfg.RecorderAckTimeout = 200 * simtime.Millisecond
		e := newEnv(t, 2, cfg, "ether")
		rec := New(9, e.med, e.sched, e.log, cfg)
		e.med.AttachTap(9, tapFunc(func(f *frame.Frame) bool {
			if f.Type == frame.Guaranteed {
				id := f.ID
				e.sched.After(5*simtime.Millisecond, func() {
					rec.SendRaw(&frame.Frame{Type: frame.RecorderAck, Dst: frame.Broadcast, ID: id})
				})
			}
			return true
		}))
		var done simtime.Time
		last := uint64(20)
		e.eps[1].Deliver = func(f *frame.Frame) bool {
			if f.ID.Seq == last {
				done = e.sched.Now()
			}
			return true
		}
		for i := uint64(1); i <= last; i++ {
			e.eps[0].SendGuaranteed(gmsg(0, 1, i, ""))
		}
		e.sched.RunAll(1_000_000)
		if done == 0 {
			t.Fatalf("window=%d: last message never delivered", window)
		}
		return done
	}
	w4, w1 := elapsed(4), elapsed(1)
	if w4 >= w1 {
		t.Fatalf("window=4 (%v) not faster than window=1 (%v)", w4, w1)
	}
}

// A receiver that reboots mid-stream must resynchronize via the sender's
// low-water mark rather than stall waiting for sequences acknowledged
// before the crash.
func TestReceiverRebootResyncs(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Window = 4
	e := newEnv(t, 2, cfg, "perfect")
	for i := uint64(1); i <= 5; i++ {
		e.eps[0].SendGuaranteed(gmsg(0, 1, i, ""))
	}
	e.sched.RunAll(1_000_000)
	if len(e.got[1]) != 5 {
		t.Fatalf("pre-crash delivered %d", len(e.got[1]))
	}
	e.eps[1].Reset() // receiver reboots, losing all stream state
	for i := uint64(6); i <= 10; i++ {
		e.eps[0].SendGuaranteed(gmsg(0, 1, i, ""))
	}
	e.sched.RunAll(1_000_000)
	if len(e.got[1]) != 10 {
		t.Fatalf("post-reboot delivered %d, want 10", len(e.got[1]))
	}
	for i, f := range e.got[1] {
		if f.ID.Seq != uint64(i+1) {
			t.Fatalf("post-reboot order broken at %d: seq %d", i, f.ID.Seq)
		}
	}
}

func TestRecorderAckGating(t *testing.T) {
	cfg := DefaultConfig()
	cfg.NeedRecorderAck = true
	e := newEnv(t, 3, cfg, "ether")
	// Node 2 plays recorder: its tap echoes RecorderAck frames.
	rec := e.eps[2]
	e.med.AttachTap(2, tapFunc(func(f *frame.Frame) bool {
		if f.Type == frame.Guaranteed {
			rec.SendRaw(&frame.Frame{Type: frame.RecorderAck, Dst: frame.Broadcast, ID: f.ID})
		}
		return true
	}))
	e.eps[0].SendGuaranteed(gmsg(0, 1, 1, "published"))
	e.sched.RunAll(100000)
	if len(e.got[1]) != 1 {
		t.Fatalf("delivered %d, want 1", len(e.got[1]))
	}
	if e.eps[1].Stats().RecorderHeld != 1 {
		t.Fatal("frame was not held for recorder ack")
	}
}

func TestRecorderAckTimeoutDiscards(t *testing.T) {
	cfg := DefaultConfig()
	cfg.NeedRecorderAck = true
	cfg.MaxRetries = 3
	e := newEnv(t, 2, cfg, "ether")
	// No recorder at all: frames are held, expire, and are never delivered.
	e.eps[0].SendGuaranteed(gmsg(0, 1, 1, "unpublished"))
	e.sched.RunAll(10_000_000)
	if len(e.got[1]) != 0 {
		t.Fatal("unpublished frame delivered")
	}
	if e.eps[1].Stats().RecorderExpired == 0 {
		t.Fatal("held frame did not expire")
	}
	if e.eps[0].Stats().GaveUp != 1 {
		t.Fatal("sender did not give up")
	}
}

func TestUnguaranteedBestEffort(t *testing.T) {
	e := newEnv(t, 2, DefaultConfig(), "perfect")
	e.eps[0].SendUnguaranteed(&frame.Frame{Dst: 1, Body: []byte("stat")})
	e.sched.RunAll(10000)
	if len(e.got[1]) != 1 {
		t.Fatal("unguaranteed frame not delivered on clean wire")
	}
	// Lost unguaranteed frames are never retransmitted.
	e.med.Faults().LossProb = 1.0
	e.eps[0].SendUnguaranteed(&frame.Frame{Dst: 1, Body: []byte("gone")})
	e.sched.RunAll(10000)
	if len(e.got[1]) != 1 {
		t.Fatal("lost unguaranteed frame reappeared")
	}
	if e.eps[0].Stats().Retransmits != 0 {
		t.Fatal("unguaranteed frame was retransmitted")
	}
}

func TestResetDropsState(t *testing.T) {
	e := newEnv(t, 2, DefaultConfig(), "perfect")
	e.med.Faults().LossProb = 1.0
	e.eps[0].SendGuaranteed(gmsg(0, 1, 1, "doomed"))
	e.sched.Run(60 * simtime.Millisecond)
	if e.eps[0].InFlight() == 0 {
		t.Fatal("expected frame in flight")
	}
	e.eps[0].Reset()
	if e.eps[0].InFlight() != 0 {
		t.Fatal("Reset did not clear in-flight state")
	}
	e.med.Faults().LossProb = 0
	e.sched.RunAll(10_000_000)
	if len(e.got[1]) != 0 {
		t.Fatal("crashed node's frame delivered after reset")
	}
}

func TestSendGuaranteedValidation(t *testing.T) {
	e := newEnv(t, 1, DefaultConfig(), "perfect")
	mustPanic := func(name string, fn func()) {
		defer func() {
			if recover() == nil {
				t.Fatalf("%s did not panic", name)
			}
		}()
		fn()
	}
	mustPanic("nil id", func() { e.eps[0].SendGuaranteed(&frame.Frame{Dst: 0}) })
	mustPanic("broadcast", func() {
		e.eps[0].SendGuaranteed(gmsg(0, frame.Broadcast, 1, ""))
	})
}

func TestDupCacheEviction(t *testing.T) {
	c := newDupCache(4)
	mk := func(i uint64) frame.MsgID {
		return frame.MsgID{Sender: frame.ProcID{Node: 1, Local: 1}, Seq: i}
	}
	for i := uint64(1); i <= 4; i++ {
		c.add(mk(i))
	}
	for i := uint64(1); i <= 4; i++ {
		if !c.contains(mk(i)) {
			t.Fatalf("id %d evicted too early", i)
		}
	}
	c.add(mk(5))
	if c.contains(mk(1)) {
		t.Fatal("oldest id not evicted")
	}
	if !c.contains(mk(5)) {
		t.Fatal("new id missing")
	}
	// Re-adding an existing id must not evict anything.
	c.add(mk(5))
	if !c.contains(mk(2)) {
		t.Fatal("re-add evicted a live id")
	}
}

func TestAcksCarryProcessAttribution(t *testing.T) {
	e := newEnv(t, 2, DefaultConfig(), "perfect")
	var acks []*frame.Frame
	e.med.AttachTap(9, tapFunc(func(f *frame.Frame) bool {
		if f.Type == frame.Ack {
			acks = append(acks, f)
		}
		return true
	}))
	m := gmsg(0, 1, 1, "x")
	e.eps[0].SendGuaranteed(m)
	e.sched.RunAll(10000)
	if len(acks) != 1 {
		t.Fatalf("tap heard %d acks, want 1", len(acks))
	}
	if acks[0].From != m.To || acks[0].To != m.From {
		t.Fatalf("ack attribution wrong: %+v", acks[0])
	}
	if acks[0].ID != m.ID {
		t.Fatal("ack id mismatch")
	}
}

type tapFunc func(f *frame.Frame) bool

func (t tapFunc) Observe(f *frame.Frame) bool { return t(f) }

func TestStatsString(t *testing.T) {
	var s Stats
	if s.String() == "" {
		t.Fatal("empty stats string")
	}
}
