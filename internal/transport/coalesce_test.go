package transport

import (
	"testing"

	"publishing/internal/frame"
	"publishing/internal/lan"
	"publishing/internal/simtime"
	"publishing/internal/trace"
)

// With AckDelay set and no reverse traffic at all, the delayed-ack timer
// must fall back to one standalone cumulative Ack frame covering every
// pending record — the sender's flights may not hang on the missing
// piggyback opportunity.
func TestDelayedAckFlushNoReverseTraffic(t *testing.T) {
	cfg := DefaultConfig()
	cfg.AckDelay = 5 * simtime.Millisecond
	cfg.Window = 4
	e := newEnv(t, 2, cfg, "perfect")
	for seq := uint64(1); seq <= 3; seq++ {
		e.eps[0].SendGuaranteed(gmsg(0, 1, seq, "fwd"))
	}
	// All three arrive within ~5 ms (1.6 ms interframe gap each) and queue
	// their ack records behind the receiver's delay timer.
	e.sched.Run(5 * simtime.Millisecond)
	if len(e.got[1]) != 3 {
		t.Fatalf("delivered %d frames before flush, want 3", len(e.got[1]))
	}
	if e.eps[0].InFlight() == 0 {
		t.Fatal("sender already acked before the delayed-ack flush")
	}
	e.sched.RunAll(1_000_000)
	if e.eps[0].InFlight() != 0 {
		t.Fatal("sender still waiting after flush")
	}
	rs := e.eps[1].Stats()
	if rs.AcksDelayedFlush != 1 {
		t.Fatalf("AcksDelayedFlush = %d, want 1 standalone frame for the batch", rs.AcksDelayedFlush)
	}
	if rs.AcksPiggybacked != 0 {
		t.Fatalf("AcksPiggybacked = %d with no reverse traffic", rs.AcksPiggybacked)
	}
}

// A reverse-direction data frame consumes the pending ack records when it is
// first transmitted; if that carrier is lost, its retransmission no longer
// carries the records — but it does carry the cumulative mark, which must
// complete the superseded flights on arrival.
func TestCumulativeAckCoversSupersededRecords(t *testing.T) {
	cfg := DefaultConfig()
	cfg.AckDelay = 50 * simtime.Millisecond
	cfg.Window = 4
	e := newEnv(t, 2, cfg, "perfect")
	e.eps[0].SendGuaranteed(gmsg(0, 1, 1, "a"))
	e.eps[0].SendGuaranteed(gmsg(0, 1, 2, "b"))
	e.sched.Run(5 * simtime.Millisecond)
	if len(e.got[1]) != 2 {
		t.Fatalf("forward frames delivered = %d, want 2", len(e.got[1]))
	}

	// Node 0 goes deaf; the reverse frame (carrying both piggybacked ack
	// records) and the delayed-ack fallback flush are both lost.
	e.med.Faults().SetDown(0, true)
	e.eps[1].SendGuaranteed(gmsg(1, 0, 1, "rev"))
	e.sched.Run(100 * simtime.Millisecond)
	if e.eps[0].InFlight() != 2 {
		t.Fatalf("sender flights = %d while down, want 2 still outstanding", e.eps[0].InFlight())
	}
	if e.eps[1].Stats().AcksPiggybacked != 2 {
		t.Fatalf("AcksPiggybacked = %d, want 2 (records consumed by the lost carrier)", e.eps[1].Stats().AcksPiggybacked)
	}

	// Back up: the reverse frame's retransmission has no records left to
	// carry, only the cumulative mark — which must complete both flights.
	e.med.Faults().SetDown(0, false)
	e.sched.RunAll(1_000_000)
	if e.eps[0].InFlight() != 0 {
		t.Fatal("cumulative mark on the retransmitted carrier did not complete the superseded flights")
	}
	if len(e.got[0]) != 1 {
		t.Fatalf("reverse delivery = %d, want 1", len(e.got[0]))
	}
}

// Thesis window discipline with coalescing: a full Bundle in flight holds
// the single transmission-unit slot, so a frame for a different destination
// stays queued until the whole batch acknowledges.
func TestWindowFullBehindCoalescedBatch(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Window = 1
	cfg.FlushDelay = simtime.Millisecond
	e := newEnv(t, 3, cfg, "perfect")
	e.med.Faults().SetDown(1, true)
	for seq := uint64(1); seq <= 3; seq++ {
		e.eps[0].SendGuaranteed(gmsg(0, 1, seq, "x"))
	}
	e.eps[0].SendGuaranteed(gmsg(0, 2, 1, "other"))
	e.sched.Run(200 * simtime.Millisecond)
	if got := e.eps[0].Stats().FramesCoalesced; got != 3 {
		t.Fatalf("FramesCoalesced = %d, want 3", got)
	}
	if len(e.got[2]) != 0 {
		t.Fatal("frame for node 2 jumped the window while the batch was unacked")
	}
	if e.eps[0].InFlight() != 4 {
		t.Fatalf("InFlight = %d, want 3 batch members + 1 queued", e.eps[0].InFlight())
	}
	e.med.Faults().SetDown(1, false)
	e.sched.RunAll(1_000_000)
	if len(e.got[1]) != 3 {
		t.Fatalf("batch deliveries = %d, want 3", len(e.got[1]))
	}
	for i, f := range e.got[1] {
		if f.ID.Seq != uint64(i+1) {
			t.Fatalf("batch order broken at %d: %v", i, f.ID)
		}
	}
	if len(e.got[2]) != 1 {
		t.Fatalf("node-2 delivery = %d after the slot freed, want 1", len(e.got[2]))
	}
}

// Measured RTO stops the fixed-interval pathology where every ack that takes
// longer than RetransmitInterval triggers a pointless retransmission. The
// workload alternates small and large messages on a slow link: large frames
// take longer than the fixed 50 ms interval to acknowledge, so fixed mode
// retransmits every one of them spuriously, while adaptive mode learns the
// round trip (and persists its post-timeout backoff per RFC 6298 §5.5 —
// Karn's rule means retransmitted flights never yield samples, so only the
// persisted backoff stops the spurious timeout from repeating).
func TestAdaptiveRTOReducesSpuriousRetransmits(t *testing.T) {
	large := string(make([]byte, 600)) // ~48 ms at 100 kb/s: ack RTT > 50 ms
	run := func(adaptive bool) (retransmits uint64, delivered int) {
		cfg := DefaultConfig() // 50 ms fixed interval
		cfg.AdaptiveRTO = adaptive
		lcfg := lan.DefaultConfig()
		lcfg.BitsPerSecond = 100_000
		lcfg.InterframeGap = 5 * simtime.Millisecond
		sched := simtime.NewScheduler()
		log := trace.New(sched.Now)
		med := lan.NewPerfect(lcfg, sched, simtime.NewRand(7), log)
		tx := New(0, med, sched, log, cfg)
		rx := New(1, med, sched, log, cfg)
		var got int
		rx.Deliver = func(f *frame.Frame) bool { got++; return true }
		for seq := uint64(1); seq <= 20; seq++ {
			body := "small"
			if seq%2 == 0 {
				body = large
			}
			tx.SendGuaranteed(gmsg(0, 1, seq, body))
		}
		sched.RunAll(10_000_000)
		if g := tx.Stats().GaveUp; g != 0 {
			t.Fatalf("adaptive=%v gave up on %d frames", adaptive, g)
		}
		return tx.Stats().Retransmits, got
	}
	fixedRetr, fixedGot := run(false)
	adaptRetr, adaptGot := run(true)
	if fixedGot != 20 || adaptGot != 20 {
		t.Fatalf("deliveries: fixed=%d adaptive=%d, want 20 each", fixedGot, adaptGot)
	}
	if fixedRetr < 10 {
		t.Fatalf("fixed interval below the large-frame RTT should retransmit all 10, got %d", fixedRetr)
	}
	if adaptRetr*4 > fixedRetr {
		t.Fatalf("adaptive RTO retransmits = %d, fixed = %d; want at least a 4x reduction", adaptRetr, fixedRetr)
	}
}
