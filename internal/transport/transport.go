// Package transport implements the paper's transport layer (§4.3.3). If
// neither sender nor receiver crashes and network failures are temporary, it
// guarantees that messages are not duplicated, that all guaranteed messages
// arrive at the receiver's processor, and that messages from one process to
// another arrive in the order sent.
//
// Mechanisms, all from the paper:
//
//   - Guaranteed messages use an end-to-end acknowledgement: the originating
//     processor periodically resends a message until the destination
//     processor acknowledges it.
//   - Each message carries a unique id (sender process id + send sequence);
//     each processor keeps a cache of recently received ids and discards
//     duplicates caused by resends.
//   - Ordering is preserved by allowing "only one unacknowledged message to
//     be in transit from each processor" (§4.3.3). The paper notes this is
//     inefficient under load and anticipates a windowing scheme; Config.
//     Window > 1 enables that extension (per-destination sliding windows).
//   - Unguaranteed messages are fire-and-forget.
//
// When Config.NeedRecorderAck is set (plain Ethernet without hardware ack
// slots), the endpoint enforces publish-before-use at the transport level
// (§6.1): a received guaranteed frame is held until a RecorderAck frame for
// its id is heard; otherwise it is discarded and the sender's retransmission
// tries again.
package transport

import (
	"fmt"

	"publishing/internal/frame"
	"publishing/internal/lan"
	"publishing/internal/metrics"
	"publishing/internal/simtime"
	"publishing/internal/trace"
)

// Config tunes an endpoint.
type Config struct {
	// RetransmitInterval is how long to wait for an end-to-end ack before
	// resending a guaranteed frame.
	RetransmitInterval simtime.Time
	// MaxRetries bounds resends of one frame; 0 means retry forever. The
	// default is generous: a message outlives the recovery of its receiver.
	MaxRetries int
	// DupCacheSize is the number of recently received message ids remembered
	// for duplicate suppression. The paper sizes it so an id's lifetime is
	// "many times greater than the time for a message to follow the longest
	// path through the network".
	DupCacheSize int
	// Peers, when > 0, hints how many distinct node ids this endpoint will
	// talk to, pre-sizing the per-destination tables so cluster bringup does
	// not pay growth reallocations on every endpoint.
	Peers int
	// DisableDupSuppression turns the duplicate-detection guards off, so a
	// duplicated or retransmitted frame is delivered upward again. Negative
	// testing only: the chaos harness uses it to prove its exactly-once
	// invariant actually fires when the guard is broken.
	DisableDupSuppression bool
	// Window is the number of unacknowledged guaranteed frames allowed in
	// transit from this processor. 1 reproduces the thesis implementation;
	// >1 is the windowing extension it anticipates (per destination).
	Window int
	// NeedRecorderAck holds received guaranteed frames until the recorder
	// acknowledges them (publish-before-use on media that cannot gate).
	NeedRecorderAck bool
	// RecorderAckTimeout discards a held frame if no recorder ack arrives,
	// letting the sender's retransmission drive another attempt.
	RecorderAckTimeout simtime.Time
	// FlushDelay, when > 0, holds admitted guaranteed (and unicast
	// unguaranteed) sends briefly so several small messages to the same
	// destination coalesce into one Bundle frame, amortizing the fixed
	// per-frame cost (on the paper's network the 1.6 ms interpacket delay
	// dwarfs a small payload). 0 gives every message its own frame
	// immediately — the thesis behavior.
	FlushDelay simtime.Time
	// AckDelay, when > 0, delays end-to-end acknowledgements so they ride
	// piggybacked on reverse-direction gated frames, falling back to one
	// standalone cumulative Ack frame per destination when no reverse
	// traffic appears within the delay. 0 acks every message with its own
	// frame immediately (the thesis behavior).
	AckDelay simtime.Time
	// AdaptiveRTO derives the retransmission timeout per destination from
	// measured ack round trips (SRTT/RTTVAR, RFC 6298 style) instead of the
	// fixed RetransmitInterval, and backs off exponentially on retry.
	// RetransmitInterval remains the pre-measurement initial timeout.
	AdaptiveRTO bool
	// MinRTO and MaxRTO clamp the adaptive timeout and its backoff.
	// Defaults (when AdaptiveRTO is set and these are zero): 2 ms and 1 s.
	MinRTO simtime.Time
	MaxRTO simtime.Time
	// RetryBudget bounds, in elapsed time, how long an adaptive-RTO flight
	// is retransmitted before the sender gives up. With backoff the interval
	// between attempts varies by orders of magnitude, so an attempt count
	// alone no longer pins down when give-up happens; crash detection and
	// everything layered on it assume the legacy wall-clock bound. Zero
	// derives MaxRetries × RetransmitInterval — the exact legacy budget.
	// Ignored when AdaptiveRTO is off or MaxRetries is 0 (retry forever).
	RetryBudget simtime.Time
	// Metrics, when non-nil, receives the endpoint's counters, the ack
	// round-trip histogram, and the current rto_ns gauge under subsystem
	// "transport".
	Metrics *metrics.Registry
}

// DefaultConfig returns sensible simulation defaults.
func DefaultConfig() Config {
	return Config{
		RetransmitInterval: 50 * simtime.Millisecond,
		MaxRetries:         200,
		DupCacheSize:       4096,
		Window:             1,
		RecorderAckTimeout: 40 * simtime.Millisecond,
	}
}

// Stats counts endpoint activity.
type Stats struct {
	GuaranteedSent   uint64
	UnguaranteedSent uint64
	Retransmits      uint64
	AcksSent         uint64
	AcksReceived     uint64
	Delivered        uint64
	DupsSuppressed   uint64
	RecorderHeld     uint64
	RecorderExpired  uint64
	GaveUp           uint64
	// FramesCoalesced counts messages that shared a Bundle frame with at
	// least one other record (each record counts once).
	FramesCoalesced uint64
	// AcksPiggybacked counts acknowledgement records carried on
	// reverse-direction data frames instead of dedicated Ack frames.
	AcksPiggybacked uint64
	// AcksDelayedFlush counts standalone cumulative Ack frames sent because
	// the delayed-ack timer expired with no reverse traffic to ride.
	AcksDelayedFlush uint64
}

func (s *Stats) String() string {
	return fmt.Sprintf("gsent=%d usent=%d rexmit=%d acks=%d/%d delivered=%d dups=%d held=%d expired=%d gaveup=%d coalesced=%d piggyback=%d ackflush=%d",
		s.GuaranteedSent, s.UnguaranteedSent, s.Retransmits, s.AcksSent, s.AcksReceived,
		s.Delivered, s.DupsSuppressed, s.RecorderHeld, s.RecorderExpired, s.GaveUp,
		s.FramesCoalesced, s.AcksPiggybacked, s.AcksDelayedFlush)
}

// Endpoint is one processor's transport. It implements lan.Station.
type Endpoint struct {
	node  frame.NodeID
	med   lan.Medium
	sched simtime.Clock
	log   *trace.Log
	cfg   Config

	// Deliver is the upcall into the node kernel for each message accepted
	// end-to-end (deduplicated, recorder-acked if required, in order). The
	// kernel returns false to refuse the message — e.g. its destination
	// process is crashed or still recovering (§3.3.3) — in which case no
	// acknowledgement is sent and the sender's retransmission will offer the
	// message again later. Refused frames do not advance the stream.
	Deliver func(f *frame.Frame) bool

	// HoldUndelivered, if set, is consulted when a sender has abandoned
	// (retry exhaustion) a refused in-order frame this endpoint still holds
	// buffered. True means the refusal is transient — the destination
	// process is recovering — so the stream stays parked on the frame until
	// Poke delivers it; delivering later frames first would corrupt the
	// arrival order the recorder infers from acks (§4.4.1). False (or an
	// unset hook) discards the frame and skips, bounding the cost of a
	// truly dead destination just as the sender's give-up did.
	HoldUndelivered func(f *frame.Frame) bool

	// OnAck, if set, is called for every end-to-end ack this endpoint
	// receives for its own guaranteed frames (used by measurement hooks).
	OnAck func(id frame.MsgID)

	// OnGiveUp, if set, is called when retry exhaustion abandons a frame;
	// the kernel uses it to re-route traffic whose destination moved.
	OnGiveUp func(f *frame.Frame)

	// epoch invalidates scheduled timers across Reset (processor crash).
	epoch uint64

	// sendq holds guaranteed frames not yet admitted to the wire, FIFO.
	sendq []*frame.Frame
	// inflight maps outstanding unacked frames to their retry state.
	inflight map[frame.MsgID]*flight
	// perDest counts outstanding transmission units per destination
	// (window > 1). Without coalescing every message is its own unit, so
	// this is the thesis per-message count.
	perDest destTable[int]
	// openUnits is the global unit count (thesis Window == 1 discipline).
	openUnits int
	// form holds the per-destination coalescing buffer being filled
	// (FlushDelay > 0 only).
	form destTable[*txUnit]

	// xseq numbers outgoing guaranteed frames per destination.
	xseq destTable[uint64]

	dup *dupCache

	// held are received guaranteed frames awaiting a recorder ack.
	held map[frame.MsgID]*heldFrame

	// rx holds per-sender in-order reassembly state (windowing extension).
	rx destTable[*rxStream]

	// ackPend accumulates delayed acknowledgements per peer (AckDelay > 0).
	ackPend destTable[*ackPending]
	// rto holds the per-destination adaptive retransmission state.
	rto destTable[*rtoState]

	// recScratch and idScratch are decode buffers reused across receives.
	recScratch []frame.BundleRec
	idScratch  []frame.MsgID

	stats Stats
	// ackRTT observes send-to-ack round trips in virtual nanoseconds.
	ackRTT *metrics.Histogram
	// rtoGauge mirrors the most recently updated destination's timeout.
	rtoGauge *metrics.Gauge
}

// txUnit is one transmission unit under the window discipline: the set of
// messages that will share (or shared) one wire frame. Its window slot frees
// when every guaranteed member has been acknowledged or withdrawn.
type txUnit struct {
	dst     frame.NodeID
	recs    []*flight      // guaranteed members, admission order
	riders  []*frame.Frame // unguaranteed records riding along
	bytes   int            // encoded bundle-body bytes committed so far
	open    int            // guaranteed members not yet finished/withdrawn
	flushed bool
	closed  bool
	timer   simtime.Event
}

// ackPending is one peer's delayed-acknowledgement state.
type ackPending struct {
	recs     []frame.AckRec
	timerSet bool
	timer    simtime.Event
}

// rtoState is the RFC 6298 estimator for one destination.
type rtoState struct {
	srtt, rttvar, rto simtime.Time
	valid             bool
}

// maxPiggybackRecs bounds acknowledgement records attached to one data
// frame; bundles reserve this much body budget so the block always fits.
const maxPiggybackRecs = 8

// ackReserve is the body budget a bundle leaves for the piggyback block.
const ackReserve = maxPiggybackRecs*frame.AckRecLen + 16

// rtoGranularity is the RFC 6298 clock granularity G in the rto formula
// srtt + max(G, 4*rttvar).
const rtoGranularity = simtime.Millisecond

// rxStream reassembles one sender's guaranteed-frame stream in order.
type rxStream struct {
	epoch    uint16
	synced   bool
	expected uint64
	buf      map[uint64]*frame.Frame
}

// XSeq field layout (see frame.Frame.XSeq).
const xseqSeqMask = uint64(1)<<48 - 1

func xseqEpoch(x uint64) uint16 { return uint16(x >> 48) }
func xseqSeq(x uint64) uint64   { return x & xseqSeqMask }

type flight struct {
	f        *frame.Frame
	attempts int
	// sentAt is virtual time of the first transmission, the start of the
	// end-to-end ack round trip.
	sentAt simtime.Time
	timer  simtime.Event
	// unit is the transmission unit this flight belongs to (coalescing
	// mode only; nil when FlushDelay == 0).
	unit *txUnit
}

type heldFrame struct {
	f     *frame.Frame
	timer simtime.Event
}

// New creates an endpoint for node and attaches it to the medium.
func New(node frame.NodeID, med lan.Medium, sched simtime.Clock, log *trace.Log, cfg Config) *Endpoint {
	if cfg.Window <= 0 {
		cfg.Window = 1
	}
	if cfg.DupCacheSize <= 0 {
		cfg.DupCacheSize = 4096
	}
	if cfg.AdaptiveRTO {
		if cfg.MinRTO <= 0 {
			cfg.MinRTO = 2 * simtime.Millisecond
		}
		if cfg.MaxRTO <= 0 {
			cfg.MaxRTO = simtime.Second
		}
		if cfg.RetryBudget <= 0 && cfg.MaxRetries > 0 {
			cfg.RetryBudget = simtime.Time(cfg.MaxRetries) * cfg.RetransmitInterval
		}
	}
	e := &Endpoint{
		node:     node,
		med:      med,
		sched:    sched,
		log:      log,
		cfg:      cfg,
		inflight: make(map[frame.MsgID]*flight),
		dup:      newDupCache(cfg.DupCacheSize),
		held:     make(map[frame.MsgID]*heldFrame),
	}
	if n := cfg.Peers; n > 0 {
		e.perDest.presize(n)
		e.form.presize(n)
		e.xseq.presize(n)
		e.rx.presize(n)
		e.ackPend.presize(n)
		e.rto.presize(n)
	}
	if cfg.Metrics != nil {
		e.ackRTT = cfg.Metrics.Histogram(int(node), "transport", "ack_rtt_ns")
		e.rtoGauge = cfg.Metrics.Gauge(int(node), "transport", "rto_ns")
		e.rtoGauge.Set(int64(cfg.RetransmitInterval))
		s := &e.stats
		cfg.Metrics.AddCollector(int(node), "transport", func(emit func(string, int64)) {
			emit("guaranteed_sent", int64(s.GuaranteedSent))
			emit("unguaranteed_sent", int64(s.UnguaranteedSent))
			emit("retransmits", int64(s.Retransmits))
			emit("acks_sent", int64(s.AcksSent))
			emit("acks_received", int64(s.AcksReceived))
			emit("delivered", int64(s.Delivered))
			emit("dups_suppressed", int64(s.DupsSuppressed))
			emit("recorder_held", int64(s.RecorderHeld))
			emit("recorder_expired", int64(s.RecorderExpired))
			emit("gave_up", int64(s.GaveUp))
			emit("frames_coalesced", int64(s.FramesCoalesced))
			emit("acks_piggybacked", int64(s.AcksPiggybacked))
			emit("acks_delayed_flush", int64(s.AcksDelayedFlush))
		})
	}
	med.Attach(node, e)
	return e
}

// Node returns the endpoint's node id.
func (e *Endpoint) Node() frame.NodeID { return e.node }

// Stats returns the endpoint counters.
func (e *Endpoint) Stats() *Stats { return &e.stats }

// Config returns the endpoint configuration.
func (e *Endpoint) Config() Config { return e.cfg }

// Reset models a processor crash and reboot: all transport state — queued
// and unacknowledged frames, the duplicate cache, held frames — is volatile
// and lost (§3.3.2 rounds a kernel fault up to a whole-processor crash).
func (e *Endpoint) Reset() {
	e.epoch++
	for _, fl := range e.inflight {
		e.sched.Cancel(fl.timer)
	}
	for _, h := range e.held {
		e.sched.Cancel(h.timer)
	}
	for _, u := range e.form.v {
		if u != nil {
			e.sched.Cancel(u.timer)
		}
	}
	for _, p := range e.ackPend.v {
		if p != nil && p.timerSet {
			e.sched.Cancel(p.timer)
		}
	}
	e.sendq = nil
	e.inflight = make(map[frame.MsgID]*flight)
	e.perDest.reset()
	e.openUnits = 0
	e.form.reset()
	e.xseq.reset()
	e.dup = newDupCache(e.cfg.DupCacheSize)
	e.held = make(map[frame.MsgID]*heldFrame)
	e.rx.reset()
	e.ackPend.reset()
	e.rto.reset()
}

// SendGuaranteed queues a guaranteed frame for reliable delivery. The frame
// must carry a unique ID and a concrete destination node.
func (e *Endpoint) SendGuaranteed(f *frame.Frame) {
	e.SendGuaranteedOwned(f.Clone())
}

// SendGuaranteedOwned is SendGuaranteed for callers handing over ownership:
// the endpoint retains f for retransmission and mutates it (type/src stamps,
// transient piggyback blocks), so the caller must not touch f — or anything
// it aliases — after the call. The kernel's send path builds a fresh frame
// per message, and cloning it again here was one of the two largest
// allocation sites in the cluster profile.
func (e *Endpoint) SendGuaranteedOwned(f *frame.Frame) {
	if f.ID.IsNil() {
		panic("transport: guaranteed frame without message id")
	}
	if f.Dst == frame.Broadcast {
		panic("transport: guaranteed frames must be addressed to one node")
	}
	f.Type = frame.Guaranteed
	f.Src = e.node
	e.stats.GuaranteedSent++
	e.sendq = append(e.sendq, f)
	e.pump()
}

// SendUnguaranteed transmits a frame with no delivery guarantee: dated or
// statistical information whose retransmission would be pointless (§4.3.3).
// With coalescing enabled, a unicast frame that fits an already-forming unit
// for its destination rides along in that unit's Bundle — it consumes no
// window slot and is never retransmitted; otherwise it goes out immediately.
func (e *Endpoint) SendUnguaranteed(f *frame.Frame) {
	f = f.Clone()
	f.Type = frame.Unguaranteed
	f.Src = e.node
	e.stats.UnguaranteedSent++
	if e.cfg.FlushDelay > 0 && f.Dst != frame.Broadcast {
		if u := e.form.get(f.Dst); u != nil && !u.flushed && !u.closed {
			if n := bundleRecLen(f); u.bytes+n <= bundleBudget {
				u.riders = append(u.riders, f)
				u.bytes += n
				return
			}
		}
	}
	e.med.Send(e.node, f)
}

// SendRaw transmits a frame verbatim (used by the recorder to emit
// RecorderAck frames and by tests).
func (e *Endpoint) SendRaw(f *frame.Frame) {
	f = f.Clone()
	f.Src = e.node
	e.med.Send(e.node, f)
}

// InFlight reports the number of guaranteed frames not yet acknowledged,
// including frames still queued behind the window.
func (e *Endpoint) InFlight() int { return len(e.inflight) + len(e.sendq) }

// InFlightIDs returns the ids of frames transmitted and awaiting their
// end-to-end acknowledgement (excludes frames still queued).
func (e *Endpoint) InFlightIDs() []frame.MsgID {
	ids := make([]frame.MsgID, 0, len(e.inflight))
	for id := range e.inflight {
		ids = append(ids, id)
	}
	return ids
}

// pump admits queued frames to the wire subject to the window discipline.
// With coalescing enabled (FlushDelay > 0) the window counts transmission
// units rather than messages: the head of the queue may always join the
// forming unit for its destination (that unit already holds a window slot),
// while opening a new unit requires a free slot.
func (e *Endpoint) pump() {
	for len(e.sendq) > 0 {
		f := e.sendq[0]
		if e.cfg.FlushDelay > 0 {
			if u := e.form.get(f.Dst); u != nil && !u.flushed && !u.closed {
				if n := bundleRecLen(f); u.bytes+n <= bundleBudget {
					e.sendq = e.sendq[1:]
					e.joinUnit(u, f, n)
					continue
				}
				// The forming unit is full: put it on the wire now rather
				// than waiting out the timer it can no longer benefit from.
				e.flushUnit(u)
			}
		}
		if e.cfg.Window == 1 {
			// Thesis mode: one unacknowledged message per processor, total.
			if e.openUnitCount() >= 1 {
				return
			}
		} else {
			if e.perDest.get(f.Dst) >= e.cfg.Window {
				// Head-of-line blocked per destination; strict FIFO keeps
				// cross-destination order too, which publishing's read-order
				// accounting relies on.
				return
			}
		}
		e.sendq = e.sendq[1:]
		if e.cfg.FlushDelay > 0 {
			u := e.openUnit(f)
			if bundleRecLen(f) > bundleBudget {
				// A frame that fills the budget alone can never coalesce;
				// waiting out the flush timer would be pure latency (replay
				// batches and checkpoint chunks ship full MTUs).
				e.flushUnit(u)
			}
			continue
		}
		fl := e.admit(f, nil)
		e.perDest.set(f.Dst, e.perDest.get(f.Dst)+1)
		e.transmit(fl)
	}
}

// openUnitCount is the thesis-mode global outstanding count: transmission
// units when coalescing, individual unacked messages otherwise.
func (e *Endpoint) openUnitCount() int {
	if e.cfg.FlushDelay > 0 {
		return e.openUnits
	}
	return len(e.inflight)
}

// admit assigns the next stream sequence and registers the flight.
func (e *Endpoint) admit(f *frame.Frame, u *txUnit) *flight {
	seq := e.xseq.get(f.Dst)
	e.xseq.set(f.Dst, seq+1)
	f.XSeq = uint64(e.epoch&0xffff)<<48 | (seq & xseqSeqMask)
	fl := &flight{f: f, unit: u}
	e.inflight[f.ID] = fl
	return fl
}

// bundleBudget is the bundle body space available to records, leaving room
// for a piggybacked acknowledgement block.
const bundleBudget = frame.MaxBody - ackReserve

// bundleRecLen returns the bundle-record cost of a single-message frame.
func bundleRecLen(f *frame.Frame) int {
	n := frame.BundleRecFixed + len(f.Body)
	if f.PassedLink != nil {
		n += frame.BundleRecLink
	}
	return n
}

// openUnit starts a new transmission unit with f as its first member and
// arms the flush timer.
func (e *Endpoint) openUnit(f *frame.Frame) *txUnit {
	u := &txUnit{dst: f.Dst, bytes: frame.BundleHdrLen}
	e.form.set(f.Dst, u)
	e.perDest.set(f.Dst, e.perDest.get(f.Dst)+1)
	e.openUnits++
	e.joinUnit(u, f, bundleRecLen(f))
	epoch := e.epoch
	u.timer = e.sched.After(e.cfg.FlushDelay, func() {
		if e.epoch != epoch {
			return
		}
		e.flushUnit(u)
	})
	return u
}

// joinUnit adds a guaranteed frame to a forming unit.
func (e *Endpoint) joinUnit(u *txUnit, f *frame.Frame, n int) {
	fl := e.admit(f, u)
	u.recs = append(u.recs, fl)
	u.open++
	u.bytes += n
}

// unitMemberDone records that one guaranteed member of a unit finished
// (acked, given up, or withdrawn); the last one frees the window slot.
func (e *Endpoint) unitMemberDone(u *txUnit) {
	u.open--
	if u.open > 0 || u.closed {
		return
	}
	if !u.flushed && len(u.riders) > 0 {
		// Riders still wait on the flush timer; the slot frees anyway — an
		// unguaranteed-only flush consumes no window.
		u.closed = true
	} else {
		e.closeUnit(u)
	}
	if e.perDest.get(u.dst) > 0 {
		e.perDest.set(u.dst, e.perDest.get(u.dst)-1)
	}
	if e.openUnits > 0 {
		e.openUnits--
	}
}

// closeUnit detaches a unit from the forming slot and cancels its timer.
func (e *Endpoint) closeUnit(u *txUnit) {
	u.closed = true
	if e.form.get(u.dst) == u {
		e.form.set(u.dst, nil)
	}
	if !u.flushed {
		u.flushed = true
		e.sched.Cancel(u.timer)
	}
}

// flushUnit puts a forming unit on the wire: one plain frame when it holds a
// single record, a Bundle frame otherwise. Members withdrawn since admission
// (Abort) are skipped.
func (e *Endpoint) flushUnit(u *txUnit) {
	if u.flushed {
		return
	}
	u.flushed = true
	e.sched.Cancel(u.timer)
	if e.form.get(u.dst) == u {
		e.form.set(u.dst, nil)
	}
	live := u.recs[:0]
	for _, fl := range u.recs {
		if e.inflight[fl.f.ID] == fl {
			live = append(live, fl)
		}
	}
	u.recs = live
	switch {
	case len(live) == 0 && len(u.riders) == 0:
		return
	case len(live) == 1 && len(u.riders) == 0:
		e.transmit(live[0])
		return
	case len(live) == 0 && len(u.riders) == 1:
		e.med.Send(e.node, u.riders[0])
		return
	}
	bundle := &frame.Frame{
		Type: frame.Bundle,
		Src:  e.node,
		Dst:  u.dst,
		XLow: e.xlowFor(u.dst, ^uint64(0)),
	}
	body := frame.BeginBundle(make([]byte, 0, u.bytes))
	count := 0
	var rec frame.BundleRec
	for _, fl := range live {
		rec.RecOf(fl.f)
		body = frame.AppendBundleRec(body, &rec)
		count++
	}
	for _, g := range u.riders {
		rec.RecOf(g)
		body = frame.AppendBundleRec(body, &rec)
		count++
	}
	bundle.Body = frame.FinishBundle(body, 0, count)
	e.stats.FramesCoalesced += uint64(count)
	e.attachAcks(bundle)
	e.med.Send(e.node, bundle)
	e.detachAcks(bundle)
	for _, fl := range live {
		e.armFlight(fl)
	}
}

// xlowFor computes the stream low-water mark toward dst: the lowest
// unacknowledged sequence, seeded with seed (the sending frame's own seq, or
// all-ones when scanning on behalf of a bundle).
func (e *Endpoint) xlowFor(dst frame.NodeID, seed uint64) uint64 {
	low := seed
	for _, g := range e.inflight {
		if g.f.Dst == dst {
			if s := xseqSeq(g.f.XSeq); s < low {
				low = s
			}
		}
	}
	return uint64(e.epoch&0xffff)<<48 | (low & xseqSeqMask)
}

func (e *Endpoint) transmit(fl *flight) {
	// Stamp the stream low-water mark: the lowest sequence still
	// unacknowledged toward this destination. Receivers sync on it.
	fl.f.XLow = e.xlowFor(fl.f.Dst, xseqSeq(fl.f.XSeq))
	e.attachAcks(fl.f)
	e.med.Send(e.node, fl.f)
	e.detachAcks(fl.f)
	e.armFlight(fl)
}

// armFlight counts one transmission attempt and arms the retransmit timer.
func (e *Endpoint) armFlight(fl *flight) {
	fl.attempts++
	if fl.attempts == 1 {
		fl.sentAt = e.sched.Now()
	}
	epoch := e.epoch
	fl.timer = e.sched.After(e.rtoDelay(fl), func() {
		if e.epoch != epoch {
			return
		}
		e.retransmit(fl)
	})
}

// rtoDelay returns the retransmission timeout for the flight's next attempt:
// the fixed interval, or the destination's current RTO — measured from ack
// round trips, and doubled persistently by backoffRTO on every timeout.
func (e *Endpoint) rtoDelay(fl *flight) simtime.Time {
	if !e.cfg.AdaptiveRTO {
		return e.cfg.RetransmitInterval
	}
	d := e.cfg.RetransmitInterval
	if st := e.rto.get(fl.f.Dst); st != nil && st.rto > 0 {
		d = st.rto
	}
	if d > e.cfg.MaxRTO {
		d = e.cfg.MaxRTO
	}
	if d < e.cfg.MinRTO {
		d = e.cfg.MinRTO
	}
	return d
}

// observeRTT feeds one ack round trip into the histogram and the RFC 6298
// estimator. Karn's algorithm: only first-attempt acks are unambiguous
// samples, so retransmitted flights contribute nothing.
func (e *Endpoint) observeRTT(fl *flight) {
	if fl.attempts != 1 {
		return
	}
	r := e.sched.Now() - fl.sentAt
	e.ackRTT.Observe(int64(r))
	if !e.cfg.AdaptiveRTO {
		return
	}
	st := e.rto.get(fl.f.Dst)
	if st == nil {
		st = &rtoState{}
		e.rto.set(fl.f.Dst, st)
	}
	if !st.valid {
		st.srtt = r
		st.rttvar = r / 2
		st.valid = true
	} else {
		d := st.srtt - r
		if d < 0 {
			d = -d
		}
		st.rttvar = (3*st.rttvar + d) / 4
		st.srtt = (7*st.srtt + r) / 8
	}
	vv := 4 * st.rttvar
	if vv < rtoGranularity {
		vv = rtoGranularity
	}
	st.rto = st.srtt + vv
	if st.rto < e.cfg.MinRTO {
		st.rto = e.cfg.MinRTO
	}
	if st.rto > e.cfg.MaxRTO {
		st.rto = e.cfg.MaxRTO
	}
	e.rtoGauge.Set(int64(st.rto))
}

func (e *Endpoint) retransmit(fl *flight) {
	if _, ok := e.inflight[fl.f.ID]; !ok {
		return // acked in the meantime
	}
	exhausted := e.cfg.MaxRetries > 0 && fl.attempts >= e.cfg.MaxRetries
	if !exhausted && e.cfg.AdaptiveRTO && e.cfg.RetryBudget > 0 {
		// Backoff stretches the attempt intervals, so the count alone would
		// let a flight outlive the legacy give-up point many times over.
		exhausted = e.sched.Now()-fl.sentAt >= e.cfg.RetryBudget
	}
	if exhausted {
		// Give up; the crash-detection machinery owns this situation now.
		// KindGiveUp (not a generic drop) because retry exhaustion is the
		// premise the recorder's cumulative-ack inference must not cross —
		// internal/monitor keys its giveup-inference invariant off it.
		e.stats.GaveUp++
		id := fl.f.ID.String()
		e.log.AddMsg(trace.KindGiveUp, int(e.node), id, id,
			"gave up after %d attempts", fl.attempts)
		e.finish(fl.f)
		if e.OnGiveUp != nil {
			e.OnGiveUp(fl.f)
		}
		return
	}
	e.stats.Retransmits++
	if e.cfg.AdaptiveRTO {
		e.backoffRTO(fl.f.Dst)
	}
	id := fl.f.ID.String()
	e.log.AddMsg(trace.KindSend, int(e.node), id, id, "retransmit #%d", fl.attempts)
	e.transmit(fl)
}

// backoffRTO doubles the destination's timeout after a loss signal (RFC 6298
// §5.5), clamped to [MinRTO, MaxRTO]. The backed-off value persists for every
// later flight to the destination until a fresh round-trip sample replaces
// it: retransmitted flights never produce samples (Karn's algorithm), so
// without persistence a timeout below the true round trip would fire
// spuriously again for every subsequent message.
func (e *Endpoint) backoffRTO(dst frame.NodeID) {
	st := e.rto.get(dst)
	if st == nil {
		st = &rtoState{}
		e.rto.set(dst, st)
	}
	if st.rto <= 0 {
		st.rto = e.cfg.RetransmitInterval
	}
	st.rto *= 2
	if st.rto > e.cfg.MaxRTO {
		st.rto = e.cfg.MaxRTO
	}
	if st.rto < e.cfg.MinRTO {
		st.rto = e.cfg.MinRTO
	}
	e.rtoGauge.Set(int64(st.rto))
}

// finish removes a frame from the in-flight set and admits the next.
func (e *Endpoint) finish(f *frame.Frame) {
	fl, ok := e.inflight[f.ID]
	if !ok {
		return
	}
	e.sched.Cancel(fl.timer)
	delete(e.inflight, f.ID)
	if fl.unit != nil {
		e.unitMemberDone(fl.unit)
	} else if e.perDest.get(f.Dst) > 0 {
		e.perDest.set(f.Dst, e.perDest.get(f.Dst)-1)
	}
	e.pump()
}

// Receive implements lan.Station.
func (e *Endpoint) Receive(f *frame.Frame) {
	switch f.Type {
	case frame.Ack:
		e.handleAck(f)
	case frame.RecorderAck:
		e.handleRecorderAck(f)
	case frame.Guaranteed:
		e.processAckPayload(f)
		e.handleGuaranteed(f)
	case frame.Bundle:
		e.processAckPayload(f)
		e.handleBundle(f)
	case frame.Unguaranteed:
		if e.Deliver != nil {
			e.stats.Delivered++
			e.Deliver(f)
		}
	}
}

// handleBundle unpacks a coalesced frame and runs every record through the
// regular single-frame paths. Record bodies alias the bundle body, which
// belongs to this endpoint (media deliver private copies), so no copies are
// made even for records that end up held or buffered.
func (e *Endpoint) handleBundle(f *frame.Frame) {
	if f.Dst != e.node {
		return
	}
	recs, err := frame.DecodeBundle(f.Body, e.recScratch)
	if err != nil {
		e.log.Add(trace.KindDrop, int(e.node), "", "bundle decode failed: %v", err)
		return
	}
	e.recScratch = recs
	for i := range recs {
		g := recs[i].Expand(f)
		switch g.Type {
		case frame.Guaranteed:
			e.handleGuaranteed(g)
		case frame.Unguaranteed:
			if e.Deliver != nil {
				e.stats.Delivered++
				e.Deliver(g)
			}
		}
	}
}

// deliverUp completes delivery of one in-order guaranteed frame. A refusal
// by the kernel leaves the frame unacknowledged and the stream position
// unchanged; the sender's retransmission re-offers it.
func (e *Endpoint) deliverUp(f *frame.Frame) bool {
	if e.Deliver != nil && !e.Deliver(f) {
		return false
	}
	e.dup.add(f.ID)
	e.stats.Delivered++
	e.ack(f)
	return true
}

func (e *Endpoint) handleAck(f *frame.Frame) {
	if f.Dst != e.node {
		return
	}
	if f.AckCumSet || len(f.AckRecs) > 0 {
		// Cumulative/range ack: everything acknowledged is in the payload;
		// the header id merely repeats the last record for trace readers.
		e.processAckPayload(f)
		return
	}
	fl, ok := e.inflight[f.ID]
	if !ok {
		return // duplicate ack
	}
	e.ackOne(fl)
}

// ackOne completes one acknowledged flight.
func (e *Endpoint) ackOne(fl *flight) {
	e.stats.AcksReceived++
	e.observeRTT(fl)
	if e.log.Detailed() {
		id := fl.f.ID.String()
		e.log.AddMsg(trace.KindAck, int(e.node), id, id,
			"end-to-end ack after %d attempt(s)", fl.attempts)
	}
	if e.OnAck != nil {
		e.OnAck(fl.f.ID)
	}
	e.finish(fl.f)
}

// processAckPayload applies a piggybacked (or standalone-cumulative)
// acknowledgement block: every listed record completes individually, then
// the cumulative mark completes everything at or below it on the stream to
// the sending peer — including retransmitted frames whose individual ack
// record was superseded or lost.
func (e *Endpoint) processAckPayload(f *frame.Frame) {
	if f.Dst != e.node || (!f.AckCumSet && len(f.AckRecs) == 0) {
		return
	}
	for i := range f.AckRecs {
		if fl, ok := e.inflight[f.AckRecs[i].ID]; ok {
			e.ackOne(fl)
		}
	}
	if !f.AckCumSet || xseqEpoch(f.AckCum) != uint16(e.epoch&0xffff) {
		return
	}
	cum := xseqSeq(f.AckCum)
	var done []*frame.Frame
	for _, fl := range e.inflight {
		if fl.f.Dst == f.Src && fl.attempts > 0 && xseqSeq(fl.f.XSeq) <= cum {
			done = append(done, fl.f)
		}
	}
	// Map iteration is unordered; completing in stream order keeps the run
	// deterministic (finish order decides what pump admits next).
	sortFrames(done)
	for _, g := range done {
		if fl, ok := e.inflight[g.ID]; ok {
			e.ackOne(fl)
		}
	}
}

func (e *Endpoint) handleGuaranteed(f *frame.Frame) {
	if f.Dst != e.node && f.Dst != frame.Broadcast {
		return
	}
	if f.Dst == frame.Broadcast {
		// A broadcast frame is a shared read-only view (lan.Station
		// contract) and this path retains frames — in the recorder-ack hold
		// map and the reorder buffer — so take a private copy up front.
		f = f.Clone()
	}
	if e.cfg.NeedRecorderAck {
		if _, dup := e.held[f.ID]; dup {
			return // already holding a copy
		}
		if !e.cfg.DisableDupSuppression && e.dup.contains(f.ID) {
			// Already accepted earlier; the ack was lost. Re-ack.
			e.ack(f)
			e.stats.DupsSuppressed++
			return
		}
		e.stats.RecorderHeld++
		h := &heldFrame{f: f}
		epoch := e.epoch
		h.timer = e.sched.After(e.cfg.RecorderAckTimeout, func() {
			if e.epoch != epoch {
				return
			}
			if _, ok := e.held[f.ID]; ok {
				delete(e.held, f.ID)
				e.stats.RecorderExpired++
				id := f.ID.String()
				e.log.AddMsg(trace.KindDrop, int(e.node), id, id,
					"discarded: no recorder ack (will be resent)")
			}
		})
		e.held[f.ID] = h
		return
	}
	e.accept(f)
}

// handleRecorderAck releases held frames the recorder has stored. A frame
// with a non-empty Body covers a whole batch (a packed id list, in storage
// order); an empty Body is the legacy single-id form covering f.ID.
func (e *Endpoint) handleRecorderAck(f *frame.Frame) {
	if len(f.Body) == 0 {
		e.releaseHeld(f.ID)
		return
	}
	ids, err := frame.DecodeAckIDs(f.Body, e.idScratch)
	if err != nil {
		e.log.Add(trace.KindDrop, int(e.node), "", "recorder-ack decode failed: %v", err)
		return
	}
	e.idScratch = ids
	for _, id := range ids {
		e.releaseHeld(id)
	}
}

// releaseHeld completes publish-before-use for one held frame.
func (e *Endpoint) releaseHeld(id frame.MsgID) {
	h, ok := e.held[id]
	if !ok {
		return
	}
	e.sched.Cancel(h.timer)
	delete(e.held, id)
	e.accept(h.f)
}

// accept finishes end-to-end reception: dedup, in-order reassembly,
// acknowledge, deliver upward. Acks are sent only as frames are delivered,
// so the recorder's ack-order inference (§4.4.1) remains the true order in
// which messages reached the process queues.
func (e *Endpoint) accept(f *frame.Frame) {
	if !e.cfg.DisableDupSuppression && e.dup.contains(f.ID) {
		// "If the identifier of a received message is found in this cache,
		// then the message is discarded as a duplicate" — but the ack must
		// be repeated, since its loss is why the duplicate exists.
		e.stats.DupsSuppressed++
		e.ack(f)
		return
	}
	st := e.stream(f.Src, xseqEpoch(f.XSeq))
	low := xseqSeq(f.XLow)
	if !st.synced {
		// First contact with this sender epoch: sequences below XLow were
		// acknowledged before we existed and will never be resent.
		st.synced = true
		st.expected = low
	} else if low > st.expected {
		// The sender abandoned everything below XLow (retry exhaustion);
		// waiting for the gap would stall the stream forever. But abandoned
		// frames we already hold — buffered out of order, or refused by a
		// recovering process — are still delivered, in order: the recorder
		// infers arrival order from our acks, so handing sequence n up while
		// silently discarding a held n-1 would corrupt the inferred stream.
		// Only sequences that never arrived are skipped.
		for st.expected < low {
			g, held := st.buf[st.expected]
			if !held {
				st.expected++
				continue
			}
			if !e.deliverUp(g) {
				if e.HoldUndelivered != nil && e.HoldUndelivered(g) {
					break // transient; Poke or a later frame resumes here
				}
				delete(st.buf, st.expected)
				st.expected++
				continue
			}
			delete(st.buf, st.expected)
			st.expected++
		}
		e.drain(st)
	}
	e.advance(st, f)
}

// stream returns the reassembly state for src's current boot epoch,
// discarding state from a previous epoch (the sender rebooted and restarted
// its sequence space).
func (e *Endpoint) stream(src frame.NodeID, epoch uint16) *rxStream {
	st := e.rx.get(src)
	if st != nil && st.epoch == epoch {
		return st
	}
	// buf is allocated lazily on the first out-of-order or refused frame;
	// an in-order stream never needs it.
	st = &rxStream{epoch: epoch}
	e.rx.set(src, st)
	return st
}

func (e *Endpoint) advance(st *rxStream, f *frame.Frame) {
	seq := xseqSeq(f.XSeq)
	switch {
	case seq < st.expected:
		// Already delivered before the dup cache forgot it; just re-ack.
		if e.cfg.DisableDupSuppression {
			// Broken-guard mode: hand the duplicate up anyway so the chaos
			// exactly-once invariant has something real to catch.
			e.deliverUp(f)
		}
		e.stats.DupsSuppressed++
		e.ack(f)
	case seq == st.expected:
		if !e.deliverUp(f) {
			// Refused: remember the frame so a retransmission (or a later
			// poke) can retry; the stream does not advance past it.
			if st.buf == nil {
				st.buf = make(map[uint64]*frame.Frame)
			}
			st.buf[seq] = f
			return
		}
		delete(st.buf, seq) // drop any stale buffered copy
		st.expected++
		e.drain(st)
	default:
		if _, ok := st.buf[seq]; !ok {
			if st.buf == nil {
				st.buf = make(map[uint64]*frame.Frame)
			}
			st.buf[seq] = f
		}
	}
}

func (e *Endpoint) drain(st *rxStream) {
	for {
		f, ok := st.buf[st.expected]
		if !ok {
			return
		}
		if !e.deliverUp(f) {
			return // refused; frame stays buffered at expected
		}
		delete(st.buf, st.expected)
		st.expected++
	}
}

// Poke retries delivery of any frames refused earlier (the kernel calls it
// when a recovering process becomes able to accept messages again, rather
// than waiting out a retransmission interval).
func (e *Endpoint) Poke() {
	for _, st := range e.rx.v {
		if st != nil && st.synced {
			e.drain(st)
		}
	}
}

// Abort withdraws queued and in-flight guaranteed frames matching pred and
// returns them in their original send order. The kernel uses it to re-route
// traffic when it learns a destination process has moved to another node.
func (e *Endpoint) Abort(pred func(f *frame.Frame) bool) []*frame.Frame {
	var out []*frame.Frame
	for id, fl := range e.inflight {
		if pred(fl.f) {
			e.sched.Cancel(fl.timer)
			delete(e.inflight, id)
			if fl.unit != nil {
				e.unitMemberDone(fl.unit)
			} else if e.perDest.get(fl.f.Dst) > 0 {
				e.perDest.set(fl.f.Dst, e.perDest.get(fl.f.Dst)-1)
			}
			out = append(out, fl.f)
		}
	}
	// In-flight frames were admitted before anything still queued; order
	// them by their stream sequence.
	sortFrames(out)
	keep := e.sendq[:0]
	for _, f := range e.sendq {
		if pred(f) {
			out = append(out, f)
		} else {
			keep = append(keep, f)
		}
	}
	e.sendq = keep
	e.pump()
	return out
}

func sortFrames(fs []*frame.Frame) {
	for i := 1; i < len(fs); i++ {
		for j := i; j > 0 && xseqSeq(fs[j].XSeq) < xseqSeq(fs[j-1].XSeq); j-- {
			fs[j], fs[j-1] = fs[j-1], fs[j]
		}
	}
}

// ack acknowledges one accepted guaranteed frame end-to-end. The recorder
// overhears acknowledgements and learns the order in which messages were
// accepted at this node (§4.4.1: "It is possible to discover the order in
// which messages are received at the receiving node by tracing the
// acknowledgements") — delayed acknowledgement records keep that acceptance
// order. With AckDelay == 0 every ack is its own frame (the thesis
// behavior); otherwise the record is queued to ride piggybacked on the next
// reverse-direction gated frame, falling back to a standalone cumulative Ack
// frame when the delay expires first.
func (e *Endpoint) ack(f *frame.Frame) {
	e.stats.AcksSent++
	if e.cfg.AckDelay <= 0 {
		e.med.Send(e.node, &frame.Frame{
			Type: frame.Ack,
			Src:  e.node,
			Dst:  f.Src,
			ID:   f.ID,
			From: f.To, // ack is attributed to the receiving process
			To:   f.From,
		})
		return
	}
	p := e.ackPend.get(f.Src)
	if p == nil {
		p = &ackPending{}
		e.ackPend.set(f.Src, p)
	}
	rec := frame.AckRec{ID: f.ID, Rcv: f.To}
	for i := range p.recs {
		if p.recs[i] == rec {
			return // a duplicate's re-ack is already queued
		}
	}
	p.recs = append(p.recs, rec)
	if !p.timerSet {
		p.timerSet = true
		src := f.Src
		epoch := e.epoch
		p.timer = e.sched.After(e.cfg.AckDelay, func() {
			if e.epoch != epoch {
				return
			}
			e.flushAcks(src)
		})
	}
}

// maxFlushAckRecs bounds the acknowledgement records of one standalone
// cumulative Ack frame to the MTU.
const maxFlushAckRecs = (frame.MaxBody - 16) / frame.AckRecLen

// flushAcks emits the acknowledgements pending toward src as standalone
// cumulative Ack frames — the fallback when the delay expires with no
// reverse-direction traffic to ride.
func (e *Endpoint) flushAcks(src frame.NodeID) {
	p := e.ackPend.get(src)
	if p == nil {
		return
	}
	p.timerSet = false
	for len(p.recs) > 0 {
		n := len(p.recs)
		if n > maxFlushAckRecs {
			n = maxFlushAckRecs
		}
		last := p.recs[n-1]
		cum, cumOK := e.cumFor(src)
		e.stats.AcksDelayedFlush++
		e.med.Send(e.node, &frame.Frame{
			Type:      frame.Ack,
			Src:       e.node,
			Dst:       src,
			ID:        last.ID, // header echoes the newest record for tracing
			From:      last.Rcv,
			To:        last.ID.Sender,
			AckCumSet: cumOK,
			AckCum:    cum,
			AckRecs:   p.recs[:n],
		})
		p.recs = p.recs[n:]
	}
}

// cumFor returns the cumulative acknowledgement (XSeq layout) for the stream
// received from src: every sequence at or below it in that sender epoch has
// been accepted and acknowledged here, so the sender may complete frames
// whose individual acks were lost or superseded.
func (e *Endpoint) cumFor(src frame.NodeID) (uint64, bool) {
	st := e.rx.get(src)
	if st == nil || !st.synced || st.expected == 0 {
		return 0, false
	}
	return uint64(st.epoch)<<48 | ((st.expected - 1) & xseqSeqMask), true
}

// attachAcks piggybacks pending acknowledgement state for f.Dst onto an
// outgoing gated frame. The attachment is transient: media clone frames at
// Send, so the caller detaches immediately after — a later retransmission
// then carries whatever is pending at its own send time.
func (e *Endpoint) attachAcks(f *frame.Frame) {
	if e.cfg.AckDelay <= 0 || f.Dst == frame.Broadcast {
		return
	}
	if cum, ok := e.cumFor(f.Dst); ok {
		f.AckCumSet = true
		f.AckCum = cum
	}
	p := e.ackPend.get(f.Dst)
	if p == nil || len(p.recs) == 0 {
		return
	}
	n := len(p.recs)
	if n > maxPiggybackRecs {
		n = maxPiggybackRecs
	}
	// Never push the frame past the MTU (the 16-byte margin also covers the
	// ack block header when the cumulative mark was not attachable).
	if room := (frame.MTU - f.WireLen() - 16) / frame.AckRecLen; n > room {
		n = room
	}
	if n <= 0 {
		return
	}
	f.AckRecs = p.recs[:n]
	p.recs = p.recs[n:]
	e.stats.AcksPiggybacked += uint64(n)
	if len(p.recs) == 0 && p.timerSet {
		p.timerSet = false
		e.sched.Cancel(p.timer)
	}
}

// detachAcks strips a transient piggyback block after Send.
func (e *Endpoint) detachAcks(f *frame.Frame) {
	f.AckRecs = nil
	f.AckCumSet = false
	f.AckCum = 0
}

var _ lan.Station = (*Endpoint)(nil)

// destTable is per-destination state kept in a slice indexed by NodeID.
// Node ids are small and dense (0..n-1), so a slice lookup replaces a map
// probe on the per-frame hot path. The zero value is ready to use; the
// backing slice grows on first touch of a high id. Negative ids (the
// Broadcast sentinel is -1) read as the zero value and must never be set.
type destTable[T any] struct {
	v []T
}

func (d *destTable[T]) get(id frame.NodeID) T {
	if id < 0 || int(id) >= len(d.v) {
		var zero T
		return zero
	}
	return d.v[id]
}

func (d *destTable[T]) set(id frame.NodeID, x T) {
	if id < 0 {
		panic("transport: destTable.set on negative node id")
	}
	if int(id) >= len(d.v) {
		if int(id) < cap(d.v) {
			// Spare capacity is always zeroed (allocated by make, never
			// written past len, and reset clears the full length).
			d.v = d.v[:int(id)+1]
		} else {
			// Grow geometrically: touching ids 0..n-1 in order must cost
			// O(log n) reallocations, not one per new maximum.
			n := int(id) + 1
			if c := 2 * cap(d.v); n < c {
				n = c
			}
			nv := make([]T, int(id)+1, n)
			copy(nv, d.v)
			d.v = nv
		}
	}
	d.v[id] = x
}

func (d *destTable[T]) reset() {
	clear(d.v)
}

// presize reserves room for node ids 0..n-1 up front.
func (d *destTable[T]) presize(n int) {
	if n > len(d.v) {
		d.v = make([]T, n)
	}
}

// dupCache is a fixed-size FIFO set of message ids. The map and ring grow
// on demand up to the configured capacity: hundred-node clusters construct
// hundreds of endpoints, and pre-reserving 4096 slots apiece made endpoint
// construction the single largest line in the cluster-bringup profile.
type dupCache struct {
	set  map[frame.MsgID]struct{}
	ring []frame.MsgID
	next int
	cap  int
}

func newDupCache(n int) *dupCache {
	return &dupCache{set: make(map[frame.MsgID]struct{}), cap: n}
}

func (c *dupCache) contains(id frame.MsgID) bool {
	_, ok := c.set[id]
	return ok
}

func (c *dupCache) add(id frame.MsgID) {
	if c.contains(id) {
		return
	}
	if len(c.ring) < c.cap {
		// Still filling: nothing to evict yet.
		c.ring = append(c.ring, id)
		c.set[id] = struct{}{}
		return
	}
	old := c.ring[c.next]
	if !old.IsNil() {
		delete(c.set, old)
	}
	c.ring[c.next] = id
	c.next = (c.next + 1) % len(c.ring)
	c.set[id] = struct{}{}
}
